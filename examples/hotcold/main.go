// Hotcold: Section 3.1 end to end. A revision-style table where 99.9%
// of traffic hits 5% of tuples gets clustered, then split into hot and
// cold partitions, and the buffer pool misses collapse.
package main

import (
	"fmt"
	"log"

	nblb "repro"
	"repro/internal/wiki"
)

func main() {
	// A deliberately tight buffer pool: the full table and index do not
	// fit, mirroring the paper's 27.1 GB index vs available RAM.
	db, err := nblb.Open(nblb.Options{
		PageSize:        4096,
		BufferPoolPages: 100,
		CountIO:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	table, err := db.CreateTable("revision", wiki.RevisionSchema(), nblb.WithAppendOnlyHeap())
	if err != nil {
		log.Fatal(err)
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: 1000, RevisionsPerPage: 15, Alpha: 0.5, Seed: 1})
	revs, latest := gen.Revisions()
	rids := make([]nblb.RID, len(revs))
	for i, r := range revs {
		rid, err := table.Insert(r.Row)
		if err != nil {
			log.Fatal(err)
		}
		rids[i] = rid
	}
	byRev, err := table.CreateIndex("rev_id", []string{"rev_id"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revision table: %d rows over %d heap pages; hot tuples: %d (%.1f%%)\n",
		len(revs), table.Heap().NumPages(), len(latest),
		100*float64(len(latest))/float64(len(revs)))

	trace := gen.RevisionTrace(20000, 0.999, revs, latest)
	counter := db.IOCounter()

	run := func(label string, lookup func(i int) error) {
		counter.ResetCounts()
		for _, idx := range trace {
			if err := lookup(idx); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-22s %.3f disk reads/query\n", label, float64(counter.Reads())/float64(len(trace)))
	}

	keyOf := func(idx int) nblb.Value { return revs[idx].Row[0] }
	run("unclustered:", func(idx int) error {
		_, _, err := byRev.Lookup(nil, keyOf(idx))
		return err
	})

	// Cluster all hot tuples to the table's tail (delete + append).
	hot := make([]nblb.RID, 0, len(latest))
	for _, idx := range latest {
		hot = append(hot, rids[idx])
	}
	fwd := nblb.NewForwarding()
	if _, err := nblb.Cluster(table, hot, fwd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d hot tuples (forwarding entries: %d)\n", len(hot), fwd.Len())
	run("clustered:", func(idx int) error {
		_, _, err := byRev.Lookup(nil, keyOf(idx))
		return err
	})

	// Hot/cold partitions: the hot index alone fits in RAM.
	hc, err := nblb.NewHotCold(nblb.HotColdConfig{
		Engine: db, Name: "revision_p", Schema: wiki.RevisionSchema(),
		KeyFields: []string{"rev_id"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range revs {
		if r.Latest {
			_, err = hc.InsertHot(r.Row)
		} else {
			_, err = hc.InsertCold(r.Row)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	st, err := hc.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned: hot index %d KB vs cold index %d KB (%.1fx smaller)\n",
		st.HotIndexBytes/1024, st.ColdIndexBytes/1024,
		float64(st.ColdIndexBytes)/float64(st.HotIndexBytes))
	run("partitioned:", func(idx int) error {
		_, _, err := hc.Lookup(keyOf(idx))
		return err
	})
}
