// Quickstart: create a table, enable the index cache, and watch point
// queries stop touching the heap.
package main

import (
	"fmt"
	"log"

	nblb "repro"
)

func main() {
	// An in-memory engine with defaults (8 KiB pages, 4096-frame pool).
	db, err := nblb.Open(nblb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	users, err := db.CreateTable("users", nblb.MustSchema(
		nblb.Field{Name: "id", Kind: nblb.KindInt64},
		nblb.Field{Name: "name", Kind: nblb.KindString, Size: 64},
		nblb.Field{Name: "karma", Kind: nblb.KindInt32},
		nblb.Field{Name: "active", Kind: nblb.KindBool},
		nblb.Field{Name: "bio", Kind: nblb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}

	// Bulk ingest goes through the unified Batch API: heap placement in
	// shard-affine runs, index entries applied in leaf-grouped sorted
	// runs — one descent per leaf run instead of per row. (One-row
	// users.Insert still works; it is a one-op batch underneath.)
	var batch nblb.Batch
	for i := 0; i < 1000; i++ {
		batch.Insert(nblb.Row{
			nblb.Int64(int64(i)),
			nblb.String(fmt.Sprintf("user-%04d", i)),
			nblb.Int32(int32(i % 500)),
			nblb.Bool(i%3 == 0),
			nblb.String("a longer biography that queries rarely need"),
		})
	}
	if _, err := users.Apply(&batch); err != nil {
		log.Fatal(err)
	}

	// The index on id caches (karma, active) in its leaves' free space:
	// the paper's §2.1 technique. The index is bulk-built at the
	// canonical 68% fill factor, so ~32% of every leaf is reusable.
	byID, err := users.CreateIndex("by_id", []string{"id"},
		nblb.WithCache("karma", "active"))
	if err != nil {
		log.Fatal(err)
	}

	// First lookup: cache miss → heap access → cache fill.
	proj := []string{"id", "karma", "active"}
	row, res, err := byID.Lookup(proj, nblb.Int64(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first lookup:  row=%v cacheHit=%v heapAccess=%v filled=%v\n",
		row, res.CacheHit, res.HeapAccess, res.CacheFilled)

	// Second lookup: answered entirely from the index page.
	row, res, err = byID.Lookup(proj, nblb.Int64(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second lookup: row=%v cacheHit=%v heapAccess=%v\n",
		row, res.CacheHit, res.HeapAccess)

	// Projections needing uncached fields transparently fall back.
	row, res, err = byID.Lookup([]string{"bio"}, nblb.Int64(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bio lookup:    len(bio)=%d cacheHit=%v heapAccess=%v\n",
		len(row[0].Str), res.CacheHit, res.HeapAccess)

	st := byID.Cache().Stats()
	fmt.Printf("cache stats:   lookups=%d hits=%d inserts=%d\n",
		st.Lookups, st.Hits, st.Inserts)

	// Range reads go through the same unified Query/Cursor API: one
	// pinned leaf at a time, sibling links instead of re-descents, and
	// coverable projections answered from the index cache per row.
	// (The old callback users.Scan(func(...) bool) still works but is
	// deprecated — it is a thin wrapper over this cursor.)
	// Warm the cache first so the scan can answer from leaf free space;
	// entries beyond each leaf's slot budget still fall back per row.
	if _, err := byID.WarmCache(); err != nil {
		log.Fatal(err)
	}
	cur, err := users.Query(
		nblb.WithIndex("by_id"),
		nblb.WithKeyRange(
			[]nblb.Value{nblb.Int64(100)},
			[]nblb.Value{nblb.Int64(110)},
		),
		nblb.WithProjection("id", "karma", "active"),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
		r := cur.Row() // cursor scratch: Clone to retain
		fmt.Printf("range row:     id=%d karma=%d active=%v\n",
			r[0].Int, r[1].Int, r[2].Int != 0)
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	qs := cur.Stats()
	fmt.Printf("range scan:    rows=%d cacheHits=%d heapReads=%d\n",
		qs.Rows, qs.CacheHits, qs.HeapReads)

	// Go 1.23 range-over-func, with a limit. The cursor closes itself
	// when the loop ends.
	top, err := users.Query(nblb.WithIndex("by_id"), nblb.WithReverse(),
		nblb.WithLimit(3), nblb.WithProjection("id"))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top.All() {
		fmt.Printf("top id:        %d\n", r[0].Int)
	}
}
