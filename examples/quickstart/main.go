// Quickstart: create a table, enable the index cache, and watch point
// queries stop touching the heap.
package main

import (
	"fmt"
	"log"

	nblb "repro"
)

func main() {
	// An in-memory engine with defaults (8 KiB pages, 4096-frame pool).
	db, err := nblb.Open(nblb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	users, err := db.CreateTable("users", nblb.MustSchema(
		nblb.Field{Name: "id", Kind: nblb.KindInt64},
		nblb.Field{Name: "name", Kind: nblb.KindString, Size: 64},
		nblb.Field{Name: "karma", Kind: nblb.KindInt32},
		nblb.Field{Name: "active", Kind: nblb.KindBool},
		nblb.Field{Name: "bio", Kind: nblb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 1000; i++ {
		_, err := users.Insert(nblb.Row{
			nblb.Int64(int64(i)),
			nblb.String(fmt.Sprintf("user-%04d", i)),
			nblb.Int32(int32(i % 500)),
			nblb.Bool(i%3 == 0),
			nblb.String("a longer biography that queries rarely need"),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The index on id caches (karma, active) in its leaves' free space:
	// the paper's §2.1 technique. The index is bulk-built at the
	// canonical 68% fill factor, so ~32% of every leaf is reusable.
	byID, err := users.CreateIndex("by_id", []string{"id"},
		nblb.WithCache("karma", "active"))
	if err != nil {
		log.Fatal(err)
	}

	// First lookup: cache miss → heap access → cache fill.
	proj := []string{"id", "karma", "active"}
	row, res, err := byID.Lookup(proj, nblb.Int64(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first lookup:  row=%v cacheHit=%v heapAccess=%v filled=%v\n",
		row, res.CacheHit, res.HeapAccess, res.CacheFilled)

	// Second lookup: answered entirely from the index page.
	row, res, err = byID.Lookup(proj, nblb.Int64(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second lookup: row=%v cacheHit=%v heapAccess=%v\n",
		row, res.CacheHit, res.HeapAccess)

	// Projections needing uncached fields transparently fall back.
	row, res, err = byID.Lookup([]string{"bio"}, nblb.Int64(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bio lookup:    len(bio)=%d cacheHit=%v heapAccess=%v\n",
		len(row[0].Str), res.CacheHit, res.HeapAccess)

	st := byID.Cache().Stats()
	fmt.Printf("cache stats:   lookups=%d hits=%d inserts=%d\n",
		st.Lookups, st.Hits, st.Inserts)
}
