// Schematuning: Section 4.1. Analyze a table whose declared types
// over-allocate, print the advisor's findings, and pack rows at their
// true widths.
package main

import (
	"fmt"
	"log"
	"os"

	nblb "repro"
	"repro/internal/encoding"
	"repro/internal/wiki"
)

func main() {
	db, err := nblb.Open(nblb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The CarTel telemetry table: BIGINTs holding tiny domains and a
	// CHAR(14) string timestamp.
	table, err := db.CreateTable("cartel", wiki.CarTelSchema())
	if err != nil {
		log.Fatal(err)
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: 10, RevisionsPerPage: 1, Alpha: 0.5, Seed: 1})
	const rows = 20000
	for i := 0; i < rows; i++ {
		if _, err := table.Insert(gen.CarTelRow(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Treat the declared schema as a hint: profile actual values and
	// recommend minimal physical encodings.
	report, err := nblb.AnalyzeTable(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table %q: %d rows, %.1f%% of the declared footprint is waste\n\n",
		report.Name, report.Rows, report.WastePct())
	for _, c := range report.Columns {
		fmt.Printf("  %-10s %-14s %6.1f → %5.1f bits  %s\n",
			c.Rec.Field.Name, c.Rec.Enc, c.DeclaredBits, c.OptimalBits, c.Rec.Note)
	}

	// Realize the recommendations: pack a sample and verify losslessness.
	recs := make([]nblb.Recommendation, len(report.Columns))
	for i, c := range report.Columns {
		recs[i] = c.Rec
	}
	codec, err := nblb.NewPackedCodec(table.Schema(), recs)
	if err != nil {
		log.Fatal(err)
	}
	var sample []nblb.Row
	cur, err := table.Query(nblb.WithLimit(1000))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range cur.All() {
		sample = append(sample, row.Clone())
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	packed, err := codec.EncodeRows(sample)
	if err != nil {
		log.Fatal(err)
	}
	back, err := codec.DecodeRows(packed, len(sample))
	if err != nil {
		log.Fatal(err)
	}
	for i := range sample {
		if !sample[i].Equal(back[i]) {
			fmt.Fprintln(os.Stderr, "round-trip mismatch!")
			os.Exit(1)
		}
	}
	// Compare against the declared-width codec.
	var declared int
	for _, r := range sample {
		n, err := encoding.DeclaredSize(table.Schema(), r)
		if err != nil {
			log.Fatal(err)
		}
		declared += n
	}
	fmt.Printf("\npacked %d rows: %d bytes vs %d declared (%.1fx denser), losslessly\n",
		len(sample), len(packed), declared, float64(declared)/float64(len(packed)))
}
