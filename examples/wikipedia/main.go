// Wikipedia: the paper's motivating workload. The name_title index on
// the page table caches the four fields that answer 40% of Wikipedia's
// queries; a zipfian trace then mostly never touches the heap.
package main

import (
	"fmt"
	"log"

	nblb "repro"
	"repro/internal/wiki"
	"repro/internal/workload"
)

func main() {
	db, err := nblb.Open(nblb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const pages = 10000
	table, err := db.CreateTable("page", wiki.PageSchema())
	if err != nil {
		log.Fatal(err)
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: pages, RevisionsPerPage: 1, Alpha: 0.5, Seed: 1})
	for i := 0; i < pages; i++ {
		if _, err := table.Insert(gen.PageRow(i, int64(i*10))); err != nil {
			log.Fatal(err)
		}
	}

	// The composite (namespace, title) index, 68% full, caching
	// is_redirect, page_latest, page_len, page_touched — §2.1.4's setup.
	nameTitle, err := table.CreateIndex("name_title",
		[]string{"page_namespace", "page_title"},
		nblb.WithCache(wiki.CachedPageFields()...),
		nblb.WithFillFactor(0.68))
	if err != nil {
		log.Fatal(err)
	}

	ts, err := nameTitle.Tree().Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d keys over %d leaf pages, mean fill %.2f, %d KB free for caching\n",
		ts.Keys, ts.LeafPages, ts.MeanLeafFill, ts.LeafFreeBytes/1024)

	// Replay a zipfian lookup trace: the popular pages quickly become
	// cache resident.
	zipf := workload.NewZipf(workload.NewRand(7), pages, 0.5)
	proj := []string{"page_namespace", "page_title", "page_latest", "page_len"}
	const lookups = 50000
	heapFetches := 0
	for i := 0; i < lookups; i++ {
		p := zipf.Next()
		_, res, err := nameTitle.Lookup(proj,
			nblb.Int32(int32(wiki.NamespaceOf(p))), nblb.String(wiki.PageTitle(p)))
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			log.Fatalf("page %d missing", p)
		}
		if res.HeapAccess {
			heapFetches++
		}
	}
	st := nameTitle.Cache().Stats()
	fmt.Printf("replayed %d zipfian lookups: cache hit rate %.1f%%, heap fetches avoided %.1f%%\n",
		lookups, 100*st.HitRate(), 100*(1-float64(heapFetches)/lookups))
	fmt.Printf("cache activity: %d inserts, %d evictions, %d swaps toward the stable point\n",
		st.Inserts, st.Evictions, st.Swaps)
}
