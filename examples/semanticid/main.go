// Semanticid: Section 4.2. Embed partition numbers in tuple IDs and
// retire the per-tuple routing table; find ID columns a proxy can
// replace outright.
package main

import (
	"fmt"
	"log"
	"time"

	nblb "repro"
	"repro/internal/wiki"
)

func main() {
	// 6 partition bits: up to 64 shards, 2^58 sequence numbers each.
	layout, err := nblb.NewIDLayout(6)
	if err != nil {
		log.Fatal(err)
	}

	const tuples = 500000
	table := nblb.NewTableRouter()
	embedded := nblb.NewEmbeddedRouter(layout)
	ids := make([]uint64, tuples)
	for i := range ids {
		part := uint64(i % 64)
		id, err := layout.Make(part, uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
		table.Add(id, part)
	}

	measure := func(name string, r nblb.Router) {
		start := time.Now()
		var sink uint64
		for _, id := range ids {
			p, err := r.Route(id)
			if err != nil {
				log.Fatal(err)
			}
			sink ^= p
		}
		_ = sink
		perOp := float64(time.Since(start).Nanoseconds()) / float64(len(ids))
		fmt.Printf("%-18s %10d bytes   %.1f ns/route\n", name, r.MemoryBytes(), perOp)
	}
	fmt.Printf("routing %d tuples across 64 partitions:\n", tuples)
	measure("routing table:", table)
	measure("embedded bits:", embedded)

	// Moving a tuple to another partition is an ID rewrite.
	id := ids[12345]
	moved, err := layout.Rewrite(id, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrewrite: id %d (partition %d) → id %d (partition %d), sequence preserved: %v\n",
		id, layout.Partition(id), moved, layout.Partition(moved),
		layout.Sequence(id) == layout.Sequence(moved))

	// Reduction: which ID columns can be dropped entirely?
	checks, err := nblb.FindReducibleIDs(wiki.RevisionSchema(),
		[]string{"rev_id"},
		map[string]string{"rev_text_id": "rev_id"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreducible ID fields in the revision schema:")
	for _, c := range checks {
		fmt.Printf("  %-12s −%d bits/row: %s\n", c.Field, c.SavedBitsPerRow, c.Reason)
	}
}
