package nblb

// Integration tests through the public facade: the API a downstream
// user sees, exercised end to end.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/wiki"
)

func TestFacadeEndToEnd(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	tb, err := db.CreateTable("t", MustSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "v", Kind: KindInt32},
		Field{Name: "s", Kind: KindString},
	))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	ix, err := tb.CreateIndex("pk", []string{"id"}, WithCache("v"))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(Row{Int64(int64(i)), Int32(int32(i * 7)), String("x")}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Miss then hit through the cache.
	_, res, err := ix.Lookup([]string{"v"}, Int64(33))
	if err != nil || !res.Found || res.CacheHit {
		t.Fatalf("first lookup: %+v %v", res, err)
	}
	row, res, err := ix.Lookup([]string{"v"}, Int64(33))
	if err != nil || !res.CacheHit || row[0].Int != 231 {
		t.Fatalf("second lookup: %v %+v %v", row, res, err)
	}
}

func TestFacadeFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	db, err := Open(Options{Path: path, PageSize: 4096, BufferPoolPages: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("t", MustSchema(Field{Name: "id", Kind: KindInt64}))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	rid, err := tb.Insert(Row{Int64(7)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	row, err := tb.Get(rid)
	if err != nil || row[0].Int != 7 {
		t.Fatalf("Get: %v %v", row, err)
	}
}

func TestFacadePartitioning(t *testing.T) {
	db, err := Open(Options{PageSize: 4096, BufferPoolPages: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	hc, err := NewHotCold(HotColdConfig{
		Engine: db, Name: "rev", Schema: wiki.RevisionSchema(), KeyFields: []string{"rev_id"},
	})
	if err != nil {
		t.Fatalf("NewHotCold: %v", err)
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: 50, RevisionsPerPage: 5, Alpha: 0.5, Seed: 1})
	revs, _ := gen.Revisions()
	for _, r := range revs {
		if r.Latest {
			_, err = hc.InsertHot(r.Row)
		} else {
			_, err = hc.InsertCold(r.Row)
		}
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	row, inHot, err := hc.Lookup(revs[len(revs)-1].Row[0])
	if err != nil || row == nil {
		t.Fatalf("Lookup: %v %v", row, err)
	}
	if !inHot && !revs[len(revs)-1].Latest {
		t.Log("last revision not latest; fine")
	}
}

func TestFacadeClusterTracker(t *testing.T) {
	db, err := Open(Options{PageSize: 1024, BufferPoolPages: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("t", MustSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "pad", Kind: KindString},
	), WithAppendOnlyHeap())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	ix, err := tb.CreateIndex("pk", []string{"id"})
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	tracker := NewAccessTracker()
	var rids []RID
	for i := 0; i < 200; i++ {
		rid, err := tb.Insert(Row{Int64(int64(i)), String("padding-padding-padding")})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		rids = append(rids, rid)
	}
	// Access every 20th row heavily.
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i += 20 {
			tracker.Record(rids[i])
		}
	}
	hot := tracker.HotSetByCoverage(0.99)
	if len(hot) != 10 {
		t.Fatalf("hot set size %d, want 10", len(hot))
	}
	fwd := NewForwarding()
	moved, err := Cluster(tb, hot, fwd)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if len(moved) != 10 || fwd.Len() != 10 {
		t.Fatalf("moved=%d fwd=%d", len(moved), fwd.Len())
	}
	// Index remains correct for all rows.
	for i := 0; i < 200; i++ {
		_, res, err := ix.Lookup(nil, Int64(int64(i)))
		if err != nil || !res.Found {
			t.Fatalf("row %d lost after clustering: %+v %v", i, res, err)
		}
	}
}

func TestFacadeAnalyzeTableAndPack(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("cartel", wiki.CarTelSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: 10, RevisionsPerPage: 1, Alpha: 0.5, Seed: 1})
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(gen.CarTelRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	report, err := AnalyzeTable(tb)
	if err != nil {
		t.Fatalf("AnalyzeTable: %v", err)
	}
	if report.WastePct() < 30 {
		t.Errorf("cartel waste %.1f%% suspiciously low", report.WastePct())
	}
	recs := make([]Recommendation, len(report.Columns))
	for i, c := range report.Columns {
		recs[i] = c.Rec
	}
	codec, err := NewPackedCodec(tb.Schema(), recs)
	if err != nil {
		t.Fatalf("NewPackedCodec: %v", err)
	}
	var rows []Row
	err = tb.Scan(func(_ RID, row Row) bool {
		rows = append(rows, row.Clone())
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	buf, err := codec.EncodeRows(rows)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	back, err := codec.DecodeRows(buf, len(rows))
	if err != nil {
		t.Fatalf("DecodeRows: %v", err)
	}
	for i := range rows {
		if !rows[i].Equal(back[i]) {
			t.Fatalf("row %d round trip failed", i)
		}
	}
}

func TestFacadeVertical(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	schema := MustSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "a", Kind: KindInt64},
		Field{Name: "b", Kind: KindString},
	)
	split, err := AdviseVertical(schema, []FieldStats{
		{Name: "id", WidthBytes: 8, ReadFreq: 1, Cached: true},
		{Name: "a", WidthBytes: 8, ReadFreq: 0.9, Cached: true},
		{Name: "b", WidthBytes: 200, ReadFreq: 0.01},
	}, DefaultVerticalCostModel())
	if err != nil {
		t.Fatalf("AdviseVertical: %v", err)
	}
	groups := make([][]string, 0, len(split.Groups))
	for _, g := range split.Groups {
		var cleaned []string
		for _, f := range g {
			if f != "id" {
				cleaned = append(cleaned, f)
			}
		}
		if len(cleaned) > 0 {
			groups = append(groups, cleaned)
		}
	}
	vt, err := NewVerticalTable(db, "v", schema, "id", groups)
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := vt.Insert(Row{Int64(int64(i)), Int64(int64(i * 2)), String("blob")}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	row, _, err := vt.Get(Int64(3))
	if err != nil || row[1].Int != 6 {
		t.Fatalf("Get: %v %v", row, err)
	}
}

func TestFacadeSemID(t *testing.T) {
	l, err := NewIDLayout(4)
	if err != nil {
		t.Fatalf("NewIDLayout: %v", err)
	}
	id, err := l.Make(5, 1234)
	if err != nil {
		t.Fatalf("Make: %v", err)
	}
	tr := NewTableRouter()
	tr.Add(id, 5)
	er := NewEmbeddedRouter(l)
	p1, _ := tr.Route(id)
	p2, _ := er.Route(id)
	if p1 != p2 || p1 != 5 {
		t.Fatalf("routers disagree: %d %d", p1, p2)
	}
	checks, err := FindReducibleIDs(wiki.RevisionSchema(), []string{"rev_id"}, nil)
	if err != nil || len(checks) != 1 {
		t.Fatalf("FindReducibleIDs: %v %v", checks, err)
	}
}

func TestFacadeScanOrder(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tb, _ := db.CreateTable("t", MustSchema(Field{Name: "id", Kind: KindInt64}))
	for i := 0; i < 10; i++ {
		tb.Insert(Row{Int64(int64(i))})
	}
	var got []int64
	tb.Scan(func(_ RID, row Row) bool {
		got = append(got, row[0].Int)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("scanned %d rows", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("heap order violated at %d: %v", i, got)
		}
	}
	_ = fmt.Sprint(got)
}

func TestFacadeTransactions(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("t", MustSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "v", Kind: KindInt32},
	))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tb.CreateIndex("pk", []string{"id"}); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	rid, err := tb.Insert(Row{Int64(1), Int32(10)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}

	// Snapshot pinned before the transactional update commits.
	before := db.Begin()
	defer before.Abort()

	txn := db.Begin()
	var b Batch
	b.Update(rid, Row{Int64(1), Int32(20)})
	b.Insert(Row{Int64(2), Int32(30)})
	if _, err := txn.Apply(tb, &b); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// The older snapshot still reads the pre-commit state.
	cur, err := before.Query(tb, WithIndex("pk"))
	if err != nil {
		t.Fatalf("snapshot Query: %v", err)
	}
	var ids []int64
	for cur.Next() {
		ids = append(ids, cur.Row()[0].Int)
	}
	cur.Close()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("old snapshot saw %v, want just id 1", ids)
	}

	// A conflicting update loses first-committer-wins.
	loser := db.Begin()
	winner := db.Begin()
	var lb, wb Batch
	// The committed update moved id 1 to a new version; look it up fresh.
	pk, err := tb.Index("pk")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	newRID, found, err := pk.LookupRID(Int64(1))
	if err != nil || !found {
		t.Fatalf("LookupRID: found=%v err=%v", found, err)
	}
	lb.Update(newRID, Row{Int64(1), Int32(40)})
	wb.Update(newRID, Row{Int64(1), Int32(50)})
	if _, err := loser.Apply(tb, &lb); err != nil {
		t.Fatalf("loser stage: %v", err)
	}
	if _, err := winner.Apply(tb, &wb); err != nil {
		t.Fatalf("winner stage: %v", err)
	}
	if err := winner.Commit(); err != nil {
		t.Fatalf("winner Commit: %v", err)
	}
	if err := loser.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("loser Commit = %v, want ErrTxnConflict", err)
	}
	if err := loser.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double Commit = %v, want ErrTxnDone", err)
	}
}
