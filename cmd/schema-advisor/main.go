// Command schema-advisor runs the Section 4.1 automated schema
// optimizer over a CSV file or one of the built-in synthetic tables and
// prints per-column encoding recommendations and the waste report.
//
// Usage:
//
//	schema-advisor -table revision|page|cartel|text [-rows N]
//	schema-advisor -csv data.csv
//
// CSV mode infers a declared schema of all-VARCHAR columns from the
// header row and lets the analyzer discover what the strings really are
// (ints, timestamps, booleans, low-cardinality enums) — the purest
// demonstration of "schema as a hint".
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/encoding"
	"repro/internal/tuple"
	"repro/internal/wiki"
)

func main() {
	table := flag.String("table", "", "synthetic table: revision, page, cartel, or text")
	csvPath := flag.String("csv", "", "CSV file to analyze (header row required)")
	rows := flag.Int("rows", 20000, "rows to generate for synthetic tables")
	flag.Parse()

	switch {
	case *csvPath != "":
		if err := analyzeCSV(*csvPath); err != nil {
			log.Fatal(err)
		}
	case *table != "":
		if err := analyzeSynthetic(*table, *rows); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func analyzeSynthetic(name string, rows int) error {
	gen := wiki.NewGenerator(wiki.Config{
		Pages:            max(rows/10, 10),
		RevisionsPerPage: 10,
		Alpha:            0.5,
		Seed:             1,
	})
	var (
		schema *tuple.Schema
		data   []tuple.Row
	)
	switch name {
	case "revision":
		schema = wiki.RevisionSchema()
		revs, _ := gen.Revisions()
		if len(revs) > rows {
			revs = revs[:rows]
		}
		for _, r := range revs {
			data = append(data, r.Row)
		}
	case "page":
		schema = wiki.PageSchema()
		for i := 0; i < rows; i++ {
			data = append(data, gen.PageRow(i, int64(i)))
		}
	case "cartel":
		schema = wiki.CarTelSchema()
		for i := 0; i < rows; i++ {
			data = append(data, gen.CarTelRow(i))
		}
	case "text":
		schema = wiki.TextSchema()
		for i := 0; i < rows; i++ {
			data = append(data, gen.TextRow(i))
		}
	default:
		return fmt.Errorf("unknown synthetic table %q", name)
	}
	i := 0
	report := encoding.AnalyzeRows(name, schema, func() (tuple.Row, bool) {
		if i >= len(data) {
			return nil, false
		}
		r := data[i]
		i++
		return r, true
	})
	printReport(report)
	return nil
}

func analyzeCSV(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	fields := make([]tuple.Field, len(header))
	for i, name := range header {
		fields[i] = tuple.Field{Name: name, Kind: tuple.KindString}
	}
	schema, err := tuple.NewSchema(fields...)
	if err != nil {
		return err
	}
	report := encoding.AnalyzeRows(path, schema, func() (tuple.Row, bool) {
		rec, err := r.Read()
		if err == io.EOF {
			return nil, false
		}
		if err != nil {
			return nil, false
		}
		row := make(tuple.Row, len(fields))
		for i := range fields {
			v := ""
			if i < len(rec) {
				v = rec[i]
			}
			if v == "" {
				row[i] = tuple.Null(tuple.KindString)
			} else {
				row[i] = tuple.String(v)
			}
		}
		return row, true
	})
	printReport(report)
	return nil
}

func printReport(report encoding.TableReport) {
	fmt.Printf("table %q: %d rows\n", report.Name, report.Rows)
	fmt.Printf("declared footprint: %d bytes, optimal: %d bytes, waste: %.1f%%\n\n",
		report.DeclaredBytes(), report.OptimalBytes(), report.WastePct())
	fmt.Printf("%-20s %-14s %10s %10s %7s  %s\n", "column", "encoding", "decl bits", "opt bits", "waste%", "why")
	for _, c := range report.Columns {
		fmt.Printf("%-20s %-14s %10.1f %10.1f %6.1f%%  %s\n",
			c.Rec.Field.Name, c.Rec.Enc, c.DeclaredBits, c.OptimalBits, c.WastePct(), c.Rec.Note)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
