// Command nblb-bench regenerates every figure and in-text analysis of
// "No Bits Left Behind" (CIDR 2011) as text tables.
//
// Usage:
//
//	nblb-bench -exp all            # everything (default)
//	nblb-bench -exp fig2a          # Figure 2(a): hit rate vs cache size
//	nblb-bench -exp fig2b          # Figure 2(b): lookup cost simulation
//	nblb-bench -exp fig2c          # Figure 2(c): measured cache overhead
//	nblb-bench -exp fig3           # Figure 3: clustering / partitioning
//	nblb-bench -exp enc            # §4.1 encoding-waste analysis
//	nblb-bench -exp capacity       # §2.1.4 cache capacity analysis
//	nblb-bench -exp semid          # §4.2 semantic-ID routing
//	nblb-bench -exp vpart          # §3.2 vertical partitioning
//	nblb-bench -exp ablate-place   # A1/A3 placement & bucket ablations
//	nblb-bench -exp ablate-predlog # A2 predicate-log ablation
//	nblb-bench -exp throughput     # parallel lookup scaling, 1-shard vs sharded pool
//	nblb-bench -exp scan           # full-table scan: callback vs cursor, cache vs heap
//	nblb-bench -exp write          # parallel ingest: crabbing vs mutex, sharded vs
//	                               # legacy heap, batched Apply vs one-row inserts
//	nblb-bench -exp serve          # network serving: latency and ops/fsync vs
//	                               # connection count, write coalescing on vs off
//
// -quick shrinks every experiment for a fast smoke run. The throughput,
// scan, write, and serve experiments also write BENCH_throughput.json /
// BENCH_scan.json / BENCH_write.json / BENCH_serve.json summaries (see
// -json / -scanjson / -writejson / -servejson) so the perf trajectory
// is tracked PR-over-PR.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma separated): all, fig2a, fig2b, fig2c, fig3, enc, capacity, semid, vpart, ablate-place, ablate-predlog, throughput, scan, write, serve")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed for all generators")
	jsonPath := flag.String("json", "BENCH_throughput.json", "path for the throughput experiment's JSON summary (empty disables)")
	scanJSONPath := flag.String("scanjson", "BENCH_scan.json", "path for the scan experiment's JSON summary (empty disables)")
	writeJSONPath := flag.String("writejson", "BENCH_write.json", "path for the write experiment's JSON summary (empty disables)")
	serveJSONPath := flag.String("servejson", "BENCH_serve.json", "path for the serve experiment's JSON summary (empty disables)")
	flag.Parse()

	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }
	ran := 0

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "nblb-bench: %s: %v\n", name, err)
		os.Exit(1)
	}
	section := func(name string) {
		fmt.Printf("\n================ %s ================\n", name)
	}

	if want("fig2a") {
		ran++
		section("fig2a")
		cfg := experiments.DefaultFig2aConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Items, cfg.Lookups = 2000, 20000
			cfg.Sizes = []int{10, 25, 50, 100}
		}
		res, err := experiments.RunFig2a(cfg)
		if err != nil {
			fail("fig2a", err)
		}
		res.Print(os.Stdout)
		// The paper's trace is more skewed than literal zipf(0.5); show a
		// heavier-skew series where the >90%-at-25% headline is reachable.
		cfg.Alpha = 0.99
		res99, err := experiments.RunFig2a(cfg)
		if err != nil {
			fail("fig2a", err)
		}
		fmt.Println()
		res99.Print(os.Stdout)
	}
	if want("fig2b") {
		ran++
		section("fig2b")
		cfg := experiments.DefaultFig2bConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Lookups = 20000
		}
		experiments.RunFig2b(cfg).Print(os.Stdout)
	}
	if want("fig2c") {
		ran++
		section("fig2c")
		cfg := experiments.DefaultFig2cConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Pages, cfg.Lookups = 4000, 10000
		}
		res, err := experiments.RunFig2c(cfg)
		if err != nil {
			fail("fig2c", err)
		}
		res.Print(os.Stdout)
	}
	if want("fig3") {
		ran++
		section("fig3")
		cfg := experiments.DefaultFig3Config()
		cfg.Seed = *seed
		if *quick {
			cfg.Pages, cfg.Queries = 500, 4000
			cfg.BufferPoolPages = 60
		}
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			fail("fig3", err)
		}
		res.Print(os.Stdout)
	}
	if want("enc") {
		ran++
		section("enc")
		cfg := experiments.DefaultEncWasteConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows = 3000
		}
		res, err := experiments.RunEncWaste(cfg)
		if err != nil {
			fail("enc", err)
		}
		res.Print(os.Stdout)
	}
	if want("capacity") {
		ran++
		section("capacity")
		cfg := experiments.DefaultCapacityConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Pages = 4000
		}
		res, err := experiments.RunCapacity(cfg)
		if err != nil {
			fail("capacity", err)
		}
		res.Print(os.Stdout)
	}
	if want("semid") {
		ran++
		section("semid")
		cfg := experiments.DefaultSemIDConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Tuples, cfg.Lookups = 100000, 200000
		}
		res, err := experiments.RunSemID(cfg)
		if err != nil {
			fail("semid", err)
		}
		res.Print(os.Stdout)
	}
	if want("vpart") {
		ran++
		section("vpart")
		cfg := experiments.DefaultVPartConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows, cfg.Queries = 2000, 4000
		}
		res, err := experiments.RunVPart(cfg)
		if err != nil {
			fail("vpart", err)
		}
		res.Print(os.Stdout)
	}
	if want("joincache") {
		ran++
		section("joincache")
		cfg := experiments.DefaultJoinCacheConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Pages, cfg.Queries = 300, 6000
		}
		res, err := experiments.RunJoinCache(cfg)
		if err != nil {
			fail("joincache", err)
		}
		res.Print(os.Stdout)
	}
	if want("covering") {
		ran++
		section("covering")
		cfg := experiments.DefaultCoveringConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Pages = 4000
		}
		res, err := experiments.RunCovering(cfg)
		if err != nil {
			fail("covering", err)
		}
		res.Print(os.Stdout)
	}
	if want("ablate-place") {
		ran++
		section("ablate-place")
		cfg := experiments.DefaultAblatePlacementConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Items, cfg.Lookups = 2000, 20000
		}
		res, err := experiments.RunAblatePlacement(cfg)
		if err != nil {
			fail("ablate-place", err)
		}
		res.Print(os.Stdout)
	}
	if want("ablate-predlog") {
		ran++
		section("ablate-predlog")
		cfg := experiments.DefaultAblatePredLogConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows, cfg.Ops = 1000, 5000
		}
		res, err := experiments.RunAblatePredLog(cfg)
		if err != nil {
			fail("ablate-predlog", err)
		}
		res.Print(os.Stdout)
	}

	if want("throughput") {
		ran++
		section("throughput")
		cfg := experiments.DefaultThroughputConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows, cfg.Lookups = 4000, 40000
			cfg.Goroutines = []int{1, 4, 8}
		}
		res, err := experiments.RunThroughput(cfg)
		if err != nil {
			fail("throughput", err)
		}
		res.Print(os.Stdout)
		if *jsonPath != "" {
			if err := res.WriteJSON(*jsonPath); err != nil {
				fail("throughput", err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}

	if want("scan") {
		ran++
		section("scan")
		cfg := experiments.DefaultScanConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows, cfg.Passes = 10000, 2
		}
		res, err := experiments.RunScan(cfg)
		if err != nil {
			fail("scan", err)
		}
		res.Print(os.Stdout)
		if *scanJSONPath != "" {
			if err := res.WriteJSON(*scanJSONPath); err != nil {
				fail("scan", err)
			}
			fmt.Printf("wrote %s\n", *scanJSONPath)
		}
	}

	if want("write") {
		ran++
		section("write")
		cfg := experiments.DefaultWriteConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Preload, cfg.Ops = 5000, 20000
			cfg.HeapOps = 40000
			cfg.BatchOps = 20000
			cfg.DurableOps = 10000
			cfg.Goroutines = []int{1, 2, 4}
		}
		res, err := experiments.RunWrite(cfg)
		if err != nil {
			fail("write", err)
		}
		res.Print(os.Stdout)
		if *writeJSONPath != "" {
			if err := res.WriteJSON(*writeJSONPath); err != nil {
				fail("write", err)
			}
			fmt.Printf("wrote %s\n", *writeJSONPath)
		}
	}

	if want("serve") {
		ran++
		section("serve")
		cfg := experiments.DefaultServeConfig()
		cfg.Seed = *seed
		if *quick {
			cfg.Conns = []int{1, 8}
			cfg.OpsPerConn = 100
		}
		res, err := experiments.RunServe(cfg)
		if err != nil {
			fail("serve", err)
		}
		res.Print(os.Stdout)
		if *serveJSONPath != "" {
			if err := res.WriteJSON(*serveJSONPath); err != nil {
				fail("serve", err)
			}
			fmt.Printf("wrote %s\n", *serveJSONPath)
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nblb-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
