// Command tracegen emits synthetic Wikipedia workload traces as CSV on
// stdout, for replay against other systems or for inspection.
//
// Usage:
//
//	tracegen -kind page -n 100000 -pages 20000 -alpha 0.5
//	tracegen -kind revision -n 100000 -pages 2000 -revs 20 -hot 0.999
//
// Page traces emit one (namespace, title) per line — the name_title
// lookup workload of Figure 2. Revision traces emit one rev_id per line
// with 99.9% of lines hitting the latest revision of a zipf-popular
// article — the Section 3.1 workload of Figure 3.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/wiki"
)

func main() {
	kind := flag.String("kind", "page", "trace kind: page or revision")
	n := flag.Int("n", 100000, "number of trace entries")
	pages := flag.Int("pages", 20000, "number of articles")
	revsPer := flag.Int("revs", 20, "mean revisions per article (revision traces)")
	alpha := flag.Float64("alpha", 0.5, "zipf skew of article popularity")
	hot := flag.Float64("hot", 0.999, "fraction of revision accesses hitting latest revisions")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	gen := wiki.NewGenerator(wiki.Config{
		Pages:            *pages,
		RevisionsPerPage: *revsPer,
		Alpha:            *alpha,
		Seed:             *seed,
	})
	switch *kind {
	case "page":
		fmt.Fprintln(w, "namespace,title")
		for _, p := range gen.PageLookupTrace(*n) {
			fmt.Fprintf(w, "%d,%s\n", wiki.NamespaceOf(p), wiki.PageTitle(p))
		}
	case "revision":
		revs, latest := gen.Revisions()
		fmt.Fprintln(w, "rev_id,is_hot")
		for _, idx := range gen.RevisionTrace(*n, *hot, revs, latest) {
			hotFlag := 0
			if revs[idx].Latest {
				hotFlag = 1
			}
			fmt.Fprintf(w, "%d,%d\n", revs[idx].Row[0].Int, hotFlag)
		}
	default:
		log.Fatalf("tracegen: unknown kind %q", *kind)
	}
}
