// Command linkcheck validates intra-repository markdown links. CI runs
// it over the documentation set so a moved file or renamed heading
// fails the build instead of silently rotting the docs.
//
//	linkcheck README.md ARCHITECTURE.md docs CHANGES.md
//
// Each argument is a markdown file or a directory walked for *.md.
// For every inline link [text](target) it checks:
//
//   - external targets (http:, https:, mailto:) are skipped — CI must
//     not depend on the network;
//   - relative file targets resolve to an existing file or directory
//     (relative to the linking file's directory, with an optional
//     #fragment stripped);
//   - fragment targets (#section, file.md#section) name a heading that
//     actually exists in the target file, using GitHub's anchor
//     slugification (lowercase, spaces to hyphens, punctuation
//     dropped).
//
// Exit status 1 lists every broken link as file:line: message.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, deliberately simple: no
// reference-style links are used in this repository.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*$`)

// codeFenceRe matches fenced code block delimiters.
var codeFenceRe = regexp.MustCompile("^\\s*```")

var broken []string

func failf(format string, args ...any) {
	broken = append(broken, fmt.Sprintf(format, args...))
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			failf("%s: %v", arg, err)
			continue
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			failf("%s: %v", arg, err)
		}
	}
	for _, f := range files {
		checkFile(f)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

func checkFile(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		failf("%s: %v", path, err)
		return
	}
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if codeFenceRe.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			checkLink(path, i+1, m[1])
		}
	}
}

func checkLink(fromFile string, lineNo int, target string) {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := fromFile
	if file != "" {
		resolved = filepath.Join(filepath.Dir(fromFile), file)
		if _, err := os.Stat(resolved); err != nil {
			failf("%s:%d: broken link %q: %s does not exist", fromFile, lineNo, target, resolved)
			return
		}
	}
	if frag == "" {
		return
	}
	if !strings.HasSuffix(resolved, ".md") {
		// Anchors into non-markdown targets (e.g. source files) are not
		// checkable here; existence of the file is enough.
		return
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		failf("%s:%d: %v", fromFile, lineNo, err)
		return
	}
	if !anchors[strings.ToLower(frag)] {
		failf("%s:%d: broken anchor %q: no heading in %s slugifies to #%s",
			fromFile, lineNo, target, resolved, frag)
	}
}

// headingAnchors returns the set of GitHub-style anchor slugs for the
// file's headings.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if codeFenceRe.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		anchors[slugify(m[1])] = true
	}
	return anchors, nil
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase,
// spaces become hyphens, and everything that is not a letter, digit,
// hyphen, or underscore is dropped.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			'a' <= r && r <= 'z',
			'0' <= r && r <= '9',
			r > 127: // unicode letters pass through
			b.WriteRune(r)
		}
	}
	return b.String()
}
