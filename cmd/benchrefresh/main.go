// Command benchrefresh folds CI bench artifacts back into the
// committed BENCH_*.json baselines. The CI bench-gate job runs the
// sweeps across a GOMAXPROCS matrix and uploads each leg's summaries
// as artifacts; the committed baselines, refreshed on a developer
// container, understate multicore scaling (a 1-core container cannot
// express parallel speedups). This tool closes that loop: download the
// artifact directories, point benchrefresh at them, and the baselines
// are rewritten from the leg that actually exercised the parallelism.
//
//	benchrefresh -artifacts out-g1,out-g2,out-g4            # highest GOMAXPROCS wins
//	benchrefresh -artifacts out-g1,out-g2,out-g4 -gomaxprocs 4
//	benchrefresh -artifacts out-g4 -out . -dry              # show choices, write nothing
//
// For each summary kind (BENCH_throughput.json, BENCH_scan.json,
// BENCH_write.json, BENCH_serve.json) the tool picks, among the
// artifact directories
// holding that file, the one measured at the highest GOMAXPROCS (or
// exactly -gomaxprocs when given) and copies it over the baseline in
// -out. The file is copied verbatim — benchgate's shape guards treat a
// workload change as a deliberate refresh, and `git diff` of the
// rewritten baselines is the review surface.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// benchFiles are the summary kinds the gate tracks.
var benchFiles = []string{
	"BENCH_throughput.json",
	"BENCH_scan.json",
	"BENCH_write.json",
	"BENCH_serve.json",
}

// gomaxprocsOf extracts the "gomaxprocs" field every summary carries.
func gomaxprocsOf(data []byte) (int, error) {
	var probe struct {
		GOMAXPROCS int `json:"gomaxprocs"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, err
	}
	if probe.GOMAXPROCS <= 0 {
		return 0, fmt.Errorf("summary has no gomaxprocs field")
	}
	return probe.GOMAXPROCS, nil
}

func main() {
	artifacts := flag.String("artifacts", "", "comma-separated directories holding CI bench artifacts (required)")
	out := flag.String("out", ".", "directory holding the committed BENCH_*.json baselines to rewrite")
	want := flag.Int("gomaxprocs", 0, "pick the artifact measured at exactly this GOMAXPROCS (0 = highest available)")
	dry := flag.Bool("dry", false, "report choices without writing")
	flag.Parse()

	if *artifacts == "" {
		fmt.Fprintln(os.Stderr, "benchrefresh: -artifacts is required")
		flag.Usage()
		os.Exit(2)
	}
	dirs := strings.Split(*artifacts, ",")

	failed := false
	refreshed := 0
	for _, name := range benchFiles {
		var (
			bestData []byte
			bestG    int
			bestDir  string
		)
		for _, dir := range dirs {
			dir = strings.TrimSpace(dir)
			if dir == "" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrefresh: %v\n", err)
				failed = true
				continue
			}
			g, err := gomaxprocsOf(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrefresh: %s: %v\n", filepath.Join(dir, name), err)
				failed = true
				continue
			}
			if *want > 0 && g != *want {
				continue
			}
			if g > bestG {
				bestData, bestG, bestDir = data, g, dir
			}
		}
		if bestData == nil {
			fmt.Printf("%-24s no matching artifact — baseline kept\n", name)
			continue
		}
		oldG := "none"
		if old, err := os.ReadFile(filepath.Join(*out, name)); err == nil {
			if g, err := gomaxprocsOf(old); err == nil {
				oldG = fmt.Sprintf("GOMAXPROCS=%d", g)
			}
		}
		fmt.Printf("%-24s %s (GOMAXPROCS=%d) replaces baseline (%s)\n", name, bestDir, bestG, oldG)
		if !*dry {
			if err := os.WriteFile(filepath.Join(*out, name), bestData, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchrefresh: %v\n", err)
				failed = true
				continue
			}
			refreshed++
		}
	}
	if *dry {
		fmt.Println("benchrefresh: dry run, nothing written")
	} else {
		fmt.Printf("benchrefresh: %d baseline(s) rewritten — review with git diff and commit\n", refreshed)
	}
	if failed {
		os.Exit(1)
	}
}
