// nblb-vet runs the engine's static-analysis suite (internal/analysis):
// lockorder, pinleak, walseam, and deprecated.
//
// Standalone (the authoritative, whole-program mode CI runs):
//
//	nblb-vet ./...
//	nblb-vet -analyzers lockorder,pinleak ./internal/core/
//
// All matched packages are loaded from source, so annotations and
// inter-procedural summaries span the entire module. Exit status: 0
// clean, 1 findings, 2 operational error.
//
// Vettool (unit) mode, for editor and `go vet` integration:
//
//	go vet -vettool=$(go env GOPATH)/bin/nblb-vet ./...
//
// go vet invokes the tool once per package with a .cfg file; imported
// packages are only visible as compiled export data, so cross-package
// annotations resolve through the compiled-in registry
// (analysis.BuiltinLockFields and friends) and inter-procedural
// summaries stop at package boundaries. Standalone mode is strictly
// more precise; unit mode is a convenience.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// Vettool protocol probes come before flag parsing: go vet invokes
	// `nblb-vet -V=full` for cache keying and `nblb-vet -flags` to learn
	// the tool's flags, then passes a single <dir>/vet.cfg argument.
	for _, a := range os.Args[1:] {
		if a == "-V=full" || a == "--V=full" {
			fmt.Println("nblb-vet version 1 (repro static-analysis suite)")
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitMode(os.Args[1]))
	}
	os.Exit(standalone())
}

func standalone() int {
	var (
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	world := analysis.NewWorld(loader.Fset)
	diags, err := analysis.RunPackages(world, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of go vet's per-package .cfg JSON the tool
// needs (the format cmd/go writes for -vettool programs).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nblb-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet always expects the facts output file; the suite keeps its
	// cross-package knowledge in the compiled-in registry instead, so an
	// empty placeholder satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nblb-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	loader, lp, err := checkUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "nblb-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	world := analysis.NewWorld(loader.Fset)
	diags, err := analysis.RunPackages(world, []*analysis.LoadedPackage{lp}, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2 // the vettool convention: findings, not failure
	}
	return 0
}

// checkUnit type-checks the .cfg package from source, resolving imports
// through the export-data files cmd/go already built.
func checkUnit(cfg *vetConfig) (*analysis.Loader, *analysis.LoadedPackage, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	loader := analysis.NewUnitLoader(cfg.Dir, lookup)
	lp, err := loader.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, nil, err
	}
	return loader, lp, nil
}
