// Command benchgate is the CI benchmark regression gate: it compares
// freshly generated BENCH_*.json summaries against the committed
// baselines and fails (exit 1) on a throughput regression beyond the
// tolerance, so a PR cannot silently walk back the perf trajectory the
// ROADMAP tracks.
//
//	benchgate -base . -fresh out            # gate out/BENCH_*.json against ./BENCH_*.json
//	benchgate -base . -fresh out -skip "rewrite trades scan speed for write scaling"
//
// Rules:
//
//   - Throughput (BENCH_throughput.json): per goroutine count, the
//     sharded pool's ops/sec must stay within -tolerance of baseline.
//   - Serve (BENCH_serve.json): per connection count, the coalesced
//     sweep's ops/sec within -tolerance of baseline. Self-invariants:
//     at the highest connection count the cross-connection coalescer
//     must make strictly more rows durable per fsync than the
//     coalescer-off sweep, and its shared batches must actually batch
//     (>1 op per drain cycle).
//   - Scan (BENCH_scan.json): per mode, rows/sec within -tolerance;
//     allocs/row and disk reads/pass must not grow materially (these
//     are machine-independent, so they are held tighter). The parallel
//     segmented-scan series must be present, its n=1 legs must hold
//     serial throughput (the serial-fallback tax check), and on a
//     runner with ≥4 CPUs the n=4 unordered leg must beat the serial
//     scan outright — the headline multicore claim, enforced by the
//     multicore CI leg. Per-(segments, mode) wall clock gates against
//     the baseline when GOMAXPROCS matches; allocs/row always.
//   - Write (BENCH_write.json): per goroutine count, crabbed tree
//     ops/sec and sharded-heap ops/sec within -tolerance of baseline.
//     The fresh file must also satisfy the parallel-ingest invariants
//     on its own: for the tree, no >10% single-writer regression
//     versus the in-run mutex baseline and multi-writer throughput
//     above it at ≥2 goroutines (relaxed to "no collapse" when the
//     runner has only one CPU, where parallel scaling is physically
//     impossible); for the heap, sharded-insert throughput strictly
//     at or above the reproduced single-mutex heap at every goroutine
//     count — the bucketed free-space maps give a deterministic margin
//     that holds even single-core; and for the batch-ingest series,
//     batched Table.Apply throughput at or above the one-row path at
//     every goroutine count and batch size (the leaf-grouped runs'
//     amortization is deterministic, so this too holds single-core).
//     The durable-ingest series adds two more: group commit must make
//     at least a batch's worth of rows durable per fsync at 4+
//     goroutines (one WAL record per Apply, coalesced fsyncs), and
//     SyncNone's sweep-best throughput must stay within 10% of the
//     WAL-off engine's sweep-best on the same disk (logging without
//     commit-path fsyncs is nearly free).
//
// A comparison pair is skipped (with a note) when the two files were
// measured over different workload shapes — a config change is a
// baseline refresh, not a regression. The -skip flag records a one-line
// reason for intentional tradeoffs and turns the gate green; CI wires
// it to a PR label so the reason lands in the logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

var failures []string

func failf(format string, args ...any) {
	failures = append(failures, fmt.Sprintf(format, args...))
}

func okf(format string, args ...any) {
	fmt.Printf("  ok: %s\n", fmt.Sprintf(format, args...))
}

func notef(format string, args ...any) {
	fmt.Printf("  note: %s\n", fmt.Sprintf(format, args...))
}

func readJSON(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, json.Unmarshal(data, v)
}

func main() {
	base := flag.String("base", ".", "directory holding the committed BENCH_*.json baselines")
	fresh := flag.String("fresh", ".", "directory holding the freshly generated BENCH_*.json")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional throughput regression vs baseline")
	skip := flag.String("skip", "", "skip the gate, recording this one-line reason (intentional tradeoff)")
	only := flag.String("only", "", "comma-separated subset of gates to run: throughput, scan, write, serve (empty = all)")
	flag.Parse()

	if *skip != "" {
		fmt.Printf("benchgate: SKIPPED — %s\n", *skip)
		return
	}

	sel := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			sel[name] = true
		}
	}
	run := func(name string) bool { return len(sel) == 0 || sel[name] }

	if run("throughput") {
		gateThroughput(*base, *fresh, *tol)
	}
	if run("scan") {
		gateScan(*base, *fresh, *tol)
	}
	if run("write") {
		gateWrite(*base, *fresh, *tol)
	}
	if run("serve") {
		gateServe(*base, *fresh, *tol)
	}

	if len(failures) > 0 {
		fmt.Println("benchgate: FAIL")
		for _, f := range failures {
			fmt.Printf("  regression: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

// ratioOK reports whether fresh is within the regression tolerance of
// base (base==0 passes vacuously: nothing to regress from).
func ratioOK(freshV, baseV, tol float64) bool {
	return baseV <= 0 || freshV >= baseV*(1-tol)
}

func gateThroughput(base, fresh string, tol float64) {
	fmt.Println("throughput (BENCH_throughput.json):")
	var b, f experiments.ThroughputResult
	if !loadPair(base, fresh, "BENCH_throughput.json", &b, &f) {
		return
	}
	if b.Rows != f.Rows {
		notef("workload shape changed (%d vs %d rows) — comparison skipped; refresh the baseline", b.Rows, f.Rows)
		return
	}
	if b.GOMAXPROCS != f.GOMAXPROCS {
		// A parallel sweep's absolute ops/sec is a function of the CPU
		// count; comparing across GOMAXPROCS legs would permanently
		// redden whichever leg mismatches the committed baseline.
		notef("baseline measured at GOMAXPROCS=%d, this run at %d — comparison skipped", b.GOMAXPROCS, f.GOMAXPROCS)
		return
	}
	for _, fp := range f.Points {
		bp, ok := pointForG(b.Points, fp.Goroutines)
		if !ok {
			continue
		}
		if !ratioOK(fp.ShardedOpsPerSec, bp.ShardedOpsPerSec, tol) {
			failf("throughput g=%d: sharded %.0f ops/s vs baseline %.0f (>%.0f%% down)",
				fp.Goroutines, fp.ShardedOpsPerSec, bp.ShardedOpsPerSec, tol*100)
		} else {
			okf("g=%d sharded %.0f ops/s (baseline %.0f)", fp.Goroutines, fp.ShardedOpsPerSec, bp.ShardedOpsPerSec)
		}
	}
}

func pointForG(pts []experiments.ThroughputPoint, g int) (experiments.ThroughputPoint, bool) {
	for _, p := range pts {
		if p.Goroutines == g {
			return p, true
		}
	}
	return experiments.ThroughputPoint{}, false
}

func gateScan(base, fresh string, tol float64) {
	fmt.Println("scan (BENCH_scan.json):")
	var b, f experiments.ScanResult
	if !loadPair(base, fresh, "BENCH_scan.json", &b, &f) {
		return
	}
	if b.Rows != f.Rows {
		notef("workload shape changed (%d vs %d rows) — comparison skipped; refresh the baseline", b.Rows, f.Rows)
		return
	}
	wallClockComparable := b.GOMAXPROCS == f.GOMAXPROCS
	if !wallClockComparable {
		notef("baseline measured at GOMAXPROCS=%d, this run at %d — wall-clock comparison skipped", b.GOMAXPROCS, f.GOMAXPROCS)
	}
	for _, fp := range f.Points {
		var bp *experiments.ScanPoint
		for i := range b.Points {
			if b.Points[i].Mode == fp.Mode {
				bp = &b.Points[i]
				break
			}
		}
		if bp == nil {
			continue
		}
		if wallClockComparable {
			if !ratioOK(fp.RowsPerSec, bp.RowsPerSec, tol) {
				failf("scan %q: %.0f rows/s vs baseline %.0f (>%.0f%% down)",
					fp.Mode, fp.RowsPerSec, bp.RowsPerSec, tol*100)
			} else {
				okf("%q %.0f rows/s (baseline %.0f)", fp.Mode, fp.RowsPerSec, bp.RowsPerSec)
			}
		}
		// Machine-independent metrics are held tighter than wall clock.
		if fp.AllocsPerRow > bp.AllocsPerRow+0.5 {
			failf("scan %q: %.2f allocs/row vs baseline %.2f", fp.Mode, fp.AllocsPerRow, bp.AllocsPerRow)
		}
		if fp.DiskReadsPerPass > bp.DiskReadsPerPass*(1+tol)+1 {
			failf("scan %q: %.1f disk reads/pass vs baseline %.1f", fp.Mode, fp.DiskReadsPerPass, bp.DiskReadsPerPass)
		}
	}
	// Self-invariant of the fresh run: reverse scans must cost the same
	// leaf fetches as forward ones (doubly linked leaves). Enforced here
	// rather than inside the bench runner so the skip label covers it.
	if fwd, rev := f.DirectionSymmetry(); fwd != nil && rev != nil {
		if rev.LeafFetches != fwd.LeafFetches {
			failf("scan: reverse fetched %d leaves, forward %d — direction symmetry regressed",
				rev.LeafFetches, fwd.LeafFetches)
		} else {
			okf("reverse/forward leaf fetches symmetric (%d)", fwd.LeafFetches)
		}
	}
	gateParallelScan(b, f, tol)
}

// gateParallelScan holds the parallel segmented-scan series to its
// self-invariants (valid on any runner: all legs ran in-process against
// the same serial baseline) plus the baseline comparison where the
// machines match.
func gateParallelScan(b, f experiments.ScanResult, tol float64) {
	if len(f.Parallel) == 0 {
		failf("scan: BENCH_scan.json has no parallel series — the segmented-scan sweep must run on every PR")
		return
	}
	findPar := func(pts []experiments.ParallelScanPoint, segs int, mode string) *experiments.ParallelScanPoint {
		for i := range pts {
			if pts[i].Segments == segs && pts[i].Mode == mode {
				return &pts[i]
			}
		}
		return nil
	}
	// n=1 is the serial fallback: both merge modes must hold serial
	// throughput within the tolerance — the option must never tax a
	// query that ends up serial anyway.
	for _, mode := range []string{"ordered", "unordered"} {
		p := findPar(f.Parallel, 1, mode)
		if p == nil {
			failf("scan parallel: n=1 %s leg missing from the sweep", mode)
			continue
		}
		if !ratioOK(p.RowsPerSec, f.SerialRowsPerSec, tol) {
			failf("scan parallel n=1 %s: %.0f rows/s vs serial %.0f — the serial fallback regressed",
				mode, p.RowsPerSec, f.SerialRowsPerSec)
		} else {
			okf("parallel n=1 %s %.0f rows/s holds serial %.0f", mode, p.RowsPerSec, f.SerialRowsPerSec)
		}
	}
	// The headline claim: on a real multicore runner, 4 unordered
	// segments must beat the serial scan outright. The strict check
	// needs both GOMAXPROCS ≥ 4 *and* 4 real cores — an oversubscribed
	// container can set GOMAXPROCS=4 on one CPU, where the speedup is
	// physically impossible. The multicore CI leg satisfies both.
	if p := findPar(f.Parallel, 4, "unordered"); p == nil {
		failf("scan parallel: n=4 unordered leg missing from the sweep")
	} else if f.GOMAXPROCS >= 4 && f.NumCPU >= 4 {
		if p.SpeedupVsSerial <= 1.0 {
			failf("scan parallel n=4 unordered: %.2fx vs serial at GOMAXPROCS=%d on %d CPUs — segmented workers add no speedup",
				p.SpeedupVsSerial, f.GOMAXPROCS, f.NumCPU)
		} else {
			okf("parallel n=4 unordered %.2fx over serial at GOMAXPROCS=%d on %d CPUs",
				p.SpeedupVsSerial, f.GOMAXPROCS, f.NumCPU)
		}
	} else {
		notef("GOMAXPROCS=%d on %d CPUs: strict n=4 unordered>serial check needs ≥4 of both — skipped (multicore CI leg enforces it)",
			f.GOMAXPROCS, f.NumCPU)
	}
	// Baseline comparison per (segments, mode) leg, wall clock only when
	// the machines match; allocs/row is machine-independent and held
	// tighter, like the serial modes above.
	for i := range f.Parallel {
		fp := &f.Parallel[i]
		bp := findPar(b.Parallel, fp.Segments, fp.Mode)
		if bp == nil {
			continue
		}
		if b.GOMAXPROCS == f.GOMAXPROCS {
			if !ratioOK(fp.RowsPerSec, bp.RowsPerSec, tol) {
				failf("scan parallel n=%d %s: %.0f rows/s vs baseline %.0f (>%.0f%% down)",
					fp.Segments, fp.Mode, fp.RowsPerSec, bp.RowsPerSec, tol*100)
			} else {
				okf("parallel n=%d %s %.0f rows/s (baseline %.0f)", fp.Segments, fp.Mode, fp.RowsPerSec, bp.RowsPerSec)
			}
		}
		if fp.AllocsPerRow > bp.AllocsPerRow+0.5 {
			failf("scan parallel n=%d %s: %.2f allocs/row vs baseline %.2f",
				fp.Segments, fp.Mode, fp.AllocsPerRow, bp.AllocsPerRow)
		}
	}
}

func gateWrite(base, fresh string, tol float64) {
	fmt.Println("write (BENCH_write.json):")
	var f experiments.WriteResult
	found, err := readJSON(filepath.Join(fresh, "BENCH_write.json"), &f)
	if err != nil {
		failf("read fresh BENCH_write.json: %v", err)
		return
	}
	if !found {
		failf("fresh BENCH_write.json missing — the write bench must run on every PR")
		return
	}

	// Self-invariants of the fresh run: these compare the crabbing tree
	// with the in-run single-mutex baseline on the same machine, so
	// they are valid regardless of where the committed baseline came
	// from.
	for _, p := range f.Points {
		if p.Goroutines == 1 {
			if p.MutexOpsPerSec > 0 && p.CrabbedOpsPerSec < p.MutexOpsPerSec*0.90 {
				failf("write g=1: crabbed %.0f ops/s vs mutex %.0f — single-writer regression >10%%",
					p.CrabbedOpsPerSec, p.MutexOpsPerSec)
			} else {
				okf("g=1 crabbed %.0f ops/s vs mutex %.0f (no single-writer regression)",
					p.CrabbedOpsPerSec, p.MutexOpsPerSec)
			}
		}
	}
	bestMulti, haveMulti := 0.0, false
	for _, p := range f.Points {
		if p.Goroutines >= 2 && p.MutexOpsPerSec > 0 {
			haveMulti = true
			if s := p.CrabbedOpsPerSec / p.MutexOpsPerSec; s > bestMulti {
				bestMulti = s
			}
		}
	}
	if haveMulti {
		// One CPU cannot express parallel scaling; require no collapse
		// there, strict superiority everywhere else.
		need := 1.0
		if f.GOMAXPROCS < 2 {
			need = 0.95
			notef("GOMAXPROCS=1 runner: multi-writer check relaxed to no-collapse (≥%.2f×)", need)
		}
		if bestMulti < need {
			failf("write: best multi-writer speedup %.2f× vs mutex baseline, need ≥%.2f×", bestMulti, need)
		} else {
			okf("multi-writer speedup %.2f× over mutex baseline at ≥2 goroutines", bestMulti)
		}
	}

	// Heap-ingest self-invariants: the sharded heap (per-shard bucketed
	// free-space maps) must beat the single-mutex heap (file-wide lock
	// around a linear first-fit scan, the pre-sharding design the sweep
	// reproduces in-run) at every goroutine count. The bucketed maps
	// alone give a large deterministic margin, so this holds strictly
	// even on a single-CPU runner where lock sharding itself cannot
	// scale.
	if len(f.HeapPoints) == 0 {
		failf("write: BENCH_write.json has no heap-ingest series — the sharded-heap sweep must run on every PR")
	}
	for _, p := range f.HeapPoints {
		if p.MutexOpsPerSec <= 0 {
			continue
		}
		if s := p.ShardedOpsPerSec / p.MutexOpsPerSec; s < 1.0 {
			failf("write heap g=%d: sharded %.0f ops/s vs single-mutex %.0f (%.2f×, need ≥1.00×)",
				p.Goroutines, p.ShardedOpsPerSec, p.MutexOpsPerSec, s)
		} else {
			okf("heap g=%d sharded %.0f ops/s vs single-mutex %.0f (%.2f×)",
				p.Goroutines, p.ShardedOpsPerSec, p.MutexOpsPerSec, s)
		}
	}

	// Batch-ingest self-invariants: batched Apply (shard-affine heap
	// runs + leaf-grouped index runs) must meet or beat the one-row
	// path at every goroutine count and batch size. The amortization is
	// deterministic — fewer descents, latches, and mutex acquisitions
	// for the same work — so this holds strictly even single-core.
	if len(f.BatchPoints) == 0 {
		failf("write: BENCH_write.json has no batch-ingest series — the Apply-vs-one-row sweep must run on every PR")
	}
	for _, p := range f.BatchPoints {
		if p.OneRowOpsPerSec <= 0 {
			continue
		}
		if s := p.BatchedOpsPerSec / p.OneRowOpsPerSec; s < 1.0 {
			failf("write batch g=%d size=%d: batched %.0f ops/s vs one-row %.0f (%.2f×, need ≥1.00×)",
				p.Goroutines, p.BatchSize, p.BatchedOpsPerSec, p.OneRowOpsPerSec, s)
		} else {
			okf("batch g=%d size=%d batched %.0f ops/s vs one-row %.0f (%.2f×)",
				p.Goroutines, p.BatchSize, p.BatchedOpsPerSec, p.OneRowOpsPerSec, s)
		}
	}

	// Durable-ingest self-invariants. Group commit appends one WAL
	// record per Apply and a committer only fsyncs when its record is
	// not already durable, so fsyncs never outnumber appends and
	// rows-per-fsync is at least the batch size by construction — at 4+
	// goroutines leader coalescing must hold that floor (it typically
	// lifts well above it). SyncNone pays encoding plus a buffered
	// append and no commit-path fsync, so it must stay within 10% of
	// the WAL-off engine on the same disk.
	if len(f.DurablePoints) == 0 {
		failf("write: BENCH_write.json has no durable-ingest series — the WAL sweep must run on every PR")
	}
	var bestOff, bestNone float64
	for _, p := range f.DurablePoints {
		if p.Goroutines >= 4 {
			if p.OpsPerFsync < float64(f.DurableBatchSize) {
				failf("write durable g=%d: %.0f rows/fsync under group commit, need ≥ batch size %d",
					p.Goroutines, p.OpsPerFsync, f.DurableBatchSize)
			} else {
				okf("durable g=%d group commit %.0f rows/fsync (batch size %d)",
					p.Goroutines, p.OpsPerFsync, f.DurableBatchSize)
			}
		}
		if p.NonDurableOpsPerSec > bestOff {
			bestOff = p.NonDurableOpsPerSec
		}
		if p.SyncNoneOpsPerSec > bestNone {
			bestNone = p.SyncNoneOpsPerSec
		}
	}
	// Ceilings compare sweep-best to sweep-best: noise only ever lowers
	// a throughput sample, so the max over all goroutine counts and
	// repetitions is each configuration's demonstrated capability —
	// per-point pairing would let two independent hiccups manufacture a
	// crossing.
	if bestOff > 0 {
		if s := bestNone / bestOff; s < 0.90 {
			failf("write durable: sync-none best %.0f ops/s vs no-WAL best %.0f (%.2f×, need ≥0.90×)",
				bestNone, bestOff, s)
		} else {
			okf("durable sync-none best %.0f ops/s vs no-WAL best %.0f (%.2f×)", bestNone, bestOff, s)
		}
	}

	// Transaction-overhead self-invariants. A snapshot transaction pays
	// for staging, commit-time validation against the version store, and
	// per-key index descents at commit (staged rows cannot use the raw
	// path's leaf-grouped runs) — real costs, but bounded ones. At g=1
	// there is no txnMu contention, so if a transactional batch keeps
	// less than a quarter of raw batched throughput the commit path has
	// picked up accidental work (a lock held across I/O, per-row
	// allocation blowup, validation gone quadratic). Multi-writer points
	// are reported but not floored: commits serialize on the timestamp
	// allocator by design, so their ratio degrades with g.
	if len(f.TxnPoints) == 0 {
		failf("write: BENCH_write.json has no txn series — the txn-vs-raw sweep must run on every PR")
	}
	for _, p := range f.TxnPoints {
		if p.RawOpsPerSec <= 0 {
			continue
		}
		s := p.TxnOpsPerSec / p.RawOpsPerSec
		if p.Goroutines == 1 && s < 0.25 {
			failf("write txn g=1: txn %.0f ops/s vs raw %.0f (%.2f×, need ≥0.25×)",
				p.TxnOpsPerSec, p.RawOpsPerSec, s)
		} else {
			okf("txn g=%d txn %.0f ops/s vs raw %.0f (%.2f×)",
				p.Goroutines, p.TxnOpsPerSec, p.RawOpsPerSec, s)
		}
	}

	var b experiments.WriteResult
	found, err = readJSON(filepath.Join(base, "BENCH_write.json"), &b)
	if err != nil {
		failf("read baseline BENCH_write.json: %v", err)
		return
	}
	if !found {
		notef("no committed BENCH_write.json baseline yet — self-invariants only")
		return
	}
	if b.Preload != f.Preload || b.Ops != f.Ops || b.UpdateFrac != f.UpdateFrac {
		notef("workload shape changed — comparison skipped; refresh the baseline")
		return
	}
	if b.GOMAXPROCS != f.GOMAXPROCS {
		notef("baseline measured at GOMAXPROCS=%d, this run at %d — comparison skipped (self-invariants above still gate)", b.GOMAXPROCS, f.GOMAXPROCS)
		return
	}
	for _, fp := range f.Points {
		for _, bp := range b.Points {
			if bp.Goroutines != fp.Goroutines {
				continue
			}
			if !ratioOK(fp.CrabbedOpsPerSec, bp.CrabbedOpsPerSec, tol) {
				failf("write g=%d: crabbed %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Goroutines, fp.CrabbedOpsPerSec, bp.CrabbedOpsPerSec, tol*100)
			} else {
				okf("g=%d crabbed %.0f ops/s (baseline %.0f)", fp.Goroutines, fp.CrabbedOpsPerSec, bp.CrabbedOpsPerSec)
			}
		}
	}
	if b.HeapOps != f.HeapOps || b.HeapRecordBytes != f.HeapRecordBytes || b.HeapShards != f.HeapShards {
		notef("heap workload shape changed — heap comparison skipped; refresh the baseline")
		return
	}
	for _, fp := range f.HeapPoints {
		for _, bp := range b.HeapPoints {
			if bp.Goroutines != fp.Goroutines {
				continue
			}
			if !ratioOK(fp.ShardedOpsPerSec, bp.ShardedOpsPerSec, tol) {
				failf("write heap g=%d: sharded %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Goroutines, fp.ShardedOpsPerSec, bp.ShardedOpsPerSec, tol*100)
			} else {
				okf("heap g=%d sharded %.0f ops/s (baseline %.0f)", fp.Goroutines, fp.ShardedOpsPerSec, bp.ShardedOpsPerSec)
			}
		}
	}
	if b.BatchOps != f.BatchOps || !sameInts(b.BatchSizes, f.BatchSizes) {
		notef("batch workload shape changed — batch comparison skipped; refresh the baseline")
		return
	}
	for _, fp := range f.BatchPoints {
		for _, bp := range b.BatchPoints {
			if bp.Goroutines != fp.Goroutines || bp.BatchSize != fp.BatchSize {
				continue
			}
			if !ratioOK(fp.BatchedOpsPerSec, bp.BatchedOpsPerSec, tol) {
				failf("write batch g=%d size=%d: batched %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Goroutines, fp.BatchSize, fp.BatchedOpsPerSec, bp.BatchedOpsPerSec, tol*100)
			} else {
				okf("batch g=%d size=%d batched %.0f ops/s (baseline %.0f)",
					fp.Goroutines, fp.BatchSize, fp.BatchedOpsPerSec, bp.BatchedOpsPerSec)
			}
			// The one-row wrappers are gated too: making batches faster
			// by slowing the single-op path would pass the batched≥one-row
			// self-invariant while regressing every existing caller.
			if !ratioOK(fp.OneRowOpsPerSec, bp.OneRowOpsPerSec, tol) {
				failf("write batch g=%d size=%d: one-row %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Goroutines, fp.BatchSize, fp.OneRowOpsPerSec, bp.OneRowOpsPerSec, tol*100)
			} else {
				okf("batch g=%d size=%d one-row %.0f ops/s (baseline %.0f)",
					fp.Goroutines, fp.BatchSize, fp.OneRowOpsPerSec, bp.OneRowOpsPerSec)
			}
		}
	}
	if b.DurableOps != f.DurableOps || b.DurableBatchSize != f.DurableBatchSize || len(b.DurablePoints) == 0 {
		notef("durable workload shape changed or baseline predates the WAL — durable comparison skipped; refresh the baseline")
		return
	}
	for _, fp := range f.DurablePoints {
		for _, bp := range b.DurablePoints {
			if bp.Goroutines != fp.Goroutines {
				continue
			}
			if !ratioOK(fp.GroupCommitOpsPerSec, bp.GroupCommitOpsPerSec, tol) {
				failf("write durable g=%d: group commit %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Goroutines, fp.GroupCommitOpsPerSec, bp.GroupCommitOpsPerSec, tol*100)
			} else {
				okf("durable g=%d group commit %.0f ops/s (baseline %.0f)",
					fp.Goroutines, fp.GroupCommitOpsPerSec, bp.GroupCommitOpsPerSec)
			}
		}
	}
	if b.TxnOps != f.TxnOps || b.TxnBatchSize != f.TxnBatchSize || len(b.TxnPoints) == 0 {
		notef("txn workload shape changed or baseline predates transactions — txn comparison skipped; refresh the baseline")
		return
	}
	for _, fp := range f.TxnPoints {
		for _, bp := range b.TxnPoints {
			if bp.Goroutines != fp.Goroutines {
				continue
			}
			if !ratioOK(fp.TxnOpsPerSec, bp.TxnOpsPerSec, tol) {
				failf("write txn g=%d: txn %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Goroutines, fp.TxnOpsPerSec, bp.TxnOpsPerSec, tol*100)
			} else {
				okf("txn g=%d txn %.0f ops/s (baseline %.0f)",
					fp.Goroutines, fp.TxnOpsPerSec, bp.TxnOpsPerSec)
			}
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// loadPair reads base and fresh copies of name into b and f, reporting
// whether both exist and parsed. Missing files are notes, not failures,
// except that every gate handles its own "fresh must exist" policy.
// gateServe checks the network-serving sweep. Its load-bearing checks
// are fresh-run self-invariants — the coalescing-on and coalescing-off
// sweeps ran on the same machine in the same process, so their
// ops/fsync ratio is valid wherever the gate runs.
func gateServe(base, fresh string, tol float64) {
	fmt.Println("serve (BENCH_serve.json):")
	var f experiments.ServeResult
	found, err := readJSON(filepath.Join(fresh, "BENCH_serve.json"), &f)
	if err != nil {
		failf("read fresh BENCH_serve.json: %v", err)
		return
	}
	if !found {
		failf("fresh BENCH_serve.json missing — the serve bench must run on every PR")
		return
	}
	if len(f.Coalesced) == 0 || len(f.Direct) == 0 {
		failf("serve: BENCH_serve.json is missing a sweep (coalesced %d points, direct %d)",
			len(f.Coalesced), len(f.Direct))
		return
	}

	// Self-invariant: at the highest connection count, cross-connection
	// coalescing must make strictly more rows durable per fsync than
	// per-request commits, and its shared batches must actually batch.
	hi := f.Coalesced[len(f.Coalesced)-1]
	var hiDirect experiments.ServePoint
	for _, p := range f.Direct {
		if p.Conns == hi.Conns {
			hiDirect = p
		}
	}
	if hiDirect.Conns == 0 {
		failf("serve: direct sweep has no point at %d conns to compare against", hi.Conns)
		return
	}
	if hi.OpsPerFsync <= hiDirect.OpsPerFsync {
		failf("serve conns=%d: coalesced %.1f ops/fsync vs direct %.1f — coalescing is not amortizing commits",
			hi.Conns, hi.OpsPerFsync, hiDirect.OpsPerFsync)
	} else {
		okf("conns=%d coalesced %.1f ops/fsync vs direct %.1f", hi.Conns, hi.OpsPerFsync, hiDirect.OpsPerFsync)
	}
	if hi.OpsPerCycle <= 1 {
		failf("serve conns=%d: %.2f ops per coalescer drain — shared batches are not forming", hi.Conns, hi.OpsPerCycle)
	} else {
		okf("conns=%d %.1f ops per coalescer drain cycle", hi.Conns, hi.OpsPerCycle)
	}

	// Baseline comparison, where the shapes match.
	var b experiments.ServeResult
	foundB, err := readJSON(filepath.Join(base, "BENCH_serve.json"), &b)
	if err != nil {
		failf("read baseline BENCH_serve.json: %v", err)
		return
	}
	if !foundB {
		notef("no committed BENCH_serve.json baseline — comparison skipped")
		return
	}
	if b.OpsPerConn != f.OpsPerConn || b.BatchOps != f.BatchOps || b.ValueBytes != f.ValueBytes {
		notef("workload shape changed — comparison skipped; refresh the baseline")
		return
	}
	if b.GOMAXPROCS != f.GOMAXPROCS {
		notef("baseline measured at GOMAXPROCS=%d, this run at %d — comparison skipped", b.GOMAXPROCS, f.GOMAXPROCS)
		return
	}
	for _, fp := range f.Coalesced {
		for _, bp := range b.Coalesced {
			if bp.Conns != fp.Conns {
				continue
			}
			if !ratioOK(fp.OpsPerSec, bp.OpsPerSec, tol) {
				failf("serve conns=%d: coalesced %.0f ops/s vs baseline %.0f (>%.0f%% down)",
					fp.Conns, fp.OpsPerSec, bp.OpsPerSec, tol*100)
			} else {
				okf("conns=%d coalesced %.0f ops/s (baseline %.0f)", fp.Conns, fp.OpsPerSec, bp.OpsPerSec)
			}
		}
	}
}

func loadPair(base, fresh, name string, b, f any) bool {
	foundB, err := readJSON(filepath.Join(base, name), b)
	if err != nil {
		failf("read baseline %s: %v", name, err)
		return false
	}
	foundF, err := readJSON(filepath.Join(fresh, name), f)
	if err != nil {
		failf("read fresh %s: %v", name, err)
		return false
	}
	if !foundB {
		notef("no committed %s baseline — comparison skipped", name)
		return false
	}
	if !foundF {
		failf("fresh %s missing — the bench must run on every PR", name)
		return false
	}
	return true
}
