// Command nblb-server serves an nblb database over the network: the
// pipelined binary protocol (internal/wire) on -addr, and an optional
// HTTP/JSON fallback on -http. Writes from every connection flow
// through the cross-connection coalescer, so many small client batches
// share leaf-grouped index runs and one WAL group commit.
//
// SIGINT/SIGTERM shut down gracefully: accepting stops, in-flight
// requests finish and their responses flush, the coalescer drains, and
// a final checkpoint lands every acked write in the data file before
// the process exits.
//
// Example:
//
//	nblb-server -db /var/lib/nblb/app.db -addr :4410 -http :8410
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		dbPath   = flag.String("db", "", "database file path (required; created if absent)")
		addr     = flag.String("addr", ":4410", "binary-protocol listen address")
		httpAddr = flag.String("http", "", "HTTP/JSON listen address (empty = disabled)")
		noWAL    = flag.Bool("no-wal", false, "disable the write-ahead log (volatile between checkpoints)")
		syncMode = flag.String("sync", "group", "WAL sync policy: group, always, none")
		poolPgs  = flag.Int("pool", 0, "buffer pool size in pages (0 = default)")

		noCoalesce = flag.Bool("no-coalesce", false, "disable cross-connection write coalescing")
		maxOps     = flag.Int("coalesce-ops", server.DefaultMaxOps, "max ops per shared coalesced batch")
		maxWait    = flag.Duration("coalesce-wait", server.DefaultMaxWait, "max wait for more ops after the first arrives")
		pageSize   = flag.Int("page-size", server.DefaultPageSize, "default rows per query page")
		inflight   = flag.Int("max-inflight", server.DefaultMaxInflight, "max concurrently executing requests per connection")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget before connections are severed")
	)
	flag.Parse()
	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "nblb-server: -db is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := core.Options{Path: *dbPath, BufferPoolPages: *poolPgs}
	var extra []core.EngineOption
	if !*noWAL {
		extra = append(extra, core.WithWAL())
		switch *syncMode {
		case "group":
			extra = append(extra, core.WithSyncPolicy(core.SyncGroupCommit))
		case "always":
			extra = append(extra, core.WithSyncPolicy(core.SyncAlways))
		case "none":
			extra = append(extra, core.WithSyncPolicy(core.SyncNone))
		default:
			log.Fatalf("nblb-server: unknown -sync %q (want group, always, none)", *syncMode)
		}
	}
	eng, err := core.NewEngine(opts, extra...)
	if err != nil {
		log.Fatalf("nblb-server: open %s: %v", *dbPath, err)
	}

	srv, err := server.New(server.Config{
		Engine: eng,
		Coalesce: server.CoalesceConfig{
			Disabled: *noCoalesce,
			MaxOps:   *maxOps,
			MaxWait:  *maxWait,
		},
		PageSize:    *pageSize,
		MaxInflight: *inflight,
	})
	if err != nil {
		log.Fatalf("nblb-server: %v", err)
	}

	errc := make(chan error, 2)
	go func() {
		log.Printf("nblb-server: serving %s on %s", *dbPath, *addr)
		errc <- srv.ListenAndServe(*addr)
	}()
	if *httpAddr != "" {
		go func() {
			log.Printf("nblb-server: HTTP/JSON on %s", *httpAddr)
			errc <- listenHTTP(srv, *httpAddr)
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("nblb-server: %v: draining (budget %v)", sig, *drainTimeout)
	case err := <-errc:
		if err != nil {
			log.Printf("nblb-server: serve: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("nblb-server: shutdown: %v", err)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("nblb-server: close: %v", err)
	}
	log.Print("nblb-server: clean shutdown")
}

func listenHTTP(srv *server.Server, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.ServeHTTP(l)
}
