package nblb_test

import (
	"fmt"
	"log"

	nblb "repro"
)

// Example shows the package's core loop: declare a table, enable the
// index cache on the fields hot queries project, and watch lookups stop
// touching the heap.
func Example() {
	db, err := nblb.Open(nblb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	articles, err := db.CreateTable("articles", nblb.MustSchema(
		nblb.Field{Name: "id", Kind: nblb.KindInt64},
		nblb.Field{Name: "views", Kind: nblb.KindInt32},
		nblb.Field{Name: "body", Kind: nblb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := articles.Insert(nblb.Row{
			nblb.Int64(int64(i)),
			nblb.Int32(int32(i * 3)),
			nblb.String("long article body"),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The index recycles its leaves' free space as a cache of `views`.
	byID, err := articles.CreateIndex("by_id", []string{"id"}, nblb.WithCache("views"))
	if err != nil {
		log.Fatal(err)
	}

	// First lookup fills the cache; the second never touches the heap.
	if _, _, err := byID.Lookup([]string{"views"}, nblb.Int64(7)); err != nil {
		log.Fatal(err)
	}
	row, res, err := byID.Lookup([]string{"views"}, nblb.Int64(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("views=%d cacheHit=%v heapAccess=%v\n", row[0].Int, res.CacheHit, res.HeapAccess)
	// Output: views=21 cacheHit=true heapAccess=false
}

// ExampleTable_Query shows the unified range-read API: a cursor over a
// key range whose covered projection is answered from the index cache,
// with the Go 1.23 range-over-func adapter.
func ExampleTable_Query() {
	db, err := nblb.Open(nblb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	articles, err := db.CreateTable("articles", nblb.MustSchema(
		nblb.Field{Name: "id", Kind: nblb.KindInt64},
		nblb.Field{Name: "views", Kind: nblb.KindInt32},
		nblb.Field{Name: "body", Kind: nblb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := articles.Insert(nblb.Row{
			nblb.Int64(int64(i)),
			nblb.Int32(int32(i * 3)),
			nblb.String("long article body"),
		}); err != nil {
			log.Fatal(err)
		}
	}
	byID, err := articles.CreateIndex("by_id", []string{"id"}, nblb.WithCache("views"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := byID.WarmCache(); err != nil {
		log.Fatal(err)
	}

	cur, err := articles.Query(
		nblb.WithIndex("by_id"),
		nblb.WithKeyRange(
			[]nblb.Value{nblb.Int64(10)},
			[]nblb.Value{nblb.Int64(13)},
		),
		nblb.WithProjection("id", "views"), // covered: answered from the cache
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range cur.All() {
		fmt.Printf("id=%d views=%d\n", row[0].Int, row[1].Int)
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	st := cur.Stats()
	fmt.Printf("rows=%d cacheHits=%d heapReads=%d\n", st.Rows, st.CacheHits, st.HeapReads)
	// Output:
	// id=10 views=30
	// id=11 views=33
	// id=12 views=36
	// rows=3 cacheHits=3 heapReads=0
}
