package nblb

import (
	"repro/client"
	"repro/internal/server"
)

// Server serves an Engine over the network: the pipelined binary
// protocol on TCP plus an optional HTTP/JSON fallback, with
// cross-connection write coalescing (many clients' small batches drain
// into shared Table.Apply calls under one WAL group commit). Create
// with NewServer, start with Server.ListenAndServe or Server.Serve,
// stop with Server.Shutdown. cmd/nblb-server wraps this in a binary.
type Server = server.Server

// ServerConfig configures NewServer. The zero value of every field
// except Engine is usable (defaults documented on the fields).
type ServerConfig = server.Config

// CoalesceConfig tunes the server's cross-connection write coalescer
// (batch size cap, drain wait, or disabling it outright).
type CoalesceConfig = server.CoalesceConfig

// ServerStats is the server's JSON stats snapshot (connection and
// request counters, coalescing effectiveness, WAL appends vs syncs).
type ServerStats = server.StatsSnapshot

// NewServer creates a network server over an open engine. The server
// does not own the engine: Shutdown checkpoints it but the caller
// still closes it.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Client is the Go client for nblb-server: a connection pool speaking
// the pipelined binary protocol, with timeout/retry on idempotent
// reads and a streaming query iterator. See package repro/client for
// the full API; the essentials are re-exported here.
type Client = client.Client

// ClientBatch accumulates client-side ops for Client.Apply.
type ClientBatch = client.Batch

// ClientRows is Client.Query's streaming iterator (Next / Row / Err /
// Close), mirroring the embedded Cursor.
type ClientRows = client.Rows

// ServerError is a failure reported by the server (as opposed to a
// transport error); the client never retries these.
type ServerError = client.ServerError

// DialServer connects a Client to an nblb-server address.
func DialServer(addr string, opts ...client.Option) (*Client, error) {
	return client.Dial(addr, opts...)
}
