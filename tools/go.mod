// Tool dependencies, kept out of the repo's own (dependency-free)
// go.mod. CI builds the linters with
//
//	go run -modfile=tools/go.mod -mod=mod <pkg> ...
//
// so the versions are pinned here and reviewed like any other change,
// instead of floating behind `go run pkg@version`. -mod=mod lets the
// runner materialize tools/go.sum on the fly; the sum file is not
// committed because this container cannot reach a module proxy.
module repro/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
