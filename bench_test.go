package nblb

// One benchmark per paper artifact, as required by the reproduction
// harness. The full parameter sweeps (the actual figures) live in
// cmd/nblb-bench; these benches time the steady-state inner operation
// of each experiment so `go test -bench .` gives a one-screen summary.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/experiments"
	"repro/internal/idxcache"
	"repro/internal/metrics"
	"repro/internal/semid"
	"repro/internal/tuple"
	"repro/internal/vertical"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// --- Figure 2(a): the swap-cache policy ---------------------------------

func BenchmarkFig2aSwapCache(b *testing.B) {
	const items = 10000
	zipf := workload.NewZipf(workload.NewRand(1), items, 0.5)
	sim, err := idxcache.NewSim(workload.NewRand(2), items/4, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50000; i++ { // warm
		sim.Lookup(zipf.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Lookup(zipf.Next())
	}
}

func BenchmarkFig2aShrinkCache(b *testing.B) {
	const items = 10000
	zipf := workload.NewZipf(workload.NewRand(1), items, 0.5)
	sim, err := idxcache.NewSim(workload.NewRand(2), items/4, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		sim.Lookup(zipf.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Lookup(zipf.Next())
		if i%64 == 63 && sim.Capacity() > items/8 {
			sim.Shrink(1)
		}
	}
}

// --- Figure 2(b): the three-tier cost model -----------------------------

func BenchmarkFig2bCostModel(b *testing.B) {
	m := metrics.DefaultCostModel()
	rng := workload.NewRand(3)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += m.LookupSeconds(true, rng.Float64() < 0.9, rng.Float64() < 0.96)
	}
	_ = total
}

// --- Figure 2(c): measured engine lookups -------------------------------

func fig2cEngine(b *testing.B, cached bool) (*core.Index, [][]tuple.Value) {
	b.Helper()
	e, err := core.NewEngine(core.Options{PageSize: 8192, BufferPoolPages: 1 << 15})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	tb, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		b.Fatal(err)
	}
	const pages = 10000
	gen := wiki.NewGenerator(wiki.Config{Pages: pages, RevisionsPerPage: 1, Alpha: 0.5, Seed: 1})
	for i := 0; i < pages; i++ {
		if _, err := tb.Insert(gen.PageRow(i, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	opts := []core.IndexOption{core.WithFillFactor(0.68)}
	if cached {
		opts = append(opts, core.WithCache(wiki.CachedPageFields()...))
	}
	ix, err := tb.CreateIndex("name_title", []string{"page_namespace", "page_title"}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]tuple.Value, pages)
	for i := range keys {
		keys[i] = []tuple.Value{
			tuple.Int32(int32(wiki.NamespaceOf(i))),
			tuple.String(wiki.PageTitle(i)),
		}
	}
	return ix, keys
}

var fig2cProj = []string{"page_namespace", "page_title", "page_latest", "page_len"}

func BenchmarkFig2cCacheHit(b *testing.B) {
	ix, keys := fig2cEngine(b, true)
	if _, err := ix.WarmCache(); err != nil {
		b.Fatal(err)
	}
	// Collect verified-resident keys only.
	var hot [][]tuple.Value
	for _, k := range keys {
		if _, res, err := ix.Lookup(fig2cProj, k...); err == nil && res.CacheHit {
			hot = append(hot, k)
		}
	}
	if len(hot) == 0 {
		b.Fatal("no cache-resident keys")
	}
	rng := workload.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Lookup(fig2cProj, hot[rng.Intn(len(hot))]...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2cCacheHitParallel is the cache-hit path under parallel
// load — the configuration the sharded buffer pool and lock-free
// projection cache exist for. Run with -cpu 8 to see scaling.
func BenchmarkFig2cCacheHitParallel(b *testing.B) {
	ix, keys := fig2cEngine(b, true)
	if _, err := ix.WarmCache(); err != nil {
		b.Fatal(err)
	}
	var hot [][]tuple.Value
	for _, k := range keys {
		if _, res, err := ix.Lookup(fig2cProj, k...); err == nil && res.CacheHit {
			hot = append(hot, k)
		}
	}
	if len(hot) == 0 {
		b.Fatal("no cache-resident keys")
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seq.Add(1) * 0x9E3779B9
		buf := make(tuple.Row, 0, len(fig2cProj))
		for pb.Next() {
			n = n*1103515245 + 12345
			row, _, err := ix.LookupInto(buf, fig2cProj, hot[n%uint64(len(hot))]...)
			if err != nil {
				b.Error(err)
				return
			}
			buf = row
		}
	})
}

func BenchmarkFig2cNoCache(b *testing.B) {
	ix, keys := fig2cEngine(b, false)
	rng := workload.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Lookup(fig2cProj, keys[rng.Intn(len(keys))]...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: clustering and partitioning ------------------------------

func fig3Lookup(b *testing.B, clusterFrac float64, partitioned bool) {
	b.Helper()
	e, err := core.NewEngine(core.Options{PageSize: 4096, BufferPoolPages: 120, CountIO: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	gen := wiki.NewGenerator(wiki.Config{Pages: 1000, RevisionsPerPage: 15, Alpha: 0.5, Seed: 1})
	revs, latest := gen.Revisions()

	var lookup func(revIdx int) error
	if partitioned {
		hc, err := NewHotCold(HotColdConfig{
			Engine: e, Name: "rev", Schema: wiki.RevisionSchema(), KeyFields: []string{"rev_id"},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range revs {
			if r.Latest {
				_, err = hc.InsertHot(r.Row)
			} else {
				_, err = hc.InsertCold(r.Row)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		lookup = func(revIdx int) error {
			_, _, err := hc.Lookup(revs[revIdx].Row[0])
			return err
		}
	} else {
		tb, err := e.CreateTable("rev", wiki.RevisionSchema(), core.WithAppendOnlyHeap())
		if err != nil {
			b.Fatal(err)
		}
		rids := make([]RID, len(revs))
		for i, r := range revs {
			rid, err := tb.Insert(r.Row)
			if err != nil {
				b.Fatal(err)
			}
			rids[i] = rid
		}
		ix, err := tb.CreateIndex("rev_id", []string{"rev_id"}, core.WithFillFactor(0.68))
		if err != nil {
			b.Fatal(err)
		}
		if clusterFrac > 0 {
			hot := make([]RID, 0, len(latest))
			for _, idx := range latest {
				hot = append(hot, rids[idx])
			}
			if _, err := ClusterFraction(tb, hot, clusterFrac, nil); err != nil {
				b.Fatal(err)
			}
		}
		lookup = func(revIdx int) error {
			_, _, err := ix.Lookup(nil, revs[revIdx].Row[0])
			return err
		}
	}
	trace := gen.RevisionTrace(4096, 0.999, revs, latest)
	for _, idx := range trace { // warm
		if err := lookup(idx); err != nil {
			b.Fatal(err)
		}
	}
	counter := e.IOCounter()
	counter.ResetCounts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lookup(trace[i%len(trace)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(counter.Reads())/float64(b.N), "diskReads/op")
}

func BenchmarkFig3Unclustered(b *testing.B)    { fig3Lookup(b, 0, false) }
func BenchmarkFig3Clustered54(b *testing.B)    { fig3Lookup(b, 0.54, false) }
func BenchmarkFig3Clustered100(b *testing.B)   { fig3Lookup(b, 1.0, false) }
func BenchmarkFig3HotPartitioned(b *testing.B) { fig3Lookup(b, 0, true) }

// --- §4.1 encoding: analyze, pack, unpack --------------------------------

func encBenchData(b *testing.B) (*tuple.Schema, []tuple.Row) {
	b.Helper()
	gen := wiki.NewGenerator(wiki.Config{Pages: 10, RevisionsPerPage: 1, Alpha: 0.5, Seed: 1})
	rows := make([]tuple.Row, 5000)
	for i := range rows {
		rows[i] = gen.CarTelRow(i)
	}
	return wiki.CarTelSchema(), rows
}

func BenchmarkEncAnalyze(b *testing.B) {
	schema, rows := encBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := 0
		encoding.AnalyzeRows("cartel", schema, func() (tuple.Row, bool) {
			if j >= len(rows) {
				return nil, false
			}
			r := rows[j]
			j++
			return r, true
		})
	}
}

func BenchmarkEncWastePacked(b *testing.B) {
	schema, rows := encBenchData(b)
	j := 0
	report := encoding.AnalyzeRows("cartel", schema, func() (tuple.Row, bool) {
		if j >= len(rows) {
			return nil, false
		}
		r := rows[j]
		j++
		return r, true
	})
	recs := make([]encoding.Recommendation, len(report.Columns))
	for i, c := range report.Columns {
		recs[i] = c.Rec
	}
	codec, err := encoding.NewPackedCodec(schema, recs)
	if err != nil {
		b.Fatal(err)
	}
	w := encoding.NewBitWriter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := codec.Encode(rows[i%len(rows)], w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.Len())/8, "bytes/row")
}

func BenchmarkEncDeclaredCodec(b *testing.B) {
	schema, rows := encBenchData(b)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = tuple.Encode(schema, rows[i%len(rows)], buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(buf)), "bytes/row")
}

// --- §2.1.4 capacity closed form -----------------------------------------

func BenchmarkCapacityEstimate(b *testing.B) {
	e := idxcache.CapacityEstimate{
		KeyBytes: 360 << 20, FillFactor: 0.68, PageSize: 8192,
		PageOverhead: 44, ItemSize: 25, TableRows: 11_000_000,
	}
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += e.Items()
	}
	_ = sink
}

// --- §4.2 semantic ID routing ---------------------------------------------

func BenchmarkSemIDRoutingTable(b *testing.B) {
	layout, _ := semid.NewLayout(6)
	table := semid.NewTableRouter()
	const tuples = 100000
	ids := make([]uint64, tuples)
	for i := range ids {
		id, _ := layout.Make(uint64(i%64), uint64(i))
		ids[i] = id
		table.Add(id, uint64(i%64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.Route(ids[i%tuples]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemIDRoutingEmbedded(b *testing.B) {
	layout, _ := semid.NewLayout(6)
	embedded := semid.NewEmbeddedRouter(layout)
	const tuples = 100000
	ids := make([]uint64, tuples)
	for i := range ids {
		id, _ := layout.Make(uint64(i%64), uint64(i))
		ids[i] = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embedded.Route(ids[i%tuples]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §3.2 vertical partitioning -------------------------------------------

func vpartTable(b *testing.B) *vertical.VerticalTable {
	b.Helper()
	e, err := core.NewEngine(core.Options{PageSize: 4096, BufferPoolPages: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	schema := wiki.RevisionSchema()
	groups := [][]string{
		{"rev_page", "rev_text_id"},
		{"rev_timestamp", "rev_len", "rev_deleted"},
		{"rev_comment", "rev_user", "rev_user_text", "rev_minor_edit", "rev_parent_id"},
	}
	vt, err := vertical.NewVerticalTable(e, "rev", schema, "rev_id", groups)
	if err != nil {
		b.Fatal(err)
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: 200, RevisionsPerPage: 10, Alpha: 0.5, Seed: 1})
	revs, _ := gen.Revisions()
	for _, r := range revs {
		if err := vt.Insert(r.Row); err != nil {
			b.Fatal(err)
		}
	}
	return vt
}

func BenchmarkVerticalNarrowRead(b *testing.B) {
	vt := vpartTable(b)
	fields := []string{"rev_page", "rev_text_id"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vt.GetFields(tuple.Int64(int64(i%1000+1)), fields); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerticalFullRead(b *testing.B) {
	vt := vpartTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vt.Get(tuple.Int64(int64(i%1000 + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenches ------------------------------------------------

func BenchmarkBTreeInsert(b *testing.B) {
	ix, _ := fig2cEngine(b, false)
	tree := ix.Tree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("bench-key-%012d", i))
		if _, err := tree.Insert(key, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	ix, keys := fig2cEngine(b, false)
	tree := ix.Tree()
	encoded := make([][]byte, len(keys))
	for i, k := range keys {
		enc, err := tuple.EncodeKey(nil, k...)
		if err != nil {
			b.Fatal(err)
		}
		encoded[i] = enc
	}
	rng := workload.NewRand(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tree.Search(encoded[rng.Intn(len(encoded))]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- small experiment end-to-end benches ------------------------------------

func BenchmarkExpFig2aSmall(b *testing.B) {
	cfg := experiments.DefaultFig2aConfig()
	cfg.Items, cfg.Lookups, cfg.Sizes = 1000, 5000, []int{25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpFig2bSmall(b *testing.B) {
	cfg := experiments.DefaultFig2bConfig()
	cfg.Lookups = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig2b(cfg)
	}
}
