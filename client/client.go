// Package client is the Go client for nblb-server's binary protocol.
//
// A Client owns a small pool of TCP connections, each fully pipelined:
// any number of goroutines may issue requests concurrently, responses
// are matched by request ID, and a streaming Query consumes pages
// lazily like an embedded core.Cursor. Idempotent reads (Get, Query
// open, Stats, Ping) are retried on transport errors; writes are
// never retried — a timed-out Apply may or may not have committed,
// and the client surfaces that honestly instead of double-applying.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// Re-exported data types, so embedders and network callers share one
// vocabulary (the nblb facade aliases these too).
type (
	// Field declares one column for CreateTable.
	Field = tuple.Field
	// Value is one field value.
	Value = tuple.Value
	// Row is an ordered list of values.
	Row = tuple.Row
	// ApplyResult reports per-op outcomes of an Apply: Applied counts
	// successes, OpErrs[i] is "" for op i's success, RIDs[i] its
	// resulting packed RID.
	ApplyResult = wire.ApplyResp
	// Kind tags a field's declared type.
	Kind = tuple.Kind
)

// Field kinds, for declaring CreateTable columns.
const (
	KindInt64     = tuple.KindInt64
	KindInt32     = tuple.KindInt32
	KindInt16     = tuple.KindInt16
	KindInt8      = tuple.KindInt8
	KindBool      = tuple.KindBool
	KindFloat64   = tuple.KindFloat64
	KindChar      = tuple.KindChar
	KindString    = tuple.KindString
	KindBytes     = tuple.KindBytes
	KindTimestamp = tuple.KindTimestamp
)

// Value constructors, re-exported so network callers build rows
// without importing any internal package.
var (
	Int64         = tuple.Int64
	Int32         = tuple.Int32
	Int16         = tuple.Int16
	Int8          = tuple.Int8
	Bool          = tuple.Bool
	Float64       = tuple.Float64
	Char          = tuple.Char
	String        = tuple.String
	Bytes         = tuple.Bytes
	Timestamp     = tuple.Timestamp
	TimestampUnix = tuple.TimestampUnix
	Null          = tuple.Null
)

// ServerError is an error the server attributed to the request (bad
// table, duplicate key, malformed row). It is never retried. Code
// carries the server's wire.ErrCode* classification so callers can
// dispatch without matching message text.
type ServerError struct {
	Msg  string
	Code uint64
}

func (e *ServerError) Error() string { return e.Msg }

// ErrTimeout is returned when a request exceeds the configured
// timeout. For writes the op may still commit server-side.
var ErrTimeout = errors.New("client: request timed out")

// Option configures Dial.
type Option func(*config)

type config struct {
	poolSize    int
	timeout     time.Duration
	readRetries int
}

// WithPoolSize sets the connection pool size (default 2).
func WithPoolSize(n int) Option { return func(c *config) { c.poolSize = n } }

// WithTimeout sets the per-request timeout (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithReadRetries sets how many times idempotent reads are retried on
// transport errors (default 2). Server-attributed errors never retry.
func WithReadRetries(n int) Option { return func(c *config) { c.readRetries = n } }

// Client is a pooled, pipelined connection to one nblb-server.
type Client struct {
	addr string
	cfg  config

	mu     sync.Mutex
	conns  []*clientConn
	closed bool
	next   atomic.Uint64
}

// Dial connects to an nblb-server. The pool dials lazily; Dial itself
// verifies the address with one connection.
func Dial(addr string, opts ...Option) (*Client, error) {
	cfg := config{poolSize: 2, timeout: 10 * time.Second, readRetries: 2}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.poolSize < 1 {
		cfg.poolSize = 1
	}
	c := &Client{addr: addr, cfg: cfg, conns: make([]*clientConn, cfg.poolSize)}
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	_ = cc
	return c, nil
}

// Close severs every pooled connection. In-flight requests fail with
// transport errors.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.conns {
		if cc != nil {
			cc.close(errors.New("client: closed"))
		}
	}
	return nil
}

// conn returns a live pooled connection, redialing a broken slot.
func (c *Client) conn() (*clientConn, error) {
	i := int(c.next.Add(1)) % len(c.conns)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("client: closed")
	}
	cc := c.conns[i]
	if cc != nil && !cc.broken() {
		return cc, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.timeout)
	if err != nil {
		return nil, err
	}
	cc = newClientConn(nc)
	c.conns[i] = cc
	return cc, nil
}

// roundTrip sends one request on one pooled connection and waits for
// its single response frame.
func (c *Client) roundTrip(typ uint8, payload []byte) (wire.Frame, error) {
	cc, err := c.conn()
	if err != nil {
		return wire.Frame{}, err
	}
	return cc.roundTrip(typ, payload, c.cfg.timeout)
}

// readRoundTrip is roundTrip with transport-error retries, for
// idempotent requests only.
func (c *Client) readRoundTrip(typ uint8, payload []byte) (wire.Frame, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.readRetries; attempt++ {
		f, err := c.roundTrip(typ, payload)
		if err == nil {
			return f, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return f, err
		}
		lastErr = err
	}
	return wire.Frame{}, lastErr
}

// Ping round-trips an empty frame (retried like a read).
func (c *Client) Ping() error {
	_, err := c.readRoundTrip(wire.TPing, nil)
	return err
}

// CreateTable declares a table.
func (c *Client) CreateTable(table string, fields ...Field) error {
	m := wire.CreateTableReq{Table: table, Fields: fields}
	_, err := c.roundTrip(wire.TCreateTable, m.Marshal(nil))
	return err
}

// CreateIndex declares an index over a table's fields.
func (c *Client) CreateIndex(table, index string, fields []string, unique bool) error {
	m := wire.CreateIndexReq{Table: table, Index: index, Fields: fields, Unique: unique}
	_, err := c.roundTrip(wire.TCreateIndex, m.Marshal(nil))
	return err
}

// Checkpoint forces an engine checkpoint.
func (c *Client) Checkpoint() error {
	_, err := c.roundTrip(wire.TCheckpoint, nil)
	return err
}

// Stats fetches the server's counters as raw JSON (schema:
// server.StatsSnapshot).
func (c *Client) Stats() ([]byte, error) {
	f, err := c.readRoundTrip(wire.TStats, nil)
	if err != nil {
		return nil, err
	}
	var m wire.StatsResp
	if err := m.Unmarshal(f.Payload); err != nil {
		return nil, err
	}
	return m.JSON, nil
}

// Get performs a point lookup through a unique index. found=false
// with a nil error means the key does not exist.
func (c *Client) Get(table, index string, key ...Value) (Row, bool, error) {
	m := wire.GetReq{Table: table, Index: index, Key: key}
	f, err := c.readRoundTrip(wire.TGet, m.Marshal(nil))
	if err != nil {
		return nil, false, err
	}
	var resp wire.GetResp
	if err := resp.Unmarshal(f.Payload); err != nil {
		return nil, false, err
	}
	return resp.Row, resp.Found, nil
}

// Apply sends a batch of mutations. The server may coalesce them with
// other connections' ops into one shared engine batch; results are
// attributed per op either way. Apply is not retried on transport
// errors (a lost ack does not mean a lost write).
func (c *Client) Apply(table string, b *Batch) (ApplyResult, error) {
	m := wire.ApplyReq{Table: table, Ops: b.ops}
	f, err := c.roundTrip(wire.TApply, m.Marshal(nil))
	if err != nil {
		return ApplyResult{}, err
	}
	var resp wire.ApplyResp
	if err := resp.Unmarshal(f.Payload); err != nil {
		return ApplyResult{}, err
	}
	return resp, nil
}

// Batch accumulates mutations for Apply. The zero Batch is ready to
// use.
type Batch struct{ ops []wire.Op }

// Insert queues a row insert.
func (b *Batch) Insert(row Row) *Batch {
	b.ops = append(b.ops, wire.Op{Kind: wire.OpInsert, Row: row})
	return b
}

// Update queues an update of the record at packed RID rid.
func (b *Batch) Update(rid uint64, row Row) *Batch {
	b.ops = append(b.ops, wire.Op{Kind: wire.OpUpdate, RID: rid, Row: row})
	return b
}

// Delete queues a delete of the record at packed RID rid.
func (b *Batch) Delete(rid uint64) *Batch {
	b.ops = append(b.ops, wire.Op{Kind: wire.OpDelete, RID: rid})
	return b
}

// Len returns the number of queued ops.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// --- connection ---

// clientConn is one pipelined connection: writes are serialized by wmu
// and a single reader goroutine demultiplexes responses by request ID.
// Per-request channels are never closed; conn death is broadcast by
// closing dead, which every waiter (and the reader's own sends)
// selects against — so there is no send-on-closed-channel window.
type clientConn struct {
	nc   net.Conn
	dead chan struct{} // closed exactly once when the conn breaks

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex // pending map + err
	pending map[uint64]chan wire.Frame
	err     error

	nextID atomic.Uint64
}

func newClientConn(nc net.Conn) *clientConn {
	cc := &clientConn{
		nc:      nc,
		dead:    make(chan struct{}),
		pending: make(map[uint64]chan wire.Frame),
	}
	go cc.readLoop()
	return cc
}

func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

func (cc *clientConn) lastErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err
}

// close fails every pending request and severs the socket.
func (cc *clientConn) close(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	cc.mu.Unlock()
	cc.nc.Close()
	close(cc.dead)
}

func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, 64<<10)
	for {
		// Fresh buffer per frame: payloads are handed to waiters.
		f, _, err := wire.ReadFrame(br, nil)
		if err != nil {
			cc.close(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		cc.mu.Lock()
		ch := cc.pending[f.ReqID]
		if ch != nil && (f.Type != wire.TQueryPage || isLastPage(f.Payload)) {
			delete(cc.pending, f.ReqID)
		}
		cc.mu.Unlock()
		if ch != nil {
			select {
			case ch <- f: // buffered; Query streams backpressure here
			case <-cc.dead:
				return
			}
		}
	}
}

// isLastPage peeks a page's Last flag without a full decode.
func isLastPage(payload []byte) bool {
	return len(payload) > 0 && payload[0]&1 != 0
}

// register allocates a request ID and its response channel. bufN > 1
// for streaming responses.
func (cc *clientConn) register(bufN int) (uint64, chan wire.Frame, error) {
	id := cc.nextID.Add(1)
	ch := make(chan wire.Frame, bufN)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return 0, nil, cc.err
	}
	cc.pending[id] = ch
	return id, ch, nil
}

func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

func (cc *clientConn) write(id uint64, typ uint8, payload []byte) error {
	buf := wire.AppendFrame(nil, id, typ, payload)
	cc.wmu.Lock()
	_, err := cc.nc.Write(buf)
	cc.wmu.Unlock()
	if err != nil {
		cc.close(fmt.Errorf("client: write failed: %w", err))
	}
	return err
}

// roundTrip issues one single-response request.
func (cc *clientConn) roundTrip(typ uint8, payload []byte, timeout time.Duration) (wire.Frame, error) {
	id, ch, err := cc.register(1)
	if err != nil {
		return wire.Frame{}, err
	}
	if err := cc.write(id, typ, payload); err != nil {
		cc.forget(id)
		return wire.Frame{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f := <-ch:
		return checkErr(f)
	case <-cc.dead:
		// The response may have been buffered just before the conn
		// died; prefer it over the transport error.
		select {
		case f := <-ch:
			return checkErr(f)
		default:
		}
		return wire.Frame{}, cc.lastErr()
	case <-timer.C:
		cc.forget(id)
		// The response may still arrive and land in the buffered
		// channel; it is garbage-collected with the channel.
		return wire.Frame{}, ErrTimeout
	}
}

// checkErr converts a TErr frame into a *ServerError.
func checkErr(f wire.Frame) (wire.Frame, error) {
	if f.Type != wire.TErr {
		return f, nil
	}
	var m wire.ErrResp
	if err := m.Unmarshal(f.Payload); err != nil {
		return f, err
	}
	return f, &ServerError{Msg: m.Msg, Code: m.Code}
}
