package client

import (
	"time"

	"repro/internal/wire"
)

// QueryOption configures Client.Query, mirroring the embedded
// core.Query options.
type QueryOption func(*wire.QueryReq)

// WithIndex routes the query through the named index (key order, key
// bounds).
func WithIndex(name string) QueryOption {
	return func(q *wire.QueryReq) { q.Index = name }
}

// WithKeyRange bounds an index query to lo ≤ key < hi (nil =
// unbounded; bounds may be key-field prefixes).
func WithKeyRange(lo, hi Row) QueryOption {
	return func(q *wire.QueryReq) { q.Lo, q.Hi = lo, hi }
}

// WithPrefix bounds an index query to keys whose leading fields equal
// the given values.
func WithPrefix(vals ...Value) QueryOption {
	return func(q *wire.QueryReq) { q.Prefix = vals }
}

// WithProjection restricts rows to the named fields.
func WithProjection(fields ...string) QueryOption {
	return func(q *wire.QueryReq) { q.Projection = fields }
}

// WithLimit stops the stream after n rows.
func WithLimit(n uint64) QueryOption {
	return func(q *wire.QueryReq) { q.Limit = n }
}

// WithReverse iterates in descending key order.
func WithReverse() QueryOption {
	return func(q *wire.QueryReq) { q.Reverse = true }
}

// WithPageSize sets rows per streamed page (0 = server default).
func WithPageSize(n uint32) QueryOption {
	return func(q *wire.QueryReq) { q.PageSize = n }
}

// WithRIDs asks the server to attach each row's packed RID (see
// Rows.RID).
func WithRIDs() QueryOption {
	return func(q *wire.QueryReq) { q.WithRIDs = true }
}

// WithParallel asks the server to run the scan as segmented parallel
// workers (requires WithIndex and forward order; n ≤ 1 = serial; the
// server clamps n to its core count). Rows arrive in global key order
// unless WithUnordered is also set.
func WithParallel(n uint32) QueryOption {
	return func(q *wire.QueryReq) { q.Parallel = n }
}

// WithUnordered lets a parallel scan interleave segment blocks instead
// of merging them into global key order — the maximum-throughput mode.
// No effect without WithParallel.
func WithUnordered() QueryOption {
	return func(q *wire.QueryReq) { q.Unordered = true }
}

// Query opens a streaming cursor over a table. Pages flow lazily as
// Next is called — a slow consumer backpressures the server instead of
// buffering the result set. Close early to abandon a stream.
//
// Opening is idempotent, but an in-flight stream is not transparently
// retried: a transport error mid-stream surfaces via Err.
func (c *Client) Query(table string, opts ...QueryOption) (*Rows, error) {
	req := wire.QueryReq{Table: table}
	for _, o := range opts {
		o(&req)
	}
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	id, ch, err := cc.register(maxBufferedPages)
	if err != nil {
		return nil, err
	}
	if err := cc.write(id, wire.TQuery, req.Marshal(nil)); err != nil {
		cc.forget(id)
		return nil, err
	}
	return &Rows{cc: cc, ch: ch, id: id, timeout: c.cfg.timeout}, nil
}

// maxBufferedPages bounds how many response pages the reader goroutine
// will hold for a slow Rows consumer before stalling the connection.
const maxBufferedPages = 32

// Rows streams query results, mirroring core.Cursor: Next / Row / RID
// / Err / Close. Rows is not safe for concurrent use.
type Rows struct {
	cc      *clientConn
	ch      chan wire.Frame
	id      uint64
	timeout time.Duration

	page wire.QueryPage
	idx  int
	row  Row
	rid  uint64
	err  error
	done bool
}

// Next advances to the next row, fetching pages as needed. It returns
// false at the end of the stream or on error (check Err).
func (r *Rows) Next() bool {
	for {
		if r.err != nil {
			return false
		}
		if r.idx < len(r.page.Rows) {
			r.row = r.page.Rows[r.idx]
			if r.idx < len(r.page.RIDs) {
				r.rid = r.page.RIDs[r.idx]
			} else {
				r.rid = 0
			}
			r.idx++
			return true
		}
		if r.done {
			return false
		}
		if !r.fetchPage() {
			return false
		}
	}
}

func (r *Rows) fetchPage() bool {
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case f := <-r.ch:
		if _, err := checkErr(f); err != nil {
			r.err = err
			r.done = true
			return false
		}
		r.page = wire.QueryPage{}
		if err := r.page.Unmarshal(f.Payload); err != nil {
			r.err = err
			r.done = true
			return false
		}
		r.idx = 0
		r.done = r.page.Last
		return true
	case <-r.cc.dead:
		r.err = r.cc.lastErr()
		r.done = true
		return false
	case <-timer.C:
		r.err = ErrTimeout
		r.done = true
		r.abandon()
		return false
	}
}

// Row returns the current row. The slice is owned by the stream page;
// copy values that must outlive the next page fetch.
func (r *Rows) Row() Row { return r.row }

// RID returns the current row's packed RID when the query used
// WithRIDs, else 0.
func (r *Rows) RID() uint64 { return r.rid }

// Err returns the first error the stream hit, if any.
func (r *Rows) Err() error { return r.err }

// Close releases the stream. Abandoning an unfinished stream severs
// its connection — the wire protocol has no cancel message, and a
// leaked stream would otherwise stall the shared reader once its page
// buffer fills. Finished streams are free to close.
func (r *Rows) Close() error {
	if !r.done {
		r.abandon()
		r.done = true
	}
	return nil
}

// abandon drops the pending entry; the server may still stream pages,
// which the reader then discards by unknown request ID. If the stream
// is mid-flight the connection is closed so the discarded pages don't
// stall the reader behind a full channel.
func (r *Rows) abandon() {
	r.cc.forget(r.id)
	r.cc.close(ErrTimeout)
}
