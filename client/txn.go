package client

import (
	"errors"
	"time"

	"repro/internal/wire"
)

// ErrTxnConflict is returned by Txn.Commit when the server aborted the
// transaction under first-committer-wins: another transaction committed
// a newer version of a row this one updated or deleted. Retry the whole
// transaction against a fresh snapshot.
var ErrTxnConflict = errors.New("client: transaction conflict")

// Txn is a server-side snapshot transaction. All of its requests ride
// one pinned connection — transaction state lives on the server's
// per-connection registry, so the pool's round-robin must not scatter
// them. A Txn is not safe for concurrent use.
//
// Reads through Txn.Query see exactly the snapshot taken at Begin —
// not the transaction's own staged writes (no read-your-own-writes);
// writes through Txn.Apply stage server-side and become durable —
// atomically, all or nothing — at Commit. If the connection drops, the
// server aborts the transaction.
type Txn struct {
	cc      *clientConn
	id      uint64
	startTS uint64
	timeout time.Duration
	done    bool
}

// Begin opens a snapshot transaction on the server.
func (c *Client) Begin() (*Txn, error) {
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	f, err := cc.roundTrip(wire.TTxnBegin, nil, c.cfg.timeout)
	if err != nil {
		return nil, err
	}
	var resp wire.TxnBeginResp
	if err := resp.Unmarshal(f.Payload); err != nil {
		return nil, err
	}
	return &Txn{cc: cc, id: resp.TxnID, startTS: resp.StartTS, timeout: c.cfg.timeout}, nil
}

// StartTS is the commit timestamp the snapshot reads as of.
func (t *Txn) StartTS() uint64 { return t.startTS }

// Apply stages a batch of mutations into the transaction. Staged rows
// have no RIDs until Commit, so the result's RIDs are all zero; per-op
// errors (duplicate key against the snapshot, bad row) are attributed
// as usual and staging failures leave the batch unstaged.
func (t *Txn) Apply(table string, b *Batch) (ApplyResult, error) {
	if t.done {
		return ApplyResult{}, errors.New("client: transaction finished")
	}
	m := wire.ApplyReq{Table: table, Ops: b.ops, TxnID: t.id}
	f, err := t.cc.roundTrip(wire.TApply, m.Marshal(nil), t.timeout)
	if err != nil {
		return ApplyResult{}, err
	}
	var resp wire.ApplyResp
	if err := resp.Unmarshal(f.Payload); err != nil {
		return ApplyResult{}, err
	}
	return resp, nil
}

// Query opens a streaming cursor over the Begin snapshot (staged
// writes excluded). The stream must be drained or closed before Commit.
func (t *Txn) Query(table string, opts ...QueryOption) (*Rows, error) {
	if t.done {
		return nil, errors.New("client: transaction finished")
	}
	req := wire.QueryReq{Table: table, TxnID: t.id}
	for _, o := range opts {
		o(&req)
	}
	id, ch, err := t.cc.register(maxBufferedPages)
	if err != nil {
		return nil, err
	}
	if err := t.cc.write(id, wire.TQuery, req.Marshal(nil)); err != nil {
		t.cc.forget(id)
		return nil, err
	}
	return &Rows{cc: t.cc, ch: ch, id: id, timeout: t.timeout}, nil
}

// Commit atomically applies every staged write. On ErrTxnConflict the
// transaction rolled back cleanly and can be retried from Begin. A
// transport error is ambiguous: the commit may or may not have landed,
// exactly like a timed-out Apply.
func (t *Txn) Commit() error {
	if t.done {
		return errors.New("client: transaction finished")
	}
	t.done = true
	m := wire.TxnFinishReq{TxnID: t.id}
	_, err := t.cc.roundTrip(wire.TTxnCommit, m.Marshal(nil), t.timeout)
	var se *ServerError
	if errors.As(err, &se) && se.Code == wire.ErrCodeTxnConflict {
		return ErrTxnConflict
	}
	return err
}

// Abort discards the transaction's staged writes. Aborting an already
// finished transaction is a no-op.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	t.done = true
	m := wire.TxnFinishReq{TxnID: t.id}
	_, err := t.cc.roundTrip(wire.TTxnAbort, m.Marshal(nil), t.timeout)
	return err
}
