package idxcache

import (
	"testing"
	"testing/quick"
)

func TestSlotRankBasics(t *testing.T) {
	// Region [100, 200), entry 25: aligned slots at 100, 125, 150, 175.
	ranks := slotRank(100, 200, 25, 150, nil)
	if len(ranks) != 4 {
		t.Fatalf("got %d slots, want 4", len(ranks))
	}
	if ranks[0] != 150 {
		t.Errorf("nearest slot to S=150 is %d, want 150", ranks[0])
	}
	// All offsets aligned and in bounds.
	seen := map[int]bool{}
	for _, off := range ranks {
		if off%25 != 0 {
			t.Errorf("offset %d not aligned", off)
		}
		if off < 100 || off+25 > 200 {
			t.Errorf("offset %d out of bounds", off)
		}
		if seen[off] {
			t.Errorf("offset %d duplicated", off)
		}
		seen[off] = true
	}
}

func TestSlotRankDistancesNonDecreasing(t *testing.T) {
	ranks := slotRank(40, 400, 25, 210, nil)
	prev := -1
	for _, off := range ranks {
		d := off - 210
		if d < 0 {
			d = -d
		}
		if prev >= 0 && d < prev {
			t.Fatalf("distance decreased: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestSlotRankUnalignedBounds(t *testing.T) {
	// lo=101 → first aligned slot is 125.
	ranks := slotRank(101, 200, 25, 0, nil)
	for _, off := range ranks {
		if off < 101 {
			t.Errorf("slot %d starts before region", off)
		}
	}
	if len(ranks) != 2 { // 125, 150 (175+25=200 fits too)
		// 125,150,175 all have off+25 <= 200 → 3 slots.
		if len(ranks) != 3 {
			t.Errorf("got %d slots", len(ranks))
		}
	}
}

func TestSlotRankDegenerate(t *testing.T) {
	if got := slotRank(100, 110, 25, 0, nil); len(got) != 0 {
		t.Errorf("region smaller than entry should have 0 slots, got %d", len(got))
	}
	if got := slotRank(100, 100, 25, 0, nil); len(got) != 0 {
		t.Errorf("empty region should have 0 slots, got %d", len(got))
	}
	if got := slotRank(100, 200, 0, 0, nil); len(got) != 0 {
		t.Errorf("zero entry size should have 0 slots, got %d", len(got))
	}
}

func TestPropertySlotRankCompleteAndStable(t *testing.T) {
	f := func(loRaw, sizeRaw, eRaw, sRaw uint16) bool {
		lo := int(loRaw%500) + 10
		hi := lo + int(sizeRaw%1000)
		e := int(eRaw%64) + 8
		s := int(sRaw % 1200)
		ranks := slotRank(lo, hi, e, s, nil)
		if len(ranks) != numSlots(lo, hi, e) {
			return false
		}
		seen := map[int]bool{}
		for _, off := range ranks {
			if off%e != 0 || off < lo || off+e > hi || seen[off] {
				return false
			}
			seen[off] = true
		}
		// Stability: shrinking the region keeps surviving slot offsets
		// identical (alignment is absolute, not relative).
		if hi-e > lo {
			shrunk := slotRank(lo, hi-e, e, s, nil)
			for _, off := range shrunk {
				if !seen[off] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
