// Package idxcache implements the paper's Section 2.1 index cache: the
// free space of B+Tree leaf pages is recycled as a volatile cache of
// hot tuples' field values.
//
// Key properties, all from the paper:
//
//   - Slots are aligned to absolute page offsets that are multiples of
//     the entry size, so slot boundaries are stable as the free region
//     grows and shrinks around them.
//   - Index key inserts overwrite the periphery of the region freely;
//     the cache keeps hot items near the stable point S where they are
//     overwritten last.
//   - Slots are grouped into buckets of N; a newly inserted item lands
//     in a random free slot (evicting a random peripheral item when
//     full), and a lookup hit swaps the item with a random entry in the
//     adjacent bucket closer to S.
//   - Cache writes never dirty the page: contents are volatile and
//     protected by the CSNp/CSNidx scheme plus a predicate log.
//
// Entry layout within a slot: 8-byte packed RID (nonzero; zero marks an
// empty slot) followed by the fixed-width cached payload.
package idxcache

// ridBytes is the slot header: the packed RID identifying the entry.
const ridBytes = 8

// slotRank enumerates the cache slots of a free region [lo, hi) with
// entry size e, ordered by distance from the stable point s (closest
// first). The returned offsets are absolute page offsets, each a
// multiple of e, with off ≥ lo and off+e ≤ hi.
//
// The ordering is what gives the cache its "hot in the middle" shape:
// rank 0 is the last slot index growth will overwrite.
func slotRank(lo, hi, e, s int, out []int) []int {
	out = out[:0]
	if e <= 0 || hi-lo < e {
		return out
	}
	first := (lo + e - 1) / e * e // first aligned offset ≥ lo
	if first+e > hi {
		return out
	}
	last := (hi - e) / e * e // last aligned offset with room for a slot
	n := (last-first)/e + 1

	// Index of the slot whose start is nearest S.
	i0 := (s - first + e/2) / e
	if i0 < 0 {
		i0 = 0
	}
	if i0 >= n {
		i0 = n - 1
	}
	dist := func(i int) int {
		d := first + i*e - s
		if d < 0 {
			return -d
		}
		return d
	}
	l, r := i0, i0+1
	for l >= 0 || r < n {
		switch {
		case l < 0:
			out = append(out, first+r*e)
			r++
		case r >= n:
			out = append(out, first+l*e)
			l--
		case dist(l) <= dist(r):
			out = append(out, first+l*e)
			l--
		default:
			out = append(out, first+r*e)
			r++
		}
	}
	return out
}

// slotRankTo is slotRank stopping as soon as the slot at absolute
// offset target has been emitted: it returns the rank prefix and
// target's rank index, or -1 when target is not an aligned slot of the
// region. The prefix is identical to slotRank's first rank+1 entries,
// so promotion — which only ever swaps toward better ranks — never
// needs the rest.
func slotRankTo(lo, hi, e, s, target int, out []int) ([]int, int) {
	out = out[:0]
	if e <= 0 || hi-lo < e {
		return out, -1
	}
	first := (lo + e - 1) / e * e
	if first+e > hi {
		return out, -1
	}
	last := (hi - e) / e * e
	n := (last-first)/e + 1

	i0 := (s - first + e/2) / e
	if i0 < 0 {
		i0 = 0
	}
	if i0 >= n {
		i0 = n - 1
	}
	dist := func(i int) int {
		d := first + i*e - s
		if d < 0 {
			return -d
		}
		return d
	}
	l, r := i0, i0+1
	for l >= 0 || r < n {
		var off int
		switch {
		case l < 0:
			off = first + r*e
			r++
		case r >= n:
			off = first + l*e
			l--
		case dist(l) <= dist(r):
			off = first + l*e
			l--
		default:
			off = first + r*e
			r++
		}
		out = append(out, off)
		if off == target {
			return out, len(out) - 1
		}
	}
	return out, -1
}

// numSlots returns how many aligned slots fit in [lo, hi).
func numSlots(lo, hi, e int) int {
	if e <= 0 || hi-lo < e {
		return 0
	}
	first := (lo + e - 1) / e * e
	if first+e > hi {
		return 0
	}
	last := (hi - e) / e * e
	return (last-first)/e + 1
}
