package idxcache

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/btree"
)

// TestCacheContentionNeverCorrupts hammers one leaf from many
// goroutines doing the full cache protocol (Prepare, Lookup, Insert)
// concurrently with index churn. The §2.1.3 give-up rule means some
// visits run with only a shared latch — those must skip cache writes,
// and nothing may ever corrupt the index or return a payload for the
// wrong rid.
func TestCacheContentionNeverCorrupts(t *testing.T) {
	tr := newCacheTree(t, 4096)
	c := mustCache(t, Config{PayloadSize: 16, PredLogLimit: 128, Seed: 1})
	for i := 0; i < 50; i++ {
		if _, err := tr.Insert(k64(i), uint64(i+1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				i := (g*31 + n) % 50
				rid := uint64(i + 1)
				err := tr.VisitLeaf(k64(i), func(l *btree.Leaf) {
					if !c.Prepare(l) {
						return // non-exclusive visit over invalid cache: skip
					}
					if got, ok := c.Lookup(l, rid); ok {
						if binary.LittleEndian.Uint64(got) != rid {
							errCh <- errWrongPayload
							return
						}
						return
					}
					p := make([]byte, c.PayloadSize())
					binary.LittleEndian.PutUint64(p, rid)
					c.Insert(l, rid, p)
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	// Concurrent index churn: inserts shrink the free region, updates
	// push predicates through the log.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 300; n++ {
			if _, err := tr.Insert(k64(1000+n), uint64(1000+n)); err != nil {
				errCh <- err
				return
			}
			if n%5 == 0 {
				c.NotifyUpdate(k64(n % 50))
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after contention: %v", err)
	}
	st := c.Stats()
	t.Logf("contention stats: %+v", st)
	if st.Lookups == 0 || st.Inserts == 0 {
		t.Error("stress test exercised nothing")
	}
}

type contentionErr string

func (e contentionErr) Error() string { return string(e) }

const errWrongPayload = contentionErr("cache returned payload for wrong rid")
