package idxcache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
)

// Stats counts cache activity. All fields are totals since creation.
type Stats struct {
	Lookups           int64
	Hits              int64
	Misses            int64
	Inserts           int64
	Evictions         int64
	Swaps             int64
	PageInvalidations int64 // page caches zeroed (CSN mismatch or predicate hit)
	FullInvalidations int64 // CSNidx bumps
	SkippedNoLatch    int64 // cache writes abandoned: exclusive latch unavailable
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache manages the index cache of one B+Tree: entry geometry, the
// global CSNidx, the predicate log, and placement randomness. The
// per-page state lives entirely in the pages themselves.
type Cache struct {
	payloadSize int
	entrySize   int
	bucketN     int

	csnIdx atomic.Uint32
	log    *PredLog

	// rngState drives placement randomness: each draw is one atomic add
	// plus a splitmix64 mix, so the hit path's promotion never takes a
	// lock. Deterministic for a given seed and draw order.
	rngState atomic.Uint64

	scratch sync.Pool // *[]int rank buffers

	lookups, hits, misses     atomic.Int64
	inserts, evictions, swaps atomic.Int64
	pageInval, fullInval      atomic.Int64
	skipped                   atomic.Int64
}

// Config parameterizes a Cache.
type Config struct {
	// PayloadSize is the fixed width of the cached field values.
	// (The paper's Wikipedia example caches 4 fields in 25-byte items.)
	PayloadSize int
	// BucketN is the number of slots per bucket for the swap policy.
	// Defaults to 4.
	BucketN int
	// PredLogLimit is the predicate-log escalation threshold. Beyond
	// this many pending predicates, the whole cache is invalidated via
	// a CSNidx bump. Defaults to 1024. Zero means every update
	// escalates (fine-grained invalidation off).
	PredLogLimit int
	// Seed drives placement randomness deterministically.
	Seed int64
}

// New creates a cache manager for entries of the given payload size.
func New(cfg Config) (*Cache, error) {
	if cfg.PayloadSize <= 0 {
		return nil, fmt.Errorf("idxcache: payload size must be positive, got %d", cfg.PayloadSize)
	}
	if cfg.BucketN == 0 {
		cfg.BucketN = 4
	}
	if cfg.BucketN < 1 {
		return nil, fmt.Errorf("idxcache: bucket size must be positive, got %d", cfg.BucketN)
	}
	if cfg.PredLogLimit == 0 {
		cfg.PredLogLimit = 1024
	}
	c := &Cache{
		payloadSize: cfg.PayloadSize,
		entrySize:   ridBytes + cfg.PayloadSize,
		bucketN:     cfg.BucketN,
		log:         NewPredLog(cfg.PredLogLimit),
	}
	c.rngState.Store(uint64(cfg.Seed))
	c.scratch.New = func() any { s := make([]int, 0, 512); return &s }
	// Start CSNidx at 1 so freshly formatted pages (CSNp = 0) are
	// treated as invalid and zeroed before first use.
	c.csnIdx.Store(1)
	return c, nil
}

// EntrySize returns the slot width: 8 bytes of RID plus the payload.
func (c *Cache) EntrySize() int { return c.entrySize }

// PayloadSize returns the cached-field width.
func (c *Cache) PayloadSize() int { return c.payloadSize }

// CSN returns the current global CSNidx.
func (c *Cache) CSN() uint32 { return c.csnIdx.Load() }

// Log exposes the predicate log (for tests and stats).
func (c *Cache) Log() *PredLog { return c.log }

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:           c.lookups.Load(),
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Inserts:           c.inserts.Load(),
		Evictions:         c.evictions.Load(),
		Swaps:             c.swaps.Load(),
		PageInvalidations: c.pageInval.Load(),
		FullInvalidations: c.fullInval.Load(),
		SkippedNoLatch:    c.skipped.Load(),
	}
}

// InvalidateAll invalidates every page's cache at once by bumping
// CSNidx — the paper's O(1) full-index invalidation. Used on restart,
// on predicate-log escalation, and on cache reconfiguration.
func (c *Cache) InvalidateAll() {
	c.csnIdx.Add(1)
	c.fullInval.Add(1)
}

// SeedCSN forces CSNidx to csn, used when reopening an engine from a
// checkpoint: on-disk leaf pages carry the CSNs they were checkpointed
// with, so a fresh cache restarting from 1 could collide with a
// resurrected page's CSNp and validate stale (pre-crash) cache entries.
// Seeding strictly above the checkpointed CSN makes every resurrected
// page read as invalid, which is the restart semantics the paper's
// volatile cache requires anyway.
func (c *Cache) SeedCSN(csn uint32) {
	c.csnIdx.Store(csn)
}

// NotifyUpdate must be called when a tuple indexed under key is updated
// or deleted, so stale cache entries cannot be served. It appends to
// the predicate log, escalating to a full invalidation past the
// threshold.
func (c *Cache) NotifyUpdate(key []byte) {
	if c.log.Append(key) {
		c.InvalidateAll()
		c.log.Clear()
	}
}

// Prepare validates the page's cache against CSNidx and the predicate
// log, zeroing it as needed. It returns false when the cache on this
// page is unusable for this visit (invalid but the visit lacks the
// exclusive latch to repair it). Callers must Prepare before Lookup or
// Insert on a leaf.
func (c *Cache) Prepare(l *btree.Leaf) bool {
	csn := c.csnIdx.Load()
	if l.CSN() != csn || l.CacheEntrySize() != c.entrySize {
		if !l.Exclusive() {
			c.skipped.Add(1)
			return false
		}
		c.zeroRegion(l)
		l.SetCSN(csn)
		l.SetCacheEntrySize(c.entrySize)
		l.SetAppliedSeq(c.log.HeadSeq())
		c.pageInval.Add(1)
		return true
	}
	head := c.log.HeadSeq()
	applied := l.AppliedSeq()
	if applied == head {
		return true
	}
	min, max, ok := l.KeyRange()
	if ok && c.log.MatchRange(applied, min, max) {
		if !l.Exclusive() {
			c.skipped.Add(1)
			return false
		}
		c.zeroRegion(l)
		c.pageInval.Add(1)
	}
	if l.Exclusive() {
		l.SetAppliedSeq(head)
	}
	return true
}

// zeroRegion wipes the page's free region. Exclusive latch required.
func (c *Cache) zeroRegion(l *btree.Leaf) {
	lo, hi := l.FreeRegion()
	data := l.Data()
	for i := lo; i < hi; i++ {
		data[i] = 0
	}
}

// Lookup scans the page's cache slots for rid. On a hit it returns a
// copy of the payload and, when the visit holds the exclusive latch,
// promotes the entry by swapping it with a random entry in the adjacent
// bucket closer to the stable point.
func (c *Cache) Lookup(l *btree.Leaf, rid uint64) ([]byte, bool) {
	return c.LookupInto(nil, l, rid)
}

// LookupInto is Lookup appending the payload to dst instead of
// allocating — the point-lookup hot path passes a pooled scratch buffer
// so cache hits cost zero heap allocations. The copy is taken before
// any promotion swap, so dst never aliases moving page bytes.
//
// The scan walks slots in address order (sequential memory access); the
// distance-from-S ranking is only computed on a hit, when promotion
// needs it.
func (c *Cache) LookupInto(dst []byte, l *btree.Leaf, rid uint64) ([]byte, bool) {
	c.lookups.Add(1)
	if rid == 0 {
		c.misses.Add(1)
		return nil, false
	}
	lo, hi := l.FreeRegion()
	e := c.entrySize
	data := l.Data()
	first := (lo + e - 1) / e * e
	for off := first; off+e <= hi; off += e {
		if binary.LittleEndian.Uint64(data[off:]) != rid {
			continue
		}
		payload := append(dst, data[off+ridBytes:off+e]...)
		if l.Exclusive() {
			c.promoteAt(l, data, off, lo, hi)
		}
		c.hits.Add(1)
		return payload, true
	}
	c.misses.Add(1)
	return nil, false
}

// promoteAt swaps the entry at absolute offset off with a random slot
// in the adjacent bucket closer to the stable point (the Section 2.1.1
// policy). The distance ranking is generated lazily and only up to
// off's own rank — the promotion target always ranks better, so the
// peripheral remainder is never materialized on the hit path.
func (c *Cache) promoteAt(l *btree.Leaf, data []byte, off, lo, hi int) {
	rankPtr := c.scratch.Get().(*[]int)
	ranks, rank := slotRankTo(lo, hi, c.entrySize, l.StablePoint(), off, *rankPtr)
	defer func() { *rankPtr = ranks; c.scratch.Put(rankPtr) }()
	if rank < 0 {
		return
	}
	bucket := rank / c.bucketN
	if bucket == 0 {
		return
	}
	target := (bucket-1)*c.bucketN + c.randIntn(c.bucketN)
	c.swapSlots(data, ranks[rank], ranks[target])
	c.swaps.Add(1)
}

func (c *Cache) swapSlots(data []byte, a, b int) {
	if a == b {
		return
	}
	for i := 0; i < c.entrySize; i++ {
		data[a+i], data[b+i] = data[b+i], data[a+i]
	}
}

// Insert places (rid, payload) into the page's cache: into a random
// free slot, or — when no slot is free — over a random entry in the
// most peripheral bucket. It requires the exclusive latch and a
// Prepare'd page; it reports whether the entry was stored.
func (c *Cache) Insert(l *btree.Leaf, rid uint64, payload []byte) bool {
	if rid == 0 {
		return false
	}
	if len(payload) != c.payloadSize {
		return false
	}
	if !l.Exclusive() {
		c.skipped.Add(1)
		return false
	}
	lo, hi := l.FreeRegion()
	e := c.entrySize
	data := l.Data()
	first := (lo + e - 1) / e * e
	if first+e > hi {
		return false
	}
	// One sequential pass: refresh in place if the rid is already
	// cached, and reservoir-sample a random free slot along the way.
	freeOff, freeSeen := -1, 0
	for off := first; off+e <= hi; off += e {
		v := binary.LittleEndian.Uint64(data[off:])
		if v == rid {
			copy(data[off+ridBytes:], payload)
			c.inserts.Add(1)
			return true
		}
		if v == 0 {
			freeSeen++
			if c.randIntn(freeSeen) == 0 {
				freeOff = off
			}
		}
	}
	off := freeOff
	if off < 0 {
		// No free slot: evict a random item from the most peripheral
		// bucket of the distance ranking.
		rankPtr := c.scratch.Get().(*[]int)
		ranks := slotRank(lo, hi, e, l.StablePoint(), *rankPtr)
		if len(ranks) == 0 {
			*rankPtr = ranks
			c.scratch.Put(rankPtr)
			return false
		}
		lastBucketStart := (len(ranks) - 1) / c.bucketN * c.bucketN
		off = ranks[lastBucketStart+c.randIntn(len(ranks)-lastBucketStart)]
		*rankPtr = ranks
		c.scratch.Put(rankPtr)
		c.evictions.Add(1)
	}
	binary.LittleEndian.PutUint64(data[off:], rid)
	copy(data[off+ridBytes:], payload)
	c.inserts.Add(1)
	return true
}

// randIntn returns a pseudo-random int in [0, n): one atomic add into
// the splitmix64 state plus the mix, so concurrent placement decisions
// never serialize on a lock.
func (c *Cache) randIntn(n int) int {
	x := c.rngState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// SlotsIn returns how many cache slots the page currently offers — the
// per-page capacity number behind the paper's Section 2.1.4 analysis.
func (c *Cache) SlotsIn(l *btree.Leaf) int {
	lo, hi := l.FreeRegion()
	return numSlots(lo, hi, c.entrySize)
}
