package idxcache

import (
	"testing"

	"repro/internal/workload"
)

func TestSimBasicHitMiss(t *testing.T) {
	rng := workload.NewRand(1)
	s, err := NewSim(rng, 4, 2)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	if s.Lookup(1) {
		t.Error("first access should miss")
	}
	if !s.Lookup(1) {
		t.Error("second access should hit")
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate %f, want 0.5", s.HitRate())
	}
}

func TestSimEvictionWhenFull(t *testing.T) {
	rng := workload.NewRand(2)
	s, _ := NewSim(rng, 3, 1)
	for i := 0; i < 10; i++ {
		s.Lookup(i)
	}
	// Cache holds 3 items; at most 3 of the 10 can hit on a second pass.
	s.ResetStats()
	hits := 0
	for i := 0; i < 10; i++ {
		if s.Lookup(i) {
			hits++
		}
	}
	if hits > 3 {
		t.Errorf("%d hits with capacity 3", hits)
	}
}

func TestSimShrink(t *testing.T) {
	rng := workload.NewRand(3)
	s, _ := NewSim(rng, 10, 2)
	for i := 0; i < 10; i++ {
		s.Lookup(i)
	}
	s.Shrink(5)
	if s.Capacity() != 5 {
		t.Errorf("capacity after shrink = %d, want 5", s.Capacity())
	}
	s.Shrink(100)
	if s.Capacity() != 0 {
		t.Errorf("over-shrink capacity = %d, want 0", s.Capacity())
	}
	// Zero capacity: everything misses, nothing crashes.
	if s.Lookup(1) {
		t.Error("lookup on empty cache hit")
	}
}

// TestSimSwapBeatsNoPromote is the paper's core policy claim: under a
// skewed distribution, swap-toward-center keeps hot items alive when
// the cache shrinks, beating random placement without promotion.
func TestSimSwapBeatsNoPromote(t *testing.T) {
	const items = 10000
	const lookups = 60000
	run := func(noPromote bool) float64 {
		rng := workload.NewRand(99)
		zipf := workload.NewZipf(workload.NewRand(7), items, 0.5)
		s, _ := NewSim(rng, items/4, 4)
		s.NoPromote = noPromote
		// Warm phase.
		for i := 0; i < lookups/2; i++ {
			s.Lookup(zipf.Next())
		}
		s.ResetStats()
		// Measured phase with shrinking cache (inserts steal space).
		shrinkEvery := (lookups / 2) / (s.Capacity() / 2)
		for i := 0; i < lookups/2; i++ {
			s.Lookup(zipf.Next())
			if shrinkEvery > 0 && i%shrinkEvery == shrinkEvery-1 {
				s.Shrink(1)
			}
		}
		return s.HitRate()
	}
	swap := run(false)
	noPromote := run(true)
	if swap <= noPromote {
		t.Errorf("swap policy (%.3f) should beat no-promotion (%.3f) under shrink", swap, noPromote)
	}
}

// TestSimNearIdealAtQuarterCapacity checks Figure 2(a)'s substance:
// at 25% capacity the swap policy approaches the clairvoyant optimum
// (caching exactly the top-capacity ranks). Note the paper reports
// ">90% hit rate" here, which is unreachable for a literal zipf α=0.5
// — the top quarter of ranks carries only ~50% of the mass — so its
// Wikipedia-derived trace must have been more skewed; we therefore
// assert efficiency relative to the distribution's optimum, and the
// bench harness reports both α=0.5 and heavier-skew curves.
func TestSimNearIdealAtQuarterCapacity(t *testing.T) {
	const items = 20000
	const capacity = items / 4
	zipf := workload.NewZipf(workload.NewRand(11), items, 0.5)
	ideal := 0.0
	for i := 0; i < capacity; i++ {
		ideal += zipf.Probability(i)
	}
	s, _ := NewSim(workload.NewRand(13), capacity, 4)
	for i := 0; i < 200000; i++ {
		s.Lookup(zipf.Next())
	}
	s.ResetStats()
	for i := 0; i < 200000; i++ {
		s.Lookup(zipf.Next())
	}
	if s.HitRate() < 0.6*ideal {
		t.Errorf("steady-state hit rate %.3f below 60%% of ideal %.3f", s.HitRate(), ideal)
	}
}

// TestSimHighSkewReaches90 demonstrates the paper's headline number
// under a skew where it is actually attainable: with α=0.99 the top
// quarter of ranks carries >90% of the mass and the swap cache gets
// close to it.
func TestSimHighSkewReaches90(t *testing.T) {
	const items = 20000
	const capacity = items / 4
	zipf := workload.NewZipf(workload.NewRand(17), items, 0.99)
	s, _ := NewSim(workload.NewRand(19), capacity, 4)
	for i := 0; i < 200000; i++ {
		s.Lookup(zipf.Next())
	}
	s.ResetStats()
	for i := 0; i < 200000; i++ {
		s.Lookup(zipf.Next())
	}
	if s.HitRate() < 0.75 {
		t.Errorf("high-skew steady-state hit rate %.3f, want ≥ 0.75", s.HitRate())
	}
}

func TestSimValidation(t *testing.T) {
	rng := workload.NewRand(1)
	if _, err := NewSim(rng, -1, 2); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := NewSim(rng, 4, 0); err == nil {
		t.Error("zero bucket should fail")
	}
}
