package idxcache

import (
	"bytes"
	"sync"
)

// PredLog is the in-memory invalidation log of Section 2.1.2. When a
// tuple is updated, a predicate that uniquely identifies it — here, its
// exact index key — is appended. When an index page is read during
// normal query execution, pending predicates falling inside the page's
// key range force the page's cache to be zeroed. If the log grows past
// its threshold, the owner escalates: bump CSNidx (invalidating every
// page cache at once) and clear the log.
type PredLog struct {
	mu      sync.Mutex
	keys    [][]byte
	baseSeq uint32 // sequence number of keys[0] minus one
	headSeq uint32 // sequence number of the latest appended predicate
	limit   int
}

// NewPredLog creates a log that reports escalation beyond limit pending
// predicates. limit ≤ 0 means "escalate immediately on any append"
// (i.e. fine-grained invalidation disabled — the A2 ablation baseline).
func NewPredLog(limit int) *PredLog {
	return &PredLog{limit: limit}
}

// Append records the predicate and reports whether the log has
// exceeded its threshold and should be escalated to a full CSN bump.
func (p *PredLog) Append(key []byte) (escalate bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.keys = append(p.keys, append([]byte(nil), key...))
	p.headSeq++
	return len(p.keys) > p.limit
}

// HeadSeq returns the sequence number of the newest predicate. A page
// whose AppliedSeq equals HeadSeq has nothing pending.
func (p *PredLog) HeadSeq() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.headSeq
}

// Pending returns the number of buffered predicates.
func (p *PredLog) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.keys)
}

// MatchRange reports whether any predicate with sequence number greater
// than afterSeq falls within [min, max] (inclusive). Pages call this
// with their key range to decide whether their cache must be zeroed.
func (p *PredLog) MatchRange(afterSeq uint32, min, max []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	// keys[i] has sequence baseSeq+1+i.
	start := 0
	if afterSeq > p.baseSeq {
		start = int(afterSeq - p.baseSeq)
	}
	for i := start; i < len(p.keys); i++ {
		k := p.keys[i]
		if bytes.Compare(k, min) >= 0 && bytes.Compare(k, max) <= 0 {
			return true
		}
	}
	return false
}

// Clear empties the log (after a CSN escalation). Sequence numbers keep
// increasing across Clear so stale AppliedSeq values stay comparable.
func (p *PredLog) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.baseSeq = p.headSeq
	p.keys = p.keys[:0]
}
