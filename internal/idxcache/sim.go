package idxcache

import (
	"fmt"
	"math/rand"
)

// Sim is the policy-level cache simulator behind Figure 2(a). It
// abstracts away pages: the cache is a linear array of slots where
// index 0 is the most stable position (the paper's S) and the tail is
// the periphery that index growth overwrites first. The placement and
// promotion rules are identical to the page-backed Cache:
//
//   - miss-insert goes to a random free slot, or evicts a random entry
//     in the last (most peripheral) bucket when full;
//   - a hit swaps the entry with a random slot in the adjacent bucket
//     closer to position 0.
//
// Shrink(k) truncates the k most peripheral slots, modelling key
// inserts stealing cache space at a constant rate (the paper's Shrink
// curve overwrites half the cache over the run).
type Sim struct {
	slots   []uint64 // item id + 1; 0 = empty
	bucketN int
	rng     *rand.Rand

	lookups int64
	hits    int64

	// NoPromote disables the swap-toward-center rule (ablation A1:
	// random placement without promotion).
	NoPromote bool
}

// NewSim creates a simulator with the given capacity and bucket size.
func NewSim(rng *rand.Rand, capacity, bucketN int) (*Sim, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("idxcache: sim capacity must be non-negative, got %d", capacity)
	}
	if bucketN < 1 {
		return nil, fmt.Errorf("idxcache: sim bucket size must be positive, got %d", bucketN)
	}
	return &Sim{
		slots:   make([]uint64, capacity),
		bucketN: bucketN,
		rng:     rng,
	}, nil
}

// Capacity returns the current number of slots.
func (s *Sim) Capacity() int { return len(s.slots) }

// Lookup simulates one access to item (≥ 0): a hit promotes, a miss
// inserts. It reports whether the access hit.
func (s *Sim) Lookup(item int) bool {
	s.lookups++
	id := uint64(item) + 1
	for i, v := range s.slots {
		if v != id {
			continue
		}
		s.hits++
		if !s.NoPromote {
			b := i / s.bucketN
			if b > 0 {
				j := (b-1)*s.bucketN + s.rng.Intn(s.bucketN)
				s.slots[i], s.slots[j] = s.slots[j], s.slots[i]
			}
		}
		return true
	}
	s.insert(id)
	return false
}

func (s *Sim) insert(id uint64) {
	if len(s.slots) == 0 {
		return
	}
	var free []int
	for i, v := range s.slots {
		if v == 0 {
			free = append(free, i)
		}
	}
	if len(free) > 0 {
		s.slots[free[s.rng.Intn(len(free))]] = id
		return
	}
	lastBucketStart := (len(s.slots) - 1) / s.bucketN * s.bucketN
	i := lastBucketStart + s.rng.Intn(len(s.slots)-lastBucketStart)
	s.slots[i] = id
}

// Shrink removes the k most peripheral slots, discarding their
// contents — the effect of index key inserts overwriting the cache
// region's edge.
func (s *Sim) Shrink(k int) {
	if k <= 0 {
		return
	}
	if k > len(s.slots) {
		k = len(s.slots)
	}
	s.slots = s.slots[:len(s.slots)-k]
}

// HitRate returns hits/lookups so far.
func (s *Sim) HitRate() float64 {
	if s.lookups == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.lookups)
}

// ResetStats zeroes the hit/lookup counters, keeping contents.
func (s *Sim) ResetStats() {
	s.lookups, s.hits = 0, 0
}
