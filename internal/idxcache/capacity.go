package idxcache

import "fmt"

// CapacityEstimate reproduces the closed-form analysis of Section 2.1.4:
// given an index's key volume, fill factor, page size, and cache item
// size, how many items can the recycled free space hold, and what
// fraction of the table does that cover?
//
// The paper's instance: Wikipedia's name_title index holds 360 MB of
// key data; at 68% fill and 25-byte items the free space stores up to
// 7.9 million cache items — over 70% of the page table's tuples.
type CapacityEstimate struct {
	KeyBytes     int64   // total key data in leaves
	FillFactor   float64 // leaf fill factor (0, 1]
	PageSize     int     // page size in bytes
	PageOverhead int     // header+footer bytes per page not usable
	ItemSize     int     // cache entry size (rid + payload)
	TableRows    int64   // rows in the indexed table (0 = unknown)
}

// LeafPages returns the estimated number of leaf pages: key bytes
// spread over pages filled to FillFactor.
func (e CapacityEstimate) LeafPages() int64 {
	usable := float64(e.PageSize - e.PageOverhead)
	if usable <= 0 || e.FillFactor <= 0 {
		return 0
	}
	perPage := usable * e.FillFactor
	pages := int64(float64(e.KeyBytes)/perPage + 0.999999)
	if pages < 1 && e.KeyBytes > 0 {
		pages = 1
	}
	return pages
}

// FreeBytes returns the total recyclable free space across leaves.
func (e CapacityEstimate) FreeBytes() int64 {
	usable := int64(e.PageSize - e.PageOverhead)
	perPageFree := float64(usable) * (1 - e.FillFactor)
	return int64(perPageFree * float64(e.LeafPages()))
}

// Items returns how many cache items the free space holds.
func (e CapacityEstimate) Items() int64 {
	if e.ItemSize <= 0 {
		return 0
	}
	// Items fit per page, not across pages, so compute per page.
	usable := int64(e.PageSize - e.PageOverhead)
	perPageFree := int64(float64(usable) * (1 - e.FillFactor))
	perPage := perPageFree / int64(e.ItemSize)
	return perPage * e.LeafPages()
}

// Coverage returns Items/TableRows, the fraction of the table the cache
// can hold (0 when TableRows is unknown).
func (e CapacityEstimate) Coverage() float64 {
	if e.TableRows <= 0 {
		return 0
	}
	cov := float64(e.Items()) / float64(e.TableRows)
	if cov > 1 {
		cov = 1
	}
	return cov
}

// String renders the estimate as a one-line report.
func (e CapacityEstimate) String() string {
	return fmt.Sprintf("keyBytes=%d fill=%.2f pages=%d freeBytes=%d itemSize=%d items=%d coverage=%.1f%%",
		e.KeyBytes, e.FillFactor, e.LeafPages(), e.FreeBytes(), e.ItemSize, e.Items(), 100*e.Coverage())
}
