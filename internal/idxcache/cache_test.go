package idxcache

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/storage"
)

func newCacheTree(t *testing.T, pageSize int) *btree.Tree {
	t.Helper()
	disk, err := storage.NewMemDisk(pageSize)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	pool, err := buffer.NewPool(disk, 256)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	tr, err := btree.New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func k64(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func pay(c *Cache, b byte) []byte {
	p := make([]byte, c.PayloadSize())
	for i := range p {
		p[i] = b
	}
	return p
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New cache: %v", err)
	}
	return c
}

func TestCacheInsertLookupRoundTrip(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 17, Seed: 1})
	for i := 0; i < 10; i++ {
		tr.Insert(k64(i), uint64(i+1))
	}
	err := tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		if !c.Prepare(l) {
			t.Fatal("Prepare failed with exclusive latch")
		}
		for i := 0; i < 5; i++ {
			if !c.Insert(l, uint64(i+1), pay(c, byte(i))) {
				t.Fatalf("Insert %d failed", i)
			}
		}
		for i := 0; i < 5; i++ {
			got, ok := c.Lookup(l, uint64(i+1))
			if !ok {
				t.Fatalf("Lookup %d missed", i)
			}
			for _, b := range got {
				if b != byte(i) {
					t.Fatalf("payload %d corrupted", i)
				}
			}
		}
		if _, ok := c.Lookup(l, 999); ok {
			t.Error("lookup of uncached rid hit")
		}
	})
	if err != nil {
		t.Fatalf("VisitLeaf: %v", err)
	}
	st := c.Stats()
	if st.Hits != 5 || st.Misses != 1 || st.Inserts != 5 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCacheSurvivesIndexInserts(t *testing.T) {
	tr := newCacheTree(t, 4096)
	c := mustCache(t, Config{PayloadSize: 16, Seed: 2})
	tr.Insert(k64(0), 1)
	// Fill the cache on the (single) leaf.
	installed := 0
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		for i := 0; i < 1000; i++ {
			if !c.Insert(l, uint64(i+1), pay(c, byte(i))) {
				break
			}
			installed++
		}
	})
	if installed < 10 {
		t.Fatalf("only %d entries installed", installed)
	}
	// Hammer hot entries so they migrate toward the stable point.
	hot := []uint64{1, 2, 3}
	for round := 0; round < 50; round++ {
		tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
			if !c.Prepare(l) {
				return
			}
			for _, rid := range hot {
				c.Lookup(l, rid)
			}
		})
	}
	// Insert index keys: the free region shrinks, overwriting periphery.
	for i := 1; i <= 60; i++ {
		tr.Insert(k64(i), uint64(i+1))
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("index corrupted by cache: %v", err)
	}
	// Hot entries should still be cached; many cold ones are gone.
	survived := 0
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		if !c.Prepare(l) {
			t.Fatal("prepare failed")
		}
		for _, rid := range hot {
			if _, ok := c.Lookup(l, rid); ok {
				survived++
			}
		}
	})
	if survived == 0 {
		t.Error("no hot entry survived index growth; swap-toward-center not working")
	}
}

func TestCacheEvictionPeripheralBucket(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 24, BucketN: 2, Seed: 3})
	tr.Insert(k64(0), 1)
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		slots := c.SlotsIn(l)
		if slots < 4 {
			t.Skipf("page too small: %d slots", slots)
		}
		// Overfill: every insert beyond capacity must evict.
		for i := 0; i < slots+10; i++ {
			if !c.Insert(l, uint64(i+1), pay(c, byte(i))) {
				t.Fatalf("insert %d failed", i)
			}
		}
	})
	st := c.Stats()
	if st.Evictions != 10 {
		t.Errorf("evictions = %d, want 10", st.Evictions)
	}
}

func TestCacheCSNInvalidation(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 8, Seed: 4})
	tr.Insert(k64(0), 1)
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		c.Insert(l, 1, pay(c, 0xAA))
	})
	c.InvalidateAll()
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		if !c.Prepare(l) {
			t.Fatal("prepare failed")
		}
		if _, ok := c.Lookup(l, 1); ok {
			t.Error("entry survived full invalidation")
		}
		if l.CSN() != c.CSN() {
			t.Error("prepare did not refresh CSNp")
		}
	})
}

func TestCachePredicateInvalidation(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 8, PredLogLimit: 100, Seed: 5})
	for i := 0; i < 5; i++ {
		tr.Insert(k64(i), uint64(i+1))
	}
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		c.Insert(l, 1, pay(c, 0x11))
		c.Insert(l, 2, pay(c, 0x22))
	})
	// Update a tuple whose key lies in this page: cache must be zeroed.
	c.NotifyUpdate(k64(2))
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		if !c.Prepare(l) {
			t.Fatal("prepare failed")
		}
		if _, ok := c.Lookup(l, 1); ok {
			t.Error("entry survived matching predicate (page zeroed expected)")
		}
	})
	if c.Stats().FullInvalidations != 0 {
		t.Error("predicate under threshold must not escalate")
	}
}

func TestCachePredicateOutsideRangeKeepsCache(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 8, PredLogLimit: 100, Seed: 6})
	for i := 0; i < 5; i++ {
		tr.Insert(k64(i), uint64(i+1))
	}
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		c.Insert(l, 1, pay(c, 0x11))
	})
	// Predicate for a key far outside this leaf's range.
	c.NotifyUpdate(k64(1 << 30))
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		if !c.Prepare(l) {
			t.Fatal("prepare failed")
		}
		if _, ok := c.Lookup(l, 1); !ok {
			t.Error("non-matching predicate destroyed the cache")
		}
	})
}

func TestCachePredLogEscalation(t *testing.T) {
	c := mustCache(t, Config{PayloadSize: 8, PredLogLimit: 3, Seed: 7})
	before := c.CSN()
	for i := 0; i < 4; i++ {
		c.NotifyUpdate(k64(i))
	}
	if c.CSN() == before {
		t.Error("exceeding the predicate-log limit should bump CSNidx")
	}
	if c.Log().Pending() != 0 {
		t.Error("escalation should clear the log")
	}
}

func TestCacheRefreshOverwritesInPlace(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 8, Seed: 8})
	tr.Insert(k64(0), 1)
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		c.Insert(l, 7, pay(c, 0x01))
		c.Insert(l, 7, pay(c, 0x02)) // same rid: refresh
		got, ok := c.Lookup(l, 7)
		if !ok || got[0] != 0x02 {
			t.Errorf("refresh failed: %v %v", got, ok)
		}
	})
	// Only one slot should be used.
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		lo, hi := l.FreeRegion()
		used := 0
		data := l.Data()
		for off := (lo + c.EntrySize() - 1) / c.EntrySize() * c.EntrySize(); off+c.EntrySize() <= hi; off += c.EntrySize() {
			if binary.LittleEndian.Uint64(data[off:]) != 0 {
				used++
			}
		}
		if used != 1 {
			t.Errorf("%d slots used after refresh, want 1", used)
		}
	})
}

func TestCacheConfigValidation(t *testing.T) {
	if _, err := New(Config{PayloadSize: 0}); err == nil {
		t.Error("zero payload should fail")
	}
	if _, err := New(Config{PayloadSize: 8, BucketN: -1}); err == nil {
		t.Error("negative bucket should fail")
	}
}

func TestCacheInsertRejectsBadArgs(t *testing.T) {
	tr := newCacheTree(t, 1024)
	c := mustCache(t, Config{PayloadSize: 8, Seed: 9})
	tr.Insert(k64(0), 1)
	tr.VisitLeaf(k64(0), func(l *btree.Leaf) {
		c.Prepare(l)
		if c.Insert(l, 0, pay(c, 1)) {
			t.Error("rid 0 must be rejected (marks empty slots)")
		}
		if c.Insert(l, 5, []byte{1, 2}) {
			t.Error("wrong payload size must be rejected")
		}
	})
}

func TestCacheStressWithIndexChurn(t *testing.T) {
	tr := newCacheTree(t, 2048)
	c := mustCache(t, Config{PayloadSize: 17, PredLogLimit: 64, Seed: 10})
	// Interleave index inserts/deletes with cache fills and lookups; the
	// index must stay intact and the cache must never return a payload
	// for the wrong rid.
	for round := 0; round < 40; round++ {
		base := round * 50
		for i := 0; i < 50; i++ {
			tr.Insert(k64(base+i), uint64(base+i+1))
		}
		for i := 0; i < 25; i++ {
			key := k64(base + i*2)
			tr.VisitLeaf(key, func(l *btree.Leaf) {
				if !c.Prepare(l) {
					return
				}
				rid := uint64(base + i*2 + 1)
				p := make([]byte, c.PayloadSize())
				binary.LittleEndian.PutUint64(p, rid)
				c.Insert(l, rid, p)
				if got, ok := c.Lookup(l, rid); ok {
					if binary.LittleEndian.Uint64(got) != rid {
						t.Fatalf("cache returned wrong payload for rid %d", rid)
					}
				}
			})
		}
		if round%3 == 0 {
			for i := 0; i < 10; i++ {
				key := k64(base + i)
				tr.Delete(key)
				c.NotifyUpdate(key)
			}
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after churn: %v", err)
	}
}

func TestPredLogMatchRange(t *testing.T) {
	log := NewPredLog(100)
	log.Append([]byte("m"))
	if !log.MatchRange(0, []byte("a"), []byte("z")) {
		t.Error("predicate inside range should match")
	}
	if log.MatchRange(0, []byte("n"), []byte("z")) {
		t.Error("predicate below range should not match")
	}
	if log.MatchRange(1, []byte("a"), []byte("z")) {
		t.Error("already-applied predicate should not match")
	}
	log.Clear()
	if log.MatchRange(0, []byte("a"), []byte("z")) {
		t.Error("cleared log should not match")
	}
	if log.HeadSeq() != 1 {
		t.Errorf("HeadSeq after clear = %d, want 1 (monotonic)", log.HeadSeq())
	}
}

func TestCapacityEstimateWikipediaNumbers(t *testing.T) {
	// Section 2.1.4: 360 MB of key data, 68% fill, 25-byte items →
	// ~7.9M cache items covering >70% of ~11M page-table tuples.
	e := CapacityEstimate{
		KeyBytes:     360 << 20,
		FillFactor:   0.68,
		PageSize:     8192,
		PageOverhead: 44,
		ItemSize:     25,
		TableRows:    11_000_000,
	}
	items := e.Items()
	if items < 6_000_000 || items > 9_500_000 {
		t.Errorf("items = %d, want ≈7.9M", items)
	}
	if cov := e.Coverage(); cov < 0.55 || cov > 0.9 {
		t.Errorf("coverage = %.2f, want ≈0.7", cov)
	}
	if e.LeafPages() <= 0 || e.FreeBytes() <= 0 {
		t.Error("degenerate estimate")
	}
	_ = fmt.Sprintf("%s", e) // String must not panic
}
