// Package heap implements heap files: unordered collections of records
// stored in slotted pages, addressed by RID, with an in-memory
// free-space map for insert placement.
//
// The default placement policy is append-biased ("append to table"),
// matching the behaviour the paper criticizes in Section 3.1: tuple
// placement follows insertion order, not access pattern, so hot tuples
// end up scattered. internal/partition implements the paper's fix on
// top of this layer (delete + re-append clustering and hot/cold
// partitions).
package heap

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// pageFlagHeap tags heap pages in the slotted-page flags word.
const pageFlagHeap uint16 = 0x48 // 'H'

// File is a heap file. It is safe for concurrent use.
type File struct {
	pool *buffer.Pool

	mu    sync.Mutex
	pages []storage.PageID // all pages of this file, in allocation order
	// freeBytes mirrors each page's free space so inserts can pick a
	// page without fetching them all. Values are advisory; the slotted
	// page is the source of truth at insert time.
	freeBytes map[storage.PageID]int
	// appendOnly forces inserts to ignore free space in earlier pages
	// and always fill the last page, the paper's "append to table".
	appendOnly bool
	// fillFactor caps how full inserts pack a page (1.0 = to the brim).
	// Reserved space serves in-place update headroom and, per the
	// paper's Section 2.2, the data-page join cache.
	fillFactor float64
}

// Option configures a heap file.
type Option func(*File)

// AppendOnly makes inserts always go to the tail page, even when older
// pages have free space. Clustering experiments rely on this to get the
// paper's "relocate hot tuples by deleting then appending them to the
// end of the table" semantics.
func AppendOnly() Option {
	return func(f *File) { f.appendOnly = true }
}

// WithFillFactor makes inserts leave 1−ff of each page's usable space
// free (like PostgreSQL's fillfactor). ff must be in (0, 1]; values
// outside are clamped. The reserved space absorbs in-place updates and
// hosts the Section 2.2 join cache.
func WithFillFactor(ff float64) Option {
	return func(f *File) {
		if ff <= 0 || ff > 1 {
			ff = 1
		}
		f.fillFactor = ff
	}
}

// NewFile creates an empty heap file in the pool's disk.
func NewFile(pool *buffer.Pool, opts ...Option) (*File, error) {
	f := &File{
		pool:       pool,
		freeBytes:  make(map[storage.PageID]int),
		fillFactor: 1.0,
	}
	for _, o := range opts {
		o(f)
	}
	if _, err := f.addPageLocked(); err != nil {
		return nil, err
	}
	return f, nil
}

// addPageLocked allocates and formats a fresh heap page. Caller may hold
// f.mu or call during construction.
func (f *File) addPageLocked() (storage.PageID, error) {
	fr, err := f.pool.NewPage()
	if err != nil {
		return storage.InvalidPageID, err
	}
	sp := storage.AsSlotted(fr.Data())
	sp.Init()
	sp.SetFlags(pageFlagHeap)
	id := fr.ID()
	f.pages = append(f.pages, id)
	f.freeBytes[id] = sp.AvailableBytes()
	f.pool.Unpin(fr, true)
	return id, nil
}

// NumPages returns the number of pages in the file.
func (f *File) NumPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages)
}

// Pages returns a copy of the file's page ids in order.
func (f *File) Pages() []storage.PageID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]storage.PageID(nil), f.pages...)
}

// Insert stores rec and returns its RID.
func (f *File) Insert(rec []byte) (storage.RID, error) {
	if len(rec) == 0 {
		return storage.InvalidRID, fmt.Errorf("heap: cannot insert empty record")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.pickPageLocked(len(rec))
	budget := int(f.fillFactor * float64(f.pool.Disk().PageSize()))
	for attempt := 0; attempt < 2; attempt++ {
		fr, err := f.pool.Fetch(target)
		if err != nil {
			return storage.InvalidRID, err
		}
		fr.Latch.Lock()
		sp := storage.AsSlotted(fr.Data())
		var slot uint16
		// Honor the fill factor: a page holding records already at its
		// budget refuses further inserts (still below 100% physically).
		if f.fillFactor < 1 && sp.LiveRecords() > 0 && sp.UsedBytes()+len(rec) > budget {
			err = storage.ErrNoSpace
		} else {
			slot, err = sp.Insert(rec)
		}
		free := sp.AvailableBytes()
		// The advisory must reflect remaining *budget*, not physical
		// space, or budget-full pages would be picked forever.
		if f.fillFactor < 1 {
			if rem := budget - sp.UsedBytes(); rem < free {
				free = rem
				if free < 0 {
					free = 0
				}
			}
		}
		fr.Latch.Unlock()
		if err == nil {
			f.freeBytes[target] = free
			f.pool.Unpin(fr, true)
			return storage.RID{Page: target, Slot: slot}, nil
		}
		f.pool.Unpin(fr, false)
		if err != storage.ErrNoSpace {
			return storage.InvalidRID, err
		}
		// The advisory map was stale or the record simply doesn't fit:
		// extend the file and retry once on the fresh page.
		f.freeBytes[target] = free
		target, err = f.addPageLocked()
		if err != nil {
			return storage.InvalidRID, err
		}
	}
	return storage.InvalidRID, fmt.Errorf("heap: record of %d bytes does not fit in an empty page", len(rec))
}

// pickPageLocked chooses the insert target: the tail page in append-only
// mode, otherwise the first page whose advisory free space fits.
func (f *File) pickPageLocked(need int) storage.PageID {
	tail := f.pages[len(f.pages)-1]
	if f.appendOnly {
		return tail
	}
	for _, id := range f.pages {
		if f.freeBytes[id] >= need+8 { // 8 = slot entry + slack
			return id
		}
	}
	return tail
}

// Get returns a copy of the record at rid.
func (f *File) Get(rid storage.RID) ([]byte, error) {
	return f.GetInto(nil, rid)
}

// GetInto is Get appending the record into dst (pass a reused buffer's
// [:0] slice to make repeated fetches allocation-free once the buffer
// has grown to the largest record).
func (f *File) GetInto(dst []byte, rid storage.RID) ([]byte, error) {
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	fr.Latch.RLock()
	sp := storage.AsSlotted(fr.Data())
	rec, err := sp.Get(rid.Slot)
	var out []byte
	if err == nil {
		out = append(dst, rec...)
	}
	fr.Latch.RUnlock()
	f.pool.Unpin(fr, false)
	return out, err
}

// Delete removes the record at rid.
func (f *File) Delete(rid storage.RID) error {
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	err = sp.Delete(rid.Slot)
	free := sp.AvailableBytes()
	fr.Latch.Unlock()
	dirty := err == nil
	f.pool.Unpin(fr, dirty)
	if err == nil {
		f.mu.Lock()
		f.freeBytes[rid.Page] = free
		f.mu.Unlock()
	}
	return err
}

// Update replaces the record at rid in place. If the new payload no
// longer fits in its page, the record is moved: it is deleted and
// reinserted elsewhere, and the new RID is returned. Callers that
// maintain indexes must compare the returned RID with the argument.
func (f *File) Update(rid storage.RID, rec []byte) (storage.RID, error) {
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return storage.InvalidRID, err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	err = sp.Update(rid.Slot, rec)
	free := sp.AvailableBytes()
	fr.Latch.Unlock()
	if err == nil {
		f.pool.Unpin(fr, true)
		f.mu.Lock()
		f.freeBytes[rid.Page] = free
		f.mu.Unlock()
		return rid, nil
	}
	f.pool.Unpin(fr, false)
	if err != storage.ErrNoSpace {
		return storage.InvalidRID, err
	}
	if err := f.Delete(rid); err != nil {
		return storage.InvalidRID, fmt.Errorf("heap: relocating update: %w", err)
	}
	return f.Insert(rec)
}

// VisitPage pins the page and runs fn over its slotted view. The frame
// latch is taken exclusively when that succeeds without blocking
// (enabling volatile cache writes in the page's free space, Section 2.2
// of the paper), shared otherwise; fn receives which. The page is
// unpinned clean — mutations made under fn are volatile unless the
// caller arranges otherwise, exactly like index-cache writes.
func (f *File) VisitPage(id storage.PageID, fn func(sp *storage.SlottedPage, exclusive bool)) error {
	fr, err := f.pool.Fetch(id)
	if err != nil {
		return err
	}
	exclusive := fr.Latch.TryLock()
	if !exclusive {
		fr.Latch.RLock()
	}
	fn(storage.AsSlotted(fr.Data()), exclusive)
	if exclusive {
		fr.Latch.Unlock()
	} else {
		fr.Latch.RUnlock()
	}
	f.pool.Unpin(fr, false)
	return nil
}

// Scan iterates over every live record in file order. fn receives the
// RID and the raw record (aliasing the page; copy to retain) and
// returns false to stop early.
func (f *File) Scan(fn func(rid storage.RID, rec []byte) bool) error {
	for _, id := range f.Pages() {
		fr, err := f.pool.Fetch(id)
		if err != nil {
			return err
		}
		fr.Latch.RLock()
		sp := storage.AsSlotted(fr.Data())
		stop := false
		sp.Records(func(slot uint16, rec []byte) bool {
			if !fn(storage.RID{Page: id, Slot: slot}, rec) {
				stop = true
				return false
			}
			return true
		})
		fr.Latch.RUnlock()
		f.pool.Unpin(fr, false)
		if stop {
			return nil
		}
	}
	return nil
}

// Stats describes physical occupancy of the file.
type Stats struct {
	Pages       int
	LiveRecords int
	UsedBytes   int
	TotalBytes  int
	// MeanUtilization is the average per-page fraction of usable bytes
	// holding live records (the paper's Section 3.1 metric).
	MeanUtilization float64
}

// Stats scans the file's pages and reports occupancy.
func (f *File) Stats() (Stats, error) {
	var st Stats
	pages := f.Pages()
	st.Pages = len(pages)
	sumUtil := 0.0
	for _, id := range pages {
		fr, err := f.pool.Fetch(id)
		if err != nil {
			return Stats{}, err
		}
		fr.Latch.RLock()
		sp := storage.AsSlotted(fr.Data())
		st.LiveRecords += sp.LiveRecords()
		st.UsedBytes += sp.UsedBytes()
		sumUtil += sp.Utilization()
		fr.Latch.RUnlock()
		f.pool.Unpin(fr, false)
		st.TotalBytes += f.pool.Disk().PageSize()
	}
	if st.Pages > 0 {
		st.MeanUtilization = sumUtil / float64(st.Pages)
	}
	return st, nil
}
