// Package heap implements heap files: unordered collections of records
// stored in slotted pages, addressed by RID, with in-memory free-space
// maps for insert placement.
//
// The insert path is sharded. A file owns N insert shards, each with
// its own mutex, tail page, and free-space map (pages bucketed by
// remaining insert budget), so parallel inserters contend per shard
// rather than per file. Goroutines are routed to shards with an
// affinity hint (see shardHint); a shard that cannot satisfy an insert
// falls back to its siblings' free space before extending the file, so
// space freed by deletes is reused no matter which shard owns it.
//
// The default placement policy refills freed space anywhere in the
// file. AppendOnly forces the append-biased policy ("append to table")
// the paper criticizes in Section 3.1 — tuple placement follows
// insertion order, not access pattern, so hot tuples end up scattered —
// which needs a single global tail and therefore a single shard.
// internal/partition implements the paper's fix on top of this layer
// (delete + re-append clustering and hot/cold partitions).
package heap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// pageFlagHeap tags heap pages in the slotted-page flags word.
const pageFlagHeap uint16 = 0x48 // 'H'

// slotOverhead pads an insert's space requirement when picking a page:
// a possible new slot-directory entry plus slack, so the advisory map
// rarely sends an insert to a page that then refuses it.
const slotOverhead = 8

// fsmBuckets is the number of free-space buckets per shard. Pages are
// bucketed by advisory free bytes in units of budget/fsmBuckets, so a
// pick scans at most a handful of candidates instead of every page.
// The bucket width bounds the reclaim granularity: freed space smaller
// than one quantum (budget/64 — 128B on the default 8KiB pages) may
// sit in the bottom bucket among genuinely full pages where only the
// boundary probes can find it, so fine buckets keep the strandable
// slack per page small (PostgreSQL's FSM makes the same trade at 1/256
// granularity).
const fsmBuckets = 64

// freeSpaceMap tracks the advisory insertable bytes of the pages one
// insert shard owns, bucketed by remaining budget so picks are O(1).
// Values are advisory; the slotted page is the source of truth at
// insert time, and a failed insert corrects the entry (see File.tryPage).
// Guarded by the owning shard's mutex.
type freeSpaceMap struct {
	budget int // per-page insert budget (fill factor × page size)
	free   map[storage.PageID]int
	bucket [fsmBuckets]map[storage.PageID]struct{}
}

func newFreeSpaceMap(budget int) freeSpaceMap {
	m := freeSpaceMap{budget: budget, free: make(map[storage.PageID]int)}
	for i := range m.bucket {
		m.bucket[i] = make(map[storage.PageID]struct{})
	}
	return m
}

// bucketFor quantizes advisory free bytes to a bucket index. Bucket b
// holds pages with free space in [b, b+1)·budget/fsmBuckets, so every
// page in a bucket strictly above bucketFor(need) satisfies need.
func (m *freeSpaceMap) bucketFor(free int) int {
	if free <= 0 {
		return 0
	}
	b := free * fsmBuckets / m.budget
	if b >= fsmBuckets {
		b = fsmBuckets - 1
	}
	return b
}

// set records or updates a page's advisory free bytes, moving it
// between buckets as needed.
func (m *freeSpaceMap) set(id storage.PageID, free int) {
	if old, ok := m.free[id]; ok {
		if ob, nb := m.bucketFor(old), m.bucketFor(free); ob != nb {
			delete(m.bucket[ob], id)
			m.bucket[nb][id] = struct{}{}
		}
	} else {
		m.bucket[m.bucketFor(free)][id] = struct{}{}
	}
	m.free[id] = free
}

// pick returns a page whose advisory free space covers need. It probes
// a few candidates in the boundary bucket (whose pages may or may not
// fit), then takes the first page of any higher bucket (whose pages all
// fit, modulo staleness the insert path corrects). A fitting page in
// the boundary bucket beyond the probe limit can be missed — that is
// the bounded slack the fsmBuckets comment describes.
func (m *freeSpaceMap) pick(need int) (storage.PageID, bool) {
	const boundaryProbes = 8
	b := m.bucketFor(need)
	probes := 0
	for id := range m.bucket[b] {
		if m.free[id] >= need {
			return id, true
		}
		if probes++; probes >= boundaryProbes {
			break
		}
	}
	for b++; b < fsmBuckets; b++ {
		for id := range m.bucket[b] {
			if m.free[id] >= need {
				return id, true
			}
		}
	}
	return storage.InvalidPageID, false
}

// insertShard is one lane of the insert path: a mutex, the shard's
// free-space map, and the tail page it last allocated. The mutex is
// held across the whole placement attempt (pick, fetch, page insert),
// so two inserters in one shard never race for the same page's space.
type insertShard struct {
	mu   sync.Mutex // nblb:lock heap-shard
	fsm  freeSpaceMap
	tail storage.PageID
	// cur is the page that accepted this shard's last insert — the hot
	// page. Inserts try it before consulting the free-space map, so the
	// common streak of inserts into one page skips the bucket scan.
	cur storage.PageID
}

// shardHint is a goroutine-affinity token: a pooled pointer carrying
// the shard a goroutine was round-robin-assigned on first insert.
// sync.Pool is P-local, so a goroutine keeps drawing the same hint (and
// therefore the same shard) while it runs, and concurrent inserters
// hold distinct hints — goroutine-affine round-robin without goroutine
// ids or per-insert atomics on a shared counter.
type shardHint struct {
	idx int
}

// File is a heap file. It is safe for concurrent use: see the
// "Concurrency" section of the package documentation, and the method
// comments for the exact contract.
//
// Lock ordering (enforced by construction, documented in
// ARCHITECTURE.md): a shard mutex may be held while taking a frame
// latch or the meta lock; the reverse orders are forbidden — advisory
// free-space updates after Delete/Update release the frame latch before
// locking the owning shard, and meta is never held while a shard mutex
// or latch is awaited.
type File struct {
	pool *buffer.Pool

	// appendOnly forces inserts to ignore free space in earlier pages
	// and always fill the last page, the paper's "append to table".
	// It implies a single insert shard (one global tail).
	appendOnly bool
	// fillFactor caps how full inserts pack a page (1.0 = to the brim).
	// Reserved space serves in-place update headroom and, per the
	// paper's Section 2.2, the data-page join cache.
	fillFactor float64
	// budget is the per-page insertable byte cap: fillFactor × page size.
	budget int

	reqShards int // WithInsertShards request; 0 = automatic
	shards    []insertShard
	nextShard atomic.Uint32
	hints     sync.Pool // of *shardHint

	// meta guards the file's page catalog: every page in allocation
	// order, plus the shard that owns each page's free-space entry.
	// Ownership never changes after allocation, so a reader may release
	// meta before acting on what it looked up.
	//
	// nblb:lock heap-meta
	meta struct {
		sync.RWMutex
		pages []storage.PageID
		owner map[storage.PageID]int // page → shard index
	}
}

// Option configures a heap file.
type Option func(*File)

// AppendOnly makes inserts always go to the tail page, even when older
// pages have free space. Clustering experiments rely on this to get the
// paper's "relocate hot tuples by deleting then appending them to the
// end of the table" semantics. Append-only placement needs one global
// tail, so it forces a single insert shard, overriding WithInsertShards.
func AppendOnly() Option {
	return func(f *File) { f.appendOnly = true }
}

// WithFillFactor makes inserts leave 1−ff of each page's usable space
// free (like PostgreSQL's fillfactor). ff must be in (0, 1]; values
// outside are clamped. The reserved space absorbs in-place updates and
// hosts the Section 2.2 join cache.
func WithFillFactor(ff float64) Option {
	return func(f *File) {
		if ff <= 0 || ff > 1 {
			ff = 1
		}
		f.fillFactor = ff
	}
}

// WithInsertShards sets the number of insert shards (n < 1 picks
// automatically: min(8, GOMAXPROCS)). More shards admit more parallel
// inserters at the cost of up to n partially filled tail pages.
// Ignored under AppendOnly, which needs a single tail.
func WithInsertShards(n int) Option {
	return func(f *File) { f.reqShards = n }
}

// defaultInsertShards sizes the shard count to the machine: inserts
// serialize below on the buffer pool and disk, so past a small multiple
// of the CPU count extra shards only cost tail pages.
func defaultInsertShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewFile creates an empty heap file in the pool's disk.
func NewFile(pool *buffer.Pool, opts ...Option) (*File, error) {
	f := newShell(pool, opts...)
	s := &f.shards[0]
	s.mu.Lock()
	_, err := f.addPageLocked(0)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// newShell builds a File with options applied and shards initialized,
// without allocating or adopting any page — shared by NewFile and the
// recovery path's Open.
func newShell(pool *buffer.Pool, opts ...Option) *File {
	f := &File{
		pool:       pool,
		fillFactor: 1.0,
	}
	for _, o := range opts {
		o(f)
	}
	n := f.reqShards
	if n < 1 {
		n = defaultInsertShards()
	}
	if f.appendOnly {
		n = 1
	}
	f.budget = int(f.fillFactor * float64(pool.Disk().PageSize()))
	f.shards = make([]insertShard, n)
	for i := range f.shards {
		f.shards[i].fsm = newFreeSpaceMap(f.budget)
		f.shards[i].tail = storage.InvalidPageID
		f.shards[i].cur = storage.InvalidPageID
	}
	f.meta.owner = make(map[storage.PageID]int)
	f.hints.New = func() any {
		return &shardHint{idx: int(f.nextShard.Add(1)-1) % len(f.shards)}
	}
	return f
}

// InsertShards returns the number of insert shards the file routes
// across.
func (f *File) InsertShards() int { return len(f.shards) }

// addPageLocked allocates and formats a fresh heap page owned by shard
// si, registering it in the page catalog and the shard's free-space
// map. Caller holds shards[si].mu (taking meta while holding a shard
// mutex is the allowed order).
func (f *File) addPageLocked(si int) (storage.PageID, error) {
	fr, err := f.pool.NewPage()
	if err != nil {
		return storage.InvalidPageID, err
	}
	sp := storage.AsSlotted(fr.Data())
	sp.Init()
	sp.SetFlags(pageFlagHeap)
	id := fr.ID()
	free := f.advisoryFree(sp)
	f.pool.Unpin(fr, true)
	f.meta.Lock()
	f.meta.pages = append(f.meta.pages, id)
	f.meta.owner[id] = si
	f.meta.Unlock()
	s := &f.shards[si]
	s.fsm.set(id, free)
	s.tail = id
	return id, nil
}

// advisoryFree computes a page's advisory insertable bytes: available
// bytes after compaction, clamped to the remaining fill-factor budget
// (a budget-full page must read as full, or it would be picked
// forever). Call under the page's frame latch, or before the page is
// published.
func (f *File) advisoryFree(sp *storage.SlottedPage) int {
	free := sp.AvailableBytes()
	if f.fillFactor < 1 {
		if rem := f.budget - sp.UsedBytes(); rem < free {
			free = rem
		}
	}
	if free < 0 {
		free = 0
	}
	return free
}

// NumPages returns the number of pages in the file.
func (f *File) NumPages() int {
	f.meta.RLock()
	defer f.meta.RUnlock()
	return len(f.meta.pages)
}

// Pages returns a copy of the file's page ids in allocation order.
func (f *File) Pages() []storage.PageID {
	f.meta.RLock()
	defer f.meta.RUnlock()
	return append([]storage.PageID(nil), f.meta.pages...)
}

// Insert stores rec and returns its RID.
//
// Inserts are routed to the calling goroutine's affine shard; when that
// shard has no page with enough budget the insert falls back to the
// sibling shards' free space, and only extends the file when no shard's
// map can place the record — so deletes anywhere keep feeding inserts
// everywhere. Placement is approximate, not exact: free slivers below
// the bucket quantum (budget/64 per page) can be missed by the bounded
// boundary probes, so the file may grow while that much per-page slack
// remains — the price of O(1) picks over the exact linear scan.
func (f *File) Insert(rec []byte) (storage.RID, error) {
	if len(rec) == 0 {
		return storage.InvalidRID, fmt.Errorf("heap: cannot insert empty record")
	}
	h := f.hints.Get().(*shardHint)
	rid, err := f.insert(h.idx, rec, f.budget)
	f.hints.Put(h)
	return rid, err
}

// InsertRun places a batch of records and fills rids[i] with record i's
// address. The whole run routes through the calling goroutine's affine
// shard under a single mutex acquisition — the batch counterpart of
// Insert's per-record lock/unlock — falling back to the per-record slow
// path (sibling shards, then file extension) only for records the home
// shard cannot place. Returns the number of records placed; on error
// that is also the index of the record that failed, and rids beyond it
// are untouched.
func (f *File) InsertRun(recs [][]byte, rids []storage.RID) (int, error) {
	return f.InsertRunFill(recs, rids, 0)
}

// InsertRunFill is InsertRun with a fill-factor override for this run
// only (0 = the file's configured policy). A lower factor makes this
// batch leave more update headroom in every page it touches without
// changing the file's policy; the advisory free-space maps keep
// recording file-policy values, so later inserts still see the space
// this run declined.
func (f *File) InsertRunFill(recs [][]byte, rids []storage.RID, ff float64) (int, error) {
	if len(rids) < len(recs) {
		return 0, fmt.Errorf("heap: InsertRun needs %d rid slots, got %d", len(recs), len(rids))
	}
	budget := f.budget
	if ff > 0 {
		if ff > 1 {
			ff = 1
		}
		budget = int(ff * float64(f.pool.Disk().PageSize()))
	}
	h := f.hints.Get().(*shardHint)
	defer f.hints.Put(h)
	home := &f.shards[h.idx]
	i := 0
	for i < len(recs) {
		// Fast lane: every consecutive record the home shard can place
		// lands under this one lock acquisition.
		home.mu.Lock()
		for i < len(recs) {
			if len(recs[i]) == 0 {
				// Validated at placement time, not upfront, so the return
				// is always both the count placed and the failing index.
				home.mu.Unlock()
				return i, fmt.Errorf("heap: cannot insert empty record (run index %d)", i)
			}
			rid, ok, err := f.insertLocked(home, recs[i], budget)
			if err != nil {
				home.mu.Unlock()
				return i, err
			}
			if !ok {
				break
			}
			rids[i] = rid
			i++
		}
		home.mu.Unlock()
		if i >= len(recs) {
			break
		}
		// The home shard is out of space for recs[i]: take the one-record
		// slow path (siblings, then extension), then resume the fast lane.
		rid, err := f.insert(h.idx, recs[i], budget)
		if err != nil {
			return i, err
		}
		rids[i] = rid
		i++
	}
	return i, nil
}

func (f *File) insert(homeIdx int, rec []byte, budget int) (storage.RID, error) {
	home := &f.shards[homeIdx]
	home.mu.Lock()
	rid, ok, err := f.insertLocked(home, rec, budget)
	home.mu.Unlock()
	if err != nil {
		return storage.InvalidRID, err
	}
	if ok {
		return rid, nil
	}
	// Cross-shard fallback: the home shard has no page that fits, but a
	// sibling might (deletes land space in whichever shard owns the
	// page). Shard mutexes are taken one at a time — never two at once —
	// so the fallback cannot deadlock with other inserters.
	for d := 1; d < len(f.shards); d++ {
		s := &f.shards[(homeIdx+d)%len(f.shards)]
		s.mu.Lock()
		rid, ok, err = f.insertLocked(s, rec, budget)
		s.mu.Unlock()
		if err != nil {
			return storage.InvalidRID, err
		}
		if ok {
			return rid, nil
		}
	}
	// No shard can satisfy the insert: extend the file with a page owned
	// by the home shard. Re-check under the lock first — a concurrent
	// inserter may have extended (or a delete freed space) meanwhile.
	home.mu.Lock()
	defer home.mu.Unlock()
	rid, ok, err = f.insertLocked(home, rec, budget)
	if err != nil {
		return storage.InvalidRID, err
	}
	if ok {
		return rid, nil
	}
	id, err := f.addPageLocked(homeIdx)
	if err != nil {
		return storage.InvalidRID, err
	}
	rid, ok, err = f.tryPage(home, id, rec, budget)
	if err != nil {
		return storage.InvalidRID, err
	}
	if !ok {
		return storage.InvalidRID, fmt.Errorf("heap: record of %d bytes does not fit in an empty page", len(rec))
	}
	return rid, nil
}

// insertLocked attempts to place rec in one of s's pages, correcting
// stale advisory entries as it goes. Returns ok=false (no error) when
// the shard has no page that fits. budget is the insert-admission cap
// for this record (usually f.budget; InsertRunFill may override it).
// Caller holds s.mu.
func (f *File) insertLocked(s *insertShard, rec []byte, budget int) (storage.RID, bool, error) {
	need := len(rec) + slotOverhead
	if budget < f.budget {
		// Advisory entries are recorded against the file's budget, so a
		// stricter per-run budget must inflate the pick threshold by the
		// difference: an advisory ≥ need+(f.budget−budget) implies the
		// page passes the stricter admission check, and a page tryPage
		// rejects can never be re-picked (the corrected file-level
		// advisory falls below the inflated need) — the same termination
		// argument as the stale-entry loop below.
		need += f.budget - budget
	}
	// Hot-page fast path: the page that took the last insert usually
	// takes the next one too, so skip the bucket scan while its
	// advisory still covers need.
	if !f.appendOnly && s.cur != storage.InvalidPageID && s.fsm.free[s.cur] >= need {
		rid, ok, err := f.tryPage(s, s.cur, rec, budget)
		if err != nil || ok {
			return rid, ok, err
		}
	}
	for {
		target := s.tail
		if !f.appendOnly {
			t, ok := s.fsm.pick(need)
			if !ok {
				return storage.InvalidRID, false, nil
			}
			target = t
		} else if target == storage.InvalidPageID {
			return storage.InvalidRID, false, nil
		}
		rid, ok, err := f.tryPage(s, target, rec, budget)
		if err != nil || ok {
			return rid, ok, err
		}
		if f.appendOnly {
			// The tail refused the record; only a fresh tail helps.
			return storage.InvalidRID, false, nil
		}
		// tryPage corrected the page's advisory below need, so the next
		// pick cannot return it again: the loop terminates after at most
		// one failed attempt per stale entry.
	}
}

// tryPage pins and latches target and attempts the page-level insert,
// honoring the insert-admission budget: a page holding records already
// at the budget refuses further inserts (still below 100% physically).
// Whatever happens, the shard's advisory entry for target is refreshed
// with the truth observed under the latch — always against the file's
// own fill policy, even when the caller's budget is an override, so
// advisories stay comparable across runs. Caller holds s.mu.
func (f *File) tryPage(s *insertShard, target storage.PageID, rec []byte, budget int) (storage.RID, bool, error) {
	fr, err := f.pool.Fetch(target)
	if err != nil {
		return storage.InvalidRID, false, err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	var slot uint16
	if budget < f.pool.Disk().PageSize() && sp.LiveRecords() > 0 && sp.UsedBytes()+len(rec) > budget {
		err = storage.ErrNoSpace
	} else {
		slot, err = sp.Insert(rec)
	}
	free := f.advisoryFree(sp)
	fr.Latch.Unlock()
	s.fsm.set(target, free)
	if err == nil {
		s.cur = target
		f.pool.Unpin(fr, true)
		return storage.RID{Page: target, Slot: slot}, true, nil
	}
	f.pool.Unpin(fr, false)
	if err != storage.ErrNoSpace {
		return storage.InvalidRID, false, err
	}
	return storage.InvalidRID, false, nil
}

// noteFree publishes an advisory free-space observation to the owning
// shard's map. Callers must hold no frame latch and no shard mutex:
// frame latches order before shard mutexes would invert the insert
// path's shard→latch order and deadlock.
func (f *File) noteFree(id storage.PageID, free int) {
	f.meta.RLock()
	si, ok := f.meta.owner[id]
	f.meta.RUnlock()
	if !ok {
		return
	}
	s := &f.shards[si]
	s.mu.Lock()
	s.fsm.set(id, free)
	s.mu.Unlock()
}

// Get returns a copy of the record at rid.
func (f *File) Get(rid storage.RID) ([]byte, error) {
	return f.GetInto(nil, rid)
}

// GetInto is Get appending the record into dst (pass a reused buffer's
// [:0] slice to make repeated fetches allocation-free once the buffer
// has grown to the largest record).
func (f *File) GetInto(dst []byte, rid storage.RID) ([]byte, error) {
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	fr.Latch.RLock()
	sp := storage.AsSlotted(fr.Data())
	rec, err := sp.Get(rid.Slot)
	var out []byte
	if err == nil {
		out = append(dst, rec...)
	}
	fr.Latch.RUnlock()
	f.pool.Unpin(fr, false)
	return out, err
}

// GetRun fetches a batch of records, visiting each page once per
// consecutive page-grouped run of rids: fn(i, rec) is called for every
// rids[i] in order, with rec aliasing the page under its shared latch
// (copy to retain; fn must not fetch from this file or block on callers
// of it). Sorting rids by page maximizes the grouping; unsorted input
// is still correct, just unamortized. Returning false stops the run
// early. A dead or out-of-range slot fails the whole run.
func (f *File) GetRun(rids []storage.RID, fn func(i int, rec []byte) bool) error {
	i := 0
	for i < len(rids) {
		page := rids[i].Page
		fr, err := f.pool.Fetch(page)
		if err != nil {
			return err
		}
		fr.Latch.RLock()
		sp := storage.AsSlotted(fr.Data())
		stop := false
		j := i
		for ; j < len(rids) && rids[j].Page == page; j++ {
			rec, gerr := sp.Get(rids[j].Slot)
			if gerr != nil {
				err = gerr
				break
			}
			if !fn(j, rec) {
				stop = true
				j++
				break
			}
		}
		fr.Latch.RUnlock()
		f.pool.Unpin(fr, false)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		i = j
	}
	return nil
}

// Delete removes the record at rid. The freed space is reported to the
// page's owning shard, so later inserts — from any shard, via the
// cross-shard fallback — reclaim it.
func (f *File) Delete(rid storage.RID) error {
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	err = sp.Delete(rid.Slot)
	free := f.advisoryFree(sp)
	fr.Latch.Unlock()
	dirty := err == nil
	f.pool.Unpin(fr, dirty)
	if err == nil {
		f.noteFree(rid.Page, free)
	}
	return err
}

// Update replaces the record at rid in place. If the new payload no
// longer fits in its page, the record is moved: it is deleted and
// reinserted elsewhere, and the new RID is returned. Callers that
// maintain indexes must compare the returned RID with the argument.
func (f *File) Update(rid storage.RID, rec []byte) (storage.RID, error) {
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return storage.InvalidRID, err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	err = sp.Update(rid.Slot, rec)
	free := f.advisoryFree(sp)
	fr.Latch.Unlock()
	if err == nil {
		f.pool.Unpin(fr, true)
		f.noteFree(rid.Page, free)
		return rid, nil
	}
	f.pool.Unpin(fr, false)
	if err != storage.ErrNoSpace {
		return storage.InvalidRID, err
	}
	if err := f.Delete(rid); err != nil {
		return storage.InvalidRID, fmt.Errorf("heap: relocating update: %w", err)
	}
	return f.Insert(rec)
}

// VisitPage pins the page and runs fn over its slotted view. The frame
// latch is taken exclusively when that succeeds without blocking
// (enabling volatile cache writes in the page's free space, Section 2.2
// of the paper), shared otherwise; fn receives which. The page is
// unpinned clean — mutations made under fn are volatile unless the
// caller arranges otherwise, exactly like index-cache writes.
func (f *File) VisitPage(id storage.PageID, fn func(sp *storage.SlottedPage, exclusive bool)) error {
	fr, err := f.pool.Fetch(id)
	if err != nil {
		return err
	}
	exclusive := fr.Latch.TryLock()
	if !exclusive {
		fr.Latch.RLock()
	}
	fn(storage.AsSlotted(fr.Data()), exclusive)
	if exclusive {
		fr.Latch.Unlock()
	} else {
		fr.Latch.RUnlock()
	}
	f.pool.Unpin(fr, false)
	return nil
}

// Scan iterates over every live record in file order. fn receives the
// RID and the raw record (aliasing the page; copy to retain) and
// returns false to stop early. Pages appended after the scan started
// are not visited.
func (f *File) Scan(fn func(rid storage.RID, rec []byte) bool) error {
	for _, id := range f.Pages() {
		fr, err := f.pool.Fetch(id)
		if err != nil {
			return err
		}
		fr.Latch.RLock()
		sp := storage.AsSlotted(fr.Data())
		stop := false
		sp.Records(func(slot uint16, rec []byte) bool {
			if !fn(storage.RID{Page: id, Slot: slot}, rec) {
				stop = true
				return false
			}
			return true
		})
		fr.Latch.RUnlock()
		f.pool.Unpin(fr, false)
		if stop {
			return nil
		}
	}
	return nil
}

// Stats describes physical occupancy of the file.
type Stats struct {
	Pages       int
	LiveRecords int
	UsedBytes   int
	TotalBytes  int
	// MeanUtilization is the average per-page fraction of usable bytes
	// holding live records (the paper's Section 3.1 metric).
	MeanUtilization float64
}

// Stats scans the file's pages and reports occupancy. It reads each
// page under its latch, never the advisory maps, so the byte accounting
// is exact even while the free-space maps hold stale observations.
func (f *File) Stats() (Stats, error) {
	var st Stats
	pages := f.Pages()
	st.Pages = len(pages)
	sumUtil := 0.0
	for _, id := range pages {
		fr, err := f.pool.Fetch(id)
		if err != nil {
			return Stats{}, err
		}
		fr.Latch.RLock()
		sp := storage.AsSlotted(fr.Data())
		st.LiveRecords += sp.LiveRecords()
		st.UsedBytes += sp.UsedBytes()
		sumUtil += sp.Utilization()
		fr.Latch.RUnlock()
		f.pool.Unpin(fr, false)
		st.TotalBytes += f.pool.Disk().PageSize()
	}
	if st.Pages > 0 {
		st.MeanUtilization = sumUtil / float64(st.Pages)
	}
	return st, nil
}
