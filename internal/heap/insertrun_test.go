package heap

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/storage"
)

func runRecs(n, size int, tag byte) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		rec := make([]byte, size)
		rec[0] = tag
		rec[1] = byte(i)
		rec[2] = byte(i >> 8)
		recs[i] = rec
	}
	return recs
}

func TestInsertRunBasic(t *testing.T) {
	f := newTestFile(t, WithInsertShards(4))
	recs := runRecs(500, 40, 'r')
	rids := make([]storage.RID, len(recs))
	n, err := f.InsertRun(recs, rids)
	if err != nil {
		t.Fatalf("InsertRun: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("placed %d of %d", n, len(recs))
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.LiveRecords != len(recs) {
		t.Errorf("LiveRecords = %d, want %d", st.LiveRecords, len(recs))
	}
	if _, err := f.InsertRun([][]byte{{1}}, nil); err == nil {
		t.Error("short rid slice accepted")
	}
	// An empty record fails at its own index; the return is the number
	// actually placed, and the rids before it are valid.
	bad := [][]byte{{1, 2}, {3, 4}, nil, {5, 6}}
	badRIDs := make([]storage.RID, len(bad))
	n, err = f.InsertRun(bad, badRIDs)
	if err == nil {
		t.Fatal("empty record accepted")
	}
	if n != 2 {
		t.Fatalf("placed = %d, want 2 (count == failing index)", n)
	}
	for i := 0; i < n; i++ {
		if got, err := f.Get(badRIDs[i]); err != nil || !bytes.Equal(got, bad[i]) {
			t.Fatalf("pre-failure record %d not durable: %v %v", i, got, err)
		}
	}
}

// TestInsertRunFillOverride checks a per-run fill override caps how
// full this batch packs pages without changing the file's policy: the
// run's pages keep at least the override headroom, and a later
// file-policy insert can still use the space the run declined.
func TestInsertRunFillOverride(t *testing.T) {
	f := newTestFile(t, WithInsertShards(1))
	pageSize := 512
	recs := runRecs(40, 100, 'o')
	rids := make([]storage.RID, len(recs))
	if _, err := f.InsertRunFill(recs, rids, 0.5); err != nil {
		t.Fatalf("InsertRunFill: %v", err)
	}
	// Every page the run touched must hold at most ~half a page of
	// records (one record of slack: admission checks before the insert).
	budget := pageSize / 2
	for _, id := range f.Pages() {
		err := f.VisitPage(id, func(sp *storage.SlottedPage, _ bool) {
			if used := sp.UsedBytes(); used > budget+100 {
				t.Errorf("page %v packed to %d bytes under a %d-byte run budget", id, used, budget)
			}
		})
		if err != nil {
			t.Fatalf("VisitPage: %v", err)
		}
	}
	pagesAfterRun := f.NumPages()
	// File-policy inserts reuse the headroom the run left behind: the
	// file must absorb more records without growing proportionally.
	for i := 0; i < 20; i++ {
		if _, err := f.Insert(runRecs(1, 100, 'p')[0]); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if grown := f.NumPages() - pagesAfterRun; grown > 2 {
		t.Errorf("file grew %d pages though the run left headroom on %d pages", grown, pagesAfterRun)
	}
}

// TestInsertRunConcurrent storms InsertRun from 8 goroutines over 4
// shards (forcing slow-path fallbacks when shards exhaust) and checks
// no RID is handed out twice and the final accounting is exact. Run
// under -race in CI.
func TestInsertRunConcurrent(t *testing.T) {
	f := newTestFile(t, WithInsertShards(4))
	const (
		workers = 8
		perRun  = 64
		runs    = 20
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var mu sync.Mutex
	seen := make(map[storage.RID]byte)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < runs; r++ {
				recs := runRecs(perRun, 32, byte(w))
				rids := make([]storage.RID, perRun)
				if _, err := f.InsertRun(recs, rids); err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				mu.Lock()
				for _, rid := range rids {
					if prev, dup := seen[rid]; dup {
						mu.Unlock()
						errCh <- fmt.Errorf("rid %v handed to workers %d and %d", rid, prev, w)
						return
					}
					seen[rid] = byte(w)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if want := workers * perRun * runs; st.LiveRecords != want {
		t.Errorf("LiveRecords = %d, want %d", st.LiveRecords, want)
	}
}

func TestGetRun(t *testing.T) {
	f := newTestFile(t)
	recs := runRecs(300, 30, 'g')
	rids := make([]storage.RID, len(recs))
	if _, err := f.InsertRun(recs, rids); err != nil {
		t.Fatalf("InsertRun: %v", err)
	}
	// Page-sorted order maximizes grouping; correctness holds anyway.
	order := make([]int, len(rids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rids[order[a]].Page < rids[order[b]].Page })
	sorted := make([]storage.RID, len(rids))
	for i, o := range order {
		sorted[i] = rids[o]
	}
	got := 0
	err := f.GetRun(sorted, func(i int, rec []byte) bool {
		if !bytes.Equal(rec, recs[order[i]]) {
			t.Fatalf("record %d mismatched", order[i])
		}
		got++
		return true
	})
	if err != nil {
		t.Fatalf("GetRun: %v", err)
	}
	if got != len(recs) {
		t.Errorf("visited %d of %d", got, len(recs))
	}
	// Early stop.
	got = 0
	if err := f.GetRun(sorted, func(i int, rec []byte) bool { got++; return got < 5 }); err != nil {
		t.Fatalf("GetRun early stop: %v", err)
	}
	if got != 5 {
		t.Errorf("early stop visited %d, want 5", got)
	}
	// Dead slot fails the run.
	if err := f.Delete(rids[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := f.GetRun(rids[:1], func(int, []byte) bool { return true }); err == nil {
		t.Error("GetRun over a dead slot succeeded")
	}
}
