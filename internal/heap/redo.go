package heap

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Open reconstructs a heap file over pages that already exist on disk —
// the checkpoint manifest's page list, in allocation order. Each page
// is read once to seed the advisory free-space maps; ownership is dealt
// round-robin across the insert shards. Options must match the ones the
// file was created with (the manifest records them).
func Open(pool *buffer.Pool, pages []storage.PageID, opts ...Option) (*File, error) {
	f := newShell(pool, opts...)
	if len(pages) == 0 {
		// Match NewFile's invariant: a file always owns at least one page.
		s := &f.shards[0]
		s.mu.Lock()
		_, err := f.addPageLocked(0)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return f, nil
	}
	for i, id := range pages {
		if err := f.adoptPageShard(id, i%len(f.shards)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// adoptPage registers a page the file does not yet own — the redo path
// hits this when the log references a page allocated after the last
// checkpoint. A virgin (all-zero) page is formatted as an empty heap
// page; a page carrying non-heap flags is an error (the redo stream
// disagrees with the disk about page ownership).
func (f *File) adoptPage(id storage.PageID) error {
	f.meta.RLock()
	_, known := f.meta.owner[id]
	n := len(f.meta.pages)
	f.meta.RUnlock()
	if known {
		return nil
	}
	return f.adoptPageShard(id, n%len(f.shards))
}

// adoptPageShard adopts id into shard si. Recovery is single-threaded,
// so the shard mutex here only preserves the documented lock order
// (shard before latch, meta inside shard).
func (f *File) adoptPageShard(id storage.PageID, si int) error {
	s := &f.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, err := f.pool.Fetch(id)
	if err != nil {
		return err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	dirty := false
	switch sp.Flags() {
	case pageFlagHeap:
	case 0:
		sp.Init()
		sp.SetFlags(pageFlagHeap)
		dirty = true
	default:
		flags := sp.Flags()
		fr.Latch.Unlock()
		f.pool.Unpin(fr, false)
		return fmt.Errorf("heap: cannot adopt page %v: flags %#x are not a heap page's", id, flags)
	}
	free := f.advisoryFree(sp)
	fr.Latch.Unlock()
	f.pool.Unpin(fr, dirty)
	f.meta.Lock()
	f.meta.pages = append(f.meta.pages, id)
	f.meta.owner[id] = si
	f.meta.Unlock()
	s.fsm.set(id, free)
	s.tail = id
	return nil
}

// RedoPut physically reinstalls rec at exactly rid — recovery's
// idempotent redo primitive. The page is adopted if unknown (formatting
// it when virgin); the slot semantics are storage.SlottedPage.PutAt's:
// identical bytes are a no-op, anything else is replaced in place.
func (f *File) RedoPut(rid storage.RID, rec []byte) error {
	if err := f.adoptPage(rid.Page); err != nil {
		return err
	}
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	err = sp.PutAt(rid.Slot, rec)
	free := f.advisoryFree(sp)
	fr.Latch.Unlock()
	f.pool.Unpin(fr, err == nil)
	if err != nil {
		return fmt.Errorf("heap: redo put at %v: %w", rid, err)
	}
	f.noteFree(rid.Page, free)
	return nil
}

// RedoDelete removes the record at rid if present. An unknown page or
// an already-dead slot is a no-op, not an error: the redo stream
// overlaps the checkpoint image, so a replayed delete may find its work
// already done.
func (f *File) RedoDelete(rid storage.RID) error {
	f.meta.RLock()
	_, known := f.meta.owner[rid.Page]
	f.meta.RUnlock()
	if !known {
		return nil
	}
	fr, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	fr.Latch.Lock()
	sp := storage.AsSlotted(fr.Data())
	deleted := sp.Delete(rid.Slot) == nil
	free := f.advisoryFree(sp)
	fr.Latch.Unlock()
	f.pool.Unpin(fr, deleted)
	if deleted {
		f.noteFree(rid.Page, free)
	}
	return nil
}
