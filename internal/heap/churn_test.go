package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// newShardedFile builds a file with an explicit shard count on a
// generous pool, so shard behavior is tested regardless of GOMAXPROCS.
func newShardedFile(t *testing.T, shards int, opts ...Option) *File {
	t.Helper()
	disk, err := storage.NewMemDisk(1024)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	pool, err := buffer.NewPool(disk, 1024)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	f, err := NewFile(pool, append([]Option{WithInsertShards(shards)}, opts...)...)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return f
}

// TestHeapShardedChurn drives concurrent Insert/Delete/Update traffic
// against the per-shard free-space maps and then verifies the survivors
// against per-goroutine models: no RID lost or corrupted, no RID handed
// to two owners, byte accounting in Stats exact, and the fill-factor
// budget honored on every page. Run under -race this also exercises the
// shard-mutex / frame-latch / meta ordering.
func TestHeapShardedChurn(t *testing.T) {
	const (
		workers    = 8
		opsPerG    = 2500
		fillFactor = 0.8
	)
	f := newShardedFile(t, 4, WithFillFactor(fillFactor))
	if got := f.InsertShards(); got != 4 {
		t.Fatalf("InsertShards() = %d, want 4", got)
	}

	models := make([]map[storage.RID][]byte, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			model := map[storage.RID][]byte{}
			var live []storage.RID
			fail := func(format string, args ...any) {
				errCh <- fmt.Errorf("worker %d: %s", w, fmt.Sprintf(format, args...))
			}
			for op := 0; op < opsPerG; op++ {
				switch rng.Intn(5) {
				case 0, 1, 2: // insert-biased so the file keeps churning
					rec := make([]byte, 8+rng.Intn(120))
					rng.Read(rec)
					rec[0] = byte(w) // owner tag: catches cross-owner RID reuse
					rid, err := f.Insert(rec)
					if err != nil {
						fail("op %d Insert: %v", op, err)
						return
					}
					if _, dup := model[rid]; dup {
						fail("op %d: rid %v handed out twice while live", op, rid)
						return
					}
					model[rid] = append([]byte(nil), rec...)
					live = append(live, rid)
				case 3:
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					rid := live[i]
					if err := f.Delete(rid); err != nil {
						fail("op %d Delete(%v): %v", op, rid, err)
						return
					}
					delete(model, rid)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				case 4:
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					rid := live[i]
					rec := make([]byte, 8+rng.Intn(120))
					rng.Read(rec)
					rec[0] = byte(w)
					nrid, err := f.Update(rid, rec)
					if err != nil {
						fail("op %d Update(%v): %v", op, rid, err)
						return
					}
					if nrid != rid {
						delete(model, rid)
						live[i] = nrid
					}
					model[nrid] = append([]byte(nil), rec...)
				}
			}
			models[w] = model
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// No RID lost, none corrupted, none owned twice.
	owners := map[storage.RID]int{}
	liveRecords, usedBytes := 0, 0
	for w, model := range models {
		for rid, want := range model {
			if prev, dup := owners[rid]; dup {
				t.Fatalf("rid %v live in workers %d and %d", rid, prev, w)
			}
			owners[rid] = w
			got, err := f.Get(rid)
			if err != nil {
				t.Fatalf("worker %d rid %v lost: %v", w, rid, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("worker %d rid %v corrupted", w, rid)
			}
			liveRecords++
			usedBytes += len(want)
		}
	}

	// Stats byte accounting must be exact, not advisory.
	st, err := f.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.LiveRecords != liveRecords {
		t.Errorf("Stats.LiveRecords = %d, models hold %d", st.LiveRecords, liveRecords)
	}
	if st.UsedBytes != usedBytes {
		t.Errorf("Stats.UsedBytes = %d, models hold %d", st.UsedBytes, usedBytes)
	}

}

// TestHeapShardedBudget runs concurrent insert/delete churn (no
// updates: the fill-factor headroom is *for* update growth, so only
// insert packing is capped) and asserts no page is ever packed past
// its budget — two inserters racing into one page must not overshoot.
func TestHeapShardedBudget(t *testing.T) {
	const fillFactor = 0.8
	f := newShardedFile(t, 4, WithFillFactor(fillFactor))
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			var live []storage.RID
			for op := 0; op < 2000; op++ {
				if rng.Intn(3) < 2 || len(live) == 0 {
					rid, err := f.Insert(bytes.Repeat([]byte{byte(w)}, 8+rng.Intn(120)))
					if err != nil {
						errCh <- err
						return
					}
					live = append(live, rid)
				} else {
					i := rng.Intn(len(live))
					if err := f.Delete(live[i]); err != nil {
						errCh <- err
						return
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	ff := float64(fillFactor) // force non-constant: Go rejects fractional constant→int
	budget := int(1024 * ff)
	for _, id := range f.Pages() {
		if err := f.VisitPage(id, func(sp *storage.SlottedPage, _ bool) {
			if used := sp.UsedBytes(); used > budget {
				t.Errorf("page %v holds %d bytes, budget %d", id, used, budget)
			}
		}); err != nil {
			t.Fatalf("VisitPage(%v): %v", id, err)
		}
	}
}

// TestHeapCrossShardReuse pins down the fallback path: space freed in
// pages owned by other shards must be found and refilled before the
// file grows, even though the deleting and reinserting goroutine is
// affine to a single shard.
func TestHeapCrossShardReuse(t *testing.T) {
	const rec = 100
	f := newShardedFile(t, 4)

	// Phase 1: parallel ingest spreads page ownership across shards.
	var wg sync.WaitGroup
	rids := make([][]storage.RID, 4)
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rid, err := f.Insert(bytes.Repeat([]byte{byte(w)}, rec))
				if err != nil {
					errCh <- err
					return
				}
				rids[w] = append(rids[w], rid)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Phase 2: one goroutine deletes everything, then reinserts the
	// same volume. Its home shard does not own most of the freed pages,
	// so reuse requires the cross-shard fallback.
	for _, rs := range rids {
		for _, rid := range rs {
			if err := f.Delete(rid); err != nil {
				t.Fatalf("Delete(%v): %v", rid, err)
			}
		}
	}
	pagesBefore := f.NumPages()
	for i := 0; i < 400; i++ {
		if _, err := f.Insert(bytes.Repeat([]byte{9}, rec)); err != nil {
			t.Fatalf("re-Insert %d: %v", i, err)
		}
	}
	if grew := f.NumPages() - pagesBefore; grew > f.InsertShards() {
		t.Errorf("freed space not reused across shards: file grew by %d pages (%d → %d)",
			grew, pagesBefore, f.NumPages())
	}
}

// TestHeapAppendOnlyForcesSingleShard: append-only placement has one
// global tail by definition, so the shard option must be overridden.
func TestHeapAppendOnlyForcesSingleShard(t *testing.T) {
	f := newShardedFile(t, 4, AppendOnly())
	if got := f.InsertShards(); got != 1 {
		t.Errorf("append-only file has %d insert shards, want 1", got)
	}
}

// TestFreeSpaceMapPick checks the bucketed map directly: picks must
// honor need, prefer returning some fitting page, and report nothing
// when no page fits.
func TestFreeSpaceMapPick(t *testing.T) {
	m := newFreeSpaceMap(1024)
	if _, ok := m.pick(1); ok {
		t.Error("empty map produced a page")
	}
	m.set(storage.PageID(1), 100)
	m.set(storage.PageID(2), 500)
	m.set(storage.PageID(3), 900)
	if id, ok := m.pick(600); !ok || id != storage.PageID(3) {
		t.Errorf("pick(600) = %v,%v — only page 3 fits", id, ok)
	}
	if _, ok := m.pick(901); ok {
		t.Error("pick(901) found a page although none fits")
	}
	// Shrinking a page's entry moves it down a bucket.
	m.set(storage.PageID(3), 50)
	if _, ok := m.pick(600); ok {
		t.Error("pick(600) still sees page 3 after it shrank")
	}
	if id, ok := m.pick(400); !ok || id != storage.PageID(2) {
		t.Errorf("pick(400) = %v,%v — want page 2", id, ok)
	}
	// Growing re-promotes.
	m.set(storage.PageID(1), 1024)
	if id, ok := m.pick(1000); !ok || id != storage.PageID(1) {
		t.Errorf("pick(1000) = %v,%v — want page 1", id, ok)
	}
}
