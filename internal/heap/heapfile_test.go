package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func newTestFile(t *testing.T, opts ...Option) *File {
	t.Helper()
	disk, err := storage.NewMemDisk(512)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	pool, err := buffer.NewPool(disk, 256)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	f, err := NewFile(pool, opts...)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return f
}

func TestHeapInsertGet(t *testing.T) {
	f := newTestFile(t)
	rid, err := f.Insert([]byte("hello"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := f.Get(rid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestHeapSpansPages(t *testing.T) {
	f := newTestFile(t)
	var rids []storage.RID
	for i := 0; i < 100; i++ {
		rid, err := f.Insert(bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		rids = append(rids, rid)
	}
	if f.NumPages() < 2 {
		t.Errorf("100×100B records in 512B pages should span pages, got %d", f.NumPages())
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if len(got) != 100 || got[0] != byte(i) {
			t.Errorf("record %d corrupted", i)
		}
	}
}

func TestHeapDeleteThenSpaceReused(t *testing.T) {
	f := newTestFile(t)
	var rids []storage.RID
	for i := 0; i < 50; i++ {
		rid, _ := f.Insert(bytes.Repeat([]byte{1}, 80))
		rids = append(rids, rid)
	}
	pagesBefore := f.NumPages()
	for _, rid := range rids {
		if err := f.Delete(rid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	// Re-insert: default policy refills freed space, not new pages.
	for i := 0; i < 50; i++ {
		if _, err := f.Insert(bytes.Repeat([]byte{2}, 80)); err != nil {
			t.Fatalf("re-Insert: %v", err)
		}
	}
	if f.NumPages() > pagesBefore+1 {
		t.Errorf("freed space not reused: %d pages before, %d after", pagesBefore, f.NumPages())
	}
}

func TestHeapAppendOnlyNeverRefills(t *testing.T) {
	f := newTestFile(t, AppendOnly())
	var rids []storage.RID
	for i := 0; i < 50; i++ {
		rid, _ := f.Insert(bytes.Repeat([]byte{1}, 80))
		rids = append(rids, rid)
	}
	for _, rid := range rids[:25] {
		f.Delete(rid)
	}
	pagesBefore := f.NumPages()
	last := f.Pages()[f.NumPages()-1]
	for i := 0; i < 10; i++ {
		rid, err := f.Insert(bytes.Repeat([]byte{3}, 80))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if rid.Page < last {
			t.Errorf("append-only insert landed in old page %v", rid)
		}
	}
	if f.NumPages() < pagesBefore {
		t.Error("page count shrank")
	}
}

func TestHeapUpdateInPlaceAndRelocate(t *testing.T) {
	f := newTestFile(t)
	rid, _ := f.Insert(bytes.Repeat([]byte{1}, 50))
	// Fill the page so a growing update must relocate.
	for i := 0; i < 20; i++ {
		f.Insert(bytes.Repeat([]byte{2}, 100))
	}
	nrid, err := f.Update(rid, bytes.Repeat([]byte{9}, 40))
	if err != nil {
		t.Fatalf("shrinking update: %v", err)
	}
	if nrid != rid {
		t.Error("shrinking update should stay in place")
	}
	nrid, err = f.Update(rid, bytes.Repeat([]byte{8}, 400))
	if err != nil {
		t.Fatalf("growing update: %v", err)
	}
	if nrid == rid {
		t.Error("oversized update should relocate")
	}
	got, err := f.Get(nrid)
	if err != nil || len(got) != 400 || got[0] != 8 {
		t.Errorf("relocated record wrong: %d bytes, err=%v", len(got), err)
	}
	if _, err := f.Get(rid); err == nil {
		t.Error("old rid should be dead after relocation")
	}
}

func TestHeapScan(t *testing.T) {
	f := newTestFile(t)
	want := map[string]bool{}
	for i := 0; i < 60; i++ {
		rec := fmt.Sprintf("record-%03d", i)
		if _, err := f.Insert([]byte(rec)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		want[rec] = true
	}
	got := map[string]bool{}
	err := f.Scan(func(rid storage.RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	// Early stop.
	n := 0
	f.Scan(func(rid storage.RID, rec []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestHeapStats(t *testing.T) {
	f := newTestFile(t)
	for i := 0; i < 30; i++ {
		f.Insert(bytes.Repeat([]byte{1}, 64))
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.LiveRecords != 30 {
		t.Errorf("LiveRecords = %d", st.LiveRecords)
	}
	if st.UsedBytes != 30*64 {
		t.Errorf("UsedBytes = %d", st.UsedBytes)
	}
	if st.MeanUtilization <= 0 || st.MeanUtilization > 1 {
		t.Errorf("MeanUtilization = %f", st.MeanUtilization)
	}
}

func TestHeapRejectsEmptyAndHuge(t *testing.T) {
	f := newTestFile(t)
	if _, err := f.Insert(nil); err == nil {
		t.Error("empty record should fail")
	}
	if _, err := f.Insert(make([]byte, 2000)); err == nil {
		t.Error("record larger than a page should fail")
	}
}

func TestHeapFillFactorReservesSpace(t *testing.T) {
	full := newTestFile(t)
	capped := newTestFile(t, WithFillFactor(0.6))
	for i := 0; i < 40; i++ {
		rec := bytes.Repeat([]byte{1}, 60)
		if _, err := full.Insert(rec); err != nil {
			t.Fatalf("full Insert: %v", err)
		}
		if _, err := capped.Insert(rec); err != nil {
			t.Fatalf("capped Insert: %v", err)
		}
	}
	if capped.NumPages() <= full.NumPages() {
		t.Errorf("fill factor 0.6 should spread rows over more pages: %d vs %d",
			capped.NumPages(), full.NumPages())
	}
	// Every capped page keeps roughly 40% usable space free.
	st, err := capped.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.MeanUtilization > 0.72 {
		t.Errorf("mean utilization %.2f exceeds fill factor headroom", st.MeanUtilization)
	}
	// All records still readable.
	count := 0
	capped.Scan(func(rid storage.RID, rec []byte) bool { count++; return true })
	if count != 40 {
		t.Errorf("scan found %d records", count)
	}
	// Invalid fill factors are clamped, not fatal.
	if _, err := newTestFile(t, WithFillFactor(-1)).Insert([]byte("x")); err != nil {
		t.Errorf("clamped fill factor broke inserts: %v", err)
	}
}

func TestHeapFuzzAgainstModel(t *testing.T) {
	f := newTestFile(t)
	rng := rand.New(rand.NewSource(5))
	model := map[storage.RID][]byte{}
	var live []storage.RID
	for op := 0; op < 3000; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			rec := make([]byte, 1+rng.Intn(120))
			rng.Read(rec)
			rid, err := f.Insert(rec)
			if err != nil {
				t.Fatalf("op %d Insert: %v", op, err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("op %d: rid %v reused while live", op, rid)
			}
			model[rid] = append([]byte(nil), rec...)
			live = append(live, rid)
		case 2:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			rid := live[i]
			if err := f.Delete(rid); err != nil {
				t.Fatalf("op %d Delete: %v", op, err)
			}
			delete(model, rid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case 3:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			rid := live[i]
			rec := make([]byte, 1+rng.Intn(120))
			rng.Read(rec)
			nrid, err := f.Update(rid, rec)
			if err != nil {
				t.Fatalf("op %d Update: %v", op, err)
			}
			if nrid != rid {
				delete(model, rid)
				live[i] = nrid
			}
			model[nrid] = append([]byte(nil), rec...)
		}
	}
	for rid, want := range model {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("verify Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rid %v diverged", rid)
		}
	}
	st, _ := f.Stats()
	if st.LiveRecords != len(model) {
		t.Errorf("LiveRecords=%d model=%d", st.LiveRecords, len(model))
	}
}
