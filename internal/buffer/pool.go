// Package buffer implements the buffer pool: a fixed set of in-memory
// page frames over a storage.DiskManager with clock eviction, pin
// counts, and dirty tracking.
//
// One property matters specially for the paper's index cache
// (Section 2.1): a page can be *mutated in memory without being marked
// dirty*. Such mutations are volatile — eviction of a clean frame drops
// them silently, and no write-back I/O ever happens for them. That is
// exactly the contract index-cache writes need ("cache modifications do
// not dirty the page"), and the CSN invalidation scheme makes losing
// them safe.
package buffer

import (
	"fmt"
	"sync"

	"repro/internal/latch"
	"repro/internal/storage"
)

// Frame is an in-memory copy of one page, plus bookkeeping.
type Frame struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	ref   bool // clock reference bit
	// Latch guards the frame's data. The buffer pool hands out frames
	// without holding it; callers latch around their accesses. Cache
	// writes use Latch.TryLock per the paper's give-up protocol.
	Latch latch.Latch
}

// ID returns the page id held by this frame.
func (f *Frame) ID() storage.PageID { return f.id }

// Data returns the page buffer. Mutating it without a subsequent
// MarkDirty produces a volatile, cache-style change.
func (f *Frame) Data() []byte { return f.data }

// Stats is a snapshot of pool counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// HitRate returns Hits/(Hits+Misses), or 0 when no fetches happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is a buffer pool of fixed capacity.
type Pool struct {
	disk storage.DiskManager

	mu     sync.Mutex
	frames []*Frame
	table  map[storage.PageID]int // page id -> frame index
	hand   int                    // clock hand
	stats  Stats
	maxCap int
}

// NewPool creates a pool holding up to capacity pages.
func NewPool(disk storage.DiskManager, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity must be at least 1, got %d", capacity)
	}
	return &Pool{
		disk:   disk,
		table:  make(map[storage.PageID]int, capacity),
		maxCap: capacity,
	}, nil
}

// Capacity returns the maximum number of resident pages.
func (p *Pool) Capacity() int { return p.maxCap }

// Disk returns the underlying disk manager.
func (p *Pool) Disk() storage.DiskManager { return p.disk }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Fetch pins the page into a frame, reading it from disk on a miss.
// Callers must Unpin exactly once per Fetch.
func (p *Pool) Fetch(id storage.PageID) (*Frame, error) {
	if id == storage.InvalidPageID {
		return nil, fmt.Errorf("buffer: fetch of invalid page id")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.table[id]; ok {
		f := p.frames[idx]
		f.pins++
		f.ref = true
		p.stats.Hits++
		return f, nil
	}
	p.stats.Misses++
	f, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	if err := p.disk.ReadPage(id, f.data); err != nil {
		p.freeFrameLocked(f)
		return nil, err
	}
	p.installLocked(f, id)
	return f, nil
}

// NewPage allocates a fresh page on disk and pins it in a zeroed frame.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	p.installLocked(f, id)
	f.dirty = true // a new page must eventually reach disk
	return f, nil
}

// installLocked binds a free frame to a page id and pins it.
func (p *Pool) installLocked(f *Frame, id storage.PageID) {
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = false
	idx := p.frameIndexLocked(f)
	p.table[id] = idx
}

func (p *Pool) frameIndexLocked(f *Frame) int {
	for i, other := range p.frames {
		if other == f {
			return i
		}
	}
	p.frames = append(p.frames, f)
	return len(p.frames) - 1
}

// freeFrameLocked detaches a frame after a failed install.
func (p *Pool) freeFrameLocked(f *Frame) {
	f.id = storage.InvalidPageID
	f.pins = 0
	f.dirty = false
}

// victimLocked returns an unbound frame, growing the pool if below
// capacity or evicting a victim via the clock algorithm otherwise.
func (p *Pool) victimLocked() (*Frame, error) {
	// Reuse a detached frame if one exists (failed install).
	for _, f := range p.frames {
		if f.id == storage.InvalidPageID && f.pins == 0 {
			return f, nil
		}
	}
	if len(p.frames) < p.maxCap {
		f := &Frame{data: make([]byte, p.disk.PageSize())}
		return f, nil
	}
	// Clock sweep: two full passes; a frame with ref bit gets a second
	// chance, pinned frames are skipped.
	n := len(p.frames)
	for pass := 0; pass < 2*n; pass++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if err := p.evictLocked(f); err != nil {
			return nil, err
		}
		return f, nil
	}
	return nil, fmt.Errorf("buffer: all %d frames pinned; cannot evict", n)
}

// evictLocked detaches the (unpinned) frame's page, writing it back only
// if dirty. Clean frames are dropped without I/O — this is the moment
// volatile index-cache contents disappear.
func (p *Pool) evictLocked(f *Frame) error {
	if f.dirty {
		if err := p.disk.WritePage(f.id, f.data); err != nil {
			return fmt.Errorf("buffer: write back %v: %w", f.id, err)
		}
		p.stats.Writebacks++
	}
	delete(p.table, f.id)
	p.stats.Evictions++
	f.id = storage.InvalidPageID
	f.dirty = false
	return nil
}

// Unpin releases one pin. If dirty is true the page will be written
// back before eviction; if false, any in-memory mutations remain
// volatile (the index-cache write path).
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned %v", f.id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// FlushAll writes every dirty resident page to disk. Clean pages
// (including those with volatile cache writes) are not touched.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.id == storage.InvalidPageID || !f.dirty {
			continue
		}
		if err := p.disk.WritePage(f.id, f.data); err != nil {
			return fmt.Errorf("buffer: flush %v: %w", f.id, err)
		}
		f.dirty = false
		p.stats.Writebacks++
	}
	return nil
}

// Resident reports whether the page is currently in the pool (used by
// tests and the partition experiment's "does the index fit in RAM"
// accounting).
func (p *Pool) Resident(id storage.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.table[id]
	return ok
}

// EvictAll force-evicts every unpinned page (dirty ones are written
// back). Tests use it to simulate a cold restart, which must drop all
// volatile index-cache contents.
func (p *Pool) EvictAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.id == storage.InvalidPageID || f.pins > 0 {
			continue
		}
		if err := p.evictLocked(f); err != nil {
			return err
		}
	}
	return nil
}
