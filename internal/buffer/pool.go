// Package buffer implements the buffer pool: a fixed set of in-memory
// page frames over a storage.DiskManager with clock eviction, pin
// counts, and dirty tracking.
//
// One property matters specially for the paper's index cache
// (Section 2.1): a page can be *mutated in memory without being marked
// dirty*. Such mutations are volatile — eviction of a clean frame drops
// them silently, and no write-back I/O ever happens for them. That is
// exactly the contract index-cache writes need ("cache modifications do
// not dirty the page"), and the CSN invalidation scheme makes losing
// them safe.
//
// The pool is sharded: page ids hash to one of a power-of-two number of
// shards, each with its own frame table, clock hand, free list, and
// mutex, so concurrent fetches of unrelated pages never contend. Total
// capacity is accounted globally — a hot shard may hold more frames
// than an idle one, and a shard whose frames are all pinned steals a
// victim from a sibling rather than failing. Unpin is lock-free (atomic
// pin count and dirty bit), which matters because every page access
// pays it.
package buffer

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/storage"
)

// Frame is an in-memory copy of one page, plus bookkeeping.
//
// pins and dirty are atomic so Unpin never takes a shard lock; the
// clock reference bit and id are only touched under the owning shard's
// mutex (a frame with pins > 0 is never evicted or re-bound, so reading
// id from a pinned frame is safe without it).
type Frame struct {
	id   storage.PageID
	data []byte
	slot int // index within the owning shard's frames slice

	pins  atomic.Int32
	dirty atomic.Bool
	ref   bool // clock reference bit; shard lock only

	// Latch guards the frame's data. The buffer pool hands out frames
	// without holding it; callers latch around their accesses. Cache
	// writes use Latch.TryLock per the paper's give-up protocol.
	//
	// Invariant: a caller may only hold the latch while holding a pin,
	// and must release the latch before the pin. Eviction asserts this
	// (see shard.evict) — it is what lets the latch-crabbing B+Tree
	// treat a latched frame as immune to eviction.
	//
	// nblb:lock frame-latch
	Latch latch.Latch
}

// ID returns the page id held by this frame.
func (f *Frame) ID() storage.PageID { return f.id }

// Data returns the page buffer. Mutating it without a subsequent
// MarkDirty produces a volatile, cache-style change.
func (f *Frame) Data() []byte { return f.data }

// Stats is a snapshot of pool counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// HitRate returns Hits/(Hits+Misses), or 0 when no fetches happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is a buffer pool of fixed total capacity, sharded by page id.
//
// Invariants every caller can rely on (and must preserve):
//
//  1. Pin balance: every Fetch/NewPage must be matched by exactly one
//     Unpin. A frame with pins > 0 is never evicted or rebound, so a
//     pinned frame's ID and Data remain valid without any lock.
//  2. Latched ⇒ pinned: a caller may only hold a frame's Latch while
//     holding a pin on it, and must release the Latch before the final
//     Unpin. Together with (1) this means a latched frame is immune to
//     eviction; shard.evict asserts it (panic on a latched victim).
//  3. Latch/mutex order: pool internals never wait on a frame Latch
//     while holding a shard mutex (callers fetch pages — which takes
//     the mutex — while holding latches on other frames, so the
//     reverse nesting would deadlock). FlushAll pins candidates under
//     the mutex and writes them back under the latch outside it.
//  4. Volatile writes: mutating Data without ever passing dirty=true
//     to Unpin is allowed and produces a cache-style change that
//     eviction silently drops and FlushAll never writes.
type Pool struct {
	disk     storage.DiskManager
	pageSize int
	maxCap   int
	nframes  atomic.Int64 // frames allocated across all shards, ≤ maxCap
	ndirty   atomic.Int64 // frames with the dirty bit set (see markDirty)
	noSteal  atomic.Bool  // dirty frames immune to eviction (WAL mode)
	mask     uint64
	shards   []shard
}

// maxShards caps the shard count; beyond this, shard selection noise
// outweighs any contention win.
const maxShards = 64

// minFramesPerShard keeps tiny pools coarse: a pool is only split while
// each shard can expect at least this many frames, so single-digit
// capacities behave exactly like the classic single-mutex pool.
const minFramesPerShard = 8

// defaultShardCount is the largest power of two ≤ min(maxShards,
// 4·GOMAXPROCS, capacity/minFramesPerShard), and at least 1.
func defaultShardCount(capacity int) int {
	limit := 4 * runtime.GOMAXPROCS(0)
	if limit > maxShards {
		limit = maxShards
	}
	if byCap := capacity / minFramesPerShard; byCap < limit {
		limit = byCap
	}
	n := 1
	for n*2 <= limit {
		n *= 2
	}
	return n
}

// NewPool creates a pool holding up to capacity pages, with an
// automatically chosen shard count.
func NewPool(disk storage.DiskManager, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity must be at least 1, got %d", capacity)
	}
	return NewPoolShards(disk, capacity, defaultShardCount(capacity))
}

// NewPoolShards creates a pool with an explicit shard count, which must
// be a power of two. Capacity is shared globally across shards; a shard
// count above the capacity merely leaves some shards borrowing frames
// from siblings. Benchmarks use shards == 1 to reproduce the classic
// single-mutex pool.
func NewPoolShards(disk storage.DiskManager, capacity, shards int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity must be at least 1, got %d", capacity)
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("buffer: shard count must be a power of two, got %d", shards)
	}
	p := &Pool{
		disk:     disk,
		pageSize: disk.PageSize(),
		maxCap:   capacity,
		mask:     uint64(shards - 1),
		shards:   make([]shard, shards),
	}
	perShard := capacity/shards + 1
	for i := range p.shards {
		p.shards[i].table = make(map[storage.PageID]*Frame, perShard)
	}
	return p, nil
}

// shardOf routes a page id to its shard via a Fibonacci hash of the id.
func (p *Pool) shardOf(id storage.PageID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &p.shards[(h>>33)&p.mask]
}

// Capacity returns the maximum number of resident pages.
func (p *Pool) Capacity() int { return p.maxCap }

// NumShards returns the number of shards the pool routes across.
func (p *Pool) NumShards() int { return len(p.shards) }

// Disk returns the underlying disk manager.
func (p *Pool) Disk() storage.DiskManager { return p.disk }

// Stats returns a snapshot aggregated across shards. Shards are read
// without their locks (counters are atomic), so a snapshot taken during
// concurrent traffic is approximate; quiescent snapshots are exact.
func (p *Pool) Stats() Stats {
	var st Stats
	for i := range p.shards {
		s := &p.shards[i]
		st.Hits += s.hits.Value()
		st.Misses += s.misses.Value()
		st.Evictions += s.evictions.Value()
		st.Writebacks += s.writebacks.Value()
	}
	return st
}

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	for i := range p.shards {
		s := &p.shards[i]
		s.hits.Reset()
		s.misses.Reset()
		s.evictions.Reset()
		s.writebacks.Reset()
	}
}

// Fetch pins the page into a frame, reading it from disk on a miss.
// Callers must Unpin exactly once per Fetch.
//
// nblb:acquires-pin
func (p *Pool) Fetch(id storage.PageID) (*Frame, error) {
	if id == storage.InvalidPageID {
		return nil, fmt.Errorf("buffer: fetch of invalid page id")
	}
	s := p.shardOf(id)
	s.mu.Lock()
	if f, ok := s.table[id]; ok {
		f.pins.Add(1)
		f.ref = true
		s.mu.Unlock()
		s.hits.Inc()
		return f, nil
	}
	s.misses.Inc()
	f, err := p.frameFor(s) //nolint:nblb-lockorder // frameFor drops s.mu around the sibling steal; the two shard locks are never held together
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// frameFor may have dropped s.mu to steal from a sibling; another
	// goroutine could have installed the page meanwhile.
	if g, ok := s.table[id]; ok {
		s.releaseFrame(f)
		g.pins.Add(1)
		g.ref = true
		s.mu.Unlock()
		return g, nil
	}
	if err := p.disk.ReadPage(id, f.data); err != nil {
		s.releaseFrame(f)
		s.mu.Unlock()
		return nil, err
	}
	s.install(f, id)
	s.mu.Unlock()
	return f, nil
}

// NewPage allocates a fresh page on disk and pins it in a zeroed frame.
//
// nblb:acquires-pin
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	s := p.shardOf(id)
	s.mu.Lock()
	f, err := p.frameFor(s) //nolint:nblb-lockorder // frameFor drops s.mu around the sibling steal; the two shard locks are never held together
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	s.install(f, id)
	p.markDirty(f) // a new page must eventually reach disk
	s.mu.Unlock()
	return f, nil
}

// markDirty sets the frame's dirty bit, keeping the pool-wide dirty
// count exact: the CAS means each set/clear transition is counted once
// no matter how many concurrent Unpin(dirty) calls race.
func (p *Pool) markDirty(f *Frame) {
	if f.dirty.CompareAndSwap(false, true) {
		p.ndirty.Add(1)
	}
}

// clearDirty claims the frame's dirty bit, reporting whether this
// caller won the claim (and therefore owns the write-back).
func (p *Pool) clearDirty(f *Frame) bool {
	if f.dirty.CompareAndSwap(true, false) {
		p.ndirty.Add(-1)
		return true
	}
	return false
}

// DirtyFrames returns the number of frames with the dirty bit set, in
// O(1). The engine's checkpoint trigger polls it on every batch.
func (p *Pool) DirtyFrames() int64 { return p.ndirty.Load() }

// SetNoSteal toggles no-steal mode: dirty frames become immune to
// eviction (clock victims and EvictAll skip them), so the only path a
// dirty page takes to disk is an explicit FlushAll. A redo-only WAL
// needs exactly this — an uncommitted or unlogged page image must never
// overwrite the checkpointed one, and with no-steal the on-disk state
// between checkpoints is always the last checkpoint's.
func (p *Pool) SetNoSteal(v bool) { p.noSteal.Store(v) }

// frameFor returns a detached frame for s to install into, in order of
// preference: s's free list, pool growth (global capacity permitting),
// a clock victim within s, or a frame stolen from a sibling shard.
// Caller holds s.mu; when stealing, s.mu is dropped and re-acquired, so
// the caller must re-check its table lookup afterwards.
func (p *Pool) frameFor(s *shard) (*Frame, error) {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return f, nil
	}
	for {
		n := p.nframes.Load()
		if n >= int64(p.maxCap) {
			break
		}
		if p.nframes.CompareAndSwap(n, n+1) {
			f := &Frame{data: make([]byte, p.pageSize), slot: len(s.frames)}
			s.frames = append(s.frames, f)
			return f, nil
		}
	}
	f, err := s.clockVictim(p)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return f, nil
	}
	// Every local frame is pinned: borrow a victim from a sibling. The
	// two shard locks are never held together (no ordering, no deadlock).
	s.mu.Unlock()
	f, err = p.steal(s)
	s.mu.Lock()
	if err != nil {
		return nil, err
	}
	f.slot = len(s.frames)
	s.frames = append(s.frames, f)
	return f, nil
}

// steal detaches a frame from some other shard — a parked free frame
// if it has one, else a clock victim — and transfers ownership to the
// caller. Called with no shard locks held.
func (p *Pool) steal(self *shard) (*Frame, error) {
	for i := range p.shards {
		o := &p.shards[i]
		if o == self {
			continue
		}
		o.mu.Lock()
		var f *Frame
		var err error
		if n := len(o.free); n > 0 {
			f = o.free[n-1]
			o.free[n-1] = nil
			o.free = o.free[:n-1]
		} else {
			f, err = o.clockVictim(p)
		}
		if err == nil && f != nil {
			o.removeFrame(f)
		}
		o.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if f != nil {
			return f, nil
		}
	}
	return nil, fmt.Errorf("buffer: all %d frames pinned; cannot evict", p.nframes.Load())
}

// Unpin releases one pin. If dirty is true the page will be written
// back before eviction; if false, any in-memory mutations remain
// volatile (the index-cache write path). Unpin is lock-free.
//
// nblb:releases-pin
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		p.markDirty(f)
	}
	if n := f.pins.Add(-1); n < 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned %v", f.id))
	}
}

// FlushAll writes every dirty resident page to disk. Clean pages
// (including those with volatile cache writes) are not touched.
//
// The dirty bit is claimed with a CAS *before* the write: Unpin sets it
// without the shard lock, so clearing it after the write could erase a
// concurrent Unpin(dirty) and silently lose that mutation's write-back.
// Claiming first means a mutation landing mid-flush re-dirties the
// frame and reaches disk on the next flush or eviction.
//
// Each candidate is pinned under the shard lock, then written under its
// frame latch (shared) with the shard lock released. The pin keeps the
// frame from being evicted or rebound meanwhile; the latch keeps the
// write from racing a concurrent page mutation. Latches must not be
// awaited while holding the shard mutex: B+Tree descents fetch child
// pages (which needs the mutex) while holding parent latches, so that
// nesting would deadlock.
//
// nblb:blocking-io
func (p *Pool) FlushAll() error {
	var pinned []*Frame
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		pinned = pinned[:0]
		for _, f := range s.frames {
			if f.id == storage.InvalidPageID || !f.dirty.Load() {
				continue
			}
			f.pins.Add(1)
			pinned = append(pinned, f)
		}
		s.mu.Unlock()
		for i, f := range pinned {
			f.Latch.RLock()
			var err error
			if p.clearDirty(f) {
				if err = p.disk.WritePage(f.id, f.data); err != nil {
					p.markDirty(f)
				} else {
					s.writebacks.Inc()
				}
			}
			f.Latch.RUnlock()
			p.Unpin(f, false)
			if err != nil {
				for _, g := range pinned[i+1:] {
					p.Unpin(g, false)
				}
				return fmt.Errorf("buffer: flush %v: %w", f.id, err)
			}
		}
	}
	return nil
}

// DirtyPages calls fn with the id and a latched snapshot view of every
// dirty resident page, without clearing dirty bits — the checkpoint's
// double-write file is built from this walk before FlushAll commits the
// same set in place. fn must not retain data past the call. Pin and
// latch discipline match FlushAll: candidates are pinned under the
// shard lock and read under a shared frame latch outside it.
//
// nblb:blocking-io
func (p *Pool) DirtyPages(fn func(id storage.PageID, data []byte) error) error {
	var pinned []*Frame
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		pinned = pinned[:0]
		for _, f := range s.frames {
			if f.id == storage.InvalidPageID || !f.dirty.Load() {
				continue
			}
			f.pins.Add(1)
			pinned = append(pinned, f)
		}
		s.mu.Unlock()
		for i, f := range pinned {
			f.Latch.RLock()
			var err error
			if f.dirty.Load() {
				err = fn(f.id, f.data)
			}
			f.Latch.RUnlock()
			p.Unpin(f, false)
			if err != nil {
				for _, g := range pinned[i+1:] {
					p.Unpin(g, false)
				}
				return err
			}
		}
	}
	return nil
}

// Resident reports whether the page is currently in the pool (used by
// tests and the partition experiment's "does the index fit in RAM"
// accounting).
func (p *Pool) Resident(id storage.PageID) bool {
	s := p.shardOf(id)
	s.mu.Lock()
	_, ok := s.table[id]
	s.mu.Unlock()
	return ok
}

// PinnedFrames returns the number of frames with a nonzero pin count.
// Tests use it to assert that cursors and lookups release every pin
// they take (a quiescent pool must report 0).
func (p *Pool) PinnedFrames() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, f := range s.frames {
			if f.pins.Load() > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// ResidentPages returns the number of pages currently held across all
// shards.
func (p *Pool) ResidentPages() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.table)
		s.mu.Unlock()
	}
	return n
}

// EvictAll force-evicts every unpinned page (dirty ones are written
// back). Tests use it to simulate a cold restart, which must drop all
// volatile index-cache contents.
func (p *Pool) EvictAll() error {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, f := range s.frames {
			if f.id == storage.InvalidPageID || f.pins.Load() > 0 {
				continue
			}
			if p.noSteal.Load() && f.dirty.Load() {
				continue // WAL mode: dirty pages leave only via FlushAll
			}
			if err := s.evict(f, p); err != nil {
				s.mu.Unlock()
				return err
			}
			s.free = append(s.free, f)
		}
		s.mu.Unlock()
	}
	return nil
}
