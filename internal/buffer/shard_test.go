package buffer

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/storage"
)

func TestNewPoolShardsValidation(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	for _, bad := range []int{0, -1, 3, 6, 12} {
		if _, err := NewPoolShards(disk, 16, bad); err == nil {
			t.Errorf("shards=%d should be rejected (not a power of two)", bad)
		}
	}
	for _, good := range []int{1, 2, 4, 64} {
		p, err := NewPoolShards(disk, 16, good)
		if err != nil {
			t.Fatalf("shards=%d: %v", good, err)
		}
		if p.NumShards() != good {
			t.Errorf("NumShards = %d, want %d", p.NumShards(), good)
		}
	}
}

func TestDefaultShardCountTinyPoolsSingleShard(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	for _, cap := range []int{1, 2, 4, 8} {
		p, err := NewPool(disk, cap)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumShards() != 1 {
			t.Errorf("capacity %d: NumShards = %d, want 1 (tiny pools stay coarse)", cap, p.NumShards())
		}
	}
}

// TestCrossShardSteal pins every frame reachable from one shard and
// verifies a fetch routed there borrows a victim from a sibling shard
// instead of failing.
func TestCrossShardSteal(t *testing.T) {
	disk, err := storage.NewMemDisk(256)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPoolShards(disk, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two pages fill global capacity. Keep the first pinned, release the
	// second: it is the only evictable frame in the whole pool.
	f1, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id2 := f2.ID()
	p.Unpin(f2, true)
	// Allocate pages until one routes to a different shard than id2's —
	// its fetch must steal f2's frame across shards.
	for i := 0; i < 32; i++ {
		id, err := disk.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if p.shardOf(id) == p.shardOf(id2) {
			continue
		}
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("cross-shard fetch should steal a frame: %v", err)
		}
		if p.Resident(id2) {
			t.Error("victim page still resident after cross-shard steal")
		}
		if !p.Resident(f1.ID()) {
			t.Error("pinned page was stolen")
		}
		p.Unpin(f, false)
		p.Unpin(f1, false)
		return
	}
	t.Fatal("no page id routed to a different shard in 32 tries")
}

// TestStealHarvestsSiblingFreeFrames covers the case where the pool is
// at capacity and every existing frame is parked on other shards' free
// lists (e.g. after EvictAll): a fetch routed to a frameless shard must
// harvest one of those free frames, not fail with "all frames pinned".
func TestStealHarvestsSiblingFreeFrames(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	p, err := NewPoolShards(disk, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := p.NewPage()
	f2, _ := p.NewPage()
	id1 := f1.ID()
	p.Unpin(f1, true)
	p.Unpin(f2, true)
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	// Both frames now sit on their shards' free lists; capacity is
	// exhausted. Find a page id routed to a shard that owns no frames.
	for i := 0; i < 64; i++ {
		id, err := disk.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		s := p.shardOf(id)
		s.mu.Lock()
		empty := len(s.frames) == 0
		s.mu.Unlock()
		if !empty {
			continue
		}
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("fetch into frameless shard must harvest a sibling's free frame: %v", err)
		}
		p.Unpin(f, false)
		// The harvested frame must still be usable for normal traffic.
		g, err := p.Fetch(id1)
		if err != nil {
			t.Fatalf("refetch of evicted page: %v", err)
		}
		p.Unpin(g, false)
		return
	}
	t.Skip("no page id routed to a frameless shard in 64 tries")
}

// TestShardedPoolContentsSurviveChurn runs concurrent fetch/unpin
// traffic over a multi-shard pool smaller than the working set,
// verifying contents and the global capacity bound.
func TestShardedPoolContentsSurviveChurn(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	p, err := NewPoolShards(disk, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 128
	ids := make([]storage.PageID, pages)
	for i := range ids {
		f, err := p.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		binary.LittleEndian.PutUint64(f.Data(), uint64(i)+1)
		ids[i] = f.ID()
		p.Unpin(f, true)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 3000; n++ {
				i := (g*31 + n*7) % pages
				f, err := p.Fetch(ids[i])
				if err != nil {
					errCh <- err
					return
				}
				f.Latch.RLock()
				v := binary.LittleEndian.Uint64(f.Data())
				f.Latch.RUnlock()
				p.Unpin(f, false)
				if v != uint64(i)+1 {
					errCh <- errPageCorrupt
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := p.ResidentPages(); n > p.Capacity() {
		t.Errorf("ResidentPages = %d exceeds capacity %d", n, p.Capacity())
	}
	if st := p.Stats(); st.Evictions == 0 {
		t.Error("16 frames over 128 pages should have evicted")
	}
}

// TestShardedEvictAllDropsVolatileWrites is the volatile-cache contract
// test run against a multi-shard pool: EvictAll must reach every shard.
func TestShardedEvictAllDropsVolatileWrites(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	p, err := NewPoolShards(disk, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 16
	ids := make([]storage.PageID, pages)
	for i := range ids {
		f, _ := p.NewPage()
		copy(f.Data(), "base-data!")
		ids[i] = f.ID()
		p.Unpin(f, true)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		f, _ := p.Fetch(id)
		copy(f.Data(), "cacheWRITE")
		p.Unpin(f, false) // volatile
	}
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if n := p.ResidentPages(); n != 0 {
		t.Fatalf("ResidentPages = %d after EvictAll, want 0", n)
	}
	for _, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		got := string(f.Data()[:10])
		p.Unpin(f, false)
		if got != "base-data!" {
			t.Fatalf("volatile write survived eviction: %q", got)
		}
	}
}
