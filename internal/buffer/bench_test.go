package buffer

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// benchPool builds a pool with an explicit shard count over nPages
// pre-written pages, returning the page ids.
func benchPool(b *testing.B, capacity, shards, nPages int) (*Pool, []storage.PageID) {
	b.Helper()
	disk, err := storage.NewMemDisk(4096)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPoolShards(disk, capacity, shards)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]storage.PageID, nPages)
	for i := range ids {
		f, err := p.NewPage()
		if err != nil {
			b.Fatal(err)
		}
		binary.LittleEndian.PutUint64(f.Data(), uint64(i))
		ids[i] = f.ID()
		p.Unpin(f, true)
	}
	return p, ids
}

// BenchmarkPoolFetchHitParallel measures the all-hits path: working set
// fits, every Fetch is a table hit. shards=1 reproduces the old
// single-mutex pool for comparison.
func BenchmarkPoolFetchHitParallel(b *testing.B) {
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, ids := benchPool(b, 1024, shards, 512)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 0x9E3779B9
				for pb.Next() {
					i++
					f, err := p.Fetch(ids[i%uint64(len(ids))])
					if err != nil {
						b.Error(err)
						return
					}
					p.Unpin(f, false)
				}
			})
		})
	}
}

// BenchmarkPoolFetchMissParallel forces constant eviction: the working
// set is 8× the pool, so most fetches are misses that read from the
// (in-memory) disk and evict a victim.
func BenchmarkPoolFetchMissParallel(b *testing.B) {
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, ids := benchPool(b, 64, shards, 512)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 0x9E3779B9
				for pb.Next() {
					i = i*1103515245 + 12345
					f, err := p.Fetch(ids[i%uint64(len(ids))])
					if err != nil {
						b.Error(err)
						return
					}
					p.Unpin(f, false)
				}
			})
		})
	}
}

// BenchmarkPoolMixedParallel interleaves reads with dirty writes (1 in
// 8), the pattern of lookup traffic with index maintenance riding
// along.
func BenchmarkPoolMixedParallel(b *testing.B) {
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, ids := benchPool(b, 256, shards, 512)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 0x9E3779B9
				for pb.Next() {
					i = i*1103515245 + 12345
					f, err := p.Fetch(ids[i%uint64(len(ids))])
					if err != nil {
						b.Error(err)
						return
					}
					dirty := i%8 == 0
					if dirty {
						f.Latch.Lock()
						binary.LittleEndian.PutUint64(f.Data(), i)
						f.Latch.Unlock()
					}
					p.Unpin(f, dirty)
				}
			})
		})
	}
}
