package buffer

import (
	"testing"

	"repro/internal/storage"
)

func newTestPool(t *testing.T, capacity int) (*Pool, *storage.MemDisk) {
	t.Helper()
	disk, err := storage.NewMemDisk(256)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	p, err := NewPool(disk, capacity)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p, disk
}

func TestPoolFetchHitMiss(t *testing.T) {
	p, _ := newTestPool(t, 4)
	f, err := p.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	id := f.ID()
	p.Unpin(f, true)

	f2, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	p.Unpin(f2, false)
	st := p.Stats()
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1", st.Hits)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	p, disk := newTestPool(t, 2)
	f, _ := p.NewPage()
	id := f.ID()
	copy(f.Data(), "dirty-data")
	p.Unpin(f, true)

	// Force eviction by cycling more pages than capacity.
	for i := 0; i < 4; i++ {
		g, err := p.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		p.Unpin(g, true)
	}
	if p.Resident(id) {
		t.Fatal("page should have been evicted")
	}
	buf := make([]byte, 256)
	if err := disk.ReadPage(id, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if string(buf[:10]) != "dirty-data" {
		t.Errorf("dirty page not written back: %q", buf[:10])
	}
}

// TestPoolVolatileWritesDropped verifies the property the index cache
// depends on: mutations without a dirty mark disappear at eviction.
func TestPoolVolatileWritesDropped(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f, _ := p.NewPage()
	id := f.ID()
	copy(f.Data(), "base-data!")
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	// Volatile (cache-style) mutation: no dirty flag.
	f2, _ := p.Fetch(id)
	copy(f2.Data(), "cacheWRITE")
	p.Unpin(f2, false)

	if err := p.EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	st := p.Stats()
	f3, _ := p.Fetch(id)
	got := string(f3.Data()[:10])
	p.Unpin(f3, false)
	if got != "base-data!" {
		t.Errorf("volatile write survived eviction: %q", got)
	}
	if st.Writebacks != 1 {
		t.Errorf("writebacks = %d; volatile writes must not add I/O", st.Writebacks)
	}
}

func TestPoolPinnedPagesNotEvicted(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f1, _ := p.NewPage() // stays pinned
	f2, _ := p.NewPage()
	p.Unpin(f2, true)
	// A third page must evict f2, not the pinned f1.
	f3, err := p.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	if !p.Resident(f1.ID()) {
		t.Error("pinned page was evicted")
	}
	p.Unpin(f1, true)
	p.Unpin(f3, true)
}

func TestPoolAllPinnedFails(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f1, _ := p.NewPage()
	f2, _ := p.NewPage()
	if _, err := p.NewPage(); err == nil {
		t.Error("NewPage with all frames pinned should fail")
	}
	p.Unpin(f1, false)
	p.Unpin(f2, false)
}

func TestPoolUnpinUnderflowPanics(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f, _ := p.NewPage()
	p.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin should panic")
		}
	}()
	p.Unpin(f, false)
}

func TestPoolHitRate(t *testing.T) {
	p, _ := newTestPool(t, 8)
	f, _ := p.NewPage()
	id := f.ID()
	p.Unpin(f, true)
	for i := 0; i < 9; i++ {
		g, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		p.Unpin(g, false)
	}
	if hr := p.Stats().HitRate(); hr < 0.89 || hr > 1.0 {
		t.Errorf("hit rate %f, want ~0.9+", hr)
	}
	p.ResetStats()
	if p.Stats().Hits != 0 {
		t.Error("ResetStats did not zero")
	}
}

func TestPoolCapacityValidation(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	if _, err := NewPool(disk, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}
