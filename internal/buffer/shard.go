package buffer

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// shard owns a disjoint slice of the pool: its own page table, frame
// list, clock hand, and free list, all guarded by one mutex. Stats are
// atomic (metrics.Counter) so aggregation never takes shard locks.
type shard struct {
	mu     sync.Mutex                // nblb:lock buffer-shard
	table  map[storage.PageID]*Frame // resident pages
	frames []*Frame                  // every frame this shard owns (clock order)
	free   []*Frame                  // detached frames ready for reuse
	hand   int                       // clock hand into frames

	hits       metrics.Counter
	misses     metrics.Counter
	evictions  metrics.Counter
	writebacks metrics.Counter
}

// install binds a detached frame to a page id and pins it. Caller holds
// s.mu and has filled f.data.
func (s *shard) install(f *Frame, id storage.PageID) {
	f.id = id
	f.pins.Store(1)
	f.ref = true
	f.dirty.Store(false)
	s.table[id] = f
}

// releaseFrame detaches a frame (failed install or duplicate race) and
// parks it on the free list. Caller holds s.mu.
func (s *shard) releaseFrame(f *Frame) {
	f.id = storage.InvalidPageID
	f.pins.Store(0)
	f.dirty.Store(false)
	f.ref = false
	s.free = append(s.free, f)
}

// clockVictim sweeps s's frames with the clock algorithm: a frame with
// its reference bit set gets a second chance, pinned and already-
// detached frames are skipped. Returns a detached frame ready for
// reuse, or nil when every frame is pinned. Caller holds s.mu.
func (s *shard) clockVictim(p *Pool) (*Frame, error) {
	n := len(s.frames)
	if n == 0 {
		return nil, nil
	}
	noSteal := p.noSteal.Load()
	for pass := 0; pass < 2*n; pass++ {
		f := s.frames[s.hand]
		s.hand++
		if s.hand == n {
			s.hand = 0
		}
		if f.id == storage.InvalidPageID || f.pins.Load() > 0 {
			continue
		}
		if noSteal && f.dirty.Load() {
			// WAL mode: a dirty page may hold unlogged-to-disk state;
			// writing it back here would break the invariant that the
			// on-disk image is always the last checkpoint's. Treat it
			// like a pinned frame until the next checkpoint cleans it.
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if err := s.evict(f, p); err != nil {
			return nil, err
		}
		return f, nil
	}
	return nil, nil
}

// evict detaches the (unpinned) frame's page, writing it back only if
// dirty. Clean frames are dropped without I/O — this is the moment
// volatile index-cache contents disappear. Caller holds s.mu.
//
// The latch-crabbing B+Tree relies on the invariant that a latched
// frame is never evicted. The pool guarantees it transitively: every
// latch holder holds a pin (callers latch only frames they fetched and
// unlatch before unpinning), eviction candidates must have a zero pin
// count, and pins cannot be acquired mid-eviction because Fetch and
// evict serialize on s.mu. The TryLock below asserts the invariant — on
// an unpinned frame it can only fail if some caller latched without
// pinning, which would corrupt whatever that latch was protecting.
func (s *shard) evict(f *Frame, p *Pool) error {
	if !f.Latch.TryLock() {
		panic(fmt.Sprintf("buffer: evicting latched frame %v (latch held without a pin)", f.id))
	}
	defer f.Latch.Unlock()
	if f.dirty.Load() {
		if err := p.disk.WritePage(f.id, f.data); err != nil {
			return fmt.Errorf("buffer: write back %v: %w", f.id, err)
		}
		s.writebacks.Inc()
		p.clearDirty(f)
	}
	delete(s.table, f.id)
	s.evictions.Inc()
	f.id = storage.InvalidPageID
	f.ref = false
	return nil
}

// removeFrame drops a detached frame from s's ownership (it is being
// stolen by another shard). Caller holds s.mu; f must not be on the
// free list.
func (s *shard) removeFrame(f *Frame) {
	last := len(s.frames) - 1
	moved := s.frames[last]
	s.frames[f.slot] = moved
	moved.slot = f.slot
	s.frames[last] = nil
	s.frames = s.frames[:last]
	if last == 0 {
		s.hand = 0
	} else if s.hand >= last {
		s.hand = 0
	}
}
