package buffer

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/storage"
)

// TestPoolConcurrentFetchUnpin hammers a small pool from many
// goroutines fetching a shared set of pages, forcing constant eviction,
// and verifies every page's content survives the churn.
func TestPoolConcurrentFetchUnpin(t *testing.T) {
	disk, err := storage.NewMemDisk(256)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(disk, 8)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 64
	ids := make([]storage.PageID, pages)
	for i := range ids {
		f, err := p.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		binary.LittleEndian.PutUint64(f.Data(), uint64(i)+1)
		ids[i] = f.ID()
		p.Unpin(f, true)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				i := (g*17 + n) % pages
				f, err := p.Fetch(ids[i])
				if err != nil {
					errCh <- err
					return
				}
				f.Latch.RLock()
				v := binary.LittleEndian.Uint64(f.Data())
				f.Latch.RUnlock()
				p.Unpin(f, false)
				if v != uint64(i)+1 {
					errCh <- errPageCorrupt
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions == 0 {
		t.Error("pool of 8 frames over 64 pages should have evicted")
	}
}

type bufTestErr string

func (e bufTestErr) Error() string { return string(e) }

const errPageCorrupt = bufTestErr("page content corrupted under concurrency")

// TestPoolConcurrentWriters has goroutines each owning disjoint pages,
// mutating them under the frame latch with dirty unpins; all mutations
// must persist across eviction churn.
func TestPoolConcurrentWriters(t *testing.T) {
	disk, _ := storage.NewMemDisk(256)
	p, _ := NewPool(disk, 4)
	const writers = 6
	ids := make([]storage.PageID, writers)
	for i := range ids {
		f, err := p.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		ids[i] = f.ID()
		p.Unpin(f, true)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 1; n <= 500; n++ {
				f, err := p.Fetch(ids[w])
				if err != nil {
					errCh <- err
					return
				}
				f.Latch.Lock()
				binary.LittleEndian.PutUint64(f.Data(), uint64(n))
				f.Latch.Unlock()
				p.Unpin(f, true)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	for w := 0; w < writers; w++ {
		buf := make([]byte, 256)
		if err := disk.ReadPage(ids[w], buf); err != nil {
			t.Fatalf("ReadPage: %v", err)
		}
		if binary.LittleEndian.Uint64(buf) != 500 {
			t.Errorf("writer %d's final value lost: %d", w, binary.LittleEndian.Uint64(buf))
		}
	}
}
