package btree

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// RunOp selects what a RunEntry does to its key.
type RunOp uint8

const (
	// RunUpsert stores the entry's value under its key, replacing any
	// existing value (the same semantics as Tree.Insert).
	RunUpsert RunOp = iota
	// RunDelete removes the key if present (the same semantics as
	// Tree.Delete; deleting an absent key is a no-op, not an error).
	RunDelete
	// RunInsertIfAbsent stores the entry's value only when the key is
	// not already present; an existing entry is left untouched (the
	// same semantics as Tree.InsertIfAbsent). Callers detect the
	// collision via Existed — with the survivor's value intact, which
	// is what unique-index maintenance needs.
	RunInsertIfAbsent
)

// RunEntry is one operation of a sorted run handed to ApplyRun. Key is
// read, never retained; Existed is an output: ApplyRun sets it to
// whether the key was already present when the entry was applied, which
// is how callers detect duplicate-key collisions in a batch without a
// second descent per key.
type RunEntry struct {
	Key     []byte
	Value   uint64
	Op      RunOp
	Existed bool
}

// RunStats reports what one ApplyRun did. Descents versus the number of
// entries is the amortization the run buys: one crabbed descent and one
// exclusive leaf latch cover every consecutive entry that lands on the
// same leaf, instead of one per key.
type RunStats struct {
	Inserted int // upserts that added a new key
	Updated  int // upserts that overwrote an existing key
	Deleted  int // deletes that removed a present key
	Descents int // latched descents paid for the whole run
	Splits   int // entries that fell back to the pessimistic split path
}

// runScratch recycles the leaf-boundary copy ApplyRun keeps across leaf
// runs (the boundary must be copied out of the page: deletes compact
// the cell region under the run's own latch, moving the bytes a
// directly aliased boundary would point at).
var runScratch = sync.Pool{New: func() any { return new([]byte) }}

// ApplyRun applies a batch of upserts and deletes, sorted ascending by
// key, in leaf-grouped runs: one crabbed descent reaches the leaf
// covering the next unapplied entry, and every following entry that
// provably lands on the same leaf is applied under that single
// exclusive leaf latch. An upsert that does not fit falls back to the
// pessimistic split path for that one key (exactly Insert's fallback),
// then the run resumes with a fresh descent. Duplicate keys within one
// run are legal and apply in order (later entries see the earlier
// ones' effects).
//
// Entries must be sorted (bytes.Compare on Key, ties allowed) and
// non-empty keys within the tree's length bound; violations fail the
// whole run before anything is applied. Once application starts, an
// I/O error aborts mid-run with the returned stats counting what
// landed — the caller owns partial-application semantics (core.Table
// documents its batch contract on top of this).
//
// Concurrency matches Insert/Delete: each leaf run holds exactly one
// exclusive leaf latch, acquired at the end of a read-coupled descent,
// and sorted keys mean consecutive runs visit leaves strictly left to
// right — the same latch order every other writer uses.
func (t *Tree) ApplyRun(entries []RunEntry) (RunStats, error) {
	var st RunStats
	if len(entries) == 0 {
		return st, nil
	}
	maxLen := t.maxKeyLen()
	longest := 0
	for i := range entries {
		e := &entries[i]
		if len(e.Key) == 0 {
			return st, fmt.Errorf("btree: empty key at run entry %d", i)
		}
		if len(e.Key) > maxLen {
			return st, fmt.Errorf("btree: run entry %d: key of %d bytes exceeds max %d", i, len(e.Key), maxLen)
		}
		if i > 0 && bytes.Compare(entries[i-1].Key, e.Key) > 0 {
			return st, fmt.Errorf("btree: run entries not sorted at %d", i)
		}
		if len(e.Key) > longest {
			longest = len(e.Key)
		}
	}
	// Publish the run's longest key once, before any descent routes on
	// it, so concurrent pessimistic writers' safe-node checks already
	// account for every key this run can push up.
	t.noteSepLen(longest)

	boundp := runScratch.Get().(*[]byte)
	bound := *boundp
	defer func() {
		*boundp = bound
		runScratch.Put(boundp)
	}()

	i := 0
	for i < len(entries) {
		fr, err := t.leafExclusive(entries[i].Key)
		if err != nil {
			return st, err
		}
		st.Descents++
		n := asNode(fr.Data())
		// Coverage bound for this leaf run: entries ≤ the leaf's current
		// last key certainly belong here; the rightmost leaf covers
		// everything. Keys past the bound may still belong to this leaf
		// (its separator range can extend further right), but proving
		// that needs the parent — re-descending is correct and costs one
		// descent only when the run actually crosses a leaf.
		rightmost := n.rightSibling() == uint64(storage.InvalidPageID)
		bound = bound[:0]
		if k := n.nKeys(); k > 0 {
			bound = append(bound, n.key(k-1)...)
		}
		dirty := false
		split := false
		j := i
		for j < len(entries) {
			e := &entries[j]
			if j > i && !rightmost && (len(bound) == 0 || bytes.Compare(e.Key, bound) > 0) {
				break
			}
			pos, found := n.search(e.Key)
			e.Existed = found
			switch e.Op {
			case RunDelete:
				if found {
					n.deleteAt(pos)
					dirty = true
					st.Deleted++
					t.numKeys.Add(-1)
				}
			default:
				if found {
					if e.Op != RunInsertIfAbsent {
						n.setCellValue(n.dirEntry(pos), e.Value)
						dirty = true
						st.Updated++
					}
				} else if ierr := n.insertAt(pos, e.Key, e.Value); ierr == nil {
					dirty = true
					st.Inserted++
					t.numKeys.Add(1)
					if bytes.Compare(e.Key, bound) > 0 {
						// The entry extended the leaf's key range (only
						// reachable for the run's first entry or on the
						// rightmost leaf); later entries up to it are
						// covered too.
						bound = append(bound[:0], e.Key...)
					}
				} else {
					split = true
				}
			}
			if split {
				break
			}
			j++
		}
		fr.Latch.Unlock()
		t.pool.Unpin(fr, dirty)
		if split {
			// The leaf cannot absorb entries[j]: give up the run's latch
			// and push this one key through the pessimistic split path,
			// exactly like a one-row insert whose optimistic attempt
			// found a full leaf. The run resumes after it.
			t.latchRetries.Add(1)
			st.Splits++
			ifAbsent := entries[j].Op == RunInsertIfAbsent
			ins, perr := t.insertPessimistic(entries[j].Key, entries[j].Value, ifAbsent)
			if perr != nil {
				return st, perr
			}
			entries[j].Existed = !ins
			if ins {
				st.Inserted++
			} else if !ifAbsent {
				st.Updated++
			}
			j++
		}
		i = j
	}
	return st, nil
}
