package btree

import (
	"bytes"
	"fmt"

	"repro/internal/storage"
)

// Stats describes the physical shape of the tree. LeafFreeBytes is the
// headline number for the paper: the total free space across leaf pages
// that the index cache can colonize.
type Stats struct {
	Height        int
	Pages         int
	LeafPages     int
	InternalPages int
	Keys          int64
	// KeyBytes is the total key payload stored in leaves (the paper's
	// "360 MB of key data" for Wikipedia's name_title index).
	KeyBytes int64
	// UsedBytes counts directory + cell bytes across all nodes.
	UsedBytes int64
	// UsableBytes counts page capacity (excluding headers/footers).
	UsableBytes int64
	// LeafFreeBytes is free space across leaves only: the cache budget.
	LeafFreeBytes int64
	// MeanLeafFill is the average per-leaf fill factor.
	MeanLeafFill float64
	// SizeBytes is Pages × page size: the index's total footprint
	// (what must fit in RAM for the Section 3.1 partition argument).
	SizeBytes int64
}

// Stats walks the whole tree, latching one node at a time. Concurrent
// writers may mutate pages between visits, so a snapshot taken during
// traffic is approximate; quiescent snapshots are exact.
func (t *Tree) Stats() (Stats, error) {
	root, height := t.root, t.Height()
	var st Stats
	st.Height = height
	pageSize := t.pool.Disk().PageSize()
	var leafFillSum float64
	err := t.walk(root, func(id storage.PageID, n node) error {
		st.Pages++
		st.UsedBytes += int64(n.usedBytes())
		st.UsableBytes += int64(n.usableBytes())
		if n.isLeaf() {
			st.LeafPages++
			st.Keys += int64(n.nKeys())
			for i := 0; i < n.nKeys(); i++ {
				st.KeyBytes += int64(len(n.key(i)))
			}
			st.LeafFreeBytes += int64(n.freeSpace())
			leafFillSum += n.fill()
		} else {
			st.InternalPages++
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	if st.LeafPages > 0 {
		st.MeanLeafFill = leafFillSum / float64(st.LeafPages)
	}
	st.SizeBytes = int64(st.Pages) * int64(pageSize)
	return st, nil
}

// walk visits every node reachable from id, depth first.
func (t *Tree) walk(id storage.PageID, fn func(id storage.PageID, n node) error) error {
	fr, err := t.pool.Fetch(id)
	if err != nil {
		return err
	}
	fr.Latch.RLock()
	n := asNode(fr.Data())
	if err := fn(id, n); err != nil {
		fr.Latch.RUnlock()
		t.pool.Unpin(fr, false)
		return err
	}
	var children []storage.PageID
	if !n.isLeaf() {
		children = append(children, storage.PageID(n.leftmostChild()))
		for i := 0; i < n.nKeys(); i++ {
			children = append(children, storage.PageID(n.value(i)))
		}
	}
	fr.Latch.RUnlock()
	t.pool.Unpin(fr, false)
	for _, c := range children {
		if err := t.walk(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// CheckIntegrity validates structural invariants and returns the first
// violation found:
//
//   - every page footer magic intact (cache writes stayed in bounds)
//   - keys strictly increasing within every node
//   - directory offsets inside the key-cell region
//   - child separators consistent with parent keys
//   - leaf sibling chain strictly increasing, with every left link
//     mirroring the right link it doubles
//
// Tests call it after hostile interleavings of index inserts, cache
// writes, and concurrent crabbing writers. The check assumes a
// quiescent tree (no concurrent writers while it runs).
func (t *Tree) CheckIntegrity() error {
	root := t.root
	if err := t.checkNode(root, nil, nil); err != nil {
		return err
	}
	return t.checkLeafChain()
}

func (t *Tree) checkNode(id storage.PageID, lower, upper []byte) error {
	fr, err := t.pool.Fetch(id)
	if err != nil {
		return err
	}
	fr.Latch.RLock()
	n := asNode(fr.Data())
	defer func() {
		fr.Latch.RUnlock()
		t.pool.Unpin(fr, false)
	}()
	if !n.footerOK() {
		return fmt.Errorf("btree: %v footer magic destroyed", id)
	}
	if n.dirEnd() < nodeHeaderSize || n.dirEnd() > n.keyStart() || n.keyStart() > len(n.data)-nodeFooterSize {
		return fmt.Errorf("btree: %v region bounds corrupt: dirEnd=%d keyStart=%d", id, n.dirEnd(), n.keyStart())
	}
	if n.dirEnd() != nodeHeaderSize+n.nKeys()*dirEntrySize {
		return fmt.Errorf("btree: %v dirEnd inconsistent with nKeys", id)
	}
	var prev []byte
	for i := 0; i < n.nKeys(); i++ {
		off := n.dirEntry(i)
		if off < n.keyStart() || off+cellSize(len(n.cellKey(off))) > len(n.data)-nodeFooterSize {
			return fmt.Errorf("btree: %v directory entry %d points outside cell region", id, i)
		}
		k := n.key(i)
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			return fmt.Errorf("btree: %v keys out of order at %d", id, i)
		}
		if lower != nil && bytes.Compare(k, lower) < 0 {
			return fmt.Errorf("btree: %v key %d below subtree lower bound", id, i)
		}
		if upper != nil && bytes.Compare(k, upper) >= 0 {
			return fmt.Errorf("btree: %v key %d at/above subtree upper bound", id, i)
		}
		prev = append(prev[:0], k...)
	}
	if n.isLeaf() {
		return nil
	}
	// Recurse into children with refined bounds. Copy keys out before
	// releasing the latch is unnecessary — we hold it for the duration.
	type childSpan struct {
		id           storage.PageID
		lower, upper []byte
	}
	spans := make([]childSpan, 0, n.nKeys()+1)
	var firstUpper []byte
	if n.nKeys() > 0 {
		firstUpper = append([]byte(nil), n.key(0)...)
	}
	spans = append(spans, childSpan{storage.PageID(n.leftmostChild()), copyBytes(lower), firstUpper})
	for i := 0; i < n.nKeys(); i++ {
		lo := append([]byte(nil), n.key(i)...)
		var hi []byte
		if i+1 < n.nKeys() {
			hi = append([]byte(nil), n.key(i+1)...)
		} else {
			hi = copyBytes(upper)
		}
		spans = append(spans, childSpan{storage.PageID(n.value(i)), lo, hi})
	}
	for _, s := range spans {
		if err := t.checkNode(s.id, s.lower, s.upper); err != nil {
			return err
		}
	}
	return nil
}

func copyBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (t *Tree) checkLeafChain() error {
	id, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	var prevLast []byte
	var count int64
	prev := storage.InvalidPageID
	for id != storage.InvalidPageID {
		fr, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		fr.Latch.RLock()
		n := asNode(fr.Data())
		if got := storage.PageID(n.leftSibling()); got != prev {
			fr.Latch.RUnlock()
			t.pool.Unpin(fr, false)
			return fmt.Errorf("btree: leaf %v left link %v, want %v (chain asymmetric)", id, got, prev)
		}
		if n.nKeys() > 0 {
			first := n.key(0)
			if prevLast != nil && bytes.Compare(prevLast, first) >= 0 {
				fr.Latch.RUnlock()
				t.pool.Unpin(fr, false)
				return fmt.Errorf("btree: leaf chain out of order at %v", id)
			}
			prevLast = append(prevLast[:0], n.key(n.nKeys()-1)...)
		}
		count += int64(n.nKeys())
		next := storage.PageID(n.rightSibling())
		fr.Latch.RUnlock()
		t.pool.Unpin(fr, false)
		prev = id
		id = next
	}
	if got := t.numKeys.Load(); count != got {
		return fmt.Errorf("btree: leaf chain holds %d keys, tree believes %d", count, got)
	}
	return nil
}
