package btree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// runOf builds a sorted upsert run over the given ints.
func runOf(keys []int) []RunEntry {
	entries := make([]RunEntry, len(keys))
	for i, k := range keys {
		entries[i] = RunEntry{Key: intKey(k), Value: uint64(k)}
	}
	return entries
}

func TestApplyRunBasic(t *testing.T) {
	tr := newTestTree(t, 512, 2048)
	// Preload odds one at a time; batch in the evens plus overwrites of
	// some odds, then delete a stripe.
	for i := 1; i < 2000; i += 2 {
		if _, err := tr.Insert(intKey(i), uint64(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	var entries []RunEntry
	for i := 0; i < 2000; i++ {
		switch {
		case i%2 == 0:
			entries = append(entries, RunEntry{Key: intKey(i), Value: uint64(i)})
		case i%10 == 1:
			entries = append(entries, RunEntry{Key: intKey(i), Value: uint64(i + 1_000_000)})
		case i%10 == 3:
			entries = append(entries, RunEntry{Key: intKey(i), Op: RunDelete})
		}
	}
	st, err := tr.ApplyRun(entries)
	if err != nil {
		t.Fatalf("ApplyRun: %v", err)
	}
	if st.Inserted != 1000 {
		t.Errorf("Inserted = %d, want 1000", st.Inserted)
	}
	if st.Updated != 200 {
		t.Errorf("Updated = %d, want 200", st.Updated)
	}
	if st.Deleted != 200 {
		t.Errorf("Deleted = %d, want 200", st.Deleted)
	}
	if st.Descents >= len(entries) {
		t.Errorf("Descents = %d for %d entries — no leaf grouping happened", st.Descents, len(entries))
	}
	for _, e := range entries {
		want := e.Op == RunDelete || intVal(e.Key)%2 == 1
		if e.Existed != want {
			t.Errorf("key %d: Existed = %v, want %v", intVal(e.Key), e.Existed, want)
		}
	}
	if got, want := tr.Len(), int64(1000+1000-200); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	for i := 0; i < 2000; i++ {
		v, found, err := tr.Search(intKey(i))
		if err != nil {
			t.Fatalf("Search %d: %v", i, err)
		}
		switch {
		case i%2 == 0:
			if !found || v != uint64(i) {
				t.Fatalf("even key %d: found=%v v=%d", i, found, v)
			}
		case i%10 == 1:
			if !found || v != uint64(i+1_000_000) {
				t.Fatalf("updated key %d: found=%v v=%d", i, found, v)
			}
		case i%10 == 3:
			if found {
				t.Fatalf("deleted key %d still present", i)
			}
		default:
			if !found || v != uint64(i) {
				t.Fatalf("untouched key %d: found=%v v=%d", i, found, v)
			}
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
}

func intVal(key []byte) int {
	v := 0
	for _, b := range key {
		v = v<<8 | int(b)
	}
	return v
}

func TestApplyRunValidation(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	if _, err := tr.ApplyRun([]RunEntry{{Key: intKey(2)}, {Key: intKey(1)}}); err == nil {
		t.Error("unsorted run accepted")
	}
	if _, err := tr.ApplyRun([]RunEntry{{Key: nil}}); err == nil {
		t.Error("empty key accepted")
	}
	long := make([]byte, tr.maxKeyLen()+1)
	long[0] = 1
	if _, err := tr.ApplyRun([]RunEntry{{Key: long}}); err == nil {
		t.Error("oversized key accepted")
	}
	if tr.Len() != 0 {
		t.Errorf("failed runs mutated the tree: Len = %d", tr.Len())
	}
	if st, err := tr.ApplyRun(nil); err != nil || st != (RunStats{}) {
		t.Errorf("empty run: %+v, %v", st, err)
	}
}

// TestApplyRunSplitPropagation is the leaf-run split test: a single run
// dense enough that applying it splits leaves repeatedly mid-run — with
// small pages, up through internal levels and root growth — while the
// rest of the run keeps applying. Every key must land, the sibling
// chain stay symmetric, and the run still amortize descents.
func TestApplyRunSplitPropagation(t *testing.T) {
	tr := newTestTree(t, 512, 4096)
	// Preload a sparse stripe so the run's inserts interleave with
	// existing keys on every leaf.
	for i := 0; i < 20000; i += 20 {
		if _, err := tr.Insert(intKey(i), uint64(i)); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}
	var entries []RunEntry
	for i := 0; i < 20000; i++ {
		if i%20 != 0 {
			entries = append(entries, RunEntry{Key: intKey(i), Value: uint64(i)})
		}
	}
	st, err := tr.ApplyRun(entries)
	if err != nil {
		t.Fatalf("ApplyRun: %v", err)
	}
	if st.Inserted != len(entries) {
		t.Errorf("Inserted = %d, want %d", st.Inserted, len(entries))
	}
	if st.Splits == 0 {
		t.Error("run dense enough to split paid no splits — test is not exercising propagation")
	}
	if st.Descents >= len(entries)/2 {
		t.Errorf("Descents = %d for %d entries — grouping collapsed", st.Descents, len(entries))
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, want ≥3 so splits propagated across levels", tr.Height())
	}
	if tr.Len() != 20000 {
		t.Errorf("Len = %d, want 20000", tr.Len())
	}
	for i := 0; i < 20000; i++ {
		v, found, err := tr.Search(intKey(i))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("Search(%d) = %d,%v,%v", i, v, found, err)
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
	if pinned := tr.Pool().PinnedFrames(); pinned != 0 {
		t.Errorf("%d frames still pinned after the run", pinned)
	}
}

// TestApplyRunConcurrent storms ApplyRun from 8 goroutines — disjoint
// interleaved key stripes, so every run crosses every leaf region —
// against concurrent point readers. Run under -race in CI.
func TestApplyRunConcurrent(t *testing.T) {
	tr := newTestTree(t, 512, 4096)
	const (
		writers = 8
		batches = 30
		perRun  = 100
	)
	var writersWG, readerWG sync.WaitGroup
	errCh := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for b := 0; b < batches; b++ {
				keys := make([]int, perRun)
				for i := range keys {
					keys[i] = (b*perRun+i)*writers + w
				}
				if _, err := tr.ApplyRun(runOf(keys)); err != nil {
					errCh <- fmt.Errorf("writer %d batch %d: %w", w, b, err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := rng.Intn(writers * batches * perRun)
			v, found, err := tr.Search(intKey(k))
			if err != nil {
				errCh <- err
				return
			}
			if found && v != uint64(k) {
				errCh <- fmt.Errorf("key %d read value %d", k, v)
				return
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := int64(writers * batches * perRun)
	if tr.Len() != total {
		t.Errorf("Len = %d, want %d", tr.Len(), total)
	}
	for i := 0; i < int(total); i += 131 {
		v, found, err := tr.Search(intKey(i))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("Search(%d) = %d,%v,%v", i, v, found, err)
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
}
