package btree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentWritersMultiLevelSplits drives enough parallel inserts
// through small pages that split propagation repeatedly climbs several
// levels — including root growth — while other writers are mid-descent.
// Run under -race in CI; afterwards every key must be present, the
// chain symmetric, and no pins leaked.
func TestConcurrentWritersMultiLevelSplits(t *testing.T) {
	tr := newTestTree(t, 512, 2048)
	const (
		writers   = 8
		perWriter = 3000
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleaved key spaces (k ≡ w mod writers): every writer
			// hits every leaf region, maximizing latch contention and
			// concurrent splits of the same parents.
			for i := 0; i < perWriter; i++ {
				k := intKey(i*writers + w)
				ins, err := tr.Insert(k, uint64(i*writers+w))
				if err != nil {
					errCh <- err
					return
				}
				if !ins {
					errCh <- fmt.Errorf("key %d reported duplicate", i*writers+w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	const total = writers * perWriter
	if tr.Len() != total {
		t.Errorf("Len = %d, want %d", tr.Len(), total)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d; want ≥3 so split propagation crossed levels", tr.Height())
	}
	for i := 0; i < total; i += 997 {
		v, found, err := tr.Search(intKey(i))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("Search(%d) = %d,%v,%v", i, v, found, err)
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	if pins := tr.Pool().PinnedFrames(); pins != 0 {
		t.Errorf("%d pinned frames after quiesce, want 0", pins)
	}
	if tr.LatchRetries() == 0 {
		t.Error("expected some optimistic descents to fall back on split-heavy ingest")
	}
}

// TestConcurrentWritersMixedOps runs per-goroutine insert/upsert/delete
// churn over disjoint key spaces, then validates each goroutine's final
// model. Deletes never restructure, so this exercises the interleaving
// of leaf-local writes with neighbors' split propagation.
func TestConcurrentWritersMixedOps(t *testing.T) {
	tr := newTestTree(t, 512, 2048)
	const (
		writers = 6
		space   = 4000
		ops     = 12000
	)
	models := make([]map[int]uint64, writers)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			model := map[int]uint64{}
			models[w] = model
			for op := 0; op < ops; op++ {
				k := w*space + rng.Intn(space)
				switch rng.Intn(3) {
				case 0, 1:
					v := rng.Uint64()
					if _, err := tr.Insert(intKey(k), v); err != nil {
						errCh <- err
						return
					}
					model[k] = v
				case 2:
					found, err := tr.Delete(intKey(k))
					if err != nil {
						errCh <- err
						return
					}
					if _, want := model[k]; found != want {
						errCh <- fmt.Errorf("Delete(%d) found=%v want=%v", k, found, want)
						return
					}
					delete(model, k)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var total int64
	for w, model := range models {
		total += int64(len(model))
		for k, want := range model {
			v, found, err := tr.Search(intKey(k))
			if err != nil || !found || v != want {
				t.Fatalf("writer %d key %d: Search = %d,%v,%v want %d", w, k, v, found, err, want)
			}
		}
	}
	if tr.Len() != total {
		t.Errorf("Len = %d, want %d", tr.Len(), total)
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

// TestCrabbingVsCursorInterleaving runs forward and reverse scans over
// a stable key band while writers concurrently split leaves inside it
// (inserting and deleting gap keys). Every stable key must be served
// exactly once per pass, in order, in both directions — the
// crabbing-vs-cursor regression the version counters exist for.
func TestCrabbingVsCursorInterleaving(t *testing.T) {
	tr := newTestTree(t, 512, 2048)
	const stable = 1000
	for i := 0; i < stable; i++ {
		if _, err := tr.Insert(intKey(i*10), uint64(i*10)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var writerWG, scanWG sync.WaitGroup
	errCh := make(chan error, 8)
	done := make(chan struct{})

	// Writers churn gap keys between the stable ones, forcing splits of
	// exactly the leaves the scans are traversing.
	for w := 0; w < 2; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				select {
				case <-done:
					return
				default:
				}
				base := rng.Intn(stable) * 10
				off := 1 + rng.Intn(9)
				if rng.Intn(2) == 0 {
					if _, err := tr.Insert(intKey(base+off), uint64(base+off)); err != nil {
						errCh <- err
						return
					}
				} else {
					if _, err := tr.Delete(intKey(base + off)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}

	scan := func(reverse bool) error {
		var opts []CursorOption
		if reverse {
			opts = append(opts, Reverse())
		}
		c := tr.NewCursor(nil, nil, opts...)
		defer c.Close()
		next := 0
		if reverse {
			next = stable - 1
		}
		for c.Next() {
			v := c.Value()
			if v%10 != 0 {
				continue // writer-churned gap key; presence is incidental
			}
			want := uint64(next * 10)
			if v != want {
				return fmt.Errorf("reverse=%v: stable key %d served, want %d", reverse, v, want)
			}
			if reverse {
				next--
			} else {
				next++
			}
		}
		if c.Err() != nil {
			return c.Err()
		}
		if (reverse && next != -1) || (!reverse && next != stable) {
			return fmt.Errorf("reverse=%v: scan stopped at stable index %d", reverse, next)
		}
		return nil
	}
	for _, reverse := range []bool{false, true} {
		reverse := reverse
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for round := 0; round < 15; round++ {
				if err := scan(reverse); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	scanWG.Wait()
	close(done)
	writerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

// TestReverseScanFetchSymmetry asserts ROADMAP item #3 is gone: a
// quiescent reverse scan costs exactly one leaf fetch per leaf, the
// same as forward (left-sibling links instead of one descent per leaf).
func TestReverseScanFetchSymmetry(t *testing.T) {
	tr := newTestTree(t, 512, 1024)
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	fwd := tr.NewCursor(nil, nil)
	defer fwd.Close()
	if got := collectCursor(t, fwd); len(got) != n {
		t.Fatalf("forward scanned %d", len(got))
	}
	rev := tr.NewCursor(nil, nil, Reverse())
	defer rev.Close()
	if got := collectCursor(t, rev); len(got) != n {
		t.Fatalf("reverse scanned %d", len(got))
	}
	if fwd.LeafFetches() != int64(st.LeafPages) {
		t.Errorf("forward LeafFetches = %d, want %d", fwd.LeafFetches(), st.LeafPages)
	}
	if rev.LeafFetches() != fwd.LeafFetches() {
		t.Errorf("reverse LeafFetches = %d, want %d (symmetry with forward)",
			rev.LeafFetches(), fwd.LeafFetches())
	}
}

// TestLeftLinksSurviveSplitChurn checks the doubly linked leaf chain
// stays mirror-consistent through randomized split-heavy churn.
func TestLeftLinksSurviveSplitChurn(t *testing.T) {
	tr := newTestTree(t, 512, 2048)
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 30000; op++ {
		k := rng.Intn(20000)
		if rng.Intn(4) == 0 {
			if _, err := tr.Delete(intKey(k)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		} else {
			if _, err := tr.Insert(intKey(k), uint64(k)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
	}
	// CheckIntegrity verifies left links mirror right links.
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

// TestPessimisticInsertStaleSeparatorBound regression-tests the
// safe-node rule against a stale maxSepLen: the tree holds ~100-byte
// keys, but the bound is clamped to 1 before every short-key insert,
// so pessimistic descents judge ancestors "safe" for separators they
// cannot actually absorb. The pre-mutation dry run (pendingSepFits)
// must catch the overrun and escalate instead of splitting past the
// retained latch path — without it, propagation would install a
// non-root node as a new root.
func TestPessimisticInsertStaleSeparatorBound(t *testing.T) {
	tr := newTestTree(t, 512, 4096)
	rng := rand.New(rand.NewSource(5))
	model := map[string]uint64{}
	for i := 0; i < 2000; i++ {
		k := make([]byte, 90+rng.Intn(20))
		rng.Read(k)
		if _, err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatalf("long Insert: %v", err)
		}
		model[string(k)] = uint64(i)
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d; want ≥3 so stale-bound splits propagate levels", tr.Height())
	}
	for i := 0; i < 4000; i++ {
		k := make([]byte, 8)
		rng.Read(k)
		tr.maxSepLen.Store(1) // adversarially stale before each insert
		if _, err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatalf("short Insert %d: %v", i, err)
		}
		model[string(k)] = uint64(i)
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	for k, want := range model {
		v, found, err := tr.Search([]byte(k))
		if err != nil || !found || v != want {
			t.Fatalf("Search(%x) = %d,%v,%v want %d", k, v, found, err, want)
		}
	}
	if tr.Len() != int64(len(model)) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(model))
	}
}
