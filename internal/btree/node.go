// Package btree implements the B+Tree index with the page anatomy of
// the paper's Figure 1:
//
//	offset 0                                              pageSize
//	| header | directory → | ...... free space ...... | ← key cells | footer |
//
// The directory (2-byte sorted cell pointers) grows upward from the
// header; key cells grow downward from the footer; the free space in
// the middle is exactly the region Section 2.1 recycles as the index
// cache. Key inserts overwrite the periphery of that region freely —
// the cache (internal/idxcache) is designed to survive that.
//
// Values are fixed 8-byte payloads: packed RIDs in leaves, child page
// ids in internal nodes. Keys are opaque memcomparable byte strings
// (tuple.EncodeKey), so composite keys need no schema here.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// Node header layout (nodeHeaderSize bytes at offset 0):
//
//	[0:2)   type/flags: nodeLeaf or nodeInternal
//	[2:4)   nKeys
//	[4:6)   dirEnd    first byte past the directory
//	[6:8)   keyStart  first byte of the key-cell region
//	[8:16)  right sibling page id (leaves; 0 = none)
//	[16:24) leftmost child page id (internal nodes)
//	[24:28) CSNp — the page cache sequence number (Section 2.1.2)
//	[28:32) appliedSeq — predicate-log position applied to this page
//	[32:34) cacheEntrySize — slot width the cache last used on this page
//	[34:38) version — bumped on every directory reshuffle (insert,
//	        delete, compaction); cursors use it to detect concurrent
//	        mutation and re-validate their position instead of trusting
//	        a stale directory index
//	[38:40) reserved
//	[40:48) left sibling page id (leaves; 0 = none) — makes reverse
//	        scans symmetric with forward ones (one sibling fetch per
//	        leaf instead of one descent per leaf)
//
// Footer: 4-byte magic at the very end of the page. Cache writes and key
// inserts must never touch it; integrity checks verify that.
const (
	nodeHeaderSize = 48
	nodeFooterSize = 4

	offType        = 0
	offNKeys       = 2
	offDirEnd      = 4
	offKeyStart    = 6
	offRightSib    = 8
	offLeftChild   = 16
	offCSN         = 24
	offAppliedSeq  = 28
	offCacheEntry  = 32
	offVersion     = 34
	offLeftSib     = 40
	dirEntrySize   = 2
	cellHeaderSize = 2 // uint16 key length
	valueSize      = 8
)

// footerMagic marks a well-formed index page end. It doubles as the
// page-format version: PR 3 grew the header 40→48 bytes (left-sibling
// link), so the magic was bumped from 0xB17C0DE5 — pages persisted by
// the old layout fail footerOK loudly instead of being misread.
const footerMagic uint32 = 0xB17C0DE6

// Node type tags.
const (
	nodeLeaf     uint16 = 1
	nodeInternal uint16 = 2
)

// ErrNodeFull signals the caller must split before inserting.
var errNodeFull = fmt.Errorf("btree: node full")

// node wraps a page buffer with the index-node layout. It holds no
// state of its own; everything lives in the page bytes.
type node struct {
	data []byte
}

func asNode(data []byte) node { return node{data: data} }

// initNode formats the buffer as an empty node of the given type.
func initNode(data []byte, typ uint16) node {
	for i := range data {
		data[i] = 0
	}
	n := node{data: data}
	n.setType(typ)
	n.setNKeys(0)
	n.setDirEnd(nodeHeaderSize)
	n.setKeyStart(len(data) - nodeFooterSize)
	binary.LittleEndian.PutUint32(data[len(data)-nodeFooterSize:], footerMagic)
	return n
}

func (n node) typ() uint16      { return binary.LittleEndian.Uint16(n.data[offType:]) }
func (n node) setType(t uint16) { binary.LittleEndian.PutUint16(n.data[offType:], t) }
func (n node) isLeaf() bool     { return n.typ() == nodeLeaf }

func (n node) nKeys() int     { return int(binary.LittleEndian.Uint16(n.data[offNKeys:])) }
func (n node) setNKeys(k int) { binary.LittleEndian.PutUint16(n.data[offNKeys:], uint16(k)) }

func (n node) dirEnd() int     { return int(binary.LittleEndian.Uint16(n.data[offDirEnd:])) }
func (n node) setDirEnd(v int) { binary.LittleEndian.PutUint16(n.data[offDirEnd:], uint16(v)) }

func (n node) keyStart() int     { return int(binary.LittleEndian.Uint16(n.data[offKeyStart:])) }
func (n node) setKeyStart(v int) { binary.LittleEndian.PutUint16(n.data[offKeyStart:], uint16(v)) }

func (n node) rightSibling() uint64 { return binary.LittleEndian.Uint64(n.data[offRightSib:]) }
func (n node) setRightSibling(v uint64) {
	binary.LittleEndian.PutUint64(n.data[offRightSib:], v)
}

func (n node) leftSibling() uint64 { return binary.LittleEndian.Uint64(n.data[offLeftSib:]) }
func (n node) setLeftSibling(v uint64) {
	binary.LittleEndian.PutUint64(n.data[offLeftSib:], v)
}

func (n node) leftmostChild() uint64 { return binary.LittleEndian.Uint64(n.data[offLeftChild:]) }
func (n node) setLeftmostChild(v uint64) {
	binary.LittleEndian.PutUint64(n.data[offLeftChild:], v)
}

// CSN returns the page cache sequence number CSNp.
func (n node) CSN() uint32     { return binary.LittleEndian.Uint32(n.data[offCSN:]) }
func (n node) setCSN(v uint32) { binary.LittleEndian.PutUint32(n.data[offCSN:], v) }

func (n node) appliedSeq() uint32 { return binary.LittleEndian.Uint32(n.data[offAppliedSeq:]) }
func (n node) setAppliedSeq(v uint32) {
	binary.LittleEndian.PutUint32(n.data[offAppliedSeq:], v)
}

func (n node) cacheEntrySize() int {
	return int(binary.LittleEndian.Uint16(n.data[offCacheEntry:]))
}
func (n node) setCacheEntrySize(v int) {
	binary.LittleEndian.PutUint16(n.data[offCacheEntry:], uint16(v))
}

// version counts directory reshuffles. A cursor holding a cached
// directory position may keep using it only while the version is
// unchanged; any mutation that moves entries bumps it. Wrap-around is
// harmless: equality is all that is checked, and a cursor cannot miss
// 2³² bumps between two latch acquisitions of the same leaf.
func (n node) version() uint32 { return binary.LittleEndian.Uint32(n.data[offVersion:]) }
func (n node) bumpVersion() {
	binary.LittleEndian.PutUint32(n.data[offVersion:], n.version()+1)
}

// setVersion overwrites the version counter — used by the in-place
// root grow to carry the counter forward (bumped) across the re-init,
// so a cursor pinned at the old root-as-leaf always sees a change.
func (n node) setVersion(v uint32) {
	binary.LittleEndian.PutUint32(n.data[offVersion:], v)
}

// footerOK verifies the footer magic survived.
func (n node) footerOK() bool {
	return binary.LittleEndian.Uint32(n.data[len(n.data)-nodeFooterSize:]) == footerMagic
}

// freeSpace returns the bytes between the directory and the key cells —
// the cache region's current extent.
func (n node) freeSpace() int { return n.keyStart() - n.dirEnd() }

// freeRegion returns the [lo, hi) bounds of the free space.
func (n node) freeRegion() (lo, hi int) { return n.dirEnd(), n.keyStart() }

// dirEntry returns the cell offset stored in directory position i.
func (n node) dirEntry(i int) int {
	return int(binary.LittleEndian.Uint16(n.data[nodeHeaderSize+i*dirEntrySize:]))
}

func (n node) setDirEntry(i, off int) {
	binary.LittleEndian.PutUint16(n.data[nodeHeaderSize+i*dirEntrySize:], uint16(off))
}

// cellKey returns the key bytes of the cell at off (aliases the page).
func (n node) cellKey(off int) []byte {
	klen := int(binary.LittleEndian.Uint16(n.data[off:]))
	return n.data[off+cellHeaderSize : off+cellHeaderSize+klen]
}

// cellValue returns the 8-byte value of the cell at off.
func (n node) cellValue(off int) uint64 {
	klen := int(binary.LittleEndian.Uint16(n.data[off:]))
	return binary.LittleEndian.Uint64(n.data[off+cellHeaderSize+klen:])
}

func (n node) setCellValue(off int, v uint64) {
	klen := int(binary.LittleEndian.Uint16(n.data[off:]))
	binary.LittleEndian.PutUint64(n.data[off+cellHeaderSize+klen:], v)
}

// key returns the key at directory position i.
func (n node) key(i int) []byte { return n.cellKey(n.dirEntry(i)) }

// value returns the value at directory position i.
func (n node) value(i int) uint64 { return n.cellValue(n.dirEntry(i)) }

// cellSize returns the bytes a cell with the given key length occupies.
func cellSize(keyLen int) int { return cellHeaderSize + keyLen + valueSize }

// search finds the directory position of key, or the position where it
// would be inserted, and whether it was found.
func (n node) search(key []byte) (int, bool) {
	lo, hi := 0, n.nKeys()
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.key(mid), key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childFor returns the child page id covering key in an internal node:
// the leftmost child if key < key(0), else the value of the largest
// key ≤ key.
func (n node) childFor(key []byte) uint64 {
	pos, found := n.search(key)
	if found {
		return n.value(pos)
	}
	if pos == 0 {
		return n.leftmostChild()
	}
	return n.value(pos - 1)
}

// canInsert reports whether a cell with the given key length fits.
func (n node) canInsert(keyLen int) bool {
	return n.freeSpace() >= cellSize(keyLen)+dirEntrySize
}

// insertAt places (key, value) at directory position pos, shifting the
// directory and carving the cell out of the free region's key side.
// The overwritten free-space bytes are exactly "the periphery of the
// cache space" the paper lets index inserts clobber.
func (n node) insertAt(pos int, key []byte, value uint64) error {
	if !n.canInsert(len(key)) {
		return errNodeFull
	}
	// Carve the cell below keyStart.
	newStart := n.keyStart() - cellSize(len(key))
	binary.LittleEndian.PutUint16(n.data[newStart:], uint16(len(key)))
	copy(n.data[newStart+cellHeaderSize:], key)
	binary.LittleEndian.PutUint64(n.data[newStart+cellHeaderSize+len(key):], value)
	n.setKeyStart(newStart)
	// Shift directory entries right of pos.
	k := n.nKeys()
	copy(n.data[nodeHeaderSize+(pos+1)*dirEntrySize:nodeHeaderSize+(k+1)*dirEntrySize],
		n.data[nodeHeaderSize+pos*dirEntrySize:nodeHeaderSize+k*dirEntrySize])
	n.setDirEntry(pos, newStart)
	n.setNKeys(k + 1)
	n.setDirEnd(nodeHeaderSize + (k+1)*dirEntrySize)
	n.bumpVersion()
	return nil
}

// deleteAt removes the entry at directory position pos, compacts the
// key-cell region, and zeroes the bytes returned to the free region so
// stale key bytes can never masquerade as cache entries.
func (n node) deleteAt(pos int) {
	k := n.nKeys()
	// Remove from directory.
	copy(n.data[nodeHeaderSize+pos*dirEntrySize:nodeHeaderSize+(k-1)*dirEntrySize],
		n.data[nodeHeaderSize+(pos+1)*dirEntrySize:nodeHeaderSize+k*dirEntrySize])
	n.setNKeys(k - 1)
	newDirEnd := nodeHeaderSize + (k-1)*dirEntrySize
	// Zero the vacated directory slot.
	for i := newDirEnd; i < n.dirEnd(); i++ {
		n.data[i] = 0
	}
	n.setDirEnd(newDirEnd)
	n.compactCells()
	n.bumpVersion()
}

// compactScratch recycles the staging buffer compactCells copies live
// cells through. A page's cells fit in one page-sized buffer, so after
// warmup every split and delete compacts without allocating — the split
// path stays cheap enough that crabbing's pessimistic holds are short.
var compactScratch = sync.Pool{New: func() any { return new([]byte) }}

// compactCells rewrites the key-cell region without holes, preserving
// directory order, and zeroes everything between dirEnd and the new
// keyStart (the enlarged cache region starts clean). Cells are staged
// through a pooled scratch buffer at their final relative positions,
// then copied back in one pass.
func (n node) compactCells() {
	k := n.nKeys()
	pf := len(n.data) - nodeFooterSize
	total := 0
	for i := 0; i < k; i++ {
		total += cellSize(len(n.key(i)))
	}
	bufp := compactScratch.Get().(*[]byte)
	buf := *bufp
	if cap(buf) < total {
		buf = make([]byte, total)
	} else {
		buf = buf[:total]
	}
	newStart := pf - total
	top := total
	for i := k - 1; i >= 0; i-- {
		off := n.dirEntry(i)
		klen := int(binary.LittleEndian.Uint16(n.data[off:]))
		size := cellSize(klen)
		top -= size
		copy(buf[top:], n.data[off:off+size])
		n.setDirEntry(i, newStart+top)
	}
	copy(n.data[newStart:pf], buf)
	*bufp = buf
	compactScratch.Put(bufp)
	for i := n.dirEnd(); i < newStart; i++ {
		n.data[i] = 0
	}
	n.setKeyStart(newStart)
	n.bumpVersion()
}

// usableBytes returns the page capacity available for directory+cells.
func (n node) usableBytes() int {
	return len(n.data) - nodeHeaderSize - nodeFooterSize
}

// usedBytes returns directory plus live cell bytes.
func (n node) usedBytes() int {
	used := n.nKeys() * dirEntrySize
	for i := 0; i < n.nKeys(); i++ {
		used += cellSize(len(n.key(i)))
	}
	return used
}

// fill returns the node's fill factor: used / usable.
func (n node) fill() float64 {
	return float64(n.usedBytes()) / float64(n.usableBytes())
}
