package btree

import (
	"bytes"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Cursor is a pinned-frame range iterator over the tree. It holds at
// most one leaf frame pinned between Next calls and follows sibling
// links instead of re-descending, so a full scan costs exactly one leaf
// fetch per leaf (the descent counts as the first leaf's fetch). The
// frame latch is only held inside Next, and the tree lock is only held
// during descents, so writers make progress while a scan is open.
//
// Concurrent mutation is handled by re-validation rather than blocking:
// every leaf carries a version counter bumped on directory reshuffles,
// and Next re-derives its position from the last served key whenever the
// version moved or a sibling boundary was crossed. A leaf split between
// two Next calls therefore never skips keys — the upper half is reached
// through the (unchanged) sibling chain, and already-served keys that a
// split copied rightward are skipped by the bound check.
//
// Key and value are copied into cursor-owned scratch that is reused
// across calls, so iteration allocates nothing per row once the scratch
// has grown to the largest key. Key() is valid until the next Next,
// Close, or tree mutation by the same goroutine.
//
// Close releases the pin but keeps the resume point: a closed cursor's
// Next re-seeks from the last served key and continues, which lets
// callers drop the pin across long pauses.
//
// nblb:carries-pin
type Cursor struct {
	t       *Tree
	start   []byte // inclusive lower bound, nil = first key; copied
	end     []byte // exclusive upper bound, nil = past the last key; copied
	reverse bool
	onEntry func(l *Leaf, pos int)

	fr      *buffer.Frame // current leaf, pinned across Next calls
	leaf    Leaf          // reusable view handed to onEntry
	pos     int           // next directory position to serve (forward only)
	ver     uint32        // leaf version pos was derived against
	stale   bool          // pos must be re-derived before use
	key     []byte        // scratch: last served key, the resume point
	val     uint64
	started bool // at least one key served; key is valid
	done    bool
	err     error
	fetches int64
}

// CursorOption configures NewCursor.
type CursorOption func(*Cursor)

// Reverse makes the cursor iterate from the last key in range down to
// the first. Leaves chain in both directions, so reverse iteration is
// symmetric with forward: one sibling fetch per leaf, re-descending
// only when a concurrent split invalidates the pinned leaf.
func Reverse() CursorOption {
	return func(c *Cursor) { c.reverse = true }
}

// WithEntryVisitor registers fn to run for every served entry while the
// leaf is still latched (shared) and pinned — the hook the index cache
// uses to probe leaf free space during range scans without a second
// latch acquisition. fn must not retain l, must not mutate the page, and
// sees Exclusive() == false.
func WithEntryVisitor(fn func(l *Leaf, pos int)) CursorOption {
	return func(c *Cursor) { c.onEntry = fn }
}

// NewCursor opens a cursor over start ≤ key < end (nil bounds are
// unbounded). The first Next performs the descent; constructing a
// cursor does no I/O.
func (t *Tree) NewCursor(start, end []byte, opts ...CursorOption) *Cursor {
	c := &Cursor{t: t}
	if start != nil {
		c.start = append([]byte(nil), start...)
	}
	if end != nil {
		c.end = append([]byte(nil), end...)
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Key returns the current key. It aliases cursor scratch: valid until
// the next Next or Close; copy to retain.
func (c *Cursor) Key() []byte { return c.key }

// Value returns the current value (a packed RID in index leaves).
func (c *Cursor) Value() uint64 { return c.val }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// LeafFetches returns how many leaf pages the cursor has fetched from
// the buffer pool — the "one fetch per leaf" invariant tests assert.
func (c *Cursor) LeafFetches() int64 { return c.fetches }

// Close releases the cursor's leaf pin. It is safe to call multiple
// times and safe to call mid-scan; the cursor stays resumable — a
// subsequent Next re-descends from the last served key.
func (c *Cursor) Close() {
	if c.fr != nil {
		c.t.pool.Unpin(c.fr, false)
		c.fr = nil
	}
}

// finish releases the pin and marks iteration complete.
func (c *Cursor) finish() {
	c.Close()
	c.done = true
}

// Next advances to the next key in range, returning false at the end of
// the range or on error (check Err).
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	if c.reverse {
		return c.nextReverse()
	}
	return c.nextForward()
}

// fail records err and terminates iteration.
func (c *Cursor) fail(err error) bool {
	c.err = err
	c.finish()
	return false
}

// --- forward ------------------------------------------------------------

func (c *Cursor) nextForward() bool {
	if c.fr == nil && !c.seekForward() {
		return false
	}
	for {
		c.fr.Latch.RLock()
		n := asNode(c.fr.Data())
		if !n.isLeaf() {
			// The pinned page stopped being a leaf — only the root does
			// that (in-place root growth). Its keys moved to a fresh left
			// page; re-descend from the resume point to find them.
			c.fr.Latch.RUnlock()
			c.t.pool.Unpin(c.fr, false)
			c.fr = nil
			if !c.seekForward() {
				return false
			}
			continue
		}
		if v := n.version(); c.stale || v != c.ver {
			c.pos = c.reposForward(n)
			c.ver = v
			c.stale = false
		}
		if c.pos < n.nKeys() {
			k := n.key(c.pos)
			if c.end != nil && bytes.Compare(k, c.end) >= 0 {
				c.fr.Latch.RUnlock()
				c.finish()
				return false
			}
			c.serveLocked(n, c.pos)
			c.pos++
			c.fr.Latch.RUnlock()
			return true
		}
		next := storage.PageID(n.rightSibling())
		c.fr.Latch.RUnlock()
		c.t.pool.Unpin(c.fr, false)
		c.fr = nil
		if next == storage.InvalidPageID {
			c.done = true
			return false
		}
		fr, err := c.t.pool.Fetch(next)
		if err != nil {
			return c.fail(err)
		}
		c.fetches++
		c.fr = fr
		// A split may have copied already-served keys into this sibling;
		// re-derive the position from the resume point.
		c.stale = true
	}
}

// serveLocked copies out the entry at pos and runs the entry visitor.
// Caller holds the frame latch (shared).
func (c *Cursor) serveLocked(n node, pos int) {
	c.key = append(c.key[:0], n.key(pos)...)
	c.val = n.value(pos)
	c.started = true
	if c.onEntry != nil {
		c.leaf = Leaf{fr: c.fr, n: n}
		c.onEntry(&c.leaf, pos)
		c.leaf = Leaf{}
	}
}

// seekForward descends to the leaf covering the resume point (or the
// range start) and pins it.
func (c *Cursor) seekForward() bool {
	var (
		fr  *buffer.Frame
		err error
	)
	switch {
	case c.started:
		fr, _, err = c.t.descendFrame(func(n node) storage.PageID {
			return storage.PageID(n.childFor(c.key))
		})
	case c.start != nil:
		fr, _, err = c.t.descendFrame(func(n node) storage.PageID {
			return storage.PageID(n.childFor(c.start))
		})
	default:
		fr, _, err = c.t.leftmostFrame()
	}
	if err != nil {
		return c.fail(err)
	}
	c.fetches++
	c.fr = fr
	c.stale = true
	return true
}

// reposForward derives the first directory position strictly past the
// resume point (or at the range start). Caller holds the frame latch.
func (c *Cursor) reposForward(n node) int {
	switch {
	case c.started:
		pos, found := n.search(c.key)
		if found {
			pos++
		}
		return pos
	case c.start != nil:
		pos, _ := n.search(c.start)
		return pos
	default:
		return 0
	}
}

// --- reverse ------------------------------------------------------------

// bound returns the current exclusive upper bound for reverse iteration:
// the last served key once started, else the range end (nil = +∞).
func (c *Cursor) bound() []byte {
	if c.started {
		return c.key
	}
	return c.end
}

func (c *Cursor) nextReverse() bool {
	if c.fr == nil && !c.seekReverse() {
		return false
	}
	for {
		c.fr.Latch.RLock()
		n := asNode(c.fr.Data())
		if !n.isLeaf() || n.version() != c.ver {
			// The leaf changed since it was positioned (or since the
			// descent observed it): a split may have moved our
			// predecessors to a right sibling this cursor has already
			// passed. Unlike the forward path — where the sibling chain
			// still leads to relocated keys — the only safe move is a
			// fresh descent against the current separators.
			c.fr.Latch.RUnlock()
			c.t.pool.Unpin(c.fr, false)
			c.fr = nil
			if !c.seekReverse() {
				return false
			}
			continue
		}
		pos := c.reposReverse(n)
		if pos >= 0 {
			k := n.key(pos)
			if c.start != nil && bytes.Compare(k, c.start) < 0 {
				c.fr.Latch.RUnlock()
				c.finish()
				return false
			}
			c.serveLocked(n, pos)
			c.fr.Latch.RUnlock()
			return true
		}
		// Nothing below the bound here (exhausted leaf, or one emptied by
		// deletes): step to the left sibling. The latch is dropped before
		// the sibling is acquired — multi-latch holders only ever go
		// left→right, so a reverse walk must not hold right while taking
		// left — and the hop is validated by checking that the sibling
		// still chains back to this leaf; a split in the gap fails the
		// check and forces a fresh descent.
		prevID := c.fr.ID()
		left := storage.PageID(n.leftSibling())
		c.fr.Latch.RUnlock()
		c.t.pool.Unpin(c.fr, false)
		c.fr = nil
		if left == storage.InvalidPageID {
			c.finish()
			return false
		}
		fr, err := c.t.pool.Fetch(left)
		if err != nil {
			return c.fail(err)
		}
		fr.Latch.RLock()
		ln := asNode(fr.Data())
		if !ln.isLeaf() || storage.PageID(ln.rightSibling()) != prevID {
			// The left sibling split (or the chain was rewired) between
			// reading the pointer and latching the page.
			fr.Latch.RUnlock()
			c.t.pool.Unpin(fr, false)
			if !c.seekReverse() {
				return false
			}
			continue
		}
		ver := ln.version()
		fr.Latch.RUnlock()
		c.fetches++
		c.fr = fr
		c.ver = ver
	}
}

// reposReverse derives the last directory position strictly below the
// bound, or -1 when the leaf holds none. Caller holds the frame latch.
func (c *Cursor) reposReverse(n node) int {
	b := c.bound()
	if b == nil {
		return n.nKeys() - 1
	}
	pos, _ := n.search(b)
	return pos - 1
}

// seekReverse descends to the leaf expected to hold the largest key
// strictly below the bound and pins it, recording the leaf version the
// descent observed so the serving latch can detect an intervening
// split. When delete-emptied leaves leave nothing below the bound on
// the landing leaf, nextReverse walks on through the left-sibling
// chain.
func (c *Cursor) seekReverse() bool {
	b := c.bound()
	var (
		fr  *buffer.Frame
		ver uint32
		err error
	)
	if b == nil {
		fr, ver, err = c.t.rightmostFrame()
	} else {
		fr, ver, err = c.t.leafFrameBefore(b)
	}
	if err != nil {
		return c.fail(err)
	}
	c.fetches++
	c.fr = fr
	c.ver = ver
	return true
}
