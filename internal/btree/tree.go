package btree

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Tree is a B+Tree mapping memcomparable keys to 8-byte values (packed
// RIDs). Concurrency is per-node latch crabbing (Bayer/Schkolnick), not
// a tree-wide lock: many readers AND many writers proceed in parallel,
// serialized only on the individual pages they touch.
//
// The latch protocol, top to bottom:
//
//   - Latch order is strictly root→leaf, and left→right among leaves.
//     No code path acquires a page latch while holding a latch of a
//     deeper or righter page's, so waits cannot cycle.
//   - Readers couple shared latches: the child's latch is acquired
//     before the parent's is released, so a descent can never be routed
//     by a separator that a concurrent split is rewriting.
//   - Writers first descend optimistically — shared latches down the
//     internal levels, exclusive latch on the leaf only. If the leaf
//     absorbs the insert (or the op is an upsert/delete, which never
//     restructure), that is the whole critical section: one leaf.
//   - Only when the leaf must split does the writer retry
//     pessimistically: exclusive latches crabbed down the whole path,
//     releasing all ancestors the moment a child is "safe" (cannot
//     split), so the retained latch set is exactly the split's blast
//     radius. LatchRetries counts these fallbacks.
//   - The safe-node rule: a leaf is safe if the incoming key fits; an
//     internal node is safe if it can absorb a separator of
//     maxSepLen bytes — an upper bound on any separator this tree can
//     ever push up, maintained as the longest key ever inserted
//     (separators are always copies of existing keys).
//   - The root page id is IMMUTABLE (B-link-style root growth): a root
//     split copies the halved root into a fresh left page and
//     re-initialises the root page itself as an internal node over the
//     two halves, all under the root page latch the pessimistic
//     descent already holds. There is no tree-wide metadata lock:
//     descents are type-driven — they look at the latched page to tell
//     leaf from internal — so a root split costs exactly the latches a
//     leaf split does, even under writer storms.
//
// Deletes do not merge or rebalance nodes — matching the systems the
// paper measures, where deletes and updates erode fill factor over time
// (the CarTel database sat at 45%). That erosion is precisely the waste
// the index cache recycles, so preserving it is a feature. It also
// makes deletes structurally trivial: a delete is always leaf-local,
// so the delete path never needs the pessimistic fallback.
type Tree struct {
	pool *buffer.Pool

	// root never changes after New/Open (growth happens in place), so
	// reading it needs no synchronization.
	root   storage.PageID
	height atomic.Int64 // levels, 1 = root is a leaf; reporting only

	numKeys atomic.Int64
	// maxSepLen is the longest key ever inserted (or a conservative
	// bound for reopened/bulk-loaded trees): no separator pushed up by
	// a split can exceed it, so it bounds the internal-node safety
	// check without inspecting child contents.
	maxSepLen atomic.Int64
	// latchRetries counts optimistic descents that found a full leaf
	// and fell back to the pessimistic full-path hold — the crabbing
	// contention metric BENCH_write.json tracks.
	latchRetries atomic.Int64
}

// New creates an empty tree whose root is a fresh leaf.
func New(pool *buffer.Pool) (*Tree, error) {
	fr, err := pool.NewPage()
	if err != nil {
		return nil, fmt.Errorf("btree: allocating root: %w", err)
	}
	initNode(fr.Data(), nodeLeaf)
	root := fr.ID()
	pool.Unpin(fr, true)
	t := &Tree{pool: pool, root: root}
	t.height.Store(1)
	return t, nil
}

// Open re-attaches to an existing tree given its root (for reopening
// file-backed trees). The separator-length bound for the safe-node rule
// is unknown for a reopened tree, so it starts at the maximum key
// length — maximally conservative (more pessimistic holds), never
// incorrect.
func Open(pool *buffer.Pool, root storage.PageID, height int, numKeys int64) *Tree {
	t := &Tree{pool: pool, root: root}
	t.height.Store(int64(height))
	t.numKeys.Store(numKeys)
	t.maxSepLen.Store(int64(t.maxKeyLen()))
	return t
}

// Root returns the root page id (fixed for the tree's lifetime).
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the number of levels (1 = just a leaf).
func (t *Tree) Height() int { return int(t.height.Load()) }

// Len returns the number of keys.
func (t *Tree) Len() int64 { return t.numKeys.Load() }

// LatchRetries returns how many writes abandoned an optimistic descent
// and retried with the pessimistic full-path hold (i.e. how many leaf
// splits the crabbing protocol paid for).
func (t *Tree) LatchRetries() int64 { return t.latchRetries.Load() }

// Pool returns the buffer pool the tree runs on.
func (t *Tree) Pool() *buffer.Pool { return t.pool }

// maxKeyLen bounds keys so a handful of cells always fit per page.
func (t *Tree) maxKeyLen() int {
	return (t.pool.Disk().PageSize() - nodeHeaderSize - nodeFooterSize) / 4
}

// noteKeyLen publishes len(key) into the separator-length bound before
// any descent routes on it, so a concurrent pessimistic writer's safety
// checks already account for this key.
func (t *Tree) noteKeyLen(key []byte) { t.noteSepLen(len(key)) }

// noteSepLen raises the separator-length bound to at least n (ApplyRun
// publishes a whole run's longest key in one shot).
func (t *Tree) noteSepLen(n int) {
	for {
		cur := t.maxSepLen.Load()
		if int64(n) <= cur || t.maxSepLen.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// leafLatchMode selects how a latched descent acquires the leaf latch.
type leafLatchMode int

const (
	// leafShared takes the leaf latch shared (point reads).
	leafShared leafLatchMode = iota
	// leafExclusive takes the leaf latch exclusively (writes).
	leafExclusive
	// leafVisit tries exclusive without blocking, falling back to
	// shared — the paper's give-up protocol for index-cache writes.
	leafVisit
)

// descendLatched walks from the root to the leaf chosen by pick with
// read-coupled shared latches: each child is latched before its parent
// is released, so no split can reroute the descent mid-flight. The
// descent is type-driven — whether a page is the leaf comes from the
// latched page itself, never from a height snapshot — because the root
// page can turn from leaf into internal in place (root growth) at any
// moment a latch is not held on it. Returns the pinned, latched leaf
// frame and whether its latch is exclusive; the caller must unlatch
// (per mode) and Unpin exactly once. pick stays on the stack (never
// retained), keeping point lookups allocation-free.
//
// Latch escalation: the shared probe that discovers a page is the leaf
// must be upgraded for leafExclusive/leafVisit, and Go's RWMutex has no
// atomic upgrade, so the shared latch is dropped first.
//
//   - At a NON-ROOT leaf the parent's shared latch is still held across
//     the gap: a leaf is only ever split by a writer holding its parent
//     exclusively (insertLatched retains the parent whenever the leaf
//     is unsafe), so the leaf may absorb leaf-local writes in the gap
//     but cannot be restructured or change type.
//   - At the ROOT there is no parent, but none is needed: the root page
//     IS the root forever. The only hazard is the root growing into an
//     internal node inside the gap, so the type is re-checked after
//     escalating and the descent demotes back to shared and continues
//     downward if it did.
func (t *Tree) descendLatched(pick func(n node) storage.PageID, mode leafLatchMode) (*buffer.Frame, bool, error) {
	fr, err := t.pool.Fetch(t.root)
	if err != nil {
		return nil, false, err
	}
	fr.Latch.RLock()
	n := asNode(fr.Data())
	for n.isLeaf() {
		if mode == leafShared {
			return fr, false, nil
		}
		fr.Latch.RUnlock()
		if mode == leafVisit {
			if !fr.Latch.TryLock() {
				fr.Latch.RLock()
				if n = asNode(fr.Data()); n.isLeaf() {
					return fr, false, nil
				}
				continue // grew mid-escalation: already shared, descend
			}
		} else {
			fr.Latch.Lock()
		}
		if n = asNode(fr.Data()); n.isLeaf() {
			return fr, true, nil
		}
		// The root grew while unlatched; demote and descend.
		fr.Latch.Unlock()
		fr.Latch.RLock()
		n = asNode(fr.Data())
	}
	for {
		child := pick(n)
		cfr, err := t.pool.Fetch(child)
		if err != nil {
			fr.Latch.RUnlock()
			t.pool.Unpin(fr, false)
			return nil, false, err
		}
		cfr.Latch.RLock()
		cn := asNode(cfr.Data())
		if !cn.isLeaf() {
			fr.Latch.RUnlock()
			t.pool.Unpin(fr, false)
			fr, n = cfr, cn
			continue
		}
		exclusive := false
		switch mode {
		case leafExclusive:
			cfr.Latch.RUnlock()
			cfr.Latch.Lock()
			exclusive = true
		case leafVisit:
			cfr.Latch.RUnlock()
			if cfr.Latch.TryLock() {
				exclusive = true
			} else {
				cfr.Latch.RLock()
			}
		}
		fr.Latch.RUnlock()
		t.pool.Unpin(fr, false)
		return cfr, exclusive, nil
	}
}

// leafExclusive crab-descends to the leaf covering key and returns it
// pinned and EXCLUSIVELY latched. This is the whole locking footprint
// of upserts and deletes, and the optimistic first attempt of inserts.
func (t *Tree) leafExclusive(key []byte) (*buffer.Frame, error) {
	fr, _, err := t.descendLatched(func(n node) storage.PageID {
		return storage.PageID(n.childFor(key))
	}, leafExclusive)
	return fr, err
}

// Search returns the value stored under key. The value is read under
// the leaf's shared latch at the end of a read-coupled descent, so a
// concurrent split can never hide the key.
func (t *Tree) Search(key []byte) (uint64, bool, error) {
	fr, _, err := t.descendLatched(func(n node) storage.PageID {
		return storage.PageID(n.childFor(key))
	}, leafShared)
	if err != nil {
		return 0, false, err
	}
	n := asNode(fr.Data())
	pos, found := n.search(key)
	var v uint64
	if found {
		v = n.value(pos)
	}
	fr.Latch.RUnlock()
	t.pool.Unpin(fr, false)
	return v, found, nil
}

// Insert stores value under key, replacing any existing value (upsert).
// It reports whether the key was newly inserted.
func (t *Tree) Insert(key []byte, value uint64) (bool, error) {
	return t.insert(key, value, false)
}

// InsertIfAbsent stores value under key only if the key is not already
// present; an existing entry is left untouched. It reports whether the
// key was inserted. This is the write unique-index maintenance wants: a
// duplicate is detected without clobbering the survivor's value.
func (t *Tree) InsertIfAbsent(key []byte, value uint64) (bool, error) {
	return t.insert(key, value, true)
}

func (t *Tree) insert(key []byte, value uint64, ifAbsent bool) (bool, error) {
	if len(key) == 0 {
		return false, fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeyLen() {
		return false, fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), t.maxKeyLen())
	}
	t.noteKeyLen(key)
	// Optimistic: exclusive latch on the leaf only.
	fr, err := t.leafExclusive(key)
	if err != nil {
		return false, err
	}
	n := asNode(fr.Data())
	pos, found := n.search(key)
	if found {
		if ifAbsent {
			fr.Latch.Unlock()
			t.pool.Unpin(fr, false)
			return false, nil
		}
		n.setCellValue(n.dirEntry(pos), value)
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		return false, nil
	}
	if err := n.insertAt(pos, key, value); err == nil {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		t.numKeys.Add(1)
		return true, nil
	}
	// Leaf full: give up the optimistic latch and retry with the
	// pessimistic crabbing descent that may hold the split path.
	fr.Latch.Unlock()
	t.pool.Unpin(fr, false)
	t.latchRetries.Add(1)
	return t.insertPessimistic(key, value, ifAbsent)
}

// Delete removes key and reports whether it was present. Nodes are not
// merged (see the type comment), so a delete is always leaf-local: one
// exclusive leaf latch, no fallback path.
func (t *Tree) Delete(key []byte) (bool, error) {
	if len(key) == 0 {
		return false, fmt.Errorf("btree: empty key")
	}
	fr, err := t.leafExclusive(key)
	if err != nil {
		return false, err
	}
	n := asNode(fr.Data())
	pos, found := n.search(key)
	if found {
		n.deleteAt(pos)
	}
	fr.Latch.Unlock()
	t.pool.Unpin(fr, found)
	if found {
		t.numKeys.Add(-1)
	}
	return found, nil
}

// latchedNode is one exclusively latched, pinned node on a pessimistic
// descent's retained path.
//
// nblb:carries-pin
type latchedNode struct {
	fr *buffer.Frame
	n  node
}

// insertPessimistic is the split path: crab exclusive latches from the
// root down, releasing all retained ancestors whenever a child is safe,
// so on arrival the latch set is exactly the nodes a split can touch.
// Because the root grows in place under its own page latch, an unsafe
// root needs no special lock — it simply stays on the retained path.
func (t *Tree) insertPessimistic(key []byte, value uint64, ifAbsent bool) (bool, error) {
	// Escalation ladder. maxSepLen is a snapshot: a longer key published
	// by a concurrent writer after the load can make the safe-node rule
	// too optimistic, which pendingSepFits detects before any page is
	// mutated (the descent then bails). The last rung uses the absolute
	// key-length bound, under which a "safe" verdict can never be wrong
	// and an unsafe path retains the root — so it always settles.
	for _, sepBound := range [2]int{int(t.maxSepLen.Load()), t.maxKeyLen()} {
		ins, done, err := t.insertLatched(key, value, sepBound, ifAbsent)
		if done || err != nil {
			return ins, err
		}
	}
	// Unreachable: the last rung cannot bail (see above).
	return false, fmt.Errorf("btree: pessimistic insert failed to settle")
}

// longestKeyIn returns the longest key currently in the node — the
// upper bound on any separator a split of this node can push up (the
// up-separator is always one of the node's pre-split keys).
func longestKeyIn(n node) int {
	longest := 0
	for i := 0; i < n.nKeys(); i++ {
		if l := len(n.key(i)); l > longest {
			longest = l
		}
	}
	return longest
}

// pendingSepFits dry-runs the split chain before any page is mutated:
// walking up from the leaf, a node that cannot absorb the incoming
// separator splits and pushes up one of its own keys, bounded by its
// longest. The chain must be absorbed by some retained node — or reach
// path[0] with rootHeld (path[0] is the root, exclusively latched, so
// growing it in place is legal). A false return means the safe-node
// bound the descent used was stale; the caller restarts conservatively
// rather than splitting past the retained latches.
func pendingSepFits(path []latchedNode, rootHeld bool) bool {
	sepLen := longestKeyIn(path[len(path)-1].n)
	for i := len(path) - 2; i >= 0; i-- {
		n := path[i].n
		if n.canInsert(sepLen) {
			return true
		}
		sepLen = longestKeyIn(n)
	}
	return rootHeld
}

// insertLatched performs one pessimistic descent+insert. It bails
// (done=false) only when the safe-node bound it descended under turns
// out stale at the dry-run (pendingSepFits); the caller then escalates
// the bound. An unsafe root needs no special handling — it stays on
// the retained path, exclusively latched, and the grow branch rebuilds
// it in place.
func (t *Tree) insertLatched(key []byte, value uint64, sepBound int, ifAbsent bool) (inserted, done bool, err error) {
	var pathArr [8]latchedNode
	path := pathArr[:0]
	releasePath := func(dirty bool) {
		for _, e := range path {
			e.fr.Latch.Unlock()
			t.pool.Unpin(e.fr, dirty)
		}
		path = path[:0]
	}

	fr, err := t.pool.Fetch(t.root)
	if err != nil {
		return false, false, err
	}
	fr.Latch.Lock()
	n := asNode(fr.Data())
	path = append(path, latchedNode{fr, n})

	for !n.isLeaf() {
		if t.nodeSafe(n, key, sepBound) {
			// Everything above n can no longer be touched by a split.
			above := path[:len(path)-1]
			for _, e := range above {
				e.fr.Latch.Unlock()
				t.pool.Unpin(e.fr, false)
			}
			path = append(path[:0], path[len(path)-1])
		}
		child := storage.PageID(n.childFor(key))
		cfr, err := t.pool.Fetch(child)
		if err != nil {
			releasePath(false)
			return false, false, err
		}
		cfr.Latch.Lock()
		n = asNode(cfr.Data())
		path = append(path, latchedNode{cfr, n})
	}
	// The leaf is the last path entry; if it is safe, drop its ancestors
	// too (the common shape here is "leaf full", but a concurrent delete
	// may have made room since the optimistic attempt).
	leaf := path[len(path)-1]
	if t.nodeSafe(leaf.n, key, sepBound) && len(path) > 1 {
		for _, e := range path[:len(path)-1] {
			e.fr.Latch.Unlock()
			t.pool.Unpin(e.fr, false)
		}
		path = append(path[:0], leaf)
	}

	// releaseLeafDirty unpins the leaf dirty and any retained ancestors
	// clean — the shape for leaf-local outcomes, where ancestors were
	// latched but never touched.
	releaseLeafDirty := func() {
		for _, e := range path[:len(path)-1] {
			e.fr.Latch.Unlock()
			t.pool.Unpin(e.fr, false)
		}
		leaf.fr.Latch.Unlock()
		t.pool.Unpin(leaf.fr, true)
		path = path[:0]
	}
	pos, found := leaf.n.search(key)
	if found {
		if ifAbsent {
			releasePath(false)
			return false, true, nil
		}
		leaf.n.setCellValue(leaf.n.dirEntry(pos), value)
		releaseLeafDirty()
		return false, true, nil
	}
	if err := leaf.n.insertAt(pos, key, value); err == nil {
		releaseLeafDirty()
		t.numKeys.Add(1)
		return true, true, nil
	}

	// A split is unavoidable. Before mutating anything, dry-run the
	// propagation: if the chain would escape the retained path (the
	// safe-node bound was stale — a concurrent writer published a
	// longer key after this descent loaded it), bail and let the caller
	// escalate instead of splitting past the latches we hold.
	if !pendingSepFits(path, path[0].fr.ID() == t.root) {
		releasePath(false)
		return false, false, nil
	}

	// Split the leaf and propagate up through the retained path. All
	// latches stay held until the whole multi-level update is complete:
	// readers cannot pass the deepest retained ancestor meanwhile, so
	// they never observe a half-linked split.
	sep, rightID, err := t.splitLeafInsert(leaf, key, value)
	if err != nil {
		// The split may have mutated the leaf before failing; release
		// everything dirty so whatever state exists reaches disk rather
		// than desyncing from the sibling chain.
		releasePath(true)
		return false, false, err
	}
	// releaseMutated unpins path entries from dirtyFrom on dirty (they
	// were split or received the separator) and shallower ones clean
	// (latched but never touched — an "unsafe by sepBound" ancestor can
	// still absorb the shorter actual separator, ending the chain early).
	releaseMutated := func(dirtyFrom int) {
		for j, e := range path {
			e.fr.Latch.Unlock()
			t.pool.Unpin(e.fr, j >= dirtyFrom)
		}
		path = path[:0]
	}
	for i := len(path) - 2; i >= 0; i-- {
		parent := path[i]
		ppos, pfound := parent.n.search(sep)
		if pfound {
			releaseMutated(i + 1)
			return false, false, fmt.Errorf("btree: separator key already in parent")
		}
		if err := parent.n.insertAt(ppos, sep, uint64(rightID)); err == nil {
			releaseMutated(i)
			t.numKeys.Add(1)
			return true, true, nil
		}
		sep, rightID, err = t.splitInternalInsert(parent, sep, rightID)
		if err != nil {
			releasePath(true)
			return false, false, err
		}
	}
	// The split propagated past the whole retained path — only possible
	// when path[0] is the root (ancestors are only released below safe
	// nodes, and a safe node absorbs the separator). Grow IN PLACE: the
	// root page id is immutable, so the halved root's content moves to a
	// fresh left page L and the root page itself is re-initialised as an
	// internal node [L, sep → right] — all under the root page latch
	// this descent already holds exclusively. A raw page copy is legal
	// because node pages never store their own id.
	rootE := path[0]
	lfr, err := t.pool.NewPage()
	if err != nil {
		releasePath(true)
		return false, false, err
	}
	copy(lfr.Data(), rootE.fr.Data())
	wasLeaf := rootE.n.isLeaf()
	oldVer := rootE.n.version()
	leftID := lfr.ID()
	t.pool.Unpin(lfr, true)
	if wasLeaf {
		// The right half (created by splitLeafInsert) chains back to the
		// root page; repoint it at L before the root stops being a leaf.
		// Latch order holds: root first, then a deeper page — the same
		// root→leaf direction every descent uses.
		rfr, err := t.pool.Fetch(rightID)
		if err != nil {
			releasePath(true)
			return false, false, err
		}
		rfr.Latch.Lock()
		asNode(rfr.Data()).setLeftSibling(uint64(leftID))
		rfr.Latch.Unlock()
		t.pool.Unpin(rfr, true)
	}
	rn := initNode(rootE.fr.Data(), nodeInternal)
	rn.setLeftmostChild(uint64(leftID))
	if err := rn.insertAt(0, sep, uint64(rightID)); err != nil {
		releasePath(true)
		return false, false, fmt.Errorf("btree: root grow insert: %w", err)
	}
	// Cursors pinned at the old root-as-leaf revalidate on the version
	// counter; carry it forward (bumped) across the re-init so they can
	// never mistake the internal page for the leaf they left.
	rn.setVersion(oldVer + 1)
	t.height.Add(1)
	releasePath(true)
	t.numKeys.Add(1)
	return true, true, nil
}

// splitPosition returns how many existing cells stay in the left half
// when a full node splits to absorb an incoming cell of newCell bytes
// at directory position insPos: the cut point where the merged
// sequence's running byte count passes half its total, clamped so both
// halves keep at least one existing cell.
func splitPosition(n node, k, insPos, newCell int) int {
	half := (n.usedBytes() + newCell) / 2
	run, splitPos := 0, k/2
	for v := 0; v <= k; v++ {
		var sz int
		if v == insPos {
			sz = newCell
		} else {
			e := v
			if v > insPos {
				e = v - 1
			}
			sz = cellSize(len(n.key(e))) + dirEntrySize
		}
		if run+sz > half {
			// Cut BEFORE the virtual cell that crosses the halfway mark,
			// so the left half never exceeds half the merged bytes (the
			// crossing cell lands right). Existing cells going left are
			// those among virtual [0..v).
			splitPos = v
			if insPos < v {
				splitPos--
			}
			break
		}
		run += sz
	}
	if splitPos >= k {
		splitPos = k - 1
	}
	if splitPos < 1 {
		splitPos = 1
	}
	return splitPos
}

// nodeSafe reports whether a node cannot split from this insert: a leaf
// must fit the incoming key, an internal node must fit the longest
// separator the tree could push up (sepBound).
func (t *Tree) nodeSafe(n node, key []byte, sepBound int) bool {
	if n.isLeaf() {
		return n.canInsert(len(key))
	}
	return n.canInsert(sepBound)
}

// splitLeafInsert splits the exclusively latched leaf and inserts
// (key, value) into the proper half. It wires all sibling links —
// including the old right neighbor's left pointer, taken exclusively in
// left→right order — and returns the separator (copied) and new page
// id for propagation. leaf stays latched; the caller releases it dirty.
func (t *Tree) splitLeafInsert(leaf latchedNode, key []byte, value uint64) ([]byte, storage.PageID, error) {
	n := leaf.n
	rfr, err := t.pool.NewPage()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	rn := initNode(rfr.Data(), nodeLeaf)
	k := n.nKeys()
	// Find the split position by walking the MERGED sequence (existing
	// cells plus the incoming one at its sorted position) and cutting at
	// half its byte count: budgeting the incoming cell into the halves
	// is what guarantees the post-split insert always fits, even at the
	// maximum key length (each half ends ≤ (used+new)/2 + one cell, and
	// maxKeyLen caps a cell at about a quarter of the page).
	insPos, _ := n.search(key)
	splitPos := splitPosition(n, k, insPos, cellSize(len(key))+dirEntrySize)
	for i := splitPos; i < k; i++ {
		if err := rn.insertAt(i-splitPos, n.key(i), n.value(i)); err != nil {
			t.pool.Unpin(rfr, false)
			return nil, storage.InvalidPageID, fmt.Errorf("btree: split copy: %w", err)
		}
	}
	// Truncate the left node to splitPos keys and compact.
	n.setNKeys(splitPos)
	n.setDirEnd(nodeHeaderSize + splitPos*dirEntrySize)
	n.compactCells()
	// Wire the chain in both directions. The new node is unreachable by
	// descent until the parent is updated (the caller holds the parent
	// exclusively), but reverse scans can reach it through the old right
	// neighbor's left pointer the moment it is updated — by then the
	// node is fully formed.
	oldRight := n.rightSibling()
	rn.setRightSibling(oldRight)
	rn.setLeftSibling(uint64(leaf.fr.ID()))
	n.setRightSibling(uint64(rfr.ID()))
	sep := append([]byte(nil), rn.key(0)...)

	// Insert the pending key into whichever half covers it, while both
	// halves are still exclusively held.
	if bytes.Compare(key, sep) < 0 {
		pos, _ := n.search(key)
		err = n.insertAt(pos, key, value)
	} else {
		pos, _ := rn.search(key)
		err = rn.insertAt(pos, key, value)
	}
	if err != nil {
		t.pool.Unpin(rfr, true)
		return nil, storage.InvalidPageID, fmt.Errorf("btree: insert after split failed: %w", err)
	}
	rightID := rfr.ID()
	t.pool.Unpin(rfr, true)

	if oldRight != uint64(storage.InvalidPageID) {
		// Left→right latch order: we hold the left leaf and acquire its
		// right neighbor, the same direction every multi-leaf holder
		// uses, so this cannot deadlock against another split.
		ofr, err := t.pool.Fetch(storage.PageID(oldRight))
		if err != nil {
			return nil, storage.InvalidPageID, err
		}
		ofr.Latch.Lock()
		asNode(ofr.Data()).setLeftSibling(uint64(rightID))
		ofr.Latch.Unlock()
		t.pool.Unpin(ofr, true)
	}
	return sep, rightID, nil
}

// splitInternalInsert splits the exclusively latched internal node (the
// middle key moves up) and inserts (sep → childID) into the proper
// half. Returns the new separator (copied) and right node id for the
// next level up. parent stays latched; the caller releases it dirty.
func (t *Tree) splitInternalInsert(parent latchedNode, sep []byte, childID storage.PageID) ([]byte, storage.PageID, error) {
	n := parent.n
	rfr, err := t.pool.NewPage()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	rn := initNode(rfr.Data(), nodeInternal)
	k := n.nKeys()
	// Byte-aware middle, budgeting the incoming separator like the leaf
	// split does, so the post-split insert into either half cannot
	// overflow (the pushed-up middle key leaving the node only helps).
	insPos, _ := n.search(sep)
	mid := splitPosition(n, k, insPos, cellSize(len(sep))+dirEntrySize)
	upSep := append([]byte(nil), n.key(mid)...)
	rn.setLeftmostChild(n.value(mid))
	for i := mid + 1; i < k; i++ {
		if err := rn.insertAt(i-mid-1, n.key(i), n.value(i)); err != nil {
			t.pool.Unpin(rfr, false)
			return nil, storage.InvalidPageID, fmt.Errorf("btree: split copy: %w", err)
		}
	}
	n.setNKeys(mid)
	n.setDirEnd(nodeHeaderSize + mid*dirEntrySize)
	n.compactCells()

	if bytes.Compare(sep, upSep) < 0 {
		pos, _ := n.search(sep)
		err = n.insertAt(pos, sep, uint64(childID))
	} else {
		pos, _ := rn.search(sep)
		err = rn.insertAt(pos, sep, uint64(childID))
	}
	if err != nil {
		t.pool.Unpin(rfr, true)
		return nil, storage.InvalidPageID, fmt.Errorf("btree: insert after internal split: %w", err)
	}
	rightID := rfr.ID()
	t.pool.Unpin(rfr, true)
	return upSep, rightID, nil
}

// Scan calls fn for every (key, value) with start ≤ key < end in order.
// A nil start begins at the first key; a nil end scans to the last.
// fn's key slice is only valid during the call. Returning false stops.
//
// Deprecated: Scan is a thin wrapper over the pinned-frame Cursor; new
// code should use NewCursor directly (it exposes errors mid-iteration,
// reverse order, and resumption). Unlike the pre-cursor implementation,
// Scan does not block writers for its duration: they proceed
// concurrently and fn may observe their effects.
func (t *Tree) Scan(start, end []byte, fn func(key []byte, value uint64) bool) error {
	c := t.NewCursor(start, end)
	defer c.Close()
	for c.Next() {
		if !fn(c.Key(), c.Value()) {
			return nil
		}
	}
	return c.Err()
}

// leftmostLeaf descends to the first leaf.
func (t *Tree) leftmostLeaf() (storage.PageID, error) {
	fr, _, err := t.leftmostFrame()
	if err != nil {
		return storage.InvalidPageID, err
	}
	id := fr.ID()
	t.pool.Unpin(fr, false)
	return id, nil
}

// leftmostFrame descends to the first leaf and returns it STILL PINNED
// (no latch held) plus the leaf version observed under the descent's
// latch. Caller must Unpin exactly once.
func (t *Tree) leftmostFrame() (*buffer.Frame, uint32, error) {
	return t.descendFrame(func(n node) storage.PageID {
		return storage.PageID(n.leftmostChild())
	})
}

// rightmostFrame descends to the last leaf and returns it STILL PINNED
// (no latch held) plus the observed leaf version. Caller must Unpin
// exactly once.
func (t *Tree) rightmostFrame() (*buffer.Frame, uint32, error) {
	return t.descendFrame(func(n node) storage.PageID {
		if k := n.nKeys(); k > 0 {
			return storage.PageID(n.value(k - 1))
		}
		return storage.PageID(n.leftmostChild())
	})
}

// leafFrameBefore descends to the leaf covering the largest key
// strictly less than bound and returns it STILL PINNED (no latch held)
// plus the observed leaf version. Caller must Unpin exactly once. When
// no key below bound exists the returned leaf simply yields no
// position; callers handle that (reverse cursors fall back to the
// left-sibling walk).
func (t *Tree) leafFrameBefore(bound []byte) (*buffer.Frame, uint32, error) {
	return t.descendFrame(func(n node) storage.PageID {
		pos, _ := n.search(bound)
		if pos == 0 {
			return storage.PageID(n.leftmostChild())
		}
		return storage.PageID(n.value(pos - 1))
	})
}

// descendFrame walks from the root to a leaf with read-coupled shared
// latches — each child latched before its parent is released, starting
// from the root page's own latch (there is no tree-wide metadata lock)
// — choosing the child
// via pick at each internal node. It returns the leaf pinned together
// with its version as observed under the descent's latch: a caller that
// later re-latches the leaf and sees the same version knows the leaf is
// exactly what this descent targeted; cursors use that to detect splits
// sneaking in between the descent and the first read.
func (t *Tree) descendFrame(pick func(n node) storage.PageID) (*buffer.Frame, uint32, error) {
	fr, _, err := t.descendLatched(pick, leafShared)
	if err != nil {
		return nil, 0, err
	}
	ver := asNode(fr.Data()).version()
	fr.Latch.RUnlock()
	return fr, ver, nil
}
