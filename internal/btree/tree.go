package btree

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Tree is a B+Tree mapping memcomparable keys to 8-byte values (packed
// RIDs). Structural operations (Insert, Delete) serialize on an
// internal lock; Search and VisitLeaf take it shared. Page data is
// additionally guarded by per-frame latches so the index cache can
// mutate leaf free space under a shared tree lock.
//
// Deletes do not merge or rebalance nodes — matching the systems the
// paper measures, where deletes and updates erode fill factor over time
// (the CarTel database sat at 45%). That erosion is precisely the waste
// the index cache recycles, so preserving it is a feature.
type Tree struct {
	pool *buffer.Pool

	mu      sync.RWMutex
	root    storage.PageID
	height  int // 1 = root is a leaf
	numKeys int64
}

// New creates an empty tree whose root is a fresh leaf.
func New(pool *buffer.Pool) (*Tree, error) {
	fr, err := pool.NewPage()
	if err != nil {
		return nil, fmt.Errorf("btree: allocating root: %w", err)
	}
	initNode(fr.Data(), nodeLeaf)
	root := fr.ID()
	pool.Unpin(fr, true)
	return &Tree{pool: pool, root: root, height: 1}, nil
}

// Open re-attaches to an existing tree given its root (for reopening
// file-backed trees). height and numKeys are recomputed lazily by Stats;
// operations only need the root.
func Open(pool *buffer.Pool, root storage.PageID, height int, numKeys int64) *Tree {
	return &Tree{pool: pool, root: root, height: height, numKeys: numKeys}
}

// Root returns the current root page id.
func (t *Tree) Root() storage.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// Height returns the number of levels (1 = just a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Len returns the number of keys.
func (t *Tree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numKeys
}

// Pool returns the buffer pool the tree runs on.
func (t *Tree) Pool() *buffer.Pool { return t.pool }

// maxKeyLen bounds keys so a handful of cells always fit per page.
func (t *Tree) maxKeyLen() int {
	return (t.pool.Disk().PageSize() - nodeHeaderSize - nodeFooterSize) / 4
}

// descendToLeaf walks from the root to the leaf covering key, returning
// the path of internal page ids (root first) and the leaf id. Caller
// must hold t.mu (any mode).
func (t *Tree) descendToLeaf(key []byte) (path []storage.PageID, leaf storage.PageID, err error) {
	id := t.root
	for {
		fr, err := t.pool.Fetch(id)
		if err != nil {
			return nil, storage.InvalidPageID, err
		}
		fr.Latch.RLock()
		n := asNode(fr.Data())
		if n.isLeaf() {
			fr.Latch.RUnlock()
			t.pool.Unpin(fr, false)
			return path, id, nil
		}
		child := storage.PageID(n.childFor(key))
		fr.Latch.RUnlock()
		t.pool.Unpin(fr, false)
		path = append(path, id)
		id = child
	}
}

// leafFrame descends to the leaf covering key and returns its frame
// STILL PINNED (no latch held), so point lookups pay one buffer-pool
// round-trip for the leaf instead of a find-unpin-refetch pair. The
// caller must Unpin exactly once and must hold t.mu (any mode; holding
// it keeps the structure stable between the latch drop here and the
// caller's re-latch). The pick closure stays on the stack (descendFrame
// never retains it), so the point-lookup hot path remains
// allocation-free.
func (t *Tree) leafFrame(key []byte) (*buffer.Frame, error) {
	fr, _, err := t.descendFrame(func(n node) storage.PageID {
		return storage.PageID(n.childFor(key))
	})
	return fr, err
}

// Search returns the value stored under key.
func (t *Tree) Search(key []byte) (uint64, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	fr, err := t.leafFrame(key)
	if err != nil {
		return 0, false, err
	}
	fr.Latch.RLock()
	n := asNode(fr.Data())
	pos, found := n.search(key)
	var v uint64
	if found {
		v = n.value(pos)
	}
	fr.Latch.RUnlock()
	t.pool.Unpin(fr, false)
	return v, found, nil
}

// Insert stores value under key, replacing any existing value (upsert).
// It reports whether the key was newly inserted.
func (t *Tree) Insert(key []byte, value uint64) (bool, error) {
	if len(key) == 0 {
		return false, fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeyLen() {
		return false, fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), t.maxKeyLen())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	path, leafID, err := t.descendToLeaf(key)
	if err != nil {
		return false, err
	}
	fr, err := t.pool.Fetch(leafID)
	if err != nil {
		return false, err
	}
	fr.Latch.Lock()
	n := asNode(fr.Data())
	pos, found := n.search(key)
	if found {
		n.setCellValue(n.dirEntry(pos), value)
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		return false, nil
	}
	if err := n.insertAt(pos, key, value); err == nil {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		t.numKeys++
		return true, nil
	}
	// Leaf full: split, then insert into the proper half.
	sepKey, rightID, err := t.splitLeaf(fr, n)
	if err != nil {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, false)
		return false, err
	}
	target := fr
	targetIsLeft := bytes.Compare(key, sepKey) < 0
	if targetIsLeft {
		n := asNode(target.Data())
		pos, _ := n.search(key)
		if err := n.insertAt(pos, key, value); err != nil {
			fr.Latch.Unlock()
			t.pool.Unpin(fr, false)
			return false, fmt.Errorf("btree: insert after split failed: %w", err)
		}
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
	} else {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		rfr, err := t.pool.Fetch(rightID)
		if err != nil {
			return false, err
		}
		rfr.Latch.Lock()
		rn := asNode(rfr.Data())
		pos, _ := rn.search(key)
		if err := rn.insertAt(pos, key, value); err != nil {
			rfr.Latch.Unlock()
			t.pool.Unpin(rfr, false)
			return false, fmt.Errorf("btree: insert after split failed: %w", err)
		}
		rfr.Latch.Unlock()
		t.pool.Unpin(rfr, true)
	}
	if err := t.insertIntoParent(path, leafID, sepKey, rightID); err != nil {
		return false, err
	}
	t.numKeys++
	return true, nil
}

// splitLeaf moves the upper half (by bytes) of fr's cells into a new
// right sibling. It returns the separator key (first key of the right
// node, copied) and the new page id. Caller holds fr's latch and keeps
// it; fr must be unpinned dirty afterwards.
func (t *Tree) splitLeaf(fr *buffer.Frame, n node) ([]byte, storage.PageID, error) {
	rfr, err := t.pool.NewPage()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	rn := initNode(rfr.Data(), nodeLeaf)
	k := n.nKeys()
	// Find the split position: first index where the running byte count
	// exceeds half the used bytes.
	half := n.usedBytes() / 2
	run, splitPos := 0, k/2
	for i := 0; i < k; i++ {
		run += cellSize(len(n.key(i))) + dirEntrySize
		if run > half {
			splitPos = i + 1
			break
		}
	}
	if splitPos >= k {
		splitPos = k - 1
	}
	if splitPos < 1 {
		splitPos = 1
	}
	for i := splitPos; i < k; i++ {
		pos := i - splitPos
		if err := rn.insertAt(pos, n.key(i), n.value(i)); err != nil {
			t.pool.Unpin(rfr, false)
			return nil, storage.InvalidPageID, fmt.Errorf("btree: split copy: %w", err)
		}
	}
	// Truncate the left node to splitPos keys and compact.
	n.setNKeys(splitPos)
	n.setDirEnd(nodeHeaderSize + splitPos*dirEntrySize)
	n.compactCells()
	// Chain siblings.
	rn.setRightSibling(n.rightSibling())
	n.setRightSibling(uint64(rfr.ID()))
	sep := append([]byte(nil), rn.key(0)...)
	rightID := rfr.ID()
	t.pool.Unpin(rfr, true)
	return sep, rightID, nil
}

// splitInternal splits a full internal node: the middle key moves up.
// Returns the separator and new right node id. Caller holds fr's latch.
func (t *Tree) splitInternal(fr *buffer.Frame, n node) ([]byte, storage.PageID, error) {
	rfr, err := t.pool.NewPage()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	rn := initNode(rfr.Data(), nodeInternal)
	k := n.nKeys()
	mid := k / 2
	if mid < 1 {
		mid = 1
	}
	sep := append([]byte(nil), n.key(mid)...)
	rn.setLeftmostChild(n.value(mid))
	for i := mid + 1; i < k; i++ {
		if err := rn.insertAt(i-mid-1, n.key(i), n.value(i)); err != nil {
			t.pool.Unpin(rfr, false)
			return nil, storage.InvalidPageID, fmt.Errorf("btree: split copy: %w", err)
		}
	}
	n.setNKeys(mid)
	n.setDirEnd(nodeHeaderSize + mid*dirEntrySize)
	n.compactCells()
	rightID := rfr.ID()
	t.pool.Unpin(rfr, true)
	return sep, rightID, nil
}

// insertIntoParent inserts (sepKey → rightID) into the parent of
// leftID, splitting upward as needed. path holds the internal nodes
// from root to the parent of leftID.
func (t *Tree) insertIntoParent(path []storage.PageID, leftID storage.PageID, sepKey []byte, rightID storage.PageID) error {
	if len(path) == 0 {
		// leftID was the root: grow a new root.
		fr, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		n := initNode(fr.Data(), nodeInternal)
		n.setLeftmostChild(uint64(leftID))
		if err := n.insertAt(0, sepKey, uint64(rightID)); err != nil {
			t.pool.Unpin(fr, false)
			return fmt.Errorf("btree: new root insert: %w", err)
		}
		t.root = fr.ID()
		t.height++
		t.pool.Unpin(fr, true)
		return nil
	}
	parentID := path[len(path)-1]
	fr, err := t.pool.Fetch(parentID)
	if err != nil {
		return err
	}
	fr.Latch.Lock()
	n := asNode(fr.Data())
	pos, found := n.search(sepKey)
	if found {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, false)
		return fmt.Errorf("btree: separator key already in parent")
	}
	if err := n.insertAt(pos, sepKey, uint64(rightID)); err == nil {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		return nil
	}
	// Parent full: split it and retry on the correct half.
	parentSep, parentRight, err := t.splitInternal(fr, n)
	if err != nil {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, false)
		return err
	}
	if bytes.Compare(sepKey, parentSep) < 0 {
		pos, _ := n.search(sepKey)
		if err := n.insertAt(pos, sepKey, uint64(rightID)); err != nil {
			fr.Latch.Unlock()
			t.pool.Unpin(fr, false)
			return fmt.Errorf("btree: insert after internal split: %w", err)
		}
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
	} else {
		fr.Latch.Unlock()
		t.pool.Unpin(fr, true)
		rfr, err := t.pool.Fetch(parentRight)
		if err != nil {
			return err
		}
		rfr.Latch.Lock()
		rn := asNode(rfr.Data())
		pos, _ := rn.search(sepKey)
		if err := rn.insertAt(pos, sepKey, uint64(rightID)); err != nil {
			rfr.Latch.Unlock()
			t.pool.Unpin(rfr, false)
			return fmt.Errorf("btree: insert after internal split: %w", err)
		}
		rfr.Latch.Unlock()
		t.pool.Unpin(rfr, true)
	}
	return t.insertIntoParent(path[:len(path)-1], parentID, parentSep, parentRight)
}

// Delete removes key and reports whether it was present. Nodes are not
// merged (see the type comment).
func (t *Tree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, leafID, err := t.descendToLeaf(key)
	if err != nil {
		return false, err
	}
	fr, err := t.pool.Fetch(leafID)
	if err != nil {
		return false, err
	}
	fr.Latch.Lock()
	n := asNode(fr.Data())
	pos, found := n.search(key)
	if found {
		n.deleteAt(pos)
	}
	fr.Latch.Unlock()
	t.pool.Unpin(fr, found)
	if found {
		t.numKeys--
	}
	return found, nil
}

// Scan calls fn for every (key, value) with start ≤ key < end in order.
// A nil start begins at the first key; a nil end scans to the last.
// fn's key slice is only valid during the call. Returning false stops.
//
// Deprecated: Scan is a thin wrapper over the pinned-frame Cursor; new
// code should use NewCursor directly (it exposes errors mid-iteration,
// reverse order, and resumption). Unlike the pre-cursor implementation,
// Scan no longer holds the tree lock for its whole duration: writers
// proceed concurrently and fn may observe their effects.
func (t *Tree) Scan(start, end []byte, fn func(key []byte, value uint64) bool) error {
	c := t.NewCursor(start, end)
	defer c.Close()
	for c.Next() {
		if !fn(c.Key(), c.Value()) {
			return nil
		}
	}
	return c.Err()
}

// leftmostLeaf descends to the first leaf. Caller holds t.mu.
func (t *Tree) leftmostLeaf() (storage.PageID, error) {
	fr, _, err := t.leftmostFrame()
	if err != nil {
		return storage.InvalidPageID, err
	}
	id := fr.ID()
	t.pool.Unpin(fr, false)
	return id, nil
}

// leftmostFrame descends to the first leaf and returns it STILL PINNED
// (no latch held) plus the leaf version observed under the descent's
// latch. Caller must Unpin exactly once and hold t.mu.
func (t *Tree) leftmostFrame() (*buffer.Frame, uint32, error) {
	return t.descendFrame(func(n node) storage.PageID {
		return storage.PageID(n.leftmostChild())
	})
}

// rightmostFrame descends to the last leaf and returns it STILL PINNED
// (no latch held) plus the observed leaf version. Caller must Unpin
// exactly once and hold t.mu.
func (t *Tree) rightmostFrame() (*buffer.Frame, uint32, error) {
	return t.descendFrame(func(n node) storage.PageID {
		if k := n.nKeys(); k > 0 {
			return storage.PageID(n.value(k - 1))
		}
		return storage.PageID(n.leftmostChild())
	})
}

// leafFrameBefore descends to the leaf covering the largest key
// strictly less than bound and returns it STILL PINNED (no latch held)
// plus the observed leaf version. Caller must Unpin exactly once and
// hold t.mu. When no key below bound exists the returned leaf simply
// yields no position; callers handle that (reverse cursors fall back
// to a chain walk).
func (t *Tree) leafFrameBefore(bound []byte) (*buffer.Frame, uint32, error) {
	return t.descendFrame(func(n node) storage.PageID {
		pos, _ := n.search(bound)
		if pos == 0 {
			return storage.PageID(n.leftmostChild())
		}
		return storage.PageID(n.value(pos - 1))
	})
}

// descendFrame walks from the root to a leaf, choosing the child via
// pick at each internal node, and returns the leaf pinned together
// with its version as observed under the descent's latch. A caller
// holding t.mu that later re-latches the leaf and sees the same
// version knows the leaf is exactly what this descent targeted —
// reverse cursors use that to detect splits sneaking in between the
// descent and the first read.
func (t *Tree) descendFrame(pick func(n node) storage.PageID) (*buffer.Frame, uint32, error) {
	id := t.root
	for {
		fr, err := t.pool.Fetch(id)
		if err != nil {
			return nil, 0, err
		}
		fr.Latch.RLock()
		n := asNode(fr.Data())
		if n.isLeaf() {
			ver := n.version()
			fr.Latch.RUnlock()
			return fr, ver, nil
		}
		child := pick(n)
		fr.Latch.RUnlock()
		t.pool.Unpin(fr, false)
		id = child
	}
}
