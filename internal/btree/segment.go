package btree

import (
	"bytes"
	"sort"

	"repro/internal/storage"
)

// Segment is one piece of a key range planned for parallel scanning:
// Lo ≤ key < Hi, with nil meaning the range's own (possibly unbounded)
// edge. Segments produced by PlanSegments are disjoint, sorted, and
// cover the planned range exactly; adjacent segments share boundary
// slices, so callers must treat Lo/Hi as read-only.
type Segment struct {
	Lo, Hi []byte
}

// maxPlanSegments bounds a plan. Past a few hundred segments the
// per-segment descent cost dominates whatever balance finer splitting
// buys.
const maxPlanSegments = 1024

// PlanSegments splits [start, end) into up to target segments at
// internal-node separator keys, so each segment covers roughly one
// subtree at the shallowest level with enough fan-out. The plan is
// advisory: boundaries are legal keys of the moment the planner read
// them, and concurrent splits only make the balance approximate —
// cursors opened over the segments re-validate against per-leaf
// versions exactly like any other cursor, so correctness never depends
// on the plan staying fresh.
//
// The walk latches one node at a time (shared), top level first,
// accumulating each level's in-range separators until target segments
// are reachable or the leaf level is hit. A tree of height 1, or a
// target ≤ 1, yields the single segment [start, end).
func (t *Tree) PlanSegments(start, end []byte, target int) ([]Segment, error) {
	single := []Segment{{Lo: copyBytes(start), Hi: copyBytes(end)}}
	if target <= 1 {
		return single, nil
	}
	if target > maxPlanSegments {
		target = maxPlanSegments
	}
	root, height := t.root, t.Height()
	if height <= 1 {
		return single, nil
	}
	var seps [][]byte
	frontier := []storage.PageID{root}
	for level := 0; level < height && len(frontier) > 0 && len(seps)+1 < target; level++ {
		var next []storage.PageID
		hitLeaves := false
		for _, id := range frontier {
			fr, err := t.pool.Fetch(id)
			if err != nil {
				return nil, err
			}
			fr.Latch.RLock()
			n := asNode(fr.Data())
			if n.isLeaf() {
				fr.Latch.RUnlock()
				t.pool.Unpin(fr, false)
				hitLeaves = true
				continue
			}
			nk := n.nKeys()
			// Child ci covers [key(ci-1), key(ci)) within this subtree
			// (unbounded at the node's edges); keep the children that
			// intersect [start, end) and the separators strictly inside it.
			for ci := 0; ci <= nk; ci++ {
				if ci < nk && start != nil && bytes.Compare(n.key(ci), start) <= 0 {
					continue // child entirely below the range
				}
				if ci > 0 && end != nil && bytes.Compare(n.key(ci-1), end) >= 0 {
					break // this and all further children are past the range
				}
				if ci == 0 {
					next = append(next, storage.PageID(n.leftmostChild()))
				} else {
					next = append(next, storage.PageID(n.value(ci-1)))
				}
			}
			for i := 0; i < nk; i++ {
				k := n.key(i)
				if start != nil && bytes.Compare(k, start) <= 0 {
					continue
				}
				if end != nil && bytes.Compare(k, end) >= 0 {
					break
				}
				seps = append(seps, append([]byte(nil), k...))
			}
			fr.Latch.RUnlock()
			t.pool.Unpin(fr, false)
		}
		if hitLeaves {
			break
		}
		frontier = next
	}
	if len(seps) == 0 {
		return single, nil
	}
	// Separators from different levels interleave; order and de-dup them
	// (a separator can echo a descendant's boundary after splits).
	sort.Slice(seps, func(i, j int) bool { return bytes.Compare(seps[i], seps[j]) < 0 })
	uniq := seps[:1]
	for _, s := range seps[1:] {
		if !bytes.Equal(uniq[len(uniq)-1], s) {
			uniq = append(uniq, s)
		}
	}
	seps = uniq
	// Downsample to at most target-1 boundaries, evenly spaced over the
	// cells they delimit, so segment sizes stay within one subtree of
	// each other.
	if len(seps) > target-1 {
		m := len(seps) + 1
		picked := make([][]byte, 0, target-1)
		for i := 1; i < target; i++ {
			picked = append(picked, seps[i*m/target-1])
		}
		seps = picked
	}
	segs := make([]Segment, 0, len(seps)+1)
	lo := copyBytes(start)
	for _, s := range seps {
		segs = append(segs, Segment{Lo: lo, Hi: s})
		lo = s
	}
	return append(segs, Segment{Lo: lo, Hi: copyBytes(end)}), nil
}
