package btree

import (
	"bytes"

	"repro/internal/storage"
)

// EntryBlock is a vectorized batch of index entries filled by
// Cursor.NextBlock: key bytes packed into one flat slab delimited by
// offsets, values in a parallel slice. A block amortizes the per-row
// latch acquisition and bounds-check cost of Next — one leaf latch
// fills as many entries as the leaf holds (up to the batch cap).
//
// The key slab is block-owned (copied out under the leaf latch), so a
// block outlives the latch and can cross goroutines. Reset recycles
// the backing arrays.
type EntryBlock struct {
	keys []byte
	offs []int32 // len = Len()+1; entry i is keys[offs[i]:offs[i+1]]
	vals []uint64
}

// Len returns the number of entries in the block.
func (b *EntryBlock) Len() int { return len(b.vals) }

// Key returns entry i's key. It aliases the block's slab: valid until
// the next Reset.
func (b *EntryBlock) Key(i int) []byte { return b.keys[b.offs[i]:b.offs[i+1]] }

// Value returns entry i's value (a packed RID in index leaves).
func (b *EntryBlock) Value(i int) uint64 { return b.vals[i] }

// Reset empties the block, keeping capacity.
func (b *EntryBlock) Reset() {
	b.keys = b.keys[:0]
	b.offs = b.offs[:0]
	b.vals = b.vals[:0]
}

// push appends one entry. Caller holds the source leaf's latch.
func (b *EntryBlock) push(key []byte, val uint64) {
	if len(b.offs) == 0 {
		b.offs = append(b.offs, 0)
	}
	b.keys = append(b.keys, key...)
	b.offs = append(b.offs, int32(len(b.keys)))
	b.vals = append(b.vals, val)
}

// NextBlock fills b with up to max entries, advancing the cursor past
// them, and returns how many were served. Zero means the range is
// exhausted or the cursor failed (check Err). The cursor's own
// Key/Value track the last entry in the block, so NextBlock and Next
// interleave correctly and a Close mid-stream resumes after the block.
//
// Forward cursors fill across leaf boundaries — one latch acquisition
// per leaf — with the same version re-validation as Next; reverse
// cursors fall back to per-entry stepping (the reverse path re-descends
// on any version change, so there is no multi-entry latch hold to
// amortize).
func (c *Cursor) NextBlock(b *EntryBlock, max int) int {
	b.Reset()
	if max <= 0 || c.done || c.err != nil {
		return 0
	}
	if c.reverse {
		for b.Len() < max && c.nextReverse() {
			b.push(c.key, c.val)
		}
		return b.Len()
	}
	if c.fr == nil && !c.seekForward() {
		return 0
	}
	for {
		c.fr.Latch.RLock()
		n := asNode(c.fr.Data())
		if v := n.version(); c.stale || v != c.ver {
			c.pos = c.reposForward(n)
			c.ver = v
			c.stale = false
		}
		for c.pos < n.nKeys() && b.Len() < max {
			k := n.key(c.pos)
			if c.end != nil && bytes.Compare(k, c.end) >= 0 {
				c.fr.Latch.RUnlock()
				c.finish()
				return b.Len()
			}
			c.serveLocked(n, c.pos)
			c.pos++
			b.push(c.key, c.val)
		}
		if b.Len() >= max {
			c.fr.Latch.RUnlock()
			return b.Len()
		}
		next := storage.PageID(n.rightSibling())
		c.fr.Latch.RUnlock()
		c.t.pool.Unpin(c.fr, false)
		c.fr = nil
		if next == storage.InvalidPageID {
			c.done = true
			return b.Len()
		}
		fr, err := c.t.pool.Fetch(next)
		if err != nil {
			c.fail(err)
			return b.Len()
		}
		c.fetches++
		c.fr = fr
		// A split may have copied already-served keys into this sibling;
		// re-derive the position from the resume point.
		c.stale = true
	}
}
