package btree

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestTreeConcurrentReadersAndWriter runs parallel searchers and
// scanners against a writer inserting and deleting keys. Run under
// -race in CI; assertions check that readers only ever see values the
// writer could have written.
func TestTreeConcurrentReadersAndWriter(t *testing.T) {
	tr := newTestTree(t, 1024, 1024)
	const stable = 2000
	for i := 0; i < stable; i++ {
		if _, err := tr.Insert(intKey(i), uint64(i)+1); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	done := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				i := (g*131 + n) % stable
				n++
				v, found, err := tr.Search(intKey(i))
				if err != nil {
					errCh <- err
					return
				}
				if !found || v != uint64(i)+1 {
					errCh <- errBadRead
					return
				}
			}
		}(g)
	}
	// A scanner walking stable keys concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 20; round++ {
			count := 0
			err := tr.Scan(intKey(0), intKey(stable), func(k []byte, v uint64) bool {
				count++
				return true
			})
			if err != nil {
				errCh <- err
				return
			}
			if count != stable {
				errCh <- errBadRead
				return
			}
		}
	}()
	// Writer churns keys in a disjoint range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for round := 0; round < 10; round++ {
			for i := 0; i < 500; i++ {
				k := intKey(stable + i)
				if _, err := tr.Insert(k, uint64(round)); err != nil {
					errCh <- err
					return
				}
			}
			for i := 0; i < 500; i++ {
				if _, err := tr.Delete(intKey(stable + i)); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	if tr.Len() != stable {
		t.Errorf("Len = %d, want %d", tr.Len(), stable)
	}
}

type btreeTestErr string

func (e btreeTestErr) Error() string { return string(e) }

const errBadRead = btreeTestErr("reader observed impossible state")

func TestVisitAllLeavesCoversEveryKey(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 1500
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	var seen int
	err := tr.VisitAllLeaves(func(l *Leaf) bool {
		seen += l.NumKeys()
		for i := 0; i < l.NumKeys(); i++ {
			k := l.KeyAt(i)
			v := l.ValueAt(i)
			if binary.BigEndian.Uint64(k) != v {
				t.Errorf("leaf key/value mismatch")
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("VisitAllLeaves: %v", err)
	}
	if seen != n {
		t.Errorf("visited %d keys, want %d", seen, n)
	}
	// Early stop.
	visits := 0
	tr.VisitAllLeaves(func(l *Leaf) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early stop visited %d leaves", visits)
	}
}

func TestOpenReattachesTree(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	for i := 0; i < 300; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	reopened := Open(tr.Pool(), tr.Root(), tr.Height(), tr.Len())
	for i := 0; i < 300; i += 17 {
		v, found, err := reopened.Search(intKey(i))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("reopened Search(%d): %v %v %v", i, v, found, err)
		}
	}
	if err := reopened.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}
