package btree

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Leaf is the view of a pinned, latched leaf page handed to VisitLeaf
// callbacks. It exposes exactly what the index cache (internal/idxcache)
// needs: the lookup result, the free-space region, and the CSN /
// predicate-log header fields. It is only valid during the callback.
//
// nblb:carries-pin
type Leaf struct {
	fr        *buffer.Frame
	n         node
	exclusive bool
	dirty     bool
}

// PageID returns the leaf's page id.
func (l *Leaf) PageID() storage.PageID { return l.fr.ID() }

// Exclusive reports whether the visit holds the frame latch exclusively.
// Cache mutations (insert, swap, zero) are only legal when true; the
// visit acquires the exclusive latch with TryLock and falls back to a
// shared latch rather than waiting, implementing the paper's "give up a
// write operation if the latch is not immediately available".
func (l *Leaf) Exclusive() bool { return l.exclusive }

// Find looks up key within this leaf.
func (l *Leaf) Find(key []byte) (uint64, bool) {
	pos, found := l.n.search(key)
	if !found {
		return 0, false
	}
	return l.n.value(pos), true
}

// NumKeys returns the number of keys in the leaf.
func (l *Leaf) NumKeys() int { return l.n.nKeys() }

// KeyAt returns the key at position i (aliases the page).
func (l *Leaf) KeyAt(i int) []byte { return l.n.key(i) }

// ValueAt returns the value at position i.
func (l *Leaf) ValueAt(i int) uint64 { return l.n.value(i) }

// Data returns the whole page buffer.
func (l *Leaf) Data() []byte { return l.n.data }

// FreeRegion returns the [lo, hi) byte bounds of the page's free space —
// the index cache's home.
func (l *Leaf) FreeRegion() (lo, hi int) { return l.n.freeRegion() }

// CSN returns the page cache sequence number CSNp.
func (l *Leaf) CSN() uint32 { return l.n.CSN() }

// SetCSN stores CSNp. This is a cache-metadata write: it does not dirty
// the page, so it is volatile like the cache contents it guards.
func (l *Leaf) SetCSN(v uint32) { l.n.setCSN(v) }

// AppliedSeq returns the predicate-log sequence already applied here.
func (l *Leaf) AppliedSeq() uint32 { return l.n.appliedSeq() }

// SetAppliedSeq records the predicate-log position (volatile).
func (l *Leaf) SetAppliedSeq(v uint32) { l.n.setAppliedSeq(v) }

// CacheEntrySize returns the cache slot width last used on this page
// (0 = cache never initialized here).
func (l *Leaf) CacheEntrySize() int { return l.n.cacheEntrySize() }

// SetCacheEntrySize records the cache slot width (volatile).
func (l *Leaf) SetCacheEntrySize(v int) { l.n.setCacheEntrySize(v) }

// StablePoint returns the page offset S where the directory front and
// the key front would meet if the page filled completely — the paper's
// S = K/(K+D) × P adapted to this layout's orientation (directory grows
// up from the header, key cells grow down from the footer; the paper's
// figure has them mirrored). Cache entries nearest S are overwritten
// last as the page fills, so the cache concentrates hot items there.
//
// K is estimated as the mean cell size of the keys currently in the
// page; an empty page assumes a 24-byte cell.
func (l *Leaf) StablePoint() int {
	h := nodeHeaderSize
	pf := len(l.n.data) - nodeFooterSize
	avgCell := 24
	if k := l.n.nKeys(); k > 0 {
		avgCell = (pf - l.n.keyStart()) / k
		if avgCell < 1 {
			avgCell = 1
		}
	}
	nStar := float64(pf-h) / float64(dirEntrySize+avgCell)
	return h + int(nStar*float64(dirEntrySize))
}

// KeyRange returns the smallest and largest keys in the leaf (aliasing
// the page), or ok=false for an empty leaf. The predicate log uses it
// to decide whether an invalidation predicate could match this page.
func (l *Leaf) KeyRange() (min, max []byte, ok bool) {
	k := l.n.nKeys()
	if k == 0 {
		return nil, nil, false
	}
	return l.n.key(0), l.n.key(k - 1), true
}

// MarkDirty flags the page for write-back. Regular index maintenance
// uses it; cache operations never do.
func (l *Leaf) MarkDirty() { l.dirty = true }

// leafPool recycles Leaf views: &Leaf{} escapes to the heap via the
// visitor closure, and VisitLeaf runs once per point lookup.
var leafPool = sync.Pool{New: func() any { return new(Leaf) }}

// VisitLeaf pins the leaf covering key and runs fn over it. The frame
// latch is acquired — during the read-coupled descent, before the
// parent's latch is dropped — exclusively if that succeeds without
// blocking (enabling cache writes), otherwise shared; fn must check
// Leaf.Exclusive before mutating. The page is unpinned dirty only if fn
// called MarkDirty. The Leaf is recycled after fn returns; fn must not
// retain it. Writers to other leaves proceed concurrently with fn.
func (t *Tree) VisitLeaf(key []byte, fn func(l *Leaf)) error {
	fr, exclusive, err := t.descendLatched(func(n node) storage.PageID {
		return storage.PageID(n.childFor(key))
	}, leafVisit)
	if err != nil {
		return err
	}
	l := leafPool.Get().(*Leaf)
	*l = Leaf{fr: fr, n: asNode(fr.Data()), exclusive: exclusive}
	fn(l)
	if exclusive {
		fr.Latch.Unlock()
	} else {
		fr.Latch.RUnlock()
	}
	dirty := l.dirty
	*l = Leaf{}
	leafPool.Put(l)
	t.pool.Unpin(fr, dirty)
	return nil
}

// VisitAllLeaves runs fn over every leaf page left to right under the
// same latching protocol as VisitLeaf. Used for cache warming and for
// stats that need leaf internals. The walk does not couple latches
// across siblings, so leaves split mid-walk may be visited in their
// post-split shape.
func (t *Tree) VisitAllLeaves(fn func(l *Leaf) bool) error {
	id, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	for id != storage.InvalidPageID {
		fr, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		exclusive := fr.Latch.TryLock()
		if !exclusive {
			fr.Latch.RLock()
		}
		l := &Leaf{fr: fr, n: asNode(fr.Data()), exclusive: exclusive}
		cont := fn(l)
		next := storage.PageID(l.n.rightSibling())
		if exclusive {
			fr.Latch.Unlock()
		} else {
			fr.Latch.RUnlock()
		}
		t.pool.Unpin(fr, l.dirty)
		if !cont {
			return nil
		}
		id = next
	}
	return nil
}
