package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, pageSize, poolPages int) *Tree {
	t.Helper()
	disk, err := storage.NewMemDisk(pageSize)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	pool, err := buffer.NewPool(disk, poolPages)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	tr, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func intKey(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestTreeInsertSearch(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	for i := 0; i < 1000; i++ {
		ins, err := tr.Insert(intKey(i*2), uint64(i))
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		if !ins {
			t.Fatalf("Insert %d: reported duplicate", i)
		}
	}
	for i := 0; i < 1000; i++ {
		v, found, err := tr.Search(intKey(i * 2))
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		if !found || v != uint64(i) {
			t.Fatalf("key %d: found=%v v=%d", i*2, found, v)
		}
		// Absent keys between present ones.
		if _, found, _ := tr.Search(intKey(i*2 + 1)); found {
			t.Fatalf("key %d should be absent", i*2+1)
		}
	}
	if tr.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("tree of 1000 keys on 512B pages should have split; height=%d", tr.Height())
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestTreeUpsert(t *testing.T) {
	tr := newTestTree(t, 512, 64)
	if _, err := tr.Insert(intKey(1), 10); err != nil {
		t.Fatal(err)
	}
	ins, err := tr.Insert(intKey(1), 20)
	if err != nil {
		t.Fatal(err)
	}
	if ins {
		t.Error("second insert of same key should report update, not insert")
	}
	v, _, _ := tr.Search(intKey(1))
	if v != 20 {
		t.Errorf("upsert value = %d, want 20", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTreeDelete(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	for i := 0; i < 500; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	for i := 0; i < 500; i += 2 {
		found, err := tr.Delete(intKey(i))
		if err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if !found {
			t.Fatalf("Delete %d: not found", i)
		}
	}
	if found, _ := tr.Delete(intKey(0)); found {
		t.Error("double delete reported found")
	}
	for i := 0; i < 500; i++ {
		_, found, _ := tr.Search(intKey(i))
		if (i%2 == 0) == found {
			t.Fatalf("key %d: found=%v wrong after deletes", i, found)
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after deletes: %v", err)
	}
}

func TestTreeScan(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	for i := 0; i < 300; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	var got []uint64
	err := tr.Scan(intKey(50), intKey(100), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 50 {
		t.Fatalf("scan returned %d values, want 50", len(got))
	}
	for i, v := range got {
		if v != uint64(50+i) {
			t.Fatalf("scan[%d] = %d, want %d", i, v, 50+i)
		}
	}
	// Full scan.
	count := 0
	tr.Scan(nil, nil, func(k []byte, v uint64) bool { count++; return true })
	if count != 300 {
		t.Errorf("full scan %d values, want 300", count)
	}
	// Early stop.
	count = 0
	tr.Scan(nil, nil, func(k []byte, v uint64) bool { count++; return count < 10 })
	if count != 10 {
		t.Errorf("early-stop scan %d values, want 10", count)
	}
}

func TestTreeRandomizedAgainstModel(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	rng := rand.New(rand.NewSource(42))
	model := map[string]uint64{}
	for op := 0; op < 20000; op++ {
		k := intKey(rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			if _, err := tr.Insert(k, v); err != nil {
				t.Fatalf("op %d Insert: %v", op, err)
			}
			model[string(k)] = v
		case 2:
			found, err := tr.Delete(k)
			if err != nil {
				t.Fatalf("op %d Delete: %v", op, err)
			}
			_, want := model[string(k)]
			if found != want {
				t.Fatalf("op %d Delete found=%v want=%v", op, found, want)
			}
			delete(model, string(k))
		}
	}
	if int(tr.Len()) != len(model) {
		t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
	}
	for k, want := range model {
		v, found, err := tr.Search([]byte(k))
		if err != nil || !found || v != want {
			t.Fatalf("Search(%x) = %d,%v,%v want %d", k, v, found, err, want)
		}
	}
	// Scan order must match sorted model keys.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Scan(nil, nil, func(k []byte, v uint64) bool {
		if i >= len(keys) || !bytes.Equal(k, []byte(keys[i])) {
			t.Fatalf("scan position %d: key mismatch", i)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d keys, want %d", i, len(keys))
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestTreeVariableKeyLengths(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	rng := rand.New(rand.NewSource(7))
	model := map[string]uint64{}
	for i := 0; i < 2000; i++ {
		klen := 1 + rng.Intn(40)
		k := make([]byte, klen)
		rng.Read(k)
		v := rng.Uint64()
		if _, err := tr.Insert(k, v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		model[string(k)] = v
	}
	for k, want := range model {
		v, found, err := tr.Search([]byte(k))
		if err != nil || !found || v != want {
			t.Fatalf("Search: %v %v %v, want %d", v, found, err, want)
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestTreeRejectsBadKeys(t *testing.T) {
	tr := newTestTree(t, 512, 64)
	if _, err := tr.Insert(nil, 1); err == nil {
		t.Error("nil key should fail")
	}
	big := make([]byte, 512)
	if _, err := tr.Insert(big, 1); err == nil {
		t.Error("oversized key should fail")
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	for _, ff := range []float64{0.45, 0.68, 1.0} {
		ff := ff
		t.Run(fmt.Sprintf("ff=%.2f", ff), func(t *testing.T) {
			disk, _ := storage.NewMemDisk(1024)
			pool, _ := buffer.NewPool(disk, 1024)
			n := 5000
			i := 0
			tr, err := BulkLoad(pool, ff, func() ([]byte, uint64, bool) {
				if i >= n {
					return nil, 0, false
				}
				k := intKey(i)
				v := uint64(i)
				i++
				return k, v, true
			})
			if err != nil {
				t.Fatalf("BulkLoad: %v", err)
			}
			if tr.Len() != int64(n) {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			for j := 0; j < n; j += 97 {
				v, found, err := tr.Search(intKey(j))
				if err != nil || !found || v != uint64(j) {
					t.Fatalf("Search(%d): %v %v %v", j, v, found, err)
				}
			}
			st, err := tr.Stats()
			if err != nil {
				t.Fatalf("Stats: %v", err)
			}
			if st.MeanLeafFill < ff-0.12 || st.MeanLeafFill > ff+0.05 {
				t.Errorf("mean leaf fill %.3f, want ≈%.2f", st.MeanLeafFill, ff)
			}
			if err := tr.CheckIntegrity(); err != nil {
				t.Fatalf("integrity: %v", err)
			}
		})
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	disk, _ := storage.NewMemDisk(512)
	pool, _ := buffer.NewPool(disk, 64)
	keys := [][]byte{intKey(5), intKey(3)}
	i := 0
	_, err := BulkLoad(pool, 0.68, func() ([]byte, uint64, bool) {
		if i >= len(keys) {
			return nil, 0, false
		}
		k := keys[i]
		i++
		return k, 0, true
	})
	if err == nil {
		t.Error("unsorted bulk load should fail")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	disk, _ := storage.NewMemDisk(512)
	pool, _ := buffer.NewPool(disk, 64)
	tr, err := BulkLoad(pool, 0.68, func() ([]byte, uint64, bool) { return nil, 0, false })
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if tr.Len() != 0 {
		t.Errorf("empty bulk load Len = %d", tr.Len())
	}
	if _, found, _ := tr.Search(intKey(1)); found {
		t.Error("empty tree found a key")
	}
}

func TestTreeInsertsAfterBulkLoad(t *testing.T) {
	disk, _ := storage.NewMemDisk(512)
	pool, _ := buffer.NewPool(disk, 512)
	i := 0
	tr, err := BulkLoad(pool, 0.68, func() ([]byte, uint64, bool) {
		if i >= 1000 {
			return nil, 0, false
		}
		k := intKey(i * 2)
		v := uint64(i)
		i++
		return k, v, true
	})
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	// Interleave new keys between bulk-loaded ones.
	for j := 0; j < 1000; j++ {
		if _, err := tr.Insert(intKey(j*2+1), uint64(j)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if tr.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", tr.Len())
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestStatsCounts(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	for i := 0; i < 500; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Keys != 500 {
		t.Errorf("Stats.Keys = %d", st.Keys)
	}
	if st.KeyBytes != 500*8 {
		t.Errorf("Stats.KeyBytes = %d, want %d", st.KeyBytes, 500*8)
	}
	if st.LeafPages == 0 || st.Pages != st.LeafPages+st.InternalPages {
		t.Errorf("page counts inconsistent: %+v", st)
	}
	if st.SizeBytes != int64(st.Pages)*512 {
		t.Errorf("SizeBytes = %d", st.SizeBytes)
	}
}

func TestVisitLeafFindsKey(t *testing.T) {
	tr := newTestTree(t, 512, 256)
	for i := 0; i < 200; i++ {
		tr.Insert(intKey(i), uint64(i+1000))
	}
	visited := false
	err := tr.VisitLeaf(intKey(42), func(l *Leaf) {
		visited = true
		v, found := l.Find(intKey(42))
		if !found || v != 1042 {
			t.Errorf("Find = %d,%v", v, found)
		}
		if !l.Exclusive() {
			t.Error("uncontended visit should hold exclusive latch")
		}
		lo, hi := l.FreeRegion()
		if lo >= hi {
			t.Error("leaf should have free space")
		}
		min, max, ok := l.KeyRange()
		if !ok || bytes.Compare(min, max) > 0 {
			t.Error("KeyRange wrong")
		}
	})
	if err != nil {
		t.Fatalf("VisitLeaf: %v", err)
	}
	if !visited {
		t.Fatal("callback not invoked")
	}
}

func TestStablePointWithinFreeRegion(t *testing.T) {
	tr := newTestTree(t, 1024, 64)
	for i := 0; i < 20; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	tr.VisitLeaf(intKey(0), func(l *Leaf) {
		s := l.StablePoint()
		lo, hi := l.FreeRegion()
		// S should lie between the header and the key region — close to
		// the directory end since keys are much larger than pointers.
		if s < lo-64 || s > hi {
			t.Errorf("stable point %d outside plausible range [%d,%d]", s, lo, hi)
		}
	})
}
