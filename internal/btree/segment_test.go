package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// collectSegments scans every segment serially and returns the
// concatenated values.
func collectSegments(t *testing.T, tr *Tree, segs []Segment) []uint64 {
	t.Helper()
	var got []uint64
	for _, s := range segs {
		c := tr.NewCursor(s.Lo, s.Hi)
		got = append(got, collectCursor(t, c)...)
		c.Close()
	}
	return got
}

func TestPlanSegmentsCoversRange(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(intKey(i), uint64(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for _, tc := range []struct {
		lo, hi []byte
		target int
		want   int // expected row count
		first  uint64
	}{
		{nil, nil, 1, n, 0},
		{nil, nil, 4, n, 0},
		{nil, nil, 16, n, 0},
		{nil, nil, 100000, n, 0}, // clamped, still exact
		{intKey(123), intKey(4321), 8, 4321 - 123, 123},
		{intKey(123), intKey(124), 8, 1, 123},
		{intKey(4000), intKey(4000), 8, 0, 0},
	} {
		segs, err := tr.PlanSegments(tc.lo, tc.hi, tc.target)
		if err != nil {
			t.Fatalf("PlanSegments: %v", err)
		}
		if tc.target > 1 && len(segs) > tc.target {
			t.Fatalf("target=%d produced %d segments", tc.target, len(segs))
		}
		// Segments must chain exactly: seg[0].Lo == lo, seg[i].Hi ==
		// seg[i+1].Lo, last Hi == hi.
		if !bytes.Equal(segs[0].Lo, tc.lo) || !bytes.Equal(segs[len(segs)-1].Hi, tc.hi) {
			t.Fatalf("segments do not span [lo,hi): %v", segs)
		}
		for i := 0; i+1 < len(segs); i++ {
			if !bytes.Equal(segs[i].Hi, segs[i+1].Lo) {
				t.Fatalf("gap between segment %d and %d", i, i+1)
			}
			if bytes.Compare(segs[i].Lo, segs[i].Hi) >= 0 {
				t.Fatalf("segment %d is empty or inverted: [%x, %x)", i, segs[i].Lo, segs[i].Hi)
			}
		}
		got := collectSegments(t, tr, segs)
		if len(got) != tc.want {
			t.Fatalf("target=%d rows=%d want %d", tc.target, len(got), tc.want)
		}
		for i, v := range got {
			if v != tc.first+uint64(i) {
				t.Fatalf("row %d = %d, want %d", i, v, tc.first+uint64(i))
			}
		}
	}
}

func TestPlanSegmentsBalance(t *testing.T) {
	tr := newTestTree(t, 512, 1024)
	const n = 20000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	const target = 8
	segs, err := tr.PlanSegments(nil, nil, target)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected a multi-segment plan for %d rows, got %d segments", n, len(segs))
	}
	sizes := make([]int, len(segs))
	total := 0
	for i, s := range segs {
		c := tr.NewCursor(s.Lo, s.Hi)
		sizes[i] = len(collectCursor(t, c))
		c.Close()
		total += sizes[i]
	}
	if total != n {
		t.Fatalf("segments cover %d rows, want %d", total, n)
	}
	// Even downsampling should keep segments within ~3x of the mean;
	// the boundaries land on subtree edges, not arbitrary keys, so a
	// loose bound is enough to catch a degenerate plan.
	mean := n / len(segs)
	for i, sz := range sizes {
		if sz > 3*mean {
			t.Fatalf("segment %d holds %d rows (mean %d): plan is degenerate %v", i, sz, mean, sizes)
		}
	}
}

func TestPlanSegmentsShallowTree(t *testing.T) {
	tr := newTestTree(t, 512, 64)
	for i := 0; i < 5; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	segs, err := tr.PlanSegments(nil, nil, 8)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("height-1 tree should plan a single segment, got %d", len(segs))
	}
	if got := collectSegments(t, tr, segs); len(got) != 5 {
		t.Fatalf("rows=%d want 5", len(got))
	}
}

func TestNextBlockMatchesNext(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	for _, max := range []int{1, 7, 64, 1000} {
		c := tr.NewCursor(intKey(10), intKey(2500))
		var got []uint64
		var b EntryBlock
		for {
			k := c.NextBlock(&b, max)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				if binary.BigEndian.Uint64(b.Key(i)) != b.Value(i) {
					t.Fatalf("key/value mismatch in block at %d", i)
				}
				got = append(got, b.Value(i))
			}
		}
		if err := c.Err(); err != nil {
			t.Fatalf("cursor error: %v", err)
		}
		c.Close()
		if len(got) != 2490 {
			t.Fatalf("max=%d rows=%d want 2490", max, len(got))
		}
		for i, v := range got {
			if v != uint64(10+i) {
				t.Fatalf("max=%d row %d = %d", max, i, v)
			}
		}
	}
}

func TestNextBlockInterleavesWithNext(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	c := tr.NewCursor(nil, nil)
	defer c.Close()
	var got []uint64
	var b EntryBlock
	for {
		// Alternate one block fill with one scalar step, with a Close in
		// between to exercise the re-seek path.
		k := c.NextBlock(&b, 37)
		for i := 0; i < k; i++ {
			got = append(got, b.Value(i))
		}
		c.Close()
		if !c.Next() {
			break
		}
		got = append(got, c.Value())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if len(got) != n {
		t.Fatalf("rows=%d want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}

func TestNextBlockReverse(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	c := tr.NewCursor(intKey(50), intKey(450), Reverse())
	defer c.Close()
	var got []uint64
	var b EntryBlock
	for {
		k := c.NextBlock(&b, 33)
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			got = append(got, b.Value(i))
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if len(got) != 400 || got[0] != 449 || got[len(got)-1] != 50 {
		t.Fatalf("reverse block scan: len=%d first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
}

// TestSegmentScanRacingSplits runs segment block-scans concurrently
// with inserts that split leaves mid-scan. Every row that existed
// before the writers started must be served exactly once per segment
// plan (writer rows may or may not appear — they land outside the
// scanned range).
func TestSegmentScanRacingSplits(t *testing.T) {
	tr := newTestTree(t, 512, 2048)
	const base = 8000
	// Pre-load even keys 0..2*base; writers insert odd keys to force
	// splits inside the scanned range without changing its membership.
	for i := 0; i < base; i++ {
		if _, err := tr.Insert(intKey(2*i), uint64(2*i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	segs, err := tr.PlanSegments(nil, nil, 8)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 2 {
				select {
				case <-stop:
					return
				default:
				}
				tr.Insert(intKey(2*(i%base)+1), uint64(2*(i%base)+1))
			}
		}(w)
	}
	var scanners sync.WaitGroup
	errs := make(chan error, len(segs))
	rows := make([][]uint64, len(segs))
	for si, s := range segs {
		scanners.Add(1)
		go func(si int, s Segment) {
			defer scanners.Done()
			c := tr.NewCursor(s.Lo, s.Hi)
			defer c.Close()
			var b EntryBlock
			for {
				k := c.NextBlock(&b, 64)
				if k == 0 {
					break
				}
				for i := 0; i < k; i++ {
					rows[si] = append(rows[si], b.Value(i))
				}
			}
			if err := c.Err(); err != nil {
				errs <- fmt.Errorf("segment %d: %w", si, err)
			}
		}(si, s)
	}
	scanners.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[uint64]int)
	var prev uint64
	first := true
	for _, rs := range rows {
		for _, v := range rs {
			if !first && v <= prev {
				t.Fatalf("segment concatenation not ordered: %d after %d", v, prev)
			}
			prev, first = v, false
			seen[v]++
		}
	}
	for i := 0; i < base; i++ {
		switch got := seen[uint64(2*i)]; got {
		case 1:
		case 0:
			t.Fatalf("pre-loaded key %d lost", 2*i)
		default:
			t.Fatalf("pre-loaded key %d served %d times", 2*i, got)
		}
	}
	for v, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("key %d served %d times", v, cnt)
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("post-race integrity: %v", err)
	}
}
