package btree

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func collectCursor(t *testing.T, c *Cursor) []uint64 {
	t.Helper()
	var got []uint64
	for c.Next() {
		if binary.BigEndian.Uint64(c.Key()) != c.Value() {
			t.Fatalf("key/value mismatch: key=%d value=%d", binary.BigEndian.Uint64(c.Key()), c.Value())
		}
		got = append(got, c.Value())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return got
}

func TestCursorForwardFullAndBounded(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(intKey(i), uint64(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	c := tr.NewCursor(nil, nil)
	defer c.Close()
	got := collectCursor(t, c)
	if len(got) != n {
		t.Fatalf("full scan: %d keys, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("full scan out of order at %d: %d", i, v)
		}
	}
	// Bounded: [100, 250).
	c = tr.NewCursor(intKey(100), intKey(250))
	defer c.Close()
	got = collectCursor(t, c)
	if len(got) != 150 || got[0] != 100 || got[len(got)-1] != 249 {
		t.Fatalf("bounded scan: len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
}

func TestCursorReverse(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 1500
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	c := tr.NewCursor(nil, nil, Reverse())
	defer c.Close()
	got := collectCursor(t, c)
	if len(got) != n {
		t.Fatalf("reverse scan: %d keys, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(n-1-i) {
			t.Fatalf("reverse scan out of order at %d: %d", i, v)
		}
	}
	// Bounded reverse: [100, 250) served as 249..100.
	c = tr.NewCursor(intKey(100), intKey(250), Reverse())
	defer c.Close()
	got = collectCursor(t, c)
	if len(got) != 150 || got[0] != 249 || got[len(got)-1] != 100 {
		t.Fatalf("bounded reverse: len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
}

func TestCursorReverseAcrossEmptiedLeaves(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 1200
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	// Empty a wide middle band so several leaves hold zero keys: the
	// targeted reverse descent lands on them and must fall back to the
	// chain walk. No node merging means the leaves stay in the chain.
	for i := 200; i < 1000; i++ {
		if _, err := tr.Delete(intKey(i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	c := tr.NewCursor(nil, nil, Reverse())
	defer c.Close()
	got := collectCursor(t, c)
	if len(got) != 400 {
		t.Fatalf("reverse over gap: %d keys, want 400", len(got))
	}
	for i := 0; i < 200; i++ {
		if got[i] != uint64(n-1-i) {
			t.Fatalf("upper band wrong at %d: %d", i, got[i])
		}
		if got[200+i] != uint64(199-i) {
			t.Fatalf("lower band wrong at %d: %d", i, got[200+i])
		}
	}
}

func TestCursorOneFetchPerLeaf(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.LeafPages < 10 {
		t.Fatalf("want a multi-leaf tree, got %d leaves", st.LeafPages)
	}
	c := tr.NewCursor(nil, nil)
	defer c.Close()
	if got := collectCursor(t, c); len(got) != n {
		t.Fatalf("scanned %d keys", len(got))
	}
	if c.LeafFetches() != int64(st.LeafPages) {
		t.Errorf("LeafFetches = %d, want %d (one per leaf, no re-descent)",
			c.LeafFetches(), st.LeafPages)
	}
}

func TestCursorResumableAfterClose(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	c := tr.NewCursor(nil, nil)
	var got []uint64
	for i := 0; i < 300 && c.Next(); i++ {
		got = append(got, c.Value())
	}
	c.Close() // releases the pin mid-scan
	c.Close() // double close is a no-op
	if pins := tr.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("after Close: %d pinned frames, want 0", pins)
	}
	for c.Next() { // resumes from the last served key via a fresh descent
		got = append(got, c.Value())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if len(got) != n {
		t.Fatalf("resumed scan served %d keys, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("resumed scan out of order at %d: %d", i, v)
		}
	}
}

func TestCursorPinAccounting(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	for i := 0; i < 2000; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	c := tr.NewCursor(nil, nil)
	if !c.Next() {
		t.Fatal("empty cursor")
	}
	if pins := tr.Pool().PinnedFrames(); pins != 1 {
		t.Fatalf("mid-scan: %d pinned frames, want exactly the cursor's leaf", pins)
	}
	c.Close()
	if pins := tr.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("after Close: %d pinned frames, want 0", pins)
	}
	// Exhaustion must also release the pin without an explicit Close.
	c2 := tr.NewCursor(intKey(1990), nil)
	for c2.Next() {
	}
	if pins := tr.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("after exhaustion: %d pinned frames, want 0", pins)
	}
}

// TestCursorSurvivesLeafSplit is the scan-vs-split regression test: a
// leaf splitting underneath a paused cursor moves upper-half keys to a
// new right sibling. The pre-cursor Scan blocked writers for its whole
// lifetime, so this could only bite once scans stopped holding the tree
// lock; the cursor must re-validate bounds on each leaf and serve every
// pre-existing key exactly once.
func TestCursorSurvivesLeafSplit(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	// Sparse keys leave room to force splits mid-range later.
	const n = 400
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i*10), uint64(i*10))
	}
	c := tr.NewCursor(nil, nil)
	defer c.Close()
	var got []uint64
	for i := 0; i < 5; i++ {
		if !c.Next() {
			t.Fatal("cursor ended early")
		}
		got = append(got, c.Value())
	}
	// Split the cursor's current leaf (and several after it) by packing
	// new keys immediately ahead of the scan position.
	at := int(got[len(got)-1])
	for i := 1; i <= 200; i++ {
		if _, err := tr.Insert(intKey(at+i), uint64(at+i)); err != nil {
			t.Fatalf("Insert during scan: %v", err)
		}
	}
	seen := map[uint64]int{}
	for c.Next() {
		seen[c.Value()]++
		got = append(got, c.Value())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	// Every pre-existing key must appear exactly once, in order.
	for i := 0; i < n; i++ {
		k := uint64(i * 10)
		if k <= got[4] {
			continue // served before the splits
		}
		if seen[k] != 1 {
			t.Errorf("key %d served %d times after split, want 1", k, seen[k])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order after split: got[%d]=%d ≤ got[%d]=%d", i, got[i], i-1, got[i-1])
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestCursorEmptyAndSingleLeaf(t *testing.T) {
	tr := newTestTree(t, 512, 64)
	c := tr.NewCursor(nil, nil)
	if c.Next() {
		t.Fatal("empty tree served a key")
	}
	if c.Err() != nil {
		t.Fatalf("empty tree error: %v", c.Err())
	}
	c = tr.NewCursor(nil, nil, Reverse())
	if c.Next() {
		t.Fatal("empty tree served a key in reverse")
	}
	tr.Insert([]byte("only"), 7)
	c = tr.NewCursor(nil, nil)
	defer c.Close()
	if !c.Next() || !bytes.Equal(c.Key(), []byte("only")) || c.Value() != 7 {
		t.Fatalf("single-key scan: key=%q value=%d", c.Key(), c.Value())
	}
	if c.Next() {
		t.Fatal("single-key scan served a second key")
	}
}

func TestCursorEntryVisitor(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	visits := 0
	c := tr.NewCursor(nil, nil, WithEntryVisitor(func(l *Leaf, pos int) {
		if l.Exclusive() {
			t.Error("entry visitor must see a shared latch")
		}
		if l.ValueAt(pos) != uint64(visits) {
			t.Errorf("visitor pos mismatch: %d vs %d", l.ValueAt(pos), visits)
		}
		visits++
	}))
	defer c.Close()
	if got := collectCursor(t, c); len(got) != n || visits != n {
		t.Fatalf("served %d, visited %d, want %d", len(got), visits, n)
	}
}

// TestReverseCursorSurvivesLeafSplit mirrors TestCursorSurvivesLeafSplit
// for the descending direction: a split of the paused cursor's pinned
// leaf moves keys below the scan position into a right sibling the
// reverse walk can't reach by going left. The version check must force
// a fresh descent so no pre-existing key is skipped.
func TestReverseCursorSurvivesLeafSplit(t *testing.T) {
	tr := newTestTree(t, 512, 512)
	const n = 400
	for i := 0; i < n; i++ {
		tr.Insert(intKey(i*10), uint64(i*10))
	}
	c := tr.NewCursor(nil, nil, Reverse())
	defer c.Close()
	var got []uint64
	for i := 0; i < 5; i++ {
		if !c.Next() {
			t.Fatal("cursor ended early")
		}
		got = append(got, c.Value())
	}
	// Split the pinned leaf by packing keys immediately below the scan
	// position — the keys the reverse walk is about to serve.
	at := int(got[len(got)-1])
	for i := 1; i <= 200; i++ {
		if _, err := tr.Insert(intKey(at-i), uint64(at-i)); err != nil {
			t.Fatalf("Insert during reverse scan: %v", err)
		}
	}
	seen := map[uint64]int{}
	for c.Next() {
		if len(got) > 0 && c.Value() >= got[len(got)-1] {
			t.Fatalf("out of order: %d after %d", c.Value(), got[len(got)-1])
		}
		seen[c.Value()]++
		got = append(got, c.Value())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	for i := 0; i < n; i++ {
		k := uint64(i * 10)
		if k >= got[4] {
			continue // served before the splits
		}
		if seen[k] != 1 {
			t.Errorf("key %d served %d times after split, want 1", k, seen[k])
		}
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}
