package btree

import (
	"bytes"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// BulkLoad builds a tree from strictly increasing (key, value) pairs,
// filling every node to the given fill factor (fraction of usable page
// bytes, 0 < ff ≤ 1).
//
// The fill factor is the experiment knob of the whole paper: 0.68 is
// the canonical random-insert steady state [Yao 1978], 0.45 matches the
// paper's CarTel measurement, and 1.0 is the fully compacted read-only
// layout that leaves the index cache no room at all.
func BulkLoad(pool *buffer.Pool, ff float64, next func() (key []byte, value uint64, ok bool)) (*Tree, error) {
	if ff <= 0 || ff > 1 {
		return nil, fmt.Errorf("btree: fill factor must be in (0, 1], got %g", ff)
	}
	type levelEntry struct {
		firstKey []byte
		page     storage.PageID
	}
	var leaves []levelEntry

	usable := pool.Disk().PageSize() - nodeHeaderSize - nodeFooterSize
	budget := int(float64(usable) * ff)

	var (
		cur     *buffer.Frame
		curNode node
		prevKey []byte
		count   int64
		longest int
	)
	flush := func() {
		if cur == nil {
			return
		}
		pool.Unpin(cur, true)
		cur = nil
	}
	newLeaf := func() error {
		fr, err := pool.NewPage()
		if err != nil {
			return err
		}
		n := initNode(fr.Data(), nodeLeaf)
		if cur != nil {
			curNode.setRightSibling(uint64(fr.ID()))
			n.setLeftSibling(uint64(cur.ID()))
			flush()
		}
		cur, curNode = fr, n
		return nil
	}

	for {
		key, value, ok := next()
		if !ok {
			break
		}
		if len(key) == 0 {
			flush()
			return nil, fmt.Errorf("btree: empty key in bulk load")
		}
		if prevKey != nil && bytes.Compare(prevKey, key) >= 0 {
			flush()
			return nil, fmt.Errorf("btree: bulk load keys not strictly increasing at %q", key)
		}
		prevKey = append(prevKey[:0], key...)
		if len(key) > longest {
			longest = len(key)
		}
		need := cellSize(len(key)) + dirEntrySize
		if cur == nil || curNode.usedBytes()+need > budget || !curNode.canInsert(len(key)) {
			if cur != nil && curNode.nKeys() == 0 {
				flush()
				return nil, fmt.Errorf("btree: key of %d bytes exceeds bulk-load budget", len(key))
			}
			if err := newLeaf(); err != nil {
				flush()
				return nil, err
			}
			leaves = append(leaves, levelEntry{firstKey: append([]byte(nil), key...), page: cur.ID()})
		}
		if err := curNode.insertAt(curNode.nKeys(), key, value); err != nil {
			flush()
			return nil, fmt.Errorf("btree: bulk leaf insert: %w", err)
		}
		count++
	}
	flush()

	if len(leaves) == 0 {
		// Empty input: fresh empty tree.
		return New(pool)
	}

	// Build internal levels bottom-up until a single node remains.
	level := leaves
	height := 1
	for len(level) > 1 {
		var parents []levelEntry
		var (
			pfr *buffer.Frame
			pn  node
		)
		flushParent := func() {
			if pfr != nil {
				pool.Unpin(pfr, true)
				pfr = nil
			}
		}
		for i, e := range level {
			if pfr == nil {
				fr, err := pool.NewPage()
				if err != nil {
					flushParent()
					return nil, err
				}
				pn = initNode(fr.Data(), nodeInternal)
				pfr = fr
				pn.setLeftmostChild(uint64(e.page))
				parents = append(parents, levelEntry{firstKey: e.firstKey, page: fr.ID()})
				continue
			}
			need := cellSize(len(e.firstKey)) + dirEntrySize
			if pn.usedBytes()+need > budget || !pn.canInsert(len(e.firstKey)) {
				flushParent()
				// Re-process this entry as the start of a new parent.
				fr, err := pool.NewPage()
				if err != nil {
					return nil, err
				}
				pn = initNode(fr.Data(), nodeInternal)
				pfr = fr
				pn.setLeftmostChild(uint64(e.page))
				parents = append(parents, levelEntry{firstKey: e.firstKey, page: fr.ID()})
				continue
			}
			if err := pn.insertAt(pn.nKeys(), e.firstKey, uint64(e.page)); err != nil {
				flushParent()
				return nil, fmt.Errorf("btree: bulk internal insert: %w", err)
			}
			_ = i
		}
		flushParent()
		level = parents
		height++
	}

	t := &Tree{pool: pool, root: level[0].page}
	t.height.Store(int64(height))
	t.numKeys.Store(count)
	// Seed the safe-node separator bound with the longest loaded key, so
	// post-load inserts get accurate safety checks from the start.
	t.maxSepLen.Store(int64(longest))
	return t, nil
}

// PairSource adapts a slice of (key, value) pairs into the iterator
// BulkLoad consumes.
type PairSource struct {
	Keys   [][]byte
	Values []uint64
	i      int
}

// Next implements the BulkLoad iterator contract.
func (p *PairSource) Next() ([]byte, uint64, bool) {
	if p.i >= len(p.Keys) {
		return nil, 0, false
	}
	k, v := p.Keys[p.i], p.Values[p.i]
	p.i++
	return k, v, true
}
