// Package wal implements the redo-only write-ahead log underpinning
// the engine's durability. Records are checksummed, LSN-ordered frames
// appended to a single file:
//
//	[u32 frameLen][u32 crc][u64 LSN][u8 type][payload]
//
// where frameLen counts the LSN, type, and payload bytes (the region
// the CRC-32C covers). LSNs are assigned densely by Append; a file
// therefore holds a contiguous run of LSNs and recovery detects a torn
// tail as the first frame whose length, checksum, or LSN sequencing is
// invalid, truncating the log there.
//
// The log knows nothing about record semantics — payloads are opaque
// and the type byte belongs to the caller (internal/core). What it does
// own is the commit protocol: Append is cheap (one buffered write under
// a mutex), and Commit implements group commit — concurrent committers
// park on a condition variable while one leader runs a single fsync
// covering every record appended so far, then wakes the group.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	// frameOverhead is the on-disk size of a frame minus its payload.
	frameOverhead = 4 + 4 + 8 + 1
	// maxFrame caps a frame so a corrupt length field cannot drive a
	// giant allocation during a recovery scan.
	maxFrame = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// testHook receives named execution points ("wal:append", "wal:synced",
// ...) when installed via SetTestHook. The crash-matrix harness uses it
// to SIGKILL the process at precise pipeline stages.
var testHook atomic.Pointer[func(string)]

// SetTestHook installs (or, with nil, removes) the process-wide test
// hook. Test-only.
func SetTestHook(fn func(string)) {
	if fn == nil {
		testHook.Store(nil)
		return
	}
	testHook.Store(&fn)
}

// TestPoint invokes the test hook, if installed, with the named point.
// Exported so internal/core can mark checkpoint stages with the same
// hook the log uses for append stages.
func TestPoint(name string) {
	if fn := testHook.Load(); fn != nil {
		(*fn)(name)
	}
}

// Stats reports log activity counters.
type Stats struct {
	Appends int64 // records appended
	Syncs   int64 // fsyncs issued (group commit coalesces these)
	Bytes   int64 // current log file size
}

// Log is an append-only redo log over a single file. All methods are
// safe for concurrent use.
type Log struct {
	mu           sync.Mutex // serializes file writes, fsync, truncation; nblb:lock wal-mu
	f            *os.File
	path         string
	offset       int64
	nextLSN      uint64
	lastAppended uint64
	closed       bool
	frameBuf     []byte // append scratch, reused under mu

	synced  atomic.Uint64 // highest LSN known durable
	appends atomic.Int64
	syncs   atomic.Int64

	cmu     sync.Mutex // group-commit leader election; nblb:lock wal-commit-mu
	cond    *sync.Cond
	syncing bool
}

// Open opens (or creates) the log at path, scans the valid record
// prefix, and truncates any torn tail so the file ends on a frame
// boundary. The returned log appends after the last valid record.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, nextLSN: 1}
	l.cond = sync.NewCond(&l.cmu)
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// scan walks the file from the start, validating each frame, and
// truncates the file at the first invalid one.
func (l *Log) scan() error {
	st, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	size := st.Size()
	var off int64
	var last uint64
	hdr := make([]byte, 8)
	for {
		if size-off < frameOverhead {
			break
		}
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			break
		}
		flen := int64(binary.LittleEndian.Uint32(hdr))
		if flen < 9 || flen > maxFrame || off+8+flen > size {
			break
		}
		body := make([]byte, flen)
		if _, err := l.f.ReadAt(body, off+8); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
			break
		}
		lsn := binary.LittleEndian.Uint64(body)
		if last != 0 && lsn != last+1 {
			break
		}
		last = lsn
		off += 8 + flen
	}
	if off < size {
		if err := l.f.Truncate(off); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	l.offset = off
	l.lastAppended = last
	if last > 0 {
		l.nextLSN = last + 1
	}
	// Everything that survived the scan is on disk; whether it is
	// *durable* is unknowable post-crash, but recovery replays it
	// anyway, so advertise it as synced.
	l.synced.Store(last)
	return nil
}

// Append writes one record and returns its LSN. The record is in the
// OS page cache afterwards but not durable until Sync (or a Commit
// covering the LSN) completes.
//
// nblb:blocking-io
func (l *Log) Append(typ uint8, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	lsn := l.nextLSN
	if need := 8 + 9 + len(payload); cap(l.frameBuf) < need {
		l.frameBuf = make([]byte, need)
	}
	frame := l.frameBuf[:8+9+len(payload)]
	binary.LittleEndian.PutUint32(frame, uint32(9+len(payload)))
	binary.LittleEndian.PutUint64(frame[8:], lsn)
	frame[16] = typ
	copy(frame[17:], payload)
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
	if testHook.Load() != nil && len(frame) > 12 {
		// Split the write so a crash hook between the halves leaves a
		// torn record on disk — the tail-repair path's test surface.
		half := len(frame) / 2
		if _, err := l.f.WriteAt(frame[:half], l.offset); err != nil {
			return 0, fmt.Errorf("wal: append: %w", err)
		}
		TestPoint("wal:append-partial")
		if _, err := l.f.WriteAt(frame[half:], l.offset+int64(half)); err != nil {
			return 0, fmt.Errorf("wal: append: %w", err)
		}
	} else if _, err := l.f.WriteAt(frame, l.offset); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.offset += int64(len(frame))
	l.nextLSN++
	l.lastAppended = lsn
	l.appends.Add(1)
	TestPoint("wal:append")
	return lsn, nil
}

// Sync makes every appended record durable.
//
// nblb:blocking-io
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync on closed log")
	}
	target := l.lastAppended
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.synced.Store(target)
	l.syncs.Add(1)
	TestPoint("wal:synced")
	return nil
}

// Commit blocks until the record at lsn is durable, using group commit:
// the first committer to arrive becomes the leader and runs one fsync
// covering every record appended so far; the rest park on a condition
// variable and are woken by the leader's broadcast. Under concurrency
// this amortizes one fsync over many commits.
//
// nblb:blocking-io
func (l *Log) Commit(lsn uint64) error {
	if l.synced.Load() >= lsn {
		return nil
	}
	l.cmu.Lock()
	for l.synced.Load() < lsn {
		if !l.syncing {
			l.syncing = true
			l.cmu.Unlock()
			err := l.Sync()
			l.cmu.Lock()
			l.syncing = false
			l.cond.Broadcast()
			if err != nil {
				l.cmu.Unlock()
				return err
			}
			continue
		}
		l.cond.Wait()
	}
	l.cmu.Unlock()
	return nil
}

// SyncedLSN returns the highest LSN known durable.
func (l *Log) SyncedLSN() uint64 { return l.synced.Load() }

// AppendedLSN returns the highest LSN appended.
func (l *Log) AppendedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastAppended
}

// Size returns the current log file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offset
}

// Stats returns activity counters.
func (l *Log) Stats() Stats {
	return Stats{Appends: l.appends.Load(), Syncs: l.syncs.Load(), Bytes: l.Size()}
}

// Replay calls fn for every record with LSN ≥ from, in LSN order.
// Intended for recovery (no concurrent appends).
func (l *Log) Replay(from uint64, fn func(lsn uint64, typ uint8, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayLocked(from, fn)
}

func (l *Log) replayLocked(from uint64, fn func(lsn uint64, typ uint8, payload []byte) error) error {
	var off int64
	hdr := make([]byte, 8)
	for off < l.offset {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		flen := int64(binary.LittleEndian.Uint32(hdr))
		body := make([]byte, flen)
		if _, err := l.f.ReadAt(body, off+8); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		lsn := binary.LittleEndian.Uint64(body)
		if lsn >= from {
			if err := fn(lsn, body[8], body[9:]); err != nil {
				return err
			}
		}
		off += 8 + flen
	}
	return nil
}

// TruncateTo drops every record with LSN < keep by streaming the
// survivors to a temp file and atomically renaming it over the log.
// Called after a checkpoint makes the dropped prefix redundant.
//
// nblb:blocking-io
func (l *Log) TruncateTo(keep uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: truncate on closed log")
	}
	tmpPath := l.path + ".tmp"
	tf, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	var kept int64
	var off int64
	hdr := make([]byte, 8)
	for off < l.offset {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			tf.Close()
			return fmt.Errorf("wal: truncate read: %w", err)
		}
		flen := int64(binary.LittleEndian.Uint32(hdr))
		frame := make([]byte, 8+flen)
		if _, err := l.f.ReadAt(frame, off); err != nil {
			tf.Close()
			return fmt.Errorf("wal: truncate read: %w", err)
		}
		if binary.LittleEndian.Uint64(frame[8:]) >= keep {
			if _, err := tf.WriteAt(frame, kept); err != nil {
				tf.Close()
				return fmt.Errorf("wal: truncate write: %w", err)
			}
			kept += 8 + flen
		}
		off += 8 + flen
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("wal: truncate close: %w", err)
	}
	TestPoint("wal:truncate-before-rename")
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("wal: truncate rename: %w", err)
	}
	TestPoint("wal:truncate-after-rename")
	syncDir(filepath.Dir(l.path))
	old := l.f
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate reopen: %w", err)
	}
	old.Close()
	l.f = nf
	l.offset = kept
	return nil
}

// Close closes the log file. Pending records are not synced; callers
// that need durability sync (or checkpoint) first.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some platforms reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

var _ io.Closer = (*Log)(nil)
