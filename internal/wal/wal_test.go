package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log, from uint64) (lsns []uint64, typs []uint8, payloads [][]byte) {
	t.Helper()
	err := l.Replay(from, func(lsn uint64, typ uint8, payload []byte) error {
		lsns = append(lsns, lsn)
		typs = append(typs, typ)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	want := [][]byte{[]byte("alpha"), []byte("bravo"), {}, bytes.Repeat([]byte{0xEE}, 4096)}
	for i, p := range want {
		lsn, err := l.Append(uint8(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openT(t, path)
	defer l.Close()
	lsns, typs, payloads := collect(t, l, 0)
	if len(lsns) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(lsns), len(want))
	}
	for i := range want {
		if lsns[i] != uint64(i+1) || typs[i] != uint8(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d mismatch: lsn=%d typ=%d len=%d", i, lsns[i], typs[i], len(payloads[i]))
		}
	}
	// LSNs continue after reopen.
	lsn, err := l.Append(9, []byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != uint64(len(want)+1) {
		t.Fatalf("post-reopen lsn = %d, want %d", lsn, len(want)+1)
	}
}

func TestReplayFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lsns, _, _ := collect(t, l, 7)
	if len(lsns) != 4 || lsns[0] != 7 || lsns[3] != 10 {
		t.Fatalf("Replay(7) = %v", lsns)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	l.Close()

	// Chop the last record mid-frame.
	if err := os.Truncate(path, size-20); err != nil {
		t.Fatal(err)
	}
	l = openT(t, path)
	defer l.Close()
	lsns, _, _ := collect(t, l, 0)
	if len(lsns) != 4 {
		t.Fatalf("got %d records after torn tail, want 4", len(lsns))
	}
	// The torn bytes are gone from the file and appends resume cleanly.
	if lsn, err := l.Append(1, []byte("next")); err != nil || lsn != 5 {
		t.Fatalf("append after repair: lsn=%d err=%v", lsn, err)
	}
}

func TestCorruptRecordTruncatesSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	var offsets []int64
	for i := 0; i < 5; i++ {
		offsets = append(offsets, l.Size())
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	l.Close()

	// Flip a payload byte inside record 3 (index 2): its CRC fails, so
	// the scan must keep records 1-2 and drop 3-5.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, offsets[2]+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l = openT(t, path)
	defer l.Close()
	lsns, _, _ := collect(t, l, 0)
	if len(lsns) != 2 {
		t.Fatalf("got %d records after corruption, want 2", len(lsns))
	}
}

func TestTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	before := l.Size()
	if err := l.TruncateTo(7); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatal("TruncateTo did not shrink the log")
	}
	lsns, _, _ := collect(t, l, 0)
	if len(lsns) != 4 || lsns[0] != 7 {
		t.Fatalf("after TruncateTo(7): %v", lsns)
	}
	// Appends continue with dense LSNs and survive reopen.
	if lsn, err := l.Append(1, []byte("x")); err != nil || lsn != 11 {
		t.Fatalf("append after truncate: lsn=%d err=%v", lsn, err)
	}
	l.Sync()
	l.Close()
	l = openT(t, path)
	defer l.Close()
	lsns, _, _ = collect(t, l, 0)
	if len(lsns) != 5 || lsns[0] != 7 || lsns[4] != 11 {
		t.Fatalf("after reopen: %v", lsns)
	}
}

func TestGroupCommitCoalescesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	defer l.Close()

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append(1, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errs <- err
					return
				}
				if l.SyncedLSN() < lsn {
					errs <- fmt.Errorf("commit returned before lsn %d durable", lsn)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("appends = %d, want %d", st.Appends, workers*perWorker)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not coalesce: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	t.Logf("%d appends, %d syncs (%.1f commits/fsync)", st.Appends, st.Syncs, float64(st.Appends)/float64(st.Syncs))
}

func TestTestHookSplitAppendStillValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	var points []string
	SetTestHook(func(name string) { points = append(points, name) })
	defer SetTestHook(nil)
	if _, err := l.Append(1, bytes.Repeat([]byte{0xAA}, 100)); err != nil {
		t.Fatal(err)
	}
	SetTestHook(nil)
	l.Sync()
	l.Close()
	l = openT(t, path)
	defer l.Close()
	lsns, _, payloads := collect(t, l, 0)
	if len(lsns) != 1 || len(payloads[0]) != 100 {
		t.Fatalf("split-write record did not survive: %d records", len(lsns))
	}
	sawPartial := false
	for _, p := range points {
		if p == "wal:append-partial" {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatalf("test hook points = %v, missing wal:append-partial", points)
	}
}

func TestBadLengthFieldStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openT(t, path)
	l.Append(1, []byte("good"))
	l.Sync()
	off := l.Size()
	l.Close()
	// Append garbage that claims an absurd frame length.
	f, _ := os.OpenFile(path, os.O_RDWR, 0o644)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	f.WriteAt(hdr[:], off)
	f.Close()
	l = openT(t, path)
	defer l.Close()
	lsns, _, _ := collect(t, l, 0)
	if len(lsns) != 1 {
		t.Fatalf("got %d records, want 1", len(lsns))
	}
}
