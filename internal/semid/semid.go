// Package semid implements Section 4.2, "Semantic IDs": identifier
// fields whose values the application treats as opaque can carry useful
// information instead of random bits.
//
// Two techniques from the paper:
//
//   - Embedding: partition (or site) information lives in the ID's high
//     bits, so routing a tuple to its partition is a shift instead of a
//     lookup in a per-tuple routing table that "can easily become a
//     resource and performance bottleneck".
//   - Reduction: if a proxy with the same semantic properties exists —
//     e.g. the tuple's physical address for a uniqueness-only ID — the
//     field can be dropped entirely (column stores infer the id from
//     the tuple offset).
package semid

import "fmt"

// Layout describes how an ID's 64 bits are divided between embedded
// partition bits (high) and sequence bits (low).
type Layout struct {
	PartitionBits int
}

// NewLayout validates the split. 1–16 partition bits are supported.
func NewLayout(partitionBits int) (Layout, error) {
	if partitionBits < 1 || partitionBits > 16 {
		return Layout{}, fmt.Errorf("semid: partition bits must be in [1,16], got %d", partitionBits)
	}
	return Layout{PartitionBits: partitionBits}, nil
}

// MaxPartition returns the largest encodable partition number.
func (l Layout) MaxPartition() uint64 { return 1<<uint(l.PartitionBits) - 1 }

// MaxSequence returns the largest encodable sequence number.
func (l Layout) MaxSequence() uint64 { return 1<<uint(64-l.PartitionBits) - 1 }

// Make builds an ID embedding the partition in the high bits.
func (l Layout) Make(partition, seq uint64) (uint64, error) {
	if partition > l.MaxPartition() {
		return 0, fmt.Errorf("semid: partition %d exceeds %d bits", partition, l.PartitionBits)
	}
	if seq > l.MaxSequence() {
		return 0, fmt.Errorf("semid: sequence %d exceeds %d bits", seq, 64-l.PartitionBits)
	}
	return partition<<uint(64-l.PartitionBits) | seq, nil
}

// Partition extracts the embedded partition.
func (l Layout) Partition(id uint64) uint64 {
	return id >> uint(64-l.PartitionBits)
}

// Sequence extracts the embedded sequence number.
func (l Layout) Sequence(id uint64) uint64 {
	return id & l.MaxSequence()
}

// Rewrite moves an existing ID to a new partition, keeping its
// sequence — the paper's "simply updating the ID value is enough to
// physically move the tuple" when data is clustered on the ID.
func (l Layout) Rewrite(id uint64, newPartition uint64) (uint64, error) {
	return l.Make(newPartition, l.Sequence(id))
}

// Router resolves a tuple ID to its partition.
type Router interface {
	// Route returns the partition of id, or an error if unknown.
	Route(id uint64) (uint64, error)
	// MemoryBytes estimates the router's resident size — the cost the
	// paper says limits routing-table scalability.
	MemoryBytes() int64
}

// TableRouter is the baseline: an explicit per-tuple routing table.
type TableRouter struct {
	m map[uint64]uint64
}

// NewTableRouter creates an empty routing table.
func NewTableRouter() *TableRouter {
	return &TableRouter{m: make(map[uint64]uint64)}
}

// Add registers a tuple's partition.
func (r *TableRouter) Add(id, partition uint64) { r.m[id] = partition }

// Route implements Router.
func (r *TableRouter) Route(id uint64) (uint64, error) {
	p, ok := r.m[id]
	if !ok {
		return 0, fmt.Errorf("semid: id %d not in routing table", id)
	}
	return p, nil
}

// Len returns the number of routed tuples.
func (r *TableRouter) Len() int { return len(r.m) }

// MemoryBytes implements Router: ~48 bytes per entry for a Go map of
// uint64→uint64 (two words plus bucket overhead) — the point is the
// linear growth, not the constant.
func (r *TableRouter) MemoryBytes() int64 { return int64(len(r.m)) * 48 }

// EmbeddedRouter routes by decoding the partition from the ID itself.
type EmbeddedRouter struct {
	layout Layout
}

// NewEmbeddedRouter wraps a layout as a Router.
func NewEmbeddedRouter(l Layout) *EmbeddedRouter { return &EmbeddedRouter{layout: l} }

// Route implements Router — O(1), no state.
func (r *EmbeddedRouter) Route(id uint64) (uint64, error) {
	return r.layout.Partition(id), nil
}

// MemoryBytes implements Router: the router itself is a single integer.
func (r *EmbeddedRouter) MemoryBytes() int64 { return 8 }

var (
	_ Router = (*TableRouter)(nil)
	_ Router = (*EmbeddedRouter)(nil)
)
