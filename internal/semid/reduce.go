package semid

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// ReductionCheck inspects a schema + workload description and reports
// ID fields that can be dropped per Section 4.2: "ID fields
// representing uniqueness can be eliminated and the tuple's physical
// address can be used as a proxy", and "if there is a functional
// dependency X → Y and the semantic properties of Y can be directly
// inferred from X, then Y can be dropped".
type ReductionCheck struct {
	// Field is the candidate for elimination.
	Field string
	// Reason explains the proxy.
	Reason string
	// SavedBitsPerRow is the storage reclaimed.
	SavedBitsPerRow int
}

// FindReducible returns the ID-like fields of a schema that a proxy can
// replace. uniqueOnly lists fields the application uses purely for
// uniqueness (candidate → RID proxy); derived maps field → determinant
// for known functional dependencies (candidate → dropped, value
// inferred from determinant).
func FindReducible(schema *tuple.Schema, uniqueOnly []string, derived map[string]string) ([]ReductionCheck, error) {
	var out []ReductionCheck
	for _, name := range uniqueOnly {
		pos := schema.Index(name)
		if pos < 0 {
			return nil, fmt.Errorf("semid: field %q not in schema", name)
		}
		f := schema.Field(pos)
		out = append(out, ReductionCheck{
			Field:           name,
			Reason:          "uniqueness-only ID: use the tuple's physical address (RID) as proxy",
			SavedBitsPerRow: f.DeclaredBits(),
		})
	}
	for name, det := range derived {
		pos := schema.Index(name)
		if pos < 0 {
			return nil, fmt.Errorf("semid: field %q not in schema", name)
		}
		if schema.Index(det) < 0 {
			return nil, fmt.Errorf("semid: determinant %q not in schema", det)
		}
		f := schema.Field(pos)
		out = append(out, ReductionCheck{
			Field:           name,
			Reason:          fmt.Sprintf("functional dependency %s → %s: value inferable", det, name),
			SavedBitsPerRow: f.DeclaredBits(),
		})
	}
	return out, nil
}

// RIDProxy demonstrates the physical-address proxy: the "ID" handed to
// the application is the packed RID itself, so no ID column is stored
// at all. Mapping is the identity in both directions.
type RIDProxy struct{}

// IDFor returns the application-visible ID of a stored tuple.
func (RIDProxy) IDFor(rid storage.RID) uint64 { return rid.Pack() }

// RIDFor inverts IDFor.
func (RIDProxy) RIDFor(id uint64) storage.RID { return storage.UnpackRID(id) }
