package semid

import (
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/wiki"
)

func TestLayoutMakeExtract(t *testing.T) {
	l, err := NewLayout(6)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	id, err := l.Make(37, 123456789)
	if err != nil {
		t.Fatalf("Make: %v", err)
	}
	if l.Partition(id) != 37 {
		t.Errorf("Partition = %d", l.Partition(id))
	}
	if l.Sequence(id) != 123456789 {
		t.Errorf("Sequence = %d", l.Sequence(id))
	}
}

func TestLayoutBounds(t *testing.T) {
	if _, err := NewLayout(0); err == nil {
		t.Error("0 bits should fail")
	}
	if _, err := NewLayout(17); err == nil {
		t.Error("17 bits should fail")
	}
	l, _ := NewLayout(4)
	if _, err := l.Make(16, 0); err == nil {
		t.Error("partition overflow should fail")
	}
	if _, err := l.Make(0, l.MaxSequence()+1); err == nil {
		t.Error("sequence overflow should fail")
	}
	if _, err := l.Make(l.MaxPartition(), l.MaxSequence()); err != nil {
		t.Errorf("max values should fit: %v", err)
	}
}

func TestPropertyLayoutRoundTrip(t *testing.T) {
	l, _ := NewLayout(8)
	f := func(part uint8, seq uint64) bool {
		seq &= l.MaxSequence()
		id, err := l.Make(uint64(part), seq)
		if err != nil {
			return false
		}
		return l.Partition(id) == uint64(part) && l.Sequence(id) == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteMovesPartition(t *testing.T) {
	l, _ := NewLayout(4)
	id, _ := l.Make(3, 999)
	moved, err := l.Rewrite(id, 12)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if l.Partition(moved) != 12 || l.Sequence(moved) != 999 {
		t.Errorf("moved id wrong: part=%d seq=%d", l.Partition(moved), l.Sequence(moved))
	}
}

func TestRoutersAgree(t *testing.T) {
	l, _ := NewLayout(5)
	table := NewTableRouter()
	embedded := NewEmbeddedRouter(l)
	for i := 0; i < 1000; i++ {
		part := uint64(i % 32)
		id, _ := l.Make(part, uint64(i))
		table.Add(id, part)
		tp, err := table.Route(id)
		if err != nil {
			t.Fatalf("table route: %v", err)
		}
		ep, err := embedded.Route(id)
		if err != nil {
			t.Fatalf("embedded route: %v", err)
		}
		if tp != ep || tp != part {
			t.Fatalf("routers disagree: %d vs %d (want %d)", tp, ep, part)
		}
	}
	if table.Len() != 1000 {
		t.Errorf("table Len = %d", table.Len())
	}
	if table.MemoryBytes() <= embedded.MemoryBytes() {
		t.Error("table router must cost more memory than the embedded one")
	}
	if _, err := table.Route(0xFFFFFFFF); err == nil {
		t.Error("unknown id should fail in table router")
	}
}

func TestFindReducible(t *testing.T) {
	checks, err := FindReducible(wiki.RevisionSchema(),
		[]string{"rev_id"},
		map[string]string{"rev_text_id": "rev_id"})
	if err != nil {
		t.Fatalf("FindReducible: %v", err)
	}
	if len(checks) != 2 {
		t.Fatalf("got %d checks", len(checks))
	}
	total := 0
	for _, c := range checks {
		if c.SavedBitsPerRow <= 0 {
			t.Errorf("%s saves nothing", c.Field)
		}
		total += c.SavedBitsPerRow
	}
	if total != 128 {
		t.Errorf("total savings %d bits, want 128 (two BIGINTs)", total)
	}
	if _, err := FindReducible(wiki.RevisionSchema(), []string{"nope"}, nil); err == nil {
		t.Error("unknown field should fail")
	}
	if _, err := FindReducible(wiki.RevisionSchema(), nil, map[string]string{"rev_id": "nope"}); err == nil {
		t.Error("unknown determinant should fail")
	}
}

func TestRIDProxyRoundTrip(t *testing.T) {
	p := RIDProxy{}
	rid := storage.RID{Page: 42, Slot: 7}
	if p.RIDFor(p.IDFor(rid)) != rid {
		t.Error("RID proxy round trip failed")
	}
}
