package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PinLeak verifies the buffer-pool pin/latch lifetime contract
// (buffer.Pool invariants 1–2): every pin taken via an
// nblb:acquires-pin function (Pool.Fetch, Pool.NewPage) and every
// frame-latch acquisition must be released on every path out of the
// acquiring function — including early `return err` paths — unless the
// resource escapes through a return value, a call that takes it over,
// or a type annotated nblb:carries-pin (Cursor, the crabbing descent
// path). Escapes into types NOT so annotated are themselves reported:
// a pinned frame parked in an undocumented struct is how quiet leaks
// start.
//
// The analysis is path-sensitive per function with the same branch
// rules as the lock simulator, plus two idiom-specific refinements:
// a `v, err := Fetch()` resource only becomes live on the err == nil
// side of the following error check (on the error side there is no pin
// to release), and a TryLock in an if condition is live only in the
// branch where it succeeded.
var PinLeak = &Analyzer{
	Name: "pinleak",
	Doc:  "detect buffer-pool pins and frame latches not released on every path",
	Run:  runPinLeak,
}

// latchLocks are the lock names pinleak tracks per-instance. Plain
// mutexes are lockorder's department; latches guard pages and pair
// with pins, so their leaks are resource leaks.
var latchLocks = map[string]bool{"frame-latch": true}

func runPinLeak(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pc := &pinChecker{pass: pass, reported: map[string]bool{}}
			pc.checkBody(fn.Body)
		}
	}
	return nil
}

// resource is one acquisition site (a pin or a latch) in a function.
// aliases, escape, and deferred release are path-independent; liveness
// is tracked per path in pathState.
type resource struct {
	kind    string // "pin" or "frame latch"
	what    string // acquiring call, for diagnostics
	pos     token.Pos
	aliases map[types.Object]bool
	errObj  types.Object // err result to gate liveness on, nil once active
	escaped bool
	deferRe bool // released by a defer: satisfied on every path
}

type status int

const (
	stPending status = iota // acquired, success not yet established
	stLive
	stDone // released (or acquisition failed on this path)
)

type pathState map[*resource]status

func (st pathState) clone() pathState {
	c := make(pathState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

type pinChecker struct {
	pass      *Pass
	resources []*resource
	reported  map[string]bool
}

// checkBody runs the path walk over one function body, then checks the
// fall-through exit.
func (pc *pinChecker) checkBody(body *ast.BlockStmt) {
	st := pathState{}
	if pc.stmts(body.List, st) {
		pc.leakCheck(st, body.End()-1, "function end")
	}
}

// --- reporting -------------------------------------------------------

func (pc *pinChecker) leakCheck(st pathState, pos token.Pos, where string) {
	for r, s := range st {
		if s == stDone || r.escaped || r.deferRe {
			continue
		}
		key := fmt.Sprintf("%d-%d", r.pos, pos)
		if pc.reported[key] {
			continue
		}
		pc.reported[key] = true
		pc.pass.Reportf(pos,
			"%s leaks the %s acquired at %s (%s): release it on this path or hand it to an nblb:carries-pin carrier",
			where, r.kind, pc.pass.Fset.Position(r.pos), r.what)
	}
}

func (pc *pinChecker) reportNonCarrierStore(r *resource, pos token.Pos, typ string) {
	key := fmt.Sprintf("store-%d-%d", r.pos, pos)
	if pc.reported[key] {
		return
	}
	pc.reported[key] = true
	pc.pass.Reportf(pos,
		"%s acquired at %s escapes into %s, which is not annotated nblb:carries-pin",
		r.kind, pc.pass.Fset.Position(r.pos), typ)
}

// --- statement walk --------------------------------------------------

// stmts returns true if control can fall off the end of the list.
func (pc *pinChecker) stmts(list []ast.Stmt, st pathState) bool {
	for _, s := range list {
		if !pc.stmt(s, st) {
			return false
		}
	}
	return true
}

func (pc *pinChecker) stmt(s ast.Stmt, st pathState) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if isPanic(call) {
				// Panic exits are exempt by contract ("panic-free paths").
				pc.scanExpr(call, st)
				return false
			}
			// A discarded acquires-pin result can never be unpinned.
			if key := calleeKey(pc.pass.Info, call); key != "" && pc.pass.World.FuncHasTag(key, "acquires-pin") {
				pc.pass.Reportf(call.Pos(), "result of %s (nblb:acquires-pin) is discarded — the pin can never be released", shortFuncName(key))
			}
		}
		pc.scanExpr(x.X, st)
	case *ast.AssignStmt:
		pc.assign(x, st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						pc.scanExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		pc.scanExpr(x.X, st)
	case *ast.SendStmt:
		pc.scanExpr(x.Chan, st)
		pc.escapeScan(x.Value, st, false)
		pc.scanExpr(x.Value, st)
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			pc.scanExpr(e, st)
			pc.escapeScan(e, st, true) // returning a resource is a documented handoff
		}
		pc.leakCheck(st, x.Pos(), "return")
		return false
	case *ast.BranchStmt:
		return false
	case *ast.BlockStmt:
		return pc.stmts(x.List, st)
	case *ast.LabeledStmt:
		return pc.stmt(x.Stmt, st)
	case *ast.IfStmt:
		return pc.ifStmt(x, st)
	case *ast.ForStmt:
		if x.Init != nil {
			pc.stmt(x.Init, st)
		}
		if x.Cond != nil {
			pc.scanExpr(x.Cond, st)
		}
		bodySt := st.clone()
		if falls := pc.stmts(x.Body.List, bodySt); falls {
			if x.Post != nil {
				pc.stmt(x.Post, bodySt)
			}
			// Treat the loop as one straight-line iteration: resources
			// acquired in the body stay live after it (crabbing), ones
			// released in it count as released.
			replace(st, bodySt)
		}
		// A `for {}` with no break only exits via return/panic inside
		// the body; control never reaches the statements after it.
		if x.Cond == nil && !bodyHasBreak(x.Body) {
			return false
		}
	case *ast.RangeStmt:
		pc.scanExpr(x.X, st)
		bodySt := st.clone()
		if falls := pc.stmts(x.Body.List, bodySt); falls {
			replace(st, bodySt)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return pc.switchStmt(s, st)
	case *ast.DeferStmt:
		pc.deferStmt(x.Call, st)
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			pc.escapeScan(a, st, true)
			pc.scanExpr(a, st)
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			pc.escapeScan(lit, st, true)
			sub := &pinChecker{pass: pc.pass, reported: pc.reported}
			sub.checkBody(lit.Body)
		}
	}
	return true
}

func replace(dst, src pathState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func (pc *pinChecker) ifStmt(x *ast.IfStmt, st pathState) bool {
	if x.Init != nil {
		pc.stmt(x.Init, st)
	}
	thenSt := st.clone()
	elseSt := st.clone()

	// Error-check refinement: `if err != nil` resolves pending
	// resources gated on that err — failed on the non-nil side, live on
	// the nil side.
	if obj, nonNilBranch := errCheck(pc.pass.Info, x.Cond); obj != nil {
		for _, r := range pc.resources {
			if r.errObj != obj {
				continue
			}
			if nonNilBranch == "then" {
				thenSt[r] = stDone
				elseSt[r] = stLive
				st[r] = stLive
			} else {
				thenSt[r] = stLive
				elseSt[r] = stDone
				st[r] = stDone
			}
			r.errObj = nil
		}
	} else if r, onSuccess := pc.tryAcquireCond(x.Cond, st); r != nil {
		// TryLock refinement: the latch exists only where it succeeded.
		if onSuccess == "then" {
			thenSt[r], elseSt[r] = stLive, stDone
		} else {
			thenSt[r], elseSt[r] = stDone, stLive
		}
	} else {
		pc.scanExpr(x.Cond, st)
	}

	thenFalls := pc.stmts(x.Body.List, thenSt)
	elseFalls := true
	if x.Else != nil {
		elseFalls = pc.stmt(x.Else, elseSt)
	}
	switch {
	case thenFalls && elseFalls:
		merged := mergeStates(thenSt, elseSt)
		replace(st, merged)
	case thenFalls:
		replace(st, thenSt)
	case elseFalls:
		replace(st, elseSt)
	default:
		return false
	}
	return true
}

// mergeStates joins two falling branches: a resource is done only if
// done in both (released on all paths), live otherwise.
func mergeStates(a, b pathState) pathState {
	out := pathState{}
	for r, sa := range a {
		sb, ok := b[r]
		if !ok {
			sb = sa
		}
		if sa == stDone && sb == stDone {
			out[r] = stDone
		} else if sa == stPending && sb == stPending {
			out[r] = stPending
		} else {
			out[r] = stLive
		}
	}
	for r, sb := range b {
		if _, ok := a[r]; !ok {
			out[r] = sb
		}
	}
	return out
}

func (pc *pinChecker) switchStmt(s ast.Stmt, st pathState) bool {
	var body *ast.BlockStmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			pc.stmt(x.Init, st)
		}
		if x.Tag != nil {
			pc.scanExpr(x.Tag, st)
		}
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			pc.stmt(x.Init, st)
		}
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	var falling []pathState
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				pc.scanExpr(e, st)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		cs := st.clone()
		if pc.stmts(stmts, cs) {
			falling = append(falling, cs)
		}
	}
	if !hasDefault {
		falling = append(falling, st.clone())
	}
	if len(falling) == 0 {
		return false
	}
	merged := falling[0]
	for _, f := range falling[1:] {
		merged = mergeStates(merged, f)
	}
	replace(st, merged)
	return true
}

// --- acquisition, release, escape ------------------------------------

func (pc *pinChecker) assign(x *ast.AssignStmt, st pathState) {
	// v, err := <acquires-pin>(...) — the canonical acquisition shape.
	if len(x.Rhs) == 1 {
		if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
			if key := calleeKey(pc.pass.Info, call); key != "" && pc.pass.World.FuncHasTag(key, "acquires-pin") {
				pc.scanExpr(call, st) // nested calls in args first
				pc.acquirePin(x, call, key, st)
				return
			}
		}
	}
	for _, r := range x.Rhs {
		pc.scanExpr(r, st)
	}
	// Alias propagation and stores.
	for i, lhs := range x.Lhs {
		var rhs ast.Expr
		if len(x.Rhs) == len(x.Lhs) {
			rhs = x.Rhs[i]
		} else if len(x.Rhs) == 1 {
			rhs = x.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// Re-binding a variable detaches it from whatever it aliased.
		if lobj := identObj(pc.pass.Info, lhs); lobj != nil {
			for _, r := range pc.resources {
				delete(r.aliases, lobj)
			}
			if robj := identObj(pc.pass.Info, rhs); robj != nil {
				// `fr = cfr` carries every resource backed by cfr (pin
				// and latch) over to the new name.
				for _, r := range pc.resources {
					if r.aliases[robj] {
						r.aliases[lobj] = true
					}
				}
			} else {
				pc.escapeScan(rhs, st, true) // e.g. v := []T{...fr...}
			}
			// Assigning over an err gate activates pending resources.
			for _, r := range pc.resources {
				if r.errObj == lobj {
					r.errObj = nil
					if st[r] == stPending {
						st[r] = stLive
					}
				}
			}
			continue
		}
		// Store into a field/index: carrier types are the documented way
		// to carry a pin; anything else is flagged.
		pc.storeScan(lhs, rhs, st)
	}
}

func (pc *pinChecker) acquirePin(x *ast.AssignStmt, call *ast.CallExpr, key string, st pathState) {
	r := &resource{
		kind:    "pin",
		what:    shortFuncName(key),
		pos:     call.Pos(),
		aliases: map[types.Object]bool{},
	}
	if len(x.Lhs) >= 1 {
		if obj := identObj(pc.pass.Info, x.Lhs[0]); obj != nil {
			// Detach previous binding, bind the fresh resource.
			for _, old := range pc.resources {
				delete(old.aliases, obj)
			}
			r.aliases[obj] = true
		} else if isBlank(x.Lhs[0]) {
			pc.pass.Reportf(call.Pos(), "result of %s (nblb:acquires-pin) is discarded — the pin can never be released", r.what)
			return
		} else {
			// Assigned straight into a field: carrier or complaint.
			pc.resources = append(pc.resources, r)
			st[r] = stLive
			pc.storeTarget(x.Lhs[0], r, st)
			return
		}
	}
	if len(x.Lhs) >= 2 {
		if obj := identObj(pc.pass.Info, x.Lhs[1]); obj != nil {
			r.errObj = obj
			for _, old := range pc.resources {
				if old.errObj == obj {
					old.errObj = nil
					if st[old] == stPending {
						st[old] = stLive
					}
				}
			}
		}
	}
	pc.resources = append(pc.resources, r)
	if r.errObj != nil {
		st[r] = stPending
	} else {
		st[r] = stLive
	}
}

// scanExpr walks an expression for call effects: latch acquire/release,
// pin release, handoffs of aliases as call arguments, and closures.
func (pc *pinChecker) scanExpr(e ast.Expr, st pathState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			pc.callEffect(x, st)
			return true
		case *ast.FuncLit:
			pc.closureEffect(x, st)
			return false
		case *ast.CompositeLit:
			pc.compositeEffect(x, st)
			return true
		}
		return true
	})
}

func (pc *pinChecker) callEffect(call *ast.CallExpr, st pathState) {
	// Latch protocol calls.
	if op, name := classifyLockCall(pc.pass.Info, pc.pass.World, call); op != opNone && latchLocks[name] {
		sel := call.Fun.(*ast.SelectorExpr)
		base := rootIdentObj(pc.pass.Info, sel.X)
		switch op {
		case opAcquire:
			r := &resource{kind: "frame latch", what: sel.Sel.Name, pos: call.Pos(), aliases: map[types.Object]bool{}}
			if base != nil {
				r.aliases[base] = true
				pc.resources = append(pc.resources, r)
				st[r] = stLive
			}
			// Latches on untracked bases (fields of long-lived state)
			// are out of scope.
		case opRelease:
			// An Unlock on a base releases every live latch resource on
			// that base: a TryLock-then-upgrade sequence is logically one
			// latch however many acquire sites the path walked.
			pc.releaseAll(base, "frame latch", st)
		case opTry:
			// Handled by tryAcquireCond when used as an if condition;
			// other uses are untracked.
		}
		return
	}
	key := calleeKey(pc.pass.Info, call)
	release := key != "" && pc.pass.World.FuncHasTag(key, "releases-pin")
	for _, a := range call.Args {
		if release {
			if obj := rootIdentObj(pc.pass.Info, a); obj != nil {
				pc.releaseAll(obj, "pin", st)
			}
			continue
		}
		// A pin handed to another function (the frame itself, not one of
		// its sub-fields) is that function's contract now.
		if obj := identObj(pc.pass.Info, a); obj != nil {
			pc.escapeAll(obj)
		}
	}
}

// releaseAll marks every not-yet-done resource of the kind aliased to
// base as released on this path.
func (pc *pinChecker) releaseAll(base types.Object, kind string, st pathState) {
	if base == nil {
		return
	}
	for _, r := range pc.resources {
		if r.kind != kind || !r.aliases[base] {
			continue
		}
		if s, ok := st[r]; ok && s != stDone {
			st[r] = stDone
		}
	}
}

func (pc *pinChecker) closureEffect(lit *ast.FuncLit, st pathState) {
	pc.escapeScan(lit, st, true)
	sub := &pinChecker{pass: pc.pass, reported: pc.reported}
	sub.checkBody(lit.Body)
}

// compositeEffect: a resource inside a composite literal escapes — via
// a carrier type silently, otherwise with a report.
func (pc *pinChecker) compositeEffect(lit *ast.CompositeLit, st pathState) {
	typ := pc.pass.Info.TypeOf(lit)
	if typ == nil {
		return
	}
	carrier := pc.carrierType(typ)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(pc.pass.Info, id); obj != nil {
				for _, r := range pc.resources {
					if !r.aliases[obj] {
						continue
					}
					if !carrier && !r.escaped {
						pc.reportNonCarrierStore(r, lit.Pos(), typ.String())
					}
					r.escaped = true
				}
			}
		}
		return true
	})
}

// carrierType reports whether t (or its element/pointee) is annotated
// nblb:carries-pin.
func (pc *pinChecker) carrierType(t types.Type) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		default:
			key := TypeKey(t)
			return key != "" && pc.pass.World.IsCarrier(key)
		}
	}
}

// storeScan handles `x.field = alias` / `x[i] = alias`.
func (pc *pinChecker) storeScan(lhs, rhs ast.Expr, st pathState) {
	robj := rootIdentObj(pc.pass.Info, rhs)
	if robj == nil {
		pc.scanExpr(rhs, st)
		return
	}
	for _, r := range pc.resources {
		if r.aliases[robj] {
			pc.storeTarget(lhs, r, st)
		}
	}
}

func (pc *pinChecker) storeTarget(lhs ast.Expr, r *resource, st pathState) {
	var baseType types.Type
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		baseType = pc.pass.Info.TypeOf(l.X)
	case *ast.IndexExpr:
		baseType = pc.pass.Info.TypeOf(l.X)
	case *ast.StarExpr:
		baseType = pc.pass.Info.TypeOf(l.X)
	}
	if baseType != nil && !pc.carrierType(baseType) && !r.escaped {
		pc.reportNonCarrierStore(r, lhs.Pos(), baseType.String())
	}
	r.escaped = true
}

// escapeScan marks every resource referenced inside e as escaped.
// silent escapes (returns, channel sends, goroutine args) never report.
func (pc *pinChecker) escapeScan(e ast.Expr, st pathState, silent bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(pc.pass.Info, id); obj != nil {
				// A frame variable can back several resources at once
				// (its pin plus its latch); handing off the variable
				// hands off all of them.
				pc.escapeAll(obj)
			}
		}
		return true
	})
	_ = silent
}

// escapeAll marks every resource aliased to obj as escaped.
func (pc *pinChecker) escapeAll(obj types.Object) {
	for _, r := range pc.resources {
		if r.aliases[obj] {
			r.escaped = true
		}
	}
}

// bodyHasBreak reports whether a loop body contains a break binding to
// that loop. Unlabeled breaks inside nested loops/switches/selects bind
// to the inner statement and don't count; labeled breaks to an outer
// loop are approximated away (conservative toward "loop never exits").
func bodyHasBreak(body *ast.BlockStmt) bool {
	found := false
	for _, s := range body.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch b := n.(type) {
			case *ast.BranchStmt:
				if b.Tok == token.BREAK {
					found = true
				}
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
				return false
			}
			return true
		})
	}
	return found
}

func (pc *pinChecker) deferStmt(call *ast.CallExpr, st pathState) {
	// defer pool.Unpin(fr, …) / defer fr.Latch.Unlock()
	if pc.deferReleaseCall(call) {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// A deferred closure that releases tracked resources counts as a
		// deferred release; any other reference is a handoff.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				pc.deferReleaseCall(c)
			}
			return true
		})
		pc.escapeScan(lit, st, true)
		return
	}
	pc.scanExpr(call, st)
}

// deferReleaseCall marks resources released by a deferred call (latch
// unlock or releases-pin) as satisfied on every path. Returns whether
// the call was a release.
func (pc *pinChecker) deferReleaseCall(call *ast.CallExpr) bool {
	if op, name := classifyLockCall(pc.pass.Info, pc.pass.World, call); op == opRelease && latchLocks[name] {
		if base := rootIdentObj(pc.pass.Info, call.Fun.(*ast.SelectorExpr).X); base != nil {
			for _, r := range pc.resources {
				if r.kind == "frame latch" && r.aliases[base] {
					r.deferRe = true
				}
			}
		}
		return true
	}
	if key := calleeKey(pc.pass.Info, call); key != "" && pc.pass.World.FuncHasTag(key, "releases-pin") {
		for _, a := range call.Args {
			if obj := rootIdentObj(pc.pass.Info, a); obj != nil {
				for _, r := range pc.resources {
					if r.kind == "pin" && r.aliases[obj] {
						r.deferRe = true
					}
				}
			}
		}
		return true
	}
	return false
}

// tryAcquireCond recognizes `if x.TryLock()` / `if !x.TryLock()` over a
// tracked latch and returns the conditional resource plus the branch
// ("then"/"else") where the acquisition succeeded.
func (pc *pinChecker) tryAcquireCond(cond ast.Expr, st pathState) (*resource, string) {
	branch := "then"
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = u.X
		branch = "else"
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	op, name := classifyLockCall(pc.pass.Info, pc.pass.World, call)
	if op != opTry || !latchLocks[name] {
		return nil, ""
	}
	base := rootIdentObj(pc.pass.Info, call.Fun.(*ast.SelectorExpr).X)
	if base == nil {
		return nil, ""
	}
	r := &resource{kind: "frame latch", what: "TryLock", pos: call.Pos(), aliases: map[types.Object]bool{base: true}}
	pc.resources = append(pc.resources, r)
	st[r] = stDone // overwritten with stLive in the succeeding branch
	return r, branch
}

// findByAlias returns the most recent resource (optionally of a kind)
// holding obj as an alias and not yet done on this path.
func (pc *pinChecker) findByAlias(obj types.Object, kind string, st pathState) *resource {
	for i := len(pc.resources) - 1; i >= 0; i-- {
		r := pc.resources[i]
		if kind != "" && r.kind != kind {
			continue
		}
		if !r.aliases[obj] {
			continue
		}
		if s, ok := st[r]; ok && s != stDone {
			return r
		}
	}
	// Fall back to any-state match (for escape marking of already-done
	// resources we still want silent).
	for i := len(pc.resources) - 1; i >= 0; i-- {
		r := pc.resources[i]
		if (kind == "" || r.kind == kind) && r.aliases[obj] {
			return r
		}
	}
	return nil
}

// --- small helpers ---------------------------------------------------

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// rootIdentObj walks a selector/index/deref chain to its root
// identifier: `fr` for `fr.Latch.Lock()`, `c` for `c.fr`. Latch
// resources are keyed by this root, which is how an acquire through
// `fr.Latch` and a release through the same variable pair up.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// errCheck recognizes `err != nil` / `err == nil` conditions and
// returns the err object plus which branch is the non-nil (failure)
// side.
func errCheck(info *types.Info, cond ast.Expr) (types.Object, string) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return nil, ""
	}
	var errSide ast.Expr
	switch {
	case isNil(info, b.Y):
		errSide = b.X
	case isNil(info, b.X):
		errSide = b.Y
	default:
		return nil, ""
	}
	obj := identObj(info, errSide)
	if obj == nil {
		return nil, ""
	}
	if t := obj.Type(); t == nil || !isErrorType(t) {
		return nil, ""
	}
	if b.Op == token.NEQ {
		return obj, "then"
	}
	return obj, "else"
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
