package analysis

import (
	"go/token"
	"strings"
)

// funcSummary is the inter-procedural abstraction of one function: the
// locks it may acquire (blocking acquisitions only, directly or through
// any statically resolved callee) and the blocking-io functions it may
// reach. Paths record one example call chain for diagnostics.
type funcSummary struct {
	mayAcquire map[string]effect // lock name → example
	mayIO      map[string]effect // blocking-io function key → example
}

// effect is one example occurrence: where, and through which calls.
type effect struct {
	pos  token.Pos
	path []string // callee chain from the summarized function, outermost first
}

// Summary returns the function's effect summary, computing it (and its
// callees', recursively) on demand. Unknown functions — dynamic calls,
// packages outside the world — summarize as empty; annotation tags on
// the callee still apply at call sites regardless.
func (w *World) Summary(key string) *funcSummary {
	return w.summarize(key, map[string]bool{})
}

func (w *World) summarize(key string, stack map[string]bool) *funcSummary {
	if s, ok := w.summaries[key]; ok {
		return s
	}
	if stack[key] {
		// Recursion: break the cycle with the (possibly partial) effects
		// found so far on this path. Do not memoize the partial result.
		return &funcSummary{}
	}
	fd, ok := w.funcs[key]
	if !ok {
		return &funcSummary{}
	}
	stack[key] = true
	defer delete(stack, key)

	s := &funcSummary{mayAcquire: map[string]effect{}, mayIO: map[string]effect{}}
	if w.FuncHasTag(key, "blocking-io") {
		if fd.decl.Name != nil {
			s.mayIO[key] = effect{pos: fd.decl.Name.Pos()}
		}
	}
	hooks := simHooks{
		acquire: func(name string, pos token.Pos, _ *heldSet) {
			if _, ok := s.mayAcquire[name]; !ok {
				s.mayAcquire[name] = effect{pos: pos}
			}
		},
		call: func(callee string, pos token.Pos, _ *heldSet) {
			if w.FuncHasTag(callee, "blocking-io") {
				if _, ok := s.mayIO[callee]; !ok {
					s.mayIO[callee] = effect{pos: pos, path: []string{callee}}
				}
			}
			cs := w.summarize(callee, stack)
			for name, e := range cs.mayAcquire {
				if _, ok := s.mayAcquire[name]; !ok {
					s.mayAcquire[name] = effect{pos: pos, path: append([]string{callee}, e.path...)}
				}
			}
			// commit-entry functions are the approved boundary: their
			// transitive I/O does not propagate to callers.
			if !w.FuncHasTag(callee, "commit-entry") {
				for io, e := range cs.mayIO {
					if _, ok := s.mayIO[io]; !ok {
						s.mayIO[io] = effect{pos: pos, path: append([]string{callee}, e.path...)}
					}
				}
			}
		},
	}
	simFunc(fd.info, w, fd.decl.Body, hooks)
	w.summaries[key] = s
	return s
}

// describePath renders "a → b → c" for diagnostics, with short names.
func describePath(path []string) string {
	if len(path) == 0 {
		return ""
	}
	short := make([]string, len(path))
	for i, p := range path {
		short[i] = shortFuncName(p)
	}
	return strings.Join(short, " → ")
}

// shortFuncName trims the package path off a function key, keeping
// Type.Method or Func.
func shortFuncName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	// key is now "pkg.Type.Method" or "pkg.Func"; drop the package.
	if i := strings.Index(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}
