package analysis

import (
	"go/ast"
	"strings"
)

// DeprecatedInternal keeps the engine's own packages off APIs marked
// Deprecated:. The public surface keeps them for compatibility (and
// experiments may measure them — with a //nolint:nblb-deprecated and a
// reason), but internal code and cmd/ reaching for Table.Scan or
// Tree.Scan instead of the Query/Cursor replacements re-entrenches the
// path the deprecation exists to retire.
//
// The declaring function itself, its siblings in the same deprecated
// family (a deprecated wrapper calling another deprecated wrapper), and
// _test.go files are exempt: tests still pin down deprecated behavior
// until the API is deleted.
var DeprecatedInternal = &Analyzer{
	Name: "deprecated",
	Doc:  "report internal callers of Deprecated: APIs",
	Run:  runDeprecated,
}

func runDeprecated(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			callerKey := funcKeyOf(pass.Pkg, fn, pass.Info)
			if _, callerDeprecated := pass.World.DeprecationNote(callerKey); callerDeprecated {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				key := calleeKey(pass.Info, call)
				if key == "" || key == callerKey {
					return true
				}
				if note, ok := pass.World.DeprecationNote(key); ok {
					pass.Reportf(call.Pos(), "call to deprecated %s — %s",
						shortFuncName(key), strings.TrimSpace(strings.TrimPrefix(note, "Deprecated:")))
				}
				return true
			})
		}
	}
	return nil
}

func isTestFile(pass *Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}
