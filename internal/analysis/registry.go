package analysis

// This file is the machine-readable form of ARCHITECTURE.md's "Locks,
// latches, and their order" table. The lockorder analyzer checks
// acquisition edges against LockRules; the walseam analyzer checks
// wal.TestPoint names against CrashMatrixPoints. When the prose table
// changes, this file must change with it (ARCHITECTURE.md's "Enforced
// invariants" column points back here).

// LockRule is one directed ordering edge: Outer may be held while
// acquiring Inner; the inversion — acquiring Outer while Inner is held —
// is a deadlock risk and is what the analyzer reports. Rule names the
// ARCHITECTURE.md ordering rule the edge comes from.
type LockRule struct {
	Outer, Inner string
	Rule         string
}

// LockRules are the documented ordering edges. Transitive closure is
// taken by the analyzer, so chains only need their adjacent pairs.
var LockRules = []LockRule{
	// Canonical write/commit chain (rules 7 and the PR 9 txn addendum):
	// txnMu → commitGate → e.mu → t.mu → vers.mu, wal mutex innermost.
	{"txnMu", "commitGate", "txn commit order (engine.go)"},
	{"txnMu", "snapMu", "txn commit order (engine.go)"},
	{"commitGate", "engine-mu", "rule 7"},
	{"engine-mu", "table-mu", "rule 7"},
	{"table-mu", "version-store", "txn commit order (engine.go)"},
	{"commitGate", "wal-mu", "rule 7 (wal mutex is a leaf)"},
	{"commitGate", "wal-commit-mu", "rule 7 (group commit under the gate)"},
	{"wal-commit-mu", "wal-mu", "group-commit leader fsyncs under the log mutex"},
	// ckptMu nests OUTSIDE the gate: checkpoints take it first.
	{"ckptMu", "commitGate", "rule 7 (two checkpoints serialize before blocking writers)"},
	// Heap insert path (rules 1–2).
	{"heap-shard", "frame-latch", "rule 1"},
	{"heap-shard", "heap-meta", "rule 2"},
	// Descents fetch child pages (buffer shard mutex) while holding
	// frame latches; the reverse — waiting on a latch under the shard
	// mutex — is rule 4's forbidden edge.
	{"frame-latch", "buffer-shard", "rule 4"},
}

// SelfUnsafe lists locks that must never be acquired while an instance
// of the same lock is already held: rule 3 (never two heap shard
// mutexes) and the buffer pool's cross-shard steal contract. The frame
// latch is deliberately absent — latch crabbing holds several at once
// under the root→leaf, left→right protocol (rule 6), which static
// analysis cannot order by instance.
var SelfUnsafe = map[string]string{
	"heap-shard":   "rule 3: never two heap shard mutexes at once",
	"buffer-shard": "steal() must drop its own shard before locking a sibling",
	"txnMu":        "txnMu is non-reentrant",
	"commitGate":   "a shared re-acquire deadlocks behind a pending exclusive waiter",
}

// BuiltinLockFields binds the engine's own mutex/latch fields to lock
// names. The same binding is asserted in source by `// nblb:lock`
// annotations on each field; this compiled-in copy is what lets the
// `go vet -vettool` unit mode (which cannot see imported packages'
// source) resolve cross-package acquisitions, and lets the lockorder
// analyzer verify annotation and registry agree when it analyzes the
// declaring package.
var BuiltinLockFields = map[string]string{
	"repro/internal/core.Engine.txnMu":      "txnMu",
	"repro/internal/core.Engine.snapMu":     "snapMu",
	"repro/internal/core.Engine.commitGate": "commitGate",
	"repro/internal/core.Engine.ckptMu":     "ckptMu",
	"repro/internal/core.Engine.mu":         "engine-mu",
	"repro/internal/core.Table.mu":          "table-mu",
	"repro/internal/core.versionStore.mu":   "version-store",
	"repro/internal/wal.Log.mu":             "wal-mu",
	"repro/internal/wal.Log.cmu":            "wal-commit-mu",
	"repro/internal/heap.insertShard.mu":    "heap-shard",
	"repro/internal/heap.File.meta":         "heap-meta",
	"repro/internal/buffer.shard.mu":        "buffer-shard",
	"repro/internal/buffer.Frame.Latch":     "frame-latch",
}

// BuiltinFuncTags is the compiled-in copy of the function annotations
// (`// nblb:acquires-pin` and friends), for the same unit-mode reason.
var BuiltinFuncTags = map[string][]string{
	"repro/internal/buffer.Pool.Fetch":      {"acquires-pin"},
	"repro/internal/buffer.Pool.NewPage":    {"acquires-pin"},
	"repro/internal/buffer.Pool.Unpin":      {"releases-pin"},
	"repro/internal/wal.Log.Append":         {"blocking-io"},
	"repro/internal/wal.Log.Sync":           {"blocking-io"},
	"repro/internal/wal.Log.Commit":         {"blocking-io"},
	"repro/internal/wal.Log.TruncateTo":     {"blocking-io"},
	"repro/internal/buffer.Pool.FlushAll":   {"blocking-io"},
	"repro/internal/buffer.Pool.DirtyPages": {"blocking-io"},
	// DiskManager is the interface method (what e.disk.Sync() resolves
	// to); FileDisk.Sync is the concrete fsync for direct callers.
	"repro/internal/storage.DiskManager.Sync": {"blocking-io"},
	"repro/internal/storage.FileDisk.Sync":    {"blocking-io"},
}

// BuiltinCarriers lists types allowed to carry a pinned frame or held
// latch out of the function that acquired it (mirrors nblb:carries-pin
// annotations).
var BuiltinCarriers = []string{
	"repro/internal/btree.Cursor",
	"repro/internal/btree.Leaf",
	"repro/internal/btree.latchedNode",
}

// BuiltinDeprecated mirrors the Deprecated: doc markers for unit mode.
var BuiltinDeprecated = map[string]string{
	"repro/internal/core.Table.Scan": "Deprecated: Scan is a thin wrapper over Query; use Query.",
	"repro/internal/btree.Tree.Scan": "Deprecated: Scan is a thin wrapper over the pinned-frame Cursor; use NewCursor.",
}

// CrashMatrixPoints are the wal.TestPoint names with a corresponding
// crash-matrix case (core/crash_test.go, core/crash_txn_test.go). The
// walseam analyzer rejects TestPoint calls whose name constant is not
// listed: a new crash seam needs a new matrix case FIRST, then an entry
// here naming the test that kills at it.
var CrashMatrixPoints = map[string]string{
	"wal:append":                 "TestCrashMatrix (mid-append)",
	"wal:append-partial":         "TestCrashMatrix (torn frame)",
	"wal:synced":                 "TestCrashMatrix (post-append/pre-ack)",
	"wal:truncate-before-rename": "TestCrashMatrix",
	"wal:truncate-after-rename":  "TestCrashMatrix",
	"ckpt:begin":                 "TestCrashMatrix",
	"ckpt:flushed":               "TestCrashMatrix",
	"ckpt:manifest":              "TestCrashMatrix + TestCrashTxnMatrix",
	"ckpt:truncated":             "TestCrashMatrix + TestCrashTxnMatrix",
	"txn:appended":               "TestCrashTxnMatrix (mid-commit)",
	"gc:unlinked":                "TestCrashTxnMatrix (mid-GC)",
	"gc:recovery":                "TestCrashGCRecovery (killed mid-recovery, before the sweep)",
}

// lockRank holds the transitive closure of LockRules: closure[a][b]
// means a may be held while acquiring b.
var lockClosure = buildClosure()

func buildClosure() map[string]map[string]string {
	c := map[string]map[string]string{}
	add := func(a, b, why string) {
		if c[a] == nil {
			c[a] = map[string]string{}
		}
		if _, ok := c[a][b]; !ok {
			c[a][b] = why
		}
	}
	for _, r := range LockRules {
		add(r.Outer, r.Inner, r.Rule)
	}
	// Floyd–Warshall style closure over the small rule graph.
	for changed := true; changed; {
		changed = false
		for a, outs := range c {
			for b, whyAB := range outs {
				for d, whyBD := range c[b] {
					if _, ok := c[a][d]; !ok && a != d {
						add(a, d, whyAB+" + "+whyBD)
						changed = true
					}
				}
			}
		}
	}
	return c
}

// OrderAllowed reports whether holding `held` while acquiring `acq` is
// a registered order (directly or transitively).
func OrderAllowed(held, acq string) bool {
	_, ok := lockClosure[held][acq]
	return ok
}

// OrderViolation reports whether acquiring `acq` while `held` is held
// inverts a registered rule, and if so which rule.
func OrderViolation(held, acq string) (string, bool) {
	if held == acq {
		why, bad := SelfUnsafe[held]
		return why, bad
	}
	if OrderAllowed(held, acq) {
		return "", false
	}
	if why, ok := lockClosure[acq][held]; ok {
		return why, true
	}
	return "", false
}
