// Package analysis is nblb's static-analysis suite: a small, stdlib-only
// framework in the shape of golang.org/x/tools/go/analysis (which this
// repo deliberately does not depend on) plus the four engine-specific
// analyzers behind cmd/nblb-vet:
//
//   - lockorder:  acquisition edges must not invert the documented
//     lock-ordering rules (ARCHITECTURE.md "Locks, latches, and their
//     order"; Registry below is the machine-readable form).
//   - pinleak:    every buffer-pool pin and frame latch taken in a
//     function must be released on every path out of it, unless it
//     escapes via a documented carrier type.
//   - walseam:    blocking I/O must not happen inside the commitGate
//     critical section except through approved commit/checkpoint entry
//     points, and wal.TestPoint names must be covered by the crash
//     matrix.
//   - deprecated-internal: internal packages and commands must not call
//     Deprecated: APIs.
//
// Analyzers read intent from machine-checkable source annotations:
//
//	// nblb:lock <name>        on a mutex/latch struct field — binds the
//	//                         field to a registry lock name
//	// nblb:carries-pin        on a type whose values legitimately carry
//	//                         a pinned frame or held latch out of the
//	//                         acquiring function (Cursor, crabbing path)
//	// nblb:acquires-pin       on a function returning a pinned resource
//	// nblb:releases-pin       on the matching release function
//	// nblb:blocking-io        on functions that perform file I/O or
//	//                         fsync (wal.Append/Sync/Commit, disk Sync)
//	// nblb:commit-entry       on the approved functions that may reach
//	//                         blocking I/O while the commitGate is held
//
// Diagnostics are suppressed by a //nolint:nblb-<analyzer> comment on
// the flagged line, which MUST carry a reason after " // ":
//
//	t.Scan(fn) //nolint:nblb-deprecated // measured legacy path, see bench
//
// A reasonless nolint is itself reported. See docs/analysis.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run is invoked once per
// package, in dependency order, after the package has been added to the
// World (so annotations and function bodies of the package itself and
// everything it imports are already visible).
type Analyzer struct {
	Name string // diagnostic prefix and nolint key ("nblb-" + Name)
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	World    *World

	diags *[]Diagnostic
}

// A Diagnostic is one finding, already attributed to an analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic unless the flagged line carries a valid
// nolint comment for this analyzer. A nolint comment without a reason is
// converted into its own diagnostic, so suppressions stay auditable.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if file := p.fileFor(pos); file != nil {
		switch p.nolintAt(file, position.Line) {
		case nolintOK:
			return
		case nolintNoReason:
			*p.diags = append(*p.diags, Diagnostic{
				Analyzer: p.Analyzer.Name,
				Pos:      position,
				Message:  fmt.Sprintf("nolint:nblb-%s without a reason (append `// <why>`)", p.Analyzer.Name),
			})
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

const (
	nolintNone     = iota // no suppression on the line
	nolintOK              // suppressed, reason given
	nolintNoReason        // suppression attempted without a reason
)

// nolintAt scans the file's comments for a //nolint:nblb-<name> marker
// on the given line and classifies it.
func (p *Pass) nolintAt(file *ast.File, line int) int {
	key := "nblb-" + p.Analyzer.Name
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if p.Fset.Position(c.Pos()).Line != line {
				continue
			}
			text := c.Text
			idx := strings.Index(text, "//nolint:")
			if idx < 0 {
				continue
			}
			rest := text[idx+len("//nolint:"):]
			spec, reason, hasReason := strings.Cut(rest, "//")
			names := strings.Split(strings.TrimSpace(spec), ",")
			matched := false
			for _, n := range names {
				n = strings.TrimSpace(n)
				if n == key || n == "all" {
					matched = true
				}
			}
			if !matched {
				continue
			}
			if !hasReason || strings.TrimSpace(reason) == "" {
				return nolintNoReason
			}
			return nolintOK
		}
	}
	return nolintNone
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full suite in the order nblb-vet runs it.
func All() []*Analyzer {
	return []*Analyzer{LockOrder, PinLeak, WALSeam, DeprecatedInternal}
}

// ByName resolves a comma-separated analyzer list ("lockorder,pinleak").
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
