package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockOrder reports acquisition edges that invert the documented
// lock-ordering rules (LockRules; ARCHITECTURE.md "Locks, latches, and
// their order"). It simulates each function's held set and checks both
// direct acquisitions and — through per-function summaries — every
// statically resolved call that may acquire a lock deeper in the call
// graph. PR 9's 3-way deadlock (Table.Apply holding the commitGate
// while rawStampTS took txnMu, against Txn.Commit's txnMu→commitGate)
// is exactly the shape this catches; see
// testdata/src/lockorder_pr9/regression.go.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "detect lock acquisitions that invert a documented ordering rule",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	checkLockAnnotations(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncLockOrder(pass, fn)
		}
	}
	return nil
}

func checkFuncLockOrder(pass *Pass, fn *ast.FuncDecl) {
	hooks := simHooks{
		acquire: func(name string, pos token.Pos, h *heldSet) {
			for heldName, stack := range h.m {
				why, bad := OrderViolation(heldName, name)
				if !bad {
					continue
				}
				pass.Reportf(pos,
					"acquires %q while holding %q (acquired at %s): inverts documented lock order (%s)",
					name, heldName, pass.Fset.Position(stack[len(stack)-1]), why)
			}
		},
		call: func(callee string, pos token.Pos, h *heldSet) {
			if h.empty() {
				return
			}
			sum := pass.World.Summary(callee)
			for name, eff := range sum.mayAcquire {
				for heldName, stack := range h.m {
					why, bad := OrderViolation(heldName, name)
					if !bad {
						continue
					}
					via := shortFuncName(callee)
					if p := describePath(eff.path); p != "" {
						via += " → " + p
					}
					pass.Reportf(pos,
						"call may acquire %q (via %s) while holding %q (acquired at %s): inverts documented lock order (%s)",
						name, via, heldName, pass.Fset.Position(stack[len(stack)-1]), why)
				}
			}
		},
	}
	simFunc(pass.Info, pass.World, fn.Body, hooks)
}

// checkLockAnnotations verifies that the compiled-in registry bindings
// (BuiltinLockFields) and the source annotations agree for every lock
// the current package declares: a registry-bound field must carry the
// matching // nblb:lock annotation, and an annotation must not
// contradict the registry. This is what keeps ARCHITECTURE.md's table,
// registry.go, and the source from drifting apart.
func checkLockAnnotations(pass *Pass) {
	prefix := pass.Pkg.Path() + "."
	for key, regName := range BuiltinLockFields {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		annName, ok := pass.World.AnnotatedLockName(key)
		if !ok {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"lock %s is bound to %q in the registry but its field has no `// nblb:lock %s` annotation",
				key, regName, regName)
			continue
		}
		if annName != regName {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"lock %s is annotated %q but registered as %q — update registry.go or the annotation",
				key, annName, regName)
		}
	}
}
