package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared abstract interpreter behind lockorder and
// walseam: a block-structured walk over a function body that tracks
// which named locks are held at each acquisition and call site.
//
// Precision choices, deliberately biased against false positives:
//
//   - Branches are explored independently; after an if/switch the held
//     set is the INTERSECTION of the branches that fall through, so a
//     conditionally-released lock is treated as released.
//   - Loop bodies are simulated once; the held set after a loop is the
//     intersection of "before" and "after one iteration".
//   - TryLock/TryRLock never block, so they are exempt from ordering
//     checks and (being conditional) do not join the held set.
//   - `go` statements start with an EMPTY held set — a spawned
//     goroutine does not inherit its parent's critical section (its
//     body is still simulated, with that empty set).
//   - defer of a release is ignored (the lock stays held to function
//     end, which is exactly what a deferred unlock means); other
//     deferred calls are processed with the held set at the defer.
//   - Function literals are simulated where they appear, with the
//     current held set: in this codebase closures passed to helpers
//     (visitors, DirtyPages walkers) run synchronously under the
//     caller's locks.

// heldSet maps lock name → stack of acquisition positions.
type heldSet struct {
	m map[string][]token.Pos
}

func newHeldSet() *heldSet { return &heldSet{m: map[string][]token.Pos{}} }

func (h *heldSet) acquire(name string, pos token.Pos) { h.m[name] = append(h.m[name], pos) }

func (h *heldSet) release(name string) {
	if s := h.m[name]; len(s) > 0 {
		if len(s) == 1 {
			delete(h.m, name)
		} else {
			h.m[name] = s[:len(s)-1]
		}
	}
}

func (h *heldSet) clone() *heldSet {
	c := newHeldSet()
	for k, v := range h.m {
		c.m[k] = append([]token.Pos(nil), v...)
	}
	return c
}

// intersect keeps only locks held in both sets (at the shallower
// depth), preserving h's acquisition positions.
func (h *heldSet) intersect(o *heldSet) {
	for k, v := range h.m {
		ov, ok := o.m[k]
		if !ok {
			delete(h.m, k)
			continue
		}
		if len(ov) < len(v) {
			h.m[k] = v[:len(ov)]
		}
	}
}

func (h *heldSet) empty() bool { return len(h.m) == 0 }

// lockOp classifies one call expression's effect on the held set.
type lockOp int

const (
	opNone    lockOp = iota
	opAcquire        // blocking Lock/RLock on a named lock
	opTry            // TryLock/TryRLock on a named lock
	opRelease        // Unlock/RUnlock on a named lock
)

// classifyLockCall resolves x.Lock()/x.Unlock()-shaped calls whose
// receiver chain lands on an annotated (or registry-bound) lock field.
func classifyLockCall(info *types.Info, w *World, call *ast.CallExpr) (lockOp, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "TryLock", "TryRLock":
		op = opTry
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return opNone, ""
	}
	name, ok := lockNameOf(info, w, sel.X)
	if !ok {
		return opNone, ""
	}
	return op, name
}

// lockNameOf resolves the lock name of a receiver expression: a struct
// field selection (via its nblb:lock annotation or registry binding) or
// a package-level var.
func lockNameOf(info *types.Info, w *World, expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				if name, ok := w.LockName(FieldKey(s.Recv(), v)); ok {
					return name, true
				}
			}
		}
		// Qualified package-level var: pkg.Mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return w.LockName(v.Pkg().Path() + "." + v.Name())
				}
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return w.LockName(v.Pkg().Path() + "." + v.Name())
		}
	case *ast.ParenExpr:
		return lockNameOf(info, w, e.X)
	}
	return "", false
}

// calleeKey resolves a call's static callee to its function key, or ""
// for dynamic calls (function values, closures invoked via variables).
func calleeKey(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return FuncKey(fn)
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return FuncKey(fn)
		}
	}
	return ""
}

// simHooks receive the interpreter's events.
type simHooks struct {
	// acquire fires before a blocking acquisition joins the held set.
	acquire func(name string, pos token.Pos, h *heldSet)
	// call fires for every statically resolved non-lock call.
	call func(key string, pos token.Pos, h *heldSet)
}

type simCtx struct {
	info  *types.Info
	world *World
	hooks simHooks
}

// simFunc runs the interpreter over one function body.
func simFunc(info *types.Info, w *World, body *ast.BlockStmt, hooks simHooks) {
	if body == nil {
		return
	}
	sc := &simCtx{info: info, world: w, hooks: hooks}
	sc.stmts(body.List, newHeldSet())
}

// stmts simulates a statement list, returning false if the list
// definitely terminates (return/branch) before its end.
func (sc *simCtx) stmts(list []ast.Stmt, h *heldSet) bool {
	for _, s := range list {
		if !sc.stmt(s, h) {
			return false
		}
	}
	return true
}

func (sc *simCtx) stmt(s ast.Stmt, h *heldSet) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		sc.expr(st.X, h)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			sc.expr(e, h)
		}
		for _, e := range st.Lhs {
			sc.expr(e, h)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				sc.expr(e, h)
				return false
			}
			return true
		})
	case *ast.IncDecStmt:
		sc.expr(st.X, h)
	case *ast.SendStmt:
		sc.expr(st.Chan, h)
		sc.expr(st.Value, h)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			sc.expr(e, h)
		}
		return false
	case *ast.BranchStmt:
		return false
	case *ast.BlockStmt:
		return sc.stmts(st.List, h)
	case *ast.LabeledStmt:
		return sc.stmt(st.Stmt, h)
	case *ast.IfStmt:
		if st.Init != nil {
			sc.stmt(st.Init, h)
		}
		sc.expr(st.Cond, h)
		thenH := h.clone()
		thenFalls := sc.stmts(st.Body.List, thenH)
		elseH := h.clone()
		elseFalls := true
		if st.Else != nil {
			elseFalls = sc.stmt(st.Else, elseH)
		}
		switch {
		case thenFalls && elseFalls:
			*h = *thenH
			h.intersect(elseH)
		case thenFalls:
			*h = *thenH
		case elseFalls:
			*h = *elseH
		default:
			return false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			sc.stmt(st.Init, h)
		}
		if st.Cond != nil {
			sc.expr(st.Cond, h)
		}
		bodyH := h.clone()
		sc.stmts(st.Body.List, bodyH)
		if st.Post != nil {
			sc.stmt(st.Post, bodyH)
		}
		h.intersect(bodyH)
	case *ast.RangeStmt:
		sc.expr(st.X, h)
		bodyH := h.clone()
		sc.stmts(st.Body.List, bodyH)
		h.intersect(bodyH)
	case *ast.SwitchStmt:
		if st.Init != nil {
			sc.stmt(st.Init, h)
		}
		if st.Tag != nil {
			sc.expr(st.Tag, h)
		}
		sc.caseBodies(st.Body, h)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			sc.stmt(st.Init, h)
		}
		sc.stmt(st.Assign, h)
		sc.caseBodies(st.Body, h)
	case *ast.SelectStmt:
		sc.caseBodies(st.Body, h)
	case *ast.DeferStmt:
		sc.deferCall(st.Call, h)
	case *ast.GoStmt:
		// Spawned goroutines inherit nothing: simulate the body (or the
		// called function's effects are its own) under an empty set.
		for _, a := range st.Call.Args {
			sc.expr(a, h)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			sc.stmts(lit.Body.List, newHeldSet())
		}
	}
	return true
}

// caseBodies merges switch/select clause bodies by intersection of the
// falling branches (plus the implicit no-match path when there is no
// default clause).
func (sc *simCtx) caseBodies(body *ast.BlockStmt, h *heldSet) {
	var results []*heldSet
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				sc.expr(e, h)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				sc.stmt(c.Comm, h.clone())
			} else {
				hasDefault = true
			}
			stmts = c.Body
		}
		ch := h.clone()
		if sc.stmts(stmts, ch) {
			results = append(results, ch)
		}
	}
	if !hasDefault {
		results = append(results, h.clone())
	}
	if len(results) == 0 {
		return
	}
	*h = *results[0]
	for _, r := range results[1:] {
		h.intersect(r)
	}
}

// expr walks an expression, handling calls post-order (arguments and
// receivers evaluate before the call takes effect) and function
// literals with the current held set.
func (sc *simCtx) expr(e ast.Expr, h *heldSet) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		// Arguments and the callee expression first (but not the
		// selector's method name, which isn't an evaluation).
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			sc.expr(sel.X, h)
		} else if _, ok := x.Fun.(*ast.FuncLit); !ok {
			sc.expr(x.Fun, h)
		}
		for _, a := range x.Args {
			sc.expr(a, h)
		}
		sc.applyCall(x, h)
		if lit, ok := x.Fun.(*ast.FuncLit); ok {
			sc.stmts(lit.Body.List, h)
		}
	case *ast.FuncLit:
		sc.stmts(x.Body.List, h)
	default:
		// Generic recursion that re-enters sc.expr for nested calls.
		ast.Inspect(e, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.CallExpr, *ast.FuncLit:
				sc.expr(nn.(ast.Expr), h)
				return false
			}
			return true
		})
	}
}

func (sc *simCtx) applyCall(call *ast.CallExpr, h *heldSet) {
	op, name := classifyLockCall(sc.info, sc.world, call)
	switch op {
	case opAcquire:
		if sc.hooks.acquire != nil {
			sc.hooks.acquire(name, call.Pos(), h)
		}
		h.acquire(name, call.Pos())
		return
	case opRelease:
		h.release(name)
		return
	case opTry:
		return
	}
	if key := calleeKey(sc.info, call); key != "" && sc.hooks.call != nil {
		sc.hooks.call(key, call.Pos(), h)
	}
}

// deferCall handles `defer f(...)`: a deferred release keeps the lock
// held (that is its meaning); everything else is processed in place.
func (sc *simCtx) deferCall(call *ast.CallExpr, h *heldSet) {
	if op, _ := classifyLockCall(sc.info, sc.world, call); op == opRelease {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			sc.expr(sel.X, h)
		}
		return
	}
	sc.expr(call, h)
}
