package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The golden suite, in the style of x/tools' analysistest: each fixture
// under testdata/src/<name> is a little module of one or more packages,
// loaded in declared order (dependencies first), and every diagnostic
// the suite produces must be matched by a `// want "regexp"` comment on
// the flagged line — no more, no less.

type fixtureSpec struct {
	name      string   // directory under testdata/src
	pkgs      []string // sub-packages in dependency order; nil = the dir itself
	analyzers string   // ByName selector; "" = all four
}

var fixtures = []fixtureSpec{
	{name: "lockorder_basic"},
	{name: "lockorder_pr9"},
	{name: "pinleak_basic"},
	{name: "pinleak_latch"},
	{name: "walseam_gate", pkgs: []string{"wal", "a"}},
	{name: "deprecated_basic", pkgs: []string{"lib", "use"}},
}

func TestAnalyzersGolden(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			runFixture(t, root, fx)
		})
	}
}

func runFixture(t *testing.T, root string, fx fixtureSpec) {
	analyzers, err := ByName(fx.analyzers)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root) // module root works for stdlib export data
	base := filepath.Join(root, "testdata", "src", fx.name)
	dirs := fx.pkgs
	if dirs == nil {
		dirs = []string{""}
	}
	var pkgs []*LoadedPackage
	for _, sub := range dirs {
		dir := filepath.Join(base, sub)
		importPath := fx.name
		if sub != "" {
			importPath = fx.name + "/" + sub
		}
		files, err := goFilesIn(dir)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := loader.CheckFiles(importPath, dir, files)
		if err != nil {
			t.Fatalf("typecheck %s: %v", importPath, err)
		}
		pkgs = append(pkgs, lp)
	}
	world := NewWorld(loader.Fset)
	diags, err := RunPackages(world, pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	checkExpectations(t, base, diags)
}

func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// wantRE matches `// want "re"` with an optional line offset: a
// `// want+1 "re"` on the line BEFORE a nolint comment expects the
// diagnostic on the nolint line itself (putting the want comment there
// would read as the nolint reason).
var wantRE = regexp.MustCompile(`// want([+-][0-9]+)? (.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// collectWants scans every fixture file for `// want "re" ["re"...]`
// markers.
func collectWants(t *testing.T, base string) []*expectation {
	var wants []*expectation
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			off := 0
			if m[1] != "" {
				off, _ = strconv.Atoi(m[1])
			}
			args := wantArgRE.FindAllStringSubmatch(m[2], -1)
			if len(args) == 0 {
				t.Errorf("%s:%d: malformed want comment (no quoted regexp)", path, i+1)
				continue
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, a[1], err)
					continue
				}
				wants = append(wants, &expectation{file: path, line: i + 1 + off, re: re, raw: a[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func checkExpectations(t *testing.T, base string, diags []Diagnostic) {
	wants := collectWants(t, base)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
