package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// WALSeam polices the commit critical section and the crash-test seams
// around it:
//
//  1. While the commitGate is held, nothing may reach a function tagged
//     nblb:blocking-io (wal.Log.Append/Sync, Pool.FlushAll, disk
//     syncs) — directly or through any statically resolved call chain —
//     unless the enclosing function is itself tagged nblb:commit-entry.
//     Commit-entry functions (Txn.Commit's gate body, Checkpoint,
//     Table.Apply's stamped path) are the audited places where holding
//     writers across an fsync is the whole point; anywhere else it
//     stalls every committer behind an unbounded disk wait.
//
//  2. Every wal.TestPoint name must be registered in CrashMatrixPoints,
//     i.e. some crash-matrix case must kill the process there. A seam
//     without a matrix case is a recovery path no test ever exercises.
var WALSeam = &Analyzer{
	Name: "walseam",
	Doc:  "keep blocking I/O out of the commit gate and crash seams in the crash matrix",
	Run:  runWALSeam,
}

// gateLocks are the critical-section locks rule 1 applies to.
var gateLocks = map[string]bool{"commitGate": true}

func runWALSeam(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			key := funcKeyOf(pass.Pkg, fn, pass.Info)
			entry := key != "" && pass.World.FuncHasTag(key, "commit-entry")
			checkFuncWALSeam(pass, fn, entry)
		}
	}
	return nil
}

func checkFuncWALSeam(pass *Pass, fn *ast.FuncDecl, commitEntry bool) {
	hooks := simHooks{
		call: func(callee string, pos token.Pos, h *heldSet) {
			checkTestPoint(pass, callee, pos, fn)
			if commitEntry {
				return
			}
			gate := gateHeld(h)
			if gate == "" {
				return
			}
			// Calls INTO a commit-entry function are the approved doorway
			// even when the gate is already held (re-entrant layering is
			// the entry function's contract to get right).
			if pass.World.FuncHasTag(callee, "commit-entry") {
				return
			}
			if pass.World.FuncHasTag(callee, "blocking-io") {
				pass.Reportf(pos,
					"calls %s (nblb:blocking-io) while holding %q: blocking I/O inside the commit gate stalls every writer; route it through an nblb:commit-entry function",
					shortFuncName(callee), gate)
				return
			}
			sum := pass.World.Summary(callee)
			for io, eff := range sum.mayIO {
				via := shortFuncName(callee)
				if p := describePath(eff.path); p != "" {
					via += " → " + p
				}
				pass.Reportf(pos,
					"call may reach %s (nblb:blocking-io, via %s) while holding %q: blocking I/O inside the commit gate stalls every writer",
					shortFuncName(io), via, gate)
				break // one example per call site is enough
			}
		},
	}
	simFunc(pass.Info, pass.World, fn.Body, hooks)
}

func gateHeld(h *heldSet) string {
	for name := range h.m {
		if gateLocks[name] {
			return name
		}
	}
	return ""
}

// checkTestPoint enforces seam registration: wal.TestPoint("x") with a
// constant name must have a CrashMatrixPoints entry. Non-constant names
// only appear in the test-hook plumbing itself and are skipped. The
// suffix match (rather than the exact repro path) lets analysistest
// fixtures declare their own wal package and exercise the rule.
func checkTestPoint(pass *Pass, callee string, pos token.Pos, fn *ast.FuncDecl) {
	if !strings.HasSuffix(callee, "wal.TestPoint") {
		return
	}
	call := enclosingCall(fn, pos)
	if call == nil || len(call.Args) != 1 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if _, ok := CrashMatrixPoints[name]; !ok {
		pass.Reportf(pos,
			"wal.TestPoint(%q) has no crash-matrix case: add one to core/crash_test.go or core/crash_txn_test.go, then register the point in analysis.CrashMatrixPoints",
			name)
	}
}

// enclosingCall finds the call expression at pos inside fn.
func enclosingCall(fn *ast.FuncDecl, pos token.Pos) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && c.Pos() == pos {
			found = c
			return false
		}
		return true
	})
	return found
}
