package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadedPackage is one source-analyzed package: syntax, types, and the
// shared file set live in the Loader that produced it.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader turns `go list` package metadata into type-checked syntax
// trees using only the standard library: packages of the module under
// analysis are parsed and checked from source (so analyzers see
// annotations and function bodies), while everything else — the
// standard library, should dependencies ever appear — is imported from
// the compiler's export data as surfaced by `go list -export`.
type Loader struct {
	Fset *token.FileSet
	Dir  string // working directory for go list (module root)

	exportFiles map[string]string         // import path → export data file
	sources     map[string]*listPackage   // import path → go list record
	loaded      map[string]*LoadedPackage // import path → checked package
	gcImporter  types.ImporterFrom
}

type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// NewLoader creates a loader rooted at dir (the module root).
func NewLoader(dir string) *Loader {
	l := &Loader{
		Fset:        token.NewFileSet(),
		Dir:         dir,
		exportFiles: map[string]string{},
		sources:     map[string]*listPackage{},
		loaded:      map[string]*LoadedPackage{},
	}
	l.gcImporter = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// NewUnitLoader creates a loader whose imports resolve exclusively
// through the supplied export-data lookup — the `go vet -vettool` unit
// mode, where cmd/go hands the tool a PackageFile map instead of
// letting it run go list.
func NewUnitLoader(dir string, lookup func(path string) (io.ReadCloser, error)) *Loader {
	l := &Loader{
		Fset:        token.NewFileSet(),
		Dir:         dir,
		exportFiles: map[string]string{},
		sources:     map[string]*listPackage{},
		loaded:      map[string]*LoadedPackage{},
	}
	l.gcImporter = importer.ForCompiler(l.Fset, "gc", lookup).(types.ImporterFrom)
	return l
}

// Load resolves the patterns (e.g. "./...") and returns the matched
// module packages type-checked from source, in dependency order.
func (l *Loader) Load(patterns ...string) ([]*LoadedPackage, error) {
	pkgs, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || p.Module == nil {
			if p.Export != "" {
				l.exportFiles[p.ImportPath] = p.Export
			}
			continue
		}
		l.sources[p.ImportPath] = p
		roots = append(roots, p.ImportPath)
	}
	sort.Strings(roots)
	var out []*LoadedPackage
	for _, path := range roots {
		lp, err := l.loadSource(path, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	// Dependency order: a package sorts after everything it imports.
	sort.SliceStable(out, func(i, j int) bool { return l.depRank(out[i].Path) < l.depRank(out[j].Path) })
	return out, nil
}

func (l *Loader) depRank(path string) int {
	seen := map[string]bool{}
	var walk func(string) int
	walk = func(p string) int {
		if seen[p] {
			return 0
		}
		seen[p] = true
		src, ok := l.sources[p]
		if !ok {
			return 0
		}
		max := 0
		for _, imp := range src.Imports {
			if d := walk(imp); d > max {
				max = d
			}
		}
		return max + 1
	}
	return walk(path)
}

// loadSource parses and type-checks one module package (and its module
// dependencies, recursively).
func (l *Loader) loadSource(path string, stack []string) (*LoadedPackage, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
	}
	src, ok := l.sources[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no source metadata for %q", path)
	}
	stack = append(stack, path)
	for _, imp := range src.Imports {
		if _, isSrc := l.sources[imp]; isSrc {
			if _, err := l.loadSource(imp, stack); err != nil {
				return nil, err
			}
		}
	}
	var files []*ast.File
	for _, name := range src.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(src.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lp, err := l.check(path, src.Dir, files)
	if err != nil {
		return nil, err
	}
	return lp, nil
}

// check type-checks a parsed file set as the package at importPath and
// registers it for import by later packages.
func (l *Loader) check(importPath, dir string, files []*ast.File) (*LoadedPackage, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		return l.importPkg(p, dir)
	})}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	lp := &LoadedPackage{Path: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.loaded[importPath] = lp
	return lp, nil
}

// CheckFiles type-checks an ad-hoc file list as importPath — the
// analysistest fixture path (fixture dirs are not go-list-able, they
// live under testdata/).
func (l *Loader) CheckFiles(importPath, dir string, filenames []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(importPath, dir, files)
}

func (l *Loader) importPkg(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if lp, ok := l.loaded[path]; ok {
		return lp.Pkg, nil
	}
	if _, isSrc := l.sources[path]; isSrc {
		lp, err := l.loadSource(path, nil)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.gcImporter.ImportFrom(path, fromDir, 0)
}

// lookupExport feeds the stdlib gc importer from `go list -export`
// build-cache artifacts, resolving lazily for packages first seen as
// transitive imports.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exportFiles[path]
	if !ok {
		if _, err := l.goList([]string{path}); err != nil {
			return nil, err
		}
		if file, ok = l.exportFiles[path]; !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// goList runs `go list -export -json -deps` and records every returned
// package's metadata (export files for binary packages, source file
// lists for module packages).
func (l *Loader) goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Imports,Module,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exportFiles[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
