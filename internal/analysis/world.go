package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// World accumulates cross-package knowledge as packages are added in
// dependency order: annotation bindings, function bodies for
// inter-procedural summaries, and deprecation marks. The standalone
// nblb-vet driver adds every repro package before running analyzers, so
// summaries and annotations span the whole module; the `go vet
// -vettool` unit mode sees one package at a time and falls back to the
// compiled-in Registry bindings for everything it imports.
type World struct {
	Fset *token.FileSet

	// locks binds a struct-field key ("pkg.Type.Field") or package-level
	// var key ("pkg.Var") to a registry lock name.
	locks map[string]string
	// funcTags holds nblb: tags on functions (blocking-io, commit-entry,
	// acquires-pin, releases-pin), keyed by function key.
	funcTags map[string]map[string]bool
	// carriers holds types tagged nblb:carries-pin, keyed by type key.
	carriers map[string]bool
	// deprecated marks functions whose doc comment says "Deprecated:".
	deprecated map[string]string // key → first line of the deprecation note
	// funcs holds every function declaration seen, for summaries.
	funcs map[string]*funcDecl

	// summaries memoizes per-function lock/IO effects (see summary.go).
	summaries map[string]*funcSummary
}

// funcDecl pairs a function's AST with its package's type info, so
// summaries can be computed lazily for any package in the world.
type funcDecl struct {
	decl *ast.FuncDecl
	info *types.Info
	pkg  *types.Package
}

// NewWorld returns an empty world. Lookups fall back to the Registry's
// built-in bindings, so unit-mode runs (which never see imported
// packages' source) still know the engine's own locks; the maps here
// hold only what was scanned from source, which is what lets lockorder
// verify annotations and registry agree.
func NewWorld(fset *token.FileSet) *World {
	return &World{
		Fset:       fset,
		locks:      map[string]string{},
		funcTags:   map[string]map[string]bool{},
		carriers:   map[string]bool{},
		deprecated: map[string]string{},
		funcs:      map[string]*funcDecl{},
		summaries:  map[string]*funcSummary{},
	}
}

// AddPackage scans one type-checked package's annotations and function
// bodies into the world. Call in dependency order, before running
// analyzers on the package.
func (w *World) AddPackage(pkg *types.Package, info *types.Info, files []*ast.File) {
	for _, f := range files {
		w.scanFile(pkg, info, f)
	}
}

func (w *World) scanFile(pkg *types.Package, info *types.Info, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			key := funcKeyOf(pkg, d, info)
			if key == "" {
				continue
			}
			w.funcs[key] = &funcDecl{decl: d, info: info, pkg: pkg}
			for _, tag := range nblbTags(d.Doc) {
				w.addFuncTag(key, tag)
			}
			if note := deprecationNote(d.Doc); note != "" {
				w.deprecated[key] = note
			}
		case *ast.GenDecl:
			w.scanGenDecl(pkg, d)
		}
	}
}

func (w *World) scanGenDecl(pkg *types.Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			typeKey := pkg.Path() + "." + s.Name.Name
			for _, tag := range nblbTags(doc, s.Comment) {
				if f := strings.Fields(tag); len(f) > 0 && f[0] == "carries-pin" {
					w.carriers[typeKey] = true
				}
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				w.scanStructFields(typeKey, st)
			}
		case *ast.ValueSpec:
			// Package-level mutex vars: // nblb:lock <name>.
			for _, tag := range nblbTags(s.Doc, s.Comment) {
				if name, ok := strings.CutPrefix(tag, "lock "); ok {
					for _, id := range s.Names {
						w.locks[pkg.Path()+"."+id.Name] = strings.TrimSpace(name)
					}
				}
			}
		}
	}
}

func (w *World) scanStructFields(typeKey string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, tag := range nblbTags(field.Doc, field.Comment) {
			name, ok := strings.CutPrefix(tag, "lock ")
			if !ok {
				continue
			}
			name = strings.TrimSpace(name)
			if len(field.Names) == 0 {
				// Embedded mutex: bind under the embedded type's name.
				if id := embeddedFieldName(field.Type); id != "" {
					w.locks[typeKey+"."+id] = name
				}
				continue
			}
			for _, id := range field.Names {
				w.locks[typeKey+"."+id.Name] = name
			}
		}
	}
}

func embeddedFieldName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.StarExpr:
		return embeddedFieldName(t.X)
	}
	return ""
}

// addFuncTag records a tag, normalizing the known no-argument forms.
// Only the first token matters — prose after the tag ("nblb:commit-entry
// — why") is for the human reader.
func (w *World) addFuncTag(key, tag string) {
	if f := strings.Fields(tag); len(f) > 0 {
		tag = f[0]
	}
	switch tag {
	case "blocking-io", "commit-entry", "acquires-pin", "releases-pin":
		if w.funcTags[key] == nil {
			w.funcTags[key] = map[string]bool{}
		}
		w.funcTags[key][tag] = true
	}
}

// FuncHasTag reports whether the function key carries the tag, either
// from a source annotation or the built-in registry.
func (w *World) FuncHasTag(key, tag string) bool {
	if w.funcTags[key][tag] {
		return true
	}
	for _, t := range BuiltinFuncTags[key] {
		if t == tag {
			return true
		}
	}
	return false
}

// LockName resolves a field/var key to its lock name, preferring the
// source annotation over the built-in registry binding.
func (w *World) LockName(key string) (string, bool) {
	if n, ok := w.locks[key]; ok {
		return n, ok
	}
	n, ok := BuiltinLockFields[key]
	return n, ok
}

// AnnotatedLockName resolves only source-scanned nblb:lock annotations
// (no registry fallback) — lockorder uses it to check the two agree.
func (w *World) AnnotatedLockName(key string) (string, bool) {
	n, ok := w.locks[key]
	return n, ok
}

// IsCarrier reports whether the type key is tagged nblb:carries-pin.
func (w *World) IsCarrier(typeKey string) bool {
	if w.carriers[typeKey] {
		return true
	}
	for _, k := range BuiltinCarriers {
		if k == typeKey {
			return true
		}
	}
	return false
}

// DeprecationNote returns the Deprecated: note for a function key, if
// its defining package has been added to the world (or it is listed in
// the built-in registry).
func (w *World) DeprecationNote(key string) (string, bool) {
	if n, ok := w.deprecated[key]; ok {
		return n, ok
	}
	n, ok := BuiltinDeprecated[key]
	return n, ok
}

// nblbTags extracts "nblb:<tag...>" directives from comment groups.
func nblbTags(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := c.Text
			for {
				i := strings.Index(text, "nblb:")
				if i < 0 {
					break
				}
				rest := text[i+len("nblb:"):]
				if j := strings.IndexAny(rest, "\n"); j >= 0 {
					rest = rest[:j]
				}
				out = append(out, strings.TrimSpace(strings.TrimSuffix(rest, "*/")))
				text = text[i+len("nblb:"):]
			}
		}
	}
	return out
}

// deprecationNote returns the first Deprecated: line of a doc comment.
func deprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return line
		}
	}
	return ""
}

// --- object keys -----------------------------------------------------
//
// Keys are stable strings ("pkgpath.Type.Member" / "pkgpath.Func") so
// annotations and summaries survive across separately type-checked
// universes (the real module vs analysistest fixtures).

// funcKeyOf computes the key for a function declaration.
func funcKeyOf(pkg *types.Package, d *ast.FuncDecl, info *types.Info) string {
	if d.Name == nil {
		return ""
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkg.Path() + "." + d.Name.Name
	}
	recv := recvTypeName(d.Recv.List[0].Type)
	if recv == "" {
		return ""
	}
	return pkg.Path() + "." + recv + "." + d.Name.Name
}

func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// FuncKey computes the key for a resolved function/method object.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	recv := namedTypeName(sig.Recv().Type())
	if recv == "" {
		return ""
	}
	return fn.Pkg().Path() + "." + recv + "." + fn.Name()
}

// FieldKey computes the key for a struct field selection: the named
// type that declares (or embeds a path to) the field, dot the field.
func FieldKey(recvType types.Type, field *types.Var) string {
	name := namedTypeName(recvType)
	if name == "" || field.Pkg() == nil {
		return ""
	}
	return field.Pkg().Path() + "." + name + "." + field.Name()
}

// TypeKey returns "pkgpath.Name" for a (possibly pointer-wrapped) named
// type, or "" for everything else.
func TypeKey(t types.Type) string {
	name := namedTypeName(t)
	if name == "" {
		return ""
	}
	n, _ := derefNamed(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + name
}

func namedTypeName(t types.Type) string {
	n, _ := derefNamed(t)
	if n == nil {
		return ""
	}
	return n.Obj().Name()
}

func derefNamed(t types.Type) (*types.Named, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt, true
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil, false
		}
	}
}
