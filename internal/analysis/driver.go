package analysis

// RunPackages is the whole-program driver core shared by cmd/nblb-vet
// and the golden tests: every package is added to the world first (so
// summaries and annotations span all of them), then each analyzer runs
// over each package. Packages must already be in dependency order, as
// Loader.Load returns them.
func RunPackages(world *World, pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, lp := range pkgs {
		world.AddPackage(lp.Pkg, lp.Info, lp.Files)
	}
	for _, lp := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     world.Fset,
				Files:    lp.Files,
				Pkg:      lp.Pkg,
				Info:     lp.Info,
				World:    world,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
