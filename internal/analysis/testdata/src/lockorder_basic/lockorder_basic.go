// Package lockorder_basic exercises the lockorder analyzer: direct
// inversions, self-deadlock on SelfUnsafe locks, inversions reached
// through a callee's summary, and the TryLock exemption.
package lockorder_basic

import "sync"

type Engine struct {
	// nblb:lock engine-mu
	mu sync.Mutex
}

type Table struct {
	// nblb:lock table-mu
	mu sync.Mutex
}

type Shard struct {
	// nblb:lock heap-shard
	mu sync.Mutex
}

// Good follows rule 7: engine-mu outside table-mu.
func Good(e *Engine, t *Table) {
	e.mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	e.mu.Unlock()
}

// Bad inverts the documented edge.
func Bad(e *Engine, t *Table) {
	t.mu.Lock()
	e.mu.Lock() // want "acquires \"engine-mu\" while holding \"table-mu\" .*inverts documented lock order"
	e.mu.Unlock()
	t.mu.Unlock()
}

// SelfBad holds two heap shard mutexes at once (rule 3).
func SelfBad(a, b *Shard) {
	a.mu.Lock()
	b.mu.Lock() // want "acquires \"heap-shard\" while holding \"heap-shard\""
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockEngine(e *Engine) {
	e.mu.Lock()
	e.mu.Unlock()
}

// IndirectBad reaches engine-mu through a helper while holding the
// table mutex — caught via lockEngine's summary.
func IndirectBad(e *Engine, t *Table) {
	t.mu.Lock()
	lockEngine(e) // want "call may acquire \"engine-mu\" \(via lockEngine\) while holding \"table-mu\""
	t.mu.Unlock()
}

// TryOK: TryLock cannot block, so ordering does not apply.
func TryOK(e *Engine, t *Table) {
	t.mu.Lock()
	if e.mu.TryLock() {
		e.mu.Unlock()
	}
	t.mu.Unlock()
}

// BranchRelease drops the engine mutex on every branch before taking
// the table mutex; the held sets intersect to empty at the join.
func BranchRelease(e *Engine, t *Table, cond bool) {
	e.mu.Lock()
	if cond {
		e.mu.Unlock()
	} else {
		e.mu.Unlock()
	}
	t.mu.Lock()
	t.mu.Unlock()
}
