// Package a exercises the walseam analyzer: blocking I/O under the
// commitGate (direct and through a helper's summary), the commit-entry
// exemption, and TestPoint crash-matrix registration.
package a

import (
	"sync"

	"walseam_gate/wal"
)

type Engine struct {
	// nblb:lock commitGate
	gate sync.RWMutex

	log *wal.Log
}

// Bad fsyncs directly under the gate.
func (e *Engine) Bad() {
	e.gate.Lock()
	e.log.Sync() // want "calls Log\.Sync \(nblb:blocking-io\) while holding \"commitGate\""
	e.gate.Unlock()
}

func (e *Engine) appendHelper(b []byte) {
	e.log.Append(b)
}

// BadIndirect reaches the log through a helper; the summary carries the
// blocking-io effect up to the gate-holding call site.
func (e *Engine) BadIndirect(b []byte) {
	e.gate.Lock()
	e.appendHelper(b) // want "call may reach Log\.Append \(nblb:blocking-io, via Engine\.appendHelper.*\) while holding \"commitGate\""
	e.gate.Unlock()
}

// Commit is the audited entry point: I/O under the gate is its job.
// nblb:commit-entry
func (e *Engine) Commit(b []byte) {
	e.gate.Lock()
	e.log.Append(b)
	e.log.Sync()
	e.gate.Unlock()
}

// GoodOutside does its I/O before taking the gate.
func (e *Engine) GoodOutside(b []byte) {
	e.log.Append(b)
	e.gate.Lock()
	e.gate.Unlock()
}

// Seams exercises TestPoint registration: wal:append has a crash-matrix
// case, zz:unregistered does not.
func Seams() {
	wal.TestPoint("wal:append")
	wal.TestPoint("zz:unregistered") // want "wal\.TestPoint\(\"zz:unregistered\"\) has no crash-matrix case"
}
