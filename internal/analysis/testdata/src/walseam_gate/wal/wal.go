// Package wal mimics the engine's log surface for the walseam fixture:
// a TestPoint seam and blocking-io-tagged append/sync.
package wal

// TestPoint is the crash-injection seam.
func TestPoint(name string) {}

type Log struct{}

// Append writes a record.
// nblb:blocking-io
func (l *Log) Append(b []byte) error { return nil }

// Sync fsyncs the log.
// nblb:blocking-io
func (l *Log) Sync() error { return nil }
