// Package pinleak_latch exercises the pinleak analyzer's frame-latch
// half: a latch acquired through an nblb:lock frame-latch field must be
// released on every path, and a TryLock is live only in the branch
// where it succeeded.
package pinleak_latch

import "sync"

type Frame struct {
	// nblb:lock frame-latch
	Latch sync.RWMutex
	id    uint32
}

func get() *Frame { return &Frame{} }

// GoodLatch releases the latch on both paths out.
func GoodLatch(cond bool) {
	fr := get()
	fr.Latch.Lock()
	if cond {
		fr.Latch.Unlock()
		return
	}
	fr.Latch.Unlock()
}

// GoodTry holds the latch only where TryLock succeeded.
func GoodTry() {
	fr := get()
	if fr.Latch.TryLock() {
		fr.Latch.Unlock()
	}
}

// GoodHandoff returns the latched frame; releasing is the caller's job.
func GoodHandoff() *Frame {
	fr := get()
	fr.Latch.RLock()
	return fr
}

// BadLatch leaks the latch on the early return.
func BadLatch(cond bool) {
	fr := get()
	fr.Latch.Lock()
	if cond {
		return // want "return leaks the frame latch acquired at .*\(Lock\)"
	}
	fr.Latch.Unlock()
}

// BadTry forgets the unlock on the success branch.
func BadTry() bool {
	fr := get()
	if fr.Latch.TryLock() {
		return true // want "return leaks the frame latch acquired at .*\(TryLock\)"
	}
	return false
}
