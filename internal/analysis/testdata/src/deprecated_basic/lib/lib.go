// Package lib declares one deprecated API and its replacement for the
// deprecated-internal fixture.
package lib

// Old is the legacy scan API.
//
// Deprecated: Old is retired; use New.
func Old() int { return 1 }

// New replaces Old.
func New() int { return 2 }
