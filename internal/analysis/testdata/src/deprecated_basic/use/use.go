// Package use exercises the deprecated-internal analyzer: a flagged
// call, a nolint suppression with a reason (silent), and a reasonless
// nolint (reported in its own right).
package use

import "deprecated_basic/lib"

// Fine calls the replacement.
func Fine() int { return lib.New() }

// Bad calls the deprecated API.
func Bad() int {
	return lib.Old() // want "call to deprecated Old — Old is retired; use New\."
}

// Suppressed measures the legacy path on purpose; the reasoned nolint
// keeps it silent.
func Suppressed() int {
	return lib.Old() //nolint:nblb-deprecated // benchmarking the legacy path
}

// SuppressedNoReason shows a reasonless nolint is itself a finding.
func SuppressedNoReason() int {
	// want+1 "nolint:nblb-deprecated without a reason"
	return lib.Old() //nolint:nblb-deprecated
}
