// Package lockorder_pr9 is the regression fixture for PR 9's 3-way
// deadlock: Table.Apply held the commitGate while its timestamp helper
// took txnMu, against Txn.Commit's documented txnMu → commitGate order.
// ApplyPreFix reproduces the buggy shape (flagged); ApplyPostFix is the
// shipped fix (stamp before entering the gate — clean).
package lockorder_pr9

import "sync"

// Engine mirrors the core.Engine fields involved in the deadlock.
type Engine struct {
	// nblb:lock txnMu
	txnMu sync.Mutex
	// nblb:lock commitGate
	commitGate sync.RWMutex

	clock uint64
}

// rawStampTS stamps a commit timestamp under txnMu.
func (e *Engine) rawStampTS() uint64 {
	e.txnMu.Lock()
	e.clock++
	ts := e.clock
	e.txnMu.Unlock()
	return ts
}

// ApplyPreFix is the pre-fix shape: the gate is held when the stamp
// helper takes txnMu.
func (e *Engine) ApplyPreFix() uint64 {
	e.commitGate.RLock()
	ts := e.rawStampTS() // want "call may acquire \"txnMu\" \(via Engine\.rawStampTS\) while holding \"commitGate\""
	e.commitGate.RUnlock()
	return ts
}

// ApplyPostFix is the fix: stamp first, then enter the gate.
func (e *Engine) ApplyPostFix() uint64 {
	ts := e.rawStampTS()
	e.commitGate.RLock()
	e.commitGate.RUnlock()
	return ts
}

// Commit holds txnMu outside the gate — the documented order.
func (e *Engine) Commit() {
	e.txnMu.Lock()
	e.commitGate.RLock()
	e.commitGate.RUnlock()
	e.txnMu.Unlock()
}
