// Package pinleak_basic exercises the pinleak analyzer's pin half:
// acquisition via an nblb:acquires-pin function, release on every
// path, escapes through returns and carrier types, and the flagged
// shapes (early-return leak, non-carrier store, discarded result).
package pinleak_basic

import "errors"

type Frame struct{ id uint32 }

type Pool struct{}

// Fetch pins a page.
// nblb:acquires-pin
func (p *Pool) Fetch(id uint32) (*Frame, error) {
	if id == 0 {
		return nil, errors.New("no page")
	}
	return &Frame{id: id}, nil
}

// Unpin releases a pin.
// nblb:releases-pin
func (p *Pool) Unpin(fr *Frame, dirty bool) {}

// Cursor legitimately carries a pinned frame between calls.
// nblb:carries-pin
type Cursor struct{ fr *Frame }

// holder is NOT a carrier; parking a pin here is a quiet leak.
type holder struct{ fr *Frame }

// Good releases on the success path and has nothing to release on the
// error path.
func Good(p *Pool) error {
	fr, err := p.Fetch(1)
	if err != nil {
		return err
	}
	p.Unpin(fr, false)
	return nil
}

// GoodDefer releases via defer, satisfying every path.
func GoodDefer(p *Pool, cond bool) error {
	fr, err := p.Fetch(1)
	if err != nil {
		return err
	}
	defer p.Unpin(fr, false)
	if cond {
		return errors.New("early")
	}
	return nil
}

// GoodEscape returns the frame: the pin is the caller's contract now.
func GoodEscape(p *Pool) (*Frame, error) {
	fr, err := p.Fetch(1)
	if err != nil {
		return nil, err
	}
	return fr, nil
}

// GoodCarrier hands the pin to an nblb:carries-pin type.
func GoodCarrier(p *Pool) (*Cursor, error) {
	fr, err := p.Fetch(1)
	if err != nil {
		return nil, err
	}
	return &Cursor{fr: fr}, nil
}

// Bad leaks the pin on the mid-function error return.
func Bad(p *Pool) error {
	fr, err := p.Fetch(1)
	if err != nil {
		return err
	}
	if fr.id > 10 {
		return errors.New("out of range") // want "return leaks the pin acquired at .*\(Pool\.Fetch\)"
	}
	p.Unpin(fr, false)
	return nil
}

// BadStore parks the pin in a non-carrier struct.
func BadStore(p *Pool, h *holder) error {
	fr, err := p.Fetch(1)
	if err != nil {
		return err
	}
	h.fr = fr // want "pin acquired at .* escapes into .*holder, which is not annotated nblb:carries-pin"
	return nil
}

// BadDiscard drops the pinned frame on the floor.
func BadDiscard(p *Pool) {
	p.Fetch(1) // want "result of Pool\.Fetch \(nblb:acquires-pin\) is discarded"
}
