package encoding

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// Enc enumerates physical encodings the advisor can choose.
type Enc uint8

// Encoding choices.
const (
	// EncInt stores value-MinInt in Bits bits.
	EncInt Enc = iota
	// EncBool stores one bit.
	EncBool
	// EncFloat stores the raw 64 IEEE bits.
	EncFloat
	// EncEpoch32 stores a 32-bit epoch (timestamps, incl. timestamp14
	// strings, regenerated on decode).
	EncEpoch32
	// EncNumericString stores a digit string as offset integer plus a
	// 5-bit length (leading zeros preserved by re-padding).
	EncNumericString
	// EncDict stores an index into a value dictionary in Bits bits.
	EncDict
	// EncRaw stores length-prefixed raw bytes (no win found).
	EncRaw
)

// String names the encoding.
func (e Enc) String() string {
	switch e {
	case EncInt:
		return "int"
	case EncBool:
		return "bool-bit"
	case EncFloat:
		return "float64"
	case EncEpoch32:
		return "epoch32"
	case EncNumericString:
		return "numeric-string"
	case EncDict:
		return "dictionary"
	case EncRaw:
		return "raw"
	default:
		return "?"
	}
}

// Recommendation is the advisor's verdict for one column.
type Recommendation struct {
	Field tuple.Field
	Enc   Enc
	// Bits is the fixed payload width per non-null value (excluding the
	// null bit). 0 for EncRaw (variable) and for constant columns.
	Bits int
	// Offset is subtracted before storing EncInt values.
	Offset int64
	// Dict is the value dictionary for EncDict, sorted.
	Dict []string
	// DictOverheadBits is the dictionary's own storage amortized per
	// row; it counts toward the encoding's true cost.
	DictOverheadBits float64
	// StrLen is the digit-string length cap for EncNumericString.
	StrLen int
	// Nullable reserves a null bit per value.
	Nullable bool
	// Note explains the decision for the report.
	Note string
}

// BitsPerValue returns the average storage cost per value including the
// null bit and, for EncRaw, the measured average length.
func (r Recommendation) BitsPerValue(p *ColumnProfile) float64 {
	bits := float64(r.Bits)
	if r.Enc == EncRaw {
		bits = 8*p.AvgLen() + 16 // 2-byte length prefix
	}
	if r.Enc == EncNumericString {
		bits += 5 // stored length for zero-padding reconstruction
	}
	if r.Enc == EncDict {
		bits += r.DictOverheadBits
	}
	if r.Nullable {
		bits++
	}
	return bits
}

// Advise chooses the minimal physical encoding for a profiled column —
// Section 4.1's "infer true field types and value distributions to
// modify internal field definitions".
func Advise(p *ColumnProfile) Recommendation {
	f := p.Field
	rec := Recommendation{Field: f, Nullable: p.HasNulls()}
	nonNull := p.Rows - p.Nulls
	switch f.Kind {
	case tuple.KindBool:
		rec.Enc = EncBool
		rec.Bits = 1
		rec.Note = "boolean to 1 bit"
	case tuple.KindInt64, tuple.KindInt32, tuple.KindInt16, tuple.KindInt8:
		if nonNull == 0 {
			rec.Enc, rec.Bits, rec.Note = EncInt, 0, "all NULL"
			break
		}
		span := uint64(p.MaxInt-p.MinInt) + 1
		rec.Enc = EncInt
		rec.Bits = BitsFor(span)
		rec.Offset = p.MinInt
		switch {
		case span <= 2:
			rec.Note = fmt.Sprintf("%s holds 0/1-like range [%d,%d]: boolean in disguise", f.Kind, p.MinInt, p.MaxInt)
		default:
			rec.Note = fmt.Sprintf("%s holds [%d,%d]: %d bits suffice", f.Kind, p.MinInt, p.MaxInt, rec.Bits)
		}
	case tuple.KindTimestamp:
		rec.Enc = EncEpoch32
		rec.Bits = 32
		rec.Note = "timestamp to 32-bit epoch"
	case tuple.KindFloat64:
		if nonNull > 0 && p.AllIntegralFloats {
			span := uint64(p.MaxInt-p.MinInt) + 1
			rec.Enc = EncInt
			rec.Bits = BitsFor(span)
			rec.Offset = p.MinInt
			rec.Note = "float column holds only integers"
		} else {
			rec.Enc = EncFloat
			rec.Bits = 64
			rec.Note = "true doubles kept at 64 bits"
		}
	case tuple.KindChar, tuple.KindString, tuple.KindBytes:
		rec = adviseString(p, rec)
	default:
		rec.Enc = EncRaw
		rec.Note = "unknown kind kept raw"
	}
	return rec
}

func adviseString(p *ColumnProfile, rec Recommendation) Recommendation {
	nonNull := p.Rows - p.Nulls
	if nonNull == 0 {
		rec.Enc, rec.Bits, rec.Note = EncRaw, 0, "all NULL"
		return rec
	}
	if p.AllTimestamp14 && p.MaxLen == 14 {
		rec.Enc = EncEpoch32
		rec.Bits = 32
		rec.Note = "14-byte string timestamp to 4-byte epoch (the paper's flagship case)"
		return rec
	}
	if p.AllNumeric && p.MaxLen <= 18 && p.Field.Kind != tuple.KindBytes {
		span := uint64(p.MaxInt-p.MinInt) + 1
		rec.Enc = EncNumericString
		rec.Bits = BitsFor(span)
		rec.Offset = p.MinInt
		rec.StrLen = p.MaxLen
		rec.Note = fmt.Sprintf("numeric string [%d,%d] stored as %d-bit int", p.MinInt, p.MaxInt, rec.Bits)
		return rec
	}
	if !p.DistinctOverflow && p.Field.Kind != tuple.KindBytes {
		dict := p.DistinctStrings()
		bits := BitsFor(uint64(len(dict)))
		// Dictionary pays off only when index bits plus the dictionary's
		// own storage (amortized per row) undercut raw storage — a column
		// of unique strings must never "win" this way.
		overhead := float64(p.DistinctBytes()*8) / float64(nonNull)
		rawBits := 8*p.AvgLen() + 16
		if float64(bits)+overhead < rawBits*0.75 {
			sort.Strings(dict)
			rec.Enc = EncDict
			rec.Bits = bits
			rec.Dict = dict
			rec.DictOverheadBits = overhead
			rec.Note = fmt.Sprintf("%d distinct values: %d-bit dictionary index (+%.1f amortized dict bits)", len(dict), bits, overhead)
			return rec
		}
	}
	rec.Enc = EncRaw
	rec.Note = "no narrower encoding found"
	return rec
}

// ColumnReport pairs a recommendation with its measured waste.
type ColumnReport struct {
	Rec          Recommendation
	Profile      *ColumnProfile
	DeclaredBits float64 // average bits the declared type spends/value
	OptimalBits  float64 // average bits the recommendation spends/value
}

// WastePct returns the percentage of the column's declared footprint
// the recommendation eliminates.
func (c ColumnReport) WastePct() float64 {
	if c.DeclaredBits <= 0 {
		return 0
	}
	w := (c.DeclaredBits - c.OptimalBits) / c.DeclaredBits * 100
	if w < 0 {
		return 0
	}
	return w
}

// TableReport aggregates column reports — the Section 4.1 analysis
// ("16% to 83% waste through simple techniques").
type TableReport struct {
	Name    string
	Rows    int64
	Columns []ColumnReport
}

// DeclaredBytes returns the table's data footprint under declared types.
func (t TableReport) DeclaredBytes() int64 {
	var bits float64
	for _, c := range t.Columns {
		bits += c.DeclaredBits
	}
	return int64(bits * float64(t.Rows) / 8)
}

// OptimalBytes returns the footprint under recommended encodings.
func (t TableReport) OptimalBytes() int64 {
	var bits float64
	for _, c := range t.Columns {
		bits += c.OptimalBits
	}
	return int64(bits * float64(t.Rows) / 8)
}

// WastePct returns the table-level waste percentage.
func (t TableReport) WastePct() float64 {
	d := t.DeclaredBytes()
	if d == 0 {
		return 0
	}
	return float64(d-t.OptimalBytes()) / float64(d) * 100
}

// AnalyzeRows profiles a row stream and produces the full report.
func AnalyzeRows(name string, schema *tuple.Schema, next func() (tuple.Row, bool)) TableReport {
	profiles := ProfileRows(schema, next)
	report := TableReport{Name: name}
	if len(profiles) > 0 {
		report.Rows = profiles[0].Rows
	}
	for _, p := range profiles {
		rec := Advise(p)
		declared := float64(p.Field.DeclaredBits())
		// VARCHAR/VARBINARY are stored variable-length regardless of the
		// declared maximum, so their true "declared" footprint is the
		// measured average plus a length prefix. CHAR stays padded.
		if p.Field.Kind == tuple.KindString || p.Field.Kind == tuple.KindBytes || declared == 0 {
			declared = 8*p.AvgLen() + 16
		}
		report.Columns = append(report.Columns, ColumnReport{
			Rec:          rec,
			Profile:      p,
			DeclaredBits: declared,
			OptimalBits:  rec.BitsPerValue(p),
		})
	}
	return report
}
