// Package encoding implements Section 4.1's automated schema
// optimization: column analysis that treats declared types as hints,
// per-column minimal-encoding recommendations (down to single bits),
// a waste report, and a bit-packed row codec that realizes the
// recommendations.
package encoding

import "fmt"

// BitWriter packs values MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	nbit int // bits written so far
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("encoding: WriteBits n=%d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		byteIdx := w.nbit / 8
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit == 1 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// WriteBool appends one bit.
func (w *BitWriter) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// WriteBytes appends whole bytes (8 bits each, preserving order).
func (w *BitWriter) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the packed buffer (the final partial byte zero-padded).
func (w *BitWriter) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// BitReader unpacks values written by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader reads from buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits extracts the next n bits as a uint64 (MSB-first).
func (r *BitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("encoding: ReadBits n=%d out of range", n)
	}
	if r.pos+n > len(r.buf)*8 {
		return 0, fmt.Errorf("encoding: bit stream exhausted at %d+%d of %d", r.pos, n, len(r.buf)*8)
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos / 8
		bit := (r.buf[byteIdx] >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadBool extracts one bit.
func (r *BitReader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadBytes extracts n whole bytes.
func (r *BitReader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }

// BitsFor returns the minimum number of bits representing values in
// [0, n-1]; BitsFor(1) is 0 (a constant needs no bits), BitsFor(2) is 1.
func BitsFor(n uint64) int {
	if n <= 1 {
		return 0
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
