package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteBool(true)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBytes([]byte{1, 2, 3})
	w.WriteBits(0, 0) // zero-width write is a no-op

	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("3-bit value = %b", v)
	}
	if b, _ := r.ReadBool(); !b {
		t.Error("bool = false")
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Errorf("32-bit value = %x", v)
	}
	if bs, _ := r.ReadBytes(3); bs[0] != 1 || bs[1] != 2 || bs[2] != 3 {
		t.Errorf("bytes = %v", bs)
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err == nil {
		t.Error("reading past the end should fail")
	}
}

func TestPropertyBitRoundTrip(t *testing.T) {
	f := func(vals []uint64, widthsRaw []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(widthsRaw) == 0 {
			widthsRaw = []uint8{17}
		}
		w := NewBitWriter()
		widths := make([]int, len(vals))
		for i, v := range vals {
			n := 1 + int(widthsRaw[i%len(widthsRaw)]%64)
			widths[i] = n
			w.WriteBits(v&mask(n), n)
		}
		r := NewBitReader(w.Bytes())
		for i, v := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != v&mask(widths[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8, 257: 9}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTimestamp14RoundTrip(t *testing.T) {
	for _, epoch := range []int64{0, 1, 86399, 86400, 1262304000, 1893456000} {
		s := FormatTS14(epoch)
		if len(s) != 14 {
			t.Fatalf("FormatTS14(%d) = %q, not 14 chars", epoch, s)
		}
		back, ok := ParseTS14(s)
		if !ok || back != epoch {
			t.Errorf("ParseTS14(FormatTS14(%d)) = %d, %v", epoch, back, ok)
		}
	}
}

func TestParseTS14Rejects(t *testing.T) {
	bad := []string{"", "2011", "2011010412345x", "00000000000000", "19691231235959", "20111340123456"}
	for _, s := range bad {
		if _, ok := ParseTS14(s); ok {
			t.Errorf("ParseTS14(%q) accepted", s)
		}
	}
}

func TestAdviseSmallRangeBigint(t *testing.T) {
	f := tuple.Field{Name: "flag", Kind: tuple.KindInt64}
	p := NewColumnProfile(f)
	for i := 0; i < 100; i++ {
		p.Observe(tuple.Int64(int64(i % 2)))
	}
	rec := Advise(p)
	if rec.Enc != EncInt || rec.Bits != 1 {
		t.Errorf("0/1 BIGINT should advise 1-bit int, got %v/%d", rec.Enc, rec.Bits)
	}
}

func TestAdviseOffsetRange(t *testing.T) {
	f := tuple.Field{Name: "year", Kind: tuple.KindInt64}
	p := NewColumnProfile(f)
	for y := 2000; y < 2012; y++ {
		p.Observe(tuple.Int64(int64(y)))
	}
	rec := Advise(p)
	if rec.Enc != EncInt || rec.Offset != 2000 || rec.Bits != 4 {
		t.Errorf("range [2000,2011] should be 4 bits offset 2000, got %+v", rec)
	}
}

func TestAdviseTimestampString(t *testing.T) {
	f := tuple.Field{Name: "ts", Kind: tuple.KindChar, Size: 14}
	p := NewColumnProfile(f)
	for i := 0; i < 50; i++ {
		p.Observe(tuple.Char(FormatTS14(int64(1262304000 + i*1000))))
	}
	rec := Advise(p)
	if rec.Enc != EncEpoch32 || rec.Bits != 32 {
		t.Errorf("timestamp14 string should advise epoch32, got %+v", rec)
	}
}

func TestAdviseNumericString(t *testing.T) {
	f := tuple.Field{Name: "zip", Kind: tuple.KindString}
	p := NewColumnProfile(f)
	for i := 0; i < 200; i++ {
		p.Observe(tuple.String(zeroPad(i*37%99999, 5)))
	}
	rec := Advise(p)
	if rec.Enc != EncNumericString {
		t.Errorf("digit strings should advise numeric-string, got %+v", rec)
	}
}

func zeroPad(n, width int) string {
	s := ""
	for i := 0; i < width; i++ {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestAdviseDictionaryOnlyWithRepetition(t *testing.T) {
	f := tuple.Field{Name: "status", Kind: tuple.KindString}
	repeated := NewColumnProfile(f)
	opts := []string{"active", "deleted", "pending"}
	for i := 0; i < 500; i++ {
		repeated.Observe(tuple.String(opts[i%3]))
	}
	if rec := Advise(repeated); rec.Enc != EncDict {
		t.Errorf("3 values over 500 rows should advise dictionary, got %+v", rec)
	}
	unique := NewColumnProfile(tuple.Field{Name: "body", Kind: tuple.KindString})
	for i := 0; i < 500; i++ {
		unique.Observe(tuple.String(zeroPad(i, 4) + "-unique-content-with-padding-xyz"))
	}
	if rec := Advise(unique); rec.Enc == EncDict {
		t.Error("unique strings must not advise dictionary (dict storage outweighs)")
	}
}

func TestAdviseIntegralFloats(t *testing.T) {
	p := NewColumnProfile(tuple.Field{Name: "count", Kind: tuple.KindFloat64})
	for i := 0; i < 100; i++ {
		p.Observe(tuple.Float64(float64(i % 50)))
	}
	rec := Advise(p)
	if rec.Enc != EncInt {
		t.Errorf("integral floats should advise int, got %+v", rec)
	}
	p2 := NewColumnProfile(tuple.Field{Name: "lat", Kind: tuple.KindFloat64})
	for i := 0; i < 100; i++ {
		p2.Observe(tuple.Float64(42.3 + float64(i)/1000))
	}
	if rec := Advise(p2); rec.Enc != EncFloat {
		t.Errorf("true floats should stay float64, got %+v", rec)
	}
}

func TestAdviseNullability(t *testing.T) {
	p := NewColumnProfile(tuple.Field{Name: "x", Kind: tuple.KindInt64})
	p.Observe(tuple.Int64(5))
	p.Observe(tuple.Null(tuple.KindInt64))
	rec := Advise(p)
	if !rec.Nullable {
		t.Error("column with NULLs must be nullable")
	}
}

func packedTestSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "flag", Kind: tuple.KindInt64},
		tuple.Field{Name: "speed", Kind: tuple.KindInt64},
		tuple.Field{Name: "ratio", Kind: tuple.KindFloat64},
		tuple.Field{Name: "ts", Kind: tuple.KindChar, Size: 14},
		tuple.Field{Name: "status", Kind: tuple.KindString},
		tuple.Field{Name: "note", Kind: tuple.KindString},
		tuple.Field{Name: "when", Kind: tuple.KindTimestamp},
	)
}

func packedTestRow(rng *rand.Rand, i int) tuple.Row {
	statuses := []string{"a", "b", "c", "d"}
	row := tuple.Row{
		tuple.Int64(int64(i % 2)),
		tuple.Int64(int64(rng.Intn(200))),
		tuple.Float64(rng.NormFloat64()),
		tuple.Char(FormatTS14(int64(1262304000 + rng.Intn(1_000_000)))),
		tuple.String(statuses[rng.Intn(len(statuses))]),
		tuple.String(zeroPad(rng.Intn(100000), 3+rng.Intn(4)) + "-free-text"),
		tuple.TimestampUnix(int64(rng.Intn(2_000_000_000))),
	}
	if rng.Intn(10) == 0 {
		row[1] = tuple.Null(tuple.KindInt64)
	}
	return row
}

func TestPackedCodecRoundTripFromAdvice(t *testing.T) {
	schema := packedTestSchema()
	rng := rand.New(rand.NewSource(31))
	rows := make([]tuple.Row, 400)
	for i := range rows {
		rows[i] = packedTestRow(rng, i)
	}
	i := 0
	report := AnalyzeRows("t", schema, func() (tuple.Row, bool) {
		if i >= len(rows) {
			return nil, false
		}
		r := rows[i]
		i++
		return r, true
	})
	recs := make([]Recommendation, len(report.Columns))
	for j, c := range report.Columns {
		recs[j] = c.Rec
	}
	codec, err := NewPackedCodec(schema, recs)
	if err != nil {
		t.Fatalf("NewPackedCodec: %v", err)
	}
	buf, err := codec.EncodeRows(rows)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	back, err := codec.DecodeRows(buf, len(rows))
	if err != nil {
		t.Fatalf("DecodeRows: %v", err)
	}
	for j := range rows {
		if !rows[j].Equal(back[j]) {
			t.Fatalf("row %d did not round-trip:\n got %v\nwant %v", j, back[j], rows[j])
		}
	}
	// The packed form must actually be denser than the declared codec.
	var declared int
	for _, r := range rows {
		n, err := tuple.EncodedSize(schema, r)
		if err != nil {
			t.Fatal(err)
		}
		declared += n
	}
	if len(buf) >= declared {
		t.Errorf("packed %d bytes not smaller than declared %d", len(buf), declared)
	}
}

func TestPackedCodecRejectsOutOfRange(t *testing.T) {
	schema := tuple.MustSchema(tuple.Field{Name: "x", Kind: tuple.KindInt64})
	p := NewColumnProfile(schema.Field(0))
	for i := 0; i < 10; i++ {
		p.Observe(tuple.Int64(int64(i)))
	}
	rec := Advise(p)
	codec, err := NewPackedCodec(schema, []Recommendation{rec})
	if err != nil {
		t.Fatal(err)
	}
	w := NewBitWriter()
	if err := codec.Encode(tuple.Row{tuple.Int64(1000)}, w); err == nil {
		t.Error("value outside profiled range must be rejected")
	}
	if err := codec.Encode(tuple.Row{tuple.Null(tuple.KindInt64)}, w); err == nil {
		t.Error("NULL in non-nullable column must be rejected")
	}
}

// TestPackedCodecFullWidthInt covers the Bits == 64 degenerate case of
// the EncInt range check: `1 << 64` is 0 for a uint64, so without the
// Bits < 64 guard (grouped exactly as in EncNumericString) every value
// would be rejected as out of range. Extreme int64 values must round-
// trip.
func TestPackedCodecFullWidthInt(t *testing.T) {
	schema := tuple.MustSchema(tuple.Field{Name: "x", Kind: tuple.KindInt64})
	rec := Recommendation{Field: schema.Field(0), Enc: EncInt, Bits: 64, Offset: math.MinInt64}
	codec, err := NewPackedCodec(schema, []Recommendation{rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		w := NewBitWriter()
		if err := codec.Encode(tuple.Row{tuple.Int64(x)}, w); err != nil {
			t.Fatalf("Encode(%d) with Bits=64: %v", x, err)
		}
		row, err := codec.Decode(NewBitReader(w.Bytes()))
		if err != nil {
			t.Fatalf("Decode(%d): %v", x, err)
		}
		if row[0].Int != x {
			t.Errorf("round trip %d -> %d", x, row[0].Int)
		}
	}
	// The in-range rejection must still fire for narrower widths.
	narrow := Recommendation{Field: schema.Field(0), Enc: EncInt, Bits: 4, Offset: 0}
	codec, err = NewPackedCodec(schema, []Recommendation{narrow})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Encode(tuple.Row{tuple.Int64(16)}, NewBitWriter()); err == nil {
		t.Error("16 must not fit in 4 bits")
	}
	if err := codec.Encode(tuple.Row{tuple.Int64(-1)}, NewBitWriter()); err == nil {
		t.Error("below-offset value must be rejected")
	}
}

func TestWasteReportInvariants(t *testing.T) {
	schema := packedTestSchema()
	rng := rand.New(rand.NewSource(37))
	i := 0
	report := AnalyzeRows("t", schema, func() (tuple.Row, bool) {
		if i >= 300 {
			return nil, false
		}
		r := packedTestRow(rng, i)
		i++
		return r, true
	})
	if report.Rows != 300 {
		t.Errorf("Rows = %d", report.Rows)
	}
	if report.WastePct() < 0 || report.WastePct() > 100 {
		t.Errorf("WastePct = %f", report.WastePct())
	}
	if report.OptimalBytes() > report.DeclaredBytes() {
		t.Error("optimal exceeds declared")
	}
	for _, c := range report.Columns {
		if c.WastePct() < 0 || c.WastePct() > 100 {
			t.Errorf("column %s WastePct = %f", c.Rec.Field.Name, c.WastePct())
		}
	}
}
