package encoding

import "fmt"

// MediaWiki stores timestamps as 14-character digit strings
// ("20110104123456") — the paper's flagship encoding-waste example: 14
// bytes for a value a 4-byte integer holds. FormatTS14 and ParseTS14
// are exact inverses over the supported range, so the packed codec can
// store the 32-bit epoch and regenerate the string losslessly.
//
// The calendar mapping is a simplified proleptic one (365-day years,
// 31-day months); experiments only need digits-in/digits-out fidelity,
// not calendar correctness.

// FormatTS14 renders epoch seconds as a 14-digit string.
func FormatTS14(epoch int64) string {
	days := epoch / 86400
	secs := epoch % 86400
	year := 1970 + days/365
	doy := days % 365
	month := doy/31 + 1
	day := doy%31 + 1
	return fmt.Sprintf("%04d%02d%02d%02d%02d%02d",
		year, month, day, secs/3600, (secs%3600)/60, secs%60)
}

// ParseTS14 parses a 14-digit string back to epoch seconds. It returns
// ok=false when the string is not a well-formed timestamp14 (wrong
// length, non-digits, or fields outside the ranges FormatTS14 emits).
func ParseTS14(s string) (int64, bool) {
	if len(s) != 14 {
		return 0, false
	}
	for i := 0; i < 14; i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
	}
	num := func(a, b int) int {
		n := 0
		for _, c := range s[a:b] {
			n = n*10 + int(c-'0')
		}
		return n
	}
	year, month, day := num(0, 4), num(4, 6), num(6, 8)
	hh, mm, ss := num(8, 10), num(10, 12), num(12, 14)
	if year < 1970 || month < 1 || month > 12 || day < 1 || day > 31 ||
		hh > 23 || mm > 59 || ss > 59 {
		return 0, false
	}
	doy := (month-1)*31 + (day - 1)
	if doy >= 365 {
		return 0, false
	}
	days := int64(year-1970)*365 + int64(doy)
	return days*86400 + int64(hh)*3600 + int64(mm)*60 + int64(ss), true
}
