package encoding

import (
	"math"

	"repro/internal/tuple"
)

// distinctCap bounds the per-column distinct-value set kept during
// profiling; beyond it dictionary encoding is off the table anyway.
const distinctCap = 4096

// ColumnProfile accumulates value statistics for one column — the raw
// material for an encoding recommendation. Observe is called once per
// row; the profile never stores more than distinctCap values.
type ColumnProfile struct {
	Field tuple.Field
	Rows  int64
	Nulls int64

	// Numeric statistics (Int*, Bool, Timestamp kinds and numeric
	// strings).
	MinInt, MaxInt int64
	intSeen        bool

	// Float statistics.
	AllIntegralFloats bool
	floatSeen         bool

	// String/char statistics.
	MaxLen         int
	TotalLen       int64
	AllDigits      bool
	AllTimestamp14 bool
	AllNumeric     bool // parseable as int64
	strSeen        bool

	distinct         map[string]struct{}
	distinctBytes    int64 // total bytes across distinct values
	DistinctOverflow bool
}

// NewColumnProfile starts an empty profile for the field.
func NewColumnProfile(f tuple.Field) *ColumnProfile {
	return &ColumnProfile{
		Field:             f,
		AllDigits:         true,
		AllTimestamp14:    true,
		AllNumeric:        true,
		AllIntegralFloats: true,
		distinct:          make(map[string]struct{}),
	}
}

// Distinct returns the number of distinct non-null values seen, valid
// only when DistinctOverflow is false.
func (p *ColumnProfile) Distinct() int { return len(p.distinct) }

// Observe feeds one value into the profile.
func (p *ColumnProfile) Observe(v tuple.Value) {
	p.Rows++
	if v.Null {
		p.Nulls++
		return
	}
	switch v.Kind {
	case tuple.KindInt64, tuple.KindInt32, tuple.KindInt16, tuple.KindInt8,
		tuple.KindBool, tuple.KindTimestamp:
		p.observeInt(v.Int)
		p.observeDistinct(string(intKeyBytes(v.Int)))
	case tuple.KindFloat64:
		p.floatSeen = true
		if v.Float != math.Trunc(v.Float) || math.Abs(v.Float) > 1e15 {
			p.AllIntegralFloats = false
		} else {
			p.observeInt(int64(v.Float))
		}
		p.observeDistinct(string(intKeyBytes(int64(math.Float64bits(v.Float)))))
	case tuple.KindChar, tuple.KindString:
		p.observeString(v.Str)
	case tuple.KindBytes:
		p.strSeen = true
		p.AllDigits = false
		p.AllTimestamp14 = false
		p.AllNumeric = false
		if len(v.Raw) > p.MaxLen {
			p.MaxLen = len(v.Raw)
		}
		p.TotalLen += int64(len(v.Raw))
		p.observeDistinct(string(v.Raw))
	}
}

func (p *ColumnProfile) observeInt(x int64) {
	if !p.intSeen {
		p.MinInt, p.MaxInt = x, x
		p.intSeen = true
		return
	}
	if x < p.MinInt {
		p.MinInt = x
	}
	if x > p.MaxInt {
		p.MaxInt = x
	}
}

func (p *ColumnProfile) observeString(s string) {
	p.strSeen = true
	if len(s) > p.MaxLen {
		p.MaxLen = len(s)
	}
	p.TotalLen += int64(len(s))
	digits := len(s) > 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			digits = false
			break
		}
	}
	if !digits {
		p.AllDigits = false
		p.AllTimestamp14 = false
		p.AllNumeric = false
	} else {
		if _, ok := ParseTS14(s); !ok {
			p.AllTimestamp14 = false
		}
		// Fits in int64? 18 digits always do.
		if len(s) > 18 {
			p.AllNumeric = false
		} else {
			n := int64(0)
			for i := 0; i < len(s); i++ {
				n = n*10 + int64(s[i]-'0')
			}
			p.observeInt(n)
		}
	}
	p.observeDistinct(s)
}

func (p *ColumnProfile) observeDistinct(key string) {
	if p.DistinctOverflow {
		return
	}
	if _, ok := p.distinct[key]; ok {
		return
	}
	if len(p.distinct) >= distinctCap {
		p.DistinctOverflow = true
		return
	}
	p.distinct[key] = struct{}{}
	p.distinctBytes += int64(len(key))
}

// DistinctBytes returns the total payload bytes across distinct values
// — the size of the dictionary a dictionary encoding would need.
func (p *ColumnProfile) DistinctBytes() int64 { return p.distinctBytes }

// DistinctStrings returns the observed distinct string values in
// arbitrary order (dictionary building). Only meaningful for string
// columns without overflow.
func (p *ColumnProfile) DistinctStrings() []string {
	out := make([]string, 0, len(p.distinct))
	for s := range p.distinct {
		out = append(out, s)
	}
	return out
}

// HasNulls reports whether any NULL was observed.
func (p *ColumnProfile) HasNulls() bool { return p.Nulls > 0 }

// AvgLen returns the mean byte length of non-null string values.
func (p *ColumnProfile) AvgLen() float64 {
	n := p.Rows - p.Nulls
	if n <= 0 {
		return 0
	}
	return float64(p.TotalLen) / float64(n)
}

func intKeyBytes(x int64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b[:]
}

// ProfileRows profiles every column of a row stream. next returns
// (row, true) until exhausted.
func ProfileRows(schema *tuple.Schema, next func() (tuple.Row, bool)) []*ColumnProfile {
	profiles := make([]*ColumnProfile, schema.NumFields())
	for i := range profiles {
		profiles[i] = NewColumnProfile(schema.Field(i))
	}
	for {
		row, ok := next()
		if !ok {
			break
		}
		for i, v := range row {
			profiles[i].Observe(v)
		}
	}
	return profiles
}
