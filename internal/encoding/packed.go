package encoding

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/tuple"
)

// PackedCodec encodes rows under the advisor's recommendations: every
// value takes exactly its recommended bit width, nulls take one bit,
// and the row has no padding between fields. This is what "removing
// these unused bits increases the data density" (Section 4.1) looks
// like in practice.
type PackedCodec struct {
	schema *tuple.Schema
	recs   []Recommendation
	dicts  []map[string]uint64 // value -> index, per EncDict column
}

// NewPackedCodec builds a codec from per-column recommendations (one
// per schema field, as produced by Advise/AnalyzeRows).
func NewPackedCodec(schema *tuple.Schema, recs []Recommendation) (*PackedCodec, error) {
	if schema.NumFields() != len(recs) {
		return nil, fmt.Errorf("encoding: %d recommendations for %d fields", len(recs), schema.NumFields())
	}
	c := &PackedCodec{schema: schema, recs: recs, dicts: make([]map[string]uint64, len(recs))}
	for i, r := range recs {
		if r.Enc == EncDict {
			if !sort.StringsAreSorted(r.Dict) {
				return nil, fmt.Errorf("encoding: field %q dictionary not sorted", r.Field.Name)
			}
			m := make(map[string]uint64, len(r.Dict))
			for idx, v := range r.Dict {
				m[v] = uint64(idx)
			}
			c.dicts[i] = m
		}
	}
	return c, nil
}

// Encode packs a row into bytes.
func (c *PackedCodec) Encode(row tuple.Row, w *BitWriter) error {
	if len(row) != len(c.recs) {
		return fmt.Errorf("encoding: row has %d values, codec has %d", len(row), len(c.recs))
	}
	for i, v := range row {
		r := c.recs[i]
		if r.Nullable {
			w.WriteBool(v.Null)
		} else if v.Null {
			return fmt.Errorf("encoding: field %q: NULL in non-nullable column", r.Field.Name)
		}
		if v.Null {
			continue
		}
		switch r.Enc {
		case EncBool:
			w.WriteBool(v.Int != 0)
		case EncInt:
			var x int64
			if v.Kind == tuple.KindFloat64 {
				x = int64(v.Float)
			} else {
				x = v.Int
			}
			if x < r.Offset || (r.Bits < 64 && uint64(x-r.Offset) >= 1<<uint(r.Bits)) {
				return fmt.Errorf("encoding: field %q: value %d outside profiled range", r.Field.Name, x)
			}
			w.WriteBits(uint64(x-r.Offset), r.Bits)
		case EncFloat:
			w.WriteBits(floatBits(v.Float), 64)
		case EncEpoch32:
			var epoch int64
			if v.Kind == tuple.KindTimestamp {
				epoch = v.Int
			} else {
				e, ok := ParseTS14(v.Str)
				if !ok {
					return fmt.Errorf("encoding: field %q: %q is not a timestamp14", r.Field.Name, v.Str)
				}
				epoch = e
			}
			if epoch < 0 || epoch > 0xFFFFFFFF {
				return fmt.Errorf("encoding: field %q: epoch %d outside 32 bits", r.Field.Name, epoch)
			}
			w.WriteBits(uint64(epoch), 32)
		case EncNumericString:
			n := int64(0)
			for j := 0; j < len(v.Str); j++ {
				n = n*10 + int64(v.Str[j]-'0')
			}
			if n < r.Offset || (r.Bits < 64 && uint64(n-r.Offset) >= 1<<uint(r.Bits)) {
				return fmt.Errorf("encoding: field %q: %q outside profiled range", r.Field.Name, v.Str)
			}
			w.WriteBits(uint64(len(v.Str)), 5)
			w.WriteBits(uint64(n-r.Offset), r.Bits)
		case EncDict:
			idx, ok := c.dicts[i][v.Str]
			if !ok {
				return fmt.Errorf("encoding: field %q: %q not in dictionary", r.Field.Name, v.Str)
			}
			w.WriteBits(idx, r.Bits)
		case EncRaw:
			raw := valueBytes(v)
			if len(raw) > 0xFFFF {
				return fmt.Errorf("encoding: field %q: value too long", r.Field.Name)
			}
			w.WriteBits(uint64(len(raw)), 16)
			w.WriteBytes(raw)
		default:
			return fmt.Errorf("encoding: field %q: unknown encoding", r.Field.Name)
		}
	}
	return nil
}

// Decode unpacks one row from the reader.
func (c *PackedCodec) Decode(rd *BitReader) (tuple.Row, error) {
	row := make(tuple.Row, len(c.recs))
	for i, r := range c.recs {
		f := r.Field
		if r.Nullable {
			null, err := rd.ReadBool()
			if err != nil {
				return nil, err
			}
			if null {
				row[i] = tuple.Null(f.Kind)
				continue
			}
		}
		v := tuple.Value{Kind: f.Kind}
		switch r.Enc {
		case EncBool:
			b, err := rd.ReadBool()
			if err != nil {
				return nil, err
			}
			if b {
				v.Int = 1
			}
		case EncInt:
			bits, err := rd.ReadBits(r.Bits)
			if err != nil {
				return nil, err
			}
			x := int64(bits) + r.Offset
			if f.Kind == tuple.KindFloat64 {
				v.Float = float64(x)
			} else {
				v.Int = x
			}
		case EncFloat:
			bits, err := rd.ReadBits(64)
			if err != nil {
				return nil, err
			}
			v.Float = floatFromBits(bits)
		case EncEpoch32:
			bits, err := rd.ReadBits(32)
			if err != nil {
				return nil, err
			}
			if f.Kind == tuple.KindTimestamp {
				v.Int = int64(bits)
			} else {
				v.Str = FormatTS14(int64(bits))
			}
		case EncNumericString:
			strLen, err := rd.ReadBits(5)
			if err != nil {
				return nil, err
			}
			bits, err := rd.ReadBits(r.Bits)
			if err != nil {
				return nil, err
			}
			s := fmt.Sprintf("%d", int64(bits)+r.Offset)
			if len(s) < int(strLen) {
				s = strings.Repeat("0", int(strLen)-len(s)) + s
			}
			v.Str = s
		case EncDict:
			idx, err := rd.ReadBits(r.Bits)
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(r.Dict)) {
				return nil, fmt.Errorf("encoding: field %q: dictionary index %d out of range", f.Name, idx)
			}
			v.Str = r.Dict[idx]
		case EncRaw:
			n, err := rd.ReadBits(16)
			if err != nil {
				return nil, err
			}
			raw, err := rd.ReadBytes(int(n))
			if err != nil {
				return nil, err
			}
			if f.Kind == tuple.KindBytes {
				v.Raw = raw
			} else {
				v.Str = string(raw)
			}
		default:
			return nil, fmt.Errorf("encoding: field %q: unknown encoding", f.Name)
		}
		row[i] = v
	}
	return row, nil
}

// EncodeRows packs a batch of rows back to back and returns the buffer.
func (c *PackedCodec) EncodeRows(rows []tuple.Row) ([]byte, error) {
	w := NewBitWriter()
	for _, row := range rows {
		if err := c.Encode(row, w); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// DecodeRows unpacks n rows from buf.
func (c *PackedCodec) DecodeRows(buf []byte, n int) ([]tuple.Row, error) {
	rd := NewBitReader(buf)
	rows := make([]tuple.Row, 0, n)
	for i := 0; i < n; i++ {
		row, err := c.Decode(rd)
		if err != nil {
			return nil, fmt.Errorf("encoding: row %d: %w", i, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DeclaredSize returns the bytes the declared-width row codec
// (tuple.Encode) uses for a row — the baseline the packed codec is
// measured against.
func DeclaredSize(s *tuple.Schema, r tuple.Row) (int, error) {
	return tuple.EncodedSize(s, r)
}

func valueBytes(v tuple.Value) []byte {
	if v.Kind == tuple.KindBytes {
		return v.Raw
	}
	return []byte(v.Str)
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
