package partition

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wiki"
)

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Options{PageSize: 1024, BufferPoolPages: 1024})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestTrackerHottest(t *testing.T) {
	tr := NewAccessTracker()
	a := storage.RID{Page: 1, Slot: 0}
	b := storage.RID{Page: 2, Slot: 0}
	c := storage.RID{Page: 3, Slot: 0}
	for i := 0; i < 10; i++ {
		tr.Record(a)
	}
	for i := 0; i < 5; i++ {
		tr.Record(b)
	}
	tr.Record(c)
	hot := tr.Hottest(2)
	if len(hot) != 2 || hot[0] != a || hot[1] != b {
		t.Errorf("Hottest(2) = %v", hot)
	}
	if tr.Total() != 16 || tr.Count(a) != 10 {
		t.Errorf("Total=%d Count(a)=%d", tr.Total(), tr.Count(a))
	}
}

func TestTrackerHotSetByCoverage(t *testing.T) {
	tr := NewAccessTracker()
	hot := storage.RID{Page: 1, Slot: 0}
	for i := 0; i < 999; i++ {
		tr.Record(hot)
	}
	tr.Record(storage.RID{Page: 2, Slot: 0})
	set := tr.HotSetByCoverage(0.99)
	if len(set) != 1 || set[0] != hot {
		t.Errorf("HotSetByCoverage(0.99) = %v", set)
	}
	all := tr.HotSetByCoverage(1.0)
	if len(all) != 2 {
		t.Errorf("full coverage should return both, got %v", all)
	}
	tr.Reset()
	if tr.Total() != 0 || len(tr.HotSetByCoverage(0.5)) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestForwardingChainsAndCompression(t *testing.T) {
	f := NewForwarding()
	a := storage.RID{Page: 1, Slot: 1}
	b := storage.RID{Page: 2, Slot: 2}
	c := storage.RID{Page: 3, Slot: 3}
	f.Record(a, b)
	f.Record(b, c)
	if got := f.Resolve(a); got != c {
		t.Errorf("Resolve(a) = %v, want %v", got, c)
	}
	// Untracked RIDs resolve to themselves.
	d := storage.RID{Page: 9, Slot: 9}
	if got := f.Resolve(d); got != d {
		t.Errorf("Resolve(d) = %v", got)
	}
	// Self-move is a no-op.
	f.Record(d, d)
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
}

func revRowForTest(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i + 1)),
		tuple.Int64(int64(i/10 + 1)),
		tuple.Int64(int64(i + 1000)),
		tuple.String(fmt.Sprintf("comment %d", i)),
		tuple.Int64(int64(i % 100)),
		tuple.String("User"),
		tuple.Char("20100101000000"),
		tuple.Int64(0),
		tuple.Int64(0),
		tuple.Int64(int64(i)),
		tuple.Int64(0),
	}
}

func TestClusterRelocatesToTail(t *testing.T) {
	e := newEngine(t)
	tb, err := e.CreateTable("revision", wiki.RevisionSchema(), core.WithAppendOnlyHeap())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	ix, err := tb.CreateIndex("rev_id", []string{"rev_id"})
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	var rids []storage.RID
	for i := 0; i < 200; i++ {
		rid, err := tb.Insert(revRowForTest(i))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		rids = append(rids, rid)
	}
	// Hot = every 10th tuple (scattered).
	var hot []storage.RID
	for i := 0; i < 200; i += 10 {
		hot = append(hot, rids[i])
	}
	lastPageBefore := tb.Heap().Pages()[tb.Heap().NumPages()-1]
	fwd := NewForwarding()
	moved, err := Cluster(tb, hot, fwd)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if len(moved) != len(hot) {
		t.Fatalf("moved %d of %d", len(moved), len(hot))
	}
	// All moved tuples landed at/after the old tail page.
	for old, new := range moved {
		if new.Page < lastPageBefore {
			t.Errorf("tuple %v moved to %v, before old tail %v", old, new, lastPageBefore)
		}
		if fwd.Resolve(old) != new {
			t.Errorf("forwarding for %v wrong", old)
		}
	}
	// Index still finds every row, at its new location.
	for i := 0; i < 200; i++ {
		row, res, err := ix.Lookup(nil, tuple.Int64(int64(i+1)))
		if err != nil || !res.Found {
			t.Fatalf("Lookup %d after clustering: %+v %v", i, res, err)
		}
		if row[9].Int != int64(i) {
			t.Errorf("row %d content wrong after clustering", i)
		}
	}
	if tb.Rows() != 200 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestClusterFractionBounds(t *testing.T) {
	e := newEngine(t)
	tb, _ := e.CreateTable("revision", wiki.RevisionSchema(), core.WithAppendOnlyHeap())
	if _, err := ClusterFraction(tb, nil, -0.1, nil); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, err := ClusterFraction(tb, nil, 1.1, nil); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestHotColdLookupAndMoves(t *testing.T) {
	e := newEngine(t)
	hc, err := New(Config{
		Engine: e, Name: "revision", Schema: wiki.RevisionSchema(),
		KeyFields: []string{"rev_id"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 50; i++ {
		var err error
		if i%5 == 0 {
			_, err = hc.InsertHot(revRowForTest(i))
		} else {
			_, err = hc.InsertCold(revRowForTest(i))
		}
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Hot rows found in hot, cold rows in cold.
	row, inHot, err := hc.Lookup(tuple.Int64(1))
	if err != nil || row == nil || !inHot {
		t.Fatalf("hot lookup: %v %v %v", row, inHot, err)
	}
	row, inHot, err = hc.Lookup(tuple.Int64(2))
	if err != nil || row == nil || inHot {
		t.Fatalf("cold lookup: %v %v %v", row, inHot, err)
	}
	// Missing key.
	row, _, err = hc.Lookup(tuple.Int64(9999))
	if err != nil || row != nil {
		t.Fatalf("missing lookup: %v %v", row, err)
	}
	// Demote a hot row; it must now be served from cold.
	if _, err := hc.Demote(tuple.Int64(1)); err != nil {
		t.Fatalf("Demote: %v", err)
	}
	_, inHot, err = hc.Lookup(tuple.Int64(1))
	if err != nil || inHot {
		t.Fatalf("after demote: inHot=%v err=%v", inHot, err)
	}
	// Promote it back.
	if _, err := hc.Promote(tuple.Int64(1)); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	_, inHot, err = hc.Lookup(tuple.Int64(1))
	if err != nil || !inHot {
		t.Fatalf("after promote: inHot=%v err=%v", inHot, err)
	}
	// Demote of a key not in hot fails.
	if _, err := hc.Demote(tuple.Int64(2)); err == nil {
		t.Error("demoting a cold key should fail")
	}
	st, err := hc.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.HotRows+st.ColdRows != 50 {
		t.Errorf("rows: hot=%d cold=%d", st.HotRows, st.ColdRows)
	}
	if st.HotIndexBytes <= 0 || st.ColdIndexBytes <= 0 {
		t.Error("index sizes missing")
	}
	if st.ColdIndexBytes < st.HotIndexBytes {
		t.Error("cold index should be at least as large as hot (4/5 of rows)")
	}
}

func TestHotColdConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("incomplete config should fail")
	}
}

func TestHotColdQueryMergesPartitionsInKeyOrder(t *testing.T) {
	e := newEngine(t)
	hc, err := New(Config{
		Engine: e, Name: "revision", Schema: wiki.RevisionSchema(),
		KeyFields: []string{"rev_id"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 120
	hotKeys := map[int64]bool{}
	for i := 0; i < n; i++ {
		row := revRowForTest(i)
		if i%3 == 0 {
			if _, err := hc.InsertHot(row); err != nil {
				t.Fatalf("InsertHot: %v", err)
			}
			hotKeys[row[0].Int] = true
		} else if _, err := hc.InsertCold(row); err != nil {
			t.Fatalf("InsertCold: %v", err)
		}
	}
	cur, err := hc.Query()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	var last int64
	served := 0
	for cur.Next() {
		id := cur.Row()[0].Int
		if served > 0 && id <= last {
			t.Fatalf("merged order broken: %d after %d", id, last)
		}
		if cur.Hot() != hotKeys[id] {
			t.Errorf("key %d: Hot()=%v, want %v", id, cur.Hot(), hotKeys[id])
		}
		last = id
		served++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if served != n {
		t.Fatalf("merged scan served %d rows, want %d", served, n)
	}
	if err := cur.Close(); err != nil { // double close
		t.Fatalf("second Close: %v", err)
	}
	// Bounded merged scan: rev_id in [10, 40).
	cur, err = hc.Query(core.WithKeyRange(
		[]tuple.Value{tuple.Int64(10)}, []tuple.Value{tuple.Int64(40)}))
	if err != nil {
		t.Fatalf("bounded Query: %v", err)
	}
	defer cur.Close()
	want := int64(10)
	for cur.Next() {
		if got := cur.Row()[0].Int; got != want {
			t.Fatalf("bounded merge: got %d, want %d", got, want)
		}
		want++
	}
	if want != 40 {
		t.Fatalf("bounded merge ended at %d", want)
	}
}

func TestHotColdQueryReverseMerge(t *testing.T) {
	e := newEngine(t)
	hc, err := New(Config{
		Engine: e, Name: "revision", Schema: wiki.RevisionSchema(),
		KeyFields: []string{"rev_id"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			_, err = hc.InsertHot(revRowForTest(i))
		} else {
			_, err = hc.InsertCold(revRowForTest(i))
		}
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	cur, err := hc.Query(core.WithReverse())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	want := int64(n) // rev_id is i+1, so the largest is n
	for cur.Next() {
		if got := cur.Row()[0].Int; got != want {
			t.Fatalf("reverse merge: got %d, want %d", got, want)
		}
		want--
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if want != 0 {
		t.Fatalf("reverse merge served %d rows, want %d", n-int(want), n)
	}
}
