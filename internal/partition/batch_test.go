package partition

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/tuple"
	"repro/internal/wiki"
)

func newHotColdForBatch(t *testing.T) (*HotCold, *core.Engine) {
	t.Helper()
	e := newEngine(t)
	hc, err := New(Config{
		Engine: e, Name: "revision", Schema: wiki.RevisionSchema(),
		KeyFields: []string{"rev_id"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return hc, e
}

func TestHotColdApplyRoutesAndForwards(t *testing.T) {
	hc, _ := newHotColdForBatch(t)
	// Batched ingest: evens hot, odds cold, each partition one batch.
	var hot, cold core.Batch
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			hot.Insert(revRowForTest(i))
		} else {
			cold.Insert(revRowForTest(i))
		}
	}
	hres, err := hc.ApplyHot(&hot, core.WithResultRIDs())
	if err != nil {
		t.Fatalf("ApplyHot: %v", err)
	}
	if _, err := hc.ApplyCold(&cold); err != nil {
		t.Fatalf("ApplyCold: %v", err)
	}
	if got := hc.Hot().Rows() + hc.Cold().Rows(); got != 120 {
		t.Fatalf("rows = %d, want 120", got)
	}
	for i := 0; i < 120; i++ {
		_, inHot, err := hc.Lookup(tuple.Int64(int64(i + 1)))
		if err != nil {
			t.Fatalf("Lookup %d: %v", i, err)
		}
		if inHot != (i%2 == 0) {
			t.Fatalf("rev %d routed to wrong partition (inHot=%v)", i+1, inHot)
		}
	}

	// A batched update that grows a hot row relocates it (append-only
	// heap), and ApplyHot must record the forwarding entry.
	target := hres.RIDs[0]
	grown := revRowForTest(0)
	grown[3] = tuple.String(fmt.Sprintf("grown %s", string(make([]byte, 240))))
	var upd core.Batch
	upd.Update(target, grown)
	ures, err := hc.ApplyHot(&upd, core.WithResultRIDs())
	if err != nil {
		t.Fatalf("ApplyHot update: %v", err)
	}
	newRID := ures.RIDs[0]
	if newRID == target {
		t.Fatal("grown row did not relocate — test needs a bigger payload")
	}
	if got := hc.Forwarding().Resolve(target); got != newRID {
		t.Errorf("forwarding: Resolve(%v) = %v, want %v", target, got, newRID)
	}
	// In-place updates must not pollute the forwarding table.
	before := hc.Forwarding().Len()
	var upd2 core.Batch
	upd2.Update(hres.RIDs[1], revRowForTest(2))
	if _, err := hc.ApplyHot(&upd2); err != nil {
		t.Fatalf("ApplyHot update 2: %v", err)
	}
	if hc.Forwarding().Len() != before {
		t.Error("in-place update recorded a forwarding entry")
	}
}

func TestHotColdCursorStatsAndAll(t *testing.T) {
	hc, e := newHotColdForBatch(t)
	var hot, cold core.Batch
	for i := 0; i < 60; i++ {
		if i%3 == 0 {
			hot.Insert(revRowForTest(i))
		} else {
			cold.Insert(revRowForTest(i))
		}
	}
	if _, err := hc.ApplyHot(&hot); err != nil {
		t.Fatalf("ApplyHot: %v", err)
	}
	if _, err := hc.ApplyCold(&cold); err != nil {
		t.Fatalf("ApplyCold: %v", err)
	}

	// All() iterates the merged stream in key order and closes on break.
	cur, err := hc.Query()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	prev := int64(0)
	rows := 0
	for rid, row := range cur.All() {
		if !rid.Valid() {
			t.Fatal("invalid RID from All")
		}
		if row[0].Int <= prev {
			t.Fatalf("out of order: %d after %d", row[0].Int, prev)
		}
		prev = row[0].Int
		rows++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err after All: %v", err)
	}
	if rows != 60 {
		t.Fatalf("All served %d rows, want 60", rows)
	}
	st := cur.Stats()
	if st.Rows != 60 {
		t.Errorf("Stats.Rows = %d, want 60", st.Rows)
	}
	if st.HeapReads < 60 {
		t.Errorf("Stats.HeapReads = %d, want ≥60 (full rows come from the heaps)", st.HeapReads)
	}
	if st.LeafFetches == 0 {
		t.Error("Stats.LeafFetches = 0 — index scans must fetch leaves")
	}

	// Early break still closes both child cursors: no leaf pin leaks.
	cur2, err := hc.Query()
	if err != nil {
		t.Fatalf("Query 2: %v", err)
	}
	for range cur2.All() {
		break
	}
	if got := cur2.Stats(); got.Rows != 1 {
		t.Errorf("after break: Stats.Rows = %d, want 1", got.Rows)
	}
	if pinned := e.Pool().PinnedFrames(); pinned != 0 {
		t.Errorf("%d frames still pinned after broken All loop", pinned)
	}
}
