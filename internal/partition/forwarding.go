package partition

import (
	"sync"

	"repro/internal/storage"
)

// Forwarding maps the old RIDs of relocated tuples to their current
// locations. The paper notes clustering "does require updating foreign
// key pointers and/or using forwarding tables to redirect queries using
// old ids"; this is that table, with path compression so chains of
// moves stay O(1) to chase.
type Forwarding struct {
	mu   sync.Mutex
	next map[storage.RID]storage.RID
}

// NewForwarding returns an empty forwarding table.
func NewForwarding() *Forwarding {
	return &Forwarding{next: make(map[storage.RID]storage.RID)}
}

// Record notes that the tuple at old now lives at new.
func (f *Forwarding) Record(old, new storage.RID) {
	if old == new {
		return
	}
	f.mu.Lock()
	f.next[old] = new
	f.mu.Unlock()
}

// Resolve chases old through the forwarding chain to the live RID,
// compressing the path as it goes. RIDs that never moved resolve to
// themselves.
func (f *Forwarding) Resolve(rid storage.RID) storage.RID {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := rid
	var visited []storage.RID
	for {
		next, ok := f.next[cur]
		if !ok {
			break
		}
		visited = append(visited, cur)
		cur = next
	}
	// Path compression: everything on the chain points at the end.
	for _, v := range visited {
		f.next[v] = cur
	}
	return cur
}

// Len returns the number of forwarding entries.
func (f *Forwarding) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.next)
}
