package partition

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// Cluster relocates the given hot tuples to the end of their table by
// deleting and re-appending each (Section 3.1's clustering algorithm).
// On an append-only heap the moved tuples end up packed together in
// fresh tail pages, converting "one hot tuple per page" into pages that
// are entirely hot. Old RIDs are recorded in fwd (if non-nil) so stale
// references keep resolving. Returns the mapping from old to new RIDs.
func Cluster(t *core.Table, hot []storage.RID, fwd *Forwarding) (map[storage.RID]storage.RID, error) {
	moved := make(map[storage.RID]storage.RID, len(hot))
	for _, rid := range hot {
		newRID, err := t.Relocate(rid)
		if err != nil {
			return moved, fmt.Errorf("partition: clustering %v: %w", rid, err)
		}
		moved[rid] = newRID
		if fwd != nil {
			fwd.Record(rid, newRID)
		}
	}
	return moved, nil
}

// ClusterFraction clusters only the first frac of the hot list (the
// paper's Figure 3 sweeps 0%, 54%, 100%).
func ClusterFraction(t *core.Table, hot []storage.RID, frac float64, fwd *Forwarding) (map[storage.RID]storage.RID, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("partition: fraction %g out of [0,1]", frac)
	}
	n := int(float64(len(hot)) * frac)
	return Cluster(t, hot[:n], fwd)
}
