package partition

import (
	"bytes"
	"fmt"
	"iter"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// HotCold manages a table split into a hot partition and a cold
// partition with identical schemas. The hot partition holds the tuples
// that receive nearly all accesses; because it is a small fraction of
// the data, *its index fits in RAM*, which is where the paper's 8.4×
// improvement comes from (27.1 GB → 1.4 GB in their Wikipedia
// instance).
//
// Lookups try the hot partition's index first and fall back to cold.
// MoveToHot/MoveToCold implement the paper's revision-table policy:
// when a new revision arrives it enters hot and displaces the page's
// previous latest revision to cold.
type HotCold struct {
	hot, cold     *core.Table
	hotIx, coldIx *core.Index
	fwd           *Forwarding
	keyFields     []string
}

// Config for a hot/cold split.
type Config struct {
	// Engine hosts both partitions.
	Engine *core.Engine
	// Name prefixes the partition tables ("<name>_hot", "<name>_cold").
	Name string
	// Schema is shared by both partitions.
	Schema *tuple.Schema
	// KeyFields define the unique lookup index built on each partition.
	KeyFields []string
	// FillFactor for partition indexes (0 = default 0.68).
	FillFactor float64
	// TableOptions apply to both partition tables (heap fill factor,
	// insert shards, …). Append-only placement is always forced last —
	// the paper's clustering policy relocates tuples to "the end of the
	// table", which needs a single tail — so a WithHeapInsertShards here
	// is overridden down to one shard; ingest parallelism in a hot/cold
	// pair comes from the two partitions' independent heaps and the
	// latch-crabbed partition indexes instead.
	TableOptions []core.TableOption
}

// New creates an empty hot/cold pair with lookup indexes.
func New(cfg Config) (*HotCold, error) {
	if cfg.Engine == nil || cfg.Schema == nil || len(cfg.KeyFields) == 0 {
		return nil, fmt.Errorf("partition: incomplete config")
	}
	ff := cfg.FillFactor
	if ff == 0 {
		ff = 0.68
	}
	// The forced append-only option goes last so it wins over anything
	// in cfg.TableOptions; the full-slice expression keeps the two
	// appends from sharing a backing array.
	topts := cfg.TableOptions[:len(cfg.TableOptions):len(cfg.TableOptions)]
	hot, err := cfg.Engine.CreateTable(cfg.Name+"_hot", cfg.Schema, append(topts, core.WithAppendOnlyHeap())...)
	if err != nil {
		return nil, err
	}
	cold, err := cfg.Engine.CreateTable(cfg.Name+"_cold", cfg.Schema, append(topts, core.WithAppendOnlyHeap())...)
	if err != nil {
		return nil, err
	}
	hotIx, err := hot.CreateIndex("lookup", cfg.KeyFields, core.WithFillFactor(ff))
	if err != nil {
		return nil, err
	}
	coldIx, err := cold.CreateIndex("lookup", cfg.KeyFields, core.WithFillFactor(ff))
	if err != nil {
		return nil, err
	}
	return &HotCold{
		hot: hot, cold: cold,
		hotIx: hotIx, coldIx: coldIx,
		fwd:       NewForwarding(),
		keyFields: cfg.KeyFields,
	}, nil
}

// Hot returns the hot partition table.
func (hc *HotCold) Hot() *core.Table { return hc.hot }

// Cold returns the cold partition table.
func (hc *HotCold) Cold() *core.Table { return hc.cold }

// HotIndex returns the hot partition's lookup index.
func (hc *HotCold) HotIndex() *core.Index { return hc.hotIx }

// ColdIndex returns the cold partition's lookup index.
func (hc *HotCold) ColdIndex() *core.Index { return hc.coldIx }

// Forwarding returns the forwarding table for relocated tuples.
func (hc *HotCold) Forwarding() *Forwarding { return hc.fwd }

// InsertHot adds a row to the hot partition. Safe for concurrent use;
// parallel ingest into the two partitions never contends — each has
// its own heap tail and index — and within one partition inserters
// contend only on the append-only heap's single tail and the crabbed
// index leaves they touch.
func (hc *HotCold) InsertHot(row tuple.Row) (storage.RID, error) {
	return hc.hot.Insert(row)
}

// InsertCold adds a row to the cold partition. See InsertHot for the
// concurrency contract.
func (hc *HotCold) InsertCold(row tuple.Row) (storage.RID, error) {
	return hc.cold.Insert(row)
}

// ApplyHot executes a batch against the hot partition — the batched
// counterpart of InsertHot and of per-row Update/Delete on Hot().
// Updates that relocate a row (the partitions are append-only, so any
// growth moves it to the tail) are recorded in the forwarding table
// automatically, keeping stale RIDs resolvable. Batch RIDs must
// address the hot partition; core.Table.Apply's per-op contract
// applies unchanged.
func (hc *HotCold) ApplyHot(b *core.Batch, opts ...core.ApplyOption) (core.Result, error) {
	return hc.apply(hc.hot, b, opts)
}

// ApplyCold is ApplyHot against the cold partition.
func (hc *HotCold) ApplyCold(b *core.Batch, opts ...core.ApplyOption) (core.Result, error) {
	return hc.apply(hc.cold, b, opts)
}

func (hc *HotCold) apply(t *core.Table, b *core.Batch, opts []core.ApplyOption) (core.Result, error) {
	// Forwarding needs per-op RIDs; forcing the option last wins over a
	// caller's (idempotent either way). The full-slice expression keeps
	// the append from sharing a caller's backing array.
	res, err := t.Apply(b, append(opts[:len(opts):len(opts)], core.WithResultRIDs())...)
	for i := 0; i < b.Len() && i < len(res.RIDs); i++ {
		op := b.Op(i)
		if op.Kind == core.BatchUpdate && res.RIDs[i].Valid() && res.RIDs[i] != op.RID {
			hc.fwd.Record(op.RID, res.RIDs[i])
		}
	}
	return res, err
}

// Lookup finds a row by key, trying hot first. The second return
// reports whether it was found in the hot partition.
func (hc *HotCold) Lookup(keyVals ...tuple.Value) (tuple.Row, bool, error) {
	row, res, err := hc.hotIx.Lookup(nil, keyVals...)
	if err != nil {
		return nil, false, err
	}
	if res.Found {
		return row, true, nil
	}
	row, res, err = hc.coldIx.Lookup(nil, keyVals...)
	if err != nil {
		return nil, false, err
	}
	if !res.Found {
		return nil, false, nil
	}
	return row, false, nil
}

// Cursor merges the hot and cold partitions' index cursors into one
// key-ordered stream. Each row reports which partition served it, so
// callers can observe the paper's asymmetry (hot rows answered from a
// RAM-resident index) without reassembling the split themselves.
type Cursor struct {
	hot, cold     *core.Cursor
	hotOK, coldOK bool
	primed        bool
	fromHot       bool
	served        int64
	err           error
}

// Query opens a merged key-ordered cursor over both partitions. The
// options are applied to each partition's index query (so WithLimit
// bounds each partition's contribution, not the merged total); key
// bounds, projections, and WithReverse behave as on core.Cursor — a
// reverse merge yields descending key order.
func (hc *HotCold) Query(opts ...core.QueryOption) (*Cursor, error) {
	// The forced index goes last so a stray WithIndex in opts cannot
	// redirect the partition scans (later options win); the full-slice
	// expression keeps the two appends from sharing a backing array.
	hotCur, err := hc.hot.Query(append(opts[:len(opts):len(opts)], core.WithIndex("lookup"))...)
	if err != nil {
		return nil, err
	}
	coldCur, err := hc.cold.Query(append(opts[:len(opts):len(opts)], core.WithIndex("lookup"))...)
	if err != nil {
		hotCur.Close()
		return nil, err
	}
	return &Cursor{hot: hotCur, cold: coldCur}, nil
}

// Next advances to the next row in merged key order.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	if !c.primed {
		c.hotOK, c.coldOK = c.hot.Next(), c.cold.Next()
		c.primed = true
	} else if c.fromHot {
		c.hotOK = c.hot.Next()
	} else {
		c.coldOK = c.cold.Next()
	}
	if err := c.hot.Err(); err != nil {
		c.err = err
		return false
	}
	if err := c.cold.Err(); err != nil {
		c.err = err
		return false
	}
	switch {
	case c.hotOK && c.coldOK:
		// Serve the smaller key first — the larger when both child
		// cursors iterate descending.
		cmp := bytes.Compare(c.hot.Key(), c.cold.Key())
		if c.hot.Reverse() {
			c.fromHot = cmp >= 0
		} else {
			c.fromHot = cmp <= 0
		}
	case c.hotOK:
		c.fromHot = true
	case c.coldOK:
		c.fromHot = false
	default:
		return false
	}
	c.served++
	return true
}

// side returns the cursor currently serving.
func (c *Cursor) side() *core.Cursor {
	if c.fromHot {
		return c.hot
	}
	return c.cold
}

// Row returns the current row (cursor scratch: Clone to retain).
func (c *Cursor) Row() tuple.Row { return c.side().Row() }

// RID returns the current row's address within its partition.
func (c *Cursor) RID() storage.RID { return c.side().RID() }

// Hot reports whether the current row came from the hot partition.
func (c *Cursor) Hot() bool { return c.fromHot }

// Err returns the first error either partition's cursor hit.
func (c *Cursor) Err() error { return c.err }

// Stats returns the merged answer-path counters: Rows is the number of
// rows this cursor served; the cache/heap/leaf counters are the sums
// over both partitions' cursors (which may run one row ahead of the
// merge — the lookahead is counted where it was paid). Same shape as
// core.Cursor.Stats, so merged and single-partition scans are compared
// directly.
func (c *Cursor) Stats() core.QueryStats {
	h, cd := c.hot.Stats(), c.cold.Stats()
	return core.QueryStats{
		Rows:        c.served,
		CacheHits:   h.CacheHits + cd.CacheHits,
		HeapReads:   h.HeapReads + cd.HeapReads,
		LeafFetches: h.LeafFetches + cd.LeafFetches,
	}
}

// All adapts the merged cursor to a range-over-func iterator, closing
// both partition cursors when the loop ends (early break and panic
// included) — the same contract as core.Cursor.All, so the merged
// cursor is a drop-in for range-over-func callers. RIDs address rows
// within their own partition; check Err afterwards.
func (c *Cursor) All() iter.Seq2[storage.RID, tuple.Row] {
	return func(yield func(storage.RID, tuple.Row) bool) {
		defer c.Close()
		for c.Next() {
			if !yield(c.RID(), c.Row()) {
				return
			}
		}
	}
}

// Close releases both partitions' cursors. Idempotent.
func (c *Cursor) Close() error {
	herr := c.hot.Close()
	cerr := c.cold.Close()
	if c.err == nil {
		if herr != nil {
			c.err = herr
		} else if cerr != nil {
			c.err = cerr
		}
	}
	return c.err
}

// Demote moves the row with the given key from hot to cold — the
// paper's policy when a newly inserted revision replaces the previously
// hot one. Returns the row's new RID in the cold partition.
//
// Each step (lookup, delete, insert) is individually thread-safe, but
// the move is not atomic: a concurrent Lookup can miss the row in the
// window between partitions. Run demotions from one maintenance
// goroutine, or serialize them per key above this layer.
func (hc *HotCold) Demote(keyVals ...tuple.Value) (storage.RID, error) {
	rid, found, err := hc.hotIx.LookupRID(keyVals...)
	if err != nil {
		return storage.InvalidRID, err
	}
	if !found {
		return storage.InvalidRID, fmt.Errorf("partition: demote: key not in hot partition")
	}
	row, err := hc.hot.Get(rid)
	if err != nil {
		return storage.InvalidRID, err
	}
	if err := hc.hot.Delete(rid); err != nil {
		return storage.InvalidRID, err
	}
	newRID, err := hc.cold.Insert(row)
	if err != nil {
		return storage.InvalidRID, err
	}
	hc.fwd.Record(rid, newRID)
	return newRID, nil
}

// Promote moves the row with the given key from cold to hot.
func (hc *HotCold) Promote(keyVals ...tuple.Value) (storage.RID, error) {
	rid, found, err := hc.coldIx.LookupRID(keyVals...)
	if err != nil {
		return storage.InvalidRID, err
	}
	if !found {
		return storage.InvalidRID, fmt.Errorf("partition: promote: key not in cold partition")
	}
	row, err := hc.cold.Get(rid)
	if err != nil {
		return storage.InvalidRID, err
	}
	if err := hc.cold.Delete(rid); err != nil {
		return storage.InvalidRID, err
	}
	newRID, err := hc.hot.Insert(row)
	if err != nil {
		return storage.InvalidRID, err
	}
	hc.fwd.Record(rid, newRID)
	return newRID, nil
}

// Stats reports the size asymmetry the technique creates.
type Stats struct {
	HotRows, ColdRows             int64
	HotIndexBytes, ColdIndexBytes int64
	HotHeapPages, ColdHeapPages   int
}

// Stats collects partition sizes.
func (hc *HotCold) Stats() (Stats, error) {
	var st Stats
	st.HotRows = hc.hot.Rows()
	st.ColdRows = hc.cold.Rows()
	hts, err := hc.hotIx.Tree().Stats()
	if err != nil {
		return st, err
	}
	cts, err := hc.coldIx.Tree().Stats()
	if err != nil {
		return st, err
	}
	st.HotIndexBytes = hts.SizeBytes
	st.ColdIndexBytes = cts.SizeBytes
	st.HotHeapPages = hc.hot.Heap().NumPages()
	st.ColdHeapPages = hc.cold.Heap().NumPages()
	return st, nil
}
