// Package partition implements Section 3.1: access-frequency-based
// horizontal partitioning. An AccessTracker observes the workload and
// identifies hot tuples; Cluster relocates them (delete + append) so
// they share pages; HotCold splits them into a separate partition whose
// index is small enough to stay resident — the configuration that gives
// the paper its 8.4× win. A Forwarding table keeps old RIDs resolvable
// after moves.
package partition

import (
	"sort"
	"sync"

	"repro/internal/storage"
)

// AccessTracker counts accesses per RID. The paper notes hot tuples are
// unrelated to any field value ("hash and range partitioning are not
// possible"), so frequency observation — or application knowledge like
// Wikipedia's page_latest pointers — is the only way to find them.
type AccessTracker struct {
	mu     sync.Mutex
	counts map[storage.RID]int64
	total  int64
}

// NewAccessTracker returns an empty tracker.
func NewAccessTracker() *AccessTracker {
	return &AccessTracker{counts: make(map[storage.RID]int64)}
}

// Record notes one access to rid.
func (a *AccessTracker) Record(rid storage.RID) {
	a.mu.Lock()
	a.counts[rid]++
	a.total++
	a.mu.Unlock()
}

// Total returns the number of recorded accesses.
func (a *AccessTracker) Total() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Count returns the access count of one RID.
func (a *AccessTracker) Count(rid storage.RID) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counts[rid]
}

// Hottest returns up to n RIDs in descending access count.
func (a *AccessTracker) Hottest(n int) []storage.RID {
	a.mu.Lock()
	defer a.mu.Unlock()
	type entry struct {
		rid storage.RID
		n   int64
	}
	entries := make([]entry, 0, len(a.counts))
	for rid, c := range a.counts {
		entries = append(entries, entry{rid, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		// Stable tie-break for determinism.
		if entries[i].rid.Page != entries[j].rid.Page {
			return entries[i].rid.Page < entries[j].rid.Page
		}
		return entries[i].rid.Slot < entries[j].rid.Slot
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]storage.RID, n)
	for i := 0; i < n; i++ {
		out[i] = entries[i].rid
	}
	return out
}

// HotSetByCoverage returns the smallest prefix of the hottest RIDs that
// covers the given fraction of all recorded accesses — e.g. 0.999
// reproduces the paper's "99.9% of requests hit 5% of tuples" cut.
func (a *AccessTracker) HotSetByCoverage(frac float64) []storage.RID {
	a.mu.Lock()
	total := a.total
	a.mu.Unlock()
	if total == 0 {
		return nil
	}
	all := a.Hottest(len(a.counts))
	var cum int64
	for i, rid := range all {
		cum += a.Count(rid)
		if float64(cum) >= frac*float64(total) {
			return all[:i+1]
		}
	}
	return all
}

// Reset clears all counts.
func (a *AccessTracker) Reset() {
	a.mu.Lock()
	a.counts = make(map[storage.RID]int64)
	a.total = 0
	a.mu.Unlock()
}
