package metrics

import "time"

// CostModel is the latency model used by the simulation-backed
// experiments (Figure 2(b) and the fig3 partition sweep). It assigns a
// fixed cost to each tier of the storage hierarchy, mirroring the
// paper's setup where the index lives in memory, an index-cache miss
// costs a random buffer-pool page access, and a buffer-pool miss costs
// a disk page read.
type CostModel struct {
	// IndexProbe is the cost of the in-memory B+Tree descent plus the
	// index-cache scan. Charged on every lookup.
	IndexProbe time.Duration
	// CacheProbe is the incremental cost of scanning the cache slots in
	// a leaf page (the paper measures ~0.3µs of overhead).
	CacheProbe time.Duration
	// BufferPoolAccess is the cost of fetching a heap page already
	// resident in the buffer pool (a RAM access pattern over a large
	// array: TLB/cache misses dominate).
	BufferPoolAccess time.Duration
	// DiskRead is the cost of reading one page from disk on a buffer
	// pool miss (seek + rotational latency for the 2011-era disks the
	// paper assumes).
	DiskRead time.Duration
}

// DefaultCostModel mirrors the hardware the paper assumes: ~0.3µs index
// probe, ~0.3µs cache scan overhead, ~1µs for a random page touch in a
// multi-GB buffer pool, and ~5ms for a random disk I/O.
func DefaultCostModel() CostModel {
	return CostModel{
		IndexProbe:       300 * time.Nanosecond,
		CacheProbe:       300 * time.Nanosecond,
		BufferPoolAccess: 1 * time.Microsecond,
		DiskRead:         5 * time.Millisecond,
	}
}

// Lookup returns the simulated cost of one index lookup given whether
// the index cache answered it, and failing that, whether the buffer
// pool had the heap page. The withCache flag charges the cache scan
// overhead (a lookup on an engine with caching disabled skips it).
func (m CostModel) Lookup(withCache, cacheHit, bufferPoolHit bool) time.Duration {
	cost := m.IndexProbe
	if withCache {
		cost += m.CacheProbe
	}
	if withCache && cacheHit {
		return cost
	}
	cost += m.BufferPoolAccess
	if bufferPoolHit {
		return cost
	}
	return cost + m.DiskRead
}

// LookupSeconds is Lookup converted to float64 seconds, convenient for
// averaging across trials.
func (m CostModel) LookupSeconds(withCache, cacheHit, bufferPoolHit bool) float64 {
	return m.Lookup(withCache, cacheHit, bufferPoolHit).Seconds()
}
