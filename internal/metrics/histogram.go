package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram records float64 observations (typically latencies in
// nanoseconds) and reports order statistics. It keeps every sample,
// which is fine at experiment scale (≤ millions of observations).
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using nearest-rank,
// or 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
	h.mu.Unlock()
}

// Summary renders count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
