package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Errorf("Value = %d, want 10000", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 0) != 0 {
		t.Error("Ratio(0,0) should be 0")
	}
	if Ratio(3, 1) != 0.75 {
		t.Errorf("Ratio(3,1) = %f", Ratio(3, 1))
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Get("a").Inc()
	s.Get("a").Inc()
	s.Get("b").Add(7)
	snap := s.Snapshot()
	if snap["a"] != 2 || snap["b"] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
	str := s.String()
	if !strings.Contains(str, "a=2") || !strings.Contains(str, "b=7") {
		t.Errorf("String() = %q", str)
	}
	s.Reset()
	if s.Get("a").Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %f", h.Mean())
	}
	if h.Quantile(0.5) != 50 {
		t.Errorf("p50 = %f", h.Quantile(0.5))
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %f/%f", h.Min(), h.Max())
	}
	if !strings.Contains(h.Summary(), "n=100") {
		t.Errorf("Summary = %q", h.Summary())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestCostModelTiers(t *testing.T) {
	m := DefaultCostModel()
	hit := m.Lookup(true, true, true)
	bpHit := m.Lookup(true, false, true)
	miss := m.Lookup(true, false, false)
	if !(hit < bpHit && bpHit < miss) {
		t.Errorf("tier ordering wrong: %v %v %v", hit, bpHit, miss)
	}
	// A cache hit never touches the buffer pool or disk.
	if hit != m.IndexProbe+m.CacheProbe {
		t.Errorf("cache hit cost = %v", hit)
	}
	// Disabled cache skips the probe overhead.
	noCache := m.Lookup(false, false, true)
	if noCache != m.IndexProbe+m.BufferPoolAccess {
		t.Errorf("no-cache cost = %v", noCache)
	}
	// Disk dominates everything else by orders of magnitude.
	if miss < 100*bpHit {
		t.Errorf("disk miss %v not >> buffer pool hit %v", miss, bpHit)
	}
	if m.LookupSeconds(true, true, true) != hit.Seconds() {
		t.Error("LookupSeconds disagrees with Lookup")
	}
	_ = time.Nanosecond
}
