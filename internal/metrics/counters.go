// Package metrics provides counters, histograms, and the latency cost
// model shared by the simulation-backed experiments.
//
// The paper's Figure 2(b) experiment is itself a simulation: the index
// and buffer pool are "large in-memory arrays" and a buffer-pool miss
// reads a page from an on-disk file. CostModel captures that three-tier
// latency hierarchy (index-cache probe, buffer-pool page access, disk
// read) so the experiment is deterministic and machine-independent.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Ratio returns c / (c + other), or 0 if both are zero. It is the usual
// way to turn a hit counter and a miss counter into a hit rate.
func Ratio(hits, misses int64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Set is a named collection of counters, useful for engine-wide stats.
type Set struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Get returns the counter with the given name, creating it if needed.
func (s *Set) Get(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Snapshot returns a copy of all counter values at this instant.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Value()
	}
	return out
}

// Reset zeroes every counter in the set.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.Reset()
	}
}

// String renders the set sorted by name, one counter per line.
func (s *Set) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, snap[name])
	}
	return b.String()
}
