package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/semid"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// SemIDConfig parameterizes the Section 4.2 routing comparison.
type SemIDConfig struct {
	Tuples     int
	Partitions int
	Lookups    int
	Seed       int64
}

// DefaultSemIDConfig routes a million tuples across 64 partitions.
func DefaultSemIDConfig() SemIDConfig {
	return SemIDConfig{Tuples: 1_000_000, Partitions: 64, Lookups: 2_000_000, Seed: 1}
}

// SemIDResult compares the routing-table baseline against embedded IDs.
type SemIDResult struct {
	Config SemIDConfig
	// Memory footprint of each router.
	TableBytes, EmbeddedBytes int64
	// Measured routing latency.
	TableNsOp, EmbeddedNsOp float64
	// Reduction report on the revision schema.
	Reductions []semid.ReductionCheck
}

// RunSemID assigns each tuple a random partition, builds both routers,
// and measures route latency and memory. It also runs the ID-reduction
// analysis on the revision schema (rev_id is uniqueness-only; rev_text_id
// is derivable from rev_id in our generator).
func RunSemID(cfg SemIDConfig) (SemIDResult, error) {
	layout, err := semid.NewLayout(semidBits(cfg.Partitions))
	if err != nil {
		return SemIDResult{}, err
	}
	rng := workload.NewRand(cfg.Seed)
	table := semid.NewTableRouter()
	ids := make([]uint64, cfg.Tuples)
	for i := range ids {
		part := uint64(rng.Intn(cfg.Partitions))
		id, err := layout.Make(part, uint64(i))
		if err != nil {
			return SemIDResult{}, err
		}
		ids[i] = id
		table.Add(id, part)
	}
	embedded := semid.NewEmbeddedRouter(layout)

	// Verify agreement before timing.
	for _, id := range ids[:minInt(1000, len(ids))] {
		tp, err := table.Route(id)
		if err != nil {
			return SemIDResult{}, err
		}
		ep, _ := embedded.Route(id)
		if tp != ep {
			return SemIDResult{}, fmt.Errorf("experiments: routers disagree on id %d", id)
		}
	}

	res := SemIDResult{Config: cfg}
	res.TableBytes = table.MemoryBytes()
	res.EmbeddedBytes = embedded.MemoryBytes()

	probe := make([]uint64, cfg.Lookups)
	for i := range probe {
		probe[i] = ids[rng.Intn(len(ids))]
	}
	res.TableNsOp, err = timeRoutes(table, probe)
	if err != nil {
		return SemIDResult{}, err
	}
	res.EmbeddedNsOp, err = timeRoutes(embedded, probe)
	if err != nil {
		return SemIDResult{}, err
	}

	res.Reductions, err = semid.FindReducible(wiki.RevisionSchema(),
		[]string{"rev_id"},
		map[string]string{"rev_text_id": "rev_id"})
	if err != nil {
		return SemIDResult{}, err
	}
	return res, nil
}

func semidBits(partitions int) int {
	bits := 1
	for 1<<bits < partitions {
		bits++
	}
	return bits
}

func timeRoutes(r semid.Router, probe []uint64) (float64, error) {
	var sink uint64
	start := time.Now()
	for _, id := range probe {
		p, err := r.Route(id)
		if err != nil {
			return 0, err
		}
		sink ^= p
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / float64(len(probe)), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Print renders the comparison.
func (r SemIDResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 4.2: semantic IDs — routing table vs embedded partition bits\n")
	fmt.Fprintf(w, "%d tuples, %d partitions, %d routed lookups\n",
		r.Config.Tuples, r.Config.Partitions, r.Config.Lookups)
	fmt.Fprintf(w, "%-22s %14s %12s\n", "router", "memory", "ns/route")
	fmt.Fprintf(w, "%-22s %14s %12.2f\n", "per-tuple table", fmtBytes(r.TableBytes), r.TableNsOp)
	fmt.Fprintf(w, "%-22s %14s %12.2f\n", "embedded in ID", fmtBytes(r.EmbeddedBytes), r.EmbeddedNsOp)
	if r.EmbeddedBytes > 0 {
		fmt.Fprintf(w, "memory ratio: %.0f× smaller; ", float64(r.TableBytes)/float64(r.EmbeddedBytes))
	}
	if r.EmbeddedNsOp > 0 {
		fmt.Fprintf(w, "latency ratio: %.1f× faster\n", r.TableNsOp/r.EmbeddedNsOp)
	}
	fmt.Fprintf(w, "\nID reduction candidates on the revision schema:\n")
	for _, red := range r.Reductions {
		fmt.Fprintf(w, "  %-14s save %3d bits/row — %s\n", red.Field, red.SavedBitsPerRow, red.Reason)
	}
}
