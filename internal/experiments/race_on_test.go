//go:build race

package experiments

// raceEnabled reports whether the race detector is instrumenting this
// build. Wall-clock shape tests skip under it: instrumentation skews
// the relative cost of the measured paths (synchronization-heavy code
// slows far more than plain loads), inverting timing-derived ratios.
const raceEnabled = true
