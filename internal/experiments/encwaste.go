package experiments

import (
	"fmt"
	"io"

	"repro/internal/encoding"
	"repro/internal/tuple"
	"repro/internal/wiki"
)

// EncWasteConfig parameterizes the Section 4.1 analysis: encoding waste
// across the synthetic Wikipedia and CarTel tables.
type EncWasteConfig struct {
	Rows int // rows generated per table
	Seed int64
	// PaperScaleBytes extrapolates the measured waste percentages to
	// paper-scale table sizes (the paper reports 23.5 GB / 20% over the
	// tables it inspected). Keyed by table name.
	PaperScaleBytes map[string]int64
}

// DefaultEncWasteConfig analyzes 20k rows per table and extrapolates to
// the rough sizes of the paper's tables.
func DefaultEncWasteConfig() EncWasteConfig {
	return EncWasteConfig{
		Rows: 20000,
		Seed: 1,
		PaperScaleBytes: map[string]int64{
			"revision": 25 << 30, // revision metadata: tens of GB
			"page":     2 << 30,
			"cartel":   15 << 30, // CarTel telemetry
			"text":     75 << 30, // article content dominates total bytes
		},
	}
}

// EncWasteResult aggregates per-table reports.
type EncWasteResult struct {
	Config  EncWasteConfig
	Reports []encoding.TableReport
	// TotalDeclaredBytes / TotalWasteBytes extrapolate to paper scale.
	TotalDeclaredBytes int64
	TotalWasteBytes    int64
}

// AggregateWastePct returns the paper's headline "20%" figure.
func (r EncWasteResult) AggregateWastePct() float64 {
	if r.TotalDeclaredBytes == 0 {
		return 0
	}
	return float64(r.TotalWasteBytes) / float64(r.TotalDeclaredBytes) * 100
}

// RunEncWaste generates the three tables, runs the analyzer on each,
// and verifies the recommendations with a pack/unpack round trip on a
// sample of rows.
func RunEncWaste(cfg EncWasteConfig) (EncWasteResult, error) {
	res := EncWasteResult{Config: cfg}
	gen := wiki.NewGenerator(wiki.Config{
		Pages:            maxInt(cfg.Rows/10, 10),
		RevisionsPerPage: 10,
		Alpha:            0.5,
		Seed:             cfg.Seed,
	})

	// revision table
	revs, _ := gen.Revisions()
	if len(revs) > cfg.Rows {
		revs = revs[:cfg.Rows]
	}
	revRows := make([]tuple.Row, len(revs))
	for i, r := range revs {
		revRows[i] = r.Row
	}
	if err := res.analyze("revision", wiki.RevisionSchema(), revRows); err != nil {
		return EncWasteResult{}, err
	}

	// page table
	pageRows := make([]tuple.Row, cfg.Rows/10)
	for i := range pageRows {
		pageRows[i] = gen.PageRow(i, int64(i))
	}
	if err := res.analyze("page", wiki.PageSchema(), pageRows); err != nil {
		return EncWasteResult{}, err
	}

	// cartel table
	cartelRows := make([]tuple.Row, cfg.Rows)
	for i := range cartelRows {
		cartelRows[i] = gen.CarTelRow(i)
	}
	if err := res.analyze("cartel", wiki.CarTelSchema(), cartelRows); err != nil {
		return EncWasteResult{}, err
	}

	// text table (article blobs: the low end of the waste band)
	textRows := make([]tuple.Row, cfg.Rows/4)
	for i := range textRows {
		textRows[i] = gen.TextRow(i)
	}
	if err := res.analyze("text", wiki.TextSchema(), textRows); err != nil {
		return EncWasteResult{}, err
	}

	for _, rep := range res.Reports {
		scale, ok := cfg.PaperScaleBytes[rep.Name]
		if !ok {
			scale = rep.DeclaredBytes()
		}
		res.TotalDeclaredBytes += scale
		res.TotalWasteBytes += int64(float64(scale) * rep.WastePct() / 100)
	}
	return res, nil
}

func (r *EncWasteResult) analyze(name string, schema *tuple.Schema, rows []tuple.Row) error {
	i := 0
	report := encoding.AnalyzeRows(name, schema, func() (tuple.Row, bool) {
		if i >= len(rows) {
			return nil, false
		}
		row := rows[i]
		i++
		return row, true
	})
	// Round-trip verification on a sample: the recommendations must be
	// lossless for the data that produced them.
	recs := make([]encoding.Recommendation, len(report.Columns))
	for j, c := range report.Columns {
		recs[j] = c.Rec
	}
	codec, err := encoding.NewPackedCodec(schema, recs)
	if err != nil {
		return fmt.Errorf("experiments: building codec for %s: %w", name, err)
	}
	sample := rows
	if len(sample) > 500 {
		sample = sample[:500]
	}
	buf, err := codec.EncodeRows(sample)
	if err != nil {
		return fmt.Errorf("experiments: packing %s: %w", name, err)
	}
	back, err := codec.DecodeRows(buf, len(sample))
	if err != nil {
		return fmt.Errorf("experiments: unpacking %s: %w", name, err)
	}
	for j := range sample {
		if !sample[j].Equal(back[j]) {
			return fmt.Errorf("experiments: %s row %d did not round-trip through packed codec", name, j)
		}
	}
	r.Reports = append(r.Reports, report)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Print renders the per-table and per-column reports.
func (r EncWasteResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 4.1: encoding waste analysis (declared types as hints)\n")
	for _, rep := range r.Reports {
		fmt.Fprintf(w, "\ntable %-10s rows=%d declared=%s optimal=%s waste=%.1f%%\n",
			rep.Name, rep.Rows, fmtBytes(rep.DeclaredBytes()), fmtBytes(rep.OptimalBytes()), rep.WastePct())
		fmt.Fprintf(w, "  %-18s %-10s %10s %10s %7s  %s\n", "column", "enc", "decl bits", "opt bits", "waste%", "note")
		for _, c := range rep.Columns {
			fmt.Fprintf(w, "  %-18s %-10s %10.1f %10.1f %6.1f%%  %s\n",
				c.Rec.Field.Name, c.Rec.Enc, c.DeclaredBits, c.OptimalBits, c.WastePct(), c.Rec.Note)
		}
	}
	fmt.Fprintf(w, "\naggregate at paper scale: %s of %s wasted (%.1f%%; paper: 23.5 GB ≈ 20%%)\n",
		fmtBytes(r.TotalWasteBytes), fmtBytes(r.TotalDeclaredBytes), r.AggregateWastePct())
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
