package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/tuple"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// ThroughputConfig parameterizes the parallel point-lookup throughput
// experiment: the same warmed cache-hit workload driven by increasing
// goroutine counts against a single-mutex (shards=1) pool and the
// sharded pool, so the scaling curve of the PR-over-PR perf trajectory
// is reproducible from the CLI.
type ThroughputConfig struct {
	Rows       int   // table rows
	Lookups    int   // lookups per goroutine count (split across goroutines)
	Goroutines []int // goroutine counts to sweep
	Shards     int   // sharded-pool shard count (0 = automatic)
	Seed       int64
}

// DefaultThroughputConfig sweeps 1..8 goroutines over a fully resident
// table.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Rows:       20000,
		Lookups:    200000,
		Goroutines: []int{1, 2, 4, 8},
		Seed:       1,
	}
}

// ThroughputPoint is one goroutine count of the sweep.
type ThroughputPoint struct {
	Goroutines       int     `json:"goroutines"`
	SingleOpsPerSec  float64 `json:"single_shard_ops_per_sec"`
	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// ThroughputResult is the measured sweep plus environment facts that
// matter when comparing JSON summaries across machines and PRs.
type ThroughputResult struct {
	Rows       int               `json:"rows"`
	Shards     int               `json:"shards"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Points     []ThroughputPoint `json:"points"`
}

// RunThroughput measures parallel cache-hit lookup throughput against
// a shards=1 pool (the classic single-mutex design) and the sharded
// pool.
func RunThroughput(cfg ThroughputConfig) (_ ThroughputResult, err error) {
	eSingle, single, err := buildThroughputIndex(cfg, 1)
	if err != nil {
		return ThroughputResult{}, err
	}
	defer closeEngine(eSingle, &err)
	eSharded, sharded, err := buildThroughputIndex(cfg, cfg.Shards)
	if err != nil {
		return ThroughputResult{}, err
	}
	defer closeEngine(eSharded, &err)

	res := ThroughputResult{
		Rows:       cfg.Rows,
		Shards:     eSharded.Pool().NumShards(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	keys := make([][]tuple.Value, cfg.Rows)
	for i := range keys {
		keys[i] = fig2cKey(i)
	}
	for _, g := range cfg.Goroutines {
		sOps, err := measureParallelLookups(single, keys, cfg, g)
		if err != nil {
			return ThroughputResult{}, err
		}
		hOps, err := measureParallelLookups(sharded, keys, cfg, g)
		if err != nil {
			return ThroughputResult{}, err
		}
		pt := ThroughputPoint{Goroutines: g, SingleOpsPerSec: sOps, ShardedOpsPerSec: hOps}
		if sOps > 0 {
			pt.Speedup = hOps / sOps
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func buildThroughputIndex(cfg ThroughputConfig, shards int) (*core.Engine, *core.Index, error) {
	e, err := core.NewEngine(core.Options{PageSize: 8192, BufferPoolPages: 1 << 16, PoolShards: shards})
	if err != nil {
		return nil, nil, err
	}
	tb, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		return nil, nil, err
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: cfg.Rows, RevisionsPerPage: 1, Alpha: 0.5, Seed: cfg.Seed})
	for i := 0; i < cfg.Rows; i++ {
		if _, err := tb.Insert(gen.PageRow(i, int64(i*10))); err != nil {
			return nil, nil, err
		}
	}
	ix, err := tb.CreateIndex("name_title", []string{"page_namespace", "page_title"},
		core.WithFillFactor(0.68), core.WithCache(wiki.CachedPageFields()...), core.WithCacheSeed(cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	if _, err := ix.WarmCache(); err != nil {
		return nil, nil, err
	}
	return e, ix, nil
}

// measureParallelLookups runs cfg.Lookups lookups split across g
// goroutines and returns aggregate lookups/second.
func measureParallelLookups(ix *core.Index, keys [][]tuple.Value, cfg ThroughputConfig, g int) (float64, error) {
	proj := []string{"page_namespace", "page_title", "page_latest", "page_len"}
	perG := cfg.Lookups / g
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRand(cfg.Seed + int64(w)*7919)
			buf := make(tuple.Row, 0, len(proj))
			for n := 0; n < perG; n++ {
				row, res, err := ix.LookupInto(buf, proj, keys[rng.Intn(len(keys))]...)
				if err != nil {
					errCh <- err
					return
				}
				if !res.Found {
					errCh <- fmt.Errorf("experiments: throughput key vanished")
					return
				}
				buf = row
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return float64(perG*g) / elapsed.Seconds(), nil
}

// Print renders the sweep as a table.
func (r ThroughputResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel cache-hit lookup throughput, %d rows, GOMAXPROCS=%d, sharded pool = %d shards\n",
		r.Rows, r.GOMAXPROCS, r.Shards)
	fmt.Fprintf(w, "%12s %18s %18s %10s\n", "goroutines", "1-shard ops/s", "sharded ops/s", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12d %18.0f %18.0f %9.2f×\n", p.Goroutines, p.SingleOpsPerSec, p.ShardedOpsPerSec, p.Speedup)
	}
}

// WriteJSON writes the result as a BENCH_*.json throughput summary so
// the perf trajectory can be tracked PR-over-PR.
func (r ThroughputResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
