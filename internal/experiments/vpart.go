package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tuple"
	"repro/internal/vertical"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// VPartConfig parameterizes the Section 3.2 vertical-partitioning
// evaluation.
type VPartConfig struct {
	Rows    int
	Queries int
	Seed    int64
}

// DefaultVPartConfig runs 10k rows and 20k operations.
func DefaultVPartConfig() VPartConfig {
	return VPartConfig{Rows: 10000, Queries: 20000, Seed: 1}
}

// VPartResult compares the advisor's split against the unsplit table.
type VPartResult struct {
	Config VPartConfig
	Split  vertical.Split
	// Group touches per operation class, measured on the materialized
	// VerticalTable.
	HotReadTouches  float64 // narrow read (hot fields only)
	FullReadTouches float64 // full-row read (merge cost)
	UpdateTouches   float64 // hot-field update
	// I/O bytes proxy: pages touched × page size on split vs unsplit
	// for the measured mix.
	SplitIOPerOp, UnsplitIOPerOp float64
}

// RunVPart advises a split for the revision workload (hot read fields
// vs write-hot fields vs cold bulk), materializes it, and measures
// group touches for the three operation classes.
func RunVPart(cfg VPartConfig) (_ VPartResult, err error) {
	schema := wiki.RevisionSchema()
	// Workload profile modeled on the paper's description: queries read
	// id/page/text pointers constantly, the comment and user text rarely;
	// rev_len and rev_timestamp are updated on every edit.
	stats := []vertical.FieldStats{
		{Name: "rev_id", WidthBytes: 8, ReadFreq: 1.0, UpdateFreq: 0, Cached: true},
		{Name: "rev_page", WidthBytes: 8, ReadFreq: 0.9, UpdateFreq: 0, Cached: true},
		{Name: "rev_text_id", WidthBytes: 8, ReadFreq: 0.9, UpdateFreq: 0, Cached: true},
		{Name: "rev_comment", WidthBytes: 40, ReadFreq: 0.05, UpdateFreq: 0},
		{Name: "rev_user", WidthBytes: 8, ReadFreq: 0.2, UpdateFreq: 0},
		{Name: "rev_user_text", WidthBytes: 20, ReadFreq: 0.05, UpdateFreq: 0},
		{Name: "rev_timestamp", WidthBytes: 14, ReadFreq: 0.1, UpdateFreq: 0.5},
		{Name: "rev_minor_edit", WidthBytes: 8, ReadFreq: 0.02, UpdateFreq: 0.01},
		{Name: "rev_deleted", WidthBytes: 8, ReadFreq: 0.02, UpdateFreq: 0.3},
		{Name: "rev_len", WidthBytes: 8, ReadFreq: 0.1, UpdateFreq: 0.5},
		{Name: "rev_parent_id", WidthBytes: 8, ReadFreq: 0.1, UpdateFreq: 0},
	}
	split, err := vertical.Advise(schema, stats, vertical.DefaultCostModel())
	if err != nil {
		return VPartResult{}, err
	}
	res := VPartResult{Config: cfg, Split: split}

	// Materialize: groups must exclude the pk (rev_id keys every group).
	groups := make([][]string, 0, len(split.Groups))
	for _, g := range split.Groups {
		var cleaned []string
		for _, f := range g {
			if f != "rev_id" {
				cleaned = append(cleaned, f)
			}
		}
		if len(cleaned) > 0 {
			groups = append(groups, cleaned)
		}
	}
	e, err := core.NewEngine(core.Options{PageSize: 4096, BufferPoolPages: 1 << 14})
	if err != nil {
		return VPartResult{}, err
	}
	defer closeEngine(e, &err)
	vt, err := vertical.NewVerticalTable(e, "revision", schema, "rev_id", groups)
	if err != nil {
		return VPartResult{}, err
	}
	gen := wiki.NewGenerator(wiki.Config{
		Pages:            maxInt(cfg.Rows/10, 10),
		RevisionsPerPage: 10,
		Alpha:            0.5,
		Seed:             cfg.Seed,
	})
	revs, _ := gen.Revisions()
	if len(revs) > cfg.Rows {
		revs = revs[:cfg.Rows]
	}
	for _, r := range revs {
		if err := vt.Insert(r.Row); err != nil {
			return VPartResult{}, err
		}
	}

	rng := workload.NewRand(cfg.Seed + 5)
	hotFields := []string{"rev_page", "rev_text_id"}
	var hotTouches, fullTouches, updTouches int
	nHot, nFull, nUpd := 0, 0, 0
	for i := 0; i < cfg.Queries; i++ {
		pk := revs[rng.Intn(len(revs))].Row[0]
		switch {
		case i%10 < 7: // 70% narrow hot reads
			_, t, err := vt.GetFields(pk, hotFields)
			if err != nil {
				return VPartResult{}, err
			}
			hotTouches += t
			nHot++
		case i%10 < 9: // 20% hot-field updates
			t, err := vt.UpdateFields(pk,
				[]string{"rev_len"}, tuple.Row{tuple.Int64(int64(rng.Intn(60000)))})
			if err != nil {
				return VPartResult{}, err
			}
			updTouches += t
			nUpd++
		default: // 10% full-row reads (merge cost)
			_, t, err := vt.Get(pk)
			if err != nil {
				return VPartResult{}, err
			}
			fullTouches += t
			nFull++
		}
	}
	if nHot > 0 {
		res.HotReadTouches = float64(hotTouches) / float64(nHot)
	}
	if nFull > 0 {
		res.FullReadTouches = float64(fullTouches) / float64(nFull)
	}
	if nUpd > 0 {
		res.UpdateTouches = float64(updTouches) / float64(nUpd)
	}
	// I/O proxy for the measured mix: group touches × 1 page each, vs
	// the unsplit table touching exactly 1 page per op.
	totalOps := float64(nHot + nFull + nUpd)
	res.SplitIOPerOp = float64(hotTouches+fullTouches+updTouches) / totalOps
	res.UnsplitIOPerOp = 1.0
	return res, nil
}

// Print renders the advisor verdict and measurements.
func (r VPartResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 3.2: vertical partitioning\n")
	fmt.Fprintf(w, "advisor: %s\n", r.Split.Note)
	for i, g := range r.Split.Groups {
		fmt.Fprintf(w, "  group %d: %v\n", i, g)
	}
	fmt.Fprintf(w, "model cost (per 1000 ops): read %.0f→%.0f, write %.0f→%.0f (gain %.1f%%)\n",
		r.Split.BaselineReadCost, r.Split.ReadCost,
		r.Split.BaselineWriteCost, r.Split.WriteCost, 100*r.Split.Gain())
	fmt.Fprintf(w, "measured group touches/op: hot read %.2f, full read %.2f (merge cost), update %.2f\n",
		r.HotReadTouches, r.FullReadTouches, r.UpdateTouches)
	fmt.Fprintf(w, "page touches/op for the mix: split %.2f vs unsplit %.2f\n",
		r.SplitIOPerOp, r.UnsplitIOPerOp)
}
