package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/workload"
)

// WriteConfig parameterizes the parallel-ingest experiment: an
// insert/update mix driven by increasing goroutine counts against the
// latch-crabbing B+Tree, compared with the same tree behind one global
// write mutex (the pre-crabbing design, where every Insert/Delete held
// a tree-wide lock). Tracked PR-over-PR via BENCH_write.json.
type WriteConfig struct {
	Preload    int     // keys loaded before measurement (the update targets)
	Ops        int     // operations per goroutine count (split across goroutines)
	UpdateFrac float64 // fraction of ops that upsert an existing key; the rest insert fresh keys
	Goroutines []int   // goroutine counts to sweep
	Seed       int64
}

// DefaultWriteConfig sweeps 1..8 writers over a 50/50 insert/update mix.
func DefaultWriteConfig() WriteConfig {
	return WriteConfig{
		Preload:    20000,
		Ops:        100000,
		UpdateFrac: 0.5,
		Goroutines: []int{1, 2, 4, 8},
		Seed:       1,
	}
}

// WritePoint is one goroutine count of the sweep.
type WritePoint struct {
	Goroutines       int     `json:"goroutines"`
	MutexOpsPerSec   float64 `json:"mutex_ops_per_sec"`
	CrabbedOpsPerSec float64 `json:"crabbed_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
	// AllocsPerOp is the crabbed path's heap allocations per write —
	// optimistic descents are allocation-free, so this approximates the
	// split rate times the split path's allocation cost.
	AllocsPerOp float64 `json:"crabbed_allocs_per_op"`
	// LatchRetries counts optimistic descents that found a full leaf
	// and fell back to the pessimistic full-path hold during the
	// crabbed measurement (≈ the number of leaf splits).
	LatchRetries int64 `json:"latch_retries"`
}

// WriteResult is the measured sweep plus the environment facts that
// matter when comparing JSON summaries across machines and PRs.
type WriteResult struct {
	Preload    int          `json:"preload_rows"`
	Ops        int          `json:"ops_per_point"`
	UpdateFrac float64      `json:"update_frac"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []WritePoint `json:"points"`
}

// RunWrite measures parallel insert/update throughput on the crabbing
// tree versus the single-write-mutex baseline.
//
// The baseline wraps every operation of the same tree in one global
// mutex — exactly the exclusion the pre-crabbing Tree.mu imposed (that
// design also paid per-page latches underneath its tree lock, so the
// wrap reproduces its cost structure, not a strawman).
func RunWrite(cfg WriteConfig) (WriteResult, error) {
	res := WriteResult{
		Preload:    cfg.Preload,
		Ops:        cfg.Ops,
		UpdateFrac: cfg.UpdateFrac,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, g := range cfg.Goroutines {
		mOps, _, _, err := measureWrites(cfg, g, true)
		if err != nil {
			return WriteResult{}, err
		}
		cOps, allocs, retries, err := measureWrites(cfg, g, false)
		if err != nil {
			return WriteResult{}, err
		}
		pt := WritePoint{
			Goroutines:       g,
			MutexOpsPerSec:   mOps,
			CrabbedOpsPerSec: cOps,
			AllocsPerOp:      allocs,
			LatchRetries:     retries,
		}
		if mOps > 0 {
			pt.Speedup = cOps / mOps
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func writeKey(buf *[8]byte, k int) []byte {
	binary.BigEndian.PutUint64(buf[:], uint64(k))
	return buf[:]
}

// buildWriteTree creates a fresh tree preloaded with cfg.Preload keys
// in shuffled order (so leaves sit at the random-insert steady state,
// not the packed ascending-load shape).
func buildWriteTree(cfg WriteConfig) (*btree.Tree, error) {
	disk, err := storage.NewMemDisk(8192)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPool(disk, 1<<14)
	if err != nil {
		return nil, err
	}
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	order := make([]int, cfg.Preload)
	for i := range order {
		order[i] = i
	}
	rng := workload.NewRand(cfg.Seed)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	var kb [8]byte
	for _, k := range order {
		if _, err := tree.Insert(writeKey(&kb, k), uint64(k)); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

// measureWrites runs cfg.Ops operations split across g goroutines
// against a fresh preloaded tree and returns aggregate ops/second,
// allocations per op, and the tree's latch-retry count.
func measureWrites(cfg WriteConfig, g int, globalMutex bool) (opsPerSec, allocsPerOp float64, latchRetries int64, err error) {
	tree, err := buildWriteTree(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	preRetries := tree.LatchRetries() // preload splits are not the measurement
	perG := cfg.Ops / g
	var mu sync.Mutex // the baseline's tree-wide writer lock
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRand(cfg.Seed + int64(w)*104729)
			var kb [8]byte
			// Fresh-key inserts come from a per-worker disjoint range, so
			// workers never upsert each other's inserts by accident.
			nextFresh := cfg.Preload + w*perG
			for n := 0; n < perG; n++ {
				var k int
				if rng.Float64() < cfg.UpdateFrac {
					k = rng.Intn(cfg.Preload)
				} else {
					k = nextFresh
					nextFresh++
				}
				if globalMutex {
					mu.Lock()
				}
				_, ierr := tree.Insert(writeKey(&kb, k), uint64(k))
				if globalMutex {
					mu.Unlock()
				}
				if ierr != nil {
					errCh <- ierr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(errCh)
	for err := range errCh {
		return 0, 0, 0, err
	}
	total := perG * g
	return float64(total) / elapsed.Seconds(),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
		tree.LatchRetries() - preRetries,
		nil
}

// Print renders the sweep as a table.
func (r WriteResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel insert/update throughput, %d preloaded rows, %.0f%% updates, GOMAXPROCS=%d\n",
		r.Preload, r.UpdateFrac*100, r.GOMAXPROCS)
	fmt.Fprintf(w, "%12s %18s %18s %10s %12s %14s\n",
		"goroutines", "1-mutex ops/s", "crabbed ops/s", "speedup", "allocs/op", "latch retries")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12d %18.0f %18.0f %9.2f× %12.3f %14d\n",
			p.Goroutines, p.MutexOpsPerSec, p.CrabbedOpsPerSec, p.Speedup, p.AllocsPerOp, p.LatchRetries)
	}
}

// WriteJSON writes the result as a BENCH_*.json summary so write
// scaling is tracked PR-over-PR alongside throughput and scan.
func (r WriteResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
