package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// WriteConfig parameterizes the parallel-ingest experiments, driven by
// increasing goroutine counts and tracked PR-over-PR via
// BENCH_write.json:
//
//   - the tree sweep: an insert/update mix against the latch-crabbing
//     B+Tree, compared with the same tree behind one global write mutex
//     (the pre-crabbing design, where every Insert/Delete held a
//     tree-wide lock);
//   - the heap sweep: raw record ingest into a heap file with
//     HeapShards insert shards and per-shard free-space maps, compared
//     with a faithful reproduction of the pre-sharding design (one
//     file-wide mutex around a linear first-fit scan of the advisory
//     free map — see legacyHeap).
type WriteConfig struct {
	Preload    int     // keys loaded before measurement (the update targets)
	Ops        int     // operations per goroutine count (split across goroutines)
	UpdateFrac float64 // fraction of ops that upsert an existing key; the rest insert fresh keys
	Goroutines []int   // goroutine counts to sweep
	Seed       int64

	HeapOps         int // heap records inserted per goroutine count
	HeapRecordBytes int // size of each inserted heap record
	HeapShards      int // insert shards of the sharded heap under test

	BatchOps   int   // table rows ingested per (goroutines, batch size) point
	BatchSizes []int // batch sizes to sweep for the Apply-vs-one-row series

	DurableOps       int // rows ingested per goroutine count of the durable sweep
	DurableBatchSize int // rows per Apply (= per WAL record) in the durable sweep

	TxnOps       int // rows ingested per goroutine count of the transaction sweep
	TxnBatchSize int // rows per transaction (and per raw Apply) in that sweep
}

// DefaultWriteConfig sweeps 1..8 writers over a 50/50 insert/update mix
// for the tree, and the same writer counts over fixed-size record
// ingest for the heap.
func DefaultWriteConfig() WriteConfig {
	return WriteConfig{
		Preload:    20000,
		Ops:        100000,
		UpdateFrac: 0.5,
		Goroutines: []int{1, 2, 4, 8},
		Seed:       1,

		HeapOps:         150000,
		HeapRecordBytes: 64,
		HeapShards:      8,

		BatchOps:   60000,
		BatchSizes: []int{16, 128},

		DurableOps:       30000,
		DurableBatchSize: 64,

		TxnOps:       30000,
		TxnBatchSize: 64,
	}
}

// WritePoint is one goroutine count of the sweep.
type WritePoint struct {
	Goroutines       int     `json:"goroutines"`
	MutexOpsPerSec   float64 `json:"mutex_ops_per_sec"`
	CrabbedOpsPerSec float64 `json:"crabbed_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
	// AllocsPerOp is the crabbed path's heap allocations per write —
	// optimistic descents are allocation-free, so this approximates the
	// split rate times the split path's allocation cost.
	AllocsPerOp float64 `json:"crabbed_allocs_per_op"`
	// LatchRetries counts optimistic descents that found a full leaf
	// and fell back to the pessimistic full-path hold during the
	// crabbed measurement (≈ the number of leaf splits).
	LatchRetries int64 `json:"latch_retries"`
}

// HeapPoint is one goroutine count of the heap-ingest sweep.
type HeapPoint struct {
	Goroutines int `json:"goroutines"`
	// MutexOpsPerSec is insert throughput of the pre-sharding heap:
	// every Insert held one file-wide mutex across a linear first-fit
	// scan of the advisory free-space map plus the page write.
	MutexOpsPerSec float64 `json:"mutex_ops_per_sec"`
	// ShardedOpsPerSec is insert throughput of the sharded heap
	// (HeapShards insert shards, bucketed per-shard free-space maps,
	// goroutine-affine routing).
	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
	// MutexPages / ShardedPages record the file size each variant
	// produced: sharding may cost up to shards−1 partially filled tail
	// pages, and this makes that space overhead visible PR-over-PR.
	MutexPages   int `json:"mutex_pages"`
	ShardedPages int `json:"sharded_pages"`
}

// BatchPoint is one (goroutine count, batch size) cell of the
// Apply-vs-one-row table-ingest sweep. Both variants drive the full
// stack — encode, sharded heap, unique index — over ascending
// per-worker key ranges; the batched side goes through Table.Apply
// (shard-affine heap runs + leaf-grouped index runs), the one-row side
// through Table.Insert per row.
type BatchPoint struct {
	Goroutines       int     `json:"goroutines"`
	BatchSize        int     `json:"batch_size"`
	OneRowOpsPerSec  float64 `json:"one_row_ops_per_sec"`
	BatchedOpsPerSec float64 `json:"batched_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// DurablePoint is one goroutine count of the durable-ingest sweep: the
// same batched table ingest as the batch sweep, run on a file-backed
// engine under each WAL sync policy and compared with the WAL-off
// engine on the same disk.
type DurablePoint struct {
	Goroutines int `json:"goroutines"`
	// NonDurableOpsPerSec is the WAL-off FileDisk engine — the ceiling
	// the durable configurations are measured against.
	NonDurableOpsPerSec float64 `json:"nondurable_ops_per_sec"`
	// GroupCommitOpsPerSec is rows/sec under SyncGroupCommit: every
	// Apply is durable before it returns, concurrent committers share
	// one fsync.
	GroupCommitOpsPerSec float64 `json:"group_commit_ops_per_sec"`
	// OpsPerFsync is rows made durable per log fsync during the group
	// commit measurement. One Apply appends one WAL record, so this is
	// at least the batch size; leader coalescing lifts it further when
	// committers overlap.
	OpsPerFsync float64 `json:"ops_per_fsync"`
	// SyncNoneOpsPerSec is rows/sec under SyncNone: records are
	// appended (buffered) but never fsynced on the commit path, so the
	// gap to NonDurableOpsPerSec is the pure logging overhead.
	SyncNoneOpsPerSec float64 `json:"sync_none_ops_per_sec"`
}

// TxnPoint is one goroutine count of the transaction-overhead sweep:
// the same batched ascending ingest as the batch sweep, once through
// raw Table.Apply and once wrapping every batch in Begin → Txn.Apply →
// Commit. The gap is the full MVCC toll — staging, commit-time
// validation against the version store, per-key index descents at
// commit (staged rows cannot use the leaf-grouped runs), and commits
// serializing on the timestamp allocator.
type TxnPoint struct {
	Goroutines   int     `json:"goroutines"`
	RawOpsPerSec float64 `json:"raw_ops_per_sec"`
	TxnOpsPerSec float64 `json:"txn_ops_per_sec"`
	// Ratio is txn/raw throughput — how much of the raw batched path a
	// transactional writer keeps.
	Ratio float64 `json:"ratio"`
}

// WriteResult is the measured sweeps plus the environment facts that
// matter when comparing JSON summaries across machines and PRs.
type WriteResult struct {
	Preload    int          `json:"preload_rows"`
	Ops        int          `json:"ops_per_point"`
	UpdateFrac float64      `json:"update_frac"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []WritePoint `json:"points"`

	HeapOps         int         `json:"heap_ops_per_point"`
	HeapRecordBytes int         `json:"heap_record_bytes"`
	HeapShards      int         `json:"heap_shards"`
	HeapPoints      []HeapPoint `json:"heap_points"`

	BatchOps    int          `json:"batch_ops_per_point"`
	BatchSizes  []int        `json:"batch_sizes"`
	BatchPoints []BatchPoint `json:"batch_points"`

	DurableOps       int            `json:"durable_ops_per_point"`
	DurableBatchSize int            `json:"durable_batch_size"`
	DurablePoints    []DurablePoint `json:"durable_points"`

	TxnOps       int        `json:"txn_ops_per_point"`
	TxnBatchSize int        `json:"txn_batch_size"`
	TxnPoints    []TxnPoint `json:"txn_points"`
}

// RunWrite measures parallel insert/update throughput on the crabbing
// tree versus the single-write-mutex baseline.
//
// The baseline wraps every operation of the same tree in one global
// mutex — exactly the exclusion the pre-crabbing Tree.mu imposed (that
// design also paid per-page latches underneath its tree lock, so the
// wrap reproduces its cost structure, not a strawman).
func RunWrite(cfg WriteConfig) (WriteResult, error) {
	res := WriteResult{
		Preload:          cfg.Preload,
		Ops:              cfg.Ops,
		UpdateFrac:       cfg.UpdateFrac,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		HeapOps:          cfg.HeapOps,
		HeapRecordBytes:  cfg.HeapRecordBytes,
		HeapShards:       cfg.HeapShards,
		BatchOps:         cfg.BatchOps,
		BatchSizes:       cfg.BatchSizes,
		DurableOps:       cfg.DurableOps,
		DurableBatchSize: cfg.DurableBatchSize,
		TxnOps:           cfg.TxnOps,
		TxnBatchSize:     cfg.TxnBatchSize,
	}
	for _, g := range cfg.Goroutines {
		mOps, _, _, err := measureWrites(cfg, g, true)
		if err != nil {
			return WriteResult{}, err
		}
		cOps, allocs, retries, err := measureWrites(cfg, g, false)
		if err != nil {
			return WriteResult{}, err
		}
		pt := WritePoint{
			Goroutines:       g,
			MutexOpsPerSec:   mOps,
			CrabbedOpsPerSec: cOps,
			AllocsPerOp:      allocs,
			LatchRetries:     retries,
		}
		if mOps > 0 {
			pt.Speedup = cOps / mOps
		}
		res.Points = append(res.Points, pt)
	}
	// Each variant keeps its best of a couple of repetitions: one
	// measurement lasts well under a second, so a GC or scheduler
	// hiccup otherwise shows up as a phantom regression.
	const heapReps = 2
	for _, g := range cfg.Goroutines {
		var pt HeapPoint
		pt.Goroutines = g
		for rep := 0; rep < heapReps; rep++ {
			runtime.GC()
			ops, pages, err := measureHeapIngest(cfg, g, false)
			if err != nil {
				return WriteResult{}, err
			}
			if ops > pt.MutexOpsPerSec {
				pt.MutexOpsPerSec, pt.MutexPages = ops, pages
			}
			runtime.GC()
			ops, pages, err = measureHeapIngest(cfg, g, true)
			if err != nil {
				return WriteResult{}, err
			}
			if ops > pt.ShardedOpsPerSec {
				pt.ShardedOpsPerSec, pt.ShardedPages = ops, pages
			}
		}
		if pt.MutexOpsPerSec > 0 {
			pt.Speedup = pt.ShardedOpsPerSec / pt.MutexOpsPerSec
		}
		res.HeapPoints = append(res.HeapPoints, pt)
	}
	// Batch sweep: Table.Apply versus one-row Table.Insert over the
	// same ascending-ingest workload. Best-of-3 per variant (the heap
	// sweep's best-of-2 widened): the batched-≥-one-row gate is strict
	// per cell, so each side gets enough reps that one scheduler hiccup
	// cannot manufacture a crossing.
	const batchReps = 3
	for _, g := range cfg.Goroutines {
		for _, size := range cfg.BatchSizes {
			var pt BatchPoint
			pt.Goroutines, pt.BatchSize = g, size
			for rep := 0; rep < batchReps; rep++ {
				runtime.GC()
				ops, err := measureBatchIngest(cfg, g, size, false)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.OneRowOpsPerSec {
					pt.OneRowOpsPerSec = ops
				}
				runtime.GC()
				ops, err = measureBatchIngest(cfg, g, size, true)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.BatchedOpsPerSec {
					pt.BatchedOpsPerSec = ops
				}
			}
			if pt.OneRowOpsPerSec > 0 {
				pt.Speedup = pt.BatchedOpsPerSec / pt.OneRowOpsPerSec
			}
			res.BatchPoints = append(res.BatchPoints, pt)
		}
	}
	// Durable sweep: the same batched ingest on a file-backed engine
	// under each WAL sync policy, against the WAL-off engine on the same
	// disk. Best-of-3 per variant: the gate holds sync-none to within
	// 10% of the WAL-off ceiling, so each side gets enough repetitions
	// that one scheduler hiccup cannot manufacture a crossing.
	if cfg.DurableOps > 0 {
		const durableReps = 3
		for _, g := range cfg.Goroutines {
			var pt DurablePoint
			pt.Goroutines = g
			for rep := 0; rep < durableReps; rep++ {
				runtime.GC()
				ops, _, err := measureDurableIngest(cfg, g, durOff)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.NonDurableOpsPerSec {
					pt.NonDurableOpsPerSec = ops
				}
				runtime.GC()
				ops, perFsync, err := measureDurableIngest(cfg, g, durGroup)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.GroupCommitOpsPerSec {
					pt.GroupCommitOpsPerSec, pt.OpsPerFsync = ops, perFsync
				}
				runtime.GC()
				ops, _, err = measureDurableIngest(cfg, g, durNone)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.SyncNoneOpsPerSec {
					pt.SyncNoneOpsPerSec = ops
				}
			}
			res.DurablePoints = append(res.DurablePoints, pt)
		}
	}
	// Transaction sweep: raw batched Apply versus Begin → Txn.Apply →
	// Commit over the same workload. Best-of-3 like the batch sweep: the
	// gate holds a floor on the txn/raw ratio, so each side needs enough
	// repetitions that one scheduler hiccup cannot fake a collapse.
	if cfg.TxnOps > 0 {
		const txnReps = 3
		for _, g := range cfg.Goroutines {
			var pt TxnPoint
			pt.Goroutines = g
			for rep := 0; rep < txnReps; rep++ {
				runtime.GC()
				ops, err := measureTxnIngest(cfg, g, false)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.RawOpsPerSec {
					pt.RawOpsPerSec = ops
				}
				runtime.GC()
				ops, err = measureTxnIngest(cfg, g, true)
				if err != nil {
					return WriteResult{}, err
				}
				if ops > pt.TxnOpsPerSec {
					pt.TxnOpsPerSec = ops
				}
			}
			if pt.RawOpsPerSec > 0 {
				pt.Ratio = pt.TxnOpsPerSec / pt.RawOpsPerSec
			}
			res.TxnPoints = append(res.TxnPoints, pt)
		}
	}
	return res, nil
}

// measureTxnIngest runs cfg.TxnOps row inserts split across g
// goroutines against a fresh engine+table+unique index and returns
// aggregate rows/second. Workers ingest disjoint ascending key ranges
// in batches of cfg.TxnBatchSize — through raw Table.Apply, or with
// each batch staged and committed as one snapshot transaction. The
// workloads are identical, so the throughput gap isolates the MVCC
// machinery: version-store bookkeeping, commit validation, per-key
// index inserts for staged rows, and the serialized timestamp
// allocation under txnMu.
func measureTxnIngest(cfg WriteConfig, g int, txn bool) (_ float64, err error) {
	e, err := core.NewEngine(core.Options{BufferPoolPages: 1 << 14})
	if err != nil {
		return 0, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("ingest", batchIngestSchema())
	if err != nil {
		return 0, err
	}
	if _, err := tb.CreateIndex("by_id", []string{"id"}); err != nil {
		return 0, err
	}
	size := cfg.TxnBatchSize
	perG := cfg.TxnOps / g
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * int64(perG)
			var b core.Batch
			for n := 0; n < perG; {
				b.Reset()
				for k := 0; k < size && n < perG; k++ {
					id := base + int64(n)
					b.Insert(tuple.Row{tuple.Int64(id), tuple.Int64(id * 3), tuple.Int64(id ^ 0x5a5a)})
					n++
				}
				if txn {
					tx := e.Begin()
					if _, ierr := tx.Apply(tb, &b); ierr != nil {
						tx.Abort()
						errCh <- ierr
						return
					}
					if ierr := tx.Commit(); ierr != nil {
						errCh <- ierr
						return
					}
				} else if _, ierr := tb.Apply(&b); ierr != nil {
					errCh <- ierr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return float64(perG*g) / elapsed.Seconds(), nil
}

// Durable-sweep engine configurations.
const (
	durOff   = iota // WAL disabled — the non-durable FileDisk ceiling
	durGroup        // WAL + SyncGroupCommit (the durable default)
	durNone         // WAL + SyncNone (log without commit-path fsyncs)
)

// measureDurableIngest runs cfg.DurableOps row inserts split across g
// goroutines — batched Apply of cfg.DurableBatchSize rows, same schema
// and unique index as the batch sweep — against a fresh file-backed
// engine in the given durability configuration. It returns aggregate
// rows/second and, for the group-commit configuration, rows made
// durable per log fsync.
func measureDurableIngest(cfg WriteConfig, g, mode int) (opsPerSec, opsPerFsync float64, err error) {
	dir, err := os.MkdirTemp("", "nblb-durable-bench")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	opts := core.Options{
		Path:            filepath.Join(dir, "db"),
		BufferPoolPages: 1 << 14,
	}
	var extra []core.EngineOption
	if mode != durOff {
		// The sweep measures the commit path; a large budget keeps
		// automatic checkpoints out of the timed window.
		extra = append(extra, core.WithWAL(), core.WithCheckpointEvery(1<<30))
		if mode == durNone {
			extra = append(extra, core.WithSyncPolicy(core.SyncNone))
		}
	}
	e, err := core.NewEngine(opts, extra...)
	if err != nil {
		return 0, 0, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("ingest", batchIngestSchema())
	if err != nil {
		return 0, 0, err
	}
	if _, err := tb.CreateIndex("by_id", []string{"id"}); err != nil {
		return 0, 0, err
	}
	pre := e.WALStats() // setup DDL syncs are not the measurement
	size := cfg.DurableBatchSize
	// Whole batches only: a partial tail batch would drag rows-per-fsync
	// below the batch size and break the gate's structural floor.
	perG := cfg.DurableOps / g / size * size
	if perG < size {
		perG = size
	}
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * int64(perG)
			var b core.Batch
			for n := 0; n < perG; {
				b.Reset()
				for k := 0; k < size && n < perG; k++ {
					id := base + int64(n)
					b.Insert(tuple.Row{tuple.Int64(id), tuple.Int64(id * 3), tuple.Int64(id ^ 0x5a5a)})
					n++
				}
				if _, ierr := tb.Apply(&b); ierr != nil {
					errCh <- ierr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, 0, err
	}
	if mode == durGroup {
		if syncs := e.WALStats().Syncs - pre.Syncs; syncs > 0 {
			opsPerFsync = float64(perG*g) / float64(syncs)
		}
	}
	return float64(perG*g) / elapsed.Seconds(), opsPerFsync, nil
}

// batchIngestSchema is the fixed-width row shape of the batch sweep.
func batchIngestSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "a", Kind: tuple.KindInt64},
		tuple.Field{Name: "b", Kind: tuple.KindInt64},
	)
}

// measureBatchIngest runs cfg.BatchOps row inserts split across g
// goroutines against a fresh engine+table+unique index and returns
// aggregate rows/second. Each worker ingests its own ascending key
// range (the contiguous-run shape of real ingest: log tails, monotone
// ids, time series), in batches of size through Table.Apply when
// batched, one Table.Insert per row otherwise.
func measureBatchIngest(cfg WriteConfig, g, size int, batched bool) (_ float64, err error) {
	e, err := core.NewEngine(core.Options{BufferPoolPages: 1 << 14})
	if err != nil {
		return 0, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("ingest", batchIngestSchema())
	if err != nil {
		return 0, err
	}
	if _, err := tb.CreateIndex("by_id", []string{"id"}); err != nil {
		return 0, err
	}
	perG := cfg.BatchOps / g
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * int64(perG)
			row := func(id int64) tuple.Row {
				return tuple.Row{tuple.Int64(id), tuple.Int64(id * 3), tuple.Int64(id ^ 0x5a5a)}
			}
			if !batched {
				for n := 0; n < perG; n++ {
					if _, ierr := tb.Insert(row(base + int64(n))); ierr != nil {
						errCh <- ierr
						return
					}
				}
				return
			}
			var b core.Batch
			for n := 0; n < perG; {
				b.Reset()
				for k := 0; k < size && n < perG; k++ {
					b.Insert(row(base + int64(n)))
					n++
				}
				if _, ierr := tb.Apply(&b); ierr != nil {
					errCh <- ierr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return float64(perG*g) / elapsed.Seconds(), nil
}

// recordInserter abstracts the two heap implementations under test.
type recordInserter interface {
	Insert(rec []byte) (storage.RID, error)
	NumPages() int
}

// legacyHeap reproduces the pre-sharding heap insert path exactly: one
// file-wide mutex held across the placement decision and the page
// write, with placement a linear first-fit scan over every page's
// advisory free bytes (the design internal/heap shipped before the
// sharded free-space maps; reads are irrelevant to the sweep, so only
// the insert path is reproduced).
type legacyHeap struct {
	pool *buffer.Pool

	mu        sync.Mutex
	pages     []storage.PageID
	freeBytes map[storage.PageID]int
}

func newLegacyHeap(pool *buffer.Pool) (*legacyHeap, error) {
	f := &legacyHeap{pool: pool, freeBytes: make(map[storage.PageID]int)}
	if _, err := f.addPageLocked(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *legacyHeap) addPageLocked() (storage.PageID, error) {
	fr, err := f.pool.NewPage()
	if err != nil {
		return storage.InvalidPageID, err
	}
	sp := storage.AsSlotted(fr.Data())
	sp.Init()
	id := fr.ID()
	f.pages = append(f.pages, id)
	f.freeBytes[id] = sp.AvailableBytes()
	f.pool.Unpin(fr, true)
	return id, nil
}

func (f *legacyHeap) NumPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages)
}

func (f *legacyHeap) Insert(rec []byte) (storage.RID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Linear first-fit over the advisory map — O(pages) per insert once
	// the file has grown, which is exactly the cost the bucketed
	// free-space maps remove.
	target := f.pages[len(f.pages)-1]
	for _, id := range f.pages {
		if f.freeBytes[id] >= len(rec)+8 {
			target = id
			break
		}
	}
	for attempt := 0; attempt < 2; attempt++ {
		fr, err := f.pool.Fetch(target)
		if err != nil {
			return storage.InvalidRID, err
		}
		fr.Latch.Lock()
		sp := storage.AsSlotted(fr.Data())
		slot, err := sp.Insert(rec)
		free := sp.AvailableBytes()
		fr.Latch.Unlock()
		f.freeBytes[target] = free
		if err == nil {
			f.pool.Unpin(fr, true)
			return storage.RID{Page: target, Slot: slot}, nil
		}
		f.pool.Unpin(fr, false)
		if err != storage.ErrNoSpace {
			return storage.InvalidRID, err
		}
		target, err = f.addPageLocked()
		if err != nil {
			return storage.InvalidRID, err
		}
	}
	return storage.InvalidRID, fmt.Errorf("legacy heap: record of %d bytes does not fit", len(rec))
}

// measureHeapIngest runs cfg.HeapOps fixed-size inserts split across g
// goroutines against a fresh heap (the sharded implementation or the
// legacy single-mutex reproduction) and returns aggregate ops/second
// plus the resulting file size in pages.
func measureHeapIngest(cfg WriteConfig, g int, sharded bool) (opsPerSec float64, pages int, err error) {
	disk, err := storage.NewMemDisk(8192)
	if err != nil {
		return 0, 0, err
	}
	pool, err := buffer.NewPool(disk, 1<<14)
	if err != nil {
		return 0, 0, err
	}
	var file recordInserter
	if sharded {
		file, err = heap.NewFile(pool, heap.WithInsertShards(cfg.HeapShards))
	} else {
		file, err = newLegacyHeap(pool)
	}
	if err != nil {
		return 0, 0, err
	}
	perG := cfg.HeapOps / g
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := make([]byte, cfg.HeapRecordBytes)
			rec[0] = byte(w)
			for n := 0; n < perG; n++ {
				if _, ierr := file.Insert(rec); ierr != nil {
					errCh <- ierr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, 0, err
	}
	return float64(perG*g) / elapsed.Seconds(), file.NumPages(), nil
}

func writeKey(buf *[8]byte, k int) []byte {
	binary.BigEndian.PutUint64(buf[:], uint64(k))
	return buf[:]
}

// buildWriteTree creates a fresh tree preloaded with cfg.Preload keys
// in shuffled order (so leaves sit at the random-insert steady state,
// not the packed ascending-load shape).
func buildWriteTree(cfg WriteConfig) (*btree.Tree, error) {
	disk, err := storage.NewMemDisk(8192)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPool(disk, 1<<14)
	if err != nil {
		return nil, err
	}
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	order := make([]int, cfg.Preload)
	for i := range order {
		order[i] = i
	}
	rng := workload.NewRand(cfg.Seed)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	var kb [8]byte
	for _, k := range order {
		if _, err := tree.Insert(writeKey(&kb, k), uint64(k)); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

// measureWrites runs cfg.Ops operations split across g goroutines
// against a fresh preloaded tree and returns aggregate ops/second,
// allocations per op, and the tree's latch-retry count.
func measureWrites(cfg WriteConfig, g int, globalMutex bool) (opsPerSec, allocsPerOp float64, latchRetries int64, err error) {
	tree, err := buildWriteTree(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	preRetries := tree.LatchRetries() // preload splits are not the measurement
	perG := cfg.Ops / g
	var mu sync.Mutex // the baseline's tree-wide writer lock
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRand(cfg.Seed + int64(w)*104729)
			var kb [8]byte
			// Fresh-key inserts come from a per-worker disjoint range, so
			// workers never upsert each other's inserts by accident.
			nextFresh := cfg.Preload + w*perG
			for n := 0; n < perG; n++ {
				var k int
				if rng.Float64() < cfg.UpdateFrac {
					k = rng.Intn(cfg.Preload)
				} else {
					k = nextFresh
					nextFresh++
				}
				if globalMutex {
					mu.Lock()
				}
				_, ierr := tree.Insert(writeKey(&kb, k), uint64(k))
				if globalMutex {
					mu.Unlock()
				}
				if ierr != nil {
					errCh <- ierr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(errCh)
	for err := range errCh {
		return 0, 0, 0, err
	}
	total := perG * g
	return float64(total) / elapsed.Seconds(),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
		tree.LatchRetries() - preRetries,
		nil
}

// Print renders the sweeps as tables.
func (r WriteResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel insert/update throughput, %d preloaded rows, %.0f%% updates, GOMAXPROCS=%d\n",
		r.Preload, r.UpdateFrac*100, r.GOMAXPROCS)
	fmt.Fprintf(w, "%12s %18s %18s %10s %12s %14s\n",
		"goroutines", "1-mutex ops/s", "crabbed ops/s", "speedup", "allocs/op", "latch retries")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12d %18.0f %18.0f %9.2f× %12.3f %14d\n",
			p.Goroutines, p.MutexOpsPerSec, p.CrabbedOpsPerSec, p.Speedup, p.AllocsPerOp, p.LatchRetries)
	}
	if len(r.HeapPoints) == 0 {
		return
	}
	fmt.Fprintf(w, "\nHeap ingest throughput, %d records of %dB, %d insert shards vs the single-mutex heap\n",
		r.HeapOps, r.HeapRecordBytes, r.HeapShards)
	fmt.Fprintf(w, "%12s %18s %18s %10s %12s %14s\n",
		"goroutines", "1-mutex ops/s", "sharded ops/s", "speedup", "1-mutex pgs", "sharded pgs")
	for _, p := range r.HeapPoints {
		fmt.Fprintf(w, "%12d %18.0f %18.0f %9.2f× %12d %14d\n",
			p.Goroutines, p.MutexOpsPerSec, p.ShardedOpsPerSec, p.Speedup, p.MutexPages, p.ShardedPages)
	}
	if len(r.BatchPoints) == 0 {
		return
	}
	fmt.Fprintf(w, "\nTable ingest throughput, %d rows per point: batched Apply vs one-row Insert\n", r.BatchOps)
	fmt.Fprintf(w, "%12s %12s %18s %18s %10s\n",
		"goroutines", "batch size", "one-row ops/s", "batched ops/s", "speedup")
	for _, p := range r.BatchPoints {
		fmt.Fprintf(w, "%12d %12d %18.0f %18.0f %9.2f×\n",
			p.Goroutines, p.BatchSize, p.OneRowOpsPerSec, p.BatchedOpsPerSec, p.Speedup)
	}
	if len(r.DurablePoints) == 0 {
		return
	}
	fmt.Fprintf(w, "\nDurable ingest throughput, %d rows per point in batches of %d, file-backed engine\n",
		r.DurableOps, r.DurableBatchSize)
	fmt.Fprintf(w, "%12s %16s %18s %14s %16s\n",
		"goroutines", "no-WAL ops/s", "group-commit ops/s", "ops/fsync", "sync-none ops/s")
	for _, p := range r.DurablePoints {
		fmt.Fprintf(w, "%12d %16.0f %18.0f %14.0f %16.0f\n",
			p.Goroutines, p.NonDurableOpsPerSec, p.GroupCommitOpsPerSec, p.OpsPerFsync, p.SyncNoneOpsPerSec)
	}
	if len(r.TxnPoints) == 0 {
		return
	}
	fmt.Fprintf(w, "\nTransaction overhead, %d rows per point in transactions of %d rows\n",
		r.TxnOps, r.TxnBatchSize)
	fmt.Fprintf(w, "%12s %16s %16s %10s\n",
		"goroutines", "raw ops/s", "txn ops/s", "txn/raw")
	for _, p := range r.TxnPoints {
		fmt.Fprintf(w, "%12d %16.0f %16.0f %9.2f×\n",
			p.Goroutines, p.RawOpsPerSec, p.TxnOpsPerSec, p.Ratio)
	}
}

// WriteJSON writes the result as a BENCH_*.json summary so write
// scaling is tracked PR-over-PR alongside throughput and scan.
func (r WriteResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
