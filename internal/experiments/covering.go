package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/wiki"
)

// CoveringConfig parameterizes the §2.1 design comparison the paper
// makes in passing: instead of caching hot tuples in free space, one
// could build a covering index (all projected fields in the key). The
// paper's objection: "covering indices still store cold data, waste
// space and bloat the index size, which wastes more total bytes, and
// increases pressure on RAM."
type CoveringConfig struct {
	Pages int
	Seed  int64
}

// DefaultCoveringConfig compares at 20k rows.
func DefaultCoveringConfig() CoveringConfig {
	return CoveringConfig{Pages: 20000, Seed: 1}
}

// CoveringResult sizes both designs.
type CoveringResult struct {
	Config CoveringConfig
	// PlainIndexBytes is the name_title index alone.
	PlainIndexBytes int64
	// CachedIndexBytes is the same index with the cache enabled — by
	// construction identical in size (the cache lives in existing free
	// space).
	CachedIndexBytes int64
	// CoveringIndexBytes appends the four projected fields to the key.
	CoveringIndexBytes int64
	// CacheCoverage is the fraction of rows the recycled free space can
	// hold — what the cache gives "for free".
	CacheCoverage float64
}

// RunCovering builds the three indexes and compares their footprints.
func RunCovering(cfg CoveringConfig) (_ CoveringResult, err error) {
	e, err := core.NewEngine(core.Options{PageSize: 8192, BufferPoolPages: 1 << 16})
	if err != nil {
		return CoveringResult{}, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		return CoveringResult{}, err
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: cfg.Pages, RevisionsPerPage: 1, Alpha: 0.5, Seed: cfg.Seed})
	for i := 0; i < cfg.Pages; i++ {
		if _, err := tb.Insert(gen.PageRow(i, int64(i))); err != nil {
			return CoveringResult{}, err
		}
	}
	res := CoveringResult{Config: cfg}

	plain, err := tb.CreateIndex("plain", []string{"page_namespace", "page_title"},
		core.WithFillFactor(0.68))
	if err != nil {
		return CoveringResult{}, err
	}
	ps, err := plain.Tree().Stats()
	if err != nil {
		return CoveringResult{}, err
	}
	res.PlainIndexBytes = ps.SizeBytes

	cached, err := tb.CreateIndex("cached", []string{"page_namespace", "page_title"},
		core.WithFillFactor(0.68), core.WithCache(wiki.CachedPageFields()...))
	if err != nil {
		return CoveringResult{}, err
	}
	cs, err := cached.Tree().Stats()
	if err != nil {
		return CoveringResult{}, err
	}
	res.CachedIndexBytes = cs.SizeBytes
	if n, err := cached.WarmCache(); err == nil {
		res.CacheCoverage = float64(n) / float64(cfg.Pages)
	} else {
		return CoveringResult{}, err
	}

	// Covering index: the four extra fields join the key. It answers the
	// same projections index-only, but every tuple — hot or cold — pays.
	covering, err := tb.CreateIndex("covering", []string{
		"page_namespace", "page_title",
		"page_is_redirect", "page_latest", "page_len", "page_touched",
	}, core.WithFillFactor(0.68))
	if err != nil {
		return CoveringResult{}, err
	}
	vs, err := covering.Tree().Stats()
	if err != nil {
		return CoveringResult{}, err
	}
	res.CoveringIndexBytes = vs.SizeBytes
	return res, nil
}

// Bloat returns covering / plain size.
func (r CoveringResult) Bloat() float64 {
	if r.PlainIndexBytes == 0 {
		return 0
	}
	return float64(r.CoveringIndexBytes) / float64(r.PlainIndexBytes)
}

// Print renders the comparison.
func (r CoveringResult) Print(w io.Writer) {
	fmt.Fprintf(w, "§2.1 design comparison: index cache vs covering index (%d rows)\n", r.Config.Pages)
	fmt.Fprintf(w, "%-28s %12s\n", "design", "index bytes")
	fmt.Fprintf(w, "%-28s %12d\n", "plain name_title", r.PlainIndexBytes)
	fmt.Fprintf(w, "%-28s %12d  (+cache holds %.0f%% of rows in existing free space)\n",
		"with index cache", r.CachedIndexBytes, 100*r.CacheCoverage)
	fmt.Fprintf(w, "%-28s %12d  (%.2f× bloat, hot and cold alike)\n",
		"covering (4 extra fields)", r.CoveringIndexBytes, r.Bloat())
}
