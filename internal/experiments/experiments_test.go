package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The experiment tests run reduced configurations and assert the
// qualitative shapes the paper reports — who wins, in which direction,
// and by roughly what structure — not absolute numbers.

func TestFig2aShapes(t *testing.T) {
	cfg := DefaultFig2aConfig()
	cfg.Items, cfg.Lookups = 2000, 30000
	cfg.Sizes = []int{10, 25, 50, 100}
	res, err := RunFig2a(cfg)
	if err != nil {
		t.Fatalf("RunFig2a: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	for i, p := range res.Points {
		// Monotone in cache size.
		if i > 0 && p.Swap < res.Points[i-1].Swap-0.02 {
			t.Errorf("Swap not monotone at %d%%", p.SizePct)
		}
		// Swap ≥ Shrink (less cache can't help).
		if p.Shrink > p.Swap+0.02 {
			t.Errorf("Shrink beats Swap at %d%%", p.SizePct)
		}
		// Nothing beats the clairvoyant bound (cold-start misses keep the
		// average strictly below it).
		if p.Swap > p.Ideal+0.02 {
			t.Errorf("Swap exceeds ideal at %d%%", p.SizePct)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 2(a)") {
		t.Error("Print output missing header")
	}
}

func TestFig2bShapes(t *testing.T) {
	cfg := DefaultFig2bConfig()
	cfg.Lookups = 20000
	res := RunFig2b(cfg)
	if len(res.MsPerLookup) != len(cfg.BufferPoolRates) {
		t.Fatalf("series count %d", len(res.MsPerLookup))
	}
	// Higher buffer pool hit rate is strictly cheaper at cache rate 0.
	for i := 1; i < len(cfg.BufferPoolRates); i++ {
		if res.MsPerLookup[i][0] >= res.MsPerLookup[i-1][0] {
			t.Errorf("bp=%.2f not cheaper than bp=%.2f", cfg.BufferPoolRates[i], cfg.BufferPoolRates[i-1])
		}
	}
	// Cache hit rate 100% collapses every series to the same floor.
	last := len(cfg.CacheRates) - 1
	floor := res.MsPerLookup[0][last]
	for i := range cfg.BufferPoolRates {
		if res.MsPerLookup[i][last] != floor {
			t.Errorf("series %d floor %f != %f", i, res.MsPerLookup[i][last], floor)
		}
	}
	// The paper's headline: ~4 orders of magnitude between bp=0% at
	// cache=0 and the all-hit floor.
	if res.MsPerLookup[0][0] < 1000*floor {
		t.Errorf("dynamic range too small: %f vs floor %f", res.MsPerLookup[0][0], floor)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "bp=96%") {
		t.Error("Print output missing series")
	}
}

func TestFig2cShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("wall-clock shapes are skewed by race instrumentation")
	}
	cfg := DefaultFig2cConfig()
	cfg.Pages, cfg.Lookups = 4000, 20000
	// Wall-clock measurements jitter; accept the shape if any of three
	// attempts shows it cleanly.
	var res Fig2cResult
	var err error
	ok := false
	for attempt := 0; attempt < 3 && !ok; attempt++ {
		cfg.Seed = int64(attempt + 1)
		res, err = RunFig2c(cfg)
		if err != nil {
			t.Fatalf("RunFig2c: %v", err)
		}
		ok = res.HitNs < res.MissNs && res.OverheadNs > 0 && res.SpeedupAtFull > 1.0
	}
	// A hit must beat a miss; the miss must cost more than nocache
	// (probe + fill overhead); a hit avoids the heap so it undercuts
	// the no-cache baseline.
	if res.HitNs >= res.MissNs {
		t.Errorf("hit %.0fns not cheaper than miss %.0fns", res.HitNs, res.MissNs)
	}
	if res.OverheadNs <= 0 {
		t.Errorf("cache overhead %.0fns should be positive", res.OverheadNs)
	}
	if res.SpeedupAtFull <= 1.0 {
		t.Errorf("speedup at full hit rate %.2f, want > 1", res.SpeedupAtFull)
	}
	if len(res.Points) != 11 {
		t.Errorf("%d curve points", len(res.Points))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "break-even") {
		t.Error("Print output missing break-even")
	}
}

func TestFig3Shapes(t *testing.T) {
	// The partition's advantage needs the paper's regime: the full
	// index must not fit the buffer pool while the hot partition's
	// (index + heap) does.
	cfg := DefaultFig3Config()
	cfg.Pages, cfg.Queries = 1500, 3000
	cfg.RevisionsPerPage = 15
	cfg.BufferPoolPages = 80
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	base, c54, c100, part := res.Points[0], res.Points[1], res.Points[2], res.Points[3]
	// Clustering monotonically improves; partitioning wins outright.
	if c54.MsPerQuery >= base.MsPerQuery {
		t.Errorf("54%% clustering (%.3f) no better than baseline (%.3f)", c54.MsPerQuery, base.MsPerQuery)
	}
	if c100.MsPerQuery >= c54.MsPerQuery {
		t.Errorf("100%% clustering (%.3f) no better than 54%% (%.3f)", c100.MsPerQuery, c54.MsPerQuery)
	}
	if part.MsPerQuery >= c100.MsPerQuery {
		t.Errorf("partition (%.3f) no better than full clustering (%.3f)", part.MsPerQuery, c100.MsPerQuery)
	}
	// The hot partition's index must be much smaller than the full one.
	if res.IndexShrinkFactor < 3 {
		t.Errorf("index shrink factor %.1f too small", res.IndexShrinkFactor)
	}
	// Baseline diagnosis: hot tuples scattered over most pages.
	if res.BaselineHotScatter < 0.3 {
		t.Errorf("hot scatter %.2f suspiciously low", res.BaselineHotScatter)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Partition") {
		t.Error("Print output missing Partition row")
	}
}

func TestEncWasteShapes(t *testing.T) {
	cfg := DefaultEncWasteConfig()
	cfg.Rows = 2500
	res, err := RunEncWaste(cfg)
	if err != nil {
		t.Fatalf("RunEncWaste: %v", err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("%d reports", len(res.Reports))
	}
	byName := map[string]float64{}
	for _, rep := range res.Reports {
		byName[rep.Name] = rep.WastePct()
	}
	// Metadata tables waste a lot; the text table wastes almost nothing.
	for _, name := range []string{"revision", "page", "cartel"} {
		if byName[name] < 30 {
			t.Errorf("%s waste %.1f%% too low", name, byName[name])
		}
	}
	if byName["text"] > 15 {
		t.Errorf("text waste %.1f%% too high for blob data", byName["text"])
	}
	// Aggregate near the paper's ~20%.
	if agg := res.AggregateWastePct(); agg < 10 || agg > 45 {
		t.Errorf("aggregate waste %.1f%% outside plausible band", agg)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "flagship") {
		t.Error("Print output missing the timestamp14 case")
	}
}

func TestCapacityShapes(t *testing.T) {
	cfg := DefaultCapacityConfig()
	cfg.Pages = 3000
	res, err := RunCapacity(cfg)
	if err != nil {
		t.Fatalf("RunCapacity: %v", err)
	}
	if res.MeasuredFill < 0.55 || res.MeasuredFill > 0.75 {
		t.Errorf("measured fill %.2f far from configured 0.68", res.MeasuredFill)
	}
	if res.MeasuredSlots == 0 {
		t.Error("no cache slots measured")
	}
	if res.MeasuredCoverage <= 0.2 {
		t.Errorf("coverage %.2f too low", res.MeasuredCoverage)
	}
	// Closed form with the paper's inputs must land near their 7.9M.
	items := res.PaperEstimate.Items()
	if items < 5_000_000 || items > 10_000_000 {
		t.Errorf("paper-input estimate %d items, want ≈7.9M", items)
	}
}

func TestSemIDShapes(t *testing.T) {
	cfg := DefaultSemIDConfig()
	cfg.Tuples, cfg.Lookups = 50000, 100000
	res, err := RunSemID(cfg)
	if err != nil {
		t.Fatalf("RunSemID: %v", err)
	}
	if res.TableBytes <= 1000*res.EmbeddedBytes {
		t.Errorf("routing table %d bytes not ≫ embedded %d", res.TableBytes, res.EmbeddedBytes)
	}
	if res.EmbeddedNsOp >= res.TableNsOp {
		t.Errorf("embedded routing (%.1fns) not faster than table (%.1fns)", res.EmbeddedNsOp, res.TableNsOp)
	}
	if len(res.Reductions) != 2 {
		t.Errorf("%d reductions", len(res.Reductions))
	}
}

func TestVPartShapes(t *testing.T) {
	cfg := DefaultVPartConfig()
	cfg.Rows, cfg.Queries = 2000, 4000
	res, err := RunVPart(cfg)
	if err != nil {
		t.Fatalf("RunVPart: %v", err)
	}
	if len(res.Split.Groups) < 2 {
		t.Fatalf("advisor did not split: %v", res.Split.Groups)
	}
	if res.Split.Gain() <= 0 {
		t.Errorf("split gain %.2f not positive", res.Split.Gain())
	}
	// Narrow reads and updates touch one group; full reads pay the merge.
	if res.HotReadTouches > 1.01 {
		t.Errorf("hot reads touch %.2f groups", res.HotReadTouches)
	}
	if res.UpdateTouches > 1.01 {
		t.Errorf("updates touch %.2f groups", res.UpdateTouches)
	}
	if res.FullReadTouches < 1.9 {
		t.Errorf("full reads touch %.2f groups; merge cost missing", res.FullReadTouches)
	}
}

func TestCoveringShapes(t *testing.T) {
	cfg := DefaultCoveringConfig()
	cfg.Pages = 3000
	res, err := RunCovering(cfg)
	if err != nil {
		t.Fatalf("RunCovering: %v", err)
	}
	// The cache adds zero index bytes; the covering index bloats.
	if res.CachedIndexBytes != res.PlainIndexBytes {
		t.Errorf("cache changed index size: %d vs %d", res.CachedIndexBytes, res.PlainIndexBytes)
	}
	if res.Bloat() < 1.2 {
		t.Errorf("covering index bloat %.2f suspiciously low", res.Bloat())
	}
	if res.CacheCoverage <= 0.2 {
		t.Errorf("cache coverage %.2f too low", res.CacheCoverage)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "bloat") {
		t.Error("Print output missing bloat")
	}
}

func TestJoinCacheShapes(t *testing.T) {
	cfg := DefaultJoinCacheConfig()
	cfg.Pages, cfg.Queries = 300, 8000
	res, err := RunJoinCache(cfg)
	if err != nil {
		t.Fatalf("RunJoinCache: %v", err)
	}
	// The join cache must eliminate a substantial share of dimension
	// lookups under a skewed workload.
	if res.HitRate < 0.3 {
		t.Errorf("join-cache hit rate %.2f too low", res.HitRate)
	}
	if res.Saved() < 0.3 {
		t.Errorf("only %.1f%% of dimension lookups eliminated", 100*res.Saved())
	}
	if res.DimLookupsCached >= res.DimLookupsBaseline {
		t.Error("cached run did not reduce dimension lookups")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "eliminated") {
		t.Error("Print output missing summary")
	}
}

func TestAblatePlacementShapes(t *testing.T) {
	cfg := DefaultAblatePlacementConfig()
	cfg.Items, cfg.Lookups = 3000, 40000
	cfg.BucketNs = []int{2, 8}
	res, err := RunAblatePlacement(cfg)
	if err != nil {
		t.Fatalf("RunAblatePlacement: %v", err)
	}
	var swap, noPromote *AblatePlacementRow
	for i := range res.Rows {
		switch res.Rows[i].Policy {
		case "swap-toward-center":
			swap = &res.Rows[i]
		case "no-promotion":
			noPromote = &res.Rows[i]
		}
	}
	if swap == nil || noPromote == nil {
		t.Fatal("policy rows missing")
	}
	// The design claim: swapping matters under shrink.
	if swap.HitShrink <= noPromote.HitShrink {
		t.Errorf("swap (%.3f) should beat no-promotion (%.3f) under shrink",
			swap.HitShrink, noPromote.HitShrink)
	}
}

func TestAblatePredLogShapes(t *testing.T) {
	cfg := DefaultAblatePredLogConfig()
	cfg.Rows, cfg.Ops = 800, 6000
	res, err := RunAblatePredLog(cfg)
	if err != nil {
		t.Fatalf("RunAblatePredLog: %v", err)
	}
	if len(res.Rows) != len(cfg.Limits) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Fine-grained invalidation must beat always-escalate on hit rate
	// and full invalidations.
	if last.CacheHitRate <= first.CacheHitRate {
		t.Errorf("limit %d hit rate %.3f not above limit %d's %.3f",
			last.Limit, last.CacheHitRate, first.Limit, first.CacheHitRate)
	}
	if last.FullInvalidations >= first.FullInvalidations {
		t.Errorf("full invalidations did not drop: %d vs %d",
			last.FullInvalidations, first.FullInvalidations)
	}
}

func TestScanShapes(t *testing.T) {
	cfg := DefaultScanConfig()
	cfg.Rows, cfg.Passes = 5000, 2
	res, err := RunScan(cfg)
	if err != nil {
		t.Fatalf("RunScan: %v", err)
	}
	if res.Rows != cfg.Rows || res.LeafPages < 2 || len(res.Points) != 4 {
		t.Fatalf("shape: rows=%d leaves=%d points=%d", res.Rows, res.LeafPages, len(res.Points))
	}
	byMode := map[string]ScanPoint{}
	for _, p := range res.Points {
		if p.RowsPerSec <= 0 {
			t.Errorf("%s: rows/sec %.0f", p.Mode, p.RowsPerSec)
		}
		byMode[p.Mode] = p
	}
	cache := byMode["cursor-cache-first"]
	if cache.CacheHitRate != 1.0 {
		t.Errorf("cache-first hit rate %.2f, want 1.0 (warm, low fill factor)", cache.CacheHitRate)
	}
	// The acceptance criterion: cache-resident scans do ~0 allocs/row
	// and fetch each leaf exactly once.
	if cache.AllocsPerRow >= 0.05 {
		t.Errorf("cache-first allocs/row %.3f, want ~0", cache.AllocsPerRow)
	}
	if cache.LeafFetches != int64(res.LeafPages) {
		t.Errorf("cache-first leaf fetches %d, want %d (one per leaf)", cache.LeafFetches, res.LeafPages)
	}
	if heap := byMode["cursor-heap-only"]; heap.CacheHitRate != 0 {
		t.Errorf("heap-only hit rate %.2f, want 0", heap.CacheHitRate)
	}
	// Direction symmetry: with doubly linked leaves, a reverse scan
	// fetches exactly one page per leaf, same as forward.
	rev := byMode["cursor-cache-first-reverse"]
	if rev.LeafFetches != cache.LeafFetches {
		t.Errorf("reverse leaf fetches %d, want %d (symmetry with forward)",
			rev.LeafFetches, cache.LeafFetches)
	}
	if rev.CacheHitRate != 1.0 {
		t.Errorf("reverse cache-first hit rate %.2f, want 1.0", rev.CacheHitRate)
	}
	// Parallel series: every (segments, mode) leg present with a
	// measured throughput and a speedup relative to the serial scan.
	if res.SerialRowsPerSec != cache.RowsPerSec {
		t.Errorf("serial_rows_per_sec %.0f, want cache-first %.0f", res.SerialRowsPerSec, cache.RowsPerSec)
	}
	if len(res.Parallel) != 6 {
		t.Fatalf("parallel series has %d points, want 6 (n∈{1,2,4} × 2 modes)", len(res.Parallel))
	}
	seen := map[string]bool{}
	for _, p := range res.Parallel {
		if p.RowsPerSec <= 0 || p.SpeedupVsSerial <= 0 {
			t.Errorf("parallel n=%d %s: rows/s %.0f speedup %.2f", p.Segments, p.Mode, p.RowsPerSec, p.SpeedupVsSerial)
		}
		seen[fmt.Sprintf("%d/%s", p.Segments, p.Mode)] = true
	}
	for _, want := range []string{"1/ordered", "1/unordered", "2/ordered", "2/unordered", "4/ordered", "4/unordered"} {
		if !seen[want] {
			t.Errorf("parallel leg %s missing", want)
		}
	}
}

func TestWriteShapes(t *testing.T) {
	cfg := DefaultWriteConfig()
	cfg.Preload, cfg.Ops = 2000, 8000
	cfg.HeapOps = 20000
	cfg.BatchOps = 8000
	cfg.BatchSizes = []int{32}
	cfg.DurableOps = 4000
	cfg.DurableBatchSize = 32
	cfg.Goroutines = []int{1, 2}
	res, err := RunWrite(cfg)
	if err != nil {
		t.Fatalf("RunWrite: %v", err)
	}
	if res.Preload != cfg.Preload || len(res.Points) != 2 {
		t.Fatalf("shape: preload=%d points=%d", res.Preload, len(res.Points))
	}
	for _, p := range res.Points {
		if p.MutexOpsPerSec <= 0 || p.CrabbedOpsPerSec <= 0 {
			t.Errorf("g=%d: nonpositive throughput %+v", p.Goroutines, p)
		}
		if p.LatchRetries == 0 {
			t.Errorf("g=%d: expected some pessimistic fallbacks on a split-heavy mix", p.Goroutines)
		}
		if p.AllocsPerOp > 1 {
			t.Errorf("g=%d: %.2f allocs/op, want ~0 (crabbed writes are allocation-free off the split path)",
				p.Goroutines, p.AllocsPerOp)
		}
	}
	if len(res.HeapPoints) != 2 {
		t.Fatalf("heap shape: %d points, want 2", len(res.HeapPoints))
	}
	for _, p := range res.HeapPoints {
		if p.MutexOpsPerSec <= 0 || p.ShardedOpsPerSec <= 0 {
			t.Errorf("heap g=%d: nonpositive throughput %+v", p.Goroutines, p)
		}
		// Both variants ingest the same bytes, so the sharded file may
		// trail by at most its extra tail pages.
		if p.MutexPages <= 0 || p.ShardedPages <= 0 || p.ShardedPages > p.MutexPages+cfg.HeapShards {
			t.Errorf("heap g=%d: page counts %d vs %d diverge beyond tail slack",
				p.Goroutines, p.ShardedPages, p.MutexPages)
		}
		// The bucketed free-space maps must beat the legacy linear scan
		// by a wide margin; 1.5× is far below the measured ~10×, so this
		// stays robust on slow CI runners (single-core containers have
		// been observed right at 2×). Skipped under the race detector,
		// whose instrumentation dominates both paths and flattens the
		// ratio.
		if !raceEnabled && p.ShardedOpsPerSec < 1.5*p.MutexOpsPerSec {
			t.Errorf("heap g=%d: sharded %.0f ops/s vs legacy %.0f — expected a decisive win",
				p.Goroutines, p.ShardedOpsPerSec, p.MutexOpsPerSec)
		}
	}
	if want := len(cfg.Goroutines) * len(cfg.BatchSizes); len(res.BatchPoints) != want {
		t.Fatalf("batch shape: %d points, want %d", len(res.BatchPoints), want)
	}
	for _, p := range res.BatchPoints {
		if p.OneRowOpsPerSec <= 0 || p.BatchedOpsPerSec <= 0 {
			t.Errorf("batch g=%d size=%d: nonpositive throughput %+v", p.Goroutines, p.BatchSize, p)
		}
		// The deterministic amortization must not collapse; the strict
		// ≥1.0 requirement is benchgate's, on an otherwise idle runner —
		// the unit test leaves headroom for suite-parallel noise.
		if !raceEnabled && p.BatchedOpsPerSec < 0.8*p.OneRowOpsPerSec {
			t.Errorf("batch g=%d size=%d: batched %.0f ops/s vs one-row %.0f — amortization collapsed",
				p.Goroutines, p.BatchSize, p.BatchedOpsPerSec, p.OneRowOpsPerSec)
		}
	}
	if len(res.DurablePoints) != len(cfg.Goroutines) {
		t.Fatalf("durable shape: %d points, want %d", len(res.DurablePoints), len(cfg.Goroutines))
	}
	for _, p := range res.DurablePoints {
		if p.NonDurableOpsPerSec <= 0 || p.GroupCommitOpsPerSec <= 0 || p.SyncNoneOpsPerSec <= 0 {
			t.Errorf("durable g=%d: nonpositive throughput %+v", p.Goroutines, p)
		}
		// One WAL record per Apply and at most one fsync per commit, so
		// rows/fsync ≥ batch size by construction at every goroutine
		// count — no timing involved, safe even under race.
		if p.OpsPerFsync < float64(cfg.DurableBatchSize) {
			t.Errorf("durable g=%d: %.1f rows/fsync, want ≥ batch size %d",
				p.Goroutines, p.OpsPerFsync, cfg.DurableBatchSize)
		}
	}
}

func TestServeShapes(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Conns = []int{1, 4}
	cfg.OpsPerConn = 60
	res, err := RunServe(cfg)
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if res.OpsPerConn != cfg.OpsPerConn || res.BatchOps != cfg.BatchOps {
		t.Fatalf("shape: ops_per_conn=%d batch_ops=%d", res.OpsPerConn, res.BatchOps)
	}
	if len(res.Coalesced) != len(cfg.Conns) || len(res.Direct) != len(cfg.Conns) {
		t.Fatalf("shape: %d coalesced / %d direct points, want %d each",
			len(res.Coalesced), len(res.Direct), len(cfg.Conns))
	}
	check := func(sweep string, pts []ServePoint) {
		for i, p := range pts {
			if p.Conns != cfg.Conns[i] {
				t.Errorf("%s[%d]: conns %d, want %d", sweep, i, p.Conns, cfg.Conns[i])
			}
			if p.OpsPerSec <= 0 || p.P50Micros <= 0 || p.P99Micros < p.P50Micros {
				t.Errorf("%s conns=%d: implausible point %+v", sweep, p.Conns, p)
			}
			// Every acked row hit the WAL, and an fsync never covers less
			// than one row — structural, not timing-dependent.
			if p.OpsPerFsync < 1 {
				t.Errorf("%s conns=%d: %.2f ops/fsync, want ≥ 1", sweep, p.Conns, p.OpsPerFsync)
			}
		}
	}
	check("coalesced", res.Coalesced)
	check("direct", res.Direct)
	for _, p := range res.Coalesced {
		if p.OpsPerCycle < 1 {
			t.Errorf("coalesced conns=%d: %.2f ops per drain cycle, want ≥ 1", p.Conns, p.OpsPerCycle)
		}
	}
	// With the coalescer off every request pays its own Apply — there
	// are no drain cycles to count.
	for _, p := range res.Direct {
		if p.OpsPerCycle != 0 {
			t.Errorf("direct conns=%d: ops_per_cycle %.2f, want 0", p.Conns, p.OpsPerCycle)
		}
	}
}
