package experiments

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/joincache"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// JoinCacheConfig parameterizes the Section 2.2 extension experiment:
// revision→page foreign-key joins answered from the revision heap
// pages' free space.
type JoinCacheConfig struct {
	Pages            int
	RevisionsPerPage int
	Queries          int
	Seed             int64
}

// DefaultJoinCacheConfig joins against 1000 articles.
func DefaultJoinCacheConfig() JoinCacheConfig {
	return JoinCacheConfig{Pages: 1000, RevisionsPerPage: 10, Queries: 30000, Seed: 1}
}

// JoinCacheResult measures dimension-side work avoided.
type JoinCacheResult struct {
	Config JoinCacheConfig
	// HitRate is the join-cache hit rate over the run.
	HitRate float64
	// DimLookupsBaseline / DimLookupsCached count page-table index
	// lookups performed without and with the join cache.
	DimLookupsBaseline int64
	DimLookupsCached   int64
}

// Saved returns the fraction of dimension lookups eliminated.
func (r JoinCacheResult) Saved() float64 {
	if r.DimLookupsBaseline == 0 {
		return 0
	}
	return 1 - float64(r.DimLookupsCached)/float64(r.DimLookupsBaseline)
}

// RunJoinCache replays a zipfian join workload — "fetch revision X and
// its page's title-length and latest pointer" — twice: once resolving
// every join through the page table's index, once probing the revision
// page's join cache first.
func RunJoinCache(cfg JoinCacheConfig) (_ JoinCacheResult, err error) {
	e, err := core.NewEngine(core.Options{PageSize: 4096, BufferPoolPages: 1 << 14})
	if err != nil {
		return JoinCacheResult{}, err
	}
	defer closeEngine(e, &err)

	gen := wiki.NewGenerator(wiki.Config{
		Pages: cfg.Pages, RevisionsPerPage: cfg.RevisionsPerPage,
		Alpha: 0.5, Seed: cfg.Seed,
	})
	pageTable, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		return JoinCacheResult{}, err
	}
	for i := 0; i < cfg.Pages; i++ {
		if _, err := pageTable.Insert(gen.PageRow(i, int64(i))); err != nil {
			return JoinCacheResult{}, err
		}
	}
	pageByID, err := pageTable.CreateIndex("pk", []string{"page_id"})
	if err != nil {
		return JoinCacheResult{}, err
	}
	// The revision heap keeps a 75% fill factor — reserved update
	// headroom, the same slack the index cache exploits — which the
	// join cache recycles.
	revTable, err := e.CreateTable("revision", wiki.RevisionSchema(),
		core.WithAppendOnlyHeap(), core.WithHeapFillFactor(0.75))
	if err != nil {
		return JoinCacheResult{}, err
	}
	revs, _ := gen.Revisions()
	rids := make([]storage.RID, len(revs))
	for i, r := range revs {
		rid, err := revTable.Insert(r.Row)
		if err != nil {
			return JoinCacheResult{}, err
		}
		rids[i] = rid
	}

	// The joined payload: page_latest (8B) + page_len (4B).
	jc, err := joincache.New(12, cfg.Seed)
	if err != nil {
		return JoinCacheResult{}, err
	}

	zipf := workload.NewZipf(workload.NewRand(cfg.Seed+9), len(revs), 0.8)
	trace := make([]int, cfg.Queries)
	for i := range trace {
		trace[i] = zipf.Next()
	}

	res := JoinCacheResult{Config: cfg}

	// Baseline: every query resolves the join via the page-table index.
	for _, ri := range trace {
		fk := revs[ri].Row[1].Int // rev_page
		_, lr, err := pageByID.Lookup([]string{"page_latest", "page_len"}, tuple.Int64(fk))
		if err != nil || !lr.Found {
			return JoinCacheResult{}, fmt.Errorf("experiments: baseline join lookup: %v", err)
		}
		res.DimLookupsBaseline++
	}

	// Cached: probe the revision page's free space first.
	for _, ri := range trace {
		rid := rids[ri]
		fk := uint64(revs[ri].Row[1].Int)
		hit := false
		err := revTable.Heap().VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
			if !jc.Prepare(sp, excl) {
				return
			}
			if payload, ok := jc.Lookup(sp, fk); ok {
				// Decode the joined fields; they must be well-formed.
				_ = binary.LittleEndian.Uint64(payload)
				hit = true
				return
			}
			// Miss: resolve through the dimension index and fill.
			row, lr, lerr := pageByID.Lookup([]string{"page_latest", "page_len"}, tuple.Int64(int64(fk)))
			if lerr != nil || !lr.Found {
				return
			}
			res.DimLookupsCached++
			payload := make([]byte, 12)
			binary.LittleEndian.PutUint64(payload, uint64(row[0].Int))
			binary.LittleEndian.PutUint32(payload[8:], uint32(row[1].Int))
			jc.Insert(sp, excl, fk, payload)
		})
		if err != nil {
			return JoinCacheResult{}, err
		}
		_ = hit
	}
	res.HitRate = jc.Stats().HitRate()
	return res, nil
}

// Print renders the comparison.
func (r JoinCacheResult) Print(w io.Writer) {
	fmt.Fprintf(w, "§2.2 extension: FK-join results cached in data pages' free space\n")
	fmt.Fprintf(w, "%d join queries (revision → page), zipf(0.8) over %d revisions\n",
		r.Config.Queries, r.Config.Pages*r.Config.RevisionsPerPage)
	fmt.Fprintf(w, "join-cache hit rate:          %.1f%%\n", 100*r.HitRate)
	fmt.Fprintf(w, "dimension index lookups:      %d → %d (%.1f%% eliminated)\n",
		r.DimLookupsBaseline, r.DimLookupsCached, 100*r.Saved())
}
