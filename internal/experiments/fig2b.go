package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig2bConfig parameterizes the Figure 2(b) cost simulation: lookup
// cost as the index-cache hit rate and buffer-pool hit rate vary.
type Fig2bConfig struct {
	Lookups int
	// BufferPoolRates are the line series (paper: 0, 60, 90, 96, 100%).
	BufferPoolRates []float64
	// CacheRates are the x positions (paper: 0..100%).
	CacheRates []float64
	Cost       metrics.CostModel
	Seed       int64
}

// DefaultFig2bConfig mirrors the paper's setup.
func DefaultFig2bConfig() Fig2bConfig {
	return Fig2bConfig{
		Lookups:         200000,
		BufferPoolRates: []float64{0, 0.60, 0.90, 0.96, 1.00},
		CacheRates:      []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Cost:            metrics.DefaultCostModel(),
		Seed:            1,
	}
}

// Fig2bResult holds cost-per-lookup in milliseconds indexed by
// [bufferPoolRate][cacheRate].
type Fig2bResult struct {
	Config Fig2bConfig
	// MsPerLookup[i][j] is the mean cost for BufferPoolRates[i] and
	// CacheRates[j], in milliseconds (the paper's y axis, log scale).
	MsPerLookup [][]float64
}

// RunFig2b Monte-Carlo-samples the three-tier cost model, mirroring the
// paper's micro-benchmark: an index cache hit answers immediately; a
// miss touches a random buffer-pool page; a buffer-pool miss reads a
// page from disk.
func RunFig2b(cfg Fig2bConfig) Fig2bResult {
	rng := workload.NewRand(cfg.Seed)
	res := Fig2bResult{Config: cfg}
	for _, bp := range cfg.BufferPoolRates {
		row := make([]float64, 0, len(cfg.CacheRates))
		for _, cr := range cfg.CacheRates {
			var total float64
			for i := 0; i < cfg.Lookups; i++ {
				cacheHit := rng.Float64() < cr
				bpHit := rng.Float64() < bp
				total += cfg.Cost.LookupSeconds(true, cacheHit, bpHit)
			}
			row = append(row, total/float64(cfg.Lookups)*1000) // → ms
		}
		res.MsPerLookup = append(res.MsPerLookup, row)
	}
	return res
}

// Print renders the series with buffer-pool rates as line labels.
func (r Fig2bResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 2(b): cost/lookup (ms) vs index cache hit rate, by buffer pool hit rate\n")
	fmt.Fprintf(w, "%8s", "cache%")
	for _, bp := range r.Config.BufferPoolRates {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("bp=%.0f%%", bp*100))
	}
	fmt.Fprintln(w)
	for j, cr := range r.Config.CacheRates {
		fmt.Fprintf(w, "%8.0f", cr*100)
		for i := range r.Config.BufferPoolRates {
			fmt.Fprintf(w, " %10.5f", r.MsPerLookup[i][j])
		}
		fmt.Fprintln(w)
	}
}
