package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/tuple"
)

// ServeConfig parameterizes the network-serving experiment: concurrent
// client connections issue small write batches against an in-process
// nblb-server over a loopback socket, with the cross-connection write
// coalescer on versus off. The sweep measures what the coalescer is
// for — turning many tiny per-connection batches into shared
// leaf-grouped Apply calls under one WAL group commit — as ops/fsync
// and request latency versus offered load (connection count).
type ServeConfig struct {
	Conns      []int // connection counts to sweep (the offered-load axis)
	OpsPerConn int   // write requests each connection issues
	BatchOps   int   // rows per request (1 = the coalescer's worst-case diet)
	ValueBytes int   // payload string size per row
	Seed       int64
}

// DefaultServeConfig sweeps 1..64 connections issuing one-row batches:
// the shape where per-request WAL commits are most expensive and
// cross-connection coalescing has the most to reclaim.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Conns:      []int{1, 4, 16, 64},
		OpsPerConn: 400,
		BatchOps:   1,
		ValueBytes: 32,
		Seed:       1,
	}
}

// ServePoint is one (connection count, coalescer setting) cell.
type ServePoint struct {
	Conns       int     `json:"conns"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Micros   float64 `json:"p50_micros"`
	P99Micros   float64 `json:"p99_micros"`
	OpsPerFsync float64 `json:"ops_per_fsync"` // rows made durable per WAL fsync
	OpsPerCycle float64 `json:"ops_per_cycle"` // rows per coalescer drain (0 when disabled)
}

// ServeResult is the experiment summary, serialized to
// BENCH_serve.json. Coalesced and Direct hold the same sweep with the
// cross-connection coalescer on and off; everything else describes the
// workload shape so the gate can tell a config change from a
// regression.
type ServeResult struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	OpsPerConn  int          `json:"ops_per_conn"`
	BatchOps    int          `json:"batch_ops"`
	ValueBytes  int          `json:"value_bytes"`
	Coalesced   []ServePoint `json:"coalesced"`
	Direct      []ServePoint `json:"direct"`
	ElapsedSecs float64      `json:"elapsed_secs"`
}

// RunServe runs the serving sweep. Every point gets a fresh
// WAL-backed engine (group commit) served over a loopback listener and
// driven by the real client package, so the measured path is the one a
// remote caller pays: frame codec, socket, pipelining, coalescer,
// Table.Apply, WAL.
func RunServe(cfg ServeConfig) (ServeResult, error) {
	res := ServeResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OpsPerConn: cfg.OpsPerConn,
		BatchOps:   cfg.BatchOps,
		ValueBytes: cfg.ValueBytes,
	}
	start := time.Now()
	for _, conns := range cfg.Conns {
		for _, coalesce := range []bool{true, false} {
			p, err := runServePoint(cfg, conns, coalesce)
			if err != nil {
				return res, fmt.Errorf("serve conns=%d coalesce=%v: %w", conns, coalesce, err)
			}
			if coalesce {
				res.Coalesced = append(res.Coalesced, p)
			} else {
				res.Direct = append(res.Direct, p)
			}
		}
	}
	res.ElapsedSecs = time.Since(start).Seconds()
	return res, nil
}

func runServePoint(cfg ServeConfig, conns int, coalesce bool) (_ ServePoint, err error) {
	p := ServePoint{Conns: conns}
	dir, err := os.MkdirTemp("", "nblb-serve-bench")
	if err != nil {
		return p, err
	}
	defer os.RemoveAll(dir)

	eng, err := core.NewEngine(core.Options{Path: filepath.Join(dir, "db")},
		core.WithWAL(), core.WithSyncPolicy(core.SyncGroupCommit))
	if err != nil {
		return p, err
	}
	defer closeEngine(eng, &err)
	if _, err := benchServeTable(eng); err != nil {
		return p, err
	}

	srv, err := server.New(server.Config{
		Engine:   eng,
		Coalesce: server.CoalesceConfig{Disabled: !coalesce},
	})
	if err != nil {
		return p, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return p, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()
		<-serveDone
	}()
	addr := l.Addr().String()

	payload := string(make([]byte, cfg.ValueBytes))
	walBefore := eng.WALStats()
	statsBefore := srv.Stats()

	lats := make([][]time.Duration, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.WithPoolSize(1))
			if err != nil {
				errs[w] = err
				return
			}
			defer func() {
				if cerr := cl.Close(); cerr != nil && errs[w] == nil {
					errs[w] = cerr
				}
			}()
			lat := make([]time.Duration, 0, cfg.OpsPerConn)
			base := int64(w) * int64(cfg.OpsPerConn) * int64(cfg.BatchOps)
			var b client.Batch
			for i := 0; i < cfg.OpsPerConn; i++ {
				b.Reset()
				for j := 0; j < cfg.BatchOps; j++ {
					b.Insert(client.Row{
						client.Int64(base + int64(i*cfg.BatchOps+j)),
						client.String(payload),
					})
				}
				t0 := time.Now()
				resp, err := cl.Apply("bench", &b)
				lat = append(lat, time.Since(t0))
				if err != nil {
					errs[w] = err
					return
				}
				if e := firstOpErr(resp); e != "" {
					errs[w] = fmt.Errorf("op error: %s", e)
					return
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	for _, err := range errs {
		if err != nil {
			return p, err
		}
	}

	walAfter := eng.WALStats()
	statsAfter := srv.Stats()
	totalOps := float64(conns * cfg.OpsPerConn * cfg.BatchOps)
	p.OpsPerSec = totalOps / elapsed.Seconds()
	if syncs := walAfter.Syncs - walBefore.Syncs; syncs > 0 {
		p.OpsPerFsync = totalOps / float64(syncs)
	}
	if cycles := statsAfter.CoalescedCycles - statsBefore.CoalescedCycles; cycles > 0 {
		p.OpsPerCycle = float64(statsAfter.CoalescedOps-statsBefore.CoalescedOps) / float64(cycles)
	}
	all := make([]time.Duration, 0, conns*cfg.OpsPerConn)
	for _, lat := range lats {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p.P50Micros = durMicros(percentileDur(all, 0.50))
	p.P99Micros = durMicros(percentileDur(all, 0.99))
	return p, nil
}

// benchServeTable creates the sweep's table: (id int64 unique, val
// string), the minimal shape that exercises heap insert + unique-index
// maintenance per row.
func benchServeTable(eng *core.Engine) (*core.Table, error) {
	schema, err := tuple.NewSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "val", Kind: tuple.KindString},
	)
	if err != nil {
		return nil, err
	}
	tb, err := eng.CreateTable("bench", schema)
	if err != nil {
		return nil, err
	}
	if _, err := tb.CreateIndex("by_id", []string{"id"}); err != nil {
		return nil, err
	}
	return tb, nil
}

func firstOpErr(resp client.ApplyResult) string {
	for _, e := range resp.OpErrs {
		if e != "" {
			return e
		}
	}
	return ""
}

func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func durMicros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Print renders the sweep as a text table.
func (r ServeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Network serving: %d-op batches per request, %d requests/conn, GOMAXPROCS=%d\n",
		r.BatchOps, r.OpsPerConn, r.GOMAXPROCS)
	fmt.Fprintf(w, "%-6s | %-36s | %-36s\n", "", "coalesced", "direct (coalescer off)")
	fmt.Fprintf(w, "%-6s | %10s %8s %8s %7s | %10s %8s %8s %7s\n",
		"conns", "ops/s", "p50µs", "p99µs", "ops/fs", "ops/s", "p50µs", "p99µs", "ops/fs")
	for i := range r.Coalesced {
		c := r.Coalesced[i]
		var d ServePoint
		if i < len(r.Direct) {
			d = r.Direct[i]
		}
		fmt.Fprintf(w, "%-6d | %10.0f %8.0f %8.0f %7.1f | %10.0f %8.0f %8.0f %7.1f\n",
			c.Conns, c.OpsPerSec, c.P50Micros, c.P99Micros, c.OpsPerFsync,
			d.OpsPerSec, d.P50Micros, d.P99Micros, d.OpsPerFsync)
	}
}

// WriteJSON writes the result as a BENCH_*.json summary so serving
// perf — and the coalescer's ops/fsync advantage — is tracked
// PR-over-PR alongside the embedded sweeps.
func (r ServeResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
