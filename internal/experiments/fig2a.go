// Package experiments contains the harnesses that regenerate every
// figure and in-text quantitative analysis of the paper. Each Run*
// function returns a structured result with a Print method producing
// the rows/series the paper reports; cmd/nblb-bench drives them and
// bench_test.go runs reduced versions under testing.B.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/idxcache"
	"repro/internal/workload"
)

// Fig2aConfig parameterizes the Figure 2(a) simulation: hit rate vs
// cache size under the Swap and Shrink regimes.
type Fig2aConfig struct {
	Items   int     // distinct tuples (the table)
	Lookups int     // accesses per point (paper: 100k)
	Alpha   float64 // zipf skew (paper: 0.5)
	BucketN int     // slots per bucket
	Seed    int64
	// Sizes are the cache sizes as a percentage of Items. Defaults to
	// 5..100 step 5.
	Sizes []int
}

// DefaultFig2aConfig mirrors the paper's parameters at laptop scale.
func DefaultFig2aConfig() Fig2aConfig {
	return Fig2aConfig{Items: 10000, Lookups: 100000, Alpha: 0.5, BucketN: 4, Seed: 1}
}

// Fig2aPoint is one x position of the figure.
type Fig2aPoint struct {
	SizePct int     // cache size as % of items
	Swap    float64 // read-only workload hit rate
	Shrink  float64 // hit rate while half the cache is overwritten
	Ideal   float64 // clairvoyant top-k hit rate (upper bound)
}

// Fig2aResult is the full curve set.
type Fig2aResult struct {
	Config Fig2aConfig
	Points []Fig2aPoint
}

// RunFig2a runs the simulation. Each point replays the same zipfian
// trace against a fresh cache: Swap keeps capacity constant; Shrink
// removes peripheral slots at a constant rate until half the cache is
// gone, modelling index inserts stealing the free space.
func RunFig2a(cfg Fig2aConfig) (Fig2aResult, error) {
	if len(cfg.Sizes) == 0 {
		for p := 5; p <= 100; p += 5 {
			cfg.Sizes = append(cfg.Sizes, p)
		}
	}
	res := Fig2aResult{Config: cfg}
	// Precompute the ideal curve from the exact distribution.
	probe := workload.NewZipf(workload.NewRand(cfg.Seed), cfg.Items, cfg.Alpha)
	cum := make([]float64, cfg.Items+1)
	for i := 0; i < cfg.Items; i++ {
		cum[i+1] = cum[i] + probe.Probability(i)
	}
	for _, pct := range cfg.Sizes {
		capacity := cfg.Items * pct / 100
		if capacity < 1 {
			capacity = 1
		}
		swap, err := runFig2aOnce(cfg, capacity, false)
		if err != nil {
			return Fig2aResult{}, err
		}
		shrink, err := runFig2aOnce(cfg, capacity, true)
		if err != nil {
			return Fig2aResult{}, err
		}
		ideal := 1.0
		if capacity <= cfg.Items {
			ideal = cum[capacity]
		}
		res.Points = append(res.Points, Fig2aPoint{
			SizePct: pct, Swap: swap, Shrink: shrink, Ideal: ideal,
		})
	}
	return res, nil
}

func runFig2aOnce(cfg Fig2aConfig, capacity int, shrink bool) (float64, error) {
	zipf := workload.NewZipf(workload.NewRand(cfg.Seed+7), cfg.Items, cfg.Alpha)
	sim, err := idxcache.NewSim(workload.NewRand(cfg.Seed+13), capacity, cfg.BucketN)
	if err != nil {
		return 0, err
	}
	shrinkTotal := capacity / 2
	shrinkEvery := 0
	if shrink && shrinkTotal > 0 {
		shrinkEvery = cfg.Lookups / shrinkTotal
		if shrinkEvery == 0 {
			shrinkEvery = 1
		}
	}
	for i := 0; i < cfg.Lookups; i++ {
		sim.Lookup(zipf.Next())
		if shrinkEvery > 0 && i%shrinkEvery == shrinkEvery-1 && sim.Capacity() > capacity-shrinkTotal {
			sim.Shrink(1)
		}
	}
	return sim.HitRate(), nil
}

// Print renders the curves as aligned columns.
func (r Fig2aResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 2(a): hit rate vs cache size — zipf(α=%.2f), %d items, %d lookups\n",
		r.Config.Alpha, r.Config.Items, r.Config.Lookups)
	fmt.Fprintf(w, "%8s %8s %8s %8s\n", "size%", "Swap", "Shrink", "Ideal")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %8.3f %8.3f %8.3f\n", p.SizePct, p.Swap, p.Shrink, p.Ideal)
	}
}
