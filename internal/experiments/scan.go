package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// ScanConfig parameterizes the range-scan experiment: a full-table
// sweep through the unified Query/Cursor API, comparing the deprecated
// callback scan, the heap-only cursor, and the cache-first cursor whose
// coverable projection is answered from the §2.1 index cache. Tracked
// PR-over-PR via BENCH_scan.json, like the throughput sweep.
type ScanConfig struct {
	Rows   int
	Passes int // measured passes per mode (after one warmup)
	Seed   int64
}

// DefaultScanConfig scans 50k rows, 5 measured passes.
func DefaultScanConfig() ScanConfig {
	return ScanConfig{Rows: 50000, Passes: 5, Seed: 1}
}

// ScanPoint is one mode of the comparison.
type ScanPoint struct {
	Mode         string  `json:"mode"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	AllocsPerRow float64 `json:"allocs_per_row"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	LeafFetches  int64   `json:"leaf_fetches,omitempty"`
	// DiskReadsPerPass counts page reads that missed the pool, per full
	// scan — the I/O the index cache exists to eliminate. Wall-clock
	// differences understate this on the in-memory disk (a "read" is a
	// memcpy); on real storage each one is a random I/O.
	DiskReadsPerPass float64 `json:"disk_reads_per_pass"`
}

// ParallelScanPoint is one (segments, merge mode) leg of the parallel
// sweep. SpeedupVsSerial is measured against the same-run serial
// cache-first cursor, so it is valid on whatever machine produced the
// file — cross-file wall-clock comparison still requires matching
// GOMAXPROCS.
type ParallelScanPoint struct {
	Segments        int     `json:"segments"`
	Mode            string  `json:"mode"` // "ordered" | "unordered"
	RowsPerSec      float64 `json:"rows_per_sec"`
	AllocsPerRow    float64 `json:"allocs_per_row"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// ScanResult is the measured comparison plus the shape facts that make
// the JSON comparable across PRs.
type ScanResult struct {
	Rows       int `json:"rows"`
	LeafPages  int `json:"leaf_pages"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's real core count. GOMAXPROCS alone can
	// claim parallelism an oversubscribed container cannot deliver, so
	// the gate's strict multicore invariants key on both.
	NumCPU int         `json:"num_cpu"`
	Points []ScanPoint `json:"points"`
	// SerialRowsPerSec is the cache-first cursor's throughput, re-stated
	// here as the denominator of every parallel point's speedup.
	SerialRowsPerSec float64             `json:"serial_rows_per_sec"`
	Parallel         []ParallelScanPoint `json:"parallel"`
}

func scanSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "a", Kind: tuple.KindInt64},
		tuple.Field{Name: "b", Kind: tuple.KindInt32},
		tuple.Field{Name: "note", Kind: tuple.KindString},
	)
}

// RunScan builds a cached, warmed index and measures full-table scans.
//
// The buffer pool is sized so the index fits but the heap does not —
// the paper's §3.1 regime. Heap reads therefore pay eviction + "disk"
// traffic per page while the cache-resident path stays in the pool,
// which is exactly the trade the index cache exists to win.
func RunScan(cfg ScanConfig) (_ ScanResult, err error) {
	// ~56 B/row heap footprint and ~0.4 fill-factor leaves: the pool
	// budget covers the index plus a sliver of heap.
	poolPages := cfg.Rows/100 + 64
	e, err := core.NewEngine(core.Options{PageSize: 8192, BufferPoolPages: poolPages, CountIO: true})
	if err != nil {
		return ScanResult{}, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("s", scanSchema())
	if err != nil {
		return ScanResult{}, err
	}
	for i := 0; i < cfg.Rows; i++ {
		_, err := tb.Insert(tuple.Row{
			tuple.Int64(int64(i)),
			tuple.Int64(int64(i) * 3),
			tuple.Int32(int32(i % 97)),
			tuple.String(fmt.Sprintf("row body %08d", i)),
		})
		if err != nil {
			return ScanResult{}, err
		}
	}
	// The low fill factor leaves enough leaf free space to cache every
	// key's payload, so the cache-first pass runs fully resident.
	ix, err := tb.CreateIndex("by_id", []string{"id"},
		core.WithCache("a", "b"), core.WithFillFactor(0.4), core.WithCacheSeed(cfg.Seed))
	if err != nil {
		return ScanResult{}, err
	}
	if _, err := ix.WarmCache(); err != nil {
		return ScanResult{}, err
	}
	st, err := ix.Tree().Stats()
	if err != nil {
		return ScanResult{}, err
	}
	res := ScanResult{Rows: cfg.Rows, LeafPages: st.LeafPages,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	proj := []string{"id", "a", "b"}
	type modeFn struct {
		name string
		scan func() (core.QueryStats, error)
	}
	cursorScan := func(opts ...core.QueryOption) func() (core.QueryStats, error) {
		return func() (core.QueryStats, error) {
			cur, err := tb.Query(opts...)
			if err != nil {
				return core.QueryStats{}, err
			}
			for cur.Next() {
			}
			st := cur.Stats()
			if err := cur.Err(); err != nil {
				cur.Close()
				return core.QueryStats{}, err
			}
			if err := cur.Close(); err != nil {
				return core.QueryStats{}, err
			}
			return st, nil
		}
	}
	runs := []modeFn{
		{"callback-heap-order (deprecated)", func() (core.QueryStats, error) {
			var qs core.QueryStats
			err := tb.Scan(func(_ storage.RID, _ tuple.Row) bool { qs.Rows++; return true }) //nolint:nblb-deprecated // the experiment measures the legacy callback path against cursors on purpose
			return qs, err
		}},
		{"cursor-heap-only", cursorScan(core.WithIndex("by_id"),
			core.WithProjection(proj...), core.WithCachePolicy(core.HeapOnly))},
		{"cursor-cache-first", cursorScan(core.WithIndex("by_id"),
			core.WithProjection(proj...))},
		{"cursor-cache-first-reverse", cursorScan(core.WithIndex("by_id"),
			core.WithProjection(proj...), core.WithReverse())},
	}
	for _, m := range runs {
		if _, err := m.scan(); err != nil { // warmup
			return ScanResult{}, err
		}
		e.IOCounter().ResetCounts()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		var last core.QueryStats
		for p := 0; p < cfg.Passes; p++ {
			qs, err := m.scan()
			if err != nil {
				return ScanResult{}, err
			}
			if qs.Rows != int64(cfg.Rows) {
				return ScanResult{}, fmt.Errorf("experiments: %s scanned %d rows, want %d", m.name, qs.Rows, cfg.Rows)
			}
			last = qs
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		total := int64(cfg.Rows) * int64(cfg.Passes)
		pt := ScanPoint{
			Mode:             m.name,
			RowsPerSec:       float64(total) / elapsed.Seconds(),
			AllocsPerRow:     float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
			LeafFetches:      last.LeafFetches,
			DiskReadsPerPass: float64(e.IOCounter().Reads()) / float64(cfg.Passes),
		}
		if last.Rows > 0 {
			pt.CacheHitRate = float64(last.CacheHits) / float64(last.Rows)
		}
		res.Points = append(res.Points, pt)
		if m.name == "cursor-cache-first" {
			res.SerialRowsPerSec = pt.RowsPerSec
		}
	}

	// Parallel sweep: segmented workers over the same warmed cache-first
	// scan, both merge modes. n=1 exercises the serial fallback (the
	// gate holds it to serial throughput); n≥2 legs only express real
	// speedup on multicore runners, so the gate conditions the strict
	// unordered-beats-serial check on GOMAXPROCS.
	for _, n := range []int{1, 2, 4} {
		for _, mode := range []core.MergeMode{core.MergeOrdered, core.MergeUnordered} {
			modeName := "ordered"
			if mode == core.MergeUnordered {
				modeName = "unordered"
			}
			scan := cursorScan(core.WithIndex("by_id"), core.WithProjection(proj...),
				core.WithParallel(n), core.WithMergeMode(mode))
			if _, err := scan(); err != nil { // warmup
				return ScanResult{}, err
			}
			// Best-of-3: noise (GC, scheduler) only ever lowers a
			// throughput sample, so the max is the leg's demonstrated
			// capability — the gate's n=1-holds-serial check would
			// otherwise flake on short quick-mode runs.
			pt := ParallelScanPoint{Segments: n, Mode: modeName}
			total := int64(cfg.Rows) * int64(cfg.Passes)
			for rep := 0; rep < 3; rep++ {
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				for p := 0; p < cfg.Passes; p++ {
					qs, err := scan()
					if err != nil {
						return ScanResult{}, err
					}
					if qs.Rows != int64(cfg.Rows) {
						return ScanResult{}, fmt.Errorf("experiments: parallel n=%d %s scanned %d rows, want %d",
							n, modeName, qs.Rows, cfg.Rows)
					}
				}
				elapsed := time.Since(start)
				runtime.ReadMemStats(&ms1)
				if rps := float64(total) / elapsed.Seconds(); rps > pt.RowsPerSec {
					pt.RowsPerSec = rps
					pt.AllocsPerRow = float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
				}
			}
			if res.SerialRowsPerSec > 0 {
				pt.SpeedupVsSerial = pt.RowsPerSec / res.SerialRowsPerSec
			}
			res.Parallel = append(res.Parallel, pt)
		}
	}
	return res, nil
}

// DirectionSymmetry returns the forward and reverse cache-first points
// so callers can compare leaf fetches: with doubly linked leaves a
// reverse scan must cost exactly what a forward one does. The CI gate
// (cmd/benchgate) enforces it — deliberately not RunScan itself, so an
// intentional tradeoff can pass through the gate's skip label.
func (r ScanResult) DirectionSymmetry() (fwd, rev *ScanPoint) {
	for i := range r.Points {
		switch r.Points[i].Mode {
		case "cursor-cache-first":
			fwd = &r.Points[i]
		case "cursor-cache-first-reverse":
			rev = &r.Points[i]
		}
	}
	return fwd, rev
}

// Print renders the comparison as a table.
func (r ScanResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Full-table scan, %d rows, %d index leaves (pool holds index, not heap)\n", r.Rows, r.LeafPages)
	fmt.Fprintf(w, "%-36s %14s %12s %10s %12s %14s\n", "mode", "rows/s", "allocs/row", "hit rate", "leaf fetches", "disk reads/pass")
	for _, p := range r.Points {
		fetches := "-"
		if p.LeafFetches > 0 {
			fetches = fmt.Sprintf("%d", p.LeafFetches)
		}
		fmt.Fprintf(w, "%-36s %14.0f %12.3f %9.0f%% %12s %14.0f\n",
			p.Mode, p.RowsPerSec, p.AllocsPerRow, p.CacheHitRate*100, fetches, p.DiskReadsPerPass)
	}
	if len(r.Parallel) > 0 {
		fmt.Fprintf(w, "\nParallel segmented scans (GOMAXPROCS=%d, serial baseline %.0f rows/s)\n",
			r.GOMAXPROCS, r.SerialRowsPerSec)
		fmt.Fprintf(w, "%-12s %-10s %14s %12s %10s\n", "segments", "merge", "rows/s", "allocs/row", "speedup")
		for _, p := range r.Parallel {
			fmt.Fprintf(w, "%-12d %-10s %14.0f %12.3f %9.2fx\n",
				p.Segments, p.Mode, p.RowsPerSec, p.AllocsPerRow, p.SpeedupVsSerial)
		}
	}
}

// WriteJSON writes the result as a BENCH_*.json summary so scan perf is
// tracked PR-over-PR alongside throughput.
func (r ScanResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
