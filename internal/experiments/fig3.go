package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wiki"
)

// Fig3Config parameterizes the Figure 3 experiment: cost per query on
// the revision table for 0% / 54% / 100% clustering and a hot
// partition.
type Fig3Config struct {
	Pages            int // articles (hot tuples = one per article)
	RevisionsPerPage int // history length → hot fraction ≈ 1/this
	Queries          int
	HotProb          float64 // paper: 0.999
	BufferPoolPages  int     // deliberately smaller than the working set
	PageSize         int
	Seed             int64
	Cost             metrics.CostModel
}

// DefaultFig3Config sizes the table so that, like the paper's setup,
// neither the full heap nor the full index fits in the buffer pool,
// but the hot partition (heap + index) does.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Pages:            2000,
		RevisionsPerPage: 20,
		Queries:          20000,
		HotProb:          0.999,
		BufferPoolPages:  120,
		PageSize:         4096,
		Seed:             1,
		Cost:             metrics.DefaultCostModel(),
	}
}

// Fig3Point is one bar of the figure.
type Fig3Point struct {
	Label string
	// MsPerQuery is the simulated cost: disk reads × DiskRead + buffer
	// accesses × BufferPoolAccess + index probe, averaged per query.
	MsPerQuery float64
	// DiskReadsPerQuery is the underlying I/O count.
	DiskReadsPerQuery float64
	// IndexBytes is the size of the index the workload runs against
	// (hot+cold for the partitioned config).
	IndexBytes int64
	// HotHeapUtilization is the mean utilization of pages holding hot
	// tuples before/after clustering (Section 3.1's "2%" diagnosis).
	Speedup float64 // vs the 0% baseline
}

// Fig3Result is the full bar set.
type Fig3Result struct {
	Config Fig3Config
	Points []Fig3Point
	// BaselineHotScatter is the fraction of heap pages containing at
	// least one hot tuple before clustering — the paper's diagnosis that
	// hot tuples are spread over nearly all pages.
	BaselineHotScatter float64
	// IndexShrinkFactor is full-index size / hot-partition-index size
	// (the paper's 27.1 GB → 1.4 GB ≈ 19×).
	IndexShrinkFactor float64
}

// builtTable bundles one constructed revision-table configuration.
type builtTable struct {
	engine *core.Engine
	index  *core.Index
	revs   []wiki.Revision
	latest []int
	keyOf  func(revIdx int) tuple.Value
}

// RunFig3 builds the revision table four times — unclustered, 54%
// clustered, fully clustered, and hot/cold partitioned — and replays
// the same 99.9%-hot trace against each with a constrained buffer pool.
func RunFig3(cfg Fig3Config) (Fig3Result, error) {
	res := Fig3Result{Config: cfg}

	// build constructs the revision table and its rev_id index, then
	// clusters the given fraction of hot tuples.
	build := func(clusterFrac float64) (*builtTable, *core.Engine, error) {
		e, err := core.NewEngine(core.Options{
			PageSize:        cfg.PageSize,
			BufferPoolPages: cfg.BufferPoolPages,
			CountIO:         true,
		})
		if err != nil {
			return nil, nil, err
		}
		tb, err := e.CreateTable("revision", wiki.RevisionSchema(), core.WithAppendOnlyHeap())
		if err != nil {
			return nil, nil, err
		}
		gen := wiki.NewGenerator(wiki.Config{
			Pages: cfg.Pages, RevisionsPerPage: cfg.RevisionsPerPage,
			Alpha: 0.5, Seed: cfg.Seed,
		})
		revs, latest := gen.Revisions()
		rids := make([]storage.RID, len(revs))
		for i, r := range revs {
			rid, err := tb.Insert(r.Row)
			if err != nil {
				return nil, nil, err
			}
			rids[i] = rid
		}
		ix, err := tb.CreateIndex("rev_id", []string{"rev_id"}, core.WithFillFactor(0.68))
		if err != nil {
			return nil, nil, err
		}
		if clusterFrac > 0 {
			hot := make([]storage.RID, 0, len(latest))
			for _, idx := range latest {
				hot = append(hot, rids[idx])
			}
			fwd := partition.NewForwarding()
			if _, err := partition.ClusterFraction(tb, hot, clusterFrac, fwd); err != nil {
				return nil, nil, err
			}
		}
		bt := &builtTable{
			engine: e, index: ix, revs: revs, latest: latest,
			keyOf: func(revIdx int) tuple.Value {
				return revs[revIdx].Row[0] // rev_id
			},
		}
		return bt, e, nil
	}

	// replay runs the trace and converts I/O counts into simulated time.
	replay := func(bt *builtTable, lookup func(revIdx int) error) (Fig3Point, error) {
		gen := wiki.NewGenerator(wiki.Config{
			Pages: cfg.Pages, RevisionsPerPage: cfg.RevisionsPerPage,
			Alpha: 0.5, Seed: cfg.Seed + 99,
		})
		trace := gen.RevisionTrace(cfg.Queries, cfg.HotProb, bt.revs, bt.latest)
		// Warm: one pass over the hot set so steady state is measured.
		for _, idx := range bt.latest {
			if err := lookup(idx); err != nil {
				return Fig3Point{}, err
			}
		}
		counter := bt.engine.IOCounter()
		counter.ResetCounts()
		bt.engine.Pool().ResetStats()
		for _, idx := range trace {
			if err := lookup(idx); err != nil {
				return Fig3Point{}, err
			}
		}
		reads := counter.Reads()
		poolStats := bt.engine.Pool().Stats()
		accesses := poolStats.Hits + poolStats.Misses
		totalCost := cfg.Cost.IndexProbe.Seconds()*float64(cfg.Queries) +
			cfg.Cost.BufferPoolAccess.Seconds()*float64(accesses) +
			cfg.Cost.DiskRead.Seconds()*float64(reads)
		return Fig3Point{
			MsPerQuery:        totalCost / float64(cfg.Queries) * 1000,
			DiskReadsPerQuery: float64(reads) / float64(cfg.Queries),
		}, nil
	}

	// Configurations 0%, 54%, 100%.
	var fullIndexBytes int64
	for _, c := range []struct {
		label string
		frac  float64
	}{{"0%", 0}, {"54%", 0.54}, {"100%", 1.0}} {
		bt, e, err := build(c.frac)
		if err != nil {
			return Fig3Result{}, err
		}
		if c.frac == 0 {
			scatter, err := hotScatter(bt)
			if err != nil {
				e.Close()
				return Fig3Result{}, err
			}
			res.BaselineHotScatter = scatter
		}
		point, err := replay(bt, func(revIdx int) error {
			_, lr, err := bt.index.Lookup(nil, bt.keyOf(revIdx))
			if err != nil {
				return err
			}
			if !lr.Found {
				return fmt.Errorf("experiments: rev %d not found", revIdx)
			}
			return nil
		})
		if err != nil {
			e.Close()
			return Fig3Result{}, err
		}
		point.Label = c.label
		ts, err := bt.index.Tree().Stats()
		if err != nil {
			e.Close()
			return Fig3Result{}, err
		}
		point.IndexBytes = ts.SizeBytes
		if c.frac == 0 {
			fullIndexBytes = ts.SizeBytes
		}
		res.Points = append(res.Points, point)
		if err := e.Close(); err != nil {
			return Fig3Result{}, err
		}
	}

	// Partitioned configuration: hot rows into their own table+index.
	{
		e, err := core.NewEngine(core.Options{
			PageSize:        cfg.PageSize,
			BufferPoolPages: cfg.BufferPoolPages,
			CountIO:         true,
		})
		if err != nil {
			return Fig3Result{}, err
		}
		hc, err := partition.New(partition.Config{
			Engine: e, Name: "revision", Schema: wiki.RevisionSchema(),
			KeyFields: []string{"rev_id"},
		})
		if err != nil {
			e.Close()
			return Fig3Result{}, err
		}
		gen := wiki.NewGenerator(wiki.Config{
			Pages: cfg.Pages, RevisionsPerPage: cfg.RevisionsPerPage,
			Alpha: 0.5, Seed: cfg.Seed,
		})
		revs, latest := gen.Revisions()
		for _, r := range revs {
			var err error
			if r.Latest {
				_, err = hc.InsertHot(r.Row)
			} else {
				_, err = hc.InsertCold(r.Row)
			}
			if err != nil {
				e.Close()
				return Fig3Result{}, err
			}
		}
		bt := &builtTable{engine: e, revs: revs, latest: latest,
			keyOf: func(revIdx int) tuple.Value { return revs[revIdx].Row[0] }}
		point, err := replay(bt, func(revIdx int) error {
			_, _, err := hc.Lookup(bt.keyOf(revIdx))
			return err
		})
		if err != nil {
			e.Close()
			return Fig3Result{}, err
		}
		point.Label = "Partition"
		st, err := hc.Stats()
		if err != nil {
			e.Close()
			return Fig3Result{}, err
		}
		point.IndexBytes = st.HotIndexBytes + st.ColdIndexBytes
		if st.HotIndexBytes > 0 {
			res.IndexShrinkFactor = float64(fullIndexBytes) / float64(st.HotIndexBytes)
		}
		res.Points = append(res.Points, point)
		if err := e.Close(); err != nil {
			return Fig3Result{}, err
		}
	}

	base := res.Points[0].MsPerQuery
	for i := range res.Points {
		if res.Points[i].MsPerQuery > 0 {
			res.Points[i].Speedup = base / res.Points[i].MsPerQuery
		}
	}
	return res, nil
}

// hotScatter returns the fraction of heap pages holding ≥1 hot tuple in
// the unclustered layout.
func hotScatter(bt *builtTable) (float64, error) {
	// Hot rev_ids.
	hotIDs := make(map[int64]bool, len(bt.latest))
	for _, idx := range bt.latest {
		hotIDs[bt.revs[idx].Row[0].Int] = true
	}
	table, err := bt.engine.Table("revision")
	if err != nil {
		return 0, err
	}
	pagesWithHot := make(map[storage.PageID]bool)
	allPages := make(map[storage.PageID]bool)
	cur, err := table.Query()
	if err != nil {
		return 0, err
	}
	for rid, row := range cur.All() {
		allPages[rid.Page] = true
		if hotIDs[row[0].Int] {
			pagesWithHot[rid.Page] = true
		}
	}
	if err := cur.Err(); err != nil {
		return 0, err
	}
	if len(allPages) == 0 {
		return 0, nil
	}
	return float64(len(pagesWithHot)) / float64(len(allPages)), nil
}

// Print renders the bars plus the index-size side story.
func (r Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: cost per query on the revision table (%d articles × ~%d revisions, %.1f%% hot traffic)\n",
		r.Config.Pages, r.Config.RevisionsPerPage, r.Config.HotProb*100)
	fmt.Fprintf(w, "%-10s %12s %12s %14s %9s\n", "config", "ms/query", "disk IO/q", "index bytes", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %12.3f %12.3f %14d %8.2fx\n",
			p.Label, p.MsPerQuery, p.DiskReadsPerQuery, p.IndexBytes, p.Speedup)
	}
	fmt.Fprintf(w, "hot tuples scattered over %.0f%% of heap pages before clustering\n", r.BaselineHotScatter*100)
	fmt.Fprintf(w, "hot-partition index is %.1f× smaller than the full index (paper: ~19×)\n", r.IndexShrinkFactor)
}
