//go:build !race

package experiments

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
