package experiments

import (
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/idxcache"
	"repro/internal/wiki"
)

// CapacityConfig parameterizes the Section 2.1.4 capacity analysis.
type CapacityConfig struct {
	Pages      int // rows in the synthetic page table
	FillFactor float64
	ItemSize   int // cache entry size; paper: 25 bytes
	PageSize   int
	Seed       int64
}

// DefaultCapacityConfig mirrors the paper's parameters.
func DefaultCapacityConfig() CapacityConfig {
	return CapacityConfig{Pages: 20000, FillFactor: 0.68, ItemSize: 25, PageSize: 8192, Seed: 1}
}

// CapacityResult reports both the measured capacity of a real
// bulk-built index and the paper's closed-form estimate evaluated with
// their published inputs.
type CapacityResult struct {
	Config CapacityConfig
	// Measured on the real index built over the synthetic page table:
	MeasuredKeyBytes  int64
	MeasuredFill      float64
	MeasuredLeafPages int
	MeasuredSlots     int64   // actual cache slots across all leaves
	MeasuredCoverage  float64 // slots / table rows
	// PaperEstimate evaluates the closed form with the paper's inputs
	// (360 MB of keys, 68% fill, 25-byte items, ~11M page rows).
	PaperEstimate idxcache.CapacityEstimate
}

// RunCapacity builds the name_title index on a synthetic page table,
// counts actual cache slots leaf by leaf, and evaluates the closed form
// with the paper's numbers for comparison.
func RunCapacity(cfg CapacityConfig) (_ CapacityResult, err error) {
	e, err := core.NewEngine(core.Options{PageSize: cfg.PageSize, BufferPoolPages: 1 << 16})
	if err != nil {
		return CapacityResult{}, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		return CapacityResult{}, err
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: cfg.Pages, RevisionsPerPage: 1, Alpha: 0.5, Seed: cfg.Seed})
	for i := 0; i < cfg.Pages; i++ {
		if _, err := tb.Insert(gen.PageRow(i, int64(i))); err != nil {
			return CapacityResult{}, err
		}
	}
	ix, err := tb.CreateIndex("name_title", []string{"page_namespace", "page_title"},
		core.WithFillFactor(cfg.FillFactor),
		core.WithCache(wiki.CachedPageFields()...))
	if err != nil {
		return CapacityResult{}, err
	}
	ts, err := ix.Tree().Stats()
	if err != nil {
		return CapacityResult{}, err
	}
	res := CapacityResult{Config: cfg}
	res.MeasuredKeyBytes = ts.KeyBytes
	res.MeasuredFill = ts.MeanLeafFill
	res.MeasuredLeafPages = ts.LeafPages

	cache := ix.Cache()
	var slots int64
	err = ix.Tree().VisitAllLeaves(func(l *btree.Leaf) bool {
		slots += int64(cache.SlotsIn(l))
		return true
	})
	if err != nil {
		return CapacityResult{}, err
	}
	res.MeasuredSlots = slots
	res.MeasuredCoverage = float64(slots) / float64(cfg.Pages)

	res.PaperEstimate = idxcache.CapacityEstimate{
		KeyBytes:     360 << 20,
		FillFactor:   0.68,
		PageSize:     8192,
		PageOverhead: 44,
		ItemSize:     25,
		TableRows:    11_000_000,
	}
	return res, nil
}

// Print renders the measured and closed-form numbers side by side.
func (r CapacityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 2.1.4: index cache capacity analysis\n")
	fmt.Fprintf(w, "measured on synthetic name_title index (%d rows, fill %.2f):\n",
		r.Config.Pages, r.Config.FillFactor)
	fmt.Fprintf(w, "  key bytes      %d\n", r.MeasuredKeyBytes)
	fmt.Fprintf(w, "  leaf pages     %d (mean fill %.3f)\n", r.MeasuredLeafPages, r.MeasuredFill)
	fmt.Fprintf(w, "  cache slots    %d (entry size %d)\n", r.MeasuredSlots, r.Config.ItemSize)
	fmt.Fprintf(w, "  coverage       %.1f%% of table rows\n", 100*r.MeasuredCoverage)
	fmt.Fprintf(w, "closed form with the paper's inputs (360MB keys, 68%% fill, 25B items, 11M rows):\n")
	fmt.Fprintf(w, "  %s\n", r.PaperEstimate)
	fmt.Fprintf(w, "  (paper: ~7.9M items, >70%% of page-table tuples)\n")
}
