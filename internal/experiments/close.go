package experiments

import (
	"fmt"

	"repro/internal/core"
)

// closeEngine folds an engine Close failure into *errp: a benchmark
// whose teardown cannot flush its state should fail loudly, not report
// numbers from a half-written store. An earlier error keeps precedence.
func closeEngine(e *core.Engine, errp *error) {
	if cerr := e.Close(); cerr != nil && *errp == nil {
		*errp = fmt.Errorf("experiments: closing engine: %w", cerr)
	}
}
