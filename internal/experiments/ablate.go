package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/idxcache"
	"repro/internal/tuple"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// --- A1/A3: placement-policy and bucket-size ablations -----------------

// AblatePlacementConfig parameterizes the placement ablation.
type AblatePlacementConfig struct {
	Items    int
	Lookups  int
	Alpha    float64
	SizePct  int // cache size as % of items
	Seed     int64
	BucketNs []int // bucket sizes to sweep (A3)
}

// DefaultAblatePlacementConfig uses Figure 2(a)'s setup at 25% size
// with a shrink phase, where placement policy matters most.
func DefaultAblatePlacementConfig() AblatePlacementConfig {
	return AblatePlacementConfig{
		Items: 10000, Lookups: 100000, Alpha: 0.5, SizePct: 25, Seed: 1,
		BucketNs: []int{1, 2, 4, 8, 16, 64},
	}
}

// AblatePlacementRow is one policy/bucket configuration's outcome.
type AblatePlacementRow struct {
	Policy    string
	BucketN   int
	HitSteady float64 // constant-capacity hit rate
	HitShrink float64 // hit rate while the cache halves
}

// AblatePlacementResult is the sweep.
type AblatePlacementResult struct {
	Config AblatePlacementConfig
	Rows   []AblatePlacementRow
}

// RunAblatePlacement compares swap-toward-center against no-promotion
// random placement (A1), and sweeps the bucket size N (A3). The paper's
// design claim is that swapping matters specifically under shrink —
// hot entries must migrate inward before the periphery is overwritten.
func RunAblatePlacement(cfg AblatePlacementConfig) (AblatePlacementResult, error) {
	res := AblatePlacementResult{Config: cfg}
	capacity := cfg.Items * cfg.SizePct / 100
	run := func(bucketN int, noPromote, shrink bool) (float64, error) {
		zipf := workload.NewZipf(workload.NewRand(cfg.Seed+3), cfg.Items, cfg.Alpha)
		sim, err := idxcache.NewSim(workload.NewRand(cfg.Seed+11), capacity, bucketN)
		if err != nil {
			return 0, err
		}
		sim.NoPromote = noPromote
		// Warm phase at constant capacity, so the measured phase starts
		// from the policy's steady-state layout (promotion matters when
		// the periphery is about to be overwritten, not during fill).
		for i := 0; i < cfg.Lookups; i++ {
			sim.Lookup(zipf.Next())
		}
		sim.ResetStats()
		shrinkTotal := capacity / 2
		shrinkEvery := 0
		if shrink && shrinkTotal > 0 {
			shrinkEvery = cfg.Lookups / shrinkTotal
			if shrinkEvery == 0 {
				shrinkEvery = 1
			}
		}
		for i := 0; i < cfg.Lookups; i++ {
			sim.Lookup(zipf.Next())
			if shrinkEvery > 0 && i%shrinkEvery == shrinkEvery-1 && sim.Capacity() > capacity-shrinkTotal {
				sim.Shrink(1)
			}
		}
		return sim.HitRate(), nil
	}
	// A1: policy comparison at the default bucket size.
	for _, p := range []struct {
		name      string
		noPromote bool
	}{{"swap-toward-center", false}, {"no-promotion", true}} {
		steady, err := run(4, p.noPromote, false)
		if err != nil {
			return AblatePlacementResult{}, err
		}
		shrunk, err := run(4, p.noPromote, true)
		if err != nil {
			return AblatePlacementResult{}, err
		}
		res.Rows = append(res.Rows, AblatePlacementRow{
			Policy: p.name, BucketN: 4, HitSteady: steady, HitShrink: shrunk,
		})
	}
	// A3: bucket-size sweep with swapping on.
	for _, n := range cfg.BucketNs {
		steady, err := run(n, false, false)
		if err != nil {
			return AblatePlacementResult{}, err
		}
		shrunk, err := run(n, false, true)
		if err != nil {
			return AblatePlacementResult{}, err
		}
		res.Rows = append(res.Rows, AblatePlacementRow{
			Policy: "swap", BucketN: n, HitSteady: steady, HitShrink: shrunk,
		})
	}
	return res, nil
}

// Print renders the sweep.
func (r AblatePlacementResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A1/A3: cache placement policy and bucket size (cache=%d%% of %d items)\n",
		r.Config.SizePct, r.Config.Items)
	fmt.Fprintf(w, "%-20s %8s %10s %10s\n", "policy", "bucketN", "steady", "shrink")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %8d %10.3f %10.3f\n", row.Policy, row.BucketN, row.HitSteady, row.HitShrink)
	}
}

// --- A2: predicate-log threshold ablation ------------------------------

// AblatePredLogConfig parameterizes the invalidation ablation.
type AblatePredLogConfig struct {
	Rows      int
	Ops       int
	UpdatePct int // percentage of operations that are updates
	Seed      int64
	Limits    []int // predicate-log thresholds; 0 = always escalate
}

// DefaultAblatePredLogConfig mixes 10% updates into lookups.
func DefaultAblatePredLogConfig() AblatePredLogConfig {
	return AblatePredLogConfig{
		Rows: 5000, Ops: 30000, UpdatePct: 10, Seed: 1,
		Limits: []int{0, 16, 256, 4096},
	}
}

// AblatePredLogRow is one threshold's outcome.
type AblatePredLogRow struct {
	Limit             int
	CacheHitRate      float64
	FullInvalidations int64
	PageInvalidations int64
}

// AblatePredLogResult is the sweep.
type AblatePredLogResult struct {
	Config AblatePredLogConfig
	Rows   []AblatePredLogRow
}

// RunAblatePredLog measures how the predicate-log threshold trades
// invalidation granularity against cache hit rate under a read/update
// mix. Limit 0 escalates every update to a full CSN bump (the paper's
// naive baseline); higher limits confine invalidation to the pages the
// updated keys actually live on.
func RunAblatePredLog(cfg AblatePredLogConfig) (AblatePredLogResult, error) {
	res := AblatePredLogResult{Config: cfg}
	for _, limit := range cfg.Limits {
		row, err := runPredLogOnce(cfg, limit)
		if err != nil {
			return AblatePredLogResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runPredLogOnce(cfg AblatePredLogConfig, limit int) (_ AblatePredLogRow, err error) {
	e, err := core.NewEngine(core.Options{PageSize: 8192, BufferPoolPages: 1 << 14})
	if err != nil {
		return AblatePredLogRow{}, err
	}
	defer closeEngine(e, &err)
	tb, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		return AblatePredLogRow{}, err
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: cfg.Rows, RevisionsPerPage: 1, Alpha: 0.5, Seed: cfg.Seed})
	for i := 0; i < cfg.Rows; i++ {
		if _, err := tb.Insert(gen.PageRow(i, int64(i))); err != nil {
			return AblatePredLogRow{}, err
		}
	}
	opts := []core.IndexOption{
		core.WithFillFactor(0.68),
		core.WithCache(wiki.CachedPageFields()...),
		core.WithCacheSeed(cfg.Seed),
	}
	if limit > 0 {
		opts = append(opts, core.WithPredLogLimit(limit))
	} else {
		opts = append(opts, core.WithPredLogLimit(-1)) // negative: escalate on every append
	}
	ix, err := tb.CreateIndex("name_title", []string{"page_namespace", "page_title"}, opts...)
	if err != nil {
		return AblatePredLogRow{}, err
	}
	if _, err := ix.WarmCache(); err != nil {
		return AblatePredLogRow{}, err
	}
	rng := workload.NewRand(cfg.Seed + 77)
	zipf := workload.NewZipf(workload.NewRand(cfg.Seed+78), cfg.Rows, 0.8)
	proj := []string{"page_latest", "page_len"}
	for op := 0; op < cfg.Ops; op++ {
		i := zipf.Next()
		key := fig2cKey(i)
		if rng.Intn(100) < cfg.UpdatePct {
			rid, found, err := ix.LookupRID(key...)
			if err != nil || !found {
				return AblatePredLogRow{}, fmt.Errorf("experiments: update target missing: %v", err)
			}
			row, err := tb.Get(rid)
			if err != nil {
				return AblatePredLogRow{}, err
			}
			row[4] = tuple.Int64(row[4].Int + 1) // bump page_latest (a cached field)
			if _, err := tb.Update(rid, row); err != nil {
				return AblatePredLogRow{}, err
			}
			continue
		}
		if _, _, err := ix.Lookup(proj, key...); err != nil {
			return AblatePredLogRow{}, err
		}
	}
	st := ix.Cache().Stats()
	return AblatePredLogRow{
		Limit:             limit,
		CacheHitRate:      st.HitRate(),
		FullInvalidations: st.FullInvalidations,
		PageInvalidations: st.PageInvalidations,
	}, nil
}

// Print renders the sweep.
func (r AblatePredLogResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A2: predicate-log threshold (%d%% updates in %d ops over %d rows)\n",
		r.Config.UpdatePct, r.Config.Ops, r.Config.Rows)
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "limit", "hit rate", "full inval", "page inval")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %12.3f %12d %12d\n", row.Limit, row.CacheHitRate, row.FullInvalidations, row.PageInvalidations)
	}
}
