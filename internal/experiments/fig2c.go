package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/tuple"
	"repro/internal/wiki"
	"repro/internal/workload"
)

// Fig2cConfig parameterizes the Figure 2(c) micro-benchmark: measured
// cost per lookup, cache vs nocache, with the whole database resident
// (buffer pool hit rate 100%).
type Fig2cConfig struct {
	Pages   int // rows in the page table
	Lookups int // lookups per measured phase
	Seed    int64
}

// DefaultFig2cConfig uses a table small enough to stay fully resident.
func DefaultFig2cConfig() Fig2cConfig {
	return Fig2cConfig{Pages: 20000, Lookups: 50000, Seed: 1}
}

// Fig2cPoint is one x position of the generated curve.
type Fig2cPoint struct {
	HitRate     float64
	CacheNsOp   float64 // h·T_hit + (1−h)·T_miss from measured endpoints
	NoCacheNsOp float64 // flat measured baseline
}

// Fig2cResult holds the measured operating points and the derived
// curve. The paper sweeps the hit rate synthetically; we measure three
// real operating points — the no-cache engine, a pure-hit workload on
// verified cache-resident keys, and a mixed workload — solve for the
// per-hit and per-miss latencies, and generate the curve from them.
type Fig2cResult struct {
	Config Fig2cConfig
	// Measured endpoints (ns/lookup):
	NoCacheNs  float64 // plain index + heap fetch
	HitNs      float64 // lookups answered from the index cache
	MixNs      float64 // uniform workload (measured hit rate MixHitRate)
	MixHitRate float64
	MissNs     float64 // solved: (MixNs − h·HitNs)/(1−h)
	Points     []Fig2cPoint
	// OverheadNs is MissNs−NoCacheNs: what a lookup pays for probing and
	// filling the cache without benefiting (paper: ~0.3µs).
	OverheadNs float64
	// SpeedupAtFull is NoCacheNs/HitNs (paper: 2.7×).
	SpeedupAtFull float64
	// BreakEvenHitRate is where the cache curve crosses the no-cache
	// line (paper: ~35%).
	BreakEvenHitRate float64
}

// RunFig2c builds two identical fully-resident engines — with and
// without the index cache — and measures lookup latency at the three
// operating points.
func RunFig2c(cfg Fig2cConfig) (_ Fig2cResult, err error) {
	withCache, ixCache, err := buildFig2cEngine(cfg, true)
	if err != nil {
		return Fig2cResult{}, err
	}
	defer closeEngine(withCache, &err)
	noCache, ixPlain, err := buildFig2cEngine(cfg, false)
	if err != nil {
		return Fig2cResult{}, err
	}
	defer closeEngine(noCache, &err)

	if _, err := ixCache.WarmCache(); err != nil {
		return Fig2cResult{}, err
	}
	proj := []string{"page_namespace", "page_title", "page_latest", "page_len"}

	// Precompute key values so trace replay measures only engine work.
	keys := make([][]tuple.Value, cfg.Pages)
	for i := range keys {
		keys[i] = fig2cKey(i)
	}

	// Identify verified cache-resident keys.
	var hot []int
	for i := 0; i < cfg.Pages; i++ {
		_, res, err := ixCache.Lookup(proj, keys[i]...)
		if err != nil {
			return Fig2cResult{}, err
		}
		if res.CacheHit {
			hot = append(hot, i)
		}
	}
	if len(hot) == 0 {
		return Fig2cResult{}, fmt.Errorf("experiments: no cache-resident keys after warmup")
	}

	rng := workload.NewRand(cfg.Seed + 42)
	hotTrace := make([][]tuple.Value, cfg.Lookups)
	for i := range hotTrace {
		hotTrace[i] = keys[hot[rng.Intn(len(hot))]]
	}
	uniTrace := make([][]tuple.Value, cfg.Lookups)
	for i := range uniTrace {
		uniTrace[i] = keys[rng.Intn(cfg.Pages)]
	}

	res := Fig2cResult{Config: cfg}

	// Warm both engines' code paths, then measure. Each measurement runs
	// its trace once untimed and once timed.
	if _, err := timeLookups(ixPlain, proj, uniTrace); err != nil {
		return Fig2cResult{}, err
	}
	res.NoCacheNs, err = timeLookups(ixPlain, proj, uniTrace)
	if err != nil {
		return Fig2cResult{}, err
	}

	if _, err := timeLookups(ixCache, proj, hotTrace); err != nil {
		return Fig2cResult{}, err
	}
	stBefore := ixCache.Cache().Stats()
	res.HitNs, err = timeLookups(ixCache, proj, hotTrace)
	if err != nil {
		return Fig2cResult{}, err
	}
	stAfter := ixCache.Cache().Stats()
	hotHit := ratioOf(stAfter.Hits-stBefore.Hits, stAfter.Lookups-stBefore.Lookups)
	if hotHit < 0.95 {
		return Fig2cResult{}, fmt.Errorf("experiments: hot trace hit rate %.2f too low to anchor T_hit", hotHit)
	}

	if _, err := timeLookups(ixCache, proj, uniTrace); err != nil {
		return Fig2cResult{}, err
	}
	stBefore = ixCache.Cache().Stats()
	res.MixNs, err = timeLookups(ixCache, proj, uniTrace)
	if err != nil {
		return Fig2cResult{}, err
	}
	stAfter = ixCache.Cache().Stats()
	res.MixHitRate = ratioOf(stAfter.Hits-stBefore.Hits, stAfter.Lookups-stBefore.Lookups)
	if res.MixHitRate >= 0.99 {
		return Fig2cResult{}, fmt.Errorf("experiments: mixed trace hit rate %.2f leaves no miss signal", res.MixHitRate)
	}
	res.MissNs = (res.MixNs - res.MixHitRate*res.HitNs) / (1 - res.MixHitRate)

	for h := 0.0; h <= 1.0001; h += 0.1 {
		res.Points = append(res.Points, Fig2cPoint{
			HitRate:     h,
			CacheNsOp:   h*res.HitNs + (1-h)*res.MissNs,
			NoCacheNsOp: res.NoCacheNs,
		})
	}
	res.OverheadNs = res.MissNs - res.NoCacheNs
	if res.HitNs > 0 {
		res.SpeedupAtFull = res.NoCacheNs / res.HitNs
	}
	if diff := res.MissNs - res.HitNs; diff > 0 {
		res.BreakEvenHitRate = (res.MissNs - res.NoCacheNs) / diff
	}
	return res, nil
}

func ratioOf(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func fig2cKey(i int) []tuple.Value {
	return []tuple.Value{
		tuple.Int32(int32(wiki.NamespaceOf(i))),
		tuple.String(wiki.PageTitle(i)),
	}
}

func buildFig2cEngine(cfg Fig2cConfig, cached bool) (*core.Engine, *core.Index, error) {
	e, err := core.NewEngine(core.Options{PageSize: 8192, BufferPoolPages: 1 << 16})
	if err != nil {
		return nil, nil, err
	}
	tb, err := e.CreateTable("page", wiki.PageSchema())
	if err != nil {
		return nil, nil, err
	}
	gen := wiki.NewGenerator(wiki.Config{Pages: cfg.Pages, RevisionsPerPage: 1, Alpha: 0.5, Seed: cfg.Seed})
	for i := 0; i < cfg.Pages; i++ {
		if _, err := tb.Insert(gen.PageRow(i, int64(i*10))); err != nil {
			return nil, nil, err
		}
	}
	opts := []core.IndexOption{core.WithFillFactor(0.68)}
	if cached {
		opts = append(opts, core.WithCache(wiki.CachedPageFields()...), core.WithCacheSeed(cfg.Seed))
	}
	ix, err := tb.CreateIndex("name_title", []string{"page_namespace", "page_title"}, opts...)
	if err != nil {
		return nil, nil, err
	}
	return e, ix, nil
}

func timeLookups(ix *core.Index, proj []string, trace [][]tuple.Value) (float64, error) {
	start := time.Now()
	for _, key := range trace {
		_, res, err := ix.Lookup(proj, key...)
		if err != nil {
			return 0, err
		}
		if !res.Found {
			return 0, fmt.Errorf("experiments: trace key not found")
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(trace)), nil
}

// Print renders the measured endpoints and the derived curve.
func (r Fig2cResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 2(c): cost/lookup (µs), buffer pool hit rate = 100%%\n")
	fmt.Fprintf(w, "measured endpoints: nocache=%.3fµs hit=%.3fµs miss=%.3fµs (mix ran at hit rate %.2f)\n",
		r.NoCacheNs/1000, r.HitNs/1000, r.MissNs/1000, r.MixHitRate)
	fmt.Fprintf(w, "%8s %12s %12s\n", "hit%", "cache µs", "nocache µs")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8.0f %12.3f %12.3f\n", p.HitRate*100, p.CacheNsOp/1000, p.NoCacheNsOp/1000)
	}
	fmt.Fprintf(w, "cache overhead at zero hit rate: %.3f µs (paper: ~0.3 µs)\n", r.OverheadNs/1000)
	fmt.Fprintf(w, "break-even hit rate: %.0f%% (paper: ~35%%)\n", 100*r.BreakEvenHitRate)
	fmt.Fprintf(w, "speedup at full hit rate: %.2f× (paper: 2.7×)\n", r.SpeedupAtFull)
}
