package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Value encoding is self-describing: [kind uint8][flags uint8][body].
// flag bit 0 marks NULL (no body). Numeric kinds (ints, bool,
// timestamp) carry a zigzag varint; Float64 carries 8 bytes LE of the
// IEEE bits; Char/String/Bytes carry a uvarint length then the bytes.
// Rows are a uvarint count followed by that many values. Nothing here
// depends on a schema, so clients decode results without catalog
// round-trips.

const flagNull = 1

var errTruncated = errors.New("wire: truncated message")

// --- append side ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendValue appends one self-describing value.
func AppendValue(dst []byte, v tuple.Value) []byte {
	var flags byte
	if v.Null {
		flags |= flagNull
	}
	dst = append(dst, byte(v.Kind), flags)
	if v.Null {
		return dst
	}
	switch v.Kind {
	case tuple.KindFloat64:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float))
	case tuple.KindChar, tuple.KindString:
		dst = appendString(dst, v.Str)
	case tuple.KindBytes:
		dst = appendBytes(dst, v.Raw)
	default:
		dst = binary.AppendVarint(dst, v.Int)
	}
	return dst
}

// AppendRow appends a row as a uvarint count plus each value.
func AppendRow(dst []byte, r tuple.Row) []byte {
	dst = appendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// --- read side ---

// reader walks a payload, latching the first error so decode code can
// read fields unconditionally and check once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(errTruncated)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail(errTruncated)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// count reads a uvarint element count and bounds it by the bytes that
// remain, so a corrupt count cannot drive a huge allocation.
func (r *reader) count(minPer int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minPer < 1 {
		minPer = 1
	}
	if n > uint64(len(r.b)-r.off)/uint64(minPer)+1 {
		r.fail(errTruncated)
		return 0
	}
	return int(n)
}

func (r *reader) string() string { return string(r.take(int(r.uvarint()))) }

func (r *reader) bytes() []byte {
	b := r.take(int(r.uvarint()))
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) value() tuple.Value {
	kind := tuple.Kind(r.byte())
	flags := r.byte()
	if r.err != nil {
		return tuple.Value{}
	}
	v := tuple.Value{Kind: kind}
	if flags&flagNull != 0 {
		v.Null = true
		return v
	}
	switch kind {
	case tuple.KindFloat64:
		b := r.take(8)
		if r.err == nil {
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
	case tuple.KindChar, tuple.KindString:
		v.Str = r.string()
	case tuple.KindBytes:
		v.Raw = r.bytes()
	case tuple.KindInt64, tuple.KindInt32, tuple.KindInt16, tuple.KindInt8,
		tuple.KindBool, tuple.KindTimestamp:
		v.Int = r.varint()
	default:
		r.fail(fmt.Errorf("wire: bad value kind %d", kind))
	}
	return v
}

func (r *reader) row() tuple.Row {
	n := r.count(2)
	if r.err != nil || n == 0 {
		return nil
	}
	row := make(tuple.Row, 0, n)
	for i := 0; i < n; i++ {
		row = append(row, r.value())
		if r.err != nil {
			return nil
		}
	}
	return row
}

// DecodeValue decodes one value from b (for tests and tools).
func DecodeValue(b []byte) (tuple.Value, int, error) {
	r := reader{b: b}
	v := r.value()
	return v, r.off, r.err
}
