package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte("nblb"), 1000)}
	var buf bytes.Buffer
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint64(i*7+1), uint8(i+1), p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	var scratch []byte
	for i, p := range payloads {
		var f Frame
		var err error
		f, scratch, err = ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.ReqID != uint64(i*7+1) || f.Type != uint8(i+1) {
			t.Errorf("frame %d: reqID=%d type=%d", i, f.ReqID, f.Type)
		}
		if !bytes.Equal(f.Payload, p) {
			t.Errorf("frame %d: payload mismatch (%d vs %d bytes)", i, len(f.Payload), len(p))
		}
	}
	if _, _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameTornRejected(t *testing.T) {
	full := AppendFrame(nil, 9, TApply, []byte("hello world"))
	// Every strict prefix must fail with EOF (empty) or UnexpectedEOF,
	// never a zero-value success.
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if err == nil {
			t.Fatalf("cut at %d: torn frame accepted", cut)
		}
		if err != io.ErrUnexpectedEOF && err != io.EOF {
			t.Fatalf("cut at %d: err = %v", cut, err)
		}
	}
}

func TestFrameBadCRCRejected(t *testing.T) {
	full := AppendFrame(nil, 1, TPing, []byte("abcdef"))
	// Flip one bit anywhere past the length prefix: CRC must catch it.
	for i := 4; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x10
		if _, _, err := ReadFrame(bytes.NewReader(mut), nil); !errors.Is(err, ErrBadCRC) {
			t.Fatalf("bit flip at %d: err = %v, want ErrBadCRC", i, err)
		}
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzReadFrame feeds raw bytes to the frame decoder: it must never
// panic or return a frame whose re-encoding differs from its claim.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, 1, TPing, nil))
	f.Add(AppendFrame(nil, 42, TApply, []byte("payload")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// A decoded frame must re-encode to exactly the bytes consumed.
		enc := AppendFrame(nil, fr.ReqID, fr.Type, fr.Payload)
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, data[:len(enc)])
		}
	})
}

// FuzzFrameRoundTrip fuzzes the encode→decode pipe with arbitrary
// payload, id and type.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), []byte{})
	f.Add(uint64(1<<63), uint8(TQueryPage), []byte("rows"))
	f.Fuzz(func(t *testing.T, reqID uint64, typ uint8, payload []byte) {
		buf := AppendFrame(nil, reqID, typ, payload)
		fr, _, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if fr.ReqID != reqID || fr.Type != typ || !bytes.Equal(fr.Payload, payload) {
			t.Fatalf("round trip mutated frame: %+v", fr)
		}
	})
}
