package wire

import (
	"reflect"
	"testing"

	"repro/internal/tuple"
)

func sampleRow() tuple.Row {
	return tuple.Row{
		tuple.Int64(-1234567890123),
		tuple.Int32(77),
		tuple.Int16(-5),
		tuple.Int8(3),
		tuple.Bool(true),
		tuple.Float64(3.25),
		tuple.Char("fixed"),
		tuple.String("héllo wörld"),
		tuple.Bytes([]byte{0, 1, 2, 255}),
		tuple.TimestampUnix(1700000000),
		tuple.Null(tuple.KindString),
	}
}

func TestValueRoundTrip(t *testing.T) {
	for i, v := range sampleRow() {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("value %d: n=%d err=%v", i, n, err)
		}
		if !got.Equal(v) {
			t.Errorf("value %d: got %v, want %v", i, got, v)
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	row := sampleRow()
	cases := []struct {
		name string
		in   interface {
			Marshal([]byte) []byte
		}
		out interface {
			Unmarshal([]byte) error
		}
	}{
		{"ApplyReq", &ApplyReq{Table: "t", Ops: []Op{
			{Kind: OpInsert, Row: row},
			{Kind: OpUpdate, RID: 1 << 40, Row: row[:2]},
			{Kind: OpDelete, RID: 42},
		}}, &ApplyReq{}},
		{"ApplyResp", &ApplyResp{Applied: 2, RIDs: []uint64{7, 0, 9},
			OpErrs: []string{"", "dup key", ""}}, &ApplyResp{}},
		{"GetReq", &GetReq{Table: "t", Index: "by_id", Key: row[:1]}, &GetReq{}},
		{"GetResp", &GetResp{Found: true, RID: 99, Row: row}, &GetResp{}},
		{"GetRespMiss", &GetResp{}, &GetResp{}},
		{"QueryReq", &QueryReq{Table: "t", Index: "by_id", Lo: row[:1], Hi: nil,
			Prefix: row[1:2], Projection: []string{"a", "b"}, Limit: 10,
			PageSize: 256, Reverse: true, WithRIDs: true}, &QueryReq{}},
		{"QueryReqParallel", &QueryReq{Table: "t", Index: "by_id",
			Parallel: 8, Unordered: true}, &QueryReq{}},
		{"QueryPage", &QueryPage{Rows: []tuple.Row{row, row[:3]},
			RIDs: []uint64{1, 2}, Last: true}, &QueryPage{}},
		{"CreateTableReq", &CreateTableReq{Table: "t", Fields: []tuple.Field{
			{Name: "id", Kind: tuple.KindInt64},
			{Name: "name", Kind: tuple.KindChar, Size: 16},
		}}, &CreateTableReq{}},
		{"CreateIndexReq", &CreateIndexReq{Table: "t", Index: "by_id",
			Fields: []string{"id"}, Unique: true}, &CreateIndexReq{}},
		{"StatsResp", &StatsResp{JSON: []byte(`{"rows":1}`)}, &StatsResp{}},
		{"ErrResp", &ErrResp{Msg: "no such table"}, &ErrResp{}},
		{"ErrRespCoded", &ErrResp{Msg: "core: transaction conflict",
			Code: ErrCodeTxnConflict}, &ErrResp{}},
	}
	for _, tc := range cases {
		buf := tc.in.Marshal(nil)
		if err := tc.out.Unmarshal(buf); err != nil {
			t.Errorf("%s: Unmarshal: %v", tc.name, err)
			continue
		}
		got := reflect.ValueOf(tc.out).Elem().Interface()
		want := reflect.ValueOf(tc.in).Elem().Interface()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\n got %+v\nwant %+v", tc.name, got, want)
		}
		// Trailing garbage must be rejected, not silently ignored.
		if err := tc.out.Unmarshal(append(buf, 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", tc.name)
		}
	}
}

// TestQueryReqCompat pins the flag-gated Parallel encoding: a request
// without Parallel set marshals to exactly the pre-parallel format, and
// an old-format payload (flags byte last, bit 8 clear) still decodes.
func TestQueryReqCompat(t *testing.T) {
	plain := (&QueryReq{Table: "t", Index: "i", Limit: 3, Reverse: true}).Marshal(nil)
	if f := plain[len(plain)-1]; f&(4|8) != 0 {
		t.Fatalf("serial request leaked parallel flags: %08b", f)
	}
	var m QueryReq
	if err := m.Unmarshal(plain); err != nil {
		t.Fatalf("old-format decode: %v", err)
	}
	if m.Parallel != 0 || m.Unordered {
		t.Fatalf("old-format decode produced Parallel=%d Unordered=%v", m.Parallel, m.Unordered)
	}
	// Parallel present: trailing uvarint after the flags byte.
	par := (&QueryReq{Table: "t", Index: "i", Parallel: 300, Unordered: true}).Marshal(nil)
	var p QueryReq
	if err := p.Unmarshal(par); err != nil {
		t.Fatalf("parallel decode: %v", err)
	}
	if p.Parallel != 300 || !p.Unordered {
		t.Fatalf("parallel round trip: Parallel=%d Unordered=%v", p.Parallel, p.Unordered)
	}
	// Flag bit 8 set but uvarint missing → truncation error, not a panic.
	broken := append([]byte(nil), plain...)
	broken[len(broken)-1] |= 8
	if err := m.Unmarshal(broken); err == nil {
		t.Fatal("flag 8 without trailing count accepted")
	}
}

func TestTruncatedMessagesRejected(t *testing.T) {
	full := (&ApplyReq{Table: "t", Ops: []Op{{Kind: OpInsert, Row: sampleRow()}}}).Marshal(nil)
	for cut := 0; cut < len(full); cut++ {
		var m ApplyReq
		if err := m.Unmarshal(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// FuzzApplyReqDecode: arbitrary bytes through the richest decoder —
// must never panic, and every successful decode must survive a
// re-encode/re-decode round trip unchanged (varints may arrive in
// non-minimal form, so byte-level canonicality is not required).
func FuzzApplyReqDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ApplyReq{Table: "t", Ops: []Op{{Kind: OpInsert, Row: sampleRow()}}}).Marshal(nil))
	f.Add((&ApplyReq{Table: "x", Ops: []Op{{Kind: OpDelete, RID: 7}}}).Marshal(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ApplyReq
		if err := m.Unmarshal(data); err != nil {
			return
		}
		var m2 ApplyReq
		if err := m2.Unmarshal(m.Marshal(nil)); err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mutated message:\n got %+v\nwant %+v", m2, m)
		}
	})
}

// FuzzQueryPageDecode covers the row/value decode surface from the
// response direction (what a client faces from an untrusted server).
func FuzzQueryPageDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&QueryPage{Rows: []tuple.Row{sampleRow()}, RIDs: []uint64{3}, Last: true}).Marshal(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m QueryPage
		if err := m.Unmarshal(data); err != nil {
			return
		}
		var m2 QueryPage
		if err := m2.Unmarshal(m.Marshal(nil)); err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mutated message:\n got %+v\nwant %+v", m2, m)
		}
	})
}
