package wire

import (
	"errors"
	"fmt"

	"repro/internal/tuple"
)

// Batch op kinds on the wire (independent of core's internal tags).
const (
	OpInsert uint8 = 0
	OpUpdate uint8 = 1
	OpDelete uint8 = 2
)

// Op is one mutation inside an ApplyReq. RID is the packed physical
// address for updates and deletes; Row is absent for deletes.
type Op struct {
	Kind uint8
	RID  uint64
	Row  tuple.Row
}

// ApplyReq asks the server to apply a batch of ops to one table. The
// server may coalesce the ops with other connections' into a shared
// core.Batch; results are still attributed per op.
type ApplyReq struct {
	Table string
	Ops   []Op
	// TxnID != 0 stages the ops into the connection's open transaction
	// instead of applying them directly. Encoded as an optional trailing
	// field: old requests simply end after the ops, so both directions
	// stay decodable.
	TxnID uint64
}

// Marshal appends the request payload to dst.
func (m *ApplyReq) Marshal(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	dst = appendUvarint(dst, uint64(len(m.Ops)))
	for _, op := range m.Ops {
		dst = append(dst, op.Kind)
		switch op.Kind {
		case OpInsert:
			dst = AppendRow(dst, op.Row)
		case OpUpdate:
			dst = appendUvarint(dst, op.RID)
			dst = AppendRow(dst, op.Row)
		case OpDelete:
			dst = appendUvarint(dst, op.RID)
		}
	}
	if m.TxnID != 0 {
		dst = appendUvarint(dst, m.TxnID)
	}
	return dst
}

// Unmarshal decodes the payload.
func (m *ApplyReq) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Table = r.string()
	n := r.count(2)
	m.Ops = make([]Op, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var op Op
		op.Kind = r.byte()
		switch op.Kind {
		case OpInsert:
			op.Row = r.row()
		case OpUpdate:
			op.RID = r.uvarint()
			op.Row = r.row()
		case OpDelete:
			op.RID = r.uvarint()
		default:
			r.fail(fmt.Errorf("wire: bad op kind %d", op.Kind))
		}
		m.Ops = append(m.Ops, op)
	}
	m.TxnID = 0
	if r.err == nil && r.off < len(r.b) {
		m.TxnID = r.uvarint()
		if m.TxnID == 0 && r.err == nil {
			// The field is only encoded when nonzero; a trailing zero is
			// garbage, not an old-format request.
			r.fail(errors.New("wire: zero txn id"))
		}
	}
	return r.done()
}

// ApplyResp reports per-op outcomes. OpErrs[i] is "" for a success;
// RIDs[i] is the op's resulting packed RID (0 when unknown). Applied
// counts successes, so a client can cheaply detect partial failure.
type ApplyResp struct {
	Applied int
	RIDs    []uint64
	OpErrs  []string
}

// Marshal appends the response payload to dst.
func (m *ApplyResp) Marshal(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(m.Applied))
	dst = appendUvarint(dst, uint64(len(m.RIDs)))
	for _, rid := range m.RIDs {
		dst = appendUvarint(dst, rid)
	}
	dst = appendUvarint(dst, uint64(len(m.OpErrs)))
	for _, e := range m.OpErrs {
		dst = appendString(dst, e)
	}
	return dst
}

// Unmarshal decodes the payload.
func (m *ApplyResp) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Applied = int(r.uvarint())
	n := r.count(1)
	m.RIDs = make([]uint64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.RIDs = append(m.RIDs, r.uvarint())
	}
	n = r.count(1)
	m.OpErrs = make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.OpErrs = append(m.OpErrs, r.string())
	}
	return r.done()
}

// Err returns the error for op i, or nil.
func (m *ApplyResp) Err(i int) error {
	if i >= len(m.OpErrs) || m.OpErrs[i] == "" {
		return nil
	}
	return fmt.Errorf("%s", m.OpErrs[i])
}

// GetReq is a point lookup through an index by exact key.
type GetReq struct {
	Table string
	Index string
	Key   tuple.Row
}

// Marshal appends the request payload to dst.
func (m *GetReq) Marshal(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	dst = appendString(dst, m.Index)
	return AppendRow(dst, m.Key)
}

// Unmarshal decodes the payload.
func (m *GetReq) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Table = r.string()
	m.Index = r.string()
	m.Key = r.row()
	return r.done()
}

// GetResp answers a GetReq.
type GetResp struct {
	Found bool
	RID   uint64
	Row   tuple.Row
}

// Marshal appends the response payload to dst.
func (m *GetResp) Marshal(dst []byte) []byte {
	var f byte
	if m.Found {
		f = 1
	}
	dst = append(dst, f)
	dst = appendUvarint(dst, m.RID)
	return AppendRow(dst, m.Row)
}

// Unmarshal decodes the payload.
func (m *GetResp) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Found = r.byte() != 0
	m.RID = r.uvarint()
	m.Row = r.row()
	return r.done()
}

// QueryReq opens a streaming cursor. Lo/Hi/Prefix are key-field rows
// (nil = absent); Projection names the returned fields (nil = all);
// Limit 0 = unbounded; PageSize 0 = server default. The server streams
// TQueryPage frames echoing the request ID until one has Last set.
type QueryReq struct {
	Table      string
	Index      string
	Lo, Hi     tuple.Row
	Prefix     tuple.Row
	Projection []string
	Limit      uint64
	PageSize   uint32
	Reverse    bool
	WithRIDs   bool
	// Parallel > 1 asks the server to run the scan as segmented workers
	// (requires Index and forward order); 0/1 = serial. Encoded as a
	// flag-gated trailing field, so requests from older clients — which
	// stop at the flags byte — still decode.
	Parallel uint32
	// Unordered selects the unordered merge for a parallel scan: pages
	// interleave segment blocks instead of globally ordering by key.
	Unordered bool
	// TxnID != 0 reads through the connection's open transaction: the
	// cursor observes that transaction's snapshot timestamp. Flag-gated
	// trailing field (bit 16), like Parallel.
	TxnID uint64
}

// Marshal appends the request payload to dst.
func (m *QueryReq) Marshal(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	dst = appendString(dst, m.Index)
	dst = AppendRow(dst, m.Lo)
	dst = AppendRow(dst, m.Hi)
	dst = AppendRow(dst, m.Prefix)
	dst = appendUvarint(dst, uint64(len(m.Projection)))
	for _, p := range m.Projection {
		dst = appendString(dst, p)
	}
	dst = appendUvarint(dst, m.Limit)
	dst = appendUvarint(dst, uint64(m.PageSize))
	var f byte
	if m.Reverse {
		f |= 1
	}
	if m.WithRIDs {
		f |= 2
	}
	if m.Unordered {
		f |= 4
	}
	if m.Parallel > 0 {
		f |= 8
	}
	if m.TxnID != 0 {
		f |= 16
	}
	dst = append(dst, f)
	if m.Parallel > 0 {
		dst = appendUvarint(dst, uint64(m.Parallel))
	}
	if m.TxnID != 0 {
		dst = appendUvarint(dst, m.TxnID)
	}
	return dst
}

// Unmarshal decodes the payload.
func (m *QueryReq) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Table = r.string()
	m.Index = r.string()
	m.Lo = r.row()
	m.Hi = r.row()
	m.Prefix = r.row()
	n := r.count(1)
	m.Projection = nil
	for i := 0; i < n && r.err == nil; i++ {
		m.Projection = append(m.Projection, r.string())
	}
	m.Limit = r.uvarint()
	m.PageSize = uint32(r.uvarint())
	f := r.byte()
	m.Reverse = f&1 != 0
	m.WithRIDs = f&2 != 0
	m.Unordered = f&4 != 0
	m.Parallel = 0
	if f&8 != 0 {
		m.Parallel = uint32(r.uvarint())
	}
	m.TxnID = 0
	if f&16 != 0 {
		m.TxnID = r.uvarint()
	}
	return r.done()
}

// QueryPage is one page of query results. RIDs is parallel to Rows
// when the query asked WithRIDs, else empty. Last marks the final page
// (which may be empty).
type QueryPage struct {
	Rows []tuple.Row
	RIDs []uint64
	Last bool
}

// Marshal appends the page payload to dst.
func (m *QueryPage) Marshal(dst []byte) []byte {
	var f byte
	if m.Last {
		f = 1
	}
	dst = append(dst, f)
	dst = appendUvarint(dst, uint64(len(m.Rows)))
	for _, row := range m.Rows {
		dst = AppendRow(dst, row)
	}
	dst = appendUvarint(dst, uint64(len(m.RIDs)))
	for _, rid := range m.RIDs {
		dst = appendUvarint(dst, rid)
	}
	return dst
}

// Unmarshal decodes the payload.
func (m *QueryPage) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Last = r.byte() != 0
	n := r.count(2)
	m.Rows = make([]tuple.Row, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.Rows = append(m.Rows, r.row())
	}
	n = r.count(1)
	m.RIDs = nil
	for i := 0; i < n && r.err == nil; i++ {
		m.RIDs = append(m.RIDs, r.uvarint())
	}
	return r.done()
}

// CreateTableReq declares a table. Fields carry declared kinds per the
// paper's §4.1 hint semantics.
type CreateTableReq struct {
	Table  string
	Fields []tuple.Field
}

// Marshal appends the request payload to dst.
func (m *CreateTableReq) Marshal(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	dst = appendUvarint(dst, uint64(len(m.Fields)))
	for _, f := range m.Fields {
		dst = appendString(dst, f.Name)
		dst = append(dst, byte(f.Kind))
		dst = appendUvarint(dst, uint64(f.Size))
	}
	return dst
}

// Unmarshal decodes the payload.
func (m *CreateTableReq) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Table = r.string()
	n := r.count(3)
	m.Fields = make([]tuple.Field, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var f tuple.Field
		f.Name = r.string()
		f.Kind = tuple.Kind(r.byte())
		f.Size = int(r.uvarint())
		m.Fields = append(m.Fields, f)
	}
	return r.done()
}

// CreateIndexReq declares an index over a table's fields.
type CreateIndexReq struct {
	Table  string
	Index  string
	Fields []string
	Unique bool
}

// Marshal appends the request payload to dst.
func (m *CreateIndexReq) Marshal(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	dst = appendString(dst, m.Index)
	dst = appendUvarint(dst, uint64(len(m.Fields)))
	for _, f := range m.Fields {
		dst = appendString(dst, f)
	}
	var u byte
	if m.Unique {
		u = 1
	}
	return append(dst, u)
}

// Unmarshal decodes the payload.
func (m *CreateIndexReq) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Table = r.string()
	m.Index = r.string()
	n := r.count(1)
	m.Fields = make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.Fields = append(m.Fields, r.string())
	}
	m.Unique = r.byte() != 0
	return r.done()
}

// StatsResp carries the server's counters as a JSON document — the
// set of counters evolves faster than the wire protocol should.
type StatsResp struct {
	JSON []byte
}

// Marshal appends the response payload to dst.
func (m *StatsResp) Marshal(dst []byte) []byte { return appendBytes(dst, m.JSON) }

// Unmarshal decodes the payload.
func (m *StatsResp) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.JSON = r.bytes()
	return r.done()
}

// TxnBeginResp answers a TTxnBegin: the connection-scoped transaction
// handle and the snapshot timestamp its reads observe.
type TxnBeginResp struct {
	TxnID   uint64
	StartTS uint64
}

// Marshal appends the response payload to dst.
func (m *TxnBeginResp) Marshal(dst []byte) []byte {
	dst = appendUvarint(dst, m.TxnID)
	return appendUvarint(dst, m.StartTS)
}

// Unmarshal decodes the payload.
func (m *TxnBeginResp) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.TxnID = r.uvarint()
	m.StartTS = r.uvarint()
	return r.done()
}

// TxnFinishReq commits or aborts a transaction (TTxnCommit/TTxnAbort).
type TxnFinishReq struct {
	TxnID uint64
}

// Marshal appends the request payload to dst.
func (m *TxnFinishReq) Marshal(dst []byte) []byte { return appendUvarint(dst, m.TxnID) }

// Unmarshal decodes the payload.
func (m *TxnFinishReq) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.TxnID = r.uvarint()
	return r.done()
}

// Error codes carried by ErrResp.Code: a machine-readable
// classification for the errors clients dispatch on, so retry logic
// never has to match message text.
const (
	// ErrCodeGeneric is an unclassified server error.
	ErrCodeGeneric uint64 = 0
	// ErrCodeTxnConflict reports first-committer-wins validation
	// failure: the transaction rolled back cleanly and may be retried
	// from Begin.
	ErrCodeTxnConflict uint64 = 1
)

// ErrResp reports a failed request.
type ErrResp struct {
	Msg  string
	Code uint64 // ErrCode* classification
}

// Marshal appends the response payload to dst.
func (m *ErrResp) Marshal(dst []byte) []byte {
	dst = appendString(dst, m.Msg)
	return appendUvarint(dst, m.Code)
}

// Unmarshal decodes the payload.
func (m *ErrResp) Unmarshal(b []byte) error {
	r := reader{b: b}
	m.Msg = r.string()
	m.Code = r.uvarint()
	return r.done()
}

// done finalizes a decode: any latched error wins, and trailing bytes
// beyond the message are rejected (they indicate a framing bug or a
// tampered payload).
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(r.b)-r.off)
	}
	return nil
}
