// Package wire implements the nblb network protocol: length-prefixed
// checksummed frames carrying request-ID-tagged messages, plus a
// self-describing codec for rows and values so clients need no schema
// to decode results.
//
// Frame layout (all integers little-endian):
//
//	[uint32 payloadLen] [uint32 crc32c] [uint64 reqID] [uint8 type] [payload]
//
// payloadLen counts only the payload bytes; the CRC (Castagnoli) covers
// reqID, type, and payload, so a torn or bit-flipped frame — including
// its header tail — is rejected before dispatch. Request IDs let a
// pipelined connection complete out of order: the server echoes the
// ID of the request each response answers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrame bounds a frame's payload. Frames claiming more are rejected
// without allocating, so a corrupt length prefix cannot OOM the peer.
const MaxFrame = 16 << 20

// headerSize is the fixed prefix before the payload.
const headerSize = 4 + 4 + 8 + 1

// Message types. Requests and responses share one space; a response's
// type is independent of its request's (e.g. most DDL acks are TOK).
const (
	TErr          uint8 = 1  // ErrResp — request failed
	TOK           uint8 = 2  // empty ack
	TPing         uint8 = 3  // empty liveness probe (response: TOK)
	TApply        uint8 = 4  // ApplyReq
	TApplyResp    uint8 = 5  // ApplyResp
	TGet          uint8 = 6  // GetReq — point lookup
	TGetResp      uint8 = 7  // GetResp
	TQuery        uint8 = 8  // QueryReq — opens a streaming cursor
	TQueryPage    uint8 = 9  // QueryPage — one page; Last marks the end
	TCreateTable  uint8 = 10 // CreateTableReq (response: TOK)
	TCreateIndex  uint8 = 11 // CreateIndexReq (response: TOK)
	TCheckpoint   uint8 = 12 // empty — force a checkpoint (response: TOK)
	TStats        uint8 = 13 // empty — engine counters (response: TStatsResp)
	TStatsResp    uint8 = 14 // StatsResp
	TTxnBegin     uint8 = 15 // empty — open a snapshot transaction (response: TTxnBeginResp)
	TTxnBeginResp uint8 = 16 // TxnBeginResp
	TTxnCommit    uint8 = 17 // TxnFinishReq — commit (response: TOK, or TErr on conflict)
	TTxnAbort     uint8 = 18 // TxnFinishReq — abort (response: TOK)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Protocol errors surfaced by ReadFrame.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrBadCRC        = errors.New("wire: frame checksum mismatch")
)

// Frame is one decoded protocol frame.
type Frame struct {
	ReqID   uint64
	Type    uint8
	Payload []byte
}

// AppendFrame appends a complete frame to dst and returns the extended
// slice. It is the encode path for both sides; writers batch several
// frames into one buffer before a single Write.
func AppendFrame(dst []byte, reqID uint64, typ uint8, payload []byte) []byte {
	if len(payload) > MaxFrame {
		panic(fmt.Sprintf("wire: payload %d exceeds MaxFrame", len(payload)))
	}
	off := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(dst[off+8:], reqID)
	dst[off+16] = typ
	crc := crc32.Checksum(dst[off+8:], castagnoli)
	binary.LittleEndian.PutUint32(dst[off+4:], crc)
	return dst
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, reqID uint64, typ uint8, payload []byte) error {
	buf := AppendFrame(nil, reqID, typ, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads the next frame, reusing buf for the payload when it
// fits. A short read mid-frame returns io.ErrUnexpectedEOF (a cleanly
// closed connection returns io.EOF only at a frame boundary); an
// oversized length prefix returns ErrFrameTooLarge and a checksum
// mismatch ErrBadCRC — both before any payload escapes to dispatch.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return Frame{}, buf, ErrFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	need := int(n) + (headerSize - 8)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	copy(buf, hdr[8:])
	if _, err := io.ReadFull(r, buf[headerSize-8:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	if crc32.Checksum(buf, castagnoli) != want {
		return Frame{}, buf, ErrBadCRC
	}
	return Frame{
		ReqID:   binary.LittleEndian.Uint64(buf[:8]),
		Type:    buf[8],
		Payload: buf[9:],
	}, buf, nil
}
