package tuple

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "small", Kind: KindInt16},
		Field{Name: "tiny", Kind: KindInt8},
		Field{Name: "flag", Kind: KindBool},
		Field{Name: "score", Kind: KindFloat64},
		Field{Name: "code", Kind: KindChar, Size: 4},
		Field{Name: "name", Kind: KindString},
		Field{Name: "blob", Kind: KindBytes},
		Field{Name: "ts", Kind: KindTimestamp},
	)
}

func testRow() Row {
	return Row{
		Int64(42),
		Int16(-7),
		Int8(3),
		Bool(true),
		Float64(3.25),
		Char("ab"),
		String("hello world"),
		Bytes([]byte{0, 1, 2, 0xFF}),
		Timestamp(time.Unix(1234567890, 0)),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	r := testRow()
	enc, err := Encode(s, r, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, n, err := Decode(s, enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(enc) {
		t.Errorf("Decode consumed %d bytes, encoded %d", n, len(enc))
	}
	if !r.Equal(dec) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", dec, r)
	}
}

func TestEncodeDecodeNulls(t *testing.T) {
	s := testSchema(t)
	r := make(Row, s.NumFields())
	for i := 0; i < s.NumFields(); i++ {
		r[i] = Null(s.Field(i).Kind)
	}
	enc, err := Encode(s, r, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, _, err := Decode(s, enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i, v := range dec {
		if !v.Null {
			t.Errorf("field %d: want NULL, got %v", i, v)
		}
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	s := testSchema(t)
	r := testRow()
	enc, err := Encode(s, r, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	n, err := EncodedSize(s, r)
	if err != nil {
		t.Fatalf("EncodedSize: %v", err)
	}
	if n != len(enc) {
		t.Errorf("EncodedSize = %d, actual = %d", n, len(enc))
	}
}

func TestDecodeFieldEveryPosition(t *testing.T) {
	s := testSchema(t)
	r := testRow()
	enc, err := Encode(s, r, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < s.NumFields(); i++ {
		v, err := DecodeField(s, enc, i)
		if err != nil {
			t.Fatalf("DecodeField(%d): %v", i, err)
		}
		if !v.Equal(r[i]) {
			t.Errorf("field %d: got %v, want %v", i, v, r[i])
		}
	}
}

func TestDecodeFieldWithNullVarFields(t *testing.T) {
	s := MustSchema(
		Field{Name: "a", Kind: KindString},
		Field{Name: "b", Kind: KindString},
		Field{Name: "c", Kind: KindString},
	)
	r := Row{Null(KindString), String("mid"), String("end")}
	enc, err := Encode(s, r, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := range r {
		v, err := DecodeField(s, enc, i)
		if err != nil {
			t.Fatalf("DecodeField(%d): %v", i, err)
		}
		if !v.Equal(r[i]) {
			t.Errorf("field %d: got %v, want %v", i, v, r[i])
		}
	}
}

func TestEncodeKindMismatch(t *testing.T) {
	s := MustSchema(Field{Name: "id", Kind: KindInt64})
	if _, err := Encode(s, Row{String("nope")}, nil); err == nil {
		t.Fatal("want error for kind mismatch")
	}
}

func TestEncodeOverflowChecks(t *testing.T) {
	cases := []struct {
		f Field
		v Value
	}{
		{Field{Name: "x", Kind: KindInt32}, Int64(math.MaxInt32 + 1)},
		{Field{Name: "x", Kind: KindInt16}, Int64(math.MaxInt16 + 1)},
		{Field{Name: "x", Kind: KindInt8}, Int64(200)},
		{Field{Name: "x", Kind: KindChar, Size: 2}, Char("abc")},
	}
	for _, c := range cases {
		s := MustSchema(c.f)
		v := c.v
		v.Kind = c.f.Kind
		if _, err := Encode(s, Row{v}, nil); err == nil {
			t.Errorf("%v with %v: want overflow error", c.f.Kind, c.v)
		}
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema(Field{Name: "", Kind: KindInt64}); err == nil {
		t.Error("empty field name should fail")
	}
	if _, err := NewSchema(Field{Name: "a", Kind: KindInt64}, Field{Name: "a", Kind: KindInt32}); err == nil {
		t.Error("duplicate field name should fail")
	}
	if _, err := NewSchema(Field{Name: "a", Kind: KindChar}); err == nil {
		t.Error("CHAR without size should fail")
	}
	if _, err := NewSchema(Field{Name: "a", Kind: KindInvalid}); err == nil {
		t.Error("invalid kind should fail")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("name", "id")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumFields() != 2 || p.Field(0).Name != "name" || p.Field(1).Name != "id" {
		t.Errorf("projection wrong: %s", p)
	}
	if _, err := s.Project("missing"); err == nil {
		t.Error("projecting missing field should fail")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "code", Kind: KindChar, Size: 3},
	)
	got := s.String()
	if !strings.Contains(got, "id BIGINT") || !strings.Contains(got, "code CHAR(3)") {
		t.Errorf("String() = %q", got)
	}
}

// randomRow generates a row matching the schema from a seeded source,
// exercising NULLs, negatives, and binary-unfriendly bytes.
func randomRow(rng *rand.Rand, s *Schema) Row {
	r := make(Row, s.NumFields())
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if rng.Intn(8) == 0 {
			r[i] = Null(f.Kind)
			continue
		}
		switch f.Kind {
		case KindInt64:
			r[i] = Int64(rng.Int63() - rng.Int63())
		case KindInt32:
			r[i] = Int32(int32(rng.Int63()))
		case KindInt16:
			r[i] = Int16(int16(rng.Int63()))
		case KindInt8:
			r[i] = Int8(int8(rng.Int63()))
		case KindBool:
			r[i] = Bool(rng.Intn(2) == 1)
		case KindFloat64:
			r[i] = Float64(rng.NormFloat64())
		case KindChar:
			n := rng.Intn(f.Size + 1)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			r[i] = Char(string(b))
		case KindString:
			n := rng.Intn(20)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte(rng.Intn(256))
				if b[j] == 0 && rng.Intn(2) == 0 {
					b[j] = 1
				}
			}
			r[i] = String(string(b))
		case KindBytes:
			n := rng.Intn(20)
			b := make([]byte, n)
			rng.Read(b)
			r[i] = Bytes(b)
		case KindTimestamp:
			r[i] = TimestampUnix(rng.Int63n(4e9))
		}
	}
	return r
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed ^ rng.Int63()))
		r := randomRow(local, s)
		enc, err := Encode(s, r, nil)
		if err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		dec, n, err := Decode(s, enc)
		if err != nil || n != len(enc) {
			t.Logf("Decode: %v (n=%d len=%d)", err, n, len(enc))
			return false
		}
		return r.Equal(dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRowsPackedBackToBack(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	var rows []Row
	for i := 0; i < 50; i++ {
		r := randomRow(rng, s)
		rows = append(rows, r)
		var err error
		buf, err = Encode(s, r, buf)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	off := 0
	for i, want := range rows {
		got, n, err := Decode(s, buf[off:])
		if err != nil {
			t.Fatalf("Decode row %d: %v", i, err)
		}
		if !want.Equal(got) {
			t.Fatalf("row %d mismatch", i)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}
