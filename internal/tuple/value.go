package tuple

import (
	"bytes"
	"fmt"
	"time"
)

// Value is a tagged union holding one field value. The zero Value is
// NULL of invalid kind.
type Value struct {
	Kind  Kind
	Null  bool
	Int   int64   // KindInt*, KindBool (0/1), KindTimestamp
	Float float64 // KindFloat64
	Str   string  // KindChar, KindString
	Raw   []byte  // KindBytes
}

// Int64 returns an INT64 value.
func Int64(v int64) Value { return Value{Kind: KindInt64, Int: v} }

// Int32 returns an INT32 value.
func Int32(v int32) Value { return Value{Kind: KindInt32, Int: int64(v)} }

// Int16 returns an INT16 value.
func Int16(v int16) Value { return Value{Kind: KindInt16, Int: int64(v)} }

// Int8 returns an INT8 value.
func Int8(v int8) Value { return Value{Kind: KindInt8, Int: int64(v)} }

// Bool returns a BOOL value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, Int: i}
}

// Float64 returns a DOUBLE value.
func Float64(v float64) Value { return Value{Kind: KindFloat64, Float: v} }

// Char returns a fixed-width CHAR value (padded/truncated at encode time).
func Char(s string) Value { return Value{Kind: KindChar, Str: s} }

// String returns a VARCHAR value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Bytes returns a VARBINARY value.
func Bytes(b []byte) Value { return Value{Kind: KindBytes, Raw: b} }

// Timestamp returns a TIMESTAMP value from a time.Time (second
// precision, matching the paper's 4-byte-timestamp discussion).
func Timestamp(t time.Time) Value { return Value{Kind: KindTimestamp, Int: t.Unix()} }

// TimestampUnix returns a TIMESTAMP value from epoch seconds.
func TimestampUnix(sec int64) Value { return Value{Kind: KindTimestamp, Int: sec} }

// Null returns a NULL value of the given kind.
func Null(k Kind) Value { return Value{Kind: k, Null: true} }

// IsNumeric reports whether the value kind stores into Value.Int.
func (v Value) IsNumeric() bool {
	switch v.Kind {
	case KindInt64, KindInt32, KindInt16, KindInt8, KindBool, KindTimestamp:
		return true
	}
	return false
}

// AsTime converts a TIMESTAMP value to time.Time (UTC).
func (v Value) AsTime() time.Time { return time.Unix(v.Int, 0).UTC() }

// Equal reports deep equality of two values, including kind and nullness.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.Kind {
	case KindFloat64:
		return v.Float == o.Float
	case KindChar, KindString:
		return v.Str == o.Str
	case KindBytes:
		return bytes.Equal(v.Raw, o.Raw)
	default:
		return v.Int == o.Int
	}
}

// Compare orders two values of the same kind: -1, 0, or +1. NULL sorts
// before every non-NULL value. Comparing different kinds panics; the
// caller (B+Tree, sorter) is responsible for schema agreement.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		panic(fmt.Sprintf("tuple: compare of mismatched kinds %v and %v", v.Kind, o.Kind))
	}
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	switch v.Kind {
	case KindFloat64:
		switch {
		case v.Float < o.Float:
			return -1
		case v.Float > o.Float:
			return 1
		}
		return 0
	case KindChar, KindString:
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		}
		return 0
	case KindBytes:
		return bytes.Compare(v.Raw, o.Raw)
	default:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	}
}

// String renders the value for debugging.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindFloat64:
		return fmt.Sprintf("%g", v.Float)
	case KindChar, KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.Raw)
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindTimestamp:
		return v.AsTime().Format(time.RFC3339)
	default:
		return fmt.Sprintf("%d", v.Int)
	}
}

// Row is an ordered list of values matching a schema.
type Row []Value

// Equal reports deep equality of two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the row (Bytes values are copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if v.Kind == KindBytes && v.Raw != nil {
			v.Raw = append([]byte(nil), v.Raw...)
		}
		out[i] = v
	}
	return out
}
