package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Row wire format ("declared" physical layout):
//
//	null bitmap   ceil(nFields/8) bytes, bit i set = field i is NULL
//	fixed section every fixed-width field at its schema offset
//	              (NULL fields still occupy their slot, zeroed)
//	var section   for each variable-length field in schema order:
//	              uvarint length + raw bytes (omitted when NULL)
//
// The fixed-at-offset layout lets point queries decode a single field
// without touching the rest of the row; DecodeField exploits this.

// Encode appends the row's encoding to dst and returns the extended
// slice. The row must match the schema exactly.
func Encode(s *Schema, r Row, dst []byte) ([]byte, error) {
	if len(r) != s.NumFields() {
		return nil, fmt.Errorf("tuple: row has %d values, schema has %d fields", len(r), s.NumFields())
	}
	bitmapLen := (s.NumFields() + 7) / 8
	start := len(dst)
	dst = append(dst, make([]byte, bitmapLen+s.FixedWidth())...)
	bitmap := dst[start : start+bitmapLen]
	off := start + bitmapLen
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		v := r[i]
		if v.Kind != f.Kind {
			return nil, fmt.Errorf("tuple: field %q: value kind %v does not match declared %v", f.Name, v.Kind, f.Kind)
		}
		if v.Null {
			bitmap[i/8] |= 1 << (i % 8)
		}
		switch f.Kind {
		case KindInt64, KindTimestamp:
			binary.LittleEndian.PutUint64(dst[off:], uint64(v.Int))
			off += 8
		case KindFloat64:
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v.Float))
			off += 8
		case KindInt32:
			if !v.Null && (v.Int > math.MaxInt32 || v.Int < math.MinInt32) {
				return nil, fmt.Errorf("tuple: field %q: %d overflows INT", f.Name, v.Int)
			}
			binary.LittleEndian.PutUint32(dst[off:], uint32(int32(v.Int)))
			off += 4
		case KindInt16:
			if !v.Null && (v.Int > math.MaxInt16 || v.Int < math.MinInt16) {
				return nil, fmt.Errorf("tuple: field %q: %d overflows SMALLINT", f.Name, v.Int)
			}
			binary.LittleEndian.PutUint16(dst[off:], uint16(int16(v.Int)))
			off += 2
		case KindInt8:
			if !v.Null && (v.Int > math.MaxInt8 || v.Int < math.MinInt8) {
				return nil, fmt.Errorf("tuple: field %q: %d overflows TINYINT", f.Name, v.Int)
			}
			dst[off] = byte(int8(v.Int))
			off++
		case KindBool:
			if v.Int != 0 {
				dst[off] = 1
			}
			off++
		case KindChar:
			if len(v.Str) > f.Size {
				return nil, fmt.Errorf("tuple: field %q: value %d bytes exceeds CHAR(%d)", f.Name, len(v.Str), f.Size)
			}
			copy(dst[off:off+f.Size], v.Str)
			off += f.Size
		case KindString, KindBytes:
			// handled in the var section below
		}
	}
	for _, i := range s.varIdx {
		f := s.Field(i)
		v := r[i]
		if v.Null {
			continue
		}
		var raw []byte
		if f.Kind == KindString {
			raw = []byte(v.Str)
		} else {
			raw = v.Raw
		}
		if f.Size > 0 && len(raw) > f.Size {
			return nil, fmt.Errorf("tuple: field %q: value %d bytes exceeds declared max %d", f.Name, len(raw), f.Size)
		}
		dst = binary.AppendUvarint(dst, uint64(len(raw)))
		dst = append(dst, raw...)
	}
	return dst, nil
}

// Decode parses an encoded row. It returns the row and the number of
// bytes consumed, so callers can decode rows packed back to back.
func Decode(s *Schema, data []byte) (Row, int, error) {
	return DecodeInto(nil, s, data)
}

// DecodeInto is Decode writing into dst when its capacity suffices, so
// scans that decode one row per record reuse a single Row's backing
// array instead of allocating per row. The returned row may still be a
// fresh slice when dst was too small; string and bytes values are
// copied out of data either way (the result never aliases the page).
func DecodeInto(dst Row, s *Schema, data []byte) (Row, int, error) {
	bitmapLen := (s.NumFields() + 7) / 8
	if len(data) < bitmapLen+s.FixedWidth() {
		return nil, 0, fmt.Errorf("tuple: row truncated: %d bytes, need at least %d", len(data), bitmapLen+s.FixedWidth())
	}
	bitmap := data[:bitmapLen]
	off := bitmapLen
	var r Row
	if cap(dst) >= s.NumFields() {
		r = dst[:s.NumFields()]
	} else {
		r = make(Row, s.NumFields())
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		null := bitmap[i/8]&(1<<(i%8)) != 0
		v := Value{Kind: f.Kind, Null: null}
		switch f.Kind {
		case KindInt64, KindTimestamp:
			v.Int = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		case KindFloat64:
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		case KindInt32:
			v.Int = int64(int32(binary.LittleEndian.Uint32(data[off:])))
			off += 4
		case KindInt16:
			v.Int = int64(int16(binary.LittleEndian.Uint16(data[off:])))
			off += 2
		case KindInt8:
			v.Int = int64(int8(data[off]))
			off++
		case KindBool:
			if data[off] != 0 {
				v.Int = 1
			}
			off++
		case KindChar:
			v.Str = trimCharPadding(data[off : off+f.Size])
			off += f.Size
		}
		if null {
			// Zero out any payload decoded from the zeroed slot.
			r[i] = Value{Kind: f.Kind, Null: true}
			continue
		}
		r[i] = v
	}
	for _, i := range s.varIdx {
		if r[i].Null {
			continue
		}
		f := s.Field(i)
		n, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("tuple: field %q: bad varint length", f.Name)
		}
		off += sz
		if uint64(len(data)-off) < n {
			return nil, 0, fmt.Errorf("tuple: field %q: truncated var data", f.Name)
		}
		raw := data[off : off+int(n)]
		off += int(n)
		if f.Kind == KindString {
			r[i].Str = string(raw)
		} else {
			r[i].Raw = append([]byte(nil), raw...)
		}
	}
	return r, off, nil
}

// DecodeField decodes only the idx-th field of an encoded row. For
// fixed-width fields this touches just the null bitmap and the field's
// slot; variable-length fields require walking the var section.
func DecodeField(s *Schema, data []byte, idx int) (Value, error) {
	if idx < 0 || idx >= s.NumFields() {
		return Value{}, fmt.Errorf("tuple: field index %d out of range", idx)
	}
	bitmapLen := (s.NumFields() + 7) / 8
	if len(data) < bitmapLen+s.FixedWidth() {
		return Value{}, fmt.Errorf("tuple: row truncated")
	}
	f := s.Field(idx)
	if data[idx/8]&(1<<(idx%8)) != 0 {
		return Value{Kind: f.Kind, Null: true}, nil
	}
	if w := f.width(); w >= 0 {
		off := bitmapLen
		for i := 0; i < idx; i++ {
			if fw := s.Field(i).width(); fw >= 0 {
				off += fw
			}
		}
		v := Value{Kind: f.Kind}
		switch f.Kind {
		case KindInt64, KindTimestamp:
			v.Int = int64(binary.LittleEndian.Uint64(data[off:]))
		case KindFloat64:
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		case KindInt32:
			v.Int = int64(int32(binary.LittleEndian.Uint32(data[off:])))
		case KindInt16:
			v.Int = int64(int16(binary.LittleEndian.Uint16(data[off:])))
		case KindInt8:
			v.Int = int64(int8(data[off]))
		case KindBool:
			if data[off] != 0 {
				v.Int = 1
			}
		case KindChar:
			v.Str = trimCharPadding(data[off : off+f.Size])
		}
		return v, nil
	}
	// Variable-length: walk preceding non-NULL var fields.
	off := bitmapLen + s.FixedWidth()
	for _, vi := range s.varIdx {
		if vi > idx {
			break
		}
		if data[vi/8]&(1<<(vi%8)) != 0 {
			continue // NULL: not present in var section
		}
		n, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return Value{}, fmt.Errorf("tuple: bad varint length in var section")
		}
		off += sz
		if uint64(len(data)-off) < n {
			return Value{}, fmt.Errorf("tuple: truncated var data")
		}
		if vi == idx {
			raw := data[off : off+int(n)]
			if f.Kind == KindString {
				return Value{Kind: f.Kind, Str: string(raw)}, nil
			}
			return Value{Kind: f.Kind, Raw: append([]byte(nil), raw...)}, nil
		}
		off += int(n)
	}
	return Value{}, fmt.Errorf("tuple: var field %d not found", idx)
}

// EncodedSize returns the number of bytes Encode will produce for the
// row without allocating.
func EncodedSize(s *Schema, r Row) (int, error) {
	if len(r) != s.NumFields() {
		return 0, fmt.Errorf("tuple: row has %d values, schema has %d fields", len(r), s.NumFields())
	}
	n := (s.NumFields()+7)/8 + s.FixedWidth()
	for _, i := range s.varIdx {
		v := r[i]
		if v.Null {
			continue
		}
		var l int
		if s.Field(i).Kind == KindString {
			l = len(v.Str)
		} else {
			l = len(v.Raw)
		}
		n += uvarintLen(uint64(l)) + l
	}
	return n, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// trimCharPadding strips trailing zero padding from a CHAR slot.
func trimCharPadding(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}
