package tuple

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyEncodeOrderPreservingInts(t *testing.T) {
	vals := []int64{-1 << 62, -100, -1, 0, 1, 7, 1 << 40, 1<<62 - 1}
	var prev []byte
	for _, v := range vals {
		k := MustEncodeKey(Int64(v))
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("encoding not order preserving at %d", v)
		}
		prev = k
	}
}

func TestKeyEncodeOrderPreservingFloats(t *testing.T) {
	vals := []float64{-1e300, -3.5, -0.0001, 0, 0.0001, 1, 2.5, 1e300}
	var prev []byte
	for _, v := range vals {
		k := MustEncodeKey(Float64(v))
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("encoding not order preserving at %g", v)
		}
		prev = k
	}
}

func TestKeyEncodeStringsWithZeros(t *testing.T) {
	// "ab" < "ab\x00" < "ab\x00c" < "abc"
	vals := []string{"ab", "ab\x00", "ab\x00c", "abc"}
	var prev []byte
	for _, v := range vals {
		k := MustEncodeKey(String(v))
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("encoding not order preserving at %q", v)
		}
		prev = k
	}
}

func TestKeyEncodeNullSortsFirst(t *testing.T) {
	null := MustEncodeKey(Null(KindInt64))
	small := MustEncodeKey(Int64(-1 << 62))
	if bytes.Compare(null, small) >= 0 {
		t.Error("NULL should sort before the smallest value")
	}
}

func TestKeyEncodeComposite(t *testing.T) {
	// (1, "b") < (2, "a"): the first field dominates.
	k1 := MustEncodeKey(Int32(1), String("b"))
	k2 := MustEncodeKey(Int32(2), String("a"))
	if bytes.Compare(k1, k2) >= 0 {
		t.Error("composite ordering wrong")
	}
	// (1, "a") < (1, "b"): tie broken by the second field.
	k3 := MustEncodeKey(Int32(1), String("a"))
	if bytes.Compare(k3, k1) >= 0 {
		t.Error("composite tie-break wrong")
	}
}

func TestKeyDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Int64(-5), Int32(9), Int16(-3), Int8(100), Bool(true),
		Float64(-2.5), String("hi\x00there"), Char("ab"),
		Bytes([]byte{0, 0xFF, 0}), TimestampUnix(999),
	}
	kinds := make([]Kind, len(vals))
	for i, v := range vals {
		kinds[i] = v.Kind
	}
	enc, err := EncodeKey(nil, vals...)
	if err != nil {
		t.Fatalf("EncodeKey: %v", err)
	}
	dec, err := DecodeKey(enc, kinds...)
	if err != nil {
		t.Fatalf("DecodeKey: %v", err)
	}
	for i := range vals {
		want := vals[i]
		if want.Kind == KindChar {
			// Char round-trips through the string encoding.
			want.Kind = KindChar
		}
		if !dec[i].Equal(want) {
			t.Errorf("field %d: got %v, want %v", i, dec[i], vals[i])
		}
	}
}

func TestPropertyKeyOrderMatchesValueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(a, b int64, sa, sb string) bool {
		va := []Value{Int64(a), String(sa)}
		vb := []Value{Int64(b), String(sb)}
		ka := MustEncodeKey(va...)
		kb := MustEncodeKey(vb...)
		// Compare values lexicographically.
		cmp := va[0].Compare(vb[0])
		if cmp == 0 {
			cmp = va[1].Compare(vb[1])
		}
		return bytes.Compare(ka, kb) == cmp
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func(i int64, s string, bs []byte, fl float64) bool {
		vals := []Value{Int64(i), String(s), Bytes(bs), Float64(fl)}
		enc, err := EncodeKey(nil, vals...)
		if err != nil {
			return false
		}
		dec, err := DecodeKey(enc, KindInt64, KindString, KindBytes, KindFloat64)
		if err != nil {
			return false
		}
		for j := range vals {
			want := vals[j]
			got := dec[j]
			if want.Kind == KindBytes && len(want.Raw) == 0 {
				// nil and empty both decode as empty.
				if len(got.Raw) != 0 {
					return false
				}
				continue
			}
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareNullOrdering(t *testing.T) {
	n := Null(KindInt64)
	v := Int64(0)
	if n.Compare(v) != -1 || v.Compare(n) != 1 || n.Compare(Null(KindInt64)) != 0 {
		t.Error("NULL comparison ordering wrong")
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if Int64(1).Equal(Int32(1)) {
		t.Error("values of different kinds must not be equal")
	}
	if !Bytes([]byte{1, 2}).Equal(Bytes([]byte{1, 2})) {
		t.Error("equal byte values should compare equal")
	}
}
