// Package tuple defines schemas, values, the row codec, and the
// order-preserving key encoding used by the B+Tree.
//
// A Schema records the *declared* types of a table's fields. Following
// the paper's Section 4.1, declared types are treated as hints: the
// encoding analyzer (internal/encoding) may choose a narrower physical
// representation. This package implements the straightforward "declared"
// physical layout; the bit-packed optimized layout lives in
// internal/encoding.
package tuple

import (
	"fmt"
	"strings"
)

// Kind enumerates declared field types.
type Kind uint8

// Declared field kinds.
const (
	KindInvalid   Kind = iota
	KindInt64          // 8-byte signed integer
	KindInt32          // 4-byte signed integer
	KindInt16          // 2-byte signed integer
	KindInt8           // 1-byte signed integer
	KindBool           // 1 byte
	KindFloat64        // 8-byte IEEE 754
	KindChar           // fixed-length byte string, padded with zeros
	KindString         // variable-length string
	KindBytes          // variable-length byte string
	KindTimestamp      // 8-byte seconds-since-epoch
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "BIGINT"
	case KindInt32:
		return "INT"
	case KindInt16:
		return "SMALLINT"
	case KindInt8:
		return "TINYINT"
	case KindBool:
		return "BOOL"
	case KindFloat64:
		return "DOUBLE"
	case KindChar:
		return "CHAR"
	case KindString:
		return "VARCHAR"
	case KindBytes:
		return "VARBINARY"
	case KindTimestamp:
		return "TIMESTAMP"
	default:
		return "INVALID"
	}
}

// FixedSize returns the number of bytes a value of this kind occupies in
// the fixed section of a row, or -1 for variable-length kinds. Char
// reports -1 here because its width comes from the field definition.
func (k Kind) FixedSize() int {
	switch k {
	case KindInt64, KindFloat64, KindTimestamp:
		return 8
	case KindInt32:
		return 4
	case KindInt16:
		return 2
	case KindInt8, KindBool:
		return 1
	default:
		return -1
	}
}

// Field is one column of a schema.
type Field struct {
	Name string
	Kind Kind
	// Size is the fixed byte width for KindChar and the declared maximum
	// for KindString/KindBytes (0 = unbounded). Ignored otherwise.
	Size int
}

// width returns the byte width of the field in the fixed section, or -1
// if the field is variable length.
func (f Field) width() int {
	if f.Kind == KindChar {
		return f.Size
	}
	return f.Kind.FixedSize()
}

// DeclaredBits returns the storage footprint, in bits, that the declared
// type reserves per value (the Section 4 "allocated" size). For
// variable-length kinds it returns 8×Size when a maximum is declared and
// 0 otherwise (unknown).
func (f Field) DeclaredBits() int {
	if w := f.width(); w >= 0 {
		return 8 * w
	}
	return 8 * f.Size
}

// Schema is an ordered list of fields.
type Schema struct {
	fields []Field
	byName map[string]int

	fixedWidth int   // total bytes of the fixed section
	varIdx     []int // indexes of variable-length fields, in order
}

// NewSchema builds a schema, validating field names and kinds.
func NewSchema(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("tuple: schema needs at least one field")
	}
	s := &Schema{
		fields: append([]Field(nil), fields...),
		byName: make(map[string]int, len(fields)),
	}
	for i, f := range s.fields {
		if f.Name == "" {
			return nil, fmt.Errorf("tuple: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate field name %q", f.Name)
		}
		switch f.Kind {
		case KindInt64, KindInt32, KindInt16, KindInt8, KindBool, KindFloat64, KindTimestamp:
		case KindChar:
			if f.Size <= 0 {
				return nil, fmt.Errorf("tuple: CHAR field %q needs positive size", f.Name)
			}
		case KindString, KindBytes:
			if f.Size < 0 {
				return nil, fmt.Errorf("tuple: field %q has negative size", f.Name)
			}
		default:
			return nil, fmt.Errorf("tuple: field %q has invalid kind", f.Name)
		}
		s.byName[f.Name] = i
		if w := f.width(); w >= 0 {
			s.fixedWidth += w
		} else {
			s.varIdx = append(s.varIdx, i)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and fixed
// built-in schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the position of the named field, or -1.
func (s *Schema) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// IsFixed reports whether every field has a fixed width.
func (s *Schema) IsFixed() bool { return len(s.varIdx) == 0 }

// FixedWidth returns the byte width of the fixed section of a row.
func (s *Schema) FixedWidth() int { return s.fixedWidth }

// Project returns a schema containing only the named fields, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, name := range names {
		i := s.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("tuple: no field %q in schema", name)
		}
		fields = append(fields, s.fields[i])
	}
	return NewSchema(fields...)
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
		if f.Kind == KindChar || ((f.Kind == KindString || f.Kind == KindBytes) && f.Size > 0) {
			fmt.Fprintf(&b, "(%d)", f.Size)
		}
	}
	b.WriteByte(')')
	return b.String()
}
