package tuple

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Order-preserving ("memcomparable") key encoding: bytes.Compare over
// two encoded keys agrees with lexicographic Value.Compare over the
// source values. The B+Tree stores and compares keys in this form, so
// composite keys (e.g. Wikipedia's (namespace, title) name_title index)
// need no schema at comparison time.
//
// Per-kind encodings:
//
//	ints/timestamps  8/4/2/1 bytes big-endian with the sign bit flipped
//	bool             1 byte
//	float64          IEEE bits; negative values bit-flipped, positive
//	                 values sign-flipped (standard total-order trick)
//	strings/bytes    0x00 escaped as 0x00 0xFF, terminated by 0x00 0x00
//
// NULL sorts first: each value is prefixed by 0x00 for NULL / 0x01 for
// non-NULL.

// EncodeKey appends the order-preserving encoding of vals to dst.
func EncodeKey(dst []byte, vals ...Value) ([]byte, error) {
	for _, v := range vals {
		if v.Null {
			dst = append(dst, 0x00)
			continue
		}
		dst = append(dst, 0x01)
		switch v.Kind {
		case KindInt64, KindTimestamp:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v.Int)^(1<<63))
			dst = append(dst, buf[:]...)
		case KindInt32:
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], uint32(int32(v.Int))^(1<<31))
			dst = append(dst, buf[:]...)
		case KindInt16:
			var buf [2]byte
			binary.BigEndian.PutUint16(buf[:], uint16(int16(v.Int))^(1<<15))
			dst = append(dst, buf[:]...)
		case KindInt8:
			dst = append(dst, byte(int8(v.Int))^0x80)
		case KindBool:
			if v.Int != 0 {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case KindFloat64:
			bits := math.Float64bits(v.Float)
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits ^= 1 << 63
			}
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], bits)
			dst = append(dst, buf[:]...)
		case KindChar, KindString:
			dst = appendEscapedString(dst, v.Str)
		case KindBytes:
			dst = appendEscapedBytes(dst, v.Raw)
		default:
			return nil, fmt.Errorf("tuple: cannot key-encode kind %v", v.Kind)
		}
	}
	return dst, nil
}

// MustEncodeKey is EncodeKey that panics on error, for keys built from
// trusted literals.
func MustEncodeKey(vals ...Value) []byte {
	k, err := EncodeKey(nil, vals...)
	if err != nil {
		panic(err)
	}
	return k
}

// appendEscapedString is appendEscapedBytes over a string, avoiding the
// []byte(s) copy the conversion would allocate (point-lookup keys are
// encoded on every lookup, so this is hot).
func appendEscapedString(dst []byte, s string) []byte {
	for {
		i := strings.IndexByte(s, 0x00)
		if i < 0 {
			dst = append(dst, s...)
			break
		}
		dst = append(dst, s[:i]...)
		dst = append(dst, 0x00, 0xFF)
		s = s[i+1:]
	}
	return append(dst, 0x00, 0x00)
}

func appendEscapedBytes(dst, raw []byte) []byte {
	// Bulk-copy between zero bytes: most strings contain none, making
	// this a straight append plus terminator.
	for {
		i := bytes.IndexByte(raw, 0x00)
		if i < 0 {
			dst = append(dst, raw...)
			break
		}
		dst = append(dst, raw[:i]...)
		dst = append(dst, 0x00, 0xFF)
		raw = raw[i+1:]
	}
	return append(dst, 0x00, 0x00)
}

// DecodeKey parses an encoded key back into values, given the kinds in
// order. It is the inverse of EncodeKey. Trailing bytes past the last
// kind are ignored (non-unique index entries carry a RID suffix).
func DecodeKey(data []byte, kinds ...Kind) ([]Value, error) {
	return DecodeKeyInto(nil, data, kinds...)
}

// DecodeKeyInto is DecodeKey appending into dst, so range scans that
// decode one key per row reuse a single Value slice. Fixed-width kinds
// decode without allocating; string kinds still allocate their Str.
func DecodeKeyInto(dst []Value, data []byte, kinds ...Kind) ([]Value, error) {
	vals := dst
	off := 0
	for _, k := range kinds {
		if off >= len(data) {
			return nil, fmt.Errorf("tuple: key truncated")
		}
		marker := data[off]
		off++
		if marker == 0x00 {
			vals = append(vals, Value{Kind: k, Null: true})
			continue
		}
		v := Value{Kind: k}
		switch k {
		case KindInt64, KindTimestamp:
			if len(data)-off < 8 {
				return nil, fmt.Errorf("tuple: key truncated")
			}
			v.Int = int64(binary.BigEndian.Uint64(data[off:]) ^ (1 << 63))
			off += 8
		case KindInt32:
			if len(data)-off < 4 {
				return nil, fmt.Errorf("tuple: key truncated")
			}
			v.Int = int64(int32(binary.BigEndian.Uint32(data[off:]) ^ (1 << 31)))
			off += 4
		case KindInt16:
			if len(data)-off < 2 {
				return nil, fmt.Errorf("tuple: key truncated")
			}
			v.Int = int64(int16(binary.BigEndian.Uint16(data[off:]) ^ (1 << 15)))
			off += 2
		case KindInt8:
			v.Int = int64(int8(data[off] ^ 0x80))
			off++
		case KindBool:
			if data[off] != 0 {
				v.Int = 1
			}
			off++
		case KindFloat64:
			if len(data)-off < 8 {
				return nil, fmt.Errorf("tuple: key truncated")
			}
			bits := binary.BigEndian.Uint64(data[off:])
			if bits&(1<<63) != 0 {
				bits ^= 1 << 63
			} else {
				bits = ^bits
			}
			v.Float = math.Float64frombits(bits)
			off += 8
		case KindChar, KindString, KindBytes:
			raw, n, err := decodeEscapedBytes(data[off:])
			if err != nil {
				return nil, err
			}
			off += n
			if k == KindBytes {
				v.Raw = raw
			} else {
				v.Str = string(raw)
			}
		default:
			return nil, fmt.Errorf("tuple: cannot key-decode kind %v", k)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func decodeEscapedBytes(data []byte) ([]byte, int, error) {
	var out []byte
	i := 0
	for i < len(data) {
		b := data[i]
		if b != 0x00 {
			out = append(out, b)
			i++
			continue
		}
		if i+1 >= len(data) {
			return nil, 0, fmt.Errorf("tuple: key string truncated mid-escape")
		}
		switch data[i+1] {
		case 0x00:
			return out, i + 2, nil
		case 0xFF:
			out = append(out, 0x00)
			i += 2
		default:
			return nil, 0, fmt.Errorf("tuple: invalid key string escape 0x00 0x%02x", data[i+1])
		}
	}
	return nil, 0, fmt.Errorf("tuple: unterminated key string")
}
