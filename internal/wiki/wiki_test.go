package wiki

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/tuple"
)

func TestGeneratorDeterminism(t *testing.T) {
	cfg := Config{Pages: 100, RevisionsPerPage: 5, Alpha: 0.5, Seed: 7}
	r1, l1 := NewGenerator(cfg).Revisions()
	r2, l2 := NewGenerator(cfg).Revisions()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if !r1[i].Row.Equal(r2[i].Row) {
			t.Fatalf("row %d differs between runs", i)
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("latest index %d differs", i)
		}
	}
}

func TestRevisionsInvariants(t *testing.T) {
	cfg := Config{Pages: 200, RevisionsPerPage: 8, Alpha: 0.5, Seed: 3}
	revs, latest := NewGenerator(cfg).Revisions()
	if len(latest) != cfg.Pages {
		t.Fatalf("latest has %d entries, want %d", len(latest), cfg.Pages)
	}
	// Exactly one Latest per page, and latestOfPage points at it.
	latestCount := map[int]int{}
	for i, r := range revs {
		if r.Latest {
			latestCount[r.PageIdx]++
			if latest[r.PageIdx] != i {
				t.Fatalf("latestOfPage[%d] = %d, but revision %d is marked latest", r.PageIdx, latest[r.PageIdx], i)
			}
		}
		if r.Row[0].Int != int64(i+1) {
			t.Fatalf("rev_id not sequential at %d", i)
		}
	}
	for p := 0; p < cfg.Pages; p++ {
		if latestCount[p] != 1 {
			t.Fatalf("page %d has %d latest revisions", p, latestCount[p])
		}
	}
	// A page's latest revision is its last in table order.
	lastSeen := map[int]int{}
	for i, r := range revs {
		lastSeen[r.PageIdx] = i
	}
	for p, idx := range latest {
		if lastSeen[p] != idx {
			t.Fatalf("page %d: latest at %d but last occurrence at %d", p, idx, lastSeen[p])
		}
	}
	// Hot fraction ≈ pages/revisions (the paper's ~5% for mean 20).
	frac := float64(cfg.Pages) / float64(len(revs))
	if frac < 0.05 || frac > 0.30 {
		t.Errorf("hot fraction %.3f implausible for mean history %d", frac, cfg.RevisionsPerPage)
	}
}

func TestRevisionsScattered(t *testing.T) {
	cfg := Config{Pages: 500, RevisionsPerPage: 20, Alpha: 0.5, Seed: 5}
	revs, latest := NewGenerator(cfg).Revisions()
	// Hot tuples must be spread out, not bunched at the end: measure the
	// fraction of hot tuples in the last 10% of the table — if histories
	// were contiguous it would be ~100%; interleaved it is ~10-40%
	// (biased up because the last revision of long histories drifts
	// late).
	tail := len(revs) * 9 / 10
	inTail := 0
	for _, idx := range latest {
		if idx >= tail {
			inTail++
		}
	}
	frac := float64(inTail) / float64(len(latest))
	if frac > 0.6 {
		t.Errorf("%.0f%% of hot tuples in the last 10%% of the table; not scattered", frac*100)
	}
}

func TestRowsMatchSchemas(t *testing.T) {
	g := NewGenerator(Config{Pages: 50, RevisionsPerPage: 3, Alpha: 0.5, Seed: 9})
	revs, _ := g.Revisions()
	for i, r := range revs[:10] {
		if _, err := tuple.Encode(RevisionSchema(), r.Row, nil); err != nil {
			t.Fatalf("revision row %d does not match schema: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := tuple.Encode(PageSchema(), g.PageRow(i, 1), nil); err != nil {
			t.Fatalf("page row %d: %v", i, err)
		}
		if _, err := tuple.Encode(CarTelSchema(), g.CarTelRow(i), nil); err != nil {
			t.Fatalf("cartel row %d: %v", i, err)
		}
		if _, err := tuple.Encode(TextSchema(), g.TextRow(i), nil); err != nil {
			t.Fatalf("text row %d: %v", i, err)
		}
	}
}

func TestTimestamp14Parseable(t *testing.T) {
	g := NewGenerator(Config{Pages: 20, RevisionsPerPage: 3, Alpha: 0.5, Seed: 11})
	revs, _ := g.Revisions()
	for _, r := range revs {
		ts := r.Row[6].Str
		if _, ok := encoding.ParseTS14(ts); !ok {
			t.Fatalf("generated timestamp %q not parseable", ts)
		}
	}
}

func TestTraces(t *testing.T) {
	cfg := Config{Pages: 300, RevisionsPerPage: 10, Alpha: 0.5, Seed: 13}
	g := NewGenerator(cfg)
	revs, latest := g.Revisions()
	trace := g.RevisionTrace(10000, 0.999, revs, latest)
	hotSet := map[int]bool{}
	for _, idx := range latest {
		hotSet[idx] = true
	}
	hotHits := 0
	for _, idx := range trace {
		if idx < 0 || idx >= len(revs) {
			t.Fatalf("trace index %d out of range", idx)
		}
		if hotSet[idx] {
			hotHits++
		}
	}
	frac := float64(hotHits) / float64(len(trace))
	if frac < 0.99 {
		t.Errorf("hot traffic fraction %.3f, want ≈0.999", frac)
	}
	pt := g.PageLookupTrace(1000)
	for _, p := range pt {
		if p < 0 || p >= cfg.Pages {
			t.Fatalf("page trace index %d out of range", p)
		}
	}
}

func TestCachedPageFieldsExist(t *testing.T) {
	s := PageSchema()
	for _, f := range CachedPageFields() {
		if s.Index(f) < 0 {
			t.Errorf("cached field %q not in page schema", f)
		}
	}
}
