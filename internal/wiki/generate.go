package wiki

import (
	"fmt"
	"math/rand"

	"repro/internal/encoding"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Generator produces deterministic synthetic Wikipedia rows and traces.
type Generator struct {
	rng *rand.Rand
	cfg Config
}

// Config sizes the synthetic database.
type Config struct {
	// Pages is the number of articles.
	Pages int
	// RevisionsPerPage is the mean length of each article's history.
	// Actual counts are geometric-ish around this mean, so hot tuples
	// (the latest revision per page) are ~1/RevisionsPerPage of the
	// revision table — the paper's "5%" corresponds to a mean of 20.
	RevisionsPerPage int
	// Alpha is the zipf skew of page popularity (Figure 2 uses 0.5).
	Alpha float64
	// Seed fixes all randomness.
	Seed int64
}

// DefaultConfig matches the paper's published ratios at laptop scale.
func DefaultConfig() Config {
	return Config{Pages: 2000, RevisionsPerPage: 20, Alpha: 0.5, Seed: 1}
}

// NewGenerator builds a generator. It panics on nonsensical configs
// (programmer error in experiment setup).
func NewGenerator(cfg Config) *Generator {
	if cfg.Pages <= 0 || cfg.RevisionsPerPage <= 0 {
		panic(fmt.Sprintf("wiki: bad config %+v", cfg))
	}
	return &Generator{rng: workload.NewRand(cfg.Seed), cfg: cfg}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// PageTitle returns the deterministic title of page i.
func PageTitle(i int) string { return fmt.Sprintf("Article_%07d", i) }

// PageRow builds the page-table row for page i. latestRev is filled by
// the revision generator; callers building only the page table can pass
// any value.
func (g *Generator) PageRow(i int, latestRev int64) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i + 1)),
		tuple.Int32(int32(NamespaceOf(i))),
		tuple.String(PageTitle(i)),
		tuple.Bool(i%29 == 0), // ~3% redirects
		tuple.Int64(latestRev),
		tuple.Int32(int32(500 + g.rng.Intn(60000))),
		tuple.TimestampUnix(1293840000 + int64(g.rng.Intn(5_000_000))),
		tuple.String(""),
	}
}

// NamespaceOf assigns ~92% of pages to the main namespace (0), the rest
// to talk/user namespaces, mirroring Wikipedia's distribution. Exported
// so workloads can rebuild the (namespace, title) key of page i.
func NamespaceOf(i int) int {
	switch {
	case i%25 == 7:
		return 1 // Talk
	case i%50 == 13:
		return 2 // User
	default:
		return 0
	}
}

// Revision is one generated revision-table row plus its metadata.
type Revision struct {
	Row tuple.Row
	// PageIdx is the article this revision belongs to.
	PageIdx int
	// Latest marks the hot tuples: the newest revision of each page.
	Latest bool
}

// Revisions generates the full revision table in timestamp order —
// crucially, *interleaved across pages* the way MediaWiki writes them,
// so the latest revisions end up scattered across the table exactly as
// Section 3.1 describes. The i-th element of the returned latest slice
// is the index (within the returned revisions) of page i's hot tuple.
func (g *Generator) Revisions() (revs []Revision, latestOfPage []int) {
	cfg := g.cfg
	// Draw per-page history lengths: 1 + geometric with the configured
	// mean, capped to keep the table size predictable.
	counts := make([]int, cfg.Pages)
	total := 0
	for i := range counts {
		n := 1 + g.rng.Intn(2*cfg.RevisionsPerPage-1)
		counts[i] = n
		total += n
	}
	// Interleave: repeatedly pick a random page that still has pending
	// revisions and emit its next one. This scatters each page's history
	// (and in particular its final, hot revision) across the table.
	remaining := append([]int(nil), counts...)
	pending := make([]int, 0, cfg.Pages)
	for i := range remaining {
		pending = append(pending, i)
	}
	revs = make([]Revision, 0, total)
	latestOfPage = make([]int, cfg.Pages)
	ts := int64(1262304000) // 2010-01-01
	revID := int64(0)
	for len(pending) > 0 {
		pi := g.rng.Intn(len(pending))
		page := pending[pi]
		remaining[page]--
		last := remaining[page] == 0
		if last {
			pending[pi] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
		revID++
		ts += int64(1 + g.rng.Intn(30))
		row := tuple.Row{
			tuple.Int64(revID),
			tuple.Int64(int64(page + 1)),
			tuple.Int64(revID + 1_000_000),
			tuple.String(commentText(g.rng)),
			tuple.Int64(int64(1 + g.rng.Intn(5000))),
			tuple.String(fmt.Sprintf("User_%04d", g.rng.Intn(5000))),
			tuple.Char(timestamp14(ts)),
			tuple.Int64(int64(g.rng.Intn(2))), // 0/1 in a BIGINT
			tuple.Int64(int64(g.rng.Intn(4))), // 0..3 in a BIGINT
			tuple.Int64(int64(g.rng.Intn(60000))),
			tuple.Int64(maxInt64(revID-1, 0)),
		}
		idx := len(revs)
		revs = append(revs, Revision{Row: row, PageIdx: page, Latest: last})
		if last {
			latestOfPage[page] = idx
		}
	}
	return revs, latestOfPage
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// timestamp14 renders epoch seconds as MediaWiki's 14-char string via
// the canonical codec in internal/encoding, so the Section 4 packed
// codec can round-trip generated timestamps exactly.
func timestamp14(epoch int64) string { return encoding.FormatTS14(epoch) }

var commentWords = []string{
	"fix typo", "revert vandalism", "add citation", "update infobox",
	"copyedit", "expand section", "merge", "cleanup", "sp", "rm spam",
}

// commentText mixes canned edit summaries with free text so the column
// has realistic cardinality (the §4.1 analyzer must not find a tiny
// dictionary where real data wouldn't have one).
func commentText(rng *rand.Rand) string {
	base := commentWords[rng.Intn(len(commentWords))]
	if rng.Intn(3) == 0 {
		return base
	}
	return fmt.Sprintf("%s in section %d, ref %d", base, rng.Intn(40), rng.Intn(100000))
}

// TextRow generates one text-table row: mostly-unique article prose.
func (g *Generator) TextRow(i int) tuple.Row {
	var b []byte
	n := 200 + g.rng.Intn(600)
	for len(b) < n {
		w := commentWords[g.rng.Intn(len(commentWords))]
		b = append(b, w...)
		b = append(b, ' ')
		b = append(b, byte('a'+g.rng.Intn(26)), byte('0'+g.rng.Intn(10)), ' ')
	}
	return tuple.Row{
		tuple.Int64(int64(i + 1)),
		tuple.String(string(b)),
		tuple.String("utf-8,gzip"),
	}
}

// CarTelRow generates one synthetic telemetry row.
func (g *Generator) CarTelRow(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i + 1)),
		tuple.Int64(int64(1 + g.rng.Intn(40))),
		tuple.Int64(int64(1 + g.rng.Intn(8000))),
		tuple.Float64(42.3 + g.rng.Float64()*0.4),
		tuple.Float64(-71.2 + g.rng.Float64()*0.4),
		tuple.Int64(int64(g.rng.Intn(201))),
		tuple.Int64(int64(g.rng.Intn(360))),
		tuple.Int64(int64(g.rng.Intn(51))),
		tuple.Int64(int64(g.rng.Intn(2))),
		tuple.Char(timestamp14(1262304000 + int64(i))),
	}
}

// PageLookupTrace returns n (namespace, title) lookup targets drawn
// zipfian over pages: the Figure 2 query workload against name_title.
func (g *Generator) PageLookupTrace(n int) []int {
	zipf := workload.NewZipf(g.rng, g.cfg.Pages, g.cfg.Alpha)
	out := make([]int, n)
	for i := range out {
		out[i] = zipf.Next()
	}
	return out
}

// RevisionTrace returns n revision accesses where hotProb of them hit
// the latest revision of a zipf-popular page and the rest hit a random
// historical revision — the Section 3.1 access pattern (hotProb 0.999).
// Entries are indexes into the slice returned by Revisions.
func (g *Generator) RevisionTrace(n int, hotProb float64, revs []Revision, latestOfPage []int) []int {
	zipf := workload.NewZipf(g.rng, g.cfg.Pages, g.cfg.Alpha)
	out := make([]int, n)
	for i := range out {
		if g.rng.Float64() < hotProb {
			out[i] = latestOfPage[zipf.Next()]
		} else {
			out[i] = g.rng.Intn(len(revs))
		}
	}
	return out
}
