// Package wiki generates the synthetic Wikipedia database and workload
// traces used throughout the experiments.
//
// The paper evaluates on Wikipedia's real page/revision tables and a 2h
// Apache log trace, which we do not have. The generator reproduces the
// statistics the paper states explicitly, which are the only properties
// the experiments depend on:
//
//   - page lookups are zipfian over (namespace, title) — Figure 2;
//   - 99.9% of revision accesses go to the ~5% of tuples that are the
//     latest revision of some page — Section 3.1;
//   - those hot revision tuples are scattered roughly one per data page
//     (the paper's "as little as 2% utilization") because revisions
//     append in time order while popularity is orthogonal;
//   - the revision table carries deliberate encoding waste (Section 4.1):
//     a CHAR(14) string timestamp that fits a 4-byte epoch, BIGINT
//     columns holding tiny value ranges, and a boolean stored in 8 bytes.
package wiki

import "repro/internal/tuple"

// PageSchema is the page table: the name_title index keys
// (namespace, title) and the four small fields Section 2.1.4 caches.
func PageSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "page_id", Kind: tuple.KindInt64},
		tuple.Field{Name: "page_namespace", Kind: tuple.KindInt32},
		tuple.Field{Name: "page_title", Kind: tuple.KindString, Size: 64},
		tuple.Field{Name: "page_is_redirect", Kind: tuple.KindBool},
		tuple.Field{Name: "page_latest", Kind: tuple.KindInt64},
		tuple.Field{Name: "page_len", Kind: tuple.KindInt32},
		tuple.Field{Name: "page_touched", Kind: tuple.KindTimestamp},
		tuple.Field{Name: "page_restrictions", Kind: tuple.KindString, Size: 32},
	)
}

// CachedPageFields are the four fields the paper caches in the
// name_title index ("projects up to 4 additional fields").
func CachedPageFields() []string {
	return []string{"page_is_redirect", "page_latest", "page_len", "page_touched"}
}

// RevisionSchema is the revision table with MediaWiki's (wasteful)
// declared types, preserved deliberately so the Section 4 analyzer has
// real waste to find: rev_timestamp is the infamous CHAR(14) string
// ("20110104123456"), rev_minor_edit and rev_deleted are BIGINTs that
// hold 0/1 and 0..3, and rev_len never exceeds a few MB yet gets 8
// bytes.
func RevisionSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "rev_id", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_page", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_text_id", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_comment", Kind: tuple.KindString, Size: 255},
		tuple.Field{Name: "rev_user", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_user_text", Kind: tuple.KindString, Size: 64},
		tuple.Field{Name: "rev_timestamp", Kind: tuple.KindChar, Size: 14},
		tuple.Field{Name: "rev_minor_edit", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_deleted", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_len", Kind: tuple.KindInt64},
		tuple.Field{Name: "rev_parent_id", Kind: tuple.KindInt64},
	)
}

// TextSchema is MediaWiki's text table: revision content blobs. Nearly
// all of its bytes are the article text itself, which no narrower
// declared type can shrink — this is the low end of the paper's 16–83%
// waste band, and the reason the aggregate lands near 20% even though
// metadata tables waste far more.
func TextSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "old_id", Kind: tuple.KindInt64},
		tuple.Field{Name: "old_text", Kind: tuple.KindString},
		tuple.Field{Name: "old_flags", Kind: tuple.KindString, Size: 30},
	)
}

// CarTelSchema models the CarTel telemetry table the paper measured at
// 45% index fill and heavy encoding waste: GPS fixes with small-domain
// values declared as BIGINTs and another string timestamp.
func CarTelSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "fix_id", Kind: tuple.KindInt64},
		tuple.Field{Name: "node_id", Kind: tuple.KindInt64}, // dozens of cars
		tuple.Field{Name: "trip_id", Kind: tuple.KindInt64}, // thousands of trips
		tuple.Field{Name: "lat", Kind: tuple.KindFloat64},
		tuple.Field{Name: "lon", Kind: tuple.KindFloat64},
		tuple.Field{Name: "speed_kmh", Kind: tuple.KindInt64}, // 0..200
		tuple.Field{Name: "heading", Kind: tuple.KindInt64},   // 0..359
		tuple.Field{Name: "hdop", Kind: tuple.KindInt64},      // 0..50
		tuple.Field{Name: "valid", Kind: tuple.KindInt64},     // 0/1
		tuple.Field{Name: "ts", Kind: tuple.KindChar, Size: 14},
	)
}
