// Package storage provides the on-disk building blocks: page
// identifiers, record identifiers, disk managers (in-memory, file
// backed, and an I/O-counting wrapper used by the simulations), and the
// slotted-page layout heap and index pages are built on.
package storage

import "fmt"

// PageID identifies a page within a disk manager. Page 0 is reserved
// as a metadata page; InvalidPageID is the zero value so uninitialized
// references are self-evidently invalid.
type PageID uint64

// InvalidPageID is the reserved "no page" value.
const InvalidPageID PageID = 0

// String renders the page id.
func (p PageID) String() string { return fmt.Sprintf("page:%d", uint64(p)) }

// RID identifies a record: the page holding it and the slot within that
// page. RIDs are what B+Tree leaves point at, what the forwarding table
// maps between, and (Section 4.2) what a "semantic ID" can embed.
type RID struct {
	Page PageID
	Slot uint16
}

// InvalidRID is the zero RID, pointing at the reserved page 0.
var InvalidRID = RID{}

// Valid reports whether the RID points at a real page.
func (r RID) Valid() bool { return r.Page != InvalidPageID }

// String renders the RID.
func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", uint64(r.Page), r.Slot) }

// Pack encodes the RID into a uint64: 48 bits of page, 16 bits of slot.
// The packed form is what gets stored in index leaves and semantic IDs.
func (r RID) Pack() uint64 {
	return uint64(r.Page)<<16 | uint64(r.Slot)
}

// UnpackRID inverts RID.Pack.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v)}
}

// DefaultPageSize is the page size used throughout unless overridden:
// 8 KiB, a common OLTP choice (InnoDB uses 16 KiB, SQL Server 8 KiB).
const DefaultPageSize = 8192

// MinPageSize bounds how small a page a disk manager accepts; below
// this the slotted header and a single slot don't fit.
const MinPageSize = 128
