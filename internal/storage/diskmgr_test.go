package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMemDiskBasics(t *testing.T) {
	d, err := NewMemDisk(256)
	if err != nil {
		t.Fatalf("NewMemDisk: %v", err)
	}
	defer d.Close()
	if d.NumPages() != 1 {
		t.Errorf("fresh disk has %d pages, want 1 (reserved page 0)", d.NumPages())
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	buf := make([]byte, 256)
	copy(buf, "hello")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, 256)
	if err := d.ReadPage(id, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("read back mismatch")
	}
}

func TestMemDiskErrors(t *testing.T) {
	if _, err := NewMemDisk(16); err == nil {
		t.Error("page size below minimum should fail")
	}
	d, _ := NewMemDisk(256)
	if err := d.ReadPage(99, make([]byte, 256)); err == nil {
		t.Error("read of unallocated page should fail")
	}
	if err := d.WritePage(0, make([]byte, 128)); err == nil {
		t.Error("short buffer should fail")
	}
	d.Close()
	if _, err := d.Allocate(); err == nil {
		t.Error("allocate after close should fail")
	}
}

func TestFileDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := NewFileDisk(path, 256)
	if err != nil {
		t.Fatalf("NewFileDisk: %v", err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	buf := make([]byte, 256)
	copy(buf, "persistent")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen and read back.
	d2, err := NewFileDisk(path, 256)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.NumPages() != 2 {
		t.Errorf("reopened disk has %d pages, want 2", d2.NumPages())
	}
	got := make([]byte, 256)
	if err := d2.ReadPage(id, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("persisted page mismatch")
	}
}

func TestCountingDisk(t *testing.T) {
	inner, _ := NewMemDisk(256)
	d := NewCountingDisk(inner)
	defer d.Close()
	id, _ := d.Allocate()
	buf := make([]byte, 256)
	for i := 0; i < 3; i++ {
		if err := d.WritePage(id, buf); err != nil {
			t.Fatalf("WritePage: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatalf("ReadPage: %v", err)
		}
	}
	if d.Writes() != 3 || d.Reads() != 5 {
		t.Errorf("counts = %d writes / %d reads, want 3/5", d.Writes(), d.Reads())
	}
	d.ResetCounts()
	if d.Writes() != 0 || d.Reads() != 0 {
		t.Error("ResetCounts did not zero")
	}
}

func TestRIDPackUnpack(t *testing.T) {
	cases := []RID{
		{Page: 1, Slot: 0},
		{Page: 12345, Slot: 678},
		{Page: 1 << 40, Slot: 65535},
	}
	for _, r := range cases {
		got := UnpackRID(r.Pack())
		if got != r {
			t.Errorf("Pack/Unpack %v -> %v", r, got)
		}
	}
	if InvalidRID.Valid() {
		t.Error("InvalidRID should not be valid")
	}
	if !(RID{Page: 3, Slot: 1}).Valid() {
		t.Error("real RID should be valid")
	}
}
