package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// DiskManager abstracts the page store underneath the buffer pool.
type DiskManager interface {
	// Allocate reserves a new zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage fills buf (len == PageSize) with the page's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len == PageSize) as the page's contents.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the number of allocated pages, including the
	// reserved page 0.
	NumPages() uint64
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Sync flushes every completed write to stable storage. Durability
	// layers (the WAL, checkpoints) order their writes around it; a
	// manager with no volatile cache (MemDisk) may no-op.
	Sync() error
	// Close releases resources. The manager is unusable afterwards.
	Close() error
}

// MemDisk is an in-memory DiskManager. It backs all tests and the
// simulation experiments (the paper's Figure 2 setup keeps the index
// and buffer pool "in large in-memory arrays").
type MemDisk struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	closed   bool
}

// NewMemDisk creates an in-memory disk with the given page size. The
// reserved page 0 is allocated immediately.
func NewMemDisk(pageSize int) (*MemDisk, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	d := &MemDisk{pageSize: pageSize}
	d.pages = append(d.pages, make([]byte, pageSize)) // page 0
	return d, nil
}

// Allocate implements DiskManager.
func (d *MemDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPageID, fmt.Errorf("storage: allocate on closed MemDisk")
	}
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return id, nil
}

// ReadPage implements DiskManager.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return fmt.Errorf("storage: read on closed MemDisk")
	}
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated %v", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, page size is %d", len(buf), d.pageSize)
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements DiskManager.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("storage: write on closed MemDisk")
	}
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated %v", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, page size is %d", len(buf), d.pageSize)
	}
	copy(d.pages[id], buf)
	return nil
}

// NumPages implements DiskManager.
func (d *MemDisk) NumPages() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return uint64(len(d.pages))
}

// PageSize implements DiskManager.
func (d *MemDisk) PageSize() int { return d.pageSize }

// Sync implements DiskManager. Memory is as stable as a MemDisk gets,
// so this is a no-op.
func (d *MemDisk) Sync() error { return nil }

// Close implements DiskManager.
func (d *MemDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.pages = nil
	return nil
}

// FileDisk is a DiskManager over a single file: page i lives at byte
// offset i*PageSize.
type FileDisk struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages uint64
}

// NewFileDisk opens (or creates) the file at path. An existing file's
// length must be a multiple of pageSize.
func NewFileDisk(path string, pageSize int) (*FileDisk, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	d := &FileDisk{f: f, pageSize: pageSize}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s length %d is not a multiple of page size %d", path, st.Size(), pageSize)
	}
	d.numPages = uint64(st.Size()) / uint64(pageSize)
	if d.numPages == 0 {
		// Materialize the reserved page 0.
		if err := d.grow(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return d, nil
}

func (d *FileDisk) grow() error {
	zero := make([]byte, d.pageSize)
	if _, err := d.f.WriteAt(zero, int64(d.numPages)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: grow file: %w", err)
	}
	d.numPages++
	return nil
}

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.numPages)
	if err := d.grow(); err != nil {
		return InvalidPageID, err
	}
	return id, nil
}

// ReadPage implements DiskManager.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(id) >= d.numPages {
		return fmt.Errorf("storage: read of unallocated %v", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, page size is %d", len(buf), d.pageSize)
	}
	_, err := d.f.ReadAt(buf, int64(id)*int64(d.pageSize))
	if err != nil {
		return fmt.Errorf("storage: read %v: %w", id, err)
	}
	return nil
}

// WritePage implements DiskManager.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(id) >= d.numPages {
		return fmt.Errorf("storage: write of unallocated %v", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, page size is %d", len(buf), d.pageSize)
	}
	if _, err := d.f.WriteAt(buf, int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: write %v: %w", id, err)
	}
	return nil
}

// NumPages implements DiskManager.
func (d *FileDisk) NumPages() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// PageSize implements DiskManager.
func (d *FileDisk) PageSize() int { return d.pageSize }

// Sync flushes the file to stable storage.
//
// nblb:blocking-io
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Close implements DiskManager.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// CountingDisk wraps a DiskManager and counts page reads and writes.
// The simulation experiments convert these counts into time via
// metrics.CostModel instead of sleeping, which keeps benchmarks fast
// and machine-independent.
type CountingDisk struct {
	inner  DiskManager
	reads  atomic.Int64
	writes atomic.Int64
	syncs  atomic.Int64
}

// NewCountingDisk wraps inner.
func NewCountingDisk(inner DiskManager) *CountingDisk {
	return &CountingDisk{inner: inner}
}

// Reads returns the number of page reads so far.
func (d *CountingDisk) Reads() int64 { return d.reads.Load() }

// Writes returns the number of page writes so far.
func (d *CountingDisk) Writes() int64 { return d.writes.Load() }

// Syncs returns the number of Sync calls so far — the durability
// experiments' fsync-amortization metric.
func (d *CountingDisk) Syncs() int64 { return d.syncs.Load() }

// ResetCounts zeroes all counters.
func (d *CountingDisk) ResetCounts() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.syncs.Store(0)
}

// Allocate implements DiskManager.
func (d *CountingDisk) Allocate() (PageID, error) { return d.inner.Allocate() }

// ReadPage implements DiskManager.
func (d *CountingDisk) ReadPage(id PageID, buf []byte) error {
	d.reads.Add(1)
	return d.inner.ReadPage(id, buf)
}

// WritePage implements DiskManager.
func (d *CountingDisk) WritePage(id PageID, buf []byte) error {
	d.writes.Add(1)
	return d.inner.WritePage(id, buf)
}

// NumPages implements DiskManager.
func (d *CountingDisk) NumPages() uint64 { return d.inner.NumPages() }

// PageSize implements DiskManager.
func (d *CountingDisk) PageSize() int { return d.inner.PageSize() }

// Sync implements DiskManager, counting the call.
func (d *CountingDisk) Sync() error {
	d.syncs.Add(1)
	return d.inner.Sync()
}

// Close implements DiskManager.
func (d *CountingDisk) Close() error { return d.inner.Close() }

var (
	_ DiskManager = (*MemDisk)(nil)
	_ DiskManager = (*FileDisk)(nil)
	_ DiskManager = (*CountingDisk)(nil)
)
