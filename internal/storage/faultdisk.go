package storage

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultOp selects which DiskManager operation a FaultPlan arms.
type FaultOp uint8

// Operations a fault can target.
const (
	FaultWrite FaultOp = iota
	FaultSync
	FaultAllocate
	FaultRead
)

// FaultMode selects how the armed operation misbehaves.
type FaultMode uint8

// Fault behaviors.
const (
	// FaultFail returns ErrInjected without performing the operation.
	FaultFail FaultMode = iota
	// FaultTorn performs a partial write: a seeded-random prefix of the
	// new page spliced onto the old contents (only meaningful for
	// FaultWrite), then returns ErrInjected. Models a torn sector write
	// during power loss.
	FaultTorn
	// FaultShort writes all but the final 512 bytes of the page, leaving
	// the old tail in place, then returns ErrInjected.
	FaultShort
)

// ErrInjected is returned by a FaultDisk when an armed fault fires.
var ErrInjected = fmt.Errorf("storage: injected fault")

// FaultPlan arms one fault: the After-th call (1-based) to the targeted
// operation misbehaves per Mode. OnFault, if set, runs just after the
// fault's side effects and just before ErrInjected is returned — crash
// harnesses use it to SIGKILL the process with the torn page on disk.
type FaultPlan struct {
	Op      FaultOp
	After   int64 // fire on the After-th targeted call; <=0 arms nothing
	Mode    FaultMode
	Seed    int64  // torn-write split point randomness
	OnFault func() // optional hook, called while the fault is firing
}

// FaultDisk wraps a DiskManager and injects one deterministic fault
// according to a FaultPlan. After the fault fires once, subsequent
// operations pass through untouched, so tests can observe the damaged
// state with ordinary reads.
type FaultDisk struct {
	inner DiskManager
	mu    sync.Mutex
	plan  FaultPlan
	rng   *rand.Rand
	seen  int64
	fired bool
}

// NewFaultDisk wraps inner with the given plan.
func NewFaultDisk(inner DiskManager, plan FaultPlan) *FaultDisk {
	return &FaultDisk{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Rearm replaces the plan and resets the call counter and fired state,
// so a test can run fault-free setup through the wrapper and then arm a
// fault precisely at the operation under test (plans are otherwise
// fixed at construction, which forces brittle call-count calibration).
func (d *FaultDisk) Rearm(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan = plan
	d.rng = rand.New(rand.NewSource(plan.Seed))
	d.seen = 0
	d.fired = false
}

// Fired reports whether the armed fault has fired.
func (d *FaultDisk) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// arm counts a call against the plan and reports whether the fault
// fires on this call.
func (d *FaultDisk) arm(op FaultOp) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fired || d.plan.Op != op || d.plan.After <= 0 {
		return false
	}
	d.seen++
	if d.seen < d.plan.After {
		return false
	}
	d.fired = true
	return true
}

// Allocate implements DiskManager.
func (d *FaultDisk) Allocate() (PageID, error) {
	if d.arm(FaultAllocate) {
		if d.plan.OnFault != nil {
			d.plan.OnFault()
		}
		return InvalidPageID, ErrInjected
	}
	return d.inner.Allocate()
}

// ReadPage implements DiskManager. A FaultRead plan fails the read
// without touching the inner disk (FaultMode is ignored: there is no
// torn-read analogue — the buffer is simply not filled).
func (d *FaultDisk) ReadPage(id PageID, buf []byte) error {
	if d.arm(FaultRead) {
		if d.plan.OnFault != nil {
			d.plan.OnFault()
		}
		return ErrInjected
	}
	return d.inner.ReadPage(id, buf)
}

// WritePage implements DiskManager. When the armed write fault fires,
// FaultTorn splices a random-length prefix of buf onto the page's old
// contents and FaultShort drops the final 512 bytes; both leave the
// mangled page on the inner disk before returning ErrInjected.
func (d *FaultDisk) WritePage(id PageID, buf []byte) error {
	if !d.arm(FaultWrite) {
		return d.inner.WritePage(id, buf)
	}
	switch d.plan.Mode {
	case FaultTorn, FaultShort:
		old := make([]byte, d.inner.PageSize())
		if err := d.inner.ReadPage(id, old); err != nil {
			// Unreadable old contents: treat as all-zero.
			for i := range old {
				old[i] = 0
			}
		}
		cut := len(buf) - 512
		if d.plan.Mode == FaultTorn {
			d.mu.Lock()
			cut = d.rng.Intn(len(buf))
			d.mu.Unlock()
		}
		if cut < 0 {
			cut = 0
		}
		mangled := make([]byte, len(buf))
		copy(mangled, old)
		copy(mangled[:cut], buf[:cut])
		if err := d.inner.WritePage(id, mangled); err != nil {
			return err
		}
	}
	if d.plan.OnFault != nil {
		d.plan.OnFault()
	}
	return ErrInjected
}

// NumPages implements DiskManager.
func (d *FaultDisk) NumPages() uint64 { return d.inner.NumPages() }

// PageSize implements DiskManager.
func (d *FaultDisk) PageSize() int { return d.inner.PageSize() }

// Sync implements DiskManager.
func (d *FaultDisk) Sync() error {
	if d.arm(FaultSync) {
		if d.plan.OnFault != nil {
			d.plan.OnFault()
		}
		return ErrInjected
	}
	return d.inner.Sync()
}

// Close implements DiskManager.
func (d *FaultDisk) Close() error { return d.inner.Close() }

var _ DiskManager = (*FaultDisk)(nil)
