package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// SlottedPage lays records out in the classic slotted-page format used
// by heap pages:
//
//	offset 0                                            pageSize
//	| header | slot directory → ... free ... ← record data |
//
// The slot directory grows upward from the header; record payloads grow
// downward from the end of the page. Each 4-byte slot holds the record's
// offset and length; a dead (deleted) slot has offset 0, which can never
// be a real record offset because the header occupies it.
//
// Header layout (12 bytes):
//
//	[0:2)  numSlots
//	[2:4)  freeLower  (first byte past the slot directory)
//	[4:6)  freeUpper  (first byte of the record data region)
//	[6:8)  flags      (page type tag, set by higher layers)
//	[8:12) reserved   (page LSN / CSN space for higher layers)
type SlottedPage struct {
	data []byte
}

const (
	slottedHeaderSize = 12
	slotSize          = 4

	offNumSlots  = 0
	offFreeLower = 2
	offFreeUpper = 4
	offFlags     = 6
	offReserved  = 8
)

// deadSlotOffset marks a deleted slot.
const deadSlotOffset = 0

// ErrNoSpace is returned when a page cannot hold a record even after
// compaction. Callers relocate the record to another page.
var ErrNoSpace = fmt.Errorf("storage: not enough free space in page")

// ErrDeleted reports a read of a slot whose record has been deleted.
// Index scans racing a concurrent delete check for it with errors.Is
// and treat the row as vanished rather than failing the scan.
var ErrDeleted = fmt.Errorf("storage: slot deleted")

// AsSlotted interprets data (a full page buffer) as a slotted page. It
// does not validate contents; call Init on fresh pages first.
func AsSlotted(data []byte) *SlottedPage {
	return &SlottedPage{data: data}
}

// Init formats the page as an empty slotted page, erasing any contents.
func (p *SlottedPage) Init() {
	for i := range p.data {
		p.data[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeLower(slottedHeaderSize)
	p.setFreeUpper(uint16(len(p.data)))
}

// Data returns the underlying page buffer.
func (p *SlottedPage) Data() []byte { return p.data }

// Flags returns the page-type flags word maintained by higher layers.
func (p *SlottedPage) Flags() uint16 {
	return binary.LittleEndian.Uint16(p.data[offFlags:])
}

// SetFlags stores the page-type flags word.
func (p *SlottedPage) SetFlags(f uint16) {
	binary.LittleEndian.PutUint16(p.data[offFlags:], f)
}

// Reserved returns the 4-byte reserved header word (used by the index
// cache for the page CSN).
func (p *SlottedPage) Reserved() uint32 {
	return binary.LittleEndian.Uint32(p.data[offReserved:])
}

// SetReserved stores the 4-byte reserved header word.
func (p *SlottedPage) SetReserved(v uint32) {
	binary.LittleEndian.PutUint32(p.data[offReserved:], v)
}

func (p *SlottedPage) numSlots() int {
	return int(binary.LittleEndian.Uint16(p.data[offNumSlots:]))
}

func (p *SlottedPage) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.data[offNumSlots:], uint16(n))
}

func (p *SlottedPage) freeLower() int {
	return int(binary.LittleEndian.Uint16(p.data[offFreeLower:]))
}

func (p *SlottedPage) setFreeLower(v int) {
	binary.LittleEndian.PutUint16(p.data[offFreeLower:], uint16(v))
}

func (p *SlottedPage) freeUpper() int {
	return int(binary.LittleEndian.Uint16(p.data[offFreeUpper:]))
}

func (p *SlottedPage) setFreeUpper(v uint16) {
	binary.LittleEndian.PutUint16(p.data[offFreeUpper:], v)
}

func (p *SlottedPage) slot(i int) (off, length int) {
	base := slottedHeaderSize + i*slotSize
	off = int(binary.LittleEndian.Uint16(p.data[base:]))
	length = int(binary.LittleEndian.Uint16(p.data[base+2:]))
	return off, length
}

func (p *SlottedPage) setSlot(i, off, length int) {
	base := slottedHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.data[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.data[base+2:], uint16(length))
}

// NumSlots returns the size of the slot directory, including dead slots.
func (p *SlottedPage) NumSlots() int { return p.numSlots() }

// FreeSpace returns the bytes available between the slot directory and
// the record data, i.e. the most a single insert could use (including
// a possible new slot entry).
func (p *SlottedPage) FreeSpace() int {
	return p.freeUpper() - p.freeLower()
}

// FreeBounds returns the [lo, hi) byte offsets of the free region —
// the space the Section 2.2 join cache recycles in heap pages.
func (p *SlottedPage) FreeBounds() (lo, hi int) {
	return p.freeLower(), p.freeUpper()
}

// LiveRecords returns the number of non-dead slots.
func (p *SlottedPage) LiveRecords() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off != deadSlotOffset {
			n++
		}
	}
	return n
}

// UsedBytes returns the bytes occupied by live record payloads.
func (p *SlottedPage) UsedBytes() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if off, l := p.slot(i); off != deadSlotOffset {
			n += l
		}
	}
	return n
}

// Insert stores rec in the page and returns its slot number. Dead slots
// are reused. If contiguous free space is insufficient but total free
// space (after compaction) suffices, the page is compacted first.
// Returns ErrNoSpace when the record cannot fit.
func (p *SlottedPage) Insert(rec []byte) (uint16, error) {
	if len(rec) == 0 {
		return 0, fmt.Errorf("storage: cannot insert empty record")
	}
	slotIdx := -1
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off == deadSlotOffset {
			slotIdx = i
			break
		}
	}
	need := len(rec)
	if slotIdx < 0 {
		need += slotSize
	}
	if p.FreeSpace() < need {
		if p.reclaimable() >= need-p.FreeSpace() {
			p.Compact()
		}
		if p.FreeSpace() < need {
			return 0, ErrNoSpace
		}
	}
	if slotIdx < 0 {
		slotIdx = p.numSlots()
		p.setNumSlots(slotIdx + 1)
		p.setFreeLower(p.freeLower() + slotSize)
	}
	newUpper := p.freeUpper() - len(rec)
	copy(p.data[newUpper:], rec)
	p.setFreeUpper(uint16(newUpper))
	p.setSlot(slotIdx, newUpper, len(rec))
	return uint16(slotIdx), nil
}

// PutAt forces the given slot to hold rec — the physical-redo primitive
// crash recovery uses to reconstruct a page to a logged post-state.
// A live slot holding identical bytes is a no-op (idempotent replay); a
// live slot with different bytes is replaced; a dead or not-yet-existing
// slot is (re)created, extending the slot directory with dead entries as
// needed. Returns ErrNoSpace only when the record cannot fit even after
// compaction, which a faithful redo stream never triggers (the original
// insert fit the same page).
func (p *SlottedPage) PutAt(slot uint16, rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("storage: cannot put empty record")
	}
	if int(slot) < p.numSlots() {
		if off, l := p.slot(int(slot)); off != deadSlotOffset {
			if l == len(rec) && bytes.Equal(p.data[off:off+l], rec) {
				return nil
			}
			p.setSlot(int(slot), deadSlotOffset, 0)
		}
	}
	need := len(rec)
	grow := 0
	if int(slot) >= p.numSlots() {
		grow = int(slot) - p.numSlots() + 1
		need += grow * slotSize
	}
	if p.FreeSpace() < need {
		if p.reclaimable() >= need-p.FreeSpace() {
			p.Compact()
		}
		if p.FreeSpace() < need {
			return ErrNoSpace
		}
	}
	if grow > 0 {
		base := p.numSlots()
		for i := 0; i < grow; i++ {
			p.setSlot(base+i, deadSlotOffset, 0)
		}
		p.setNumSlots(int(slot) + 1)
		p.setFreeLower(p.freeLower() + grow*slotSize)
	}
	newUpper := p.freeUpper() - len(rec)
	copy(p.data[newUpper:], rec)
	p.setFreeUpper(uint16(newUpper))
	p.setSlot(int(slot), newUpper, len(rec))
	return nil
}

// AvailableBytes returns the bytes an insert could use after a
// compaction: contiguous free space plus reclaimable dead-record bytes.
// Heap free-space maps track this, not FreeSpace, so pages emptied by
// deletes are refilled.
func (p *SlottedPage) AvailableBytes() int {
	return p.FreeSpace() + p.reclaimable()
}

// reclaimable returns the bytes below freeUpper occupied by dead
// records, i.e. what Compact would recover.
func (p *SlottedPage) reclaimable() int {
	liveBytes := 0
	for i := 0; i < p.numSlots(); i++ {
		if off, l := p.slot(i); off != deadSlotOffset {
			liveBytes += l
		}
	}
	return len(p.data) - p.freeUpper() - liveBytes
}

// Get returns the record in the given slot. The returned slice aliases
// the page buffer; callers must copy if they outlive the pin.
func (p *SlottedPage) Get(slot uint16) ([]byte, error) {
	if int(slot) >= p.numSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", slot, p.numSlots())
	}
	off, l := p.slot(int(slot))
	if off == deadSlotOffset {
		return nil, fmt.Errorf("storage: slot %d: %w", slot, ErrDeleted)
	}
	return p.data[off : off+l], nil
}

// Delete tombstones the slot. The payload bytes become reclaimable at
// the next compaction.
func (p *SlottedPage) Delete(slot uint16) error {
	if int(slot) >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range (page has %d)", slot, p.numSlots())
	}
	off, _ := p.slot(int(slot))
	if off == deadSlotOffset {
		return fmt.Errorf("storage: slot %d already deleted", slot)
	}
	p.setSlot(int(slot), deadSlotOffset, 0)
	return nil
}

// Update replaces the record in the slot. If the new payload fits in the
// old footprint it is updated in place; otherwise the old copy is freed
// and the record reinserted in this page if space allows. Returns
// ErrNoSpace if the page cannot hold the new payload (the caller then
// relocates the record and leaves a forwarding stub, handled by the heap
// layer).
func (p *SlottedPage) Update(slot uint16, rec []byte) error {
	if int(slot) >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range (page has %d)", slot, p.numSlots())
	}
	off, l := p.slot(int(slot))
	if off == deadSlotOffset {
		return fmt.Errorf("storage: slot %d is deleted", slot)
	}
	if len(rec) <= l {
		copy(p.data[off:], rec)
		p.setSlot(int(slot), off, len(rec))
		return nil
	}
	// Free the old copy, then try to place the new one.
	p.setSlot(int(slot), deadSlotOffset, 0)
	if p.FreeSpace() < len(rec) {
		if p.reclaimable() >= len(rec)-p.FreeSpace() {
			p.Compact()
		}
		if p.FreeSpace() < len(rec) {
			// Roll back the tombstone so the record is still readable.
			p.setSlot(int(slot), off, l)
			return ErrNoSpace
		}
	}
	newUpper := p.freeUpper() - len(rec)
	copy(p.data[newUpper:], rec)
	p.setFreeUpper(uint16(newUpper))
	p.setSlot(int(slot), newUpper, len(rec))
	return nil
}

// Compact slides live records to the end of the page, eliminating holes
// left by deletes, and updates every slot offset. Slot numbers (and
// therefore RIDs) are unchanged.
func (p *SlottedPage) Compact() {
	type live struct {
		slot, off, length int
	}
	var lives []live
	for i := 0; i < p.numSlots(); i++ {
		if off, l := p.slot(i); off != deadSlotOffset {
			lives = append(lives, live{i, off, l})
		}
	}
	// Move records from highest offset to lowest so in-page copies never
	// overwrite not-yet-moved data.
	for i := 0; i < len(lives); i++ {
		maxIdx := i
		for j := i + 1; j < len(lives); j++ {
			if lives[j].off > lives[maxIdx].off {
				maxIdx = j
			}
		}
		lives[i], lives[maxIdx] = lives[maxIdx], lives[i]
	}
	upper := len(p.data)
	for _, rec := range lives {
		upper -= rec.length
		copy(p.data[upper:upper+rec.length], p.data[rec.off:rec.off+rec.length])
		p.setSlot(rec.slot, upper, rec.length)
	}
	p.setFreeUpper(uint16(upper))
	// Zero the reclaimed free region: stale record bytes must never be
	// readable as join-cache entries (Section 2.2) after the region
	// grows.
	for i := p.freeLower(); i < upper; i++ {
		p.data[i] = 0
	}
}

// Records iterates over live records in slot order, calling fn with the
// slot number and payload. The payload aliases the page buffer.
func (p *SlottedPage) Records(fn func(slot uint16, rec []byte) bool) {
	for i := 0; i < p.numSlots(); i++ {
		off, l := p.slot(i)
		if off == deadSlotOffset {
			continue
		}
		if !fn(uint16(i), p.data[off:off+l]) {
			return
		}
	}
}

// Utilization returns the fraction of the page (excluding the header)
// holding live record bytes — the paper's "page utilization" metric
// (Section 3.1 reports revision pages at 2% for hot data).
func (p *SlottedPage) Utilization() float64 {
	usable := len(p.data) - slottedHeaderSize
	if usable <= 0 {
		return 0
	}
	return float64(p.UsedBytes()) / float64(usable)
}
