package storage

import (
	"bytes"
	"errors"
	"testing"
)

func newFaultedMem(t *testing.T, plan FaultPlan) (*FaultDisk, *MemDisk) {
	t.Helper()
	mem, err := NewMemDisk(DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultDisk(mem, plan), mem
}

func TestFaultDiskFailAfterN(t *testing.T) {
	fd, _ := newFaultedMem(t, FaultPlan{Op: FaultWrite, After: 3, Mode: FaultFail})
	id, err := fd.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, fd.PageSize())
	for i := range buf {
		buf[i] = 0xAB
	}
	for i := 1; i <= 2; i++ {
		if err := fd.WritePage(id, buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fd.Fired() {
		t.Fatal("fault fired early")
	}
	if err := fd.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3: got %v, want ErrInjected", err)
	}
	if !fd.Fired() {
		t.Fatal("fault did not report fired")
	}
	// One-shot: subsequent writes pass through.
	if err := fd.WritePage(id, buf); err != nil {
		t.Fatalf("write after fault: %v", err)
	}
}

func TestFaultDiskTornWrite(t *testing.T) {
	fd, _ := newFaultedMem(t, FaultPlan{Op: FaultWrite, After: 2, Mode: FaultTorn, Seed: 42})
	id, err := fd.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0x11}, fd.PageSize())
	if err := fd.WritePage(id, old); err != nil {
		t.Fatal(err)
	}
	hooked := false
	fd.plan.OnFault = func() { hooked = true }
	newBuf := bytes.Repeat([]byte{0x22}, fd.PageSize())
	if err := fd.WritePage(id, newBuf); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if !hooked {
		t.Fatal("OnFault hook not called")
	}
	got := make([]byte, fd.PageSize())
	if err := fd.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	// The page must be a prefix of new + suffix of old, and must differ
	// from both (a torn write, not an atomic one).
	cut := 0
	for cut < len(got) && got[cut] == 0x22 {
		cut++
	}
	for i := cut; i < len(got); i++ {
		if got[i] != 0x11 {
			t.Fatalf("byte %d = %#x, want old byte 0x11 after split at %d", i, got[i], cut)
		}
	}
	if bytes.Equal(got, old) || bytes.Equal(got, newBuf) {
		t.Fatal("torn write produced an atomic result")
	}
}

func TestFaultDiskTornDeterministic(t *testing.T) {
	split := func(seed int64) int {
		fd, _ := newFaultedMem(t, FaultPlan{Op: FaultWrite, After: 1, Mode: FaultTorn, Seed: seed})
		id, _ := fd.Allocate()
		newBuf := bytes.Repeat([]byte{0x22}, fd.PageSize())
		if err := fd.WritePage(id, newBuf); !errors.Is(err, ErrInjected) {
			t.Fatalf("got %v, want ErrInjected", err)
		}
		got := make([]byte, fd.PageSize())
		if err := fd.ReadPage(id, got); err != nil {
			t.Fatal(err)
		}
		cut := 0
		for cut < len(got) && got[cut] == 0x22 {
			cut++
		}
		return cut
	}
	if a, b := split(7), split(7); a != b {
		t.Fatalf("same seed, different splits: %d vs %d", a, b)
	}
}

func TestFaultDiskShortWrite(t *testing.T) {
	fd, _ := newFaultedMem(t, FaultPlan{Op: FaultWrite, After: 2, Mode: FaultShort})
	id, err := fd.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0x33}, fd.PageSize())
	if err := fd.WritePage(id, old); err != nil {
		t.Fatal(err)
	}
	newBuf := bytes.Repeat([]byte{0x44}, fd.PageSize())
	if err := fd.WritePage(id, newBuf); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	got := make([]byte, fd.PageSize())
	if err := fd.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	cut := fd.PageSize() - 512
	if !bytes.Equal(got[:cut], newBuf[:cut]) {
		t.Fatal("short write did not persist the new prefix")
	}
	if !bytes.Equal(got[cut:], old[cut:]) {
		t.Fatal("short write did not preserve the old 512-byte tail")
	}
}

func TestFaultDiskSyncFault(t *testing.T) {
	fd, _ := newFaultedMem(t, FaultPlan{Op: FaultSync, After: 2, Mode: FaultFail})
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatalf("sync after fault: %v", err)
	}
}

func TestFaultDiskAllocateFault(t *testing.T) {
	fd, _ := newFaultedMem(t, FaultPlan{Op: FaultAllocate, After: 1, Mode: FaultFail})
	if _, err := fd.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if _, err := fd.Allocate(); err != nil {
		t.Fatalf("allocate after fault: %v", err)
	}
}

func TestFaultDiskUnarmedPassthrough(t *testing.T) {
	fd, _ := newFaultedMem(t, FaultPlan{})
	id, err := fd.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0x55}, fd.PageSize())
	if err := fd.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, fd.PageSize())
	if err := fd.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("passthrough write corrupted data")
	}
	if fd.Fired() {
		t.Fatal("unarmed plan fired")
	}
}

func TestSlottedPutAt(t *testing.T) {
	data := make([]byte, 512)
	p := AsSlotted(data)
	p.Init()

	// Redo onto a virgin page at a non-zero slot: directory extends with
	// dead slots.
	if err := p.PutAt(2, []byte("charlie")); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 3 {
		t.Fatalf("NumSlots = %d, want 3", p.NumSlots())
	}
	if _, err := p.Get(0); err == nil {
		t.Fatal("slot 0 should be dead")
	}
	got, err := p.Get(2)
	if err != nil || string(got) != "charlie" {
		t.Fatalf("Get(2) = %q, %v", got, err)
	}

	// Idempotent: same bytes, same slot → no-op, no space consumed.
	before := p.FreeSpace()
	if err := p.PutAt(2, []byte("charlie")); err != nil {
		t.Fatal(err)
	}
	if p.FreeSpace() != before {
		t.Fatal("idempotent PutAt consumed space")
	}

	// Replace: different bytes overwrite.
	if err := p.PutAt(2, []byte("charles")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(2)
	if string(got) != "charles" {
		t.Fatalf("Get(2) after replace = %q", got)
	}

	// Fill a dead slot created by Insert+Delete.
	s, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if err := p.PutAt(s, []byte("alpha-redone")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(s)
	if string(got) != "alpha-redone" {
		t.Fatalf("Get(%d) = %q", s, got)
	}

	// Compaction path: churn the page until PutAt must compact.
	big := bytes.Repeat([]byte{0x77}, 100)
	for i := 0; i < 3; i++ {
		if err := p.PutAt(5, big); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
		big[0]++ // force replace, leaving a dead payload behind
	}
	got, _ = p.Get(5)
	if len(got) != 100 || got[0] != 0x79 {
		t.Fatalf("Get(5) after churn = %d bytes, first %#x", len(got), got[0])
	}

	// ErrNoSpace when the record genuinely cannot fit.
	huge := make([]byte, 1024)
	if err := p.PutAt(6, huge); err != ErrNoSpace {
		t.Fatalf("got %v, want ErrNoSpace", err)
	}
}
