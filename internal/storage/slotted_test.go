package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newTestPage(size int) *SlottedPage {
	p := AsSlotted(make([]byte, size))
	p.Init()
	return p
}

func TestSlottedInsertGet(t *testing.T) {
	p := newTestPage(512)
	recs := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatalf("Get(%d): %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d: got %q, want %q", s, got, recs[i])
		}
	}
	if p.LiveRecords() != 3 {
		t.Errorf("LiveRecords = %d, want 3", p.LiveRecords())
	}
}

func TestSlottedDeleteAndReuse(t *testing.T) {
	p := newTestPage(512)
	s0, _ := p.Insert([]byte("first"))
	s1, err := p.Insert([]byte("second"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := p.Delete(s0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := p.Get(s0); err == nil {
		t.Error("Get of deleted slot should fail")
	}
	if err := p.Delete(s0); err == nil {
		t.Error("double delete should fail")
	}
	// The dead slot is reused by the next insert.
	s2, err := p.Insert([]byte("third"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if s2 != s0 {
		t.Errorf("dead slot not reused: got %d, want %d", s2, s0)
	}
	got, _ := p.Get(s1)
	if !bytes.Equal(got, []byte("second")) {
		t.Error("surviving record corrupted by delete/reinsert")
	}
}

func TestSlottedNoSpace(t *testing.T) {
	p := newTestPage(128)
	if _, err := p.Insert(make([]byte, 200)); err != ErrNoSpace {
		t.Errorf("want ErrNoSpace, got %v", err)
	}
	// Fill the page, then overflow.
	for {
		_, err := p.Insert(make([]byte, 16))
		if err == ErrNoSpace {
			break
		}
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

func TestSlottedCompactionReclaims(t *testing.T) {
	p := newTestPage(256)
	var slots []uint16
	for i := 0; i < 5; i++ {
		s, err := p.Insert(bytes.Repeat([]byte{byte('a' + i)}, 30))
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		slots = append(slots, s)
	}
	// Delete the middle records, creating holes.
	for _, s := range slots[1:4] {
		if err := p.Delete(s); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	// This insert needs compaction to fit contiguously.
	big := bytes.Repeat([]byte{'z'}, 80)
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("Insert after deletes should compact and fit: %v", err)
	}
	// Survivors still readable.
	for _, s := range []uint16{slots[0], slots[4]} {
		if _, err := p.Get(s); err != nil {
			t.Errorf("Get(%d) after compaction: %v", s, err)
		}
	}
}

func TestSlottedUpdateInPlaceAndGrow(t *testing.T) {
	p := newTestPage(256)
	s, _ := p.Insert([]byte("0123456789"))
	if err := p.Update(s, []byte("short")); err != nil {
		t.Fatalf("shrinking update: %v", err)
	}
	got, _ := p.Get(s)
	if string(got) != "short" {
		t.Errorf("after shrink: %q", got)
	}
	if err := p.Update(s, bytes.Repeat([]byte{'x'}, 50)); err != nil {
		t.Fatalf("growing update: %v", err)
	}
	got, _ = p.Get(s)
	if len(got) != 50 {
		t.Errorf("after grow: %d bytes", len(got))
	}
}

func TestSlottedUpdateNoSpaceRollsBack(t *testing.T) {
	p := newTestPage(128)
	s, err := p.Insert([]byte("keepme"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := p.Update(s, make([]byte, 300)); err != ErrNoSpace {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	got, err := p.Get(s)
	if err != nil || string(got) != "keepme" {
		t.Errorf("record lost after failed update: %q, %v", got, err)
	}
}

func TestSlottedRecordsIteration(t *testing.T) {
	p := newTestPage(512)
	want := map[uint16]string{}
	for i := 0; i < 6; i++ {
		rec := fmt.Sprintf("rec-%d", i)
		s, _ := p.Insert([]byte(rec))
		want[s] = rec
	}
	p.Delete(2)
	delete(want, 2)
	got := map[uint16]string{}
	p.Records(func(slot uint16, rec []byte) bool {
		got[slot] = string(rec)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d records, want %d", len(got), len(want))
	}
	for s, r := range want {
		if got[s] != r {
			t.Errorf("slot %d: got %q, want %q", s, got[s], r)
		}
	}
}

func TestSlottedUtilization(t *testing.T) {
	p := newTestPage(1024)
	if u := p.Utilization(); u != 0 {
		t.Errorf("empty page utilization %f", u)
	}
	p.Insert(make([]byte, 500))
	u := p.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("utilization %f, want ~0.49", u)
	}
}

// TestSlottedFuzzAgainstModel runs random operations against a map
// model and checks full agreement.
func TestSlottedFuzzAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := newTestPage(2048)
	model := map[uint16][]byte{}
	for op := 0; op < 5000; op++ {
		switch rng.Intn(3) {
		case 0: // insert
			rec := make([]byte, 1+rng.Intn(64))
			rng.Read(rec)
			s, err := p.Insert(rec)
			if err == ErrNoSpace {
				continue
			}
			if err != nil {
				t.Fatalf("op %d Insert: %v", op, err)
			}
			if _, exists := model[s]; exists {
				t.Fatalf("op %d: slot %d reused while live", op, s)
			}
			model[s] = append([]byte(nil), rec...)
		case 1: // delete random live slot
			for s := range model {
				if err := p.Delete(s); err != nil {
					t.Fatalf("op %d Delete(%d): %v", op, s, err)
				}
				delete(model, s)
				break
			}
		case 2: // update random live slot
			for s := range model {
				rec := make([]byte, 1+rng.Intn(64))
				rng.Read(rec)
				err := p.Update(s, rec)
				if err == ErrNoSpace {
					break
				}
				if err != nil {
					t.Fatalf("op %d Update(%d): %v", op, s, err)
				}
				model[s] = append([]byte(nil), rec...)
				break
			}
		}
		// Periodically verify everything.
		if op%500 == 0 {
			for s, want := range model {
				got, err := p.Get(s)
				if err != nil {
					t.Fatalf("op %d verify Get(%d): %v", op, s, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("op %d: slot %d diverged", op, s)
				}
			}
			if p.LiveRecords() != len(model) {
				t.Fatalf("op %d: LiveRecords=%d model=%d", op, p.LiveRecords(), len(model))
			}
		}
	}
}

func TestSlottedFlagsAndReserved(t *testing.T) {
	p := newTestPage(256)
	p.SetFlags(0xBEEF)
	p.SetReserved(0xCAFEBABE)
	if p.Flags() != 0xBEEF {
		t.Errorf("Flags = %#x", p.Flags())
	}
	if p.Reserved() != 0xCAFEBABE {
		t.Errorf("Reserved = %#x", p.Reserved())
	}
	// Insert must not clobber the header fields.
	p.Insert([]byte("data"))
	if p.Flags() != 0xBEEF || p.Reserved() != 0xCAFEBABE {
		t.Error("insert clobbered header fields")
	}
}
