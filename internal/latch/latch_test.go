package latch

import (
	"sync"
	"testing"
)

func TestTryLockGivesUpWhenHeld(t *testing.T) {
	var l Latch
	l.Lock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded while held exclusively")
	}
	if l.TryRLock() {
		t.Fatal("TryRLock succeeded while held exclusively")
	}
	if l.GiveUps() != 2 {
		t.Errorf("GiveUps = %d, want 2", l.GiveUps())
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on free latch")
	}
	l.Unlock()
}

func TestSharedHoldersBlockExclusiveTry(t *testing.T) {
	var l Latch
	l.RLock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded under a shared hold")
	}
	if !l.TryRLock() {
		t.Fatal("TryRLock should succeed alongside another reader")
	}
	l.RUnlock()
	l.RUnlock()
}

func TestConcurrentCounting(t *testing.T) {
	var l Latch
	l.Lock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.TryLock()
		}()
	}
	wg.Wait()
	l.Unlock()
	if l.GiveUps() != 8 {
		t.Errorf("GiveUps = %d, want 8", l.GiveUps())
	}
}
