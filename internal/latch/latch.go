// Package latch provides short-term page latches with a try-acquire
// path. Section 2.1.3 of the paper requires that index-cache writes
// take only short latches and "give up a write operation if the latch
// is not immediately available"; TryLock supports exactly that, and the
// give-up counter makes the behaviour observable in tests and stats.
package latch

import (
	"sync"
	"sync/atomic"
)

// Latch is a reader/writer page latch. The zero value is ready to use.
type Latch struct {
	mu      sync.RWMutex
	giveUps atomic.Int64
}

// Lock acquires the latch exclusively, blocking.
func (l *Latch) Lock() { l.mu.Lock() }

// Unlock releases an exclusive hold.
func (l *Latch) Unlock() { l.mu.Unlock() }

// RLock acquires the latch shared, blocking.
func (l *Latch) RLock() { l.mu.RLock() }

// RUnlock releases a shared hold.
func (l *Latch) RUnlock() { l.mu.RUnlock() }

// TryLock attempts an exclusive acquire without blocking. On failure it
// records a give-up and returns false — the caller abandons its cache
// write, per the paper's protocol.
func (l *Latch) TryLock() bool {
	if l.mu.TryLock() {
		return true
	}
	l.giveUps.Add(1)
	return false
}

// TryRLock attempts a shared acquire without blocking.
func (l *Latch) TryRLock() bool {
	if l.mu.TryRLock() {
		return true
	}
	l.giveUps.Add(1)
	return false
}

// GiveUps returns how many try-acquires failed, i.e. how many cache
// maintenance operations were abandoned rather than waited for.
func (l *Latch) GiveUps() int64 { return l.giveUps.Load() }
