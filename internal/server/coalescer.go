package server

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wire"
)

// applyJob is one connection's contribution to a coalesced batch. The
// leader replies on resp exactly once.
type applyJob struct {
	ops  []wire.Op
	resp chan wire.ApplyResp
}

// coalescer drains many connections' pending ops for one table into
// shared core.Batches. Handlers enqueue jobs; a single leader
// goroutine per table drains the queue — first job blocking, then more
// until MaxOps ops are staged or MaxWait has passed — and executes one
// Table.Apply under one WAL group commit. Per-op results are
// demultiplexed back to each waiting job with ErrIndex/RID attribution
// (core's WithErrorIsolation), so one client's duplicate key never
// fails a neighbor's op.
//
// Lock order: the coalescer owns no locks across Apply — the staging
// queue is a channel, and the leader calls into core like any embedded
// writer. Per ARCHITECTURE.md, anything serializing staged ops must
// sit above commitGate: the leader stages strictly before Apply takes
// commitGate.RLock, never while holding it.
type coalescer struct {
	tb      *core.Table
	queue   chan *applyJob
	maxOps  int
	maxWait time.Duration
	stats   *Stats
	wg      sync.WaitGroup
}

func newCoalescer(tb *core.Table, maxOps int, maxWait time.Duration, stats *Stats) *coalescer {
	c := &coalescer{
		tb:      tb,
		queue:   make(chan *applyJob, 4096),
		maxOps:  maxOps,
		maxWait: maxWait,
		stats:   stats,
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// enqueue stages a job and returns its response channel. It must not
// be called after close; the server guarantees this by draining all
// connection handlers before closing coalescers.
func (c *coalescer) enqueue(ops []wire.Op) chan wire.ApplyResp {
	j := &applyJob{ops: ops, resp: make(chan wire.ApplyResp, 1)}
	c.queue <- j
	return j.resp
}

// close stops the leader after it drains every staged job.
func (c *coalescer) close() {
	close(c.queue)
	c.wg.Wait()
}

func (c *coalescer) run() {
	defer c.wg.Done()
	var timer *time.Timer
	for first := range c.queue {
		jobs := make([]*applyJob, 1, 8)
		jobs[0] = first
		n := len(first.ops)
		if n < c.maxOps {
			if timer == nil {
				timer = time.NewTimer(c.maxWait)
			} else {
				timer.Reset(c.maxWait)
			}
		drain:
			for n < c.maxOps {
				select {
				case j, ok := <-c.queue:
					if !ok {
						break drain
					}
					jobs = append(jobs, j)
					n += len(j.ops)
				case <-timer.C:
					break drain
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		c.apply(jobs, n)
	}
}

// apply executes one coalesced cycle: build the shared batch in
// arrival order, apply with per-op isolation, slice results back per
// job.
func (c *coalescer) apply(jobs []*applyJob, n int) {
	var b core.Batch
	for _, j := range jobs {
		for _, op := range j.ops {
			switch op.Kind {
			case wire.OpInsert:
				b.Insert(op.Row)
			case wire.OpUpdate:
				b.Update(storage.UnpackRID(op.RID), op.Row)
			case wire.OpDelete:
				b.Delete(storage.UnpackRID(op.RID))
			}
		}
	}
	res, err := c.tb.Apply(&b, core.WithErrorIsolation(), core.WithResultRIDs())
	c.stats.CoalescedCycles.Add(1)
	c.stats.CoalescedOps.Add(int64(n))
	off := 0
	for _, j := range jobs {
		j.resp <- sliceResult(&res, err, off, len(j.ops))
		off += len(j.ops)
	}
}

// sliceResult extracts ops [off, off+n) of a batch result into a wire
// response. A batch-level error (err != nil, or res.Err from a
// non-attributable failure) fails every op that has no more specific
// per-op error.
func sliceResult(res *core.Result, err error, off, n int) wire.ApplyResp {
	out := wire.ApplyResp{
		RIDs:   make([]uint64, n),
		OpErrs: make([]string, n),
	}
	if err == nil {
		err = res.Err
	}
	for i := 0; i < n; i++ {
		gi := off + i
		if gi < len(res.RIDs) && res.RIDs[gi].Valid() {
			out.RIDs[i] = res.RIDs[gi].Pack()
		}
		switch {
		case gi < len(res.OpErrs) && res.OpErrs[gi] != nil:
			out.OpErrs[i] = res.OpErrs[gi].Error()
		case err != nil && gi >= res.Applied:
			// Without isolation results, Applied is the count of the
			// leading ops that landed before the batch failed.
			out.OpErrs[i] = err.Error()
		default:
			out.Applied++
		}
	}
	return out
}
