package server_test

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Corpus replay: every input the fuzzers have ever minimized — hostile
// ApplyReq payloads and raw frame garbage — is driven through a LIVE
// server against tables holding real data, and the store must come out
// the other side intact: committed rows still readable, index
// CheckIntegrity clean, zero pinned buffer frames. The fuzz targets
// prove the decoders don't panic in isolation; this proves the engine
// behind them doesn't corrupt state or leak pins when fed their output.

// readCorpus parses Go fuzz corpus files ("go test fuzz v1" header,
// one []byte("...") line per input argument).
func readCorpus(t *testing.T, dir string) [][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus dir %s: %v", dir, err)
	}
	var inputs [][]byte
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			inner, ok := strings.CutPrefix(line, "[]byte(")
			if !ok {
				continue
			}
			inner = strings.TrimSuffix(inner, ")")
			s, err := strconv.Unquote(inner)
			if err != nil {
				t.Fatalf("%s: bad corpus literal %q: %v", e.Name(), line, err)
			}
			inputs = append(inputs, []byte(s))
		}
	}
	if len(inputs) == 0 {
		t.Fatalf("no corpus inputs under %s", dir)
	}
	return inputs
}

func TestFuzzCorpusReplayIntegrity(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// The fuzz seeds address tables "t" and "x"; give them real tables
	// (with data) so corpus payloads reach Table.Apply, not just the
	// name-lookup error path.
	for _, name := range []string{"t", "x"} {
		if err := cl.CreateTable(name, kvFields()...); err != nil {
			t.Fatalf("CreateTable %s: %v", name, err)
		}
		if err := cl.CreateIndex(name, "by_id", []string{"id"}, true); err != nil {
			t.Fatalf("CreateIndex %s: %v", name, err)
		}
		var b client.Batch
		for i := 0; i < 50; i++ {
			b.Insert(kvRow(int64(i), fmt.Sprintf("pre%03d", i)))
		}
		if _, err := cl.Apply(name, &b); err != nil {
			t.Fatalf("seed Apply %s: %v", name, err)
		}
	}

	// Phase 1: every ApplyReq corpus input as the payload of a
	// well-formed TApply frame on one pipelined connection. Each gets a
	// response (usually TErr); the connection must survive all of them.
	applyCorpus := readCorpus(t, filepath.Join("..", "wire", "testdata", "fuzz", "FuzzApplyReqDecode"))
	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	var frameBuf []byte
	for i, payload := range applyCorpus {
		out := wire.AppendFrame(nil, uint64(i+1), wire.TApply, payload)
		if _, err := conn.Write(out); err != nil {
			t.Fatalf("corpus %d: write: %v", i, err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		fr, buf, err := wire.ReadFrame(br, frameBuf)
		if err != nil {
			t.Fatalf("corpus %d: no response (conn died): %v", i, err)
		}
		frameBuf = buf
		if fr.ReqID != uint64(i+1) {
			t.Fatalf("corpus %d: response for req %d", i, fr.ReqID)
		}
	}

	// Phase 2: raw frame-fuzz corpus bytes straight onto fresh
	// connections — torn headers, bad CRCs, absurd lengths. The server
	// may drop each connection; it must not wedge or corrupt anything.
	frameCorpus := readCorpus(t, filepath.Join("..", "wire", "testdata", "fuzz", "FuzzReadFrame"))
	for i, raw := range frameCorpus {
		c, err := net.Dial("tcp", f.addr)
		if err != nil {
			t.Fatalf("frame corpus %d: dial: %v", i, err)
		}
		c.Write(raw)
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		io := make([]byte, 256)
		for {
			if _, err := c.Read(io); err != nil {
				break
			}
		}
		c.Close()
	}

	// The storm is over: the server still serves, committed data is
	// still there, and nothing leaked.
	for _, name := range []string{"t", "x"} {
		row, found, err := cl.Get(name, "by_id", tuple.Int64(42))
		if err != nil || !found {
			t.Fatalf("%s: pre-storm row lost: found=%v err=%v", name, found, err)
		}
		if row[1].Str != "pre042" {
			t.Fatalf("%s: pre-storm row mutated: %v", name, row)
		}
		var b client.Batch
		b.Insert(kvRow(1000, "post"))
		if res, err := cl.Apply(name, &b); err != nil || res.Applied != 1 {
			t.Fatalf("%s: post-storm Apply: applied=%d err=%v", name, res.Applied, err)
		}
		tb, err := f.eng.Table(name)
		if err != nil {
			t.Fatalf("Table %s: %v", name, err)
		}
		ix, err := tb.Index("by_id")
		if err != nil {
			t.Fatalf("Index %s/by_id: %v", name, err)
		}
		if err := ix.Tree().CheckIntegrity(); err != nil {
			t.Fatalf("%s/by_id integrity after corpus replay: %v", name, err)
		}
	}
	if pins := f.eng.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d buffer frames still pinned after corpus replay", pins)
	}
}
