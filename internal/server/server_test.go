package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/tuple"
)

// fixture starts a WAL-backed engine plus a server on a loopback
// listener and returns a dialed client. Callers own shutdown order.
type fixture struct {
	dir  string
	eng  *core.Engine
	srv  *server.Server
	addr string
}

func startServer(t *testing.T, cfgTweak func(*server.Config)) *fixture {
	t.Helper()
	dir := t.TempDir()
	eng, err := core.NewEngine(core.Options{Path: filepath.Join(dir, "db")}, core.WithWAL())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := server.Config{Engine: eng}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	return &fixture{dir: dir, eng: eng, srv: srv, addr: l.Addr().String()}
}

func (f *fixture) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := f.eng.Close(); err != nil {
		t.Fatalf("engine Close: %v", err)
	}
}

func kvFields() []client.Field {
	return []client.Field{
		{Name: "id", Kind: tuple.KindInt64},
		{Name: "val", Kind: tuple.KindString},
	}
}

func kvRow(id int64, val string) client.Row {
	return client.Row{tuple.Int64(id), tuple.String(val)}
}

func setupKV(t *testing.T, cl *client.Client) {
	t.Helper()
	if err := cl.CreateTable("kv", kvFields()...); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := cl.CreateIndex("kv", "by_id", []string{"id"}, true); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
}

func TestServerEndToEnd(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	setupKV(t, cl)

	var b client.Batch
	for i := 0; i < 100; i++ {
		b.Insert(kvRow(int64(i), fmt.Sprintf("v%03d", i)))
	}
	res, err := cl.Apply("kv", &b)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Applied != 100 {
		t.Fatalf("Applied = %d, want 100", res.Applied)
	}

	row, found, err := cl.Get("kv", "by_id", tuple.Int64(42))
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	if row[1].Str != "v042" {
		t.Errorf("Get row = %v", row)
	}
	if _, found, err := cl.Get("kv", "by_id", tuple.Int64(10_000)); err != nil || found {
		t.Errorf("Get missing key: found=%v err=%v", found, err)
	}

	// Range query, small pages, projection, reverse.
	rows, err := cl.Query("kv",
		client.WithIndex("by_id"),
		client.WithKeyRange(client.Row{tuple.Int64(10)}, client.Row{tuple.Int64(20)}),
		client.WithProjection("id"),
		client.WithReverse(),
		client.WithPageSize(3),
	)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var got []int64
	for rows.Next() {
		if n := len(rows.Row()); n != 1 {
			t.Fatalf("projected row has %d fields", n)
		}
		got = append(got, rows.Row()[0].Int)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows.Err: %v", err)
	}
	rows.Close()
	if len(got) != 10 || got[0] != 19 || got[9] != 10 {
		t.Errorf("reverse range = %v", got)
	}

	// Limit via server-side cursor.
	rows, err = cl.Query("kv", client.WithIndex("by_id"), client.WithLimit(7))
	if err != nil {
		t.Fatalf("Query limit: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil || n != 7 {
		t.Fatalf("limit: n=%d err=%v", n, err)
	}

	// Update + delete by RID round trip.
	var wb client.Batch
	wb.Update(res.RIDs[5], kvRow(5, "updated"))
	wb.Delete(res.RIDs[6])
	wres, err := cl.Apply("kv", &wb)
	if err != nil || wres.Applied != 2 {
		t.Fatalf("update/delete: %+v err=%v", wres, err)
	}
	row, found, _ = cl.Get("kv", "by_id", tuple.Int64(5))
	if !found || row[1].Str != "updated" {
		t.Errorf("after update: found=%v row=%v", found, row)
	}
	if _, found, _ = cl.Get("kv", "by_id", tuple.Int64(6)); found {
		t.Error("deleted row still visible")
	}

	if err := cl.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	raw, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	var st server.StatsSnapshot
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if st.Requests == 0 || len(st.Tables) != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestApplyErrorAttribution: a batch mixing a duplicate key and good
// ops comes back with per-op errors — the dup fails, neighbors apply.
func TestApplyErrorAttribution(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)

	var seed client.Batch
	seed.Insert(kvRow(7, "orig"))
	if _, err := cl.Apply("kv", &seed); err != nil {
		t.Fatalf("seed: %v", err)
	}

	var b client.Batch
	b.Insert(kvRow(1, "a"))
	b.Insert(kvRow(7, "dup")) // duplicate key
	b.Insert(kvRow(2, "b"))
	res, err := cl.Apply("kv", &b)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Applied != 2 {
		t.Errorf("Applied = %d, want 2", res.Applied)
	}
	if res.Err(0) != nil || res.Err(2) != nil {
		t.Errorf("neighbors failed: %v / %v", res.Err(0), res.Err(2))
	}
	if res.Err(1) == nil || !strings.Contains(res.Err(1).Error(), "duplicate") {
		t.Errorf("dup err = %v", res.Err(1))
	}
	if row, found, _ := cl.Get("kv", "by_id", tuple.Int64(7)); !found || row[1].Str != "orig" {
		t.Errorf("row 7 = found=%v %v, want original intact", found, row)
	}
}

// TestStorm drives ≥64 concurrent client connections mixing Apply and
// Query against one server under the coalescer, then checks the
// invariants: every acked key readable, exactly one winner per
// contended key, index row count == acked successes.
func TestStorm(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	setup, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	setupKV(t, setup)
	setup.Close()

	const (
		workers    = 64
		perWorker  = 30
		contendedN = 8 // keys every worker fights over
	)
	var (
		acked   atomic.Int64 // disjoint-key inserts acked
		dupWins atomic.Int64 // contended-key inserts acked
		wg      sync.WaitGroup
	)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(f.addr, client.WithPoolSize(1))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perWorker; i++ {
				// Disjoint keyspace per worker, plus one contended key
				// per round on the first contendedN rounds.
				var b client.Batch
				key := int64(1000 + w*perWorker + i)
				b.Insert(kvRow(key, "w"))
				if i < contendedN {
					b.Insert(kvRow(int64(i), "contended"))
				}
				res, err := cl.Apply("kv", &b)
				if err != nil {
					errs <- fmt.Errorf("worker %d apply: %w", w, err)
					return
				}
				if res.Err(0) != nil {
					errs <- fmt.Errorf("worker %d disjoint key %d failed: %v", w, key, res.Err(0))
					return
				}
				acked.Add(1)
				if i < contendedN && res.Err(1) == nil {
					dupWins.Add(1)
				}
				// Interleave reads: point get of an acked key and an
				// occasional short scan.
				if _, found, err := cl.Get("kv", "by_id", tuple.Int64(key)); err != nil || !found {
					errs <- fmt.Errorf("worker %d read-own-write %d: found=%v err=%v", w, key, found, err)
					return
				}
				if i%10 == 0 {
					rows, err := cl.Query("kv", client.WithIndex("by_id"), client.WithLimit(5))
					if err != nil {
						errs <- fmt.Errorf("worker %d query: %w", w, err)
						return
					}
					for rows.Next() {
					}
					if err := rows.Err(); err != nil {
						errs <- fmt.Errorf("worker %d scan: %w", w, err)
						return
					}
					rows.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := acked.Load(); got != workers*perWorker {
		t.Fatalf("acked = %d, want %d", got, workers*perWorker)
	}
	// Exactly one winner per contended key.
	if got := dupWins.Load(); got != contendedN {
		t.Errorf("contended wins = %d, want %d", got, contendedN)
	}
	// Index row count equals total acked successes.
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	rows, err := cl.Query("kv", client.WithIndex("by_id"))
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("final scan: %v", err)
	}
	want := workers*perWorker + contendedN
	if n != want {
		t.Errorf("indexed rows = %d, want %d", n, want)
	}
	// The storm must actually have coalesced: shared cycles carrying
	// more ops than cycles (i.e. >1 op per drain on average) — the
	// whole point of the subsystem.
	st := f.srv.Stats()
	if st.CoalescedCycles == 0 || st.CoalescedOps <= st.CoalescedCycles {
		t.Logf("coalescing stats: cycles=%d ops=%d (no sharing observed — load may be too serialized on this host)",
			st.CoalescedCycles, st.CoalescedOps)
	}
}

// TestGracefulShutdown: every op acked before Shutdown must be
// readable after the engine reopens from disk — no acked write lost.
func TestGracefulShutdown(t *testing.T) {
	f := startServer(t, nil)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	setupKV(t, cl)
	const n = 500
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcl, err := client.Dial(f.addr, client.WithPoolSize(1))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer wcl.Close()
			for i := w; i < n; i += 8 {
				var b client.Batch
				b.Insert(kvRow(int64(i), fmt.Sprintf("v%d", i)))
				if res, err := wcl.Apply("kv", &b); err != nil || res.Applied != 1 {
					t.Errorf("apply %d: %+v err=%v", i, res, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cl.Close()
	f.stop(t) // Shutdown (drain + final checkpoint) then engine Close

	// Reopen from the same files: recovery + checkpoint must surface
	// every acked row.
	eng, err := core.NewEngine(core.Options{Path: filepath.Join(f.dir, "db")}, core.WithWAL())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng.Close()
	tb, err := eng.Table("kv")
	if err != nil {
		t.Fatalf("reopened table: %v", err)
	}
	ix, err := tb.Index("by_id")
	if err != nil {
		t.Fatalf("reopened index: %v", err)
	}
	for i := 0; i < n; i++ {
		row, lres, err := ix.Lookup(nil, tuple.Int64(int64(i)))
		if err != nil || !lres.Found {
			t.Fatalf("acked row %d lost after shutdown+reopen: found=%v err=%v", i, lres.Found, err)
		}
		if want := fmt.Sprintf("v%d", i); row[1].Str != want {
			t.Fatalf("row %d = %q, want %q", i, row[1].Str, want)
		}
	}
}

// TestShutdownIdempotent: double Shutdown and post-shutdown Serve are
// clean errors, not hangs or panics.
func TestShutdownIdempotent(t *testing.T) {
	f := startServer(t, nil)
	ctx := context.Background()
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := f.srv.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("Serve after Shutdown succeeded")
	}
	f.eng.Close()
}

// TestCoalescingShares: with coalescing on, concurrent one-op applies
// from many connections produce fewer WAL appends than ops — shared
// batches under one group commit.
func TestCoalescingShares(t *testing.T) {
	f := startServer(t, func(c *server.Config) {
		c.Coalesce.MaxWait = 2 * time.Millisecond // generous on slow CI
	})
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	setupKV(t, cl)
	cl.Close()

	const workers = 32
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(f.addr, client.WithPoolSize(1))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < perWorker; i++ {
				var b client.Batch
				b.Insert(kvRow(int64(w*perWorker+i), "x"))
				if _, err := cl.Apply("kv", &b); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := f.srv.Stats()
	if st.CoalescedOps != workers*perWorker {
		t.Fatalf("CoalescedOps = %d, want %d", st.CoalescedOps, workers*perWorker)
	}
	if st.CoalescedCycles >= st.CoalescedOps {
		t.Errorf("no sharing: %d cycles for %d ops", st.CoalescedCycles, st.CoalescedOps)
	}
	t.Logf("coalescing: %d ops in %d cycles (%.1f ops/cycle), %d WAL appends, %d fsyncs",
		st.CoalescedOps, st.CoalescedCycles,
		float64(st.CoalescedOps)/float64(st.CoalescedCycles),
		st.WALAppends, st.WALSyncs)
}

// TestHTTPFallback exercises the curl-able JSON listener end to end,
// including writes that ride the same coalescer as binary traffic.
func TestHTTPFallback(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("http listen: %v", err)
	}
	go f.srv.ServeHTTP(hl)
	base := "http://" + hl.Addr().String()

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		json.NewDecoder(resp.Body).Decode(&doc)
		return resp.StatusCode, doc
	}

	if code, doc := post("/v1/tables",
		`{"name":"kv","fields":[{"name":"id","kind":"int64"},{"name":"val","kind":"string"}]}`); code != 201 {
		t.Fatalf("create table: %d %v", code, doc)
	}
	if code, doc := post("/v1/tables/kv/indexes",
		`{"name":"by_id","fields":["id"],"unique":true}`); code != 201 {
		t.Fatalf("create index: %d %v", code, doc)
	}
	code, doc := post("/v1/tables/kv/apply",
		`{"ops":[{"op":"insert","row":[1,"one"]},{"op":"insert","row":[2,"two"]},{"op":"insert","row":[1,"dup"]}]}`)
	if code != 200 {
		t.Fatalf("apply: %d %v", code, doc)
	}
	if doc["applied"].(float64) != 2 {
		t.Errorf("applied = %v", doc["applied"])
	}
	errs := doc["errors"].([]any)
	if errs[0] != "" || errs[1] != "" || errs[2] == "" {
		t.Errorf("errors = %v", errs)
	}

	resp, err := http.Get(base + "/v1/tables/kv/rows?index=by_id&project=val")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	var rowsDoc struct {
		Fields []string `json:"fields"`
		Rows   [][]any  `json:"rows"`
	}
	json.NewDecoder(resp.Body).Decode(&rowsDoc)
	resp.Body.Close()
	if len(rowsDoc.Rows) != 2 || rowsDoc.Fields[0] != "val" {
		t.Errorf("rows = %+v", rowsDoc)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st server.StatsSnapshot
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if len(st.Tables) != 1 || st.Tables[0] != "kv" {
		t.Errorf("stats tables = %v", st.Tables)
	}

	if code, _ := post("/v1/checkpoint", ""); code != 200 {
		t.Errorf("checkpoint: %d", code)
	}
}

// TestParallelQueryOverWire: a client-requested parallel scan streams
// the same rows as serial — ordered mode in global key order, unordered
// mode the same multiset — and an absurd worker count is clamped
// server-side rather than rejected.
func TestParallelQueryOverWire(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)
	const n = 2000
	var b client.Batch
	for i := 0; i < n; i++ {
		b.Insert(kvRow(int64(i), fmt.Sprintf("v%04d", i)))
	}
	if res, err := cl.Apply("kv", &b); err != nil || res.Applied != n {
		t.Fatalf("seed: %+v err=%v", res, err)
	}
	drain := func(opts ...client.QueryOption) []int64 {
		t.Helper()
		rows, err := cl.Query("kv", append([]client.QueryOption{client.WithIndex("by_id")}, opts...)...)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		defer rows.Close()
		var ids []int64
		for rows.Next() {
			ids = append(ids, rows.Row()[0].Int)
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("rows.Err: %v", err)
		}
		return ids
	}
	serial := drain()
	if len(serial) != n {
		t.Fatalf("serial scan returned %d rows", len(serial))
	}
	ordered := drain(client.WithParallel(4), client.WithPageSize(64))
	if len(ordered) != n {
		t.Fatalf("ordered parallel returned %d rows", len(ordered))
	}
	for i, id := range ordered {
		if id != serial[i] {
			t.Fatalf("ordered parallel row %d = %d, want %d", i, id, serial[i])
		}
	}
	unordered := drain(client.WithParallel(4), client.WithUnordered(), client.WithPageSize(64))
	seen := make(map[int64]int, n)
	for _, id := range unordered {
		seen[id]++
	}
	for _, id := range serial {
		if seen[id] != 1 {
			t.Fatalf("unordered parallel served id %d %d times", id, seen[id])
		}
	}
	// Parallel degree far beyond the server's cores: clamped, not an error.
	clamped := drain(client.WithParallel(10_000))
	if len(clamped) != n {
		t.Fatalf("clamped parallel returned %d rows", len(clamped))
	}
	// Parallel with reverse is invalid in core; the server must surface
	// the error on the stream instead of hanging.
	rows, err := cl.Query("kv", client.WithIndex("by_id"),
		client.WithParallel(4), client.WithReverse())
	if err != nil {
		t.Fatalf("Query open: %v", err)
	}
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Fatal("parallel+reverse streamed without error")
	}
	rows.Close()
}

// TestPipelinedOutOfOrder: many in-flight requests on ONE connection
// complete correctly (request IDs demultiplex).
func TestPipelinedOutOfOrder(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr, client.WithPoolSize(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := int64(g*100 + i)
				var b client.Batch
				b.Insert(kvRow(key, fmt.Sprintf("g%d", g)))
				res, err := cl.Apply("kv", &b)
				if err != nil || res.Applied != 1 {
					t.Errorf("apply: %+v err=%v", res, err)
					return
				}
				row, found, err := cl.Get("kv", "by_id", tuple.Int64(key))
				if err != nil || !found || row[1].Str != fmt.Sprintf("g%d", g) {
					t.Errorf("get %d: found=%v row=%v err=%v", key, found, row, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
