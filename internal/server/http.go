package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// The HTTP listener is a curl-able JSON projection of the binary
// protocol. It shares every code path that matters — writes go through
// s.applyOps, so an HTTP POST coalesces into the same shared batches
// as binary connections. Rows are plain JSON arrays coerced against
// the table schema (ints as numbers, bytes as base64, timestamps as
// epoch seconds), so no client library is needed.

// HTTPHandler returns the JSON API handler:
//
//	GET  /v1/stats                          server + WAL counters
//	POST /v1/checkpoint                     force a checkpoint
//	POST /v1/tables                         {"name","fields":[{"name","kind","size"}]}
//	POST /v1/tables/{table}/indexes         {"name","fields":["f",...],"unique"}
//	POST /v1/tables/{table}/apply           {"ops":[{"op":"insert","row":[...]},
//	                                                 {"op":"update","rid":N,"row":[...]},
//	                                                 {"op":"delete","rid":N}]}
//	GET  /v1/tables/{table}/rows            ?index=&limit=&reverse=&project=a,b
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if err := s.eng.Checkpoint(); err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /v1/tables", s.httpCreateTable)
	mux.HandleFunc("POST /v1/tables/{table}/indexes", s.httpCreateIndex)
	mux.HandleFunc("POST /v1/tables/{table}/apply", s.httpApply)
	mux.HandleFunc("GET /v1/tables/{table}/rows", s.httpRows)
	return mux
}

// ServeHTTP serves the JSON API on l until Shutdown. Register it on
// its own port beside the binary listener.
func (s *Server) ServeHTTP(l net.Listener) error {
	hs := &http.Server{Handler: s.HTTPHandler()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: already shut down")
	}
	s.httpSrvs = append(s.httpSrvs, hs)
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	if err := hs.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

func (s *Server) httpCreateTable(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name   string `json:"name"`
		Fields []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
			Size int    `json:"size"`
		} `json:"fields"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	fields := make([]tuple.Field, 0, len(req.Fields))
	for _, f := range req.Fields {
		k, err := kindFromName(f.Kind)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		fields = append(fields, tuple.Field{Name: f.Name, Kind: k, Size: f.Size})
	}
	schema, err := tuple.NewSchema(fields...)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.eng.CreateTable(req.Name, schema); err != nil {
		httpErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"table": req.Name})
}

func (s *Server) httpCreateIndex(w http.ResponseWriter, r *http.Request) {
	tb, err := s.eng.Table(r.PathValue("table"))
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	var req struct {
		Name   string   `json:"name"`
		Fields []string `json:"fields"`
		Unique bool     `json:"unique"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	var opts []core.IndexOption
	if !req.Unique {
		opts = append(opts, core.NonUnique())
	}
	if _, err := tb.CreateIndex(req.Name, req.Fields, opts...); err != nil {
		httpErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"index": req.Name})
}

func (s *Server) httpApply(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	tb, err := s.eng.Table(table)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	schema := tb.Schema()
	var req struct {
		Ops []struct {
			Op  string          `json:"op"`
			RID uint64          `json:"rid"`
			Row json.RawMessage `json:"row"`
		} `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	ops := make([]wire.Op, 0, len(req.Ops))
	for i, o := range req.Ops {
		var op wire.Op
		op.RID = o.RID
		switch o.Op {
		case "insert":
			op.Kind = wire.OpInsert
		case "update":
			op.Kind = wire.OpUpdate
		case "delete":
			op.Kind = wire.OpDelete
		default:
			httpErr(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown op %q", i, o.Op))
			return
		}
		if op.Kind != wire.OpDelete {
			row, err := rowFromJSON(schema, o.Row)
			if err != nil {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("op %d: %w", i, err))
				return
			}
			op.Row = row
		}
		ops = append(ops, op)
	}
	resp, err := s.applyOps(table, ops)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	out := struct {
		Applied int      `json:"applied"`
		RIDs    []uint64 `json:"rids"`
		Errors  []string `json:"errors"`
	}{resp.Applied, resp.RIDs, resp.OpErrs}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) httpRows(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := wire.QueryReq{
		Table:   r.PathValue("table"),
		Index:   q.Get("index"),
		Reverse: q.Get("reverse") == "true",
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.ParseUint(v, 10, 63)
		if err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("bad limit: %w", err))
			return
		}
		req.Limit = n
	}
	if v := q.Get("project"); v != "" {
		req.Projection = strings.Split(v, ",")
	}
	tb, err := s.eng.Table(req.Table)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	cur, err := s.openCursor(&req)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	defer cur.Close()
	schema := tb.Schema()
	if len(req.Projection) > 0 {
		if schema, err = schema.Project(req.Projection...); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
	}
	rows := make([][]any, 0, 64)
	for cur.Next() {
		rows = append(rows, rowToJSON(cur.Row()))
	}
	if err := cur.Err(); err != nil {
		httpErr(w, http.StatusInternalServerError, err)
		return
	}
	fields := make([]string, schema.NumFields())
	for i := range fields {
		fields[i] = schema.Field(i).Name
	}
	writeJSON(w, http.StatusOK, map[string]any{"fields": fields, "rows": rows})
}

// --- JSON <-> tuple coercion ---

func kindFromName(name string) (tuple.Kind, error) {
	switch strings.ToLower(name) {
	case "int64", "bigint":
		return tuple.KindInt64, nil
	case "int32", "int":
		return tuple.KindInt32, nil
	case "int16", "smallint":
		return tuple.KindInt16, nil
	case "int8", "tinyint":
		return tuple.KindInt8, nil
	case "bool":
		return tuple.KindBool, nil
	case "float64", "double":
		return tuple.KindFloat64, nil
	case "char":
		return tuple.KindChar, nil
	case "string", "varchar":
		return tuple.KindString, nil
	case "bytes", "varbinary":
		return tuple.KindBytes, nil
	case "timestamp":
		return tuple.KindTimestamp, nil
	}
	return tuple.KindInvalid, fmt.Errorf("server: unknown kind %q", name)
}

// rowFromJSON decodes one row from either JSON shape: an array of
// values in schema order, or an object keyed by field name (every
// field required — the engine has no column defaults).
func rowFromJSON(schema *tuple.Schema, raw json.RawMessage) (tuple.Row, error) {
	var vals []any
	if err := json.Unmarshal(raw, &vals); err != nil {
		var byName map[string]any
		if merr := json.Unmarshal(raw, &byName); merr != nil {
			return nil, err
		}
		vals = make([]any, schema.NumFields())
		for i := range vals {
			name := schema.Field(i).Name
			v, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("row object missing field %q", name)
			}
			vals[i] = v
			delete(byName, name)
		}
		for name := range byName {
			return nil, fmt.Errorf("row object has unknown field %q", name)
		}
	}
	return rowFromVals(schema, vals)
}

func rowFromVals(schema *tuple.Schema, vals []any) (tuple.Row, error) {
	if len(vals) != schema.NumFields() {
		return nil, fmt.Errorf("row has %d values, schema has %d fields", len(vals), schema.NumFields())
	}
	row := make(tuple.Row, len(vals))
	for i, v := range vals {
		f := schema.Field(i)
		val, err := valueFromJSON(f.Kind, v)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", f.Name, err)
		}
		row[i] = val
	}
	return row, nil
}

func valueFromJSON(k tuple.Kind, v any) (tuple.Value, error) {
	if v == nil {
		return tuple.Null(k), nil
	}
	switch k {
	case tuple.KindInt64, tuple.KindInt32, tuple.KindInt16, tuple.KindInt8, tuple.KindTimestamp:
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) {
			return tuple.Value{}, fmt.Errorf("want integer, got %T %v", v, v)
		}
		return tuple.Value{Kind: k, Int: int64(f)}, nil
	case tuple.KindBool:
		b, ok := v.(bool)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want bool, got %T", v)
		}
		return tuple.Bool(b), nil
	case tuple.KindFloat64:
		f, ok := v.(float64)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want number, got %T", v)
		}
		return tuple.Float64(f), nil
	case tuple.KindChar, tuple.KindString:
		s, ok := v.(string)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want string, got %T", v)
		}
		return tuple.Value{Kind: k, Str: s}, nil
	case tuple.KindBytes:
		s, ok := v.(string)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want base64 string, got %T", v)
		}
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return tuple.Value{}, err
		}
		return tuple.Bytes(raw), nil
	}
	return tuple.Value{}, fmt.Errorf("unsupported kind %v", k)
}

func rowToJSON(row tuple.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		if v.Null {
			continue
		}
		switch v.Kind {
		case tuple.KindFloat64:
			out[i] = v.Float
		case tuple.KindBool:
			out[i] = v.Int != 0
		case tuple.KindChar, tuple.KindString:
			out[i] = v.Str
		case tuple.KindBytes:
			out[i] = base64.StdEncoding.EncodeToString(v.Raw)
		default:
			out[i] = v.Int
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
