// Package server is nblb's network frontend: a pipelined
// length-prefixed binary protocol (internal/wire) over TCP, an
// HTTP/JSON fallback for curl-ability, and — the load-bearing piece —
// a cross-connection write coalescer that drains many connections'
// small batches into shared core.Batches so thousands of writers ride
// the leaf-grouped ApplyRun path and share one WAL group commit.
//
// Concurrency model, per connection: one reader goroutine decodes
// frames and spawns capped handler goroutines (so a pipelined
// connection completes out of order); one writer goroutine drains a
// response channel through a bufio.Writer, flushing only when the
// channel runs empty, which batches many responses into one syscall.
// Handlers never touch the socket — they marshal complete frames and
// hand them to the writer, so interleaved Query pages and Apply acks
// cannot tear each other.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Defaults for Config zero values.
const (
	DefaultMaxOps      = 128
	DefaultMaxWait     = 200 * time.Microsecond
	DefaultPageSize    = 256
	DefaultMaxInflight = 64
)

// CoalesceConfig tunes the cross-connection write coalescer.
type CoalesceConfig struct {
	// Disabled routes every ApplyReq straight to Table.Apply on its
	// handler goroutine (each request pays its own group commit).
	Disabled bool
	// MaxOps caps the ops staged into one shared batch (default 128).
	MaxOps int
	// MaxWait bounds how long the leader waits for more ops after the
	// first arrives (default 200µs).
	MaxWait time.Duration
}

// Config configures a Server.
type Config struct {
	// Engine is the embedded engine to serve. Required; the server
	// does not open or close it.
	Engine *core.Engine
	// Coalesce tunes cross-connection write coalescing.
	Coalesce CoalesceConfig
	// PageSize is the default rows per query page (default 256).
	PageSize int
	// MaxInflight caps concurrently executing requests per connection
	// (default 64); further pipelined frames wait in the kernel buffer.
	MaxInflight int
}

// Stats are the server's monotonic counters (atomic; read via
// Server.Stats or the TStats request).
type Stats struct {
	Conns           atomic.Int64 // connections accepted
	Requests        atomic.Int64 // frames dispatched
	CoalescedCycles atomic.Int64 // coalescer drain cycles (shared batches)
	CoalescedOps    atomic.Int64 // ops applied through shared batches
}

// StatsSnapshot is the JSON shape of TStats / GET /v1/stats.
type StatsSnapshot struct {
	Conns           int64    `json:"conns"`
	Requests        int64    `json:"requests"`
	CoalescedCycles int64    `json:"coalesced_cycles"`
	CoalescedOps    int64    `json:"coalesced_ops"`
	WALAppends      int64    `json:"wal_appends"`
	WALSyncs        int64    `json:"wal_syncs"`
	WALBytes        int64    `json:"wal_bytes"`
	Tables          []string `json:"tables"`
}

// Server serves an engine over TCP (binary protocol) and optionally
// HTTP. Create with New, start with Serve/ListenAndServe, stop with
// Shutdown.
type Server struct {
	cfg   Config
	eng   *core.Engine
	stats Stats

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	coal      map[string]*coalescer
	httpSrvs  []*http.Server
	closed    bool

	wg sync.WaitGroup // accept loops + connections
}

// New creates a Server over an open engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.Coalesce.MaxOps <= 0 {
		cfg.Coalesce.MaxOps = DefaultMaxOps
	}
	if cfg.Coalesce.MaxWait <= 0 {
		cfg.Coalesce.MaxWait = DefaultMaxWait
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	return &Server{
		cfg:       cfg,
		eng:       cfg.Engine,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
		coal:      make(map[string]*coalescer),
	}, nil
}

// Stats returns a point-in-time snapshot of server + WAL counters.
func (s *Server) Stats() StatsSnapshot {
	w := s.eng.WALStats()
	return StatsSnapshot{
		Conns:           s.stats.Conns.Load(),
		Requests:        s.stats.Requests.Load(),
		CoalescedCycles: s.stats.CoalescedCycles.Load(),
		CoalescedOps:    s.stats.CoalescedOps.Load(),
		WALAppends:      w.Appends,
		WALSyncs:        w.Syncs,
		WALBytes:        w.Bytes,
		Tables:          s.eng.Tables(),
	}
}

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until the listener is closed (by
// Shutdown). It returns nil after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: already shut down")
	}
	s.listeners[l] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.stats.Conns.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains the server gracefully: stop accepting, close the
// read side of every connection (in-flight requests complete and
// their responses flush), drain and stop the coalescers, then run a
// final Engine.Checkpoint so every acked write is in the data file
// regardless of sync policy. If ctx expires first, remaining
// connections are severed, but the coalescer drain and checkpoint
// still run — acked ops are never dropped by a timeout.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	https := s.httpSrvs
	s.mu.Unlock()

	for _, l := range ls {
		l.Close()
	}
	for _, hs := range https {
		hs.Shutdown(ctx)
	}
	for _, c := range conns {
		c.closeRead()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}

	s.mu.Lock()
	coal := s.coal
	s.coal = make(map[string]*coalescer)
	s.mu.Unlock()
	for _, c := range coal {
		c.close()
	}
	if err := s.eng.Checkpoint(); err != nil {
		return err
	}
	return ctxErr
}

// applyOps routes a decoded batch to the table's coalescer (or
// directly when coalescing is disabled) and waits for its attributed
// result.
func (s *Server) applyOps(table string, ops []wire.Op) (wire.ApplyResp, error) {
	tb, err := s.eng.Table(table)
	if err != nil {
		return wire.ApplyResp{}, err
	}
	if len(ops) == 0 {
		return wire.ApplyResp{}, errors.New("server: empty batch")
	}
	if s.cfg.Coalesce.Disabled {
		var b core.Batch
		for _, op := range ops {
			switch op.Kind {
			case wire.OpInsert:
				b.Insert(op.Row)
			case wire.OpUpdate:
				b.Update(storage.UnpackRID(op.RID), op.Row)
			case wire.OpDelete:
				b.Delete(storage.UnpackRID(op.RID))
			}
		}
		res, err := tb.Apply(&b, core.WithErrorIsolation(), core.WithResultRIDs())
		return sliceResult(&res, err, 0, len(ops)), nil
	}
	return <-s.coalescerFor(table, tb).enqueue(ops), nil
}

func (s *Server) coalescerFor(name string, tb *core.Table) *coalescer {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.coal[name]
	if !ok {
		c = newCoalescer(tb, s.cfg.Coalesce.MaxOps, s.cfg.Coalesce.MaxWait, &s.stats)
		s.coal[name] = c
	}
	return c
}

// --- connection ---

type conn struct {
	s    *Server
	nc   net.Conn
	outc chan []byte
	sem  chan struct{}
	hwg  sync.WaitGroup // in-flight handlers
	wwg  sync.WaitGroup // writer goroutine

	// Open snapshot transactions, scoped to this connection. A dropped
	// connection aborts them all (serve's epilogue), so an abandoned
	// transaction can never pin the GC watermark forever.
	txnMu  sync.Mutex
	txns   map[uint64]*connTxn
	txnSeq uint64
}

// connTxn wraps a core transaction with the server-side cursor
// accounting the engine cannot do itself: core documents that cursors
// must be drained before Commit/Abort (finishing releases the snapshot
// that protects their versions from GC), but a pipelined client can
// race TTxnCommit/TTxnAbort against an in-flight snapshot Query. The
// stream counter turns that race into a wait — finishTxn blocks until
// every streaming cursor has drained, so the snapshot stays pinned for
// exactly as long as a cursor can still visit its versions.
type connTxn struct {
	txn *core.Txn

	mu       sync.Mutex
	finished bool
	streams  sync.WaitGroup
}

// acquireStream registers one streaming cursor; it fails once the
// transaction has been handed to commit/abort. Callers must release
// with streams.Done after the cursor is closed.
func (ct *connTxn) acquireStream() bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.finished {
		return false
	}
	ct.streams.Add(1)
	return true
}

// finish marks the transaction closed to new cursors and waits for the
// ones still streaming, then yields the core transaction.
func (ct *connTxn) finish() *core.Txn {
	ct.mu.Lock()
	ct.finished = true
	ct.mu.Unlock()
	ct.streams.Wait()
	return ct.txn
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:    s,
		nc:   nc,
		outc: make(chan []byte, 256),
		sem:  make(chan struct{}, s.cfg.MaxInflight),
	}
}

// closeRead unblocks the reader loop without severing the write side,
// so in-flight responses still reach the client during shutdown.
func (c *conn) closeRead() {
	type readCloser interface{ CloseRead() error }
	if rc, ok := c.nc.(readCloser); ok {
		rc.CloseRead()
		return
	}
	c.nc.SetReadDeadline(time.Now())
}

func (c *conn) serve() {
	c.wwg.Add(1)
	go c.writeLoop()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var scratch []byte
	for {
		f, buf, err := wire.ReadFrame(br, scratch)
		scratch = buf
		if err != nil {
			break
		}
		c.s.stats.Requests.Add(1)
		// dispatch decodes the payload inline (decoding copies all
		// bytes out), so scratch is free for the next frame.
		c.dispatch(f)
	}
	c.hwg.Wait()
	// All handlers have returned, so no cursor can still be streaming:
	// finish() never waits here.
	c.txnMu.Lock()
	for id, ct := range c.txns {
		ct.finish().Abort()
		delete(c.txns, id)
	}
	c.txnMu.Unlock()
	close(c.outc)
	c.wwg.Wait()
	c.nc.Close()
}

// beginTxn opens a transaction and registers it under a fresh
// connection-local id.
func (c *conn) beginTxn() (uint64, *core.Txn) {
	txn := c.s.eng.Begin()
	c.txnMu.Lock()
	c.txnSeq++
	id := c.txnSeq
	if c.txns == nil {
		c.txns = make(map[uint64]*connTxn)
	}
	c.txns[id] = &connTxn{txn: txn}
	c.txnMu.Unlock()
	return id, txn
}

// txn resolves a connection-local transaction id.
func (c *conn) txn(id uint64) (*connTxn, error) {
	c.txnMu.Lock()
	ct := c.txns[id]
	c.txnMu.Unlock()
	if ct == nil {
		return nil, fmt.Errorf("server: unknown transaction %d", id)
	}
	return ct, nil
}

// finishTxn removes a transaction from the registry for commit/abort,
// waiting out any cursor still streaming its snapshot.
func (c *conn) finishTxn(id uint64) (*core.Txn, error) {
	c.txnMu.Lock()
	ct := c.txns[id]
	delete(c.txns, id)
	c.txnMu.Unlock()
	if ct == nil {
		return nil, fmt.Errorf("server: unknown transaction %d", id)
	}
	return ct.finish(), nil
}

func (c *conn) writeLoop() {
	defer c.wwg.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var werr error
	for buf := range c.outc {
		if werr != nil {
			continue // drain so handlers never block on a dead socket
		}
		if _, werr = bw.Write(buf); werr != nil {
			continue
		}
		if len(c.outc) == 0 {
			werr = bw.Flush()
		}
	}
	if werr == nil {
		bw.Flush()
	}
}

// send queues one complete response frame for the writer.
func (c *conn) send(reqID uint64, typ uint8, payload []byte) {
	c.outc <- wire.AppendFrame(nil, reqID, typ, payload)
}

func (c *conn) sendErr(reqID uint64, err error) {
	m := wire.ErrResp{Msg: err.Error(), Code: errCode(err)}
	c.send(reqID, wire.TErr, m.Marshal(nil))
}

// errCode classifies an error for ErrResp.Code so clients dispatch on
// the code, never on message text.
func errCode(err error) uint64 {
	if errors.Is(err, core.ErrTxnConflict) {
		return wire.ErrCodeTxnConflict
	}
	return wire.ErrCodeGeneric
}

// spawn runs fn on a handler goroutine, capped by the per-connection
// semaphore. The semaphore is acquired on the reader loop, so a
// connection that pipelines past MaxInflight backpressures in the
// kernel instead of being disconnected.
func (c *conn) spawn(fn func()) {
	c.sem <- struct{}{}
	c.hwg.Add(1)
	go func() {
		defer func() {
			<-c.sem
			c.hwg.Done()
		}()
		fn()
	}()
}

func (c *conn) dispatch(f wire.Frame) {
	id := f.ReqID
	switch f.Type {
	case wire.TPing:
		c.send(id, wire.TOK, nil)
	case wire.TApply:
		var m wire.ApplyReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() { c.handleApply(id, &m) })
	case wire.TGet:
		var m wire.GetReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() { c.handleGet(id, &m) })
	case wire.TQuery:
		var m wire.QueryReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() { c.handleQuery(id, &m) })
	case wire.TCreateTable:
		var m wire.CreateTableReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() { c.handleCreateTable(id, &m) })
	case wire.TCreateIndex:
		var m wire.CreateIndexReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() { c.handleCreateIndex(id, &m) })
	case wire.TCheckpoint:
		c.spawn(func() {
			if err := c.s.eng.Checkpoint(); err != nil {
				c.sendErr(id, err)
				return
			}
			c.send(id, wire.TOK, nil)
		})
	case wire.TTxnBegin:
		c.spawn(func() {
			txnID, txn := c.beginTxn()
			m := wire.TxnBeginResp{TxnID: txnID, StartTS: txn.StartTS()}
			c.send(id, wire.TTxnBeginResp, m.Marshal(nil))
		})
	case wire.TTxnCommit:
		var m wire.TxnFinishReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() {
			txn, err := c.finishTxn(m.TxnID)
			if err == nil {
				err = txn.Commit()
			}
			if err != nil {
				c.sendErr(id, err)
				return
			}
			c.send(id, wire.TOK, nil)
		})
	case wire.TTxnAbort:
		var m wire.TxnFinishReq
		if err := m.Unmarshal(f.Payload); err != nil {
			c.sendErr(id, err)
			return
		}
		c.spawn(func() {
			txn, err := c.finishTxn(m.TxnID)
			if err != nil {
				c.sendErr(id, err)
				return
			}
			txn.Abort()
			c.send(id, wire.TOK, nil)
		})
	case wire.TStats:
		c.spawn(func() {
			doc, err := json.Marshal(c.s.Stats())
			if err != nil {
				c.sendErr(id, err)
				return
			}
			m := wire.StatsResp{JSON: doc}
			c.send(id, wire.TStatsResp, m.Marshal(nil))
		})
	default:
		c.sendErr(id, fmt.Errorf("server: unknown frame type %d", f.Type))
	}
}

func (c *conn) handleApply(id uint64, m *wire.ApplyReq) {
	if m.TxnID != 0 {
		c.handleTxnApply(id, m)
		return
	}
	resp, err := c.s.applyOps(m.Table, m.Ops)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	c.send(id, wire.TApplyResp, resp.Marshal(nil))
}

// handleTxnApply stages ops into an open transaction. Staging bypasses
// the write coalescer deliberately: a transaction's writes must not be
// folded into other connections' batches — they become durable only at
// the transaction's own commit record.
func (c *conn) handleTxnApply(id uint64, m *wire.ApplyReq) {
	ct, err := c.txn(m.TxnID)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	tb, err := c.s.eng.Table(m.Table)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	if len(m.Ops) == 0 {
		c.sendErr(id, errors.New("server: empty batch"))
		return
	}
	var b core.Batch
	for _, op := range m.Ops {
		switch op.Kind {
		case wire.OpInsert:
			b.Insert(op.Row)
		case wire.OpUpdate:
			b.Update(storage.UnpackRID(op.RID), op.Row)
		case wire.OpDelete:
			b.Delete(storage.UnpackRID(op.RID))
		}
	}
	res, aerr := ct.txn.Apply(tb, &b)
	// Staged writes have no RIDs yet (rows land in the heap at commit);
	// the response reports per-op acceptance only.
	resp := sliceResult(&res, aerr, 0, len(m.Ops))
	c.send(id, wire.TApplyResp, resp.Marshal(nil))
}

func (c *conn) handleGet(id uint64, m *wire.GetReq) {
	ix, err := c.s.lookupIndex(m.Table, m.Index)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	row, lres, err := ix.Lookup(nil, m.Key...)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	resp := wire.GetResp{Found: lres.Found}
	if lres.Found {
		resp.RID = lres.RID.Pack()
		resp.Row = row
	}
	c.send(id, wire.TGetResp, resp.Marshal(nil))
}

func (c *conn) handleQuery(id uint64, m *wire.QueryReq) {
	cur, release, err := c.openCursor(m)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	defer release() // runs after Close: the snapshot stays pinned until then
	defer cur.Close()
	pageSize := int(m.PageSize)
	if pageSize <= 0 {
		pageSize = c.s.cfg.PageSize
	}
	page := wire.QueryPage{}
	for cur.Next() {
		page.Rows = append(page.Rows, cur.Row().Clone())
		if m.WithRIDs {
			page.RIDs = append(page.RIDs, cur.RID().Pack())
		}
		if len(page.Rows) >= pageSize {
			c.send(id, wire.TQueryPage, page.Marshal(nil))
			page = wire.QueryPage{}
		}
	}
	if err := cur.Err(); err != nil {
		c.sendErr(id, err)
		return
	}
	page.Last = true
	c.send(id, wire.TQueryPage, page.Marshal(nil))
}

func (c *conn) handleCreateTable(id uint64, m *wire.CreateTableReq) {
	schema, err := tuple.NewSchema(m.Fields...)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	if _, err := c.s.eng.CreateTable(m.Table, schema); err != nil {
		c.sendErr(id, err)
		return
	}
	c.send(id, wire.TOK, nil)
}

func (c *conn) handleCreateIndex(id uint64, m *wire.CreateIndexReq) {
	tb, err := c.s.eng.Table(m.Table)
	if err != nil {
		c.sendErr(id, err)
		return
	}
	var opts []core.IndexOption
	if !m.Unique {
		opts = append(opts, core.NonUnique())
	}
	if _, err := tb.CreateIndex(m.Index, m.Fields, opts...); err != nil {
		c.sendErr(id, err)
		return
	}
	c.send(id, wire.TOK, nil)
}

// --- shared helpers (also used by the HTTP listener) ---

func (s *Server) lookupIndex(table, index string) (*core.Index, error) {
	tb, err := s.eng.Table(table)
	if err != nil {
		return nil, err
	}
	if index == "" {
		return nil, errors.New("server: index name required for get")
	}
	return tb.Index(index)
}

func (s *Server) openCursor(m *wire.QueryReq) (*core.Cursor, error) {
	tb, err := s.eng.Table(m.Table)
	if err != nil {
		return nil, err
	}
	return tb.Query(queryOpts(m)...)
}

// openCursor resolves a query against the connection: a TxnID routes
// the scan through that transaction's snapshot — it reads the Begin
// snapshot and excludes the transaction's own staged writes (core.Txn
// has no read-your-own-writes) — everything else falls through to the
// shared latest-read path, including rows that arrived via other
// connections' coalesced batches, which become visible to snapshots
// begun after their group commit. A transactional cursor registers
// with the connTxn so commit/abort waits out its stream; the returned
// release must be called after the cursor is closed.
func (c *conn) openCursor(m *wire.QueryReq) (*core.Cursor, func(), error) {
	if m.TxnID == 0 {
		cur, err := c.s.openCursor(m)
		return cur, func() {}, err
	}
	ct, err := c.txn(m.TxnID)
	if err != nil {
		return nil, nil, err
	}
	tb, err := c.s.eng.Table(m.Table)
	if err != nil {
		return nil, nil, err
	}
	if !ct.acquireStream() {
		return nil, nil, fmt.Errorf("server: transaction %d already finished", m.TxnID)
	}
	cur, err := ct.txn.Query(tb, queryOpts(m)...)
	if err != nil {
		ct.streams.Done()
		return nil, nil, err
	}
	return cur, ct.streams.Done, nil
}

func queryOpts(m *wire.QueryReq) []core.QueryOption {
	var opts []core.QueryOption
	if m.Index != "" {
		opts = append(opts, core.WithIndex(m.Index))
	}
	if m.Lo != nil || m.Hi != nil {
		opts = append(opts, core.WithKeyRange(m.Lo, m.Hi))
	}
	if len(m.Prefix) > 0 {
		opts = append(opts, core.WithPrefix(m.Prefix...))
	}
	if len(m.Projection) > 0 {
		opts = append(opts, core.WithProjection(m.Projection...))
	}
	if m.Limit > 0 {
		opts = append(opts, core.WithLimit(int(m.Limit)))
	}
	if m.Reverse {
		opts = append(opts, core.WithReverse())
	}
	if m.Parallel > 1 {
		// Clamp: the segment planner bounds its own fan-out, but there is
		// no reason to let one request spawn more workers than cores.
		n := int(m.Parallel)
		if max := runtime.GOMAXPROCS(0) * 2; n > max {
			n = max
		}
		opts = append(opts, core.WithParallel(n))
		if m.Unordered {
			opts = append(opts, core.WithMergeMode(core.MergeUnordered))
		}
	}
	return opts
}
