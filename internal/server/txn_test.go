package server_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/tuple"
)

// collectIDs drains a Rows stream into the set of id column values.
func collectIDs(t *testing.T, rows *client.Rows) map[int64]string {
	t.Helper()
	got := map[int64]string{}
	for rows.Next() {
		r := rows.Row()
		got[r[0].Int] = r[1].Str
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	rows.Close()
	return got
}

func TestTxnOverWire(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)

	txn, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	// Stage across two Apply calls: atomicity must span both.
	var b1, b2 client.Batch
	b1.Insert(kvRow(1, "one")).Insert(kvRow(2, "two"))
	b2.Insert(kvRow(3, "three"))
	if res, err := txn.Apply("kv", &b1); err != nil || res.Applied != 2 {
		t.Fatalf("txn Apply 1: applied=%d err=%v", res.Applied, err)
	}
	if res, err := txn.Apply("kv", &b2); err != nil || res.Applied != 1 {
		t.Fatalf("txn Apply 2: applied=%d err=%v", res.Applied, err)
	}

	// Staged writes are invisible even to the transaction's own cursors
	// (snapshot isolation without read-your-own-writes)...
	rows, err := txn.Query("kv", client.WithIndex("by_id"))
	if err != nil {
		t.Fatalf("txn Query: %v", err)
	}
	if got := collectIDs(t, rows); len(got) != 0 {
		t.Fatalf("txn cursor saw staged rows before commit: %v", got)
	}
	// ...and nothing is visible outside before commit either.
	out, err := cl.Query("kv", client.WithIndex("by_id"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := collectIDs(t, out); len(got) != 0 {
		t.Fatalf("uncommitted rows leaked to latest reads: %v", got)
	}

	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	out, err = cl.Query("kv", client.WithIndex("by_id"))
	if err != nil {
		t.Fatalf("Query after commit: %v", err)
	}
	if got := collectIDs(t, out); len(got) != 3 {
		t.Fatalf("committed rows = %v, want 3", got)
	}

	// Finished transactions reject further use.
	if _, err := txn.Apply("kv", &b1); err == nil {
		t.Fatalf("Apply on finished txn succeeded")
	}
}

// TestTxnFinishWaitsForStreamingCursor pins the server-side cursor
// accounting: a TTxnAbort (or commit) racing an in-flight snapshot
// Query on the same transaction must wait for the stream to drain
// before releasing the snapshot. Without the wait, a concurrent GC
// pass can unlink versions the cursor still has to visit and the scan
// silently drops rows — so every stream that opened successfully must
// deliver the complete Begin snapshot, abort notwithstanding.
func TestTxnFinishWaitsForStreamingCursor(t *testing.T) {
	f := startServer(t, func(cfg *server.Config) { cfg.PageSize = 32 })
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)

	const nKeys = 200
	var seed client.Batch
	for i := 0; i < nKeys; i++ {
		seed.Insert(kvRow(int64(i), "v0"))
	}
	if _, err := cl.Apply("kv", &seed); err != nil {
		t.Fatalf("seed: %v", err)
	}

	// GC hammer: the moment a snapshot releases, its versions are
	// collectible — exactly what the finish-wait must hold off until the
	// cursor drains.
	var stopGC atomic.Bool
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for !stopGC.Load() {
			f.eng.RunGC()
		}
	}()
	defer func() { stopGC.Store(true); gcWG.Wait() }()

	prev := "v0"
	for round := 0; round < 15; round++ {
		// Collect the current version of every row.
		rows, err := cl.Query("kv", client.WithIndex("by_id"), client.WithRIDs())
		if err != nil {
			t.Fatalf("rid query: %v", err)
		}
		rids := make(map[int64]uint64, nKeys)
		for rows.Next() {
			rids[rows.Row()[0].Int] = rows.RID()
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("rid rows: %v", err)
		}
		rows.Close()
		if len(rids) != nKeys {
			t.Fatalf("round %d: %d rids, want %d", round, len(rids), nKeys)
		}

		victim, err := cl.Begin()
		if err != nil {
			t.Fatalf("Begin victim: %v", err)
		}
		// Supersede every row AFTER the victim's snapshot pinned: the
		// victim is now the only thing keeping the old versions alive.
		writer, err := cl.Begin()
		if err != nil {
			t.Fatalf("Begin writer: %v", err)
		}
		next := fmt.Sprintf("r%d", round)
		var ub client.Batch
		for k, rid := range rids {
			ub.Update(rid, kvRow(k, next))
		}
		if _, err := writer.Apply("kv", &ub); err != nil {
			t.Fatalf("writer Apply: %v", err)
		}
		if err := writer.Commit(); err != nil {
			t.Fatalf("writer Commit: %v", err)
		}

		// Open the victim's stream, then abort immediately — the abort
		// frame chases the query frame down the same pipelined connection.
		stream, err := victim.Query("kv", client.WithIndex("by_id"))
		if err != nil {
			t.Fatalf("victim Query: %v", err)
		}
		if err := victim.Abort(); err != nil {
			t.Fatalf("Abort: %v", err)
		}
		got := map[int64]string{}
		for stream.Next() {
			r := stream.Row()
			got[r[0].Int] = r[1].Str
		}
		serr := stream.Err()
		stream.Close()
		if serr != nil {
			// The abort won the race before the cursor opened: a clean,
			// attributed failure is fine. Silent row loss is not.
			prev = next
			continue
		}
		if len(got) != nKeys {
			t.Fatalf("round %d: aborted-mid-stream snapshot returned %d rows, want %d", round, len(got), nKeys)
		}
		for k, v := range got {
			if v != prev {
				t.Fatalf("round %d: key %d = %q, want snapshot value %q", round, k, v, prev)
			}
		}
		prev = next
	}
}

func TestTxnConflictOverWire(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)

	var seed client.Batch
	seed.Insert(kvRow(1, "base"))
	if _, err := cl.Apply("kv", &seed); err != nil {
		t.Fatalf("seed: %v", err)
	}
	_, found, err := cl.Get("kv", "by_id", tuple.Int64(1))
	if err != nil || !found {
		t.Fatalf("seed lookup: found=%v err=%v", found, err)
	}
	rows, err := cl.Query("kv", client.WithIndex("by_id"), client.WithRIDs())
	if err != nil {
		t.Fatalf("rid query: %v", err)
	}
	var rid uint64
	for rows.Next() {
		rid = rows.RID()
	}
	rows.Close()
	if rid == 0 {
		t.Fatalf("no RID for seeded row")
	}

	// Two snapshots race to update the same row: first committer wins.
	t1, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin t1: %v", err)
	}
	t2, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin t2: %v", err)
	}
	var u1, u2 client.Batch
	u1.Update(rid, kvRow(1, "from-t1"))
	u2.Update(rid, kvRow(1, "from-t2"))
	if _, err := t1.Apply("kv", &u1); err != nil {
		t.Fatalf("t1 stage: %v", err)
	}
	if _, err := t2.Apply("kv", &u2); err != nil {
		t.Fatalf("t2 stage: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, client.ErrTxnConflict) {
		t.Fatalf("t2 Commit = %v, want ErrTxnConflict", err)
	}
	row, found, err := cl.Get("kv", "by_id", tuple.Int64(1))
	if err != nil || !found {
		t.Fatalf("post-conflict lookup: found=%v err=%v", found, err)
	}
	if got := row[1].Str; got != "from-t1" {
		t.Fatalf("winner's value = %q, want from-t1", got)
	}
}

// TestTxnSnapshotVsCoalescedWrites pins the interplay between snapshot
// transactions and the write coalescer: raw Apply traffic (folded into
// shared cross-connection batches) committed after a transaction began
// must stay invisible to that transaction's cursors, and a snapshot
// begun afterwards must see every coalesced write.
func TestTxnSnapshotVsCoalescedWrites(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)

	var seed client.Batch
	for i := 0; i < 10; i++ {
		seed.Insert(kvRow(int64(i), "seed"))
	}
	if _, err := cl.Apply("kv", &seed); err != nil {
		t.Fatalf("seed: %v", err)
	}

	txn, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	defer txn.Abort()

	// Concurrent raw writes through the coalescer path, after the
	// snapshot was pinned.
	for w := 0; w < 4; w++ {
		var b client.Batch
		for i := 0; i < 5; i++ {
			b.Insert(kvRow(int64(100+w*10+i), "late"))
		}
		if _, err := cl.Apply("kv", &b); err != nil {
			t.Fatalf("coalesced Apply: %v", err)
		}
	}

	for _, mode := range []struct {
		name string
		opts []client.QueryOption
	}{
		{"heap", nil},
		{"index", []client.QueryOption{client.WithIndex("by_id")}},
		{"parallel", []client.QueryOption{client.WithIndex("by_id"), client.WithParallel(4)}},
	} {
		rows, err := txn.Query("kv", mode.opts...)
		if err != nil {
			t.Fatalf("%s txn query: %v", mode.name, err)
		}
		got := collectIDs(t, rows)
		if len(got) != 10 {
			t.Fatalf("%s: txn snapshot saw %d rows, want the 10 seeds (late coalesced writes leaked)", mode.name, len(got))
		}
		for id, v := range got {
			if v != "seed" {
				t.Fatalf("%s: id %d has value %q inside the snapshot", mode.name, id, v)
			}
		}
	}

	// A snapshot pinned now sees all 30 rows.
	after, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin after: %v", err)
	}
	rows, err := after.Query("kv", client.WithIndex("by_id"))
	if err != nil {
		t.Fatalf("after query: %v", err)
	}
	if got := collectIDs(t, rows); len(got) != 30 {
		t.Fatalf("fresh snapshot saw %d rows, want 30", len(got))
	}
	if err := after.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
}

// TestTxnDisconnectAborts proves the server rolls back transactions
// orphaned by a dropped connection: staged writes must never surface.
func TestTxnDisconnectAborts(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)

	cl1, err := client.Dial(f.addr, client.WithPoolSize(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	setupKV(t, cl1)
	txn, err := cl1.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	var b client.Batch
	b.Insert(kvRow(7, "orphan"))
	if _, err := txn.Apply("kv", &b); err != nil {
		t.Fatalf("stage: %v", err)
	}
	cl1.Close() // connection drops with the txn still open

	cl2, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	defer cl2.Close()
	// The server aborts asynchronously on connection teardown; the
	// staged row must never surface, before or after that runs.
	for i := 0; i < 10; i++ {
		_, found, err := cl2.Get("kv", "by_id", tuple.Int64(7))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if found {
			t.Fatalf("orphaned transaction's staged row became visible")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The engine must still accept fresh transactions (no leaked locks).
	txn2, err := cl2.Begin()
	if err != nil {
		t.Fatalf("Begin after disconnect: %v", err)
	}
	var b2 client.Batch
	b2.Insert(kvRow(8, "alive"))
	if _, err := txn2.Apply("kv", &b2); err != nil {
		t.Fatalf("stage after disconnect: %v", err)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatalf("commit after disconnect: %v", err)
	}
	_, found, err := cl2.Get("kv", "by_id", tuple.Int64(8))
	if err != nil || !found {
		t.Fatalf("post-disconnect commit lost: found=%v err=%v", found, err)
	}
}

func TestTxnAbortOverWire(t *testing.T) {
	f := startServer(t, nil)
	defer f.stop(t)
	cl, err := client.Dial(f.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	setupKV(t, cl)

	txn, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	var b client.Batch
	for i := 0; i < 20; i++ {
		b.Insert(kvRow(int64(i), fmt.Sprintf("v%d", i)))
	}
	if _, err := txn.Apply("kv", &b); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	rows, err := cl.Query("kv")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := collectIDs(t, rows); len(got) != 0 {
		t.Fatalf("aborted rows visible: %v", got)
	}
	// Double finish is benign client-side.
	if err := txn.Abort(); err != nil {
		t.Fatalf("second Abort: %v", err)
	}
}
