package workload

import (
	"math"
	"testing"
)

func TestZipfExactDistribution(t *testing.T) {
	const n = 100
	const draws = 200000
	rng := NewRand(1)
	z := NewZipf(rng, n, 0.5)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Empirical frequencies should track the exact probabilities.
	for _, rank := range []int{0, 1, 10, 50} {
		want := z.Probability(rank)
		got := float64(counts[rank]) / draws
		if math.Abs(got-want) > 0.02+want*0.25 {
			t.Errorf("rank %d: got %.4f, want %.4f", rank, got, want)
		}
	}
	// Rank 0 must dominate rank n-1.
	if counts[0] <= counts[n-1] {
		t.Error("zipf not skewed")
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	rng := NewRand(2)
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("rank %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestZipfApproximateModeInRange(t *testing.T) {
	rng := NewRand(3)
	n := maxExactN + 100 // force the continuous approximation
	z := NewZipf(rng, n, 0.5)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of range", r)
		}
	}
	// Approximate mode refuses Probability.
	defer func() {
		if recover() == nil {
			t.Error("Probability in approximate mode should panic")
		}
	}()
	z.Probability(0)
}

func TestZipfHarmonicAlphaOne(t *testing.T) {
	rng := NewRand(4)
	n := maxExactN + 100
	z := NewZipf(rng, n, 1.0)
	low, high := 0, 0
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < n/100 {
			low++
		}
		if r > n*99/100 {
			high++
		}
	}
	if low <= high {
		t.Error("α=1 should strongly favor low ranks")
	}
}

func TestZipfValidation(t *testing.T) {
	rng := NewRand(5)
	mustPanic(t, func() { NewZipf(rng, 0, 0.5) })
	mustPanic(t, func() { NewZipf(rng, 10, -1) })
}

func TestHotSetSkew(t *testing.T) {
	rng := NewRand(6)
	h := NewHotSet(rng, 1000, 0.05, 0.999)
	if len(h.Hot()) != 50 {
		t.Fatalf("hot set size %d, want 50", len(h.Hot()))
	}
	hotDraws := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if h.IsHot(h.Next()) {
			hotDraws++
		}
	}
	frac := float64(hotDraws) / draws
	if frac < 0.995 {
		t.Errorf("hot fraction %.4f, want ≈0.999", frac)
	}
}

func TestHotSetMembershipConsistent(t *testing.T) {
	rng := NewRand(7)
	h := NewHotSet(rng, 100, 0.1, 0.9)
	seen := map[int]bool{}
	for _, id := range h.Hot() {
		if !h.IsHot(id) {
			t.Errorf("Hot() member %d not IsHot", id)
		}
		if seen[id] {
			t.Errorf("duplicate hot id %d", id)
		}
		seen[id] = true
	}
}

func TestHotSetValidation(t *testing.T) {
	rng := NewRand(8)
	mustPanic(t, func() { NewHotSet(rng, 0, 0.1, 0.9) })
	mustPanic(t, func() { NewHotSet(rng, 10, 0, 0.9) })
	mustPanic(t, func() { NewHotSet(rng, 10, 0.1, 1.5) })
}

func TestUniform(t *testing.T) {
	rng := NewRand(9)
	u := NewUniform(rng, 10)
	if u.N() != 10 {
		t.Errorf("N = %d", u.N())
	}
	for i := 0; i < 1000; i++ {
		if v := u.Next(); v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
	}
	mustPanic(t, func() { NewUniform(rng, 0) })
}

func TestDeterminism(t *testing.T) {
	a := NewZipf(NewRand(42), 100, 0.5)
	b := NewZipf(NewRand(42), 100, 0.5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestShuffle(t *testing.T) {
	p := Shuffle(NewRand(1), 100)
	if len(p) != 100 {
		t.Fatalf("len = %d", len(p))
	}
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
