package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf draws ranks in [0, n) with probability P(i) ∝ 1/(i+1)^alpha.
//
// The stdlib rand.Zipf requires s > 1, but the paper's Figure 2(a)
// uses α = 0.5 ("a zipfian distribution similar to Wikipedia"), so we
// implement the general case. For moderate n we build the exact CDF
// and invert it by binary search; for very large n we fall back to
// continuous inverse-transform sampling, the standard approximation.
type Zipf struct {
	rng   *rand.Rand
	n     int
	alpha float64

	// exact mode
	cdf []float64

	// approximate (continuous) mode
	oneMinusAlpha float64
	span          float64 // (n+1)^(1-α) - 1
	harmonic      bool    // α == 1: use log-based inversion
	logN1         float64
}

// maxExactN bounds the CDF table (8 bytes per rank).
const maxExactN = 1 << 22

// NewZipf returns a zipfian generator over [0, n) with exponent alpha ≥ 0.
// alpha = 0 degenerates to uniform. It panics if n <= 0 or alpha < 0;
// generator construction errors are programmer errors, not runtime
// conditions.
func NewZipf(rng *rand.Rand, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: NewZipf n must be positive, got %d", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("workload: NewZipf alpha must be non-negative, got %g", alpha))
	}
	z := &Zipf{rng: rng, n: n, alpha: alpha}
	if n <= maxExactN {
		z.cdf = make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += math.Pow(float64(i+1), -alpha)
			z.cdf[i] = sum
		}
		// Normalize so the final entry is exactly 1.
		for i := range z.cdf {
			z.cdf[i] /= sum
		}
		z.cdf[n-1] = 1
		return z
	}
	z.oneMinusAlpha = 1 - alpha
	if math.Abs(z.oneMinusAlpha) < 1e-9 {
		z.harmonic = true
		z.logN1 = math.Log(float64(n + 1))
	} else {
		z.span = math.Pow(float64(n+1), z.oneMinusAlpha) - 1
	}
	return z
}

// N returns the number of distinct ranks.
func (z *Zipf) N() int { return z.n }

// Alpha returns the skew exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Next draws the next rank. Rank 0 is the most popular.
func (z *Zipf) Next() int {
	if z.cdf != nil {
		u := z.rng.Float64()
		return sort.SearchFloat64s(z.cdf, u)
	}
	u := z.rng.Float64()
	var x float64
	if z.harmonic {
		x = math.Exp(u * z.logN1)
	} else {
		x = math.Pow(1+u*z.span, 1/z.oneMinusAlpha)
	}
	r := int(x) - 1
	if r < 0 {
		r = 0
	}
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Probability returns the exact P(rank = i) under the distribution.
// Only available in exact mode; it panics otherwise (used by tests).
func (z *Zipf) Probability(i int) float64 {
	if z.cdf == nil {
		panic("workload: Probability requires exact mode (n <= maxExactN)")
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
