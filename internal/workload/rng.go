// Package workload provides the deterministic access-pattern generators
// used by the paper's experiments: zipfian popularity (Figure 2(a) uses
// α = 0.5), the 99.9%-hot/0.1%-cold revision pattern of Section 3.1, and
// uniform baselines. All generators take an explicit seed so experiments
// are reproducible run-to-run.
package workload

import "math/rand"

// NewRand returns a rand.Rand seeded deterministically. Every generator
// in this package derives its randomness from one of these, so a fixed
// seed yields a fixed access sequence.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Shuffle returns a pseudo-random permutation of [0, n) driven by rng.
func Shuffle(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}
