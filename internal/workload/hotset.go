package workload

import (
	"fmt"
	"math/rand"
)

// HotSet draws item indexes in [0, n) where a fraction hotFrac of the
// items receives a fraction hotProb of the accesses, uniformly within
// each class. This models the paper's Section 3.1 observation that
// "99.9% of page requests access the 5% of the tuples that represent
// the most recent revisions".
//
// The hot items themselves are a pseudo-random subset, mirroring the
// paper's point that hot tuples are "scattered throughout the table"
// and unrelated to any field value (so hash/range partitioning cannot
// isolate them).
type HotSet struct {
	rng     *rand.Rand
	n       int
	hotProb float64
	hot     []int // item ids in the hot class
	cold    []int // item ids in the cold class
	isHot   []bool
}

// NewHotSet builds a hot-set generator. hotFrac and hotProb must lie in
// (0, 1]. It panics on invalid parameters.
func NewHotSet(rng *rand.Rand, n int, hotFrac, hotProb float64) *HotSet {
	if n <= 0 {
		panic(fmt.Sprintf("workload: NewHotSet n must be positive, got %d", n))
	}
	if hotFrac <= 0 || hotFrac > 1 {
		panic(fmt.Sprintf("workload: NewHotSet hotFrac out of (0,1]: %g", hotFrac))
	}
	if hotProb <= 0 || hotProb > 1 {
		panic(fmt.Sprintf("workload: NewHotSet hotProb out of (0,1]: %g", hotProb))
	}
	nHot := int(float64(n) * hotFrac)
	if nHot < 1 {
		nHot = 1
	}
	if nHot > n {
		nHot = n
	}
	perm := rng.Perm(n)
	h := &HotSet{
		rng:     rng,
		n:       n,
		hotProb: hotProb,
		hot:     perm[:nHot],
		cold:    perm[nHot:],
		isHot:   make([]bool, n),
	}
	for _, id := range h.hot {
		h.isHot[id] = true
	}
	return h
}

// N returns the number of items.
func (h *HotSet) N() int { return h.n }

// Hot returns the item ids in the hot class (do not modify).
func (h *HotSet) Hot() []int { return h.hot }

// IsHot reports whether item i belongs to the hot class.
func (h *HotSet) IsHot(i int) bool { return h.isHot[i] }

// Next draws the next item id.
func (h *HotSet) Next() int {
	if len(h.cold) == 0 || h.rng.Float64() < h.hotProb {
		return h.hot[h.rng.Intn(len(h.hot))]
	}
	return h.cold[h.rng.Intn(len(h.cold))]
}

// Uniform draws item indexes in [0, n) uniformly.
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform builds a uniform generator over [0, n). Panics if n <= 0.
func NewUniform(rng *rand.Rand, n int) *Uniform {
	if n <= 0 {
		panic(fmt.Sprintf("workload: NewUniform n must be positive, got %d", n))
	}
	return &Uniform{rng: rng, n: n}
}

// N returns the number of items.
func (u *Uniform) N() int { return u.n }

// Next draws the next item id.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Generator is the common interface over access-pattern generators.
type Generator interface {
	// Next returns the next item id in [0, N()).
	Next() int
	// N returns the number of distinct items.
	N() int
}

var (
	_ Generator = (*Zipf)(nil)
	_ Generator = (*HotSet)(nil)
	_ Generator = (*Uniform)(nil)
)
